(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (printed as text tables) and runs Bechamel
   micro-benchmarks of the pipeline stages.

   Usage:
     bench/main.exe                          -- everything
     bench/main.exe fig3 table2              -- selected figures only
     bench/main.exe micro                    -- only the micro-benchmarks
     bench/main.exe fig3 --domains 4 --metrics
                                             -- fan the grid out over 4
                                                domains and report
                                                per-stage wall time *)

open Cmdliner
module Figures = Dpm_core.Figures
module Metrics = Dpm_util.Metrics
module Pool = Dpm_util.Pool

let available =
  [
    ("table1", Figures.table1);
    ("table2", Figures.table2);
    ("fig3", Figures.fig3);
    ("fig4", Figures.fig4);
    ("table3", Figures.table3);
    ("fig5", Figures.fig5);
    ("fig6", Figures.fig6);
    ("fig7", Figures.fig7);
    ("fig8", Figures.fig8);
    ("fig13", Figures.fig13);
    ("ext", Figures.extensions);
    ("ext-shared", Figures.shared_subsystem);
    ("ablation-knobs", Figures.knob_ablation);
    ("ablation-closed", Figures.closed_loop_ablation);
    ("fault-sweep", Figures.fault_sweep);
    ("fig3-degraded", fun () -> Figures.degraded_grid ());
  ]

let print_figure name f =
  let figure =
    Metrics.span Metrics.global ("figure." ^ name) (fun () -> f ())
  in
  print_string figure.Figures.rendered;
  print_newline ()

(* --- Bechamel micro-benchmarks: one per pipeline stage --- *)

let micro () =
  let open Bechamel in
  let spec = Dpm_workloads.Suite.find "galgel" in
  let program = Dpm_workloads.Suite.program spec in
  let plan = Dpm_workloads.Suite.default_plan program in
  let specs = Dpm_sim.Config.default.Dpm_sim.Config.specs in
  let trace = Dpm_trace.Generate.run program plan in
  let source = spec.Dpm_workloads.Suite.source () in
  let tests =
    [
      Test.make ~name:"parse-galgel"
        (Staged.stage (fun () ->
             ignore (Dpm_ir.Parser.program ~name:"galgel" source)));
      Test.make ~name:"access-analysis"
        (Staged.stage (fun () ->
             ignore (Dpm_compiler.Access.of_program_cached program plan)));
      Test.make ~name:"timing-profile"
        (Staged.stage (fun () ->
             ignore (Dpm_compiler.Estimate.profile ~specs program plan)));
      Test.make ~name:"trace-generation"
        (Staged.stage (fun () -> ignore (Dpm_trace.Generate.run program plan)));
      Test.make ~name:"replay-base"
        (Staged.stage (fun () ->
             ignore (Dpm_sim.Engine.run Dpm_sim.Policy.base trace)));
      Test.make ~name:"compile-cmdrpm"
        (Staged.stage (fun () ->
             ignore
               (Dpm_compiler.Pipeline.compile
                  ~scheme:Dpm_compiler.Insertion.Drpm ~specs program plan)));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  print_endline "== Micro-benchmarks (pipeline stages on galgel) ==";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name m ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock m
          in
          match Analyze.OLS.estimates stats with
          | Some [ t ] -> Printf.printf "  %-22s %12.1f ns/run\n%!" name t
          | Some _ | None -> Printf.printf "  %-22s (no estimate)\n%!" name)
        results)
    tests

(* --- CLI --- *)

let figures_arg =
  let doc =
    "Figures/tables to regenerate (default: all plus the \
     micro-benchmarks).  $(b,micro) selects the Bechamel \
     micro-benchmarks."
  in
  Arg.(value & pos_all string [] & info [] ~doc ~docv:"FIGURE")

let domains_arg =
  let doc =
    "Number of domains the experiment grids fan out over (default: the \
     runtime's recommended count, or $(b,DPM_DOMAINS)).  Results are \
     bit-identical whatever the value."
  in
  Arg.(value & opt (some int) None & info [ "d"; "domains" ] ~doc ~docv:"N")

let metrics_arg =
  let doc =
    "Collect and print per-stage wall time (workload build, compile, \
     trace generation, replay) and throughput counters."
  in
  Arg.(value & flag & info [ "m"; "metrics" ] ~doc)

let run names domains metrics =
  Option.iter Pool.set_default_domains domains;
  if metrics then Metrics.set_enabled Metrics.global true;
  let total0 = Metrics.now () in
  let rc =
    match names with
    | [] ->
        List.iter (fun (name, f) -> print_figure name f) available;
        micro ();
        0
    | names ->
        List.fold_left
          (fun rc name ->
            if String.equal name "micro" then begin
              micro ();
              rc
            end
            else
              match List.assoc_opt name available with
              | Some f ->
                  print_figure name f;
                  rc
              | None ->
                  Printf.eprintf "unknown figure %S; available: %s micro\n"
                    name
                    (String.concat " " (List.map fst available));
                  2)
          0 names
  in
  if metrics then begin
    Printf.printf "total wall time: %.3f s (domains=%d)\n"
      (Metrics.now () -. total0)
      (Pool.default_domains ());
    print_string (Metrics.report Metrics.global)
  end;
  rc

let () =
  let doc =
    "Regenerate the paper's tables and figures, with optional \
     multi-domain fan-out and per-stage metrics."
  in
  let info = Cmd.info "dpm-bench" ~doc in
  exit (Cmd.eval' (Cmd.v info Term.(const run $ figures_arg $ domains_arg $ metrics_arg)))
