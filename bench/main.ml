(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (printed as text tables) and runs Bechamel
   micro-benchmarks of the pipeline stages.

   Usage:
     bench/main.exe                          -- everything
     bench/main.exe fig3 table2              -- selected figures only
     bench/main.exe micro                    -- only the micro-benchmarks
     bench/main.exe fig3 --domains 4 --metrics
                                             -- fan the grid out over 4
                                                domains and report
                                                per-stage wall time *)

open Cmdliner
module Figures = Dpm_core.Figures
module Metrics = Dpm_util.Metrics
module Pool = Dpm_util.Pool

let available =
  [
    ("table1", Figures.table1);
    ("table2", Figures.table2);
    ("fig3", Figures.fig3);
    ("fig4", Figures.fig4);
    ("table3", Figures.table3);
    ("fig5", Figures.fig5);
    ("fig6", Figures.fig6);
    ("fig7", Figures.fig7);
    ("fig8", Figures.fig8);
    ("fig13", Figures.fig13);
    ("ext", Figures.extensions);
    ("ext-shared", Figures.shared_subsystem);
    ("ablation-knobs", Figures.knob_ablation);
    ("ablation-closed", Figures.closed_loop_ablation);
    ("fault-sweep", Figures.fault_sweep);
    ("fig3-degraded", fun () -> Figures.degraded_grid ());
  ]

(* Per-figure wall times, in run order — the BENCH snapshot's payload. *)
let timings : (string * float) list ref = ref []

let print_figure name f =
  let t0 = Metrics.now () in
  let figure = Figures.traced name f in
  let dt = Metrics.now () -. t0 in
  timings := (name, dt) :: !timings;
  if Metrics.enabled Metrics.global then
    Metrics.record_span Metrics.global ("figure." ^ name) dt;
  print_string figure.Figures.rendered;
  print_newline ()

(* --- Streaming-vs-materialized memory/throughput comparison ---

   A synthetic workload ~10× the largest figure-grid input (wupwise's
   ~24.6k requests): one 256 MB array of 4096 stripe units swept 64
   times through the default 1024-unit LRU cache, so every sweep misses
   on every unit — 262,144 I/O events.  The materialized path builds
   that whole event array before replaying; the streaming path fuses
   generate→replay in O(batch) chunks.  Both replays run with
   [retain_busy = false] (the engine's bounded-memory knob), and the
   results must be structurally identical.

   [Gc.top_heap_words] is process-monotonic, so the streaming phase runs
   FIRST and each phase's peak is the delta it adds — which is why this
   mode leads the default all-run and should come first in a manual
   figure list if its numbers are to mean anything. *)

let stream_source =
  {|# stream-synthetic: cache-thrashing sweeps, 262144 IOs
array G[512][64] : 8192
for s = 1 to 64 { for i = 0 to 511 { for j = 0 to 63 { use G[i][j] work 400 } } }
|}

(* The JSON snapshot's "stream" section, filled by [stream_mode]. *)
let stream_section : (string * Dpm_util.Json.t) list ref = ref []

let vm_hwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              String.sub line 6 (String.length line - 6)
              |> String.trim
              |> fun s ->
              Scanf.sscanf_opt s "%d" (fun kb -> kb)
            else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let stream_mode () =
  let open Dpm_util.Json in
  let p = Dpm_ir.Parser.program ~name:"stream-synthetic" stream_source in
  let plan = Dpm_workloads.Suite.default_plan p in
  let config = Dpm_sim.Config.make ~retain_busy:false () in
  let t_total0 = Metrics.now () in
  Gc.compact ();
  let heap0 = (Gc.quick_stat ()).Gc.top_heap_words in
  let t0 = Metrics.now () in
  let r_stream =
    Dpm_sim.Engine.run_stream ~config Dpm_sim.Policy.base
      (Dpm_trace.Generate.stream p plan)
  in
  let stream_s = Metrics.now () -. t0 in
  let heap1 = (Gc.quick_stat ()).Gc.top_heap_words in
  let t1 = Metrics.now () in
  let trace = Dpm_trace.Generate.run p plan in
  let r_mat = Dpm_sim.Engine.run ~config Dpm_sim.Policy.base trace in
  let mat_s = Metrics.now () -. t1 in
  let heap2 = (Gc.quick_stat ()).Gc.top_heap_words in
  timings := ("stream", Metrics.now () -. t_total0) :: !timings;
  let word = Sys.word_size / 8 in
  let stream_bytes = (heap1 - heap0) * word in
  let mat_bytes = (heap2 - heap1) * word in
  let requests = Dpm_sim.Result.requests r_mat in
  let rps s = float_of_int requests /. s in
  let identical = r_stream = r_mat in
  (* O(batch), not O(trace): the fused pipeline must peak in a fraction
     of the materialized path's memory. *)
  let bounded = mat_bytes > 0 && stream_bytes * 4 <= mat_bytes in
  print_endline
    "== Streaming vs materialized (synthetic 262144-request workload) ==";
  Printf.printf "  %-13s %12s %14s %14s\n" "path" "time(s)" "requests/s"
    "peak-heap(MB)";
  Printf.printf "  %-13s %12.3f %14.0f %14.2f\n" "streaming" stream_s
    (rps stream_s)
    (float_of_int stream_bytes /. 1048576.0);
  Printf.printf "  %-13s %12.3f %14.0f %14.2f\n" "materialized" mat_s
    (rps mat_s)
    (float_of_int mat_bytes /. 1048576.0);
  (match vm_hwm_kb () with
  | Some kb -> Printf.printf "  process VmHWM: %d kB\n" kb
  | None -> ());
  Printf.printf "  results identical: %b, memory bounded (<=1/4): %b\n"
    identical bounded;
  stream_section :=
    [
      ( "stream",
        Obj
          [
            ("requests", Int requests);
            ("batch", Int Dpm_trace.Trace.Stream.default_batch);
            ( "streaming",
              Obj
                [
                  ("seconds", Float stream_s);
                  ("requests_per_s", Float (rps stream_s));
                  ("peak_heap_bytes", Int stream_bytes);
                ] );
            ( "materialized",
              Obj
                [
                  ("seconds", Float mat_s);
                  ("requests_per_s", Float (rps mat_s));
                  ("peak_heap_bytes", Int mat_bytes);
                ] );
            ("identical", Bool identical);
            ("bounded", Bool bounded);
          ] );
    ];
  if identical && bounded then 0
  else begin
    Dpm_util.Log.error ~scope:"bench"
      ~kv:
        [
          ("identical", string_of_bool identical);
          ("bounded", string_of_bool bounded);
          ("stream_bytes", string_of_int stream_bytes);
          ("mat_bytes", string_of_int mat_bytes);
        ]
      "streaming equivalence/memory assertion failed";
    1
  end

(* --- Fast-core throughput gate ---

   Replays the same 262k-request synthetic workload through both engine
   cores — the record-at-a-time reference body and the specialized
   structure-of-arrays loop — for one policy of each specialization
   kind.  Reports events/sec, the fast/reference speedup, and the fast
   core's minor-heap allocations per event (Gc.minor_words deltas), and
   asserts the two cores return structurally identical results.  With
   [--baseline FILE] it additionally compares against committed floors
   (see test/golden/bench_baseline.json) and fails on a >25%
   events/sec or speedup regression — the `make perf-check` CI gate. *)

let throughput_section : (string * Dpm_util.Json.t) list ref = ref []

let throughput_mode ~baseline () =
  let open Dpm_util.Json in
  let p = Dpm_ir.Parser.program ~name:"stream-synthetic" stream_source in
  let plan = Dpm_workloads.Suite.default_plan p in
  let trace = Dpm_trace.Generate.run p plan in
  let events = Dpm_trace.Trace.event_count trace in
  let ndisks = Dpm_trace.Trace.ndisks trace in
  let config = Dpm_sim.Config.make ~retain_busy:false () in
  (* Policies are created fresh per replay: the reactive ones (DRPM)
     carry mutable controller state that must not leak across runs.
     The scheduler rows replay Base under each non-FCFS discipline:
     both cores route through the deferred-dispatch engine there, so
     their speedup hovers around 1.0 — the floor guards the scheduler's
     absolute events/sec, not a fast-core ratio. *)
  let sched cfg s = Dpm_sim.Config.with_sched s cfg in
  (* The Base+meter row replays Base with a timeline sink and a
     streaming power meter attached — the gate on the meter's own
     overhead.  Its floor in bench_baseline.json keeps the metered path
     within the same order of magnitude as the bare fast core. *)
  let schemes =
    [
      ("Base", config, false, fun () -> Dpm_sim.Policy.base);
      ("Base+meter", config, true, fun () -> Dpm_sim.Policy.base);
      ("TPM", config, false, fun () -> Dpm_sim.Policy.tpm config);
      ("DRPM", config, false, fun () -> Dpm_sim.Policy.drpm config ~ndisks);
      ("CMDRPM", config, false, fun () -> Dpm_sim.Policy.cm_drpm);
      ( "SSTF",
        sched config Dpm_sim.Config.Sstf,
        false,
        fun () -> Dpm_sim.Policy.base );
      ( "SCAN",
        sched config Dpm_sim.Config.Scan,
        false,
        fun () -> Dpm_sim.Policy.base );
      ( "C-LOOK",
        sched config Dpm_sim.Config.Clook,
        false,
        fun () -> Dpm_sim.Policy.base );
      ( "SSTF-R",
        sched config Dpm_sim.Config.Sstf_remap,
        false,
        fun () -> Dpm_sim.Policy.base );
    ]
  in
  let replay ?(meter = false) config core policy =
    if meter then begin
      let sink = Dpm_sim.Timeline.sink () in
      let m =
        Dpm_sim.Meter.create ~resolution:0.5
          ~specs:config.Dpm_sim.Config.specs ~capacity:4096 ()
      in
      Dpm_sim.Meter.attach m sink;
      let r =
        Dpm_sim.Engine.run_stream ~config ~core ~timeline:sink (policy ())
          (Dpm_trace.Trace.Stream.of_trace trace)
      in
      Dpm_sim.Meter.finish m;
      ignore (Dpm_sim.Meter.integral m);
      r
    end
    else
      Dpm_sim.Engine.run_stream ~config ~core (policy ())
        (Dpm_trace.Trace.Stream.of_trace trace)
  in
  let time_runs n ?meter config core policy =
    let t0 = Metrics.now () in
    let last = ref (replay ?meter config core policy) in
    for _ = 2 to n do
      last := replay ?meter config core policy
    done;
    ((Metrics.now () -. t0) /. float_of_int n, !last)
  in
  let t_total0 = Metrics.now () in
  print_endline
    "== Replay core throughput (synthetic 262144-event workload) ==";
  Printf.printf "  %-10s %12s %12s %9s %12s %10s\n" "scheme" "ref-ev/s"
    "fast-ev/s" "speedup" "words/event" "identical";
  let all_identical = ref true in
  let rows =
    List.map
      (fun (name, config, meter, policy) ->
        (* Warm both cores once (page in the trace, settle the GC). *)
        ignore (replay ~meter config `Reference policy);
        ignore (replay ~meter config `Fast policy);
        let ref_s, r_ref = time_runs 2 ~meter config `Reference policy in
        let minor0 = Gc.minor_words () in
        let fast_s, r_fast = time_runs 10 ~meter config `Fast policy in
        let minor1 = Gc.minor_words () in
        let identical = r_ref = r_fast in
        if not identical then all_identical := false;
        let fev = float_of_int events in
        let ref_eps = fev /. ref_s in
        let fast_eps = fev /. fast_s in
        let speedup = fast_eps /. ref_eps in
        let words_per_event = (minor1 -. minor0) /. (fev *. 10.0) in
        Printf.printf "  %-10s %12.0f %12.0f %8.1fx %12.3f %10b\n" name ref_eps
          fast_eps speedup words_per_event identical;
        ( name,
          Obj
            [
              ("reference_eps", Float ref_eps);
              ("fast_eps", Float fast_eps);
              ("speedup", Float speedup);
              ("minor_words_per_event", Float words_per_event);
              ("identical", Bool identical);
            ] ))
      schemes
  in
  timings := ("throughput", Metrics.now () -. t_total0) :: !timings;
  throughput_section :=
    [
      ( "throughput",
        Obj
          [
            ("events", Int events);
            ("schemes", Obj rows);
            ("identical", Bool !all_identical);
          ] );
    ];
  let rc = if !all_identical then 0 else 1 in
  if rc <> 0 then
    Dpm_util.Log.error ~scope:"bench"
      "fast and reference cores disagree on the throughput workload";
  (* Baseline comparison: fail on >25% regression against the committed
     floors, for events/sec (machine-dependent — the floors are set
     conservatively) and for the fast/reference speedup (machine-
     independent). *)
  match baseline with
  | None -> rc
  | Some path -> (
      let doc =
        let ic = open_in path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        match Dpm_util.Json.parse_string s with
        | Ok doc -> doc
        | Error m -> failwith (Printf.sprintf "%s: %s" path m)
      in
      let tolerance =
        match Option.bind (member "tolerance" doc) to_float with
        | Some t -> t
        | None -> 0.75
      in
      let floors =
        match member "schemes" doc with
        | Some s -> s
        | None -> failwith (path ^ ": missing schemes object")
      in
      let failures = ref [] in
      List.iter
        (fun (name, row) ->
          match member name floors with
          | None -> ()
          | Some floor ->
              let get field doc =
                match Option.bind (member field doc) to_float with
                | Some v -> v
                | None ->
                    failwith
                      (Printf.sprintf "%s: %s.%s missing" path name field)
              in
              let check field =
                let current = get field row in
                let base = get field floor in
                if current < tolerance *. base then
                  failures :=
                    Printf.sprintf "%s.%s: %.0f < %.2f x %.0f" name field
                      current tolerance base
                    :: !failures
              in
              check "fast_eps";
              check "speedup")
        rows;
      match !failures with
      | [] ->
          Printf.printf "  baseline check: ok (vs %s, tolerance %.2f)\n" path
            tolerance;
          rc
      | fs ->
          List.iter
            (fun f ->
              Dpm_util.Log.error ~scope:"bench"
                ~kv:[ ("violation", f) ]
                "throughput regression vs committed baseline")
            fs;
          1)

(* --- Auto-tuning sweep: the Adaptive controller vs the grid ---

   A small thresholds x tolerances grid over two suite workloads,
   checking the ISSUE's acceptance property as a bench gate: the online
   Adaptive controller must beat the best fixed-threshold TPM energy on
   at least one workload while staying above the IDRPM oracle bound on
   every cell. *)

let sweep_section : (string * Dpm_util.Json.t) list ref = ref []

let sweep_mode () =
  let open Dpm_util.Json in
  let module Sweep = Dpm_core.Sweep in
  let module Scheme = Dpm_core.Scheme in
  let axes =
    [
      Sweep.Tpm_threshold [ 4.0; 15.2 ];
      Sweep.Drpm_lower [ 0.02; 0.08 ];
    ]
  in
  let workloads = [ "swim"; "galgel" ] in
  let t0 = Metrics.now () in
  match Sweep.run ~axes ~workloads () with
  | Error e ->
      Dpm_util.Log.error ~scope:"bench"
        ~kv:[ ("error", Dpm_core.Run.error_message e) ]
        "sweep failed";
      1
  | Ok outcome ->
      print_string (Sweep.render outcome);
      let energy scheme (cell : Sweep.cell) =
        (List.assoc scheme cell.Sweep.results).Dpm_sim.Result.energy
      in
      (* Best fixed-TPM and best Adaptive energy per workload, off the
         same grid. *)
      let best_of scheme workload =
        List.fold_left
          (fun acc (w, s, cell, _) ->
            if w = workload && s = scheme then
              Float.min acc (energy scheme cell)
            else acc)
          infinity (Sweep.best outcome)
      in
      let adaptive_beats_tpm =
        List.filter
          (fun w -> best_of Scheme.Adaptive w < best_of Scheme.Tpm w)
          workloads
      in
      let above_oracle =
        List.for_all
          (fun (cell : Sweep.cell) ->
            energy Scheme.Adaptive cell >= energy Scheme.Idrpm cell -. 1e-6)
          outcome.Sweep.cells
      in
      let rc = if adaptive_beats_tpm <> [] && above_oracle then 0 else 1 in
      if rc <> 0 then
        Dpm_util.Log.error ~scope:"bench"
          ~kv:
            [
              ( "adaptive_beats_tpm",
                String.concat "," adaptive_beats_tpm );
              ("above_oracle", string_of_bool above_oracle);
            ]
          "adaptive policy failed the sweep acceptance gate"
      else
        Printf.printf
          "  sweep gate: ok (Adaptive beats fixed TPM on %s; above the \
           oracle bound on all %d cells)\n"
          (String.concat ", " adaptive_beats_tpm)
          (List.length outcome.Sweep.cells);
      timings := ("sweep", Metrics.now () -. t0) :: !timings;
      sweep_section :=
        [
          ( "sweep",
            Obj
              [
                ("cells", Int (List.length outcome.Sweep.cells));
                ( "adaptive_beats_tpm",
                  Arr (List.map (fun w -> Str w) adaptive_beats_tpm) );
                ("above_oracle", Bool above_oracle);
                ("doc", Sweep.to_json outcome);
              ] );
        ];
      rc

(* --- Bechamel micro-benchmarks: one per pipeline stage --- *)

let micro () =
  let open Bechamel in
  let spec = Dpm_workloads.Suite.find "galgel" in
  let program = Dpm_workloads.Suite.program spec in
  let plan = Dpm_workloads.Suite.default_plan program in
  let specs = Dpm_sim.Config.default.Dpm_sim.Config.specs in
  let trace = Dpm_trace.Generate.run program plan in
  let source = spec.Dpm_workloads.Suite.source () in
  let tests =
    [
      Test.make ~name:"parse-galgel"
        (Staged.stage (fun () ->
             ignore (Dpm_ir.Parser.program ~name:"galgel" source)));
      Test.make ~name:"access-analysis"
        (Staged.stage (fun () ->
             ignore (Dpm_compiler.Access.of_program_cached program plan)));
      Test.make ~name:"timing-profile"
        (Staged.stage (fun () ->
             ignore (Dpm_compiler.Estimate.profile ~specs program plan)));
      Test.make ~name:"trace-generation"
        (Staged.stage (fun () -> ignore (Dpm_trace.Generate.run program plan)));
      Test.make ~name:"replay-base"
        (Staged.stage (fun () ->
             ignore (Dpm_sim.Engine.run Dpm_sim.Policy.base trace)));
      Test.make ~name:"compile-cmdrpm"
        (Staged.stage (fun () ->
             ignore
               (Dpm_compiler.Pipeline.compile
                  ~scheme:Dpm_compiler.Insertion.Drpm ~specs program plan)));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  print_endline "== Micro-benchmarks (pipeline stages on galgel) ==";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name m ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock m
          in
          match Analyze.OLS.estimates stats with
          | Some [ t ] -> Printf.printf "  %-22s %12.1f ns/run\n%!" name t
          | Some _ | None -> Printf.printf "  %-22s (no estimate)\n%!" name)
        results)
    tests

(* --- CLI --- *)

let figures_arg =
  let doc =
    "Figures/tables to regenerate (default: all plus the \
     micro-benchmarks).  $(b,micro) selects the Bechamel \
     micro-benchmarks; $(b,stream) the streaming-vs-materialized \
     memory/throughput comparison (run it first — or alone — for \
     meaningful peak-heap deltas); $(b,throughput) the fast-vs-reference \
     replay-core comparison with allocation accounting."
  in
  Arg.(value & pos_all string [] & info [] ~doc ~docv:"FIGURE")

let baseline_arg =
  let doc =
    "Committed throughput floor (JSON with a $(b,schemes) object of \
     $(b,fast_eps)/$(b,speedup) floors and an optional $(b,tolerance), \
     default 0.75).  Only meaningful with the $(b,throughput) figure: \
     exits non-zero on a regression beyond the tolerance — the \
     $(b,make perf-check) gate."
  in
  Arg.(value & opt (some file) None & info [ "baseline" ] ~doc ~docv:"FILE")

let domains_arg =
  let doc =
    "Number of domains the experiment grids fan out over (default: the \
     runtime's recommended count, or $(b,DPM_DOMAINS)).  Results are \
     bit-identical whatever the value."
  in
  Arg.(value & opt (some int) None & info [ "d"; "domains" ] ~doc ~docv:"N")

let metrics_arg =
  let doc =
    "Collect and print per-stage wall time (workload build, compile, \
     trace generation, replay) and throughput counters."
  in
  Arg.(value & flag & info [ "m"; "metrics" ] ~doc)

let json_arg =
  let doc =
    "Write a machine-readable benchmark snapshot (schema dpm-bench/1): \
     per-figure wall times plus the stage/counter tables — the repo's \
     perf-trajectory artifact, uploaded by CI."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")

let trace_arg =
  let doc =
    "Record hierarchical spans (each figure, its pool tasks, every \
     compile/generate/replay underneath) and write Chrome trace_event \
     JSON for Perfetto or chrome://tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

let log_level_arg =
  let doc = "Structured-log threshold: error, warn, info or debug." in
  let level_conv =
    Arg.conv
      ( (fun s ->
          match Dpm_util.Log.level_of_string s with
          | Ok l -> Ok l
          | Error m -> Error (`Msg m)),
        fun ppf l -> Format.pp_print_string ppf (Dpm_util.Log.level_name l) )
  in
  Arg.(
    value & opt (some level_conv) None & info [ "log-level" ] ~doc ~docv:"LEVEL")

let run names domains metrics json trace log_level baseline =
  Option.iter Pool.set_default_domains domains;
  Option.iter Dpm_util.Log.set_level log_level;
  (* The snapshot embeds the stage table, so --json implies --metrics. *)
  if metrics || json <> None then Metrics.set_enabled Metrics.global true;
  if trace <> None then Dpm_util.Telemetry.(set_tracing global true);
  let total0 = Metrics.now () in
  let rc =
    match names with
    | [] ->
        (* stream first: its peak-heap deltas need a fresh process
           baseline (see [stream_mode]). *)
        let rc = stream_mode () in
        let rc = max rc (throughput_mode ~baseline ()) in
        let rc = max rc (sweep_mode ()) in
        List.iter (fun (name, f) -> print_figure name f) available;
        micro ();
        rc
    | names ->
        List.fold_left
          (fun rc name ->
            if String.equal name "micro" then begin
              micro ();
              rc
            end
            else if String.equal name "stream" then max rc (stream_mode ())
            else if String.equal name "throughput" then
              max rc (throughput_mode ~baseline ())
            else if String.equal name "sweep" then max rc (sweep_mode ())
            else
              match List.assoc_opt name available with
              | Some f ->
                  print_figure name f;
                  rc
              | None ->
                  Dpm_util.Log.error ~scope:"bench"
                    ~kv:
                      [
                        ("figure", name);
                        ( "available",
                          String.concat " " (List.map fst available)
                          ^ " stream throughput sweep micro" );
                      ]
                    "unknown figure";
                  2)
          0 names
  in
  if metrics then begin
    Printf.printf "total wall time: %.3f s (domains=%d)\n"
      (Metrics.now () -. total0)
      (Pool.default_domains ());
    print_string (Metrics.report Metrics.global)
  end;
  (match json with
  | None -> ()
  | Some path ->
      let doc =
        Dpm_core.Report.bench_snapshot
          ~extra:(!stream_section @ !throughput_section @ !sweep_section)
          ~figures:(List.rev !timings) ()
      in
      (match Dpm_core.Report.validate_bench doc with
      | Ok () -> ()
      | Error msgs ->
          List.iter (fun m -> Dpm_util.Log.error ~scope:"bench" m) msgs);
      let oc = open_out path in
      Dpm_util.Json.to_channel ~indent:1 oc doc;
      output_char oc '\n';
      close_out oc;
      Dpm_util.Log.info ~scope:"bench"
        ~kv:[ ("file", path) ]
        "wrote benchmark snapshot");
  (match trace with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Dpm_util.Telemetry.(write_chrome_trace global) oc;
      close_out oc;
      Dpm_util.Log.info ~scope:"bench"
        ~kv:[ ("file", path) ]
        "wrote Chrome trace");
  rc

let () =
  let doc =
    "Regenerate the paper's tables and figures, with optional \
     multi-domain fan-out, per-stage metrics, Chrome traces and \
     machine-readable snapshots."
  in
  let info = Cmd.info "dpm-bench" ~doc in
  exit
    (Cmd.eval'
       (Cmd.v info
          Term.(
            const run $ figures_arg $ domains_arg $ metrics_arg $ json_arg
            $ trace_arg $ log_level_arg $ baseline_arg)))
