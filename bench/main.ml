(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (printed as text tables) and runs Bechamel
   micro-benchmarks of the pipeline stages.

   Usage:
     bench/main.exe                          -- everything
     bench/main.exe fig3 table2              -- selected figures only
     bench/main.exe micro                    -- only the micro-benchmarks
     bench/main.exe fig3 --domains 4 --metrics
                                             -- fan the grid out over 4
                                                domains and report
                                                per-stage wall time *)

open Cmdliner
module Figures = Dpm_core.Figures
module Metrics = Dpm_util.Metrics
module Pool = Dpm_util.Pool

let available =
  [
    ("table1", Figures.table1);
    ("table2", Figures.table2);
    ("fig3", Figures.fig3);
    ("fig4", Figures.fig4);
    ("table3", Figures.table3);
    ("fig5", Figures.fig5);
    ("fig6", Figures.fig6);
    ("fig7", Figures.fig7);
    ("fig8", Figures.fig8);
    ("fig13", Figures.fig13);
    ("ext", Figures.extensions);
    ("ext-shared", Figures.shared_subsystem);
    ("ablation-knobs", Figures.knob_ablation);
    ("ablation-closed", Figures.closed_loop_ablation);
    ("fault-sweep", Figures.fault_sweep);
    ("fig3-degraded", fun () -> Figures.degraded_grid ());
  ]

(* Per-figure wall times, in run order — the BENCH snapshot's payload. *)
let timings : (string * float) list ref = ref []

let print_figure name f =
  let t0 = Metrics.now () in
  let figure = Figures.traced name f in
  let dt = Metrics.now () -. t0 in
  timings := (name, dt) :: !timings;
  if Metrics.enabled Metrics.global then
    Metrics.record_span Metrics.global ("figure." ^ name) dt;
  print_string figure.Figures.rendered;
  print_newline ()

(* --- Bechamel micro-benchmarks: one per pipeline stage --- *)

let micro () =
  let open Bechamel in
  let spec = Dpm_workloads.Suite.find "galgel" in
  let program = Dpm_workloads.Suite.program spec in
  let plan = Dpm_workloads.Suite.default_plan program in
  let specs = Dpm_sim.Config.default.Dpm_sim.Config.specs in
  let trace = Dpm_trace.Generate.run program plan in
  let source = spec.Dpm_workloads.Suite.source () in
  let tests =
    [
      Test.make ~name:"parse-galgel"
        (Staged.stage (fun () ->
             ignore (Dpm_ir.Parser.program ~name:"galgel" source)));
      Test.make ~name:"access-analysis"
        (Staged.stage (fun () ->
             ignore (Dpm_compiler.Access.of_program_cached program plan)));
      Test.make ~name:"timing-profile"
        (Staged.stage (fun () ->
             ignore (Dpm_compiler.Estimate.profile ~specs program plan)));
      Test.make ~name:"trace-generation"
        (Staged.stage (fun () -> ignore (Dpm_trace.Generate.run program plan)));
      Test.make ~name:"replay-base"
        (Staged.stage (fun () ->
             ignore (Dpm_sim.Engine.run Dpm_sim.Policy.base trace)));
      Test.make ~name:"compile-cmdrpm"
        (Staged.stage (fun () ->
             ignore
               (Dpm_compiler.Pipeline.compile
                  ~scheme:Dpm_compiler.Insertion.Drpm ~specs program plan)));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  print_endline "== Micro-benchmarks (pipeline stages on galgel) ==";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name m ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock m
          in
          match Analyze.OLS.estimates stats with
          | Some [ t ] -> Printf.printf "  %-22s %12.1f ns/run\n%!" name t
          | Some _ | None -> Printf.printf "  %-22s (no estimate)\n%!" name)
        results)
    tests

(* --- CLI --- *)

let figures_arg =
  let doc =
    "Figures/tables to regenerate (default: all plus the \
     micro-benchmarks).  $(b,micro) selects the Bechamel \
     micro-benchmarks."
  in
  Arg.(value & pos_all string [] & info [] ~doc ~docv:"FIGURE")

let domains_arg =
  let doc =
    "Number of domains the experiment grids fan out over (default: the \
     runtime's recommended count, or $(b,DPM_DOMAINS)).  Results are \
     bit-identical whatever the value."
  in
  Arg.(value & opt (some int) None & info [ "d"; "domains" ] ~doc ~docv:"N")

let metrics_arg =
  let doc =
    "Collect and print per-stage wall time (workload build, compile, \
     trace generation, replay) and throughput counters."
  in
  Arg.(value & flag & info [ "m"; "metrics" ] ~doc)

let json_arg =
  let doc =
    "Write a machine-readable benchmark snapshot (schema dpm-bench/1): \
     per-figure wall times plus the stage/counter tables — the repo's \
     perf-trajectory artifact, uploaded by CI."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")

let trace_arg =
  let doc =
    "Record hierarchical spans (each figure, its pool tasks, every \
     compile/generate/replay underneath) and write Chrome trace_event \
     JSON for Perfetto or chrome://tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

let log_level_arg =
  let doc = "Structured-log threshold: error, warn, info or debug." in
  let level_conv =
    Arg.conv
      ( (fun s ->
          match Dpm_util.Log.level_of_string s with
          | Ok l -> Ok l
          | Error m -> Error (`Msg m)),
        fun ppf l -> Format.pp_print_string ppf (Dpm_util.Log.level_name l) )
  in
  Arg.(
    value & opt (some level_conv) None & info [ "log-level" ] ~doc ~docv:"LEVEL")

let run names domains metrics json trace log_level =
  Option.iter Pool.set_default_domains domains;
  Option.iter Dpm_util.Log.set_level log_level;
  (* The snapshot embeds the stage table, so --json implies --metrics. *)
  if metrics || json <> None then Metrics.set_enabled Metrics.global true;
  if trace <> None then Dpm_util.Telemetry.(set_tracing global true);
  let total0 = Metrics.now () in
  let rc =
    match names with
    | [] ->
        List.iter (fun (name, f) -> print_figure name f) available;
        micro ();
        0
    | names ->
        List.fold_left
          (fun rc name ->
            if String.equal name "micro" then begin
              micro ();
              rc
            end
            else
              match List.assoc_opt name available with
              | Some f ->
                  print_figure name f;
                  rc
              | None ->
                  Dpm_util.Log.error ~scope:"bench"
                    ~kv:
                      [
                        ("figure", name);
                        ( "available",
                          String.concat " " (List.map fst available) ^ " micro"
                        );
                      ]
                    "unknown figure";
                  2)
          0 names
  in
  if metrics then begin
    Printf.printf "total wall time: %.3f s (domains=%d)\n"
      (Metrics.now () -. total0)
      (Pool.default_domains ());
    print_string (Metrics.report Metrics.global)
  end;
  (match json with
  | None -> ()
  | Some path ->
      let doc =
        Dpm_core.Report.bench_snapshot ~figures:(List.rev !timings) ()
      in
      (match Dpm_core.Report.validate_bench doc with
      | Ok () -> ()
      | Error msgs ->
          List.iter (fun m -> Dpm_util.Log.error ~scope:"bench" m) msgs);
      let oc = open_out path in
      Dpm_util.Json.to_channel ~indent:1 oc doc;
      output_char oc '\n';
      close_out oc;
      Dpm_util.Log.info ~scope:"bench"
        ~kv:[ ("file", path) ]
        "wrote benchmark snapshot");
  (match trace with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Dpm_util.Telemetry.(write_chrome_trace global) oc;
      close_out oc;
      Dpm_util.Log.info ~scope:"bench"
        ~kv:[ ("file", path) ]
        "wrote Chrome trace");
  rc

let () =
  let doc =
    "Regenerate the paper's tables and figures, with optional \
     multi-domain fan-out, per-stage metrics, Chrome traces and \
     machine-readable snapshots."
  in
  let info = Cmd.info "dpm-bench" ~doc in
  exit
    (Cmd.eval'
       (Cmd.v info
          Term.(
            const run $ figures_arg $ domains_arg $ metrics_arg $ json_arg
            $ trace_arg $ log_level_arg)))
