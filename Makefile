.PHONY: all build test check bench fault-check timeline-check report-check \
  stream-check perf-check sweep-check sched-check meter-check serve-check \
  clean

all: build

build:
	dune build

# Tier-1 verification: full build + test suite, including the
# property-based Pool/determinism tests and the golden-file comparison
# of Table 2 and Figures 3/4 (test/golden/*.expected).
test:
	dune runtest

check: build test

# Regenerate every table/figure with metrics, fanned out over domains.
bench: build
	dune exec bench/main.exe -- --metrics

# Fault-injection smoke: a fixed seeded fault spec on swim must
# reproduce the checked-in golden byte-for-byte (determinism of the
# degraded-mode replay end-to-end through the CLI).
FAULT_SPEC = seed=7,read=0.01,bad=0.005,spinfail=0.25,fail=0@30
fault-check: build
	dune exec bin/dpmsim.exe -- simulate -b swim -s Base,DRPM,CMDRPM \
	  --faults "$(FAULT_SPEC)" > _build/fault_smoke.out
	cmp _build/fault_smoke.out test/golden/fault_smoke.expected

# Timeline smoke: the per-scheme event-log summary of a fixed run must
# reproduce the checked-in golden byte-for-byte; recording must not
# change the results table (the observer-effect guarantee, end-to-end
# through the CLI); and the JSONL export must read back cleanly with
# zero invariant violations.
timeline-check: build
	dune exec bin/dpmsim.exe -- simulate -b galgel -s Base,CMDRPM \
	  --timeline - > _build/timeline_smoke.out
	cmp _build/timeline_smoke.out test/golden/timeline_smoke.expected
	dune exec bin/dpmsim.exe -- simulate -b galgel -s CMDRPM \
	  --timeline _build/timeline_smoke.jsonl > _build/timeline_on.out
	dune exec bin/dpmsim.exe -- simulate -b galgel -s CMDRPM \
	  > _build/timeline_off.out
	cmp _build/timeline_on.out _build/timeline_off.out
	dune exec bin/dpmsim.exe -- timeline _build/timeline_smoke.jsonl > /dev/null

# Observability smoke: generate a full run report (JSON + markdown) and
# a Chrome trace, validate both (schema fields, invariant verdicts,
# balanced B/E events), and pin the report's schema outline against the
# golden — values may drift, the shape may not.  Also snapshots the
# benchmark harness's dpm-bench/1 JSON.
report-check: build
	dune exec bin/dpmsim.exe -- report -b swim --faults "$(FAULT_SPEC)" \
	  -o _build/report.json --md _build/report.md --trace _build/report_trace.json
	dune exec bin/dpmsim.exe -- report-check _build/report.json \
	  --trace _build/report_trace.json --schema > _build/report_schema.out
	cmp _build/report_schema.out test/golden/report_schema.expected
	dune exec bench/main.exe -- table1 --json _build/bench.json > /dev/null

# Streaming smoke: the fused generate→replay pipeline must be
# byte-identical to the materialized path through the CLI — against the
# checked-in golden, against a fresh materialized run, and with fault
# injection on — and the benchmark's stream mode must show bounded peak
# memory (it exits non-zero when the streaming/materialized results
# diverge or the streaming heap is not well below the materialized one).
stream-check: build
	dune exec bin/dpmsim.exe -- simulate -b swim -s Base,DRPM,CMDRPM \
	  --stream --batch 7 > _build/stream_smoke.out
	cmp _build/stream_smoke.out test/golden/stream_smoke.expected
	dune exec bin/dpmsim.exe -- simulate -b swim -s Base,DRPM,CMDRPM \
	  > _build/stream_materialized.out
	cmp _build/stream_smoke.out _build/stream_materialized.out
	dune exec bin/dpmsim.exe -- simulate -b swim -s Base,DRPM,CMDRPM \
	  --stream --faults "$(FAULT_SPEC)" > _build/stream_faults.out
	cmp _build/stream_faults.out test/golden/fault_smoke.expected
	dune exec bench/main.exe -- stream --json _build/stream_bench.json

# Replay-core throughput gate: the fast SoA core must stay within
# tolerance of the committed events/sec and fast-vs-reference speedup
# floors (test/golden/bench_baseline.json), and must produce results
# structurally identical to the reference core on every scheme (the
# benchmark exits non-zero on either failure).
perf-check: build
	dune exec bench/main.exe -- throughput --json _build/throughput.json \
	  --baseline test/golden/bench_baseline.json

# Scheduler smoke: every request-scheduling discipline replays the same
# faulty mixed-fleet workload (a fast 36Z15 round-robined with a flash
# tier) and must reproduce the checked-in golden byte-for-byte.  FCFS
# pins the legacy engine; the others pin the deferred-dispatch queues
# end-to-end through the CLI, fleet plumbing and fault layer included.
sched-check: build
	set -e; : > _build/sched_smoke.out; \
	for s in fcfs sstf scan c-look sstf-remap; do \
	  echo "== sched=$$s ==" >> _build/sched_smoke.out; \
	  dune exec bin/dpmsim.exe -- simulate -b swim -s Base,DRPM,CMDRPM \
	    --fleet ultrastar_36z15,flash --sched $$s \
	    --faults "$(FAULT_SPEC)" >> _build/sched_smoke.out; \
	done
	cmp _build/sched_smoke.out test/golden/sched_smoke.expected

# Power-meter smoke: the rendered per-disk power strip + summary of a
# fixed run must reproduce the checked-in golden byte-for-byte; metering
# must not change the results table (the observer-effect guarantee,
# end-to-end through the CLI); and a small sweep's artifacts — two
# replayed winning specs metered to dpm-meter/1 JSONL plus two run
# reports (one under SSTF with fault injection) — must aggregate into a
# valid dpm-agg/1 fleet dashboard (dpmsim aggregate validates its own
# output and exits non-zero otherwise).
meter-check: build
	dune exec bin/dpmsim.exe -- simulate -b galgel -s Base,CMDRPM \
	  --meter - --resolution 2 > _build/meter_smoke.out
	cmp _build/meter_smoke.out test/golden/meter_smoke.expected
	dune exec bin/dpmsim.exe -- simulate -b galgel -s CMDRPM \
	  --meter _build/meter_on.jsonl > _build/meter_on.out
	dune exec bin/dpmsim.exe -- simulate -b galgel -s CMDRPM \
	  > _build/meter_off.out
	cmp _build/meter_on.out _build/meter_off.out
	rm -rf _build/meter_sweep
	dune exec bin/dpmsim.exe -- sweep --axes "tpm-threshold=4,15.2" \
	  -w swim,galgel -s Base,TPM,CMDRPM \
	  --output-dir _build/meter_sweep > /dev/null
	dune exec bin/dpmsim.exe -- simulate \
	  --spec _build/meter_sweep/best-swim.spec.json \
	  --meter _build/meter_sweep/best-swim.meter.jsonl > /dev/null
	dune exec bin/dpmsim.exe -- simulate \
	  --spec _build/meter_sweep/best-galgel.spec.json \
	  --meter _build/meter_sweep/best-galgel.meter.jsonl > /dev/null
	dune exec bin/dpmsim.exe -- report -b swim --sched sstf \
	  --faults "$(FAULT_SPEC)" \
	  -o _build/meter_sweep/report-swim.json > /dev/null
	dune exec bin/dpmsim.exe -- report -b galgel \
	  --fleet ultrastar_36z15,flash \
	  -o _build/meter_sweep/report-galgel.json > /dev/null
	dune exec bin/dpmsim.exe -- aggregate _build/meter_sweep \
	  -o _build/meter_agg.json --md _build/meter_agg.md

# Auto-tuning sweep smoke: a fixed 2x2 thresholds x tolerances grid over
# swim and galgel must reproduce the checked-in golden byte-for-byte
# (determinism of the whole sweep: grid expansion, parallel fan-out,
# best/winner selection, sensitivity analysis), emit a valid dpm-sweep/1
# JSON document (the CI artifact), and replay each persisted winning
# spec bit-identically (dpmsim exits non-zero otherwise).
sweep-check: build
	dune exec bin/dpmsim.exe -- sweep \
	  --axes "tpm-threshold=4,15.2;drpm-lower=0.02,0.08" -w swim,galgel \
	  --output-dir _build/sweep > _build/sweep_smoke.out
	cmp _build/sweep_smoke.out test/golden/sweep_smoke.expected

# Service smoke: a daemon on a Unix socket serves a mixed committed
# spec batch — a benchmark run, an open-loop multi-tenant run, and one
# metered job whose streamed samples the client integrates against the
# report's energy column — and the client's deterministic stdout must
# reproduce the checked-in golden byte-for-byte.  The shutdown op drains
# the queue (the daemon exits 0 only after every admitted job finished),
# and every results-table line of a direct `simulate --spec` of the same
# spec must appear verbatim in the daemon output (daemon == direct
# execution, end-to-end over the wire).
serve-check: build
	set -e; rm -f _build/serve.sock; rm -rf _build/serve_reports; \
	_build/default/bin/dpmsim.exe serve --socket _build/serve.sock \
	  --queue 2 --domains 2 > _build/serve_daemon.log 2>&1 & \
	pid=$$!; \
	_build/default/bin/dpmsim.exe submit --socket _build/serve.sock \
	  -o _build/serve_reports \
	  test/specs/serve-swim.spec.json test/specs/serve-openloop.spec.json \
	  > _build/serve_smoke.out 2>/dev/null; \
	_build/default/bin/dpmsim.exe submit --socket _build/serve.sock \
	  --meter 2 -o _build/serve_reports --shutdown \
	  test/specs/serve-metered.spec.json \
	  >> _build/serve_smoke.out 2>/dev/null; \
	wait $$pid
	cmp _build/serve_smoke.out test/golden/serve_smoke.expected
	_build/default/bin/dpmsim.exe simulate \
	  --spec test/specs/serve-swim.spec.json > _build/serve_direct.out
	while IFS= read -r line; do \
	  grep -Fxq "$$line" _build/serve_smoke.out \
	    || { echo "daemon output missing: $$line"; exit 1; }; \
	done < _build/serve_direct.out

clean:
	dune clean
