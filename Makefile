.PHONY: all build test check bench clean

all: build

build:
	dune build

# Tier-1 verification: full build + test suite, including the
# property-based Pool/determinism tests and the golden-file comparison
# of Table 2 and Figures 3/4 (test/golden/*.expected).
test:
	dune runtest

check: build test

# Regenerate every table/figure with metrics, fanned out over domains.
bench: build
	dune exec bench/main.exe -- --metrics

clean:
	dune clean
