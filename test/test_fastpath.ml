(* The fast SoA replay core versus the reference body — the PR-6
   acceptance property.  [Engine.run_stream ~core:`Fast] must be
   byte-identical to [~core:`Reference] on results, timeline event
   lists, fault counters and telemetry histograms, for every policy
   shape, batch size and fault setting; and the specialized loops must
   not allocate per event.  The SoA chunk representation itself is
   pinned by lossless round-trip tests against the record events. *)

module Request = Dpm_trace.Request
module Trace = Dpm_trace.Trace
module Stream = Trace.Stream
module Chunk = Stream.Chunk
module Engine = Dpm_sim.Engine
module Policy = Dpm_sim.Policy
module Config = Dpm_sim.Config
module Fault = Dpm_sim.Fault
module Fastpath = Dpm_sim.Fastpath
module Timeline = Dpm_sim.Timeline
module Result = Dpm_sim.Result
module Experiment = Dpm_core.Experiment
module Scheme = Dpm_core.Scheme
module Run = Dpm_core.Run
module Pool = Dpm_util.Pool
module Telemetry = Dpm_util.Telemetry

(* Policies are built fresh per replay: the reactive ones carry mutable
   controller state (DRPM windows, adaptive thresholds) that must not
   leak across runs. *)
let policies config ~ndisks =
  [
    ("base", fun () -> Policy.base);
    ("tpm", fun () -> Policy.tpm config);
    ("tpm_adaptive", fun () -> Policy.tpm_adaptive config ~ndisks);
    ("drpm", fun () -> Policy.drpm config ~ndisks);
    ("adaptive", fun () -> Policy.adaptive config ~ndisks);
    ("cm_tpm", fun () -> Policy.cm_tpm);
    ("cm_drpm", fun () -> Policy.cm_drpm);
  ]

let replay_pair ?(config = Config.default) ~faults ~batch mk trace =
  let sink_r = Timeline.sink () and sink_f = Timeline.sink () in
  let r_ref =
    Engine.run_stream ~config ~faults ~timeline:sink_r ~core:`Reference
      (mk ())
      (Stream.of_trace ~batch trace)
  in
  let r_fast =
    Engine.run_stream ~config ~faults ~timeline:sink_f ~core:`Fast (mk ())
      (Stream.of_trace ~batch trace)
  in
  ( (r_ref, Timeline.events (Timeline.contents sink_r)),
    (r_fast, Timeline.events (Timeline.contents sink_f)) )

(* --- The core differential property --- *)

(* The fleet varies too: the specialized loops carry per-disk service
   tables and nominal-time caches, and heterogeneous fleets (FCFS, so
   the fast path genuinely engages) must not break the differential. *)
let qcheck_core_equiv =
  QCheck2.Test.make ~count:25
    ~name:
      "fastpath: core:`Fast ≡ core:`Reference (policies × batches × faults × \
       fleets)"
    QCheck2.Gen.(tup2 Gen.gen_trace Gen.gen_fleet)
    (fun (trace, fleet) ->
      let config = Config.with_fleet fleet Config.default in
      let ndisks = Trace.ndisks trace in
      List.for_all
        (fun (_, mk) ->
          List.for_all
            (fun batch ->
              List.for_all
                (fun faults ->
                  let (r_r, tl_r), (r_f, tl_f) =
                    replay_pair ~config ~faults ~batch mk trace
                  in
                  r_r = r_f && tl_r = tl_f
                  && r_r.Result.faults = r_f.Result.faults)
                [ Fault.none; Gen.fault_spec ])
            [ 1; 7; 4096 ])
        (policies config ~ndisks))

(* An artificial policy of the one unsupported shape (request-driven
   hooks AND trace directives): `Fast must detect it and fall back to
   the reference body rather than misreplay. *)
let test_unsupported_shape_falls_back () =
  let hooked_cm =
    { Policy.cm_drpm with Policy.kind = Policy.Hooked; name = "weird" }
  in
  Alcotest.(check bool)
    "shape rejected by Fastpath.supported" false
    (Fastpath.supported ~config:Config.default hooked_cm);
  let trace = Gen.sample_trace () in
  let r_ref =
    Engine.run_stream ~core:`Reference hooked_cm (Stream.of_trace trace)
  in
  let r_fast =
    Engine.run_stream ~core:`Fast hooked_cm (Stream.of_trace trace)
  in
  Alcotest.(check bool) "fallback result identical" true (r_ref = r_fast);
  (* Same property for the Adaptive auto-tuner forced into the
     unsupported shape: the fast core must fall back, and because the
     controller's learned state is rebuilt per replay the fallback is
     still bit-identical. *)
  let directive_adaptive () =
    {
      (Policy.adaptive Config.default ~ndisks:(Trace.ndisks trace)) with
      Policy.accepts_directives = true;
    }
  in
  Alcotest.(check bool)
    "directive-accepting adaptive rejected by Fastpath.supported" false
    (Fastpath.supported ~config:Config.default (directive_adaptive ()));
  let r_ref =
    Engine.run_stream ~core:`Reference (directive_adaptive ())
      (Stream.of_trace trace)
  in
  let r_fast =
    Engine.run_stream ~core:`Fast (directive_adaptive ())
      (Stream.of_trace trace)
  in
  Alcotest.(check bool) "adaptive fallback result identical" true
    (r_ref = r_fast)

let test_supported_shapes () =
  List.iter
    (fun (name, mk) ->
      Alcotest.(check bool) (name ^ " supported") true
        (Fastpath.supported ~config:Config.default (mk ())))
    (policies Config.default ~ndisks:4)

(* --- Experiment level: all seven schemes, both cores, 1 vs 4 domains --- *)

let test_experiment_core_equiv () =
  let trace = Gen.busy_trace ~think:0.4 ~n:60 ~ndisks:4 () in
  let results core domains =
    Pool.map ~domains
      (fun batch ->
        Experiment.replay_all
          ~setup:(Experiment.make_setup ~core ~batch ())
          (fun () -> Stream.of_trace ~batch trace))
      [ 1; 7 ]
  in
  let reference = results `Reference 1 in
  List.iter
    (fun fast ->
      List.iter2
        (fun per_batch_ref per_batch_fast ->
          List.iter2
            (fun (s, r_ref) (s', r_fast) ->
              Alcotest.(check string) "same scheme order" (Scheme.name s)
                (Scheme.name s');
              Alcotest.(check bool)
                (Scheme.name s ^ ": fast core byte-identical")
                true (r_ref = r_fast))
            per_batch_ref per_batch_fast)
        reference fast)
    [ results `Fast 1; results `Fast 4 ]

(* --- Telemetry histograms: the fast core feeds the same streams --- *)

let test_histograms_equal () =
  let trace = Gen.busy_trace ~think:0.02 ~n:200 ~ndisks:4 () in
  let capture core =
    let t = Telemetry.global in
    Telemetry.reset t;
    Telemetry.set_histograms t true;
    Fun.protect
      ~finally:(fun () ->
        Telemetry.set_histograms t false;
        Telemetry.reset t)
      (fun () ->
        ignore
          (Engine.run_stream ~core (Policy.tpm Config.default)
             (Stream.of_trace trace));
        Telemetry.histograms t)
  in
  let h_ref = capture `Reference and h_fast = capture `Fast in
  Alcotest.(check bool) "histograms present" true (h_ref <> []);
  Alcotest.(check bool) "identical histograms" true (h_ref = h_fast)

(* --- Allocation regression: the zero-allocation claim --- *)

let words_per_event core policy trace =
  let config = Config.make ~retain_busy:false () in
  let replay () =
    ignore (Engine.run_stream ~config ~core policy (Stream.of_trace trace))
  in
  replay ();
  (* warm: SoA memoization, minor heap shape *)
  let runs = 3 in
  let w0 = Gc.minor_words () in
  for _ = 1 to runs do
    replay ()
  done;
  let w1 = Gc.minor_words () in
  (w1 -. w0)
  /. float_of_int (runs * Array.length (Trace.events trace))

let test_allocation_regression () =
  let trace = Gen.busy_trace ~think:0.02 ~n:20_000 ~ndisks:4 () in
  (* Specialized non-hooked loops: a handful of words per *chunk*
     (stream bookkeeping), so well under one word per event. *)
  List.iter
    (fun (name, policy) ->
      let w = words_per_event `Fast policy trace in
      Alcotest.(check bool)
        (Printf.sprintf "%s allocates ~0/event (got %.3f)" name w)
        true (w < 1.0))
    [
      ("base", Policy.base);
      ("tpm", Policy.tpm Config.default);
      ("cm_drpm", Policy.cm_drpm);
    ];
  (* Hooked policies cross a closure boundary per served request, which
     boxes the float arguments: bounded, but not zero.  The reference
     core's per-event record decoding sits far above both. *)
  let w_hooked =
    words_per_event `Fast (Policy.drpm Config.default ~ndisks:4) trace
  in
  Alcotest.(check bool)
    (Printf.sprintf "drpm (hooked) bounded (got %.3f)" w_hooked)
    true
    (w_hooked < 24.0)

(* --- SoA chunk representation: lossless round-trips --- *)

let test_chunk_roundtrip () =
  let events = Array.of_list Gen.sample_events in
  let c = Chunk.of_events events in
  Alcotest.(check int) "length" (Array.length events) (Chunk.length c);
  Alcotest.(check bool) "events decode identically" true
    (Chunk.to_events c = events);
  (* Random traces too: every generated shape survives the encoding. *)
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~count:50 ~name:"chunk round-trip (random)"
       Gen.gen_trace (fun trace ->
         let events = Trace.events trace in
         Array.length events = 0
         || Chunk.to_events (Chunk.of_events events) = events))

let test_chunk_accessors () =
  let c = Chunk.create 4 in
  Alcotest.(check int) "fresh chunk empty" 0 (Chunk.length c);
  Chunk.push c (Gen.io ~think:0.5 ~disk:2 ~block:7 ~bytes:1024 ());
  Alcotest.(check int) "one event" 1 (Chunk.length c);
  Alcotest.(check (float 0.0)) "think" 0.5 (Chunk.think c 0);
  Alcotest.(check int) "tag" Chunk.tag_read (Chunk.tag c 0);
  Alcotest.(check int) "disk" 2 (Chunk.disk c 0);
  Alcotest.(check int) "block" 7 (Chunk.block c 0);
  Alcotest.(check int) "bytes" 1024 (Chunk.bytes c 0);
  Chunk.push c
    (Request.Pm { think = 0.1; directive = Request.Set_rpm { level = 3; disk = 1 } });
  Alcotest.(check int) "set_rpm tag" Chunk.tag_set_rpm (Chunk.tag c 1);
  Alcotest.(check int) "set_rpm level in block column" 3 (Chunk.block c 1);
  Alcotest.(check int) "set_rpm bytes zeroed" 0 (Chunk.bytes c 1);
  Alcotest.(check bool) "io tag classified" true (Chunk.is_io_tag Chunk.tag_write);
  Alcotest.(check bool) "pm tag classified" false
    (Chunk.is_io_tag Chunk.tag_spin_down);
  Chunk.clear c;
  Alcotest.(check int) "cleared" 0 (Chunk.length c);
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Trace.Stream.Chunk.get: index out of bounds") (fun () ->
      ignore (Chunk.get c 0))

(* next_soa must agree with next (same events, same cursor), and latch
   tail_think on exhaustion exactly like the record pull. *)
let drain_soa s =
  let acc = ref [] in
  let rec loop () =
    match Stream.next_soa s with
    | None -> ()
    | Some c ->
        acc := Chunk.to_events c :: !acc;
        loop ()
  in
  loop ();
  Array.concat (List.rev !acc)

let test_next_soa_matches_next () =
  let t = Gen.sample_trace () in
  List.iter
    (fun batch ->
      let via_soa = drain_soa (Stream.of_trace ~batch t) in
      Alcotest.(check bool) "same events as the record pull" true
        (via_soa = Trace.events t);
      let s = Stream.of_trace ~batch t in
      ignore (drain_soa s);
      Alcotest.(check (float 1e-9)) "tail latched after exhaustion" 0.25
        (Stream.tail_think s);
      Alcotest.(check bool) "exhaustion latched" true (Stream.next_soa s = None))
    [ 1; 3; 4096 ]

(* The of_file parser fills SoA chunks directly; they must decode to the
   same events the eager whole-file loader produces. *)
let test_of_file_soa_matches_load () =
  let t = Gen.sample_trace () in
  let path = Filename.temp_file "dpm_fastpath" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save t path;
      let eager = Trace.load path in
      List.iter
        (fun batch ->
          let via_soa = drain_soa (Stream.of_file ~batch path) in
          Alcotest.(check bool)
            (Printf.sprintf "batch %d: SoA parse ≡ eager load" batch)
            true
            (via_soa = Trace.events eager))
        [ 1; 3; 4096 ])

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "fastpath.differential",
      [
        q qcheck_core_equiv;
        Alcotest.test_case "unsupported shape falls back" `Quick
          test_unsupported_shape_falls_back;
        Alcotest.test_case "built-in policies supported" `Quick
          test_supported_shapes;
        Alcotest.test_case "experiment run (1 vs 4 domains)" `Slow
          test_experiment_core_equiv;
        Alcotest.test_case "telemetry histograms equal" `Quick
          test_histograms_equal;
      ] );
    ( "fastpath.allocation",
      [
        Alcotest.test_case "zero allocation per event" `Quick
          test_allocation_regression;
      ] );
    ( "fastpath.soa",
      [
        Alcotest.test_case "chunk round-trip" `Quick test_chunk_roundtrip;
        Alcotest.test_case "chunk accessors" `Quick test_chunk_accessors;
        Alcotest.test_case "next_soa ≡ next" `Quick test_next_soa_matches_next;
        Alcotest.test_case "of_file SoA ≡ eager load" `Quick
          test_of_file_soa_matches_load;
      ] );
  ]
