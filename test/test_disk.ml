(* Tests for Dpm_disk: the RPM ladder, the power model and its per-gap
   optimization, and the service-time model (checked against the figures
   implied by the paper's Table 2). *)

module Specs = Dpm_disk.Specs
module Rpm = Dpm_disk.Rpm
module Power = Dpm_disk.Power
module Service = Dpm_disk.Service

let specs = Specs.ultrastar_36z15
let top = Rpm.max_level specs
let check_float = Alcotest.(check (float 1e-6))

(* --- Rpm --- *)

let test_rpm_ladder () =
  Alcotest.(check int) "11 levels" 11 (Rpm.num_levels specs);
  Alcotest.(check int) "bottom" 3000 (Rpm.rpm_of_level specs 0);
  Alcotest.(check int) "top" 15000 (Rpm.rpm_of_level specs top);
  Alcotest.(check int) "step" 4200 (Rpm.rpm_of_level specs 1)

let test_rpm_level_of_rpm () =
  Alcotest.(check int) "exact" 0 (Rpm.level_of_rpm specs 3000);
  Alcotest.(check int) "round up" 1 (Rpm.level_of_rpm specs 3001);
  Alcotest.(check int) "clamp low" 0 (Rpm.level_of_rpm specs 100);
  Alcotest.(check int) "clamp high" top (Rpm.level_of_rpm specs 99999)

let test_rpm_transitions () =
  check_float "same level" 0.0 (Rpm.transition_time specs ~from_level:3 ~to_level:3);
  let t1 = Rpm.transition_time specs ~from_level:top ~to_level:0 in
  check_float "full swing" (12000.0 *. specs.Specs.rpm_transition_per_rpm) t1;
  check_float "symmetric" t1 (Rpm.transition_time specs ~from_level:0 ~to_level:top);
  Alcotest.(check bool) "much smaller than spin-up" true
    (t1 < specs.Specs.t_spin_up /. 2.0)

let test_rpm_transition_energy_conservative () =
  (* Charged at the idle power of the faster level involved. *)
  let e = Rpm.transition_energy specs ~from_level:top ~to_level:0 in
  let t = Rpm.transition_time specs ~from_level:top ~to_level:0 in
  check_float "faster-level power" (specs.Specs.p_idle *. t) e

let test_rpm_out_of_range () =
  Alcotest.check_raises "level 11"
    (Invalid_argument "Rpm.rpm_of_level: level 11 out of range") (fun () ->
      ignore (Rpm.rpm_of_level specs 11))

(* --- Power --- *)

let test_power_endpoints () =
  check_float "idle at top" specs.Specs.p_idle (Power.idle specs ~level:top);
  check_float "active at top" specs.Specs.p_active (Power.active specs ~level:top);
  check_float "standby" specs.Specs.p_standby (Power.standby specs)

let test_power_monotone_in_level () =
  for l = 0 to top - 1 do
    Alcotest.(check bool) "idle increases" true
      (Power.idle specs ~level:l < Power.idle specs ~level:(l + 1));
    Alcotest.(check bool) "active increases" true
      (Power.active specs ~level:l < Power.active specs ~level:(l + 1));
    Alcotest.(check bool) "active > idle" true
      (Power.active specs ~level:l > Power.idle specs ~level:l)
  done;
  Alcotest.(check bool) "idle above standby" true
    (Power.idle specs ~level:0 > Power.standby specs)

let test_power_tpm_break_even () =
  let be = Power.tpm_break_even specs in
  (* Hand computation from Table 1:
     (13 + 135 - 2.5 * 12.4) / (10.2 - 2.5) = 15.19s. *)
  Alcotest.(check (float 0.01)) "break-even" 15.19 be;
  (* At the break-even point, spinning down neither wins nor loses. *)
  let plan = Power.best_tpm_plan specs (be +. 1.0) in
  Alcotest.(check bool) "spins beyond break-even" true plan.Power.spin_down;
  let plan2 = Power.best_tpm_plan specs (be -. 1.0) in
  Alcotest.(check bool) "stays below break-even" false plan2.Power.spin_down

let test_power_tpm_plan_energy () =
  let gap = 30.0 in
  let plan = Power.best_tpm_plan specs gap in
  let expected =
    specs.Specs.e_spin_down +. specs.Specs.e_spin_up
    +. (specs.Specs.p_standby
       *. (gap -. specs.Specs.t_spin_down -. specs.Specs.t_spin_up))
  in
  check_float "spin-down energy" expected plan.Power.energy;
  Alcotest.(check bool) "beats staying" true
    (plan.Power.energy < Power.baseline_gap_energy specs gap)

let test_power_drpm_plan_tiny_gap () =
  let plan = Power.best_drpm_plan specs 0.001 in
  Alcotest.(check int) "stays at top" top plan.Power.level;
  Alcotest.(check bool) "no spin" true (not plan.Power.spin_down)

let test_power_drpm_plan_long_gap () =
  let plan = Power.best_drpm_plan specs 60.0 in
  Alcotest.(check bool) "drops deep" true (plan.Power.level <= 1);
  Alcotest.(check bool) "fits" true
    (plan.Power.down_time +. plan.Power.up_time <= 60.0);
  Alcotest.(check bool) "saves" true
    (plan.Power.energy < Power.baseline_gap_energy specs 60.0)

let qcheck_drpm_plan_optimal =
  (* The chosen level beats every other feasible level. *)
  QCheck2.Test.make ~count:200 ~name:"power: best_drpm_plan is argmin"
    QCheck2.Gen.(float_range 0.01 30.0)
    (fun gap ->
      let plan = Power.best_drpm_plan specs gap in
      let energy_at level =
        let down = Rpm.transition_time specs ~from_level:top ~to_level:level in
        let up = Rpm.transition_time specs ~from_level:level ~to_level:top in
        if down +. up > gap then None
        else
          Some
            (Rpm.transition_energy specs ~from_level:top ~to_level:level
            +. Rpm.transition_energy specs ~from_level:level ~to_level:top
            +. (Power.idle specs ~level *. (gap -. down -. up)))
      in
      List.for_all
        (fun l ->
          match energy_at l with
          | None -> true
          | Some e -> plan.Power.energy <= e +. 1e-9)
        (List.init (top + 1) Fun.id))

let qcheck_gap_plan_respects_fit =
  QCheck2.Test.make ~count:200
    ~name:"power: best_gap_plan transitions fit inside the gap"
    QCheck2.Gen.(
      triple (int_range 0 10) (int_range 0 10) (float_range 0.5 20.0))
    (fun (f, t, gap) ->
      let plan = Power.best_gap_plan specs ~from_level:f ~to_level:t gap in
      plan.Power.down_time +. plan.Power.up_time <= gap +. 1e-9
      || plan.Power.level = max f t)

let test_power_service_level () =
  (* Budget below even full-speed service forces the top level. *)
  Alcotest.(check int) "tight budget" top
    (Power.best_service_level specs ~budget:0.001 ~bytes:(Dpm_util.Units.kib 64));
  (* A huge budget allows the bottom level. *)
  Alcotest.(check int) "loose budget" 0
    (Power.best_service_level specs ~budget:1.0 ~bytes:(Dpm_util.Units.kib 64))

(* --- Service --- *)

let test_service_top_speed_matches_paper () =
  (* 3.4 ms seek + 2.0 ms rotation + 64 KB / 55 MB/s = 6.54 ms: the
     per-request time implied by the paper's Table 2 base numbers. *)
  let t = Service.request_time specs ~level:top ~bytes:(Dpm_util.Units.kib 64) in
  Alcotest.(check (float 1e-4)) "6.54 ms" 6.54e-3 t

let test_service_scales_with_level () =
  let t_top = Service.request_time specs ~level:top ~bytes:(Dpm_util.Units.kib 64) in
  let t_bot = Service.request_time specs ~level:0 ~bytes:(Dpm_util.Units.kib 64) in
  Alcotest.(check bool) "slower at low rpm" true (t_bot > t_top);
  (* Seek is speed-independent: the slowdown is bounded by 5x on the
     rotational and transfer parts. *)
  Alcotest.(check bool) "bounded by 5x" true
    (t_bot < specs.Specs.avg_seek +. (5.0 *. (t_top -. specs.Specs.avg_seek)) +. 1e-9)

let test_service_monotone_in_bytes () =
  let t1 = Service.request_time specs ~level:top ~bytes:(Dpm_util.Units.kib 32) in
  let t2 = Service.request_time specs ~level:top ~bytes:(Dpm_util.Units.kib 64) in
  Alcotest.(check bool) "more bytes, more time" true (t2 > t1)

(* --- Specs: registry and the Table-1 pretty-printer --- *)

let test_specs_pp_golden () =
  (* Pin the full Table 1 block: every field must be printed.  A field
     silently dropped from [Specs.pp] shows up here as a missing line. *)
  let rendered = Format.asprintf "@[<v>%a@]" Specs.pp specs in
  let expected =
    String.concat "\n"
      [
        "Disk Model              IBM Ultrastar 36Z15";
        "Storage Capacity        18 GB";
        "Average seek time       3.4 msec";
        "Average rotation time   2.0 msec";
        "Internal transfer rate  55 MB/sec";
        "Power (active)          13.5 W";
        "Power (idle)            10.2 W";
        "Power (standby)         2.5 W";
        "Energy (spin down)      13 J";
        "Time (spin down)        1.5 sec";
        "Energy (spin up)        135 J";
        "Time (spin up)          10.9 sec";
        "Maximum RPM level       15000 RPM";
        "Minimum RPM level       3000 RPM";
        "RPM Step-Size           1200 RPM";
        "RPM transition time     0.10 msec/RPM";
        "Spindle power exponent  2.8";
        "Window size             30";
      ]
  in
  Alcotest.(check string) "table 1 block" expected rendered

let test_specs_registry () =
  Alcotest.(check int) "three models" 3 (List.length Specs.all);
  List.iter
    (fun (slug, m) ->
      Alcotest.(check string) "name_of inverts registry" slug (Specs.name_of m);
      Alcotest.(check bool) "lookup by slug" true (Specs.of_name_opt slug = Some m);
      Alcotest.(check bool) "lookup by datasheet name" true
        (Specs.of_name_opt m.Specs.model_name = Some m);
      Alcotest.(check bool) "case-insensitive" true
        (Specs.of_name_opt (String.uppercase_ascii slug) = Some m))
    Specs.all;
  Alcotest.(check bool) "unknown model rejected" true
    (Specs.of_name_opt "quantum-bigfoot" = None)

let test_specs_new_models () =
  let lzx = Specs.ultrastar_36lzx in
  Alcotest.(check int) "36lzx has 6 DRPM levels" 6 (Rpm.num_levels lzx);
  Alcotest.(check int) "36lzx top rpm" 10_000 (Rpm.rpm_of_level lzx (Rpm.max_level lzx));
  Alcotest.(check bool) "36lzx slower than 36z15" true
    (lzx.Specs.avg_seek > specs.Specs.avg_seek);
  let flash = Specs.flash in
  Alcotest.(check int) "flash has a single level" 1 (Rpm.num_levels flash);
  check_float "flash zero spin-down energy" 0.0 flash.Specs.e_spin_down;
  check_float "flash zero spin-down time" 0.0 flash.Specs.t_spin_down;
  check_float "flash zero spin-up energy" 0.0 flash.Specs.e_spin_up;
  check_float "flash zero spin-up time" 0.0 flash.Specs.t_spin_up;
  check_float "flash zero rotation" 0.0 flash.Specs.avg_rotation;
  Alcotest.(check bool) "flash cheaper than disks" true
    (flash.Specs.p_active < specs.Specs.p_active
    && flash.Specs.p_active < Specs.ultrastar_36lzx.Specs.p_active)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "disk.specs",
      [
        Alcotest.test_case "pp golden" `Quick test_specs_pp_golden;
        Alcotest.test_case "registry round-trips" `Quick test_specs_registry;
        Alcotest.test_case "new models sane" `Quick test_specs_new_models;
      ] );
    ( "disk.rpm",
      [
        Alcotest.test_case "ladder" `Quick test_rpm_ladder;
        Alcotest.test_case "level_of_rpm" `Quick test_rpm_level_of_rpm;
        Alcotest.test_case "transitions" `Quick test_rpm_transitions;
        Alcotest.test_case "transition energy" `Quick
          test_rpm_transition_energy_conservative;
        Alcotest.test_case "out of range" `Quick test_rpm_out_of_range;
      ] );
    ( "disk.power",
      [
        Alcotest.test_case "endpoints" `Quick test_power_endpoints;
        Alcotest.test_case "monotone" `Quick test_power_monotone_in_level;
        Alcotest.test_case "tpm break-even" `Quick test_power_tpm_break_even;
        Alcotest.test_case "tpm plan energy" `Quick test_power_tpm_plan_energy;
        Alcotest.test_case "drpm tiny gap" `Quick test_power_drpm_plan_tiny_gap;
        Alcotest.test_case "drpm long gap" `Quick test_power_drpm_plan_long_gap;
        Alcotest.test_case "service level" `Quick test_power_service_level;
        q qcheck_drpm_plan_optimal;
        q qcheck_gap_plan_respects_fit;
      ] );
    ( "disk.service",
      [
        Alcotest.test_case "paper 6.54ms" `Quick test_service_top_speed_matches_paper;
        Alcotest.test_case "scales with level" `Quick test_service_scales_with_level;
        Alcotest.test_case "monotone in bytes" `Quick test_service_monotone_in_bytes;
      ] );
  ]
