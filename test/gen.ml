(* Shared trace constructors and QCheck generators for the simulator
   test suites (stream, fault, timeline, fastpath).  Everything here is
   deterministic or seeded: the differential suites compare replay
   results byte-for-byte, so the inputs must reproduce exactly. *)

module Request = Dpm_trace.Request
module Trace = Dpm_trace.Trace
module Fault = Dpm_sim.Fault

let kib = Dpm_util.Units.kib

let io ?(think = 0.05) ?(disk = 0) ?(block = 0) ?(bytes = kib 64)
    ?(kind = Request.Read) ?(nest = 0) ?(iter = 0) () =
  Request.Io { think; disk; block; bytes; kind; nest; iter }

(* A small fixed trace exercising every event shape: reads and writes of
   different sizes, all three directives, zero and non-zero think
   times. *)
let sample_events =
  [
    io ~think:0.001 ~disk:0 ~block:4 ();
    io ~think:0.002 ~disk:1 ~block:9 ~kind:Request.Write ~iter:1 ();
    Request.Pm { think = 0.5; directive = Request.Spin_down 2 };
    io ~think:0.0 ~disk:3 ~block:17 ~bytes:512 ~nest:1 ~iter:2 ();
    Request.Pm { think = 0.0; directive = Request.Spin_up 2 };
    io ~think:0.004 ~disk:2 ~block:3 ~bytes:(kib 8) ~kind:Request.Write
      ~nest:1 ~iter:3 ();
    Request.Pm
      { think = 1e-6; directive = Request.Set_rpm { level = 2; disk = 1 } };
    io ~think:0.001 ~disk:0 ~block:5 ~iter:4 ();
  ]

let sample_trace () =
  Trace.make ~tail_think:0.25 ~program:"smp" ~ndisks:4 sample_events

(* [n] reads round-robin over [ndisks], marching through the block
   space. *)
let busy_trace ?(think = 0.05) ?(program = "fault-t") ~n ~ndisks () =
  let events =
    List.init n (fun i -> io ~think ~disk:(i mod ndisks) ~block:i ())
  in
  Trace.make ~tail_think:0.5 ~program ~ndisks events

(* Seeded fault spec used by the differential suites: every fault class
   enabled, plus one whole-disk failure mid-run. *)
let fault_spec =
  Fault.make ~seed:11 ~read_error_rate:0.05 ~bad_unit_rate:0.05
    ~spin_up_failure_rate:0.3
    ~disk_failures:[ (0, 0.5) ]
    ()

let gen_event ndisks =
  QCheck2.Gen.(
    frequency
      [
        ( 8,
          map
            (fun (think, disk, block, big, read, iter) ->
              Request.Io
                {
                  think;
                  disk;
                  block;
                  bytes = (if big then kib 64 else 512);
                  kind = (if read then Request.Read else Request.Write);
                  nest = iter mod 3;
                  iter;
                })
            (tup6
               (float_bound_inclusive 0.02)
               (int_bound (ndisks - 1))
               (int_bound 63) bool bool (int_bound 500)) );
        ( 2,
          map
            (fun (think, disk, which) ->
              let directive =
                match which mod 3 with
                | 0 -> Request.Spin_down disk
                | 1 -> Request.Spin_up disk
                | _ -> Request.Set_rpm { level = which mod 5; disk }
              in
              Request.Pm { think; directive })
            (tup3
               (float_bound_inclusive 1.0)
               (int_bound (ndisks - 1))
               (int_bound 29)) );
      ])

let gen_trace =
  QCheck2.Gen.(
    let ndisks = 4 in
    map
      (fun (events, tail) ->
        Trace.make ~tail_think:tail ~program:"q" ~ndisks events)
      (tup2
         (list_size (int_range 0 120) (gen_event ndisks))
         (float_bound_inclusive 2.0)))

(* --- Heterogeneous fleets and scheduling disciplines --- *)

(* A fleet drawn from the model registry: empty (the legacy homogeneous
   configuration) or 1-4 models assigned round-robin over disk ids. *)
let gen_fleet =
  QCheck2.Gen.(
    let model =
      map
        (fun i -> snd (List.nth Dpm_disk.Specs.all i))
        (int_bound (List.length Dpm_disk.Specs.all - 1))
    in
    map Array.of_list (list_size (int_range 0 4) model))

let gen_sched = QCheck2.Gen.oneofl Dpm_sim.Sched.all

(* A full simulator configuration varying the axes the scheduler and
   fleet layers care about; everything else stays at the default. *)
let gen_config =
  QCheck2.Gen.(
    map
      (fun (fleet, sched, depth) ->
        Dpm_sim.Config.default
        |> Dpm_sim.Config.with_fleet fleet
        |> Dpm_sim.Config.with_sched sched
        |> Dpm_sim.Config.with_queue_depth depth)
      (tup3 gen_fleet gen_sched (int_range 1 48)))

let config_print c =
  Printf.sprintf "fleet=[%s] sched=%s depth=%d"
    (String.concat ","
       (Array.to_list (Array.map Dpm_disk.Specs.name_of c.Dpm_sim.Config.fleet)))
    (Dpm_sim.Config.sched_name c.Dpm_sim.Config.sched)
    c.Dpm_sim.Config.queue_depth
