(* Tests for Dpm_trace.Openloop: the descriptor string round-trips, the
   arrival plan is deterministic and well-formed, and — the PR's S4
   property — the k-way merge preserves every tenant's event order and
   the total event count at batch sizes {1, 7, 4096}, with the merged
   think deltas reconstructing each tenant's virtual arrival times. *)

module Openloop = Dpm_trace.Openloop
module Trace = Dpm_trace.Trace
module Stream = Dpm_trace.Trace.Stream
module Request = Dpm_trace.Request
module Run = Dpm_core.Run
module Scheme = Dpm_core.Scheme

let check = Alcotest.check
let checkb = Alcotest.(check bool)

(* --- descriptor strings --- *)

let test_string_round_trip () =
  List.iter
    (fun (descr, sources) ->
      let t, srcs =
        match Openloop.of_string descr with
        | Ok r -> r
        | Error m -> Alcotest.failf "of_string %S: %s" descr m
      in
      check (Alcotest.list Alcotest.string) "sources" sources srcs;
      check Alcotest.string "canonical form" descr
        (Openloop.to_string ~sources:srcs t);
      (* A second trip through the canonical form is a fixpoint. *)
      match Openloop.of_string (Openloop.to_string ~sources:srcs t) with
      | Ok (t2, s2) ->
          checkb "fixpoint descriptor" true (t = t2 && srcs = s2)
      | Error m -> Alcotest.failf "re-parse: %s" m)
    [
      ("rate=0.05,jobs=6,zipf=1,seed=3,sources=swim:mgrid", [ "swim"; "mgrid" ]);
      ("rate=2,burst=4,jobs=9,zipf=0.5,seed=11", []);
      ("rate=1,jobs=4,zipf=1,seed=0,sources=galgel", [ "galgel" ]);
    ]

let test_string_errors () =
  List.iter
    (fun descr ->
      match Openloop.of_string descr with
      | Ok _ -> Alcotest.failf "of_string %S should fail" descr
      | Error _ -> ())
    [
      "jobs=4";               (* missing rate *)
      "rate=1,tempo=3";       (* unknown key *)
      "rate=zero";            (* not a number *)
      "rate=1 jobs=2";        (* not key=value *)
      "rate=-1";              (* make validation *)
      "rate=1,jobs=0";
    ]

(* --- arrival plans --- *)

let test_plan_shape () =
  let t = Openloop.make ~arrival:(Openloop.Poisson 0.5) ~jobs:40 ~seed:9 () in
  let plan = Openloop.plan t ~nsources:3 in
  check Alcotest.int "one entry per job" 40 (Array.length plan);
  Array.iteri
    (fun i (start, k) ->
      checkb "source index in range" true (k >= 0 && k < 3);
      checkb "start finite and nonnegative" true
        (Float.is_finite start && start >= 0.0);
      if i > 0 then
        checkb "arrivals nondecreasing" true (fst plan.(i - 1) <= start))
    plan;
  (* Same descriptor, same plan: the RNG is split from the seed alone. *)
  checkb "deterministic" true (plan = Openloop.plan t ~nsources:3)

let test_plan_bursty () =
  let t =
    Openloop.make
      ~arrival:(Openloop.Bursty { rate = 1.0; burst = 4 })
      ~jobs:10 ~seed:2 ()
  in
  let plan = Openloop.plan t ~nsources:2 in
  check Alcotest.int "job count" 10 (Array.length plan);
  (* Bursty arrivals come in clusters that share one arrival instant. *)
  let distinct =
    Array.to_list plan |> List.map fst |> List.sort_uniq compare
    |> List.length
  in
  checkb "fewer distinct instants than jobs" true (distinct < 10)

let test_plan_source_pick_uses_zipf () =
  (* With extreme skew essentially every job lands on source 0. *)
  let t = Openloop.make ~zipf:16.0 ~jobs:64 ~seed:5 () in
  let plan = Openloop.plan t ~nsources:4 in
  let on0 =
    Array.fold_left (fun n (_, k) -> if k = 0 then n + 1 else n) 0 plan
  in
  checkb "skew concentrates on the hottest source" true (on0 >= 60)

(* --- merge: tenant order and count preservation --- *)

(* Tenants are identified by disjoint block ranges (blocks do not
   constrain the stream's disk validation). *)
let tenant_block j i = (j * 10_000) + i

let tenant_trace ~ndisks j events =
  Trace.make ~program:(Printf.sprintf "tenant%d" j) ~ndisks
    (List.mapi
       (fun i (think, disk) ->
         Request.Io
           {
             Request.think;
             disk;
             block = tenant_block j i;
             bytes = 512;
             kind = (if i mod 2 = 0 then Request.Read else Request.Write);
             nest = j;
             iter = i;
           })
       events)

let drain stream =
  let out = ref [] in
  Stream.iter (fun e -> out := e :: !out) stream;
  List.rev !out

let io_of = function
  | Request.Io io -> io
  | Request.Pm _ -> Alcotest.fail "unexpected PM event"

(* Check one merged stream against its tenants: per-tenant subsequence
   identity (everything but think), total count, nonnegative deltas, and
   virtual-time reconstruction: the merged running clock at tenant j's
   i-th event equals start_j + the tenant's own running clock. *)
let check_merge ~tenants ~merged =
  let merged = List.map io_of merged in
  List.iter
    (fun (io : Request.io) -> checkb "delta >= 0" true (io.Request.think >= 0.0))
    merged;
  check Alcotest.int "total count"
    (List.fold_left (fun n (_, evs) -> n + List.length evs) 0 tenants)
    (List.length merged);
  let clock = ref 0.0 in
  let arrivals =
    List.map
      (fun (io : Request.io) ->
        clock := !clock +. io.Request.think;
        (io, !clock))
      merged
  in
  List.iteri
    (fun j (start, evs) ->
      let mine =
        List.filter
          (fun ((io : Request.io), _) -> io.Request.block / 10_000 = j)
          arrivals
      in
      check Alcotest.int "tenant count" (List.length evs) (List.length mine);
      let vclock = ref start in
      List.iter2
        (fun (think, disk) ((io : Request.io), at) ->
          vclock := !vclock +. think;
          check Alcotest.int "disk" disk io.Request.disk;
          checkb "in-order blocks" true
            (io.Request.block = tenant_block j io.Request.iter);
          checkb "virtual arrival reconstructed" true
            (Float.abs (at -. !vclock) <= 1e-9 *. Float.max 1.0 !vclock))
        evs mine)
    tenants

let merge_tenants ~batch tenants =
  Openloop.merge ~batch
    (List.map
       (fun (j, (start, evs)) ->
         (start, Stream.of_trace (tenant_trace ~ndisks:4 j evs)))
       (List.mapi (fun j t -> (j, t)) tenants))

let test_merge_hand_built () =
  List.iter
    (fun batch ->
      let tenants =
        [
          (0.0, [ (0.5, 0); (1.0, 1); (0.25, 2) ]);
          (0.4, [ (0.1, 3); (0.1, 0); (2.0, 1) ]);
          (5.0, [ (0.0, 2) ]);
        ]
      in
      let merged = drain (merge_tenants ~batch tenants) in
      check_merge ~tenants ~merged)
    [ 1; 7; 4096 ]

let test_merge_ties_prefer_lowest_tenant () =
  (* Identical starts and all-zero thinks: every event is simultaneous,
     so the merge must drain tenant 0 entirely before tenant 1. *)
  let tenants = [ (0.0, [ (0.0, 0); (0.0, 1) ]); (0.0, [ (0.0, 2) ]) ] in
  let merged = List.map io_of (drain (merge_tenants ~batch:1 tenants)) in
  check
    (Alcotest.list Alcotest.int)
    "tenant ids in tie order" [ 0; 0; 1 ]
    (List.map (fun (io : Request.io) -> io.Request.block / 10_000) merged)

let test_merge_empty_tenant () =
  let tenants = [ (0.0, [ (1.0, 0) ]); (2.0, []) ] in
  let merged = drain (merge_tenants ~batch:1 tenants) in
  check Alcotest.int "only the non-empty tenant's event" 1
    (List.length merged);
  check_merge ~tenants ~merged

let qcheck_merge_preserves_order =
  let gen =
    QCheck2.Gen.(
      let tenant =
        pair (float_bound_exclusive 10.0)
          (list_size (int_range 0 30)
             (pair (float_bound_exclusive 2.0) (int_range 0 3)))
      in
      pair (oneofl [ 1; 7; 4096 ]) (list_size (int_range 1 4) tenant))
  in
  QCheck2.Test.make ~count:60
    ~name:"openloop merge preserves per-tenant order, count and clocks" gen
    (fun (batch, tenants) ->
      let merged = drain (merge_tenants ~batch tenants) in
      check_merge ~tenants ~merged;
      true)

(* --- end-to-end: batch size never changes the replayed numbers --- *)

let test_replay_batch_identity () =
  let exec batch =
    let load =
      Openloop.make ~arrival:(Openloop.Poisson 0.1) ~jobs:2 ~seed:4 ()
    in
    let spec =
      Run.spec ~schemes:[ Scheme.Base; Scheme.Tpm ] ~batch
        (Run.Open_loop { load; sources = [ "swim" ] })
    in
    match Run.exec_all spec with
    | Ok results ->
        List.map
          (fun (s, (r : Dpm_sim.Result.t)) ->
            Printf.sprintf "%s %.17g %.17g" (Scheme.name s)
              r.Dpm_sim.Result.energy r.Dpm_sim.Result.exec_time)
          results
    | Error e -> Alcotest.failf "exec: %s" (Run.error_message e)
  in
  check (Alcotest.list Alcotest.string) "batch 1 = batch 4096" (exec 1)
    (exec 4096)

let test_spec_json_round_trip () =
  let load =
    Openloop.make
      ~arrival:(Openloop.Bursty { rate = 0.25; burst = 3 })
      ~jobs:5 ~zipf:1.5 ~seed:7 ()
  in
  let spec =
    Run.spec
      ~schemes:[ Scheme.Base ]
      (Run.Open_loop { load; sources = [ "swim"; "mgrid" ] })
  in
  let j =
    match Run.to_json spec with
    | Ok j -> j
    | Error e -> Alcotest.failf "to_json: %s" (Run.error_message e)
  in
  let spec2 =
    match Run.of_json j with
    | Ok s -> s
    | Error e -> Alcotest.failf "of_json: %s" (Run.error_message e)
  in
  let j2 =
    match Run.to_json spec2 with
    | Ok j2 -> j2
    | Error e -> Alcotest.failf "re-to_json: %s" (Run.error_message e)
  in
  check Alcotest.string "spec JSON fixpoint"
    (Dpm_util.Json.to_string j)
    (Dpm_util.Json.to_string j2)

let suite =
  [
    ( "openloop",
      [
        Alcotest.test_case "descriptor round-trip" `Quick
          test_string_round_trip;
        Alcotest.test_case "descriptor errors" `Quick test_string_errors;
        Alcotest.test_case "plan shape and determinism" `Quick test_plan_shape;
        Alcotest.test_case "bursty plan clusters" `Quick test_plan_bursty;
        Alcotest.test_case "zipf skew" `Quick test_plan_source_pick_uses_zipf;
        Alcotest.test_case "merge hand-built batches {1,7,4096}" `Quick
          test_merge_hand_built;
        Alcotest.test_case "merge tie order" `Quick
          test_merge_ties_prefer_lowest_tenant;
        Alcotest.test_case "merge empty tenant" `Quick test_merge_empty_tenant;
        QCheck_alcotest.to_alcotest qcheck_merge_preserves_order;
        Alcotest.test_case "replay batch identity" `Slow
          test_replay_batch_identity;
        Alcotest.test_case "open-loop spec JSON round-trip" `Quick
          test_spec_json_round_trip;
      ] );
  ]
