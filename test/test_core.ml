(* End-to-end tests for Dpm_core: the qualitative claims of the paper's
   evaluation, verified on the fastest benchmark (galgel) plus targeted
   checks on swim.  These are the "shape" assertions of Figures 3/4. *)

module Scheme = Dpm_core.Scheme
module Experiment = Dpm_core.Experiment
module Figures = Dpm_core.Figures
module Result = Dpm_sim.Result

let galgel = lazy (Experiment.workload (Dpm_workloads.Suite.find "galgel"))

let galgel_results =
  lazy
    (let p, plan = Lazy.force galgel in
     let spec = Dpm_workloads.Suite.find "galgel" in
     Experiment.run_all
       ~setup:{ Experiment.default_setup with noise = spec.noise }
       p plan)

let energy s = (List.assoc s (Lazy.force galgel_results)).Result.energy
let time s = (List.assoc s (Lazy.force galgel_results)).Result.exec_time

let test_scheme_names () =
  Alcotest.(check int) "seven schemes" 7 (List.length Scheme.all);
  List.iter
    (fun s ->
      Alcotest.(check bool) "name round-trip" true
        (Scheme.of_name_opt (Scheme.name s) = Some s))
    Scheme.all;
  Alcotest.(check bool) "case-insensitive" true
    (Scheme.of_name_opt "cmdrpm" = Some Scheme.Cmdrpm);
  Alcotest.(check bool) "unknown name is None" true
    (Scheme.of_name_opt "nosuch" = None);
  Alcotest.(check bool) "cm flags" true
    (Scheme.is_compiler_managed Scheme.Cmtpm
    && not (Scheme.is_compiler_managed Scheme.Drpm));
  Alcotest.(check bool) "ideal flags" true
    (Scheme.is_ideal Scheme.Idrpm && not (Scheme.is_ideal Scheme.Cmdrpm))

(* Paper claim: TPM-family schemes achieve no savings on these codes
   (idle periods below the spin-down break-even). *)
let test_tpm_family_inert () =
  let base = energy Scheme.Base in
  Alcotest.(check (float 1e-6)) "TPM = Base" base (energy Scheme.Tpm);
  Alcotest.(check (float 1e-6)) "ITPM = Base" base (energy Scheme.Itpm);
  Alcotest.(check (float 1e-6)) "CMTPM = Base" base (energy Scheme.Cmtpm)

(* Paper claim: the proactive scheme beats the reactive one and comes
   close to (never beats) the oracle. *)
let test_drpm_family_ordering () =
  Alcotest.(check bool) "CMDRPM saves vs Base" true
    (energy Scheme.Cmdrpm < energy Scheme.Base);
  Alcotest.(check bool) "CMDRPM beats reactive DRPM" true
    (energy Scheme.Cmdrpm < energy Scheme.Drpm);
  Alcotest.(check bool) "oracle is a lower bound" true
    (energy Scheme.Idrpm <= energy Scheme.Cmdrpm +. 1e-6)

(* Paper claim: CMDRPM incurs almost no performance penalty; the ideal
   schemes incur none at all. *)
let test_time_penalties () =
  let base = time Scheme.Base in
  Alcotest.(check (float 1e-9)) "IDRPM no penalty" base (time Scheme.Idrpm);
  Alcotest.(check (float 1e-9)) "ITPM no penalty" base (time Scheme.Itpm);
  Alcotest.(check bool) "CMDRPM within 5%" true
    (time Scheme.Cmdrpm <= base *. 1.05)

let test_misprediction_bounds () =
  let p, plan = Lazy.force galgel in
  let spec = Dpm_workloads.Suite.find "galgel" in
  let m =
    Experiment.misprediction_pct
      ~setup:{ Experiment.default_setup with noise = spec.noise }
      p plan
  in
  Alcotest.(check bool) "in [0, 100]" true (m >= 0.0 && m <= 100.0);
  (* Zero noise leaves nothing to mispredict beyond granularity; it must
     not be larger than the noisy figure by more than a rounding step. *)
  let m0 = Experiment.misprediction_pct p plan in
  Alcotest.(check bool) "noise-free mispredicts less" true (m0 <= m +. 1e-9)

let test_run_single_matches_run_all () =
  let p, plan = Lazy.force galgel in
  let spec = Dpm_workloads.Suite.find "galgel" in
  let setup = { Experiment.default_setup with noise = spec.noise } in
  let single = Experiment.run ~setup Scheme.Cmdrpm p plan in
  Alcotest.(check (float 1e-6)) "single = grid"
    (energy Scheme.Cmdrpm) single.Result.energy

(* Transformations: the paper's per-benchmark applicability claims. *)
let test_transforms_leave_galgel_alone () =
  let p, plan = Lazy.force galgel in
  List.iter
    (fun v ->
      let setup = { Experiment.default_setup with version = v } in
      let r = Experiment.run ~setup Scheme.Base p plan in
      (* galgel is not fissionable and its tiled layout stays row-major,
         so LF must be an identity and TL must stay within 3%. *)
      match v with
      | Dpm_compiler.Pipeline.LF | Dpm_compiler.Pipeline.LF_DL ->
          Alcotest.(check (float 1e-6)) "LF identity" (energy Scheme.Base)
            r.Result.energy
      | Dpm_compiler.Pipeline.TL | Dpm_compiler.Pipeline.TL_DL
      | Dpm_compiler.Pipeline.TL_ALL_DL ->
          Alcotest.(check bool) "TL within 3%" true
            (Float.abs (r.Result.energy -. energy Scheme.Base)
            <= 0.03 *. energy Scheme.Base)
      | Dpm_compiler.Pipeline.Orig -> ())
    Dpm_compiler.Pipeline.all_versions

let test_closed_loop_penalizes_delays () =
  let p, plan = Lazy.force galgel in
  let spec = Dpm_workloads.Suite.find "galgel" in
  let setup =
    { Experiment.default_setup with noise = spec.noise; mode = `Closed }
  in
  let results =
    Experiment.run_all ~setup ~schemes:[ Scheme.Base; Scheme.Drpm ] p plan
  in
  let base = List.assoc Scheme.Base results in
  let drpm = List.assoc Scheme.Drpm results in
  Alcotest.(check bool) "reactive DRPM pays time in closed loop" true
    (drpm.Result.exec_time >= base.Result.exec_time)

let test_figures_smoke () =
  (* The cheap figures render with the right shape; the expensive grids
     are covered by the benchmark harness. *)
  let t2 = Figures.table2 () in
  Alcotest.(check int) "table2 rows" 6 (List.length t2.Figures.rows);
  Alcotest.(check bool) "table2 rendered" true
    (String.length t2.Figures.rendered > 100);
  let t1 = Figures.table1 () in
  Alcotest.(check bool) "table1 mentions the disk" true
    (let s = t1.Figures.rendered in
     let rec find i =
       i + 8 <= String.length s && (String.sub s i 8 = "Ultrasta" || find (i + 1))
     in
     find 0)

let suite =
  [
    ( "core.scheme",
      [ Alcotest.test_case "names and flags" `Quick test_scheme_names ] );
    ( "core.experiment",
      [
        Alcotest.test_case "TPM family inert" `Quick test_tpm_family_inert;
        Alcotest.test_case "DRPM family ordering" `Quick
          test_drpm_family_ordering;
        Alcotest.test_case "time penalties" `Quick test_time_penalties;
        Alcotest.test_case "misprediction bounds" `Quick
          test_misprediction_bounds;
        Alcotest.test_case "run = run_all" `Quick test_run_single_matches_run_all;
        Alcotest.test_case "galgel transform-inert" `Quick
          test_transforms_leave_galgel_alone;
        Alcotest.test_case "closed loop penalty" `Quick
          test_closed_loop_penalizes_delays;
      ] );
    ("core.figures", [ Alcotest.test_case "smoke" `Quick test_figures_smoke ]);
  ]
