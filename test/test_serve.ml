(* Tests for Dpm_core.Service: parallel submissions over a depth-limited
   queue must produce byte-identical reports to serial execution, the
   bounded admission queue must reject with the typed Queue_full error
   (and Shutting_down after shutdown begins), a metered job's streamed
   sample integral must reproduce Result.energy to 1e-6 relative, the
   typed service errors must round-trip through JSON, and the Net layer
   must carry a spec to a report over a real Unix socket. *)

module Service = Dpm_core.Service
module Run = Dpm_core.Run
module Scheme = Dpm_core.Scheme
module Json = Dpm_util.Json

let check = Alcotest.check
let checkb = Alcotest.(check bool)

let job_spec ?(schemes = [ Scheme.Base; Scheme.Tpm ]) bench =
  Run.spec ~schemes (Run.Benchmark bench)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Run.error_message e)

let fingerprint (outcome : Service.outcome) =
  String.concat "\n"
    (Printf.sprintf "%s %s" outcome.Service.label
       (Json.to_string outcome.Service.report)
    :: List.map
         (fun (s, (r : Dpm_sim.Result.t)) ->
           Printf.sprintf "%s %.17g %.17g" (Scheme.name s)
             r.Dpm_sim.Result.energy r.Dpm_sim.Result.exec_time)
         outcome.Service.results)

(* --- determinism: N parallel submits == serial execution --- *)

let test_parallel_equals_serial () =
  let benches = [ "swim"; "mgrid"; "swim"; "galgel" ] in
  let serial =
    let svc = Service.create ~domains:1 ~queue:16 () in
    let prints =
      List.map
        (fun b -> fingerprint (ok (Service.await svc (ok (Service.submit svc (job_spec b))))))
        benches
    in
    Service.shutdown svc;
    prints
  in
  let parallel =
    (* Queue depth 2 with 2 workers: admission pressure is real, yet
       every job must come back identical to its serial twin. *)
    let svc = Service.create ~domains:2 ~queue:2 () in
    let rec submit spec =
      match Service.submit svc spec with
      | Ok id -> id
      | Error (Run.Queue_full { retry_after }) ->
          Thread.delay (Float.min retry_after 0.01);
          submit spec
      | Error e -> Alcotest.failf "submit: %s" (Run.error_message e)
    in
    let ids = List.map (fun b -> submit (job_spec b)) benches in
    let prints = List.map (fun id -> fingerprint (ok (Service.await svc id))) ids in
    Service.shutdown svc;
    prints
  in
  List.iteri
    (fun i (s, p) ->
      check Alcotest.string (Printf.sprintf "job %d byte-identical" i) s p)
    (List.combine serial parallel)

let test_daemon_equals_direct_exec () =
  let spec = job_spec "swim" in
  let direct = ok (Run.exec_all spec) in
  let svc = Service.create ~domains:1 ~queue:4 () in
  let outcome = ok (Service.await svc (ok (Service.submit svc spec))) in
  Service.shutdown svc;
  List.iter2
    (fun (s, (a : Dpm_sim.Result.t)) (s', (b : Dpm_sim.Result.t)) ->
      checkb "same scheme" true (s = s');
      check Alcotest.string "bit-identical energy/time"
        (Printf.sprintf "%.17g %.17g" a.Dpm_sim.Result.energy
           a.Dpm_sim.Result.exec_time)
        (Printf.sprintf "%.17g %.17g" b.Dpm_sim.Result.energy
           b.Dpm_sim.Result.exec_time))
    direct outcome.Service.results

(* --- backpressure at queue depth 1 --- *)

(* A runner the test controls: blocks until released, and tells us when
   a worker has actually picked the job up. *)
let blocking_runner () =
  let m = Mutex.create () in
  let c = Condition.create () in
  let started = ref 0 in
  let release = ref false in
  let runner _spec =
    Mutex.lock m;
    incr started;
    Condition.broadcast c;
    while not !release do
      Condition.wait c m
    done;
    Mutex.unlock m;
    Ok []
  in
  let wait_started n =
    Mutex.lock m;
    while !started < n do
      Condition.wait c m
    done;
    Mutex.unlock m
  in
  let release_all () =
    Mutex.lock m;
    release := true;
    Condition.broadcast c;
    Mutex.unlock m
  in
  (runner, wait_started, release_all)

let test_backpressure_depth_one () =
  let runner, wait_started, release_all = blocking_runner () in
  let svc = Service.create ~domains:1 ~queue:1 ~retry_after:0.25 ~runner () in
  check Alcotest.int "capacity" 1 (Service.capacity svc);
  let j1 = ok (Service.submit svc (job_spec "swim")) in
  (* Wait until the single worker is inside job 1: the queue is now
     empty, so exactly one more admission fits. *)
  wait_started 1;
  let j2 = ok (Service.submit svc (job_spec "mgrid")) in
  (match Service.submit svc (job_spec "galgel") with
  | Error (Run.Queue_full { retry_after }) ->
      check (Alcotest.float 1e-12) "retry hint" 0.25 retry_after
  | Ok _ -> Alcotest.fail "third submit must bounce off the full queue"
  | Error e -> Alcotest.failf "expected Queue_full, got %s" (Run.error_message e));
  let st = Service.stats svc in
  check Alcotest.int "queued" 1 st.Service.queued;
  check Alcotest.int "running" 1 st.Service.running;
  check Alcotest.int "rejected" 1 st.Service.rejected;
  release_all ();
  ignore (ok (Service.await svc j1));
  ignore (ok (Service.await svc j2));
  Service.shutdown svc;
  (* Draining: both admitted jobs completed despite the rejection. *)
  let st = Service.stats svc in
  check Alcotest.int "completed" 2 st.Service.completed;
  match Service.submit svc (job_spec "swim") with
  | Error Run.Shutting_down -> ()
  | Ok _ | Error _ -> Alcotest.fail "post-shutdown submit must be Shutting_down"

let test_await_consumes () =
  let svc = Service.create ~domains:1 ~queue:4 () in
  let id = ok (Service.submit svc (job_spec ~schemes:[ Scheme.Base ] "swim")) in
  ignore (ok (Service.await svc id));
  (match Service.await svc id with
  | Error (Run.Protocol_error _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "second await must be Protocol_error");
  Service.shutdown svc

(* --- metered jobs: streamed samples integrate to the energy column --- *)

let test_meter_integral () =
  let svc = Service.create ~domains:1 ~queue:4 () in
  let acc : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let acc_mutex = Mutex.create () in
  let on_sample ~scheme (s : Dpm_sim.Meter.sample) =
    Mutex.lock acc_mutex;
    Hashtbl.replace acc scheme
      (Option.value ~default:0.0 (Hashtbl.find_opt acc scheme)
      +. (s.Dpm_sim.Meter.watts *. (s.Dpm_sim.Meter.t1 -. s.Dpm_sim.Meter.t0)));
    Mutex.unlock acc_mutex
  in
  let id = ok (Service.submit ~meter:0.1 ~on_sample svc (job_spec "swim")) in
  let outcome = ok (Service.await svc id) in
  Service.shutdown svc;
  check Alcotest.int "one meter section per scheme" 2
    (List.length outcome.Service.meters);
  List.iter
    (fun (s, (r : Dpm_sim.Result.t)) ->
      let name = Scheme.name s in
      let live = Option.value ~default:Float.nan (Hashtbl.find_opt acc name) in
      let energy = r.Dpm_sim.Result.energy in
      checkb
        (Printf.sprintf "%s live integral within 1e-6 relative" name)
        true
        (Float.abs (live -. energy) <= 1e-6 *. Float.max 1.0 energy))
    outcome.Service.results

(* --- typed service errors round-trip through JSON --- *)

let test_error_json_round_trip () =
  List.iter
    (fun e ->
      match Run.error_of_json (Run.error_to_json e) with
      | Ok e' -> checkb (Run.error_message e) true (e = e')
      | Error m -> Alcotest.failf "error round-trip: %s" m)
    [
      Run.Queue_full { retry_after = 1.5 };
      Run.Shutting_down;
      Run.Protocol_error "unknown op \"frobnicate\"";
      Run.Unknown_benchmark "nope";
      Run.Unknown_scheme "NOPE";
      Run.Invalid_faults "bad spec";
      Run.Malformed_trace "t.trace:3: parse";
      Run.Malformed_spec "missing schema";
      Run.Run_failure "Stack_overflow";
    ]

let test_create_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | (_ : Service.t) -> Alcotest.fail "Service.create must reject")
    [
      (fun () -> Service.create ~domains:0 ());
      (fun () -> Service.create ~queue:(-1) ());
      (fun () -> Service.create ~retry_after:0.0 ());
    ]

(* --- the wire: spec in, report out, over a real Unix socket --- *)

let test_net_round_trip () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dpm-serve-test-%d.sock" (Unix.getpid ()))
  in
  let address = Service.Net.Unix_path path in
  let svc = Service.create ~domains:1 ~queue:4 () in
  let server = Thread.create (fun () -> Service.Net.serve svc address) () in
  let client = ok (Service.Net.connect address) in
  ignore (ok (Service.Net.ping client));
  let spec = job_spec "swim" in
  let samples = ref 0 in
  let on_sample ~scheme:_ (_ : Dpm_sim.Meter.sample) = incr samples in
  let id, report = ok (Service.Net.submit ~meter:0.1 ~on_sample client spec) in
  check Alcotest.int "first job id" 1 id;
  checkb "samples streamed" true (!samples > 0);
  (* The wire report is byte-identical to the in-process document of a
     fresh service running the same spec. *)
  let svc2 = Service.create ~domains:1 ~queue:4 () in
  let outcome = ok (Service.await svc2 (ok (Service.submit svc2 spec))) in
  Service.shutdown svc2;
  check Alcotest.string "wire report = in-process report"
    (Json.to_string outcome.Service.report)
    (Json.to_string report);
  let completed = ok (Service.Net.shutdown client) in
  check Alcotest.int "completed over the wire" 1 completed;
  Service.Net.close client;
  Thread.join server;
  checkb "socket file removed" false (Sys.file_exists path)

let test_address_strings () =
  (match Service.Net.address_of_string "127.0.0.1:4000" with
  | Service.Net.Tcp { host = "127.0.0.1"; port = 4000 } -> ()
  | _ -> Alcotest.fail "host:port parses as TCP");
  (match Service.Net.address_of_string "/tmp/x.sock" with
  | Service.Net.Unix_path "/tmp/x.sock" -> ()
  | _ -> Alcotest.fail "path parses as Unix socket");
  (* A colon without a numeric port is still a path. *)
  match Service.Net.address_of_string "dir:with/colon" with
  | Service.Net.Unix_path _ -> ()
  | _ -> Alcotest.fail "non-numeric port is a path"

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "parallel == serial (byte-identical)" `Slow
          test_parallel_equals_serial;
        Alcotest.test_case "daemon == direct exec" `Quick
          test_daemon_equals_direct_exec;
        Alcotest.test_case "backpressure at queue depth 1" `Quick
          test_backpressure_depth_one;
        Alcotest.test_case "await consumes the outcome" `Quick
          test_await_consumes;
        Alcotest.test_case "metered job integral" `Quick test_meter_integral;
        Alcotest.test_case "service error JSON round-trip" `Quick
          test_error_json_round_trip;
        Alcotest.test_case "create validation" `Quick test_create_validation;
        Alcotest.test_case "net round-trip over a Unix socket" `Slow
          test_net_round_trip;
        Alcotest.test_case "address strings" `Quick test_address_strings;
      ] );
  ]
