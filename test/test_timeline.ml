(* Tests for Dpm_sim.Timeline: the independent re-integrator must agree
   with the engine's running energy accumulation on every scheme, the
   invariant checker must accept every log the engine and the oracle
   emit, recording must be strictly observational (a sink never changes
   a Result), and logs must be bit-identical whatever the domain
   count. *)

module Ir = Dpm_ir
module Plan = Dpm_layout.Plan
module Timeline = Dpm_sim.Timeline
module Engine = Dpm_sim.Engine
module Policy = Dpm_sim.Policy
module Result = Dpm_sim.Result
module Trace = Dpm_trace.Trace
module Request = Dpm_trace.Request
module Scheme = Dpm_core.Scheme
module Experiment = Dpm_core.Experiment
module Pool = Dpm_util.Pool

let kib = Dpm_util.Units.kib
let parse = Ir.Parser.program ~name:"tl"

let contains s sub =
  let n = String.length sub in
  let rec find i =
    i + n <= String.length s && (String.sub s i n = sub || find (i + 1))
  in
  find 0

(* Acceptance tolerance: reintegrated energy within 1e-9 relative. *)
let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs b)

let check_ok label tl =
  match Timeline.check tl with
  | Ok () -> ()
  | Error es ->
      Alcotest.fail
        (Printf.sprintf "%s: %d violation(s): %s" label (List.length es)
           (String.concat "; " es))

(* Per-disk residency items must partition [0, sim_end]: busy intervals,
   spans and aborted spin-ups cover the whole run with no overlap, so
   their durations sum exactly to the last residency's end, which is
   never before sim_end (a transition still in flight when the
   application completes may extend the final span past it — the engine
   charges the whole transition).  Contiguity itself is Timeline.check's
   job; this asserts the sums. *)
let assert_partition label tl =
  let nd = Timeline.ndisks tl in
  let s_end = Timeline.sim_end tl in
  let occupied = Array.make (max 1 nd) 0.0 in
  let last_end = Array.make (max 1 nd) 0.0 in
  List.iter
    (fun ev ->
      match ev with
      | Timeline.Span { disk; t0; t1; _ }
      | Timeline.Service { disk; t0; t1; _ }
      | Timeline.Occupy { disk; t0; t1; _ }
      | Timeline.Aborted { disk; t0; t1; _ } ->
          occupied.(disk) <- occupied.(disk) +. (t1 -. t0);
          last_end.(disk) <- Float.max last_end.(disk) t1
      | Timeline.Mark _ | Timeline.Sim_end _ -> ())
    (Timeline.events tl);
  Array.iteri
    (fun d total ->
      if not (close total last_end.(d)) then
        Alcotest.fail
          (Printf.sprintf
             "%s: disk %d residencies sum to %.12g but end at %.12g" label d
             total last_end.(d));
      if last_end.(d) < s_end -. (1e-9 *. Float.max 1.0 s_end) then
        Alcotest.fail
          (Printf.sprintf "%s: disk %d covered only [0, %.12g] of [0, %.12g]"
             label d last_end.(d) s_end))
    occupied

(* The full contract one scheme's log must satisfy against its Result. *)
let assert_log_matches label (r : Result.t) tl =
  Alcotest.(check string) (label ^ ": scheme label") r.Result.scheme
    (Timeline.scheme tl);
  Alcotest.(check string) (label ^ ": program label") r.Result.program
    (Timeline.program tl);
  Alcotest.(check int)
    (label ^ ": one lane per disk")
    (Array.length r.Result.disks) (Timeline.ndisks tl);
  Alcotest.(check bool)
    (label ^ ": sim_end = exec_time")
    true
    (Timeline.sim_end tl = r.Result.exec_time);
  let e = Timeline.reintegrate tl in
  if not (close e.Timeline.total r.Result.energy) then
    Alcotest.fail
      (Printf.sprintf "%s: reintegrated %.12g J, result says %.12g J" label
         e.Timeline.total r.Result.energy);
  Array.iteri
    (fun d (ds : Result.disk_stats) ->
      if not (close e.Timeline.per_disk.(d) ds.Result.energy) then
        Alcotest.fail
          (Printf.sprintf "%s: disk %d reintegrates to %.12g J, not %.12g J"
             label d
             e.Timeline.per_disk.(d)
             ds.Result.energy))
    r.Result.disks;
  check_ok label tl;
  if not (Timeline.is_analytic tl) then assert_partition label tl

(* Run every requested scheme with a private sink each and hand back
   (scheme, result, frozen log) triples. *)
let logged_run_all ?setup ?(schemes = Scheme.all) p plan =
  let sinks = List.map (fun s -> (s, Timeline.sink ())) schemes in
  let results =
    Experiment.run_all ?setup ~timeline:(fun s -> List.assoc_opt s sinks)
      ~schemes p plan
  in
  List.map
    (fun (s, r) -> (s, r, Timeline.contents (List.assoc s sinks)))
    results

(* A small workload with real per-disk phase structure: nest 0 touches
   only A (disks 0-1), nest 1 only B (disks 2-3), so both DRPM gaps and
   TPM-sized idleness exist. *)
let phased_workload () =
  let p =
    parse
      {|
array A[24] : 8192
array B[24] : 8192
for i = 0 to 23 { use A[i] work 600000000 }
for i = 0 to 23 { use B[i] work 600000000 }
|}
  in
  let plan =
    Plan.make ~ndisks:4
      [
        {
          Plan.decl = Ir.Program.find_array p "A";
          striping =
            Dpm_layout.Striping.make ~start_disk:0 ~stripe_factor:2
              ~stripe_size:(kib 64);
          order = Plan.Row_major;
        };
        {
          Plan.decl = Ir.Program.find_array p "B";
          striping =
            Dpm_layout.Striping.make ~start_disk:2 ~stripe_factor:2
              ~stripe_size:(kib 64);
          order = Plan.Row_major;
        };
      ]
  in
  (p, plan)

let test_all_schemes_reintegrate () =
  let p, plan = phased_workload () in
  let logged = logged_run_all p plan in
  Alcotest.(check int) "seven schemes ran" 7 (List.length logged);
  List.iter
    (fun (s, r, tl) -> assert_log_matches (Scheme.name s) r tl)
    logged;
  (* The ideal schemes emit analytic logs, the replayed ones do not. *)
  List.iter
    (fun (s, _, tl) ->
      Alcotest.(check bool)
        (Scheme.name s ^ ": analytic iff ideal")
        (Scheme.is_ideal s) (Timeline.is_analytic tl))
    logged

(* Random workloads x all seven schemes x random seeds: the acceptance
   criterion as a property. *)
let qcheck_reintegration =
  QCheck2.Test.make ~count:6
    ~name:"timeline: reintegrate = Result.energy on random workloads"
    QCheck2.Gen.(
      quad (int_range 6 28) (int_range 1 3) (int_range 1 12)
        (int_range 0 10_000))
    (fun (elems, nests, work_scale, seed) ->
      let nest =
        Printf.sprintf "for i = 0 to %d { use A[i] work %d }" (elems - 1)
          (work_scale * 100_000_000)
      in
      let src =
        Printf.sprintf "array A[%d] : 8192\n%s\n" elems
          (String.concat "\n" (List.init nests (fun _ -> nest)))
      in
      let p = parse src in
      let plan = Plan.uniform ~ndisks:8 p in
      let setup =
        Experiment.make_setup
          ~noise:(float_of_int (seed mod 4) *. 0.05)
          ~seed ()
      in
      List.for_all
        (fun (s, r, tl) ->
          let e = Timeline.reintegrate tl in
          close e.Timeline.total r.Result.energy
          && Timeline.check tl = Ok ()
          && (Timeline.is_analytic tl
             ||
             (assert_partition (Scheme.name s) tl;
              true)))
        (logged_run_all ~setup p plan))

(* Recording must not perturb the replay: with and without a sink,
   every scheme's Result is structurally identical. *)
let test_observer_effect () =
  let p, plan = phased_workload () in
  let plain = Experiment.run_all p plan in
  let logged = logged_run_all p plan in
  List.iter2
    (fun (s, r) (s', r', _) ->
      Alcotest.(check bool) "same scheme order" true (s = s');
      Alcotest.(check bool)
        (Scheme.name s ^ ": result unchanged by recording")
        true (r = r'))
    plain logged;
  Alcotest.(check string) "byte-identical results"
    (Digest.to_hex (Digest.string (Marshal.to_string plain [])))
    (Digest.to_hex
       (Digest.string
          (Marshal.to_string (List.map (fun (s, r, _) -> (s, r)) logged) [])))

(* Timelines must be bit-identical whichever domain records them
   (sinks are per-replay, share-nothing). *)
let test_domain_determinism () =
  let p, plan = phased_workload () in
  let grid domains =
    Pool.map ~domains
      (fun scheme ->
        let sink = Timeline.sink () in
        let r =
          Experiment.run ~timeline:sink scheme p plan
        in
        (scheme, r, Timeline.events (Timeline.contents sink)))
      Scheme.all
  in
  let d1 = grid 1 and d4 = grid 4 in
  Alcotest.(check bool) "1 vs 4 domains structurally equal" true (d1 = d4);
  Alcotest.(check string) "byte-identical timelines"
    (Digest.to_hex (Digest.string (Marshal.to_string d1 [])))
    (Digest.to_hex (Digest.string (Marshal.to_string d4 [])))

(* Directive marks: an accepted PM call leaves its mark on the lane. *)
let test_directive_marks () =
  let io think block = Gen.io ~think ~block () in
  let events =
    [
      io 0.01 0;
      Request.Pm { think = 0.0; directive = Request.Spin_down 0 };
      Request.Pm { think = 20.0; directive = Request.Spin_up 0 };
      (* The spin-up takes t_spin_up = 10.9 s; a 15 s think means it
         completes ~4 s before the request — an early pre-activation. *)
      io 15.0 1;
      Request.Pm
        { think = 0.1; directive = Request.Set_rpm { level = 0; disk = 0 } };
      io 8.0 2;
    ]
  in
  let trace = Trace.make ~tail_think:1.0 ~program:"tl-t" ~ndisks:1 events in
  let sink = Timeline.sink () in
  let r = Engine.run ~timeline:sink Policy.cm_drpm trace in
  let tl = Timeline.contents sink in
  assert_log_matches "directives" r tl;
  let count m =
    List.length
      (List.filter
         (function Timeline.Mark { mark; _ } -> mark = m | _ -> false)
         (Timeline.events tl))
  in
  Alcotest.(check int) "spin_down mark" 1 (count Timeline.Directive_spin_down);
  Alcotest.(check int) "spin_up mark" 1 (count Timeline.Directive_spin_up);
  Alcotest.(check int) "set_rpm mark" 1
    (count (Timeline.Directive_set_rpm 0));
  let sums = Timeline.disk_summaries tl in
  Alcotest.(check int) "one spin-down run" 1 sums.(0).Timeline.spin_downs;
  Alcotest.(check bool) "standby time recorded" true
    (sums.(0).Timeline.standby > 0.0);
  (* The commanded spin-up completes well before the next request: the
     pre-activation analysis must score it early, not missed. *)
  Alcotest.(check (pair int int)) "early, never missed" (0, 1)
    (Timeline.pre_activation_totals tl)

(* JSONL round-trip: what write_jsonl emits, read_jsonl restores —
   events, labels and the analytic flag, for several logs per file. *)
let test_jsonl_round_trip () =
  let p, plan = phased_workload () in
  let logged =
    logged_run_all ~schemes:[ Scheme.Cmdrpm; Scheme.Idrpm ] p plan
  in
  let path = Filename.temp_file "dpm_timeline" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iter (fun (_, _, tl) -> Timeline.write_jsonl tl oc) logged;
      close_out oc;
      let ic = open_in path in
      let back = Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          Timeline.read_jsonl ic)
      in
      Alcotest.(check int) "two sections" 2 (List.length back);
      List.iter2
        (fun (_, _, tl) tl' ->
          Alcotest.(check string) "scheme" (Timeline.scheme tl)
            (Timeline.scheme tl');
          Alcotest.(check string) "program" (Timeline.program tl)
            (Timeline.program tl');
          Alcotest.(check bool) "analytic flag" (Timeline.is_analytic tl)
            (Timeline.is_analytic tl');
          Alcotest.(check bool) "events round-trip" true
            (Timeline.events tl = Timeline.events tl'))
        logged back)

(* CSV export: one data row per event under a fixed header. *)
let test_csv_shape () =
  let p, plan = phased_workload () in
  let logged = logged_run_all ~schemes:[ Scheme.Drpm ] p plan in
  let _, _, tl = List.hd logged in
  let path = Filename.temp_file "dpm_timeline" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Timeline.write_csv tl oc;
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "header + one row per event"
        (1 + List.length (Timeline.events tl))
        (List.length lines);
      Alcotest.(check bool) "header names the columns" true
        (match lines with
        | h :: _ -> String.length h > 0 && String.sub h 0 3 = "ev,"
        | [] -> false))

(* Rendering smoke: the summary names every disk, the gantt has one
   lane per disk, and the verdict line reports clean invariants. *)
let test_summary_rendering () =
  let p, plan = phased_workload () in
  let logged = logged_run_all ~schemes:[ Scheme.Cmdrpm ] p plan in
  let _, r, tl = List.hd logged in
  let s = Timeline.summary tl in
  Alcotest.(check bool) "mentions the scheme" true (contains s r.Result.scheme);
  Alcotest.(check bool) "invariants ok" true (contains s "invariants: ok");
  let lanes = Timeline.gantt ~width:40 tl in
  let lane_count =
    List.length
      (List.filter (fun l -> l <> "") (String.split_on_char '\n' lanes))
  in
  Alcotest.(check int) "one lane per disk" (Timeline.ndisks tl) lane_count;
  (* Millisecond services never dominate a bucket of this long a run;
     the idle categories must. *)
  Alcotest.(check bool) "idle columns present" true
    (String.contains lanes '=' || String.contains lanes '~')

(* The checker must actually reject broken logs, or the acceptance
   criterion "zero violations" is vacuous. *)
let test_check_rejects_illegal_logs () =
  let violations evs =
    let s = Timeline.sink () in
    List.iter (Timeline.emit s) evs;
    match Timeline.check (Timeline.contents s) with
    | Ok () -> 0
    | Error es -> List.length es
  in
  let top = Dpm_disk.Rpm.max_level Dpm_disk.Specs.ultrastar_36z15 in
  let ready a b =
    Timeline.Span { disk = 0; state = Timeline.Ready top; t0 = a; t1 = b }
  in
  (* A clean lane passes. *)
  Alcotest.(check int) "clean lane" 0
    (violations [ ready 0.0 1.0; ready 1.0 2.0; Timeline.Sim_end 2.0 ]);
  (* Overlap / gap between residencies. *)
  Alcotest.(check bool) "overlap rejected" true
    (violations [ ready 0.0 1.0; ready 0.9 2.0; Timeline.Sim_end 2.0 ] > 0);
  Alcotest.(check bool) "hole rejected" true
    (violations [ ready 0.0 1.0; ready 1.5 2.0; Timeline.Sim_end 2.0 ] > 0);
  (* Standby cannot follow ready without a spin-down. *)
  Alcotest.(check bool) "teleport to standby rejected" true
    (violations
       [
         ready 0.0 1.0;
         Timeline.Span
           { disk = 0; state = Timeline.Standby; t0 = 1.0; t1 = 2.0 };
         Timeline.Sim_end 2.0;
       ]
    > 0);
  (* A lane that stops early without a kill. *)
  Alcotest.(check bool) "truncated lane rejected" true
    (violations [ ready 0.0 1.0; Timeline.Sim_end 2.0 ] > 0);
  (* Negative durations. *)
  Alcotest.(check bool) "negative span rejected" true
    (violations [ ready 1.0 0.5 ] > 0)

(* Per-queue legality: the [Dispatch]-mark checker must replay each
   discipline's pick and reject reordered or fabricated scheduler logs,
   and [Service] intervals on one disk must never overlap. *)
let test_check_rejects_illegal_queues () =
  let module Config = Dpm_sim.Config in
  let violations ?(analytic = false) evs =
    let s = Timeline.sink () in
    if analytic then Timeline.set_analytic s;
    List.iter (Timeline.emit s) evs;
    match Timeline.check (Timeline.contents s) with
    | Ok () -> 0
    | Error es -> List.length es
  in
  let top = Dpm_disk.Rpm.max_level Dpm_disk.Specs.ultrastar_36z15 in
  let ready a b =
    Timeline.Span { disk = 0; state = Timeline.Ready top; t0 = a; t1 = b }
  in
  let svc arrival a b =
    Timeline.Service { disk = 0; level = top; arrival; t0 = a; t1 = b; bytes = 512 }
  in
  let disp ?(disc = Config.Sstf) t pos arrival =
    Timeline.Mark { disk = 0; t; mark = Timeline.Dispatch { disc; pos; arrival } }
  in
  (* Spans and services tile the lane (the residency checker demands
     contiguity); the idle rest of [0, 10] is one ready span. *)
  let lane evs = (ready 0.0 10.0 :: evs) @ [ Timeline.Sim_end 10.0 ] in
  (* A legal SSTF lane: nearest-first, work-conserving, 1:1 services. *)
  Alcotest.(check int) "legal sstf lane" 0
    (violations
       [
         disp 0.0 2 0.0;
         svc 0.0 0.0 1.0;
         disp 1.0 9 0.0;
         svc 0.0 1.0 2.0;
         ready 2.0 10.0;
         Timeline.Sim_end 10.0;
       ]);
  (* SSTF must not seek past a strictly-nearer queued request. *)
  Alcotest.(check bool) "sstf skip rejected" true
    (violations (lane [ disp 0.5 9 0.0; disp 1.0 2 0.0 ]) > 0);
  (* No dispatch before its request arrived. *)
  Alcotest.(check bool) "dispatch before arrival rejected" true
    (violations (lane [ disp 0.0 2 1.0 ]) > 0);
  (* Dispatch times must be monotone per queue. *)
  Alcotest.(check bool) "non-monotone dispatches rejected" true
    (violations (lane [ disp 2.0 2 0.0; disp 1.0 3 0.0 ]) > 0);
  (* FCFS serves strictly by arrival order. *)
  Alcotest.(check bool) "fcfs reorder rejected" true
    (violations
       (lane
          [
            disp ~disc:Config.Fcfs 1.0 0 0.9;
            disp ~disc:Config.Fcfs 2.0 1 0.1;
          ])
    > 0);
  (* SCAN may not reverse below the head while an upward request is
     queued. *)
  Alcotest.(check bool) "scan reversal rejected" true
    (violations
       (lane
          [
            disp ~disc:Config.Scan 0.0 5 0.0;
            disp ~disc:Config.Scan 1.0 2 0.0;
            disp ~disc:Config.Scan 2.0 7 0.0;
          ])
    > 0);
  (* A C-LOOK wrap must land on the lowest queued position. *)
  Alcotest.(check bool) "c-look wrap rejected" true
    (violations
       (lane
          [
            disp ~disc:Config.Clook 0.0 5 0.0;
            disp ~disc:Config.Clook 1.0 3 0.0;
            disp ~disc:Config.Clook 2.0 1 0.0;
          ])
    > 0);
  (* Work conservation: a clean 1:1 lane may not idle past the earliest
     queued arrival. *)
  Alcotest.(check bool) "idling dispatch rejected" true
    (violations
       [
         disp 0.0 2 0.0;
         svc 0.0 0.0 1.0;
         ready 1.0 5.0;
         disp 5.0 9 0.0;
         svc 0.0 5.0 6.0;
         ready 6.0 10.0;
         Timeline.Sim_end 10.0;
       ]
    > 0);
  (* Overlapping service intervals on one disk: the per-queue pass fires
     even in analytic mode, where the residency tiling rules would not. *)
  Alcotest.(check bool) "overlapping services rejected" true
    (violations ~analytic:true
       (lane [ svc 0.0 1.0 3.0; svc 0.0 2.0 4.0 ])
    > 0)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "timeline",
      [
        Alcotest.test_case "all seven schemes reintegrate" `Quick
          test_all_schemes_reintegrate;
        q qcheck_reintegration;
        Alcotest.test_case "recording is observational" `Quick
          test_observer_effect;
        Alcotest.test_case "bit-identical across domains" `Quick
          test_domain_determinism;
        Alcotest.test_case "directive marks" `Quick test_directive_marks;
        Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_round_trip;
        Alcotest.test_case "csv shape" `Quick test_csv_shape;
        Alcotest.test_case "summary rendering" `Quick test_summary_rendering;
        Alcotest.test_case "checker rejects illegal logs" `Quick
          test_check_rejects_illegal_logs;
        Alcotest.test_case "checker rejects illegal queues" `Quick
          test_check_rejects_illegal_queues;
      ] );
  ]
