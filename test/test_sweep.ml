(* The auto-tuning sweep subsystem and its two APIs: the dpm-spec/1
   serializable run specs (round-trip exactly, reject garbage) and the
   Sweep grid driver (deterministic expansion, domain-count-independent
   results, best-configuration tables whose persisted winning spec
   replays bit-identically).  Plus the Adaptive policy's contract: the
   hill-climbed thresholds stay inside their clamp and the controller
   never loses energy against Base on any suite workload while staying
   above the oracle bound. *)

module Config = Dpm_sim.Config
module Policy = Dpm_sim.Policy
module Engine = Dpm_sim.Engine
module Res = Dpm_sim.Result
module Run = Dpm_core.Run
module Scheme = Dpm_core.Scheme
module Sweep = Dpm_core.Sweep
module Experiment = Dpm_core.Experiment
module Json = Dpm_util.Json

let break_even = Dpm_disk.Power.tpm_break_even Config.default.Config.specs

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- Grid expansion --- *)

let test_expand () =
  Alcotest.(check int) "empty axes: one empty point" 1
    (List.length (Sweep.expand []));
  let axes =
    [
      Sweep.Tpm_threshold [ 4.0; 8.0; 15.2 ];
      Sweep.Drpm_lower [ 0.02; 0.08 ];
      Sweep.Drpm_window [ 10; 30 ];
    ]
  in
  let points = Sweep.expand axes in
  Alcotest.(check int) "3 x 2 x 2 = 12 points" 12 (List.length points);
  (* Axis order is preserved within a point; later axes vary fastest. *)
  Alcotest.(check bool) "first point = all first values" true
    (List.hd points
    = [ ("tpm-threshold", 4.0); ("drpm-lower", 0.02); ("drpm-window", 10.0) ]);
  Alcotest.(check bool) "second point varies the last axis" true
    (List.nth points 1
    = [ ("tpm-threshold", 4.0); ("drpm-lower", 0.02); ("drpm-window", 30.0) ]);
  (* Expansion is a pure function: same axes, same order, every time. *)
  Alcotest.(check bool) "deterministic" true (points = Sweep.expand axes)

let test_axes_of_string () =
  (match Sweep.axes_of_string "tpm-threshold=4,8; drpm-window=10" with
  | Ok [ Sweep.Tpm_threshold [ 4.0; 8.0 ]; Sweep.Drpm_window [ 10 ] ] -> ()
  | Ok _ -> Alcotest.fail "parsed into the wrong axes"
  | Error m -> Alcotest.fail m);
  let is_error s =
    match Sweep.axes_of_string s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "unknown axis rejected" true (is_error "warp=1,2");
  Alcotest.(check bool) "empty values rejected" true
    (is_error "tpm-threshold=");
  Alcotest.(check bool) "bad number rejected" true
    (is_error "drpm-lower=0.02,zap");
  Alcotest.(check bool) "missing = rejected" true (is_error "tpm-threshold")

let test_apply () =
  let c =
    Sweep.apply Config.default
      [
        ("tpm-threshold", 5.0);
        ("drpm-floor-depth", 6.0);
        ("queue-depth", 8.0);
        ("pre-activation-lead", 0.25);
      ]
  in
  Alcotest.(check bool) "tpm_threshold set" true
    (c.Config.tpm_threshold = Some 5.0);
  Alcotest.(check int) "drpm_floor_depth set" 6 c.Config.drpm_floor_depth;
  Alcotest.(check int) "queue_depth set" 8 c.Config.queue_depth;
  Alcotest.(check (float 0.0)) "pre_activation_lead set" 0.25
    c.Config.pre_activation_lead;
  Alcotest.check_raises "unknown axis raises"
    (Invalid_argument "Sweep.apply: unknown axis warp") (fun () ->
      ignore (Sweep.apply Config.default [ ("warp", 1.0) ]))

(* --- dpm-spec/1 round-trip --- *)

(* The spec JSON is a fixpoint of serialize/parse: comparing documents
   (rather than specs) sidesteps the parser's legitimate Float->Int
   narrowing of whole floats while still proving the run is reproduced
   bit-for-bit. *)
let spec_json_fixpoint s =
  match Run.to_json s with
  | Error e -> Alcotest.fail (Run.error_message e)
  | Ok j -> (
      match Run.of_json j with
      | Error e -> Alcotest.fail (Run.error_message e)
      | Ok s' -> (
          match Run.to_json s' with
          | Error e -> Alcotest.fail (Run.error_message e)
          | Ok j' -> String.equal (Json.to_string j) (Json.to_string j')))

let gen_spec =
  QCheck2.Gen.(
    map
      (fun (bench, mask, (tpm, lower, window), (mode, core, stream), batch) ->
        let scheme_names =
          let picked =
            List.filteri
              (fun i _ -> (mask lsr i) land 1 = 1)
              Scheme.extended_names
          in
          if picked = [] then [ "Base" ] else picked
        in
        let sim =
          Config.make
            ?tpm_threshold:(if tpm > 0.0 then Some tpm else None)
            ~drpm_lower:lower ~drpm_window:window ()
        in
        Run.spec ~scheme_names ~sim
          ?mode:(if mode then Some `Closed else None)
          ?core:(if core then Some `Reference else None)
          ?stream:(if stream then Some true else None)
          ?batch:(if batch > 0 then Some batch else None)
          (Run.Benchmark bench))
      (tup5
         (oneofl [ "swim"; "galgel"; "mesa" ])
         (int_range 0 255)
         (tup3 (float_bound_inclusive 20.0) (float_bound_inclusive 0.1)
            (int_range 1 64))
         (tup3 bool bool bool)
         (int_range 0 512)))

let qcheck_spec_roundtrip =
  QCheck2.Test.make ~count:100 ~name:"dpm-spec/1 JSON round-trip fixpoint"
    gen_spec spec_json_fixpoint

let test_spec_roundtrip_full () =
  (* One fully loaded spec, deterministically: every optional field. *)
  let s =
    Run.spec
      ~scheme_names:[ "Base"; "CMDRPM"; "Adaptive" ]
      ~sim:
        (Config.make ~tpm_threshold:7.5 ~drpm_lower:0.03 ~drpm_upper:0.2
           ~drpm_window:12 ~drpm_idle_interval:0.75 ~drpm_floor_depth:6
           ~queue_depth:16 ~pm_call_overhead:0.002 ~pre_activation_lead:0.1
           ~retain_busy:false ())
      ~mode:`Closed ~version:Dpm_compiler.Pipeline.TL_DL ~faults:Gen.fault_spec
      ~stream:true ~batch:64 ~core:`Reference (Run.Benchmark "swim")
  in
  Alcotest.(check bool) "fixpoint" true (spec_json_fixpoint s);
  (* And via a file, as the sweep harness writes them. *)
  let path = Filename.temp_file "dpm_spec" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Run.to_file s path with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Run.error_message e));
      match Run.of_file path with
      | Error e -> Alcotest.fail (Run.error_message e)
      | Ok s' ->
          let doc s =
            match Run.to_json s with
            | Ok j -> Json.to_string j
            | Error e -> Alcotest.fail (Run.error_message e)
          in
          Alcotest.(check string) "file round-trip fixpoint" (doc s) (doc s'))

let test_spec_rejections () =
  let malformed = function
    | Error (Run.Malformed_spec _) -> true
    | Ok _ | Error _ -> false
  in
  let p, plan = Experiment.workload (Dpm_workloads.Suite.find "swim") in
  Alcotest.(check bool) "Program workload not serializable" true
    (malformed (Run.to_json (Run.spec (Run.Program (p, plan)))));
  Alcotest.(check bool) "wrong schema tag" true
    (malformed
       (Run.of_json (Json.Obj [ ("schema", Json.Str "dpm-spec/9") ])));
  Alcotest.(check bool) "missing workload" true
    (malformed
       (Run.of_json (Json.Obj [ ("schema", Json.Str "dpm-spec/1") ])));
  Alcotest.(check bool) "unknown disk model" true
    (malformed
       (Run.of_json
          (Json.Obj
             [
               ("schema", Json.Str "dpm-spec/1");
               ( "workload",
                 Json.Obj
                   [ ("kind", Json.Str "benchmark"); ("name", Json.Str "swim") ]
               );
               ("schemes", Json.Arr [ Json.Str "Base" ]);
               ("sim", Json.Obj [ ("specs", Json.Str "Maxtor 1000") ]);
             ])))

(* --- Adaptive policy invariants --- *)

let qcheck_adaptive_clamp =
  QCheck2.Test.make ~count:50
    ~name:"adaptive thresholds stay within [2 s, 4 x break-even]"
    Gen.gen_trace
    (fun trace ->
      let policy, thresholds =
        Policy.adaptive_with_state Config.default
          ~ndisks:(Dpm_trace.Trace.ndisks trace)
      in
      ignore (Engine.run policy trace);
      Array.for_all
        (fun t -> t >= 2.0 && t <= 4.0 *. break_even)
        thresholds)

(* The acceptance property, run on the whole suite: online tuning may
   fail to find savings on a workload, but it must never spend more
   energy than no power management at all, and it can never beat the
   oracle that sees every gap in advance. *)
let test_adaptive_never_worse_than_base () =
  List.iter
    (fun (spec : Dpm_workloads.Suite.spec) ->
      let name = spec.Dpm_workloads.Suite.name in
      match
        Run.exec_all
          (Run.spec
             ~schemes:[ Scheme.Base; Scheme.Adaptive; Scheme.Idrpm ]
             (Run.Benchmark name))
      with
      | Error e -> Alcotest.fail (Run.error_message e)
      | Ok results ->
          let energy s = (List.assoc s results).Res.energy in
          Alcotest.(check bool)
            (name ^ ": Adaptive never worse than Base")
            true
            (energy Scheme.Adaptive <= energy Scheme.Base +. 1e-6);
          Alcotest.(check bool)
            (name ^ ": Adaptive above the IDRPM oracle bound")
            true
            (energy Scheme.Adaptive >= energy Scheme.Idrpm -. 1e-6))
    Dpm_workloads.Suite.all

(* --- The sweep driver --- *)

let smoke_axes =
  [ Sweep.Tpm_threshold [ 4.0; 15.2 ]; Sweep.Drpm_lower [ 0.02; 0.08 ] ]

let smoke_schemes = [ Scheme.Base; Scheme.Tpm; Scheme.Adaptive ]

let run_smoke ?domains () =
  match
    Sweep.run ~schemes:smoke_schemes ?domains ~axes:smoke_axes
      ~workloads:[ "mesa" ] ()
  with
  | Ok outcome -> outcome
  | Error e -> Alcotest.fail (Run.error_message e)

let test_sweep_deterministic () =
  let a = run_smoke ~domains:1 () in
  let b = run_smoke ~domains:1 () in
  let c = run_smoke ~domains:4 () in
  Alcotest.(check int) "4 cells" 4 (List.length a.Sweep.cells);
  Alcotest.(check bool) "re-run bit-identical" true
    (a.Sweep.cells = b.Sweep.cells);
  Alcotest.(check bool) "1 vs 4 domains bit-identical" true
    (a.Sweep.cells = c.Sweep.cells);
  (* Best table and winners are pure functions of the outcome, so their
     determinism follows; pin the shape anyway. *)
  let best = Sweep.best a in
  Alcotest.(check int) "one best row per non-Base scheme" 2
    (List.length best);
  Alcotest.(check bool) "best rows deterministic" true (best = Sweep.best b);
  (match Sweep.winners a with
  | [ (scheme, cell, _) ] ->
      Alcotest.(check string) "winner workload" "mesa" cell.Sweep.workload;
      Alcotest.(check bool) "winner is implementable" true
        (not (Scheme.is_ideal scheme) && scheme <> Scheme.Base)
  | _ -> Alcotest.fail "expected exactly one winner");
  (match Sweep.validate (Sweep.to_json a) with
  | Ok () -> ()
  | Error msgs -> Alcotest.fail (String.concat "; " msgs));
  let rendered = Sweep.render a in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("render mentions " ^ needle) true
        (contains rendered needle))
    [ "Best configuration"; "Winners"; "sensitivity"; "tpm-threshold" ];
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("markdown mentions " ^ needle) true
        (contains (Sweep.markdown a) needle))
    [ "## Best configuration"; "## Winners"; "## Sensitivity" ]

let test_winning_spec_replays () =
  let outcome = run_smoke () in
  match Sweep.winners outcome with
  | [ (_, cell, _) ] -> (
      let spec =
        match Sweep.best_spec outcome ~workload:"mesa" with
        | Some s -> s
        | None -> Alcotest.fail "no winning spec"
      in
      let path = Filename.temp_file "dpm_sweep_best" ".spec.json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          (match Run.to_file spec path with
          | Ok () -> ()
          | Error e -> Alcotest.fail (Run.error_message e));
          match Result.bind (Run.of_file path) Run.exec_all with
          | Error e -> Alcotest.fail (Run.error_message e)
          | Ok results ->
              Alcotest.(check bool)
                "persisted winning spec replays bit-identically" true
                (results = cell.Sweep.results)))
  | _ -> Alcotest.fail "expected exactly one winner"

let test_normalized_table () =
  let outcome = run_smoke () in
  let first_point = List.hd (Sweep.expand smoke_axes) in
  let rows =
    List.filter_map
      (fun (cell : Sweep.cell) ->
        if cell.Sweep.point = first_point then
          Some (cell.Sweep.workload, cell.Sweep.results)
        else None)
      outcome.Sweep.cells
  in
  let table =
    Sweep.normalized_table ~metric:`Energy ~schemes:smoke_schemes
      ~extra:("note", fun _ -> Some 1.5)
      rows
  in
  let lines = String.split_on_char '\n' table in
  (* header + one row per workload + AVG + trailing "" *)
  Alcotest.(check int) "header, rows, AVG" (List.length rows + 3)
    (List.length lines);
  Alcotest.(check bool) "AVG row present" true
    (List.exists
       (fun l -> String.length l >= 3 && String.sub l 0 3 = "AVG")
       lines);
  Alcotest.(check bool) "Base column normalizes to 1.000" true
    (contains table "1.000");
  Alcotest.(check bool) "extra column rendered" true (contains table "1.50")

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "sweep.grid",
      [
        Alcotest.test_case "cartesian expansion" `Quick test_expand;
        Alcotest.test_case "axes_of_string" `Quick test_axes_of_string;
        Alcotest.test_case "apply settings" `Quick test_apply;
      ] );
    ( "sweep.spec",
      [
        q qcheck_spec_roundtrip;
        Alcotest.test_case "fully loaded spec round-trips" `Quick
          test_spec_roundtrip_full;
        Alcotest.test_case "malformed specs rejected" `Quick
          test_spec_rejections;
      ] );
    ( "sweep.adaptive",
      [
        q qcheck_adaptive_clamp;
        Alcotest.test_case "never worse than Base, above oracle" `Slow
          test_adaptive_never_worse_than_base;
      ] );
    ( "sweep.driver",
      [
        Alcotest.test_case "deterministic grid (1 vs 4 domains)" `Slow
          test_sweep_deterministic;
        Alcotest.test_case "winning spec replays bit-identically" `Slow
          test_winning_spec_replays;
        Alcotest.test_case "normalized table printer" `Slow
          test_normalized_table;
      ] );
  ]
