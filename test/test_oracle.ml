(* Direct unit tests for Dpm_sim.Oracle on hand-built traces: the
   closed-form schedules must predict the Base replay's idle gaps
   exactly (the oracle is a perfect predictor), never lose to Base, and
   their analytic timelines must carry the per-gap decisions with
   neither missed nor early pre-activations. *)

module Specs = Dpm_disk.Specs
module Rpm = Dpm_disk.Rpm
module Engine = Dpm_sim.Engine
module Policy = Dpm_sim.Policy
module Config = Dpm_sim.Config
module Result = Dpm_sim.Result
module Oracle = Dpm_sim.Oracle
module Timeline = Dpm_sim.Timeline
module Trace = Dpm_trace.Trace
module Request = Dpm_trace.Request

let kib = Dpm_util.Units.kib
let specs = Specs.ultrastar_36z15
let top = Rpm.max_level specs
let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs b)

let io ?(think = 0.01) ?(block = 0) () =
  Request.Io
    {
      think;
      disk = 0;
      block;
      bytes = kib 64;
      kind = Request.Read;
      nest = 0;
      iter = 0;
    }

(* Two request clusters on one disk separated by a long, known gap. *)
let two_burst_trace ~gap =
  let burst b0 = List.init 4 (fun i -> io ~block:(b0 + i) ()) in
  let events =
    burst 0 @ [ io ~think:gap ~block:100 () ] @ burst 101
  in
  Trace.make ~tail_think:2.0 ~program:"oracle-t" ~ndisks:1 events

let base_of trace = Engine.run Policy.base trace

(* --- phase structure: bursts and gaps tile the Base timeline --- *)

let test_phases_tile_the_run () =
  let base = base_of (two_burst_trace ~gap:60.0) in
  let phases = Oracle.phases base ~disk:0 in
  (* Walk the phase list: spans must be contiguous from 0 to exec. *)
  let cursor =
    List.fold_left
      (fun cursor ph ->
        let lo, hi =
          match ph with
          | Oracle.Burst { span; _ } -> span
          | Oracle.Gap { span; _ } -> span
        in
        Alcotest.(check bool) "contiguous" true (close lo cursor);
        Alcotest.(check bool) "forward" true (hi >= lo);
        hi)
      0.0 phases
  in
  Alcotest.(check bool) "covers the run" true
    (close cursor base.Result.exec_time);
  (* Two bursts, separated (and followed) by gaps. *)
  let bursts =
    List.filter (function Oracle.Burst _ -> true | _ -> false) phases
  in
  Alcotest.(check int) "two bursts" 2 (List.length bursts)

(* --- prediction correctness: every oracle gap IS a Base idle gap --- *)

let test_gap_plans_match_idle_gaps () =
  let base = base_of (two_burst_trace ~gap:45.0) in
  let idle = Result.idle_gaps base ~disk:0 in
  List.iter
    (fun ((lo, hi), (_ : Dpm_disk.Power.gap_plan)) ->
      Alcotest.(check bool)
        (Printf.sprintf "gap [%g, %g] is a real idle period" lo hi)
        true
        (List.exists
           (fun (a, b) -> close a lo && b >= hi -. 1e-9)
           idle))
    (Oracle.gap_plans base ~disk:0)

(* The Gap_decision marks on the analytic log carry the exact gap
   length — the oracle predictor is never wrong. *)
let test_itpm_predictions_exact () =
  let base = base_of (two_burst_trace ~gap:60.0) in
  let sink = Timeline.sink () in
  let _ = Oracle.itpm ~timeline:sink base in
  let tl = Timeline.contents sink in
  let idle = Result.idle_gaps base ~disk:0 in
  let checked = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Timeline.Mark
          { t; mark = Timeline.Gap_decision { predicted; _ }; _ } ->
          incr checked;
          Alcotest.(check bool)
            (Printf.sprintf "prediction at %g matches the actual gap" t)
            true
            (List.exists
               (fun (a, b) -> close a t && close (b -. a) predicted)
               idle)
      | _ -> ())
    (Timeline.events tl);
  Alcotest.(check int) "one decision per idle gap" (List.length idle) !checked

(* --- optimality guarantees on a profitable gap --- *)

let test_oracle_never_loses () =
  let base = base_of (two_burst_trace ~gap:90.0) in
  let itpm = Oracle.itpm base in
  let idrpm = Oracle.idrpm base in
  Alcotest.(check bool) "ITPM <= Base" true
    (itpm.Result.energy <= base.Result.energy +. 1e-9);
  Alcotest.(check bool) "IDRPM <= Base" true
    (idrpm.Result.energy <= base.Result.energy +. 1e-9);
  (* A 90 s gap is far beyond break-even: both must actually save. *)
  Alcotest.(check bool) "ITPM exploits the long gap" true
    (itpm.Result.energy < base.Result.energy);
  Alcotest.(check bool) "no performance penalty" true
    (itpm.Result.exec_time = base.Result.exec_time
    && idrpm.Result.exec_time = base.Result.exec_time)

(* --- pre-activation accounting --- *)

(* The oracle's spin-ups complete exactly at the next arrival: its log
   must show zero missed and zero early pre-activations. *)
let test_oracle_preactivation_perfect () =
  let base = base_of (two_burst_trace ~gap:90.0) in
  let sink = Timeline.sink () in
  let _ = Oracle.itpm ~timeline:sink base in
  let tl = Timeline.contents sink in
  Alcotest.(check (pair int int)) "perfect timing" (0, 0)
    (Timeline.pre_activation_totals tl);
  match Timeline.check tl with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

(* Reactive TPM has no predictor: the request that ends a long gap
   finds the disk in standby, waits out the spin-up, and the timeline
   scores it as a missed pre-activation. *)
let test_reactive_tpm_misses () =
  let trace = two_burst_trace ~gap:90.0 in
  let sink = Timeline.sink () in
  let r = Engine.run ~timeline:sink (Policy.tpm Config.default) trace in
  let tl = Timeline.contents sink in
  let sums = Timeline.disk_summaries tl in
  Alcotest.(check bool) "TPM spun down" true (sums.(0).Timeline.spin_downs >= 1);
  Alcotest.(check bool) "the wake-up came late" true
    (sums.(0).Timeline.missed_preactivations >= 1);
  Alcotest.(check bool) "requests waited on the transition" true
    (sums.(0).Timeline.wait > 0.0);
  (* And the log still reintegrates and checks. *)
  let e = Timeline.reintegrate tl in
  Alcotest.(check bool) "energy reintegrates" true
    (close e.Timeline.total r.Result.energy);
  match Timeline.check tl with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

(* --- burst serving levels (IDRPM) --- *)

let test_idrpm_serves_within_slack () =
  let base = base_of (two_burst_trace ~gap:60.0) in
  let sink = Timeline.sink () in
  let idrpm = Oracle.idrpm ~timeline:sink base in
  let tl = Timeline.contents sink in
  (* Every reconstructed service fits its burst's extent plus the tail
     slack the oracle grants (a quarter of the following gap). *)
  List.iter
    (fun ev ->
      match ev with
      | Timeline.Service { level; t0; t1; _ } ->
          Alcotest.(check bool) "level in range" true
            (level >= 0 && level <= top);
          Alcotest.(check bool) "service moves forward" true (t1 >= t0)
      | _ -> ())
    (Timeline.events tl);
  (* The analytic energies re-integrate to the reported result. *)
  let e = Timeline.reintegrate tl in
  Alcotest.(check bool) "IDRPM reintegrates" true
    (close e.Timeline.total idrpm.Result.energy)

(* A short idle gap at the very head of the run: the IDRPM fallback
   charges the direct modulation on top of the held level and back-dates
   the ramp span before t = 0.  The analytic checker must accept such
   logs (galgel regression), and they must still re-integrate. *)
let test_idrpm_head_gap_backdated_ramp () =
  let backdated = ref false in
  List.iter
    (fun think ->
      let trace =
        Trace.make ~tail_think:2.0 ~program:"oracle-head" ~ndisks:1
          (io ~think () :: List.init 4 (fun i -> io ~block:(1 + i) ()))
      in
      let base = base_of trace in
      let sink = Timeline.sink () in
      let idrpm = Oracle.idrpm ~timeline:sink base in
      let tl = Timeline.contents sink in
      List.iter
        (function
          | Timeline.Span { t0; _ } when t0 < 0.0 -> backdated := true
          | _ -> ())
        (Timeline.events tl);
      (match Timeline.check tl with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "head gap %g: %s" think (String.concat "; " es));
      let e = Timeline.reintegrate tl in
      Alcotest.(check bool)
        (Printf.sprintf "head gap %g reintegrates" think)
        true
        (close e.Timeline.total idrpm.Result.energy))
    [ 1e-5; 1e-4; 1e-3; 0.2; 0.5; 1.0; 2.0; 5.0 ];
  Alcotest.(check bool) "some width back-dates the ramp" true !backdated

let suite =
  [
    ( "oracle",
      [
        Alcotest.test_case "phases tile the run" `Quick test_phases_tile_the_run;
        Alcotest.test_case "gap plans match idle gaps" `Quick
          test_gap_plans_match_idle_gaps;
        Alcotest.test_case "predictions exact" `Quick
          test_itpm_predictions_exact;
        Alcotest.test_case "oracle never loses" `Quick test_oracle_never_loses;
        Alcotest.test_case "oracle pre-activation perfect" `Quick
          test_oracle_preactivation_perfect;
        Alcotest.test_case "reactive TPM misses" `Quick
          test_reactive_tpm_misses;
        Alcotest.test_case "IDRPM serves within slack" `Quick
          test_idrpm_serves_within_slack;
        Alcotest.test_case "IDRPM head gap back-dates ramp" `Quick
          test_idrpm_head_gap_backdated_ramp;
      ] );
  ]
