(* Streaming ≡ materialized: the PR-5 acceptance property.  The replay
   engine's per-event body is shared between [Engine.run] and
   [Engine.run_stream], so any divergence here means a chunk boundary
   leaked into the semantics. *)

module Request = Dpm_trace.Request
module Trace = Dpm_trace.Trace
module Stream = Trace.Stream
module Generate = Dpm_trace.Generate
module Engine = Dpm_sim.Engine
module Policy = Dpm_sim.Policy
module Config = Dpm_sim.Config
module Fault = Dpm_sim.Fault
module Timeline = Dpm_sim.Timeline
module Result = Dpm_sim.Result
module Parser = Dpm_ir.Parser
module Plan = Dpm_layout.Plan
module Scheme = Dpm_core.Scheme
module Experiment = Dpm_core.Experiment
module Run = Dpm_core.Run
module Pool = Dpm_util.Pool

let kib = Dpm_util.Units.kib
let sample_events = Gen.sample_events
let sample_trace = Gen.sample_trace

let lines t = Array.to_list (Array.map Request.to_line (Trace.events t))

(* --- Stream producers: unit behavior --- *)

let test_of_trace_chunking () =
  let t = sample_trace () in
  let s = Stream.of_trace ~batch:3 t in
  Alcotest.(check string) "program" "smp" (Stream.program s);
  Alcotest.(check int) "ndisks" 4 (Stream.ndisks s);
  Alcotest.(check int) "batch" 3 (Stream.batch s);
  Alcotest.(check (float 1e-9)) "tail known up front" 0.25
    (Stream.tail_think s);
  Alcotest.(check int) "nblocks" 18 (Stream.nblocks s);
  let sizes = ref [] in
  let rec drain () =
    match Stream.next s with
    | Some chunk ->
        sizes := Array.length chunk :: !sizes;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "chunk sizes" [ 3; 3; 2 ] (List.rev !sizes);
  Alcotest.(check bool) "exhaustion latched" true (Stream.next s = None)

let test_of_push_coroutine () =
  let produce ~emit =
    List.iter emit sample_events;
    0.75
  in
  let s =
    Stream.of_push ~batch:2 ~nblocks:(lazy 18) ~program:"push" ~ndisks:4
      produce
  in
  Alcotest.check_raises "tail unknown before exhaustion"
    (Invalid_argument
       "Trace.Stream.tail_think: unknown until the stream is exhausted")
    (fun () -> ignore (Stream.tail_think s));
  let got = ref [] in
  Stream.iter (fun e -> got := e :: !got) s;
  Alcotest.(check int) "all events" (List.length sample_events)
    (List.length !got);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same order" (Request.to_line a)
        (Request.to_line b))
    sample_events (List.rev !got);
  Alcotest.(check (float 1e-9)) "tail from producer return" 0.75
    (Stream.tail_think s)

let test_to_trace_roundtrip () =
  let t = sample_trace () in
  List.iter
    (fun batch ->
      let t' = Stream.to_trace (Stream.of_trace ~batch t) in
      Alcotest.(check (list string)) "events survive" (lines t) (lines t');
      Alcotest.(check (float 1e-9)) "tail survives" (Trace.tail_think t)
        (Trace.tail_think t'))
    [ 1; 3; 4096 ]

let simple_program () =
  Parser.program ~name:"gen"
    {|
array A[32] : 8192
array B[32] : 8192
for t = 1 to 2 {
  for i = 0 to 31 { B[i] = A[i] work 1000 }
}
|}

let test_generate_stream_matches_run () =
  let p = simple_program () in
  let plan = Plan.uniform ~ndisks:8 p in
  let t = Generate.run p plan in
  List.iter
    (fun batch ->
      let s = Generate.stream ~batch p plan in
      Alcotest.(check int) "nblocks matches scan"
        (Trace.max_nblocks_chunk 0 (Trace.events t))
        (Stream.nblocks s);
      let t' = Stream.to_trace s in
      Alcotest.(check (list string)) "same events" (lines t) (lines t');
      Alcotest.(check (float 1e-9)) "same tail" (Trace.tail_think t)
        (Trace.tail_think t'))
    [ 1; 7; 4096 ]

(* --- Incremental file parsing --- *)

let with_temp_file write f =
  let path = Filename.temp_file "dpm_stream" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write path;
      f path)

let test_of_file_roundtrip () =
  let t = sample_trace () in
  with_temp_file (Trace.save t) (fun path ->
      let s = Stream.of_file ~batch:3 path in
      Alcotest.(check string) "header program" "smp" (Stream.program s);
      Alcotest.(check int) "header ndisks" 4 (Stream.ndisks s);
      Alcotest.(check int) "nblocks rescans" 18 (Stream.nblocks s);
      let t' = Stream.to_trace s in
      Alcotest.(check (list string)) "events survive" (lines t) (lines t');
      Alcotest.(check (float 1e-9)) "tail survives" 0.25 (Trace.tail_think t'))

let expect_parse_error ~substring path =
  try
    ignore (Stream.to_trace (Stream.of_file path));
    Alcotest.fail "expected Parse_error"
  with Trace.Parse_error m ->
    let has sub =
      let n = String.length sub in
      let ok = ref false in
      for i = 0 to String.length m - n do
        if String.sub m i n = sub then ok := true
      done;
      !ok
    in
    Alcotest.(check bool)
      (Printf.sprintf "message %S carries %S" m substring)
      true
      (has path && has substring)

let test_of_file_errors () =
  with_temp_file
    (fun path ->
      let oc = open_out path in
      output_string oc "not a header\n";
      close_out oc)
    (expect_parse_error ~substring:":1:");
  with_temp_file
    (fun path ->
      let oc = open_out path in
      output_string oc "# program=p ndisks=4 tail=0.0\n";
      output_string oc (Request.to_line (List.hd sample_events) ^ "\n");
      output_string oc "io sideways\n";
      close_out oc)
    (expect_parse_error ~substring:":3:");
  with_temp_file
    (fun path ->
      let oc = open_out path in
      output_string oc "# program=p ndisks=2 tail=0.0\n";
      output_string oc
        (Request.to_line
           (Request.Io
              {
                think = 0.0;
                disk = 7;
                block = 0;
                bytes = 512;
                kind = Request.Read;
                nest = 0;
                iter = 0;
              })
        ^ "\n");
      close_out oc)
    (expect_parse_error ~substring:"disk")

(* --- Engine equivalence: the core property --- *)

let policies config ~ndisks =
  [
    ("base", fun () -> Policy.base);
    ("tpm", fun () -> Policy.tpm config);
    ("drpm", fun () -> Policy.drpm config ~ndisks);
    ("cm_tpm", fun () -> Policy.cm_tpm);
    ("cm_drpm", fun () -> Policy.cm_drpm);
  ]

let fault_spec = Gen.fault_spec

let replay_pair ?(config = Config.default) ~faults ~batch mk trace =
  let sink_m = Timeline.sink () and sink_s = Timeline.sink () in
  let r_m = Engine.run ~config ~faults ~timeline:sink_m (mk ()) trace in
  let r_s =
    Engine.run_stream ~config ~faults ~timeline:sink_s (mk ())
      (Stream.of_trace ~batch trace)
  in
  ( (r_m, Timeline.events (Timeline.contents sink_m)),
    (r_s, Timeline.events (Timeline.contents sink_s)) )

let gen_trace = Gen.gen_trace

(* The configuration varies too (heterogeneous fleets, every scheduling
   discipline, queue depths): chunk boundaries must stay invisible
   whatever engine path the config selects. *)
let qcheck_engine_equiv =
  QCheck2.Test.make ~count:25
    ~name:
      "stream: Engine.run_stream ≡ Engine.run (policies × batches × faults × \
       configs)"
    QCheck2.Gen.(tup2 gen_trace Gen.gen_config)
    ~print:(fun (trace, config) ->
      Printf.sprintf "%d events, %s"
        (Array.length (Trace.events trace))
        (Gen.config_print config))
    (fun (trace, config) ->
      let ndisks = Trace.ndisks trace in
      List.for_all
        (fun (_, mk) ->
          List.for_all
            (fun batch ->
              List.for_all
                (fun faults ->
                  let (r_m, tl_m), (r_s, tl_s) =
                    replay_pair ~config ~faults ~batch mk trace
                  in
                  r_m = r_s && tl_m = tl_s
                  && r_m.Result.faults = r_s.Result.faults)
                [ Fault.none; fault_spec ])
            [ 1; 7; 4096 ])
        (policies config ~ndisks))

let qcheck_multiprogram_equiv =
  QCheck2.Test.make ~count:15
    ~name:"stream: Engine.run_many_stream ≡ Engine.run_many" gen_trace
    (fun trace ->
      let other =
        Trace.make ~tail_think:0.5 ~program:"bg" ~ndisks:(Trace.ndisks trace)
          sample_events
      in
      List.for_all
        (fun batch ->
          let r_m = Engine.run_many Policy.base [ trace; other ] in
          let r_s =
            Engine.run_many_stream Policy.base
              [ Stream.of_trace ~batch trace; Stream.of_trace ~batch other ]
          in
          r_m = r_s)
        [ 1; 7; 4096 ])

let test_retain_busy_off_equivalent () =
  let trace = sample_trace () in
  let lean = Config.make ~retain_busy:false () in
  let r = Engine.run Policy.base trace in
  let r' = Engine.run ~config:lean Policy.base trace in
  Alcotest.(check (float 1e-12)) "same energy" r.Result.energy r'.Result.energy;
  Alcotest.(check (float 1e-12)) "same exec time" r.Result.exec_time
    r'.Result.exec_time;
  Array.iter
    (fun ds ->
      Alcotest.(check int) "busy intervals dropped" 0
        (List.length ds.Result.busy))
    r'.Result.disks;
  Array.iteri
    (fun d ds ->
      Alcotest.(check int) "same request count" ds.Result.requests
        r'.Result.disks.(d).Result.requests)
    r.Result.disks

(* --- Experiment-level equivalence: all seven schemes, 1 vs 4 domains --- *)

let phased_workload () =
  let p =
    Parser.program ~name:"phased"
      {|
array A[24] : 8192
array B[24] : 8192
for i = 0 to 23 { use A[i] work 600000000 }
for i = 0 to 23 { use B[i] work 600000000 }
|}
  in
  (p, Plan.uniform ~ndisks:8 p)

let test_experiment_stream_equiv () =
  let p, plan = phased_workload () in
  List.iter
    (fun faults ->
      let materialized =
        Experiment.run_all ~setup:(Experiment.make_setup ~faults ()) p plan
      in
      let streamed_per_batch =
        Pool.map ~domains:4
          (fun batch ->
            Experiment.run_all
              ~setup:(Experiment.make_setup ~faults ~stream:true ~batch ())
              p plan)
          [ 1; 7; 4096 ]
      in
      let single_domain =
        Pool.map ~domains:1
          (fun batch ->
            Experiment.run_all
              ~setup:(Experiment.make_setup ~faults ~stream:true ~batch ())
              p plan)
          [ 7 ]
      in
      List.iter
        (fun streamed ->
          Alcotest.(check int) "seven schemes" (List.length materialized)
            (List.length streamed);
          List.iter2
            (fun (s, r_m) (s', r_s) ->
              Alcotest.(check string) "same scheme order" (Scheme.name s)
                (Scheme.name s');
              Alcotest.(check bool)
                (Scheme.name s ^ ": streaming result byte-identical")
                true (r_m = r_s))
            materialized streamed)
        (streamed_per_batch @ single_domain))
    [ Fault.none; fault_spec ]

(* --- Run facade: Trace_file workload --- *)

let test_run_trace_file () =
  let t = sample_trace () in
  with_temp_file (Trace.save t) (fun path ->
      let results stream =
        match
          Run.exec_all
            (Run.spec
               ~scheme_names:[ "Base"; "TPM"; "DRPM"; "CMDRPM" ]
               ~stream ~batch:3 (Run.Trace_file path))
        with
        | Ok rs -> rs
        | Error e -> Alcotest.fail (Run.error_message e)
      in
      let mat = results false and str = results true in
      List.iter2
        (fun (s, r_m) (_, r_s) ->
          Alcotest.(check bool)
            (Scheme.name s ^ ": trace-file streaming identical")
            true (r_m = r_s))
        mat str)

let test_run_malformed_trace () =
  with_temp_file
    (fun path ->
      let oc = open_out path in
      output_string oc "# program=p ndisks=4 tail=0.0\n";
      output_string oc "garbage line\n";
      close_out oc)
    (fun path ->
      match Run.exec_all (Run.spec (Run.Trace_file path)) with
      | Error (Run.Malformed_trace m) ->
          Alcotest.(check bool) "carries file:line context" true
            (String.length m > 0
            && String.sub m 0 (String.length path) = path)
      | Ok _ -> Alcotest.fail "malformed trace accepted"
      | Error e -> Alcotest.fail ("wrong error: " ^ Run.error_message e));
  match Run.exec_all (Run.spec (Run.Trace_file "/nonexistent/x.trace")) with
  | Error (Run.Run_failure _) | Error (Run.Malformed_trace _) -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error e -> Alcotest.fail ("wrong error: " ^ Run.error_message e)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "stream.producers",
      [
        Alcotest.test_case "of_trace chunking" `Quick test_of_trace_chunking;
        Alcotest.test_case "of_push coroutine" `Quick test_of_push_coroutine;
        Alcotest.test_case "to_trace round-trip" `Quick test_to_trace_roundtrip;
        Alcotest.test_case "generate stream ≡ run" `Quick
          test_generate_stream_matches_run;
        Alcotest.test_case "of_file round-trip" `Quick test_of_file_roundtrip;
        Alcotest.test_case "of_file errors" `Quick test_of_file_errors;
      ] );
    ( "stream.engine",
      [
        q qcheck_engine_equiv;
        q qcheck_multiprogram_equiv;
        Alcotest.test_case "retain_busy off" `Quick
          test_retain_busy_off_equivalent;
      ] );
    ( "stream.experiment",
      [
        Alcotest.test_case "run_all stream ≡ materialized (1 vs 4 domains)"
          `Slow test_experiment_stream_equiv;
      ] );
    ( "stream.run",
      [
        Alcotest.test_case "trace-file workload" `Quick test_run_trace_file;
        Alcotest.test_case "malformed trace" `Quick test_run_malformed_trace;
      ] );
  ]
