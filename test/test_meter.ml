(* Tests for Dpm_sim.Meter, the streaming software-defined power meter:
   window semantics must be exact on hand-built event streams, the
   sample integral must reproduce Result.energy across every scheme,
   fleet and fault mix (the PR's acceptance criterion, ≤ 1e-6
   relative), metering must be strictly observational, live attachment
   must equal offline re-metering, the dpm-meter/1 wire form must
   round-trip bit-exactly, and the Ring/Histo substrate must behave. *)

module Timeline = Dpm_sim.Timeline
module Meter = Dpm_sim.Meter
module Config = Dpm_sim.Config
module Fault = Dpm_sim.Fault
module Result = Dpm_sim.Result
module Scheme = Dpm_core.Scheme
module Experiment = Dpm_core.Experiment
module Trace = Dpm_trace.Trace
module Specs = Dpm_disk.Specs
module Power = Dpm_disk.Power
module Rpm = Dpm_disk.Rpm
module Ring = Dpm_util.Ring
module Histo = Dpm_util.Histo

let specs = Config.default.Config.specs
let top = Rpm.max_level specs

(* The acceptance tolerance: meter integral within 1e-6 relative. *)
let close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs b)

let feed_all m evs =
  List.iter (Meter.feed m) evs;
  Meter.finish m

(* --- window semantics on hand-built streams --- *)

let test_window_semantics () =
  let m = Meter.create ~resolution:0.25 ~specs () in
  feed_all m
    [
      Timeline.Span { disk = 0; state = Timeline.Ready top; t0 = 0.0; t1 = 1.0 };
      Timeline.Sim_end 1.0;
    ];
  let idle = Power.idle specs ~level:top in
  Alcotest.(check int) "four windows" 4 (Meter.nwindows m);
  let ss = Meter.samples m in
  Alcotest.(check int) "four samples" 4 (List.length ss);
  List.iteri
    (fun i (s : Meter.sample) ->
      Alcotest.(check int) "index" i s.Meter.index;
      Alcotest.(check (float 1e-12)) "window start" (0.25 *. float_of_int i)
        s.Meter.t0;
      Alcotest.(check (float 1e-12)) "flat idle power" idle s.Meter.watts)
    ss;
  Alcotest.(check (float 1e-9)) "integral = idle × 1 s" idle
    (Meter.integral m).Timeline.total;
  Alcotest.(check (float 1e-12)) "peak = idle" idle (Meter.peak_power m);
  Alcotest.(check (float 1e-12)) "mean = idle" idle (Meter.mean_power m)

let test_truncated_last_window () =
  let m = Meter.create ~resolution:0.25 ~specs () in
  feed_all m
    [
      Timeline.Span { disk = 0; state = Timeline.Ready top; t0 = 0.0; t1 = 0.9 };
      Timeline.Sim_end 0.9;
    ];
  let idle = Power.idle specs ~level:top in
  Alcotest.(check int) "ceil(0.9/0.25) windows" 4 (Meter.nwindows m);
  let last = List.nth (Meter.samples m) 3 in
  Alcotest.(check (float 1e-12)) "last window truncated at horizon" 0.9
    last.Meter.t1;
  Alcotest.(check (float 1e-12)) "still mean power" idle last.Meter.watts;
  Alcotest.(check (float 1e-9)) "integral = idle × 0.9 s" (idle *. 0.9)
    (Meter.integral m).Timeline.total

let test_boundary_split_and_zero_width () =
  (* A service straddling a window boundary deposits pro-rated; a
     zero-width span is skipped; a zero-width aborted spin-up lumps its
     energy into the window containing t0. *)
  let m = Meter.create ~resolution:1.0 ~specs () in
  let active = Power.active specs ~level:top in
  feed_all m
    [
      Timeline.Service
        {
          disk = 0;
          level = top;
          arrival = 0.5;
          t0 = 0.5;
          t1 = 1.5;
          bytes = 512;
        };
      Timeline.Span
        { disk = 0; state = Timeline.Spinning_up; t0 = 1.5; t1 = 1.5 };
      Timeline.Aborted { disk = 0; t0 = 1.5; t1 = 1.5; fraction = 0.5 };
      Timeline.Sim_end 2.0;
    ];
  let e_abort = Power.aborted_spin_up_energy specs ~fraction:0.5 in
  (match Meter.samples m with
  | [ s0; s1 ] ->
      Alcotest.(check (float 1e-9)) "half the service in window 0"
        (active /. 2.0) s0.Meter.watts;
      Alcotest.(check (float 1e-9)) "other half + the aborted lump"
        ((active /. 2.0) +. e_abort)
        s1.Meter.watts
  | ss -> Alcotest.failf "expected 2 samples, got %d" (List.length ss));
  Alcotest.(check (float 1e-9)) "integral = service + abort"
    (active +. e_abort)
    (Meter.integral m).Timeline.total

let test_live_closing () =
  (* Windows close as soon as the lane frontier passes them, without
     waiting for finish. *)
  let closed = ref [] in
  let m =
    Meter.create ~resolution:0.5 ~specs
      ~on_sample:(fun s -> closed := s.Meter.index :: !closed)
      ()
  in
  Meter.feed m
    (Timeline.Span { disk = 0; state = Timeline.Ready top; t0 = 0.0; t1 = 2.0 });
  Alcotest.(check (list int)) "nothing closed at frontier 0" [] !closed;
  Meter.feed m
    (Timeline.Span
       { disk = 0; state = Timeline.Standby; t0 = 2.0; t1 = 3.0 });
  Alcotest.(check (list int))
    "frontier 2.0 closes windows 0-3" [ 0; 1; 2; 3 ] (List.rev !closed);
  Meter.finish m;
  Alcotest.(check int) "finish closes the rest" 6 (List.length !closed)

let test_capacity_bound () =
  let m = Meter.create ~resolution:0.1 ~specs ~capacity:4 () in
  feed_all m
    [
      Timeline.Span { disk = 0; state = Timeline.Ready top; t0 = 0.0; t1 = 2.0 };
      Timeline.Sim_end 2.0;
    ];
  let idle = Power.idle specs ~level:top in
  Alcotest.(check int) "only 4 retained" 4 (List.length (Meter.samples m));
  Alcotest.(check int) "16 dropped" 16 (Meter.dropped m);
  Alcotest.(check (float 1e-9)) "integral exact despite eviction"
    (idle *. 2.0)
    (Meter.integral m).Timeline.total

(* --- the acceptance criterion: integral = Result.energy --- *)

let meter_run_all ?setup ?(resolution = 0.05) ~fleet ?(schemes = Scheme.all)
    source =
  let meters =
    List.map
      (fun s ->
        let sink = Timeline.sink () in
        let m = Meter.create ~resolution ~specs ~fleet () in
        Meter.attach m sink;
        (s, (sink, m)))
      schemes
  in
  let results =
    Experiment.replay_all ?setup
      ~timeline:(fun s -> Option.map fst (List.assoc_opt s meters))
      ~schemes source
  in
  List.map
    (fun (s, r) ->
      let m = snd (List.assoc s meters) in
      Meter.finish m;
      (s, r, m))
    results

let assert_integral_matches label (r : Result.t) m =
  let e = Meter.integral m in
  if not (close e.Timeline.total r.Result.energy) then
    Alcotest.failf "%s: meter integral %.12g J, result says %.12g J" label
      e.Timeline.total r.Result.energy;
  Array.iteri
    (fun d (ds : Result.disk_stats) ->
      let got =
        if d < Array.length e.Timeline.per_disk then e.Timeline.per_disk.(d)
        else 0.0
      in
      if not (close got ds.Result.energy) then
        Alcotest.failf "%s: disk %d meters %.12g J, not %.12g J" label d got
          ds.Result.energy)
    r.Result.disks

let test_faulty_heterogeneous_acceptance () =
  (* The PR's pinned acceptance configuration: all seven schemes over a
     heterogeneous fleet with every fault class enabled. *)
  let fleet =
    [| Specs.ultrastar_36z15; Specs.flash; Specs.ultrastar_36lzx |]
  in
  let sim = Config.default |> Config.with_fleet fleet in
  let setup = Experiment.make_setup ~sim ~faults:Gen.fault_spec () in
  let trace = Gen.busy_trace ~n:300 ~ndisks:4 () in
  let logged =
    meter_run_all ~setup ~fleet (fun () -> Trace.Stream.of_trace trace)
  in
  Alcotest.(check int) "seven schemes ran" 7 (List.length logged);
  List.iter
    (fun (s, r, m) -> assert_integral_matches (Scheme.name s) r m)
    logged

let qcheck_integral =
  QCheck2.Test.make ~count:8
    ~name:"meter: integral = Result.energy (schemes × fleets × faults)"
    QCheck2.Gen.(tup3 Gen.gen_trace Gen.gen_fleet bool)
    (fun (trace, fleet, faulty) ->
      let sim = Config.default |> Config.with_fleet fleet in
      let faults = if faulty then Gen.fault_spec else Fault.none in
      let setup = Experiment.make_setup ~sim ~faults () in
      let logged =
        meter_run_all ~setup ~fleet ~resolution:0.21
          (fun () -> Trace.Stream.of_trace trace)
      in
      List.for_all
        (fun (_, (r : Result.t), m) ->
          close (Meter.integral m).Timeline.total r.Result.energy)
        logged)

(* --- strictly observational --- *)

let test_observer_effect () =
  let trace = Gen.sample_trace () in
  let source () = Trace.Stream.of_trace trace in
  let bare = Experiment.replay_all source in
  let metered =
    meter_run_all ~fleet:[||] source |> List.map (fun (s, r, _) -> (s, r))
  in
  Alcotest.(check bool)
    "results byte-identical with the meter on" true
    (Marshal.to_string bare [] = Marshal.to_string metered [])

let test_live_equals_offline () =
  (* A meter attached during the replay and Meter.of_timeline over the
     frozen log must produce identical samples (the engine stamps fleet
     labels at end of run; of_timeline resolves them from the log). *)
  let fleet = [| Specs.ultrastar_36z15; Specs.flash |] in
  let sim = Config.default |> Config.with_fleet fleet in
  let setup = Experiment.make_setup ~sim () in
  let trace = Gen.busy_trace ~n:120 ~ndisks:4 () in
  let sink = Timeline.sink () in
  let live = Meter.create ~resolution:0.1 ~specs ~fleet () in
  Meter.attach live sink;
  let _ =
    Experiment.replay_all ~setup
      ~timeline:(fun s -> if s = Scheme.Cmdrpm then Some sink else None)
      ~schemes:[ Scheme.Cmdrpm ]
      (fun () -> Trace.Stream.of_trace trace)
  in
  Meter.finish live;
  let offline = Meter.of_timeline ~resolution:0.1 (Timeline.contents sink) in
  Alcotest.(check bool)
    "live samples = offline samples (bit-exact)" true
    (Meter.samples live = Meter.samples offline);
  Alcotest.(check bool)
    "live integral = offline integral" true
    (Meter.integral live = Meter.integral offline)

(* --- wire form --- *)

let roundtrip_section sec =
  let path = Filename.temp_file "dpm_meter" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Meter.write_jsonl sec oc;
      Meter.write_jsonl sec oc;
      close_out oc;
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Meter.read_jsonl ic))

let test_jsonl_roundtrip () =
  let fleet = [| Specs.ultrastar_36z15; Specs.flash |] in
  let sim = Config.default |> Config.with_fleet fleet in
  let setup = Experiment.make_setup ~sim ~faults:Gen.fault_spec () in
  let trace = Gen.busy_trace ~n:150 ~ndisks:4 () in
  let logged =
    meter_run_all ~setup ~fleet ~schemes:[ Scheme.Drpm ]
      (fun () -> Trace.Stream.of_trace trace)
  in
  let _, _, m = List.hd logged in
  let sec = Meter.to_section ~scheme:"DRPM" ~program:"fault-t" m in
  Alcotest.(check bool) "section has samples" true (sec.Meter.m_samples <> []);
  match roundtrip_section sec with
  | [ a; b ] ->
      Alcotest.(check bool) "two identical sections round-trip bit-exactly"
        true
        (a = sec && b = sec)
  | l -> Alcotest.failf "expected 2 sections, got %d" (List.length l)

let test_csv_shape () =
  let m = Meter.create ~resolution:0.5 ~specs () in
  feed_all m
    [
      Timeline.Span { disk = 0; state = Timeline.Ready top; t0 = 0.0; t1 = 1.0 };
      Timeline.Sim_end 1.0;
    ];
  let sec = Meter.to_section ~scheme:"Base" ~program:"p" m in
  let path = Filename.temp_file "dpm_meter" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Meter.write_csv sec oc;
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      match List.rev !lines with
      | header :: rows ->
          Alcotest.(check string)
            "csv header" "scheme,program,disk,index,t0,t1,watts" header;
          Alcotest.(check int) "one row per sample" 2 (List.length rows);
          Alcotest.(check bool)
            "rows carry the labels" true
            (List.for_all
               (fun r -> String.length r > 7 && String.sub r 0 7 = "Base,p,")
               rows)
      | [] -> Alcotest.fail "empty csv")

let test_summary_renders () =
  let fleet = [| Specs.ultrastar_36z15; Specs.flash |] in
  let trace = Gen.busy_trace ~n:60 ~ndisks:2 () in
  let sim = Config.default |> Config.with_fleet fleet in
  let setup = Experiment.make_setup ~sim () in
  let logged =
    meter_run_all ~setup ~fleet ~schemes:[ Scheme.Base ]
      (fun () -> Trace.Stream.of_trace trace)
  in
  let _, _, m = List.hd logged in
  let s = Meter.summary m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("summary mentions " ^ needle) true
        (let n = String.length needle in
         let rec find i =
           i + n <= String.length s
           && (String.sub s i n = needle || find (i + 1))
         in
         find 0))
    [ "power meter"; "disk 0"; "ultrastar_36z15"; "flash"; "fleet: peak" ]

(* --- the Ring substrate --- *)

let test_ring_growth () =
  let r = Ring.create () in
  for i = 0 to 99 do
    Ring.push r i
  done;
  Alcotest.(check int) "length" 100 (Ring.length r);
  Alcotest.(check int) "pushed" 100 (Ring.pushed r);
  Alcotest.(check int) "dropped" 0 (Ring.dropped r);
  Alcotest.(check (list int)) "order preserved" (List.init 100 Fun.id)
    (Ring.to_list r);
  Alcotest.(check int) "get oldest" 0 (Ring.get r 0);
  Alcotest.(check int) "get newest" 99 (Ring.get r 99)

let test_ring_bounded () =
  let r = Ring.create ~capacity:8 () in
  for i = 0 to 19 do
    Ring.push r i
  done;
  Alcotest.(check int) "bounded length" 8 (Ring.length r);
  Alcotest.(check int) "dropped = overflow" 12 (Ring.dropped r);
  Alcotest.(check (list int)) "newest 8 retained, oldest first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (Ring.to_list r);
  Ring.clear r;
  Alcotest.(check int) "clear empties" 0 (Ring.length r);
  Alcotest.(check int) "clear resets counters" 0 (Ring.pushed r);
  Alcotest.(check bool) "capacity survives clear" true
    (Ring.capacity r = Some 8)

let test_ring_invalid () =
  Alcotest.check_raises "capacity < 1 rejected"
    (Invalid_argument "Ring.create: capacity < 1") (fun () ->
      ignore (Ring.create ~capacity:0 ()))

(* --- the Histo wire form the aggregator merges --- *)

let qcheck_histo_roundtrip =
  QCheck2.Test.make ~count:60 ~name:"histo: to_json/of_json round-trips"
    QCheck2.Gen.(list_size (int_range 0 200) (float_bound_inclusive 50.0))
    (fun xs ->
      let h = Histo.create () in
      List.iter (Histo.add h) xs;
      match Histo.of_json (Histo.to_json h) with
      | Error e -> QCheck2.Test.fail_report e
      | Ok h' ->
          Histo.count h' = Histo.count h
          && Histo.buckets h' = Histo.buckets h
          && Histo.min_value h' = Histo.min_value h
          && Histo.max_value h' = Histo.max_value h
          && Histo.quantile h' 99.0 = Histo.quantile h 99.0
          && Histo.sum h' = Histo.sum h)

let qcheck_histo_merge_of_json =
  QCheck2.Test.make ~count:40
    ~name:"histo: serialized histograms merge exactly"
    QCheck2.Gen.(
      tup2
        (list_size (int_range 0 100) (float_bound_inclusive 20.0))
        (list_size (int_range 0 100) (float_bound_inclusive 2000.0)))
    (fun (xs, ys) ->
      let ha = Histo.create () and hb = Histo.create () in
      List.iter (Histo.add ha) xs;
      List.iter (Histo.add hb) ys;
      let direct = Histo.merge ha hb in
      match
        ( Histo.of_json (Histo.to_json ha),
          Histo.of_json (Histo.to_json hb) )
      with
      | Ok a, Ok b ->
          let via_json = Histo.merge a b in
          Histo.buckets via_json = Histo.buckets direct
          && Histo.count via_json = Histo.count direct
          && Histo.quantile via_json 95.0 = Histo.quantile direct 95.0
      | _ -> false)

(* --- fleet aggregation (Dpm_core.Aggregate) --- *)

let test_aggregate () =
  let module Aggregate = Dpm_core.Aggregate in
  let module Json = Dpm_util.Json in
  let dir = Filename.temp_file "dpm_agg" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let cleanup () =
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  in
  Fun.protect ~finally:cleanup (fun () ->
      (* One dpm-report/1 document... *)
      let report =
        match
          Dpm_core.Report.run ~schemes:[ Scheme.Base; Scheme.Cmdrpm ] "galgel"
        with
        | Ok doc -> doc
        | Error e ->
            Alcotest.failf "report failed: %s" (Dpm_core.Run.error_message e)
      in
      let write path s =
        let oc = open_out (Filename.concat dir path) in
        output_string oc s;
        close_out oc
      in
      write "report.json" (Json.to_string report);
      (* ...one dpm-meter/1 file with a section per scheme... *)
      let fleet = [| Specs.ultrastar_36z15; Specs.flash |] in
      let sim = Config.default |> Config.with_fleet fleet in
      let setup = Experiment.make_setup ~sim () in
      let trace = Gen.busy_trace ~n:100 ~ndisks:4 () in
      let metered =
        meter_run_all ~setup ~fleet
          ~schemes:[ Scheme.Base; Scheme.Cmdrpm ]
          (fun () -> Trace.Stream.of_trace trace)
      in
      let oc = open_out (Filename.concat dir "fleet.meter.jsonl") in
      List.iter
        (fun (s, _, m) ->
          Meter.write_jsonl
            (Meter.to_section ~scheme:(Scheme.name s) ~program:"busy" m)
            oc)
        metered;
      close_out oc;
      (* ...and a decoy the classifier must skip, not die on. *)
      write "decoy.json" "{\"schema\":\"dpm-spec/1\"}";
      let agg =
        match Aggregate.of_dir dir with
        | Ok a -> a
        | Error m -> Alcotest.fail m
      in
      Alcotest.(check (list string))
        "classification (sorted by name)"
        [ "skipped: schema dpm-spec/1"; "meter"; "report" ]
        (List.map snd (Aggregate.sources agg));
      let doc = Aggregate.to_json agg in
      (match Aggregate.validate doc with
      | Ok () -> ()
      | Error es -> Alcotest.fail (String.concat "; " es));
      let num section field =
        Option.get
          (Option.bind
             (Option.bind (Json.member section doc) (Json.member field))
             Json.to_float)
      in
      (* The fleet energy total is the sum of the meter integrals —
         aggregation re-derives energy from samples, so this pins the
         wire form's precision end-to-end. *)
      let expect =
        List.fold_left
          (fun a (_, _, m) -> a +. (Meter.integral m).Timeline.total)
          0.0 metered
      in
      Alcotest.(check bool)
        "fleet energy = sum of meter integrals" true
        (close (num "meters" "energy_j") expect);
      Alcotest.(check bool)
        "fleet peak positive" true
        (num "meters" "peak_fleet_w" > 0.0);
      (* With a single report file, the aggregate's per-scheme energy is
         that report's energy verbatim. *)
      let report_energy name =
        let rows =
          Option.get
            (Option.bind (Json.member "schemes" report) Json.to_list)
        in
        let row =
          List.find
            (fun r ->
              Option.bind (Json.member "scheme" r) Json.to_str = Some name)
            rows
        in
        Option.get (Option.bind (Json.member "energy_j" row) Json.to_float)
      in
      let agg_energy name =
        let rows =
          Option.get
            (Option.bind
               (Option.bind (Json.member "reports" doc)
                  (Json.member "schemes"))
               Json.to_list)
        in
        let row =
          List.find
            (fun r ->
              Option.bind (Json.member "scheme" r) Json.to_str = Some name)
            rows
        in
        Option.get (Option.bind (Json.member "energy_j" row) Json.to_float)
      in
      List.iter
        (fun s ->
          let n = Scheme.name s in
          Alcotest.(check (float 1e-9))
            (n ^ " energy passes through") (report_energy n) (agg_energy n))
        [ Scheme.Base; Scheme.Cmdrpm ];
      (* Both registry models got lanes attributed (4 disks round-robin
         over a 2-model fleet). *)
      let models =
        Option.get
          (Option.bind
             (Option.bind (Json.member "meters" doc) (Json.member "models"))
             Json.to_list)
      in
      Alcotest.(check int) "two models attributed" 2 (List.length models);
      let renders = Aggregate.render agg in
      Alcotest.(check bool)
        "render mentions the fleet line" true
        (let needle = "fleet:" in
         let rec find i =
           i + String.length needle <= String.length renders
           && (String.sub renders i (String.length needle) = needle
              || find (i + 1))
         in
         find 0))

let suite =
  [
    ( "meter",
      [
        Alcotest.test_case "window semantics" `Quick test_window_semantics;
        Alcotest.test_case "truncated last window" `Quick
          test_truncated_last_window;
        Alcotest.test_case "boundary split + zero-width events" `Quick
          test_boundary_split_and_zero_width;
        Alcotest.test_case "windows close live" `Quick test_live_closing;
        Alcotest.test_case "capacity bound keeps integral exact" `Quick
          test_capacity_bound;
        Alcotest.test_case "acceptance: faulty heterogeneous fleet" `Quick
          test_faulty_heterogeneous_acceptance;
        QCheck_alcotest.to_alcotest qcheck_integral;
        Alcotest.test_case "strictly observational" `Quick
          test_observer_effect;
        Alcotest.test_case "live = offline metering" `Quick
          test_live_equals_offline;
        Alcotest.test_case "dpm-meter/1 round-trip" `Quick
          test_jsonl_roundtrip;
        Alcotest.test_case "csv shape" `Quick test_csv_shape;
        Alcotest.test_case "summary renders" `Quick test_summary_renders;
      ] );
    ( "ring",
      [
        Alcotest.test_case "growth preserves order" `Quick test_ring_growth;
        Alcotest.test_case "bounded eviction" `Quick test_ring_bounded;
        Alcotest.test_case "invalid capacity" `Quick test_ring_invalid;
      ] );
    ( "histo-json",
      [
        QCheck_alcotest.to_alcotest qcheck_histo_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_histo_merge_of_json;
      ] );
    ( "aggregate",
      [
        Alcotest.test_case "fleet dashboard over report + meter files" `Quick
          test_aggregate;
      ] );
  ]
