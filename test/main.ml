(* Aggregates all suites; one alcotest binary run by `dune runtest`. *)

let () =
  Alcotest.run "dpm"
    (Test_util.suite @ Test_ir.suite @ Test_layout.suite @ Test_cache.suite
   @ Test_disk.suite @ Test_trace.suite @ Test_sim.suite @ Test_compiler.suite
   @ Test_workloads.suite @ Test_core.suite @ Test_parallel.suite
   @ Test_fault.suite @ Test_oracle.suite @ Test_timeline.suite
   @ Test_golden.suite @ Test_telemetry.suite @ Test_stream.suite
   @ Test_fastpath.suite @ Test_sweep.suite @ Test_sched.suite
   @ Test_meter.suite @ Test_openloop.suite @ Test_serve.suite)
