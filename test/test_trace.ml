(* Tests for Dpm_trace: event (de)serialization, trace containers, and the
   trace generator's miss accounting. *)

module Request = Dpm_trace.Request
module Trace = Dpm_trace.Trace
module Generate = Dpm_trace.Generate
module Parser = Dpm_ir.Parser
module Plan = Dpm_layout.Plan

let kib = Dpm_util.Units.kib

(* --- Request line round-trips --- *)

let sample_events =
  [
    Request.Io
      {
        think = 0.00125;
        disk = 3;
        block = 42;
        bytes = kib 64;
        kind = Request.Read;
        nest = 2;
        iter = 17;
      };
    Request.Io
      {
        think = 0.0;
        disk = 0;
        block = 0;
        bytes = 512;
        kind = Request.Write;
        nest = 0;
        iter = 0;
      };
    Request.Pm { think = 1.5; directive = Request.Spin_down 7 };
    Request.Pm { think = 0.0; directive = Request.Spin_up 0 };
    Request.Pm { think = 2e-6; directive = Request.Set_rpm { level = 4; disk = 5 } };
  ]

let test_line_roundtrip () =
  List.iter
    (fun e ->
      let e' = Request.of_line (Request.to_line e) in
      Alcotest.(check bool) "round-trip" true (e = e'))
    sample_events

let test_line_malformed () =
  List.iter
    (fun line ->
      try
        ignore (Request.of_line line);
        Alcotest.fail ("should reject: " ^ line)
      with Failure _ -> ())
    [ "nonsense"; "io 1.0 2"; "pm 1.0 sideways 3"; "io 1.0 0 0 64 x 0 0" ]

let qcheck_io_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"trace: io line round-trip"
    QCheck2.Gen.(
      tup6 (float_bound_exclusive 10.0) (int_bound 31) (int_bound 100000)
        (int_range 1 65536) bool (int_bound 5000))
    (fun (think, disk, block, bytes, read, iter) ->
      let io =
        Request.Io
          {
            think;
            disk;
            block;
            bytes;
            kind = (if read then Request.Read else Request.Write);
            nest = 1;
            iter;
          }
      in
      match (Request.of_line (Request.to_line io), io) with
      | Request.Io io', Request.Io io0 ->
          Float.abs (io'.Request.think -. io0.Request.think) < 1e-8
          && io'.disk = io0.disk && io'.block = io0.block
          && io'.bytes = io0.bytes && io'.kind = io0.kind
          && io'.iter = io0.iter
      | _ -> false)

(* --- Trace containers --- *)

let test_trace_counters () =
  let t = Trace.make ~tail_think:0.5 ~program:"p" ~ndisks:8 sample_events in
  Alcotest.(check int) "io count" 2 (Trace.io_count t);
  Alcotest.(check int) "pm count" 3 (Trace.pm_count t);
  Alcotest.(check int) "bytes" (kib 64 + 512) (Trace.total_bytes t);
  Alcotest.(check (float 1e-9)) "think incl tail"
    (0.00125 +. 1.5 +. 2e-6 +. 0.5)
    (Trace.total_think t);
  Alcotest.(check (list int)) "disks used" [ 0; 3 ] (Trace.disks_used t)

let test_trace_rejects_bad_disk () =
  Alcotest.check_raises "disk out of range"
    (Invalid_argument "Trace.make: request disk out of range") (fun () ->
      ignore (Trace.make ~program:"p" ~ndisks:2 sample_events))

let test_trace_without_pm_preserves_think () =
  let t = Trace.make ~tail_think:0.25 ~program:"p" ~ndisks:8 sample_events in
  let t' = Trace.without_pm t in
  Alcotest.(check int) "no pm" 0 (Trace.pm_count t');
  Alcotest.(check int) "same io" (Trace.io_count t) (Trace.io_count t');
  Alcotest.(check (float 1e-9)) "compute timeline preserved"
    (Trace.total_think t) (Trace.total_think t')

let test_trace_save_load () =
  let t = Trace.make ~tail_think:0.125 ~program:"prog" ~ndisks:8 sample_events in
  let path = Filename.temp_file "dpm" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save t path;
      let t' = Trace.load path in
      Alcotest.(check string) "program" (Trace.program t) (Trace.program t');
      Alcotest.(check int) "ndisks" (Trace.ndisks t) (Trace.ndisks t');
      Alcotest.(check (float 1e-9))
        "tail" (Trace.tail_think t) (Trace.tail_think t');
      Alcotest.(check int) "events" (Trace.event_count t)
        (Trace.event_count t');
      let events' = Trace.events t' in
      Array.iteri
        (fun i e ->
          Alcotest.(check string) "event line" (Request.to_line e)
            (Request.to_line events'.(i)))
        (Trace.events t))

(* --- Generator --- *)

let simple_program () =
  Parser.program ~name:"gen"
    {|
array A[32] : 8192
array B[32] : 8192
for t = 1 to 2 {
  for i = 0 to 31 { B[i] = A[i] work 1000 }
}
|}

let test_generate_cold_misses () =
  let p = simple_program () in
  let plan = Plan.uniform ~ndisks:8 p in
  let trace =
    Generate.run ~config:{ Generate.default_config with cache_blocks = 64 } p plan
  in
  Alcotest.(check int) "cold misses only" 8 (Trace.io_count trace);
  (match Trace.io_events trace with
  | first :: _ ->
      Alcotest.(check bool) "first is read" true (first.Request.kind = Request.Read)
  | [] -> Alcotest.fail "no events");
  Alcotest.(check bool) "writes present" true
    (List.exists
       (fun (io : Request.io) -> io.Request.kind = Request.Write)
       (Trace.io_events trace))

let test_generate_thrash_on_tiny_cache () =
  let p = simple_program () in
  let plan = Plan.uniform ~ndisks:8 p in
  let trace =
    Generate.run ~config:{ Generate.default_config with cache_blocks = 2 } p plan
  in
  Alcotest.(check int) "both sweeps miss" 16 (Trace.io_count trace)

let test_generate_deterministic () =
  let p = simple_program () in
  let plan = Plan.uniform ~ndisks:8 p in
  let t1 = Generate.run p plan and t2 = Generate.run p plan in
  Alcotest.(check int) "same length" (Trace.event_count t1)
    (Trace.event_count t2);
  let events2 = Trace.events t2 in
  Array.iteri
    (fun i e ->
      Alcotest.(check string) "same event" (Request.to_line e)
        (Request.to_line events2.(i)))
    (Trace.events t1)

let test_generate_think_accounts_work () =
  let p = simple_program () in
  let plan = Plan.uniform ~ndisks:8 p in
  let trace = Generate.run p plan in
  let work_seconds = 64.0 *. 1000.0 /. 750e6 in
  Alcotest.(check bool) "think >= work" true
    (Trace.total_think trace >= work_seconds)

let test_generate_pm_passthrough () =
  let p =
    Parser.program ~name:"pm"
      {|
array A[8] : 8192
spin_down(3)
for i = 0 to 7 { use A[i] work 10 }
spin_up(3)
|}
  in
  let plan = Plan.uniform ~ndisks:8 p in
  let trace = Generate.run p plan in
  Alcotest.(check int) "directives pass through" 2 (Trace.pm_count trace);
  match (Trace.events trace).(0) with
  | Request.Pm { directive = Request.Spin_down 3; _ } -> ()
  | _ -> Alcotest.fail "first event should be the spin_down directive"

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "trace.request",
      [
        Alcotest.test_case "line round-trip" `Quick test_line_roundtrip;
        Alcotest.test_case "malformed lines" `Quick test_line_malformed;
        q qcheck_io_roundtrip;
      ] );
    ( "trace.container",
      [
        Alcotest.test_case "counters" `Quick test_trace_counters;
        Alcotest.test_case "bad disk" `Quick test_trace_rejects_bad_disk;
        Alcotest.test_case "without_pm" `Quick test_trace_without_pm_preserves_think;
        Alcotest.test_case "save/load" `Quick test_trace_save_load;
      ] );
    ( "trace.generate",
      [
        Alcotest.test_case "cold misses" `Quick test_generate_cold_misses;
        Alcotest.test_case "thrash" `Quick test_generate_thrash_on_tiny_cache;
        Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
        Alcotest.test_case "think includes work" `Quick
          test_generate_think_accounts_work;
        Alcotest.test_case "pm passthrough" `Quick test_generate_pm_passthrough;
      ] );
  ]
