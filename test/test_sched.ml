(* Heterogeneous fleets + pluggable per-disk request scheduling — the
   PR's differential/property pin layer.

   Three families of guarantees:

   - FCFS is the seed engine: under the default (FCFS) discipline the
     deferred-dispatch module never engages, and the reference core must
     stay byte-identical to the fast SoA core (which is the pre-fleet
     engine's replay body) on results, timeline event lists and fault
     counters — over random traces, all seven policy shapes, batch
     sizes, faults on/off and 1-vs-4 experiment domains.

   - A homogeneous fleet is the legacy configuration: filling
     [Config.fleet] with copies of the primary model must change
     nothing.

   - The deferred disciplines (SSTF/SCAN/C-LOOK/SSTF-remap) are legal
     and starvation-free: every replay passes the extended
     {!Timeline.check} per-queue invariants, and on fault-free
     workloads every I/O event is served exactly once. *)

module Request = Dpm_trace.Request
module Trace = Dpm_trace.Trace
module Stream = Trace.Stream
module Engine = Dpm_sim.Engine
module Policy = Dpm_sim.Policy
module Config = Dpm_sim.Config
module Sched = Dpm_sim.Sched
module Fault = Dpm_sim.Fault
module Fastpath = Dpm_sim.Fastpath
module Timeline = Dpm_sim.Timeline
module Result = Dpm_sim.Result
module Specs = Dpm_disk.Specs
module Experiment = Dpm_core.Experiment
module Scheme = Dpm_core.Scheme
module Pool = Dpm_util.Pool

(* Policies are built fresh per replay: the reactive ones carry mutable
   controller state that must not leak across runs. *)
let policies config ~ndisks =
  [
    ("base", fun () -> Policy.base);
    ("tpm", fun () -> Policy.tpm config);
    ("tpm_adaptive", fun () -> Policy.tpm_adaptive config ~ndisks);
    ("drpm", fun () -> Policy.drpm config ~ndisks);
    ("adaptive", fun () -> Policy.adaptive config ~ndisks);
    ("cm_tpm", fun () -> Policy.cm_tpm);
    ("cm_drpm", fun () -> Policy.cm_drpm);
  ]

let replay ?(config = Config.default) ?sink ~core ~faults ~batch mk trace =
  Engine.run_stream ~config ~faults ?timeline:sink ~core (mk ())
    (Stream.of_trace ~batch trace)

let io_count trace =
  Array.fold_left
    (fun n e -> match e with Request.Io _ -> n + 1 | Request.Pm _ -> n)
    0 (Trace.events trace)

(* --- FCFS ≡ the pre-fleet engine --- *)

let qcheck_fcfs_differential =
  QCheck2.Test.make ~count:20
    ~name:"sched: FCFS reference ≡ fast (policies × batches × faults)"
    Gen.gen_trace
    (fun trace ->
      let config = Config.with_sched Config.Fcfs Config.default in
      let ndisks = Trace.ndisks trace in
      List.for_all
        (fun (_, mk) ->
          List.for_all
            (fun batch ->
              List.for_all
                (fun faults ->
                  let sink_r = Timeline.sink () and sink_f = Timeline.sink () in
                  let r_ref =
                    replay ~config ~sink:sink_r ~core:`Reference ~faults ~batch
                      mk trace
                  in
                  let r_fast =
                    replay ~config ~sink:sink_f ~core:`Fast ~faults ~batch mk
                      trace
                  in
                  r_ref = r_fast
                  && r_ref.Result.faults = r_fast.Result.faults
                  && Timeline.events (Timeline.contents sink_r)
                     = Timeline.events (Timeline.contents sink_f))
                [ Fault.none; Gen.fault_spec ])
            [ 1; 7; 4096 ])
        (policies config ~ndisks))

(* All seven schemes at the experiment level, fanned over 1 vs 4
   domains: the FCFS rows of the grid must not depend on the domain
   count or the core. *)
let test_fcfs_experiment_domains () =
  let trace = Gen.busy_trace ~think:0.4 ~n:60 ~ndisks:4 () in
  let results core domains =
    Pool.map ~domains
      (fun batch ->
        Experiment.replay_all
          ~setup:
            (Experiment.make_setup
               ~sim:(Config.with_sched Config.Fcfs Config.default)
               ~core ~batch ())
          (fun () -> Stream.of_trace ~batch trace))
      [ 1; 7 ]
  in
  let reference = results `Reference 1 in
  List.iter
    (fun other ->
      List.iter2
        (fun per_batch_ref per_batch_other ->
          List.iter2
            (fun (s, r_ref) (s', r_other) ->
              Alcotest.(check string) "same scheme order" (Scheme.name s)
                (Scheme.name s');
              Alcotest.(check bool)
                (Scheme.name s ^ ": domain/core invariant")
                true (r_ref = r_other))
            per_batch_ref per_batch_other)
        reference other)
    [ results `Fast 1; results `Fast 4; results `Reference 4 ]

(* --- Homogeneous fleet ≡ legacy --- *)

let qcheck_homogeneous_fleet_legacy =
  QCheck2.Test.make ~count:15
    ~name:"sched: homogeneous fleet ≡ empty fleet (policies × cores)"
    QCheck2.Gen.(tup2 Gen.gen_trace (int_range 1 3))
    (fun (trace, copies) ->
      let specs = Config.default.Config.specs in
      let hom =
        Config.with_fleet (Array.make copies specs) Config.default
      in
      let ndisks = Trace.ndisks trace in
      List.for_all
        (fun (_, mk) ->
          List.for_all
            (fun core ->
              let r_legacy =
                replay ~core ~faults:Gen.fault_spec ~batch:16 mk trace
              in
              let r_hom =
                replay ~config:hom ~core ~faults:Gen.fault_spec ~batch:16 mk
                  trace
              in
              r_legacy = r_hom)
            [ `Reference; `Fast ])
        (policies Config.default ~ndisks))

(* --- Deferred disciplines: legality and starvation-freedom --- *)

let qcheck_sched_legal =
  QCheck2.Test.make ~count:15
    ~name:
      "sched: every discipline passes Timeline.check (configs × faults)"
    QCheck2.Gen.(tup2 Gen.gen_trace Gen.gen_config)
    ~print:(fun (trace, config) ->
      Printf.sprintf "%d events, %s"
        (Array.length (Trace.events trace))
        (Gen.config_print config))
    (fun (trace, config) ->
      List.for_all
        (fun faults ->
          List.for_all
            (fun (name, mk) ->
              let sink = Timeline.sink () in
              ignore (replay ~config ~sink ~core:`Fast ~faults ~batch:8 mk trace);
              match Timeline.check (Timeline.contents sink) with
              | Ok () -> true
              | Error msgs ->
                  QCheck2.Test.fail_reportf "%s/%s: %s" name
                    (Config.sched_name config.Config.sched)
                    (String.concat "; " msgs))
            [
              ("base", fun () -> Policy.base);
              ("tpm", fun () -> Policy.tpm config);
              ( "drpm",
                fun () -> Policy.drpm config ~ndisks:(Trace.ndisks trace) );
              ("cm_drpm", fun () -> Policy.cm_drpm);
            ])
        [ Fault.none; Gen.fault_spec ])

(* Work conservation / bounded starvation: on a fault-free workload,
   every I/O event is served exactly once under every discipline, and
   the run terminates with a finite makespan even with a queue depth of
   one (every enqueue forces a dispatch). *)
let qcheck_no_starvation =
  QCheck2.Test.make ~count:25
    ~name:"sched: every request completes (disciplines × depths, no faults)"
    QCheck2.Gen.(tup2 Gen.gen_trace (oneofl [ 1; 3; 32 ]))
    (fun (trace, depth) ->
      let expect = io_count trace in
      List.for_all
        (fun sched ->
          let config =
            Config.default
            |> Config.with_sched sched
            |> Config.with_queue_depth depth
          in
          let r =
            replay ~config ~core:`Reference ~faults:Fault.none ~batch:16
              (fun () -> Policy.base)
              trace
          in
          Result.requests r = expect
          && Float.is_finite r.Result.exec_time
          && r.Result.exec_time >= 0.0)
        Sched.all)

(* Adversarial starvation bait for SSTF/SCAN: a hot cluster of
   same-position requests plus one far outlier per disk.  Nearest-first
   must still serve the outlier (the queue bound forces it through). *)
let test_sstf_serves_outlier () =
  let events =
    List.concat_map
      (fun disk ->
        Gen.io ~think:0.0 ~disk ~block:63 ()
        :: List.init 40 (fun i ->
               Gen.io ~think:(if i = 0 then 0.0 else 0.001) ~disk ~block:1 ()))
      [ 0; 1 ]
  in
  let trace = Trace.make ~tail_think:0.1 ~program:"bait" ~ndisks:2 events in
  List.iter
    (fun sched ->
      let config =
        Config.default
        |> Config.with_sched sched
        |> Config.with_queue_depth 4
      in
      let sink = Timeline.sink () in
      let r =
        replay ~config ~sink ~core:`Reference ~faults:Fault.none ~batch:8
          (fun () -> Policy.base)
          trace
      in
      Alcotest.(check int)
        (Config.sched_name sched ^ " serves all requests")
        (io_count trace) (Result.requests r);
      match Timeline.check (Timeline.contents sink) with
      | Ok () -> ()
      | Error msgs ->
          Alcotest.failf "%s: %s" (Config.sched_name sched)
            (String.concat "; " msgs))
    [ Sched.Sstf; Sched.Scan; Sched.Clook; Sched.Sstf_remap ]

(* --- Fastpath fallback matrix --- *)

let test_fastpath_fallback () =
  List.iter
    (fun sched ->
      let config = Config.with_sched sched Config.default in
      let supported = Fastpath.supported ~config Policy.base in
      Alcotest.(check bool)
        (Config.sched_name sched ^ " fastpath support")
        (sched = Config.Fcfs) supported;
      (* Whatever the discipline, asking for the fast core must not
         change the answer: non-FCFS falls back to the deferred
         engine. *)
      let trace = Gen.busy_trace ~think:0.01 ~n:50 ~ndisks:4 () in
      let r_ref =
        replay ~config ~core:`Reference ~faults:Gen.fault_spec ~batch:8
          (fun () -> Policy.base)
          trace
      in
      let r_fast =
        replay ~config ~core:`Fast ~faults:Gen.fault_spec ~batch:8
          (fun () -> Policy.base)
          trace
      in
      Alcotest.(check bool)
        (Config.sched_name sched ^ ": core-independent")
        true (r_ref = r_fast))
    Sched.all

(* run_many models a shared arrival queue with FCFS semantics only. *)
let test_run_many_rejects_non_fcfs () =
  let trace = Gen.busy_trace ~think:0.01 ~n:10 ~ndisks:2 () in
  let config = Config.with_sched Config.Sstf Config.default in
  Alcotest.check_raises "run_many rejects SSTF"
    (Invalid_argument "Engine.run_many: only the FCFS scheduler is supported")
    (fun () ->
      ignore (Engine.run_many ~config Policy.base [ trace ]))

(* --- Registry sanity --- *)

let test_registry () =
  Alcotest.(check int) "five disciplines" 5 (List.length Sched.all);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Sched.name s ^ " round-trips")
        true
        (Sched.of_name_opt (Sched.name s) = Some s))
    Sched.all;
  Alcotest.(check bool) "clook alias" true
    (Config.sched_of_name_opt "clook" = Some Config.Clook);
  Alcotest.(check bool) "case/space insensitive" true
    (Config.sched_of_name_opt " SSTF-Remap " = Some Config.Sstf_remap);
  Alcotest.(check bool) "unknown rejected" true
    (Config.sched_of_name_opt "elevator" = None)

(* Non-FCFS on a seekful workload must not reorder across think-time
   dependencies so grossly that energy goes negative or time shrinks
   below the busy floor — a coarse sanity pin on the deferred engine's
   accounting. *)
let test_deferred_accounting_sane () =
  let trace = Gen.busy_trace ~think:0.005 ~n:400 ~ndisks:4 () in
  List.iter
    (fun sched ->
      let config = Config.with_sched sched Config.default in
      let r =
        replay ~config ~core:`Reference ~faults:Fault.none ~batch:64
          (fun () -> Policy.base)
          trace
      in
      Alcotest.(check bool)
        (Config.sched_name sched ^ " positive energy")
        true (r.Result.energy > 0.0);
      Alcotest.(check bool)
        (Config.sched_name sched ^ " positive exec time")
        true
        (r.Result.exec_time > 0.0))
    Sched.all

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "sched.differential",
      [
        q qcheck_fcfs_differential;
        Alcotest.test_case "experiment grid (1 vs 4 domains)" `Slow
          test_fcfs_experiment_domains;
        q qcheck_homogeneous_fleet_legacy;
      ] );
    ( "sched.legality",
      [
        q qcheck_sched_legal;
        q qcheck_no_starvation;
        Alcotest.test_case "SSTF/SCAN serve the outlier" `Quick
          test_sstf_serves_outlier;
      ] );
    ( "sched.surface",
      [
        Alcotest.test_case "fastpath fallback matrix" `Quick
          test_fastpath_fallback;
        Alcotest.test_case "run_many rejects non-FCFS" `Quick
          test_run_many_rejects_non_fcfs;
        Alcotest.test_case "registry round-trip" `Quick test_registry;
        Alcotest.test_case "deferred accounting sane" `Quick
          test_deferred_accounting_sane;
      ] );
  ]
