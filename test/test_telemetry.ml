(* The observability layer: histograms whose quantiles are exact under
   any merge order (the parallel-grid determinism property), span trees
   that export as balanced Chrome traces, a JSON printer/parser that
   round-trips, a leveled logger, and — the governing invariant —
   telemetry that never perturbs simulation results. *)

module Histo = Dpm_util.Histo
module Telemetry = Dpm_util.Telemetry
module Json = Dpm_util.Json
module Log = Dpm_util.Log
module Metrics = Dpm_util.Metrics
module Stats = Dpm_util.Stats
module Pool = Dpm_util.Pool
module Scheme = Dpm_core.Scheme
module Experiment = Dpm_core.Experiment

let histo_of xs =
  let h = Histo.create () in
  List.iter (Histo.add h) xs;
  h

let same_histo a b =
  Histo.count a = Histo.count b
  && Histo.buckets a = Histo.buckets b
  && Histo.min_value a = Histo.min_value b
  && Histo.max_value a = Histo.max_value b
  && List.for_all
       (fun p -> Histo.quantile a p = Histo.quantile b p)
       [ 0.0; 25.0; 50.0; 90.0; 99.0; 100.0 ]

(* Dyadic floats: exactly representable, never NaN/inf, varied scale. *)
let gen_pos_float =
  QCheck2.Gen.(
    map
      (fun (m, e) -> Float.ldexp (float_of_int m) e)
      (pair (int_range 1 1_000_000) (int_range (-20) 20)))

let gen_floats = QCheck2.Gen.(list_size (int_range 0 200) gen_pos_float)

(* (a) Merging is exactly commutative: per-bucket integer counts. *)
let qcheck_merge_commutative =
  QCheck2.Test.make ~count:200 ~name:"histo: merge commutative"
    QCheck2.Gen.(pair gen_floats gen_floats)
    (fun (xs, ys) ->
      let a = histo_of xs and b = histo_of ys in
      same_histo (Histo.merge a b) (Histo.merge b a))

(* (b) ... and associative, so any parallel merge tree gives the same
   quantiles — the domain-count independence the engine relies on. *)
let qcheck_merge_associative =
  QCheck2.Test.make ~count:200 ~name:"histo: merge associative"
    QCheck2.Gen.(triple gen_floats gen_floats gen_floats)
    (fun (xs, ys, zs) ->
      let a = histo_of xs and b = histo_of ys and c = histo_of zs in
      same_histo
        (Histo.merge (Histo.merge a b) c)
        (Histo.merge a (Histo.merge b c)))

(* (c) Quantiles are nearest-rank order statistics within a factor of
   gamma (and never below the true value). *)
let qcheck_quantile_bounds =
  QCheck2.Test.make ~count:300 ~name:"histo: quantile within gamma of exact"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 200) gen_pos_float)
        (map float_of_int (int_range 0 100)))
    (fun (xs, p) ->
      let h = histo_of xs in
      let q = Histo.quantile h p in
      let exact = Stats.percentile p xs in
      q >= exact *. (1.0 -. 1e-9)
      && q <= exact *. Histo.gamma *. (1.0 +. 1e-9))

let test_histo_edges () =
  let h = Histo.create () in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Histo.quantile h 50.0);
  Histo.add h 0.0;
  Histo.add h (-3.0);
  Histo.add h 2.0;
  Alcotest.(check int) "zeros count" 3 (Histo.count h);
  Alcotest.(check (float 0.0)) "p50 hits the zero bucket" 0.0
    (Histo.quantile h 50.0);
  Alcotest.(check (float 0.0)) "p100 is the exact max" 2.0
    (Histo.quantile h 100.0);
  Histo.add h Float.nan;
  Alcotest.(check int) "NaN ignored" 3 (Histo.count h)

(* --- span trees --- *)

let rec build_tree t depth name =
  Telemetry.span t name (fun () ->
      if depth > 0 then begin
        build_tree t (depth - 1) (name ^ "l");
        build_tree t (depth - 1) (name ^ "r")
      end)

let test_span_tree () =
  let t = Telemetry.create () in
  Telemetry.set_tracing t true;
  build_tree t 3 "s";
  let spans = Telemetry.spans t in
  Alcotest.(check int) "2^4 - 1 spans" 15 (List.length spans);
  let by_id =
    List.fold_left
      (fun acc (s : Telemetry.span) -> (s.Telemetry.id, s) :: acc)
      [] spans
  in
  let roots = ref 0 in
  List.iter
    (fun (s : Telemetry.span) ->
      if s.Telemetry.parent < 0 then incr roots
      else
        match List.assoc_opt s.Telemetry.parent by_id with
        | None -> Alcotest.fail "dangling parent id"
        | Some p ->
            Alcotest.(check bool) "parent opened first" true
              (p.Telemetry.t0 <= s.Telemetry.t0);
            Alcotest.(check bool) "parent closed last" true
              (p.Telemetry.t1 >= s.Telemetry.t1);
            Alcotest.(check int) "same track" p.Telemetry.track
              s.Telemetry.track;
            Alcotest.(check bool) "children named after parent" true
              (String.length s.Telemetry.name > String.length p.Telemetry.name))
    spans;
  Alcotest.(check int) "single root" 1 !roots

let test_span_exception_closes () =
  let t = Telemetry.create () in
  Telemetry.set_tracing t true;
  (try
     Telemetry.span t "outer" (fun () ->
         Telemetry.span t "inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  match Telemetry.spans t with
  | [ outer; inner ] ->
      Alcotest.(check string) "outer first by id" "outer" outer.Telemetry.name;
      Alcotest.(check int) "inner nested under outer" outer.Telemetry.id
        inner.Telemetry.parent
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

(* Spans recorded from pool workers land on their own tracks and the
   export still balances. *)
let test_spans_across_domains () =
  let t = Telemetry.global in
  Telemetry.reset t;
  Telemetry.set_tracing t true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.set_tracing t false;
      Telemetry.reset t)
    (fun () ->
      let results =
        Pool.map ~domains:4
          (fun i ->
            Telemetry.span t "job" (fun () -> i * i))
          [ 1; 2; 3; 4; 5; 6; 7; 8 ]
      in
      Alcotest.(check (list int)) "results unchanged"
        [ 1; 4; 9; 16; 25; 36; 49; 64 ]
        results;
      let spans = Telemetry.spans t in
      (* 8 explicit jobs + 8 pool.task wrappers *)
      Alcotest.(check int) "all spans recorded" 16 (List.length spans);
      let doc = Telemetry.chrome_json t in
      match Telemetry.validate_chrome doc with
      | Ok () -> ()
      | Error msgs -> Alcotest.fail (String.concat "; " msgs))

let test_chrome_round_trip () =
  let t = Telemetry.create () in
  Telemetry.set_tracing t true;
  build_tree t 2 "r";
  let doc = Telemetry.chrome_json t in
  (match Telemetry.validate_chrome doc with
  | Ok () -> ()
  | Error msgs -> Alcotest.fail (String.concat "; " msgs));
  match Json.parse_string (Json.to_string ~indent:1 doc) with
  | Error m -> Alcotest.fail m
  | Ok reparsed ->
      Alcotest.(check bool) "trace JSON round-trips structurally" true
        (reparsed = doc);
      (match Telemetry.validate_chrome reparsed with
      | Ok () -> ()
      | Error msgs -> Alcotest.fail (String.concat "; " msgs))

let test_validate_chrome_rejects () =
  let ev ph name =
    Json.Obj
      [
        ("ph", Json.Str ph);
        ("name", Json.Str name);
        ("ts", Json.Float 1.0);
        ("pid", Json.Int 1);
        ("tid", Json.Int 0);
      ]
  in
  let doc events = Json.Obj [ ("traceEvents", Json.Arr events) ] in
  let is_err = function Error _ -> true | Ok () -> false in
  Alcotest.(check bool) "unbalanced B rejected" true
    (is_err (Telemetry.validate_chrome (doc [ ev "B" "a" ])));
  Alcotest.(check bool) "E without B rejected" true
    (is_err (Telemetry.validate_chrome (doc [ ev "E" "a" ])));
  Alcotest.(check bool) "mismatched names rejected" true
    (is_err (Telemetry.validate_chrome (doc [ ev "B" "a"; ev "E" "b" ])));
  Alcotest.(check bool) "empty trace rejected" true
    (is_err (Telemetry.validate_chrome (doc [])));
  Alcotest.(check bool) "balanced pair accepted" true
    (Telemetry.validate_chrome (doc [ ev "B" "a"; ev "E" "a" ]) = Ok ())

(* --- JSON round-trip --- *)

let gen_json =
  let open QCheck2.Gen in
  let gen_str = string_size ~gen:printable (int_range 0 12) in
  let leaf =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun f -> Json.Float f) gen_pos_float;
        map (fun f -> Json.Float (-.f)) gen_pos_float;
        map (fun s -> Json.Str s) gen_str;
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        oneof
          [
            leaf;
            map (fun xs -> Json.Arr xs) (list_size (int_range 0 4) (self (depth - 1)));
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (int_range 0 4) (pair gen_str (self (depth - 1))));
          ])
    3

let qcheck_json_round_trip =
  QCheck2.Test.make ~count:300 ~name:"json: print/parse round-trip" gen_json
    (fun v ->
      match Json.parse_string (Json.to_string v) with
      | Ok v' -> v' = v
      | Error _ -> false)

let qcheck_json_round_trip_indented =
  QCheck2.Test.make ~count:100 ~name:"json: indented round-trip" gen_json
    (fun v ->
      match Json.parse_string (Json.to_string ~indent:2 v) with
      | Ok v' -> v' = v
      | Error _ -> false)

let test_json_escapes () =
  let v = Json.Str "a\"b\\c\nd\te\r\x01" in
  (match Json.parse_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "escapes round-trip" true (v = v')
  | Error m -> Alcotest.fail m);
  (match Json.parse_string "{\"a\": [1, 2.5, true, null, \"x\"]} " with
  | Ok
      (Json.Obj
        [ ("a", Json.Arr [ Json.Int 1; Json.Float 2.5; Json.Bool true; Json.Null; Json.Str "x" ]) ])
    -> ()
  | Ok _ -> Alcotest.fail "unexpected parse"
  | Error m -> Alcotest.fail m);
  match Json.parse_string "{} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted"

let test_schema_outline () =
  let doc =
    Json.Obj
      [
        ("b", Json.Int 1);
        ("a", Json.Str "x");
        ( "rows",
          Json.Arr
            [
              Json.Obj [ ("v", Json.Float 1.5) ];
              Json.Obj [ ("v", Json.Int 2); ("extra", Json.Bool true) ];
            ] );
      ]
  in
  Alcotest.(check (list string))
    "sorted, merged array elements"
    [
      ".a:s"; ".b:n"; ".rows:a"; ".rows[].extra:b"; ".rows[].v:n";
      ".rows[]:o"; ":o";
    ]
    (Json.schema_outline doc)

(* --- logger --- *)

let test_logger () =
  let captured = ref [] in
  Log.set_writer (Some (fun line -> captured := line :: !captured));
  let saved = Log.level () in
  Fun.protect
    ~finally:(fun () ->
      Log.set_writer None;
      Log.set_level saved)
    (fun () ->
      Log.set_level Log.Warn;
      Alcotest.(check bool) "warn passes" true (Log.would_log Log.Warn);
      Alcotest.(check bool) "info filtered" false (Log.would_log Log.Info);
      Log.debug ~scope:"t" "hidden";
      Log.info ~scope:"t" "hidden";
      Log.warn ~scope:"engine" ~kv:[ ("scheme", "DRPM"); ("note", "a b") ]
        "slow replay";
      Log.error ~scope:"t" "boom";
      Alcotest.(check (list string))
        "only warn+error, formatted"
        [
          "[dpm][warn] engine: slow replay scheme=DRPM note=\"a b\"\n";
          "[dpm][error] t: boom\n";
        ]
        (List.rev !captured))

let test_level_of_string () =
  List.iter
    (fun l ->
      match Log.level_of_string (Log.level_name l) with
      | Ok l' -> Alcotest.(check bool) "level name round-trips" true (l = l')
      | Error m -> Alcotest.fail m)
    Log.all_levels;
  match Log.level_of_string "chatty" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad level accepted"

(* --- metrics determinism (satellite: name-sorted report rows) --- *)

let test_metrics_sorted () =
  let m = Metrics.create () in
  Metrics.record_span m "zeta" 0.5;
  Metrics.record_span m "alpha" 0.25;
  Metrics.record_span m "mid" 1.0;
  Metrics.count m "z.counter";
  Metrics.count m "a.counter";
  Alcotest.(check (list string))
    "spans sorted by name"
    [ "alpha"; "mid"; "zeta" ]
    (List.map (fun (n, _, _) -> n) (Metrics.spans m));
  Alcotest.(check (list string))
    "counters sorted by name"
    [ "a.counter"; "z.counter" ]
    (List.map fst (Metrics.counters m))

(* --- the governing invariant: telemetry never changes results --- *)

let run_schemes = [ Scheme.Base; Scheme.Tpm; Scheme.Idrpm; Scheme.Cmdrpm ]

let results_for () =
  let spec = Dpm_workloads.Suite.find "wupwise" in
  let p, plan = Experiment.workload spec in
  let setup = Experiment.make_setup ~noise:spec.Dpm_workloads.Suite.noise () in
  Experiment.run_all ~setup ~schemes:run_schemes p plan

let test_observer_effect () =
  let t = Telemetry.global in
  let off = results_for () in
  Telemetry.reset t;
  Telemetry.set_tracing t true;
  Telemetry.set_histograms t true;
  let was_metrics = Metrics.enabled Metrics.global in
  Metrics.set_enabled Metrics.global true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.set_tracing t false;
      Telemetry.set_histograms t false;
      Metrics.set_enabled Metrics.global was_metrics;
      Telemetry.reset t)
    (fun () ->
      let on = results_for () in
      Alcotest.(check bool)
        "results bit-identical with telemetry on (1 domain)" true (off = on);
      let pooled = Pool.map ~domains:4 (fun _ -> results_for ()) [ 0; 1; 2; 3 ] in
      Alcotest.(check bool)
        "results bit-identical from 4 concurrent domains" true
        (List.for_all (fun r -> r = off) pooled);
      Alcotest.(check bool) "spans were recorded" true
        (Telemetry.spans t <> []);
      let histos = Telemetry.histograms t in
      Alcotest.(check bool) "latency histogram registered" true
        (List.mem_assoc "sim.service_latency_s" histos);
      Alcotest.(check bool) "queue-depth histogram registered" true
        (List.mem_assoc "sim.queue_depth" histos);
      (* 5 identical runs fed the same histograms: quantiles must come
         out the same as one run scaled — check count divisibility. *)
      let latency = List.assoc "sim.service_latency_s" histos in
      Alcotest.(check int) "latency count divides evenly" 0
        (Histo.count latency mod 5))

(* --- run reports --- *)

let test_report () =
  match
    Dpm_core.Report.run ~schemes:[ Scheme.Base; Scheme.Cmdrpm ] "wupwise"
  with
  | Error e -> Alcotest.fail (Dpm_core.Run.error_message e)
  | Ok doc ->
      (match Dpm_core.Report.validate doc with
      | Ok () -> ()
      | Error msgs -> Alcotest.fail (String.concat "; " msgs));
      (match Json.parse_string (Json.to_string ~indent:1 doc) with
      | Ok doc' ->
          Alcotest.(check bool) "report JSON round-trips" true (doc = doc');
          Alcotest.(check (list string))
            "schema outline stable across print/parse"
            (Json.schema_outline doc)
            (Json.schema_outline doc')
      | Error m -> Alcotest.fail m);
      let md = Dpm_core.Report.markdown doc in
      Alcotest.(check bool) "markdown names the benchmark" true
        (String.length md > 0
        &&
        let re = "wupwise" in
        let found = ref false in
        for i = 0 to String.length md - String.length re do
          if String.sub md i (String.length re) = re then found := true
        done;
        !found)

let test_bench_snapshot () =
  let doc =
    Dpm_core.Report.bench_snapshot
      ~figures:[ ("fig3", 1.25); ("table2", 0.5) ]
      ()
  in
  (match Dpm_core.Report.validate_bench doc with
  | Ok () -> ()
  | Error msgs -> Alcotest.fail (String.concat "; " msgs));
  (* Malformed snapshots are rejected. *)
  match
    Dpm_core.Report.validate_bench
      (Json.Obj [ ("schema", Json.Str "dpm-bench/1"); ("figures", Json.Arr []) ])
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty figure list accepted"

let qt = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "telemetry",
      [
        qt qcheck_merge_commutative;
        qt qcheck_merge_associative;
        qt qcheck_quantile_bounds;
        Alcotest.test_case "histogram edge cases" `Quick test_histo_edges;
        Alcotest.test_case "span tree well-formed" `Quick test_span_tree;
        Alcotest.test_case "span closes on exception" `Quick
          test_span_exception_closes;
        Alcotest.test_case "spans across domains" `Quick
          test_spans_across_domains;
        Alcotest.test_case "chrome trace round-trip" `Quick
          test_chrome_round_trip;
        Alcotest.test_case "chrome validator rejects bad traces" `Quick
          test_validate_chrome_rejects;
        qt qcheck_json_round_trip;
        qt qcheck_json_round_trip_indented;
        Alcotest.test_case "json escapes and errors" `Quick test_json_escapes;
        Alcotest.test_case "schema outline" `Quick test_schema_outline;
        Alcotest.test_case "logger levels and formatting" `Quick test_logger;
        Alcotest.test_case "log level parsing" `Quick test_level_of_string;
        Alcotest.test_case "metrics rows name-sorted" `Quick
          test_metrics_sorted;
        Alcotest.test_case "telemetry is observation-only" `Slow
          test_observer_effect;
        Alcotest.test_case "run report validates and round-trips" `Slow
          test_report;
        Alcotest.test_case "bench snapshot validates" `Quick
          test_bench_snapshot;
      ] );
  ]
