(* Golden-file regression tests: the rendered Table 2 and Figure 3/4
   series are compared byte-for-byte against test/golden/*.expected on
   every `dune runtest`, so a perf refactor that silently changes the
   physics (energy, time, request counts) fails loudly.

   To regenerate after an intentional physics change:
     dune exec bench/main.exe -- table2 fig3 fig4
   and paste each table (including the trailing blank line) into the
   matching golden/<id>.expected. *)

module Figures = Dpm_core.Figures

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden id (figure : Figures.figure) =
  let path = Filename.concat "golden" (id ^ ".expected") in
  if not (Sys.file_exists path) then
    Alcotest.fail
      (Printf.sprintf "missing golden file %s (run from test/ with dune)" path);
  let expected = read_file path in
  Alcotest.(check string) (id ^ " matches golden") expected figure.rendered

let test_table2 () = check_golden "table2" (Figures.table2 ())
let test_fig3 () = check_golden "fig3" (Figures.fig3 ())
let test_fig4 () = check_golden "fig4" (Figures.fig4 ())

let suite =
  [
    ( "golden",
      [
        Alcotest.test_case "table2" `Slow test_table2;
        Alcotest.test_case "fig3" `Slow test_fig3;
        Alcotest.test_case "fig4" `Slow test_fig4;
      ] );
  ]
