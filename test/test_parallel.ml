(* The parallel experiment runner: Pool.map must be observationally
   List.map — same results, same order, same (deterministic) exception —
   whatever the domain count, and the full Figure 3 grid must be
   bit-identical between 1 and 4 domains (the share-nothing audit's
   acceptance test). *)

module Pool = Dpm_util.Pool
module Metrics = Dpm_util.Metrics
module Scheme = Dpm_core.Scheme
module Experiment = Dpm_core.Experiment

(* (a) Pool.map = List.map on random functions, sizes and domain counts. *)
let qcheck_map_matches_list_map =
  QCheck2.Test.make ~count:100 ~name:"pool: map matches List.map"
    QCheck2.Gen.(
      quad (int_range 1 6) (int_range 0 64) (int_range (-50) 50)
        (int_range 1 7))
    (fun (domains, size, a, b) ->
      let xs = List.init size (fun i -> i) in
      let f x = (a * x * x) + (b * x) + ((a + b) mod (x + 1)) in
      Pool.map ~domains f xs = List.map f xs)

let test_map_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~domains:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Pool.map ~domains:4 succ [ 1 ])

let test_pool_reuse () =
  let pool = Pool.create ~domains:3 () in
  Alcotest.(check int) "three workers" 3 (Pool.size pool);
  let a = Pool.run pool (fun x -> x * 2) [ 1; 2; 3; 4; 5 ] in
  let b = Pool.run pool string_of_int [ 6; 7; 8 ] in
  Pool.shutdown pool;
  Alcotest.(check (list int)) "first batch" [ 2; 4; 6; 8; 10 ] a;
  Alcotest.(check (list string)) "second batch" [ "6"; "7"; "8" ] b

(* (c) Exceptions in workers surface on the caller — deterministically
   the lowest-indexed one — and the pool survives a failed batch. *)
exception Boom of int

let test_exception_propagation () =
  let pool = Pool.create ~domains:4 () in
  let failing x = if x mod 3 = 0 then raise (Boom x) else x in
  (try
     ignore (Pool.run pool failing [ 1; 2; 3; 4; 5; 6; 7 ]);
     Alcotest.fail "expected Boom"
   with Boom x -> Alcotest.(check int) "lowest-indexed failure wins" 3 x);
  (* The failed batch must not wedge the workers. *)
  let ok = Pool.run pool succ [ 10; 20; 30 ] in
  Alcotest.(check (list int)) "pool survives a failed batch" [ 11; 21; 31 ] ok;
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "run after shutdown rejected"
    (Invalid_argument "Pool.run: pool is shut down") (fun () ->
      ignore (Pool.run pool succ [ 1; 2 ]))

let test_map_exception () =
  try
    ignore
      (Pool.map ~domains:4
         (fun x -> if x = 9 then failwith "nine" else x)
         (List.init 32 (fun i -> i)));
    Alcotest.fail "expected Failure"
  with Failure m -> Alcotest.(check string) "message" "nine" m

let test_default_domains () =
  let saved = Pool.default_domains () in
  Alcotest.(check bool) "positive" true (saved >= 1);
  Pool.set_default_domains 3;
  Alcotest.(check int) "override" 3 (Pool.default_domains ());
  Pool.set_default_domains 0;
  Alcotest.(check int) "clamped to 1" 1 (Pool.default_domains ());
  Pool.set_default_domains saved

(* (b) The full Fig. 3 grid (6 workloads x 7 schemes, per-spec noise)
   must produce byte-identical Result records with 1 and 4 domains. *)
let fig3_grid ~domains =
  Pool.map ~domains
    (fun (spec : Dpm_workloads.Suite.spec) ->
      let p, plan = Experiment.workload spec in
      let setup = { Experiment.default_setup with noise = spec.noise } in
      (spec.name, Experiment.run_all ~setup p plan))
    Dpm_workloads.Suite.all

let test_fig3_grid_deterministic () =
  let d1 = fig3_grid ~domains:1 in
  let d4 = fig3_grid ~domains:4 in
  Alcotest.(check int) "grid size" (List.length d1) (List.length d4);
  Alcotest.(check bool) "structurally equal" true (d1 = d4);
  (* Byte-identity, not just (=): NaN-free float payloads serialize to
     the very same bytes when the physics is untouched by scheduling. *)
  Alcotest.(check string) "byte-identical marshalled grids"
    (Digest.to_hex (Digest.string (Marshal.to_string d1 [])))
    (Digest.to_hex (Digest.string (Marshal.to_string d4 [])))

(* Metrics: domain-safe accumulation and report rendering. *)
let test_metrics_concurrent () =
  let m = Metrics.create () in
  ignore
    (Pool.map ~domains:4
       (fun i ->
         Metrics.span m "work" (fun () -> Metrics.add m "items" i))
       (List.init 100 (fun i -> i)));
  Alcotest.(check int) "span calls" 100 (Metrics.span_calls m "work");
  Alcotest.(check int) "counter total" 4950 (Metrics.counter m "items");
  Alcotest.(check bool) "report renders" true
    (String.length (Metrics.report m) > 0)

let test_metrics_disabled_is_noop () =
  let m = Metrics.create ~enabled:false () in
  Alcotest.(check int) "disabled span runs thunk" 3
    (Metrics.span m "x" (fun () -> 3));
  Metrics.count m "x";
  Alcotest.(check int) "disabled counter" 0 (Metrics.counter m "x");
  Alcotest.(check string) "empty report" "" (Metrics.report m);
  Metrics.set_enabled m true;
  Metrics.count m "x";
  Alcotest.(check int) "re-enabled counter" 1 (Metrics.counter m "x");
  Alcotest.(check bool) "rate needs both sides" true
    (Metrics.rate m ~counter:"x" ~span:"missing" = None)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "parallel.pool",
      [
        q qcheck_map_matches_list_map;
        Alcotest.test_case "empty and singleton" `Quick
          test_map_empty_and_singleton;
        Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
        Alcotest.test_case "exception propagation" `Quick
          test_exception_propagation;
        Alcotest.test_case "map exception" `Quick test_map_exception;
        Alcotest.test_case "default domains" `Quick test_default_domains;
      ] );
    ( "parallel.determinism",
      [
        Alcotest.test_case "fig3 grid bit-identical across domain counts"
          `Slow test_fig3_grid_deterministic;
      ] );
    ( "parallel.metrics",
      [
        Alcotest.test_case "concurrent accumulation" `Quick
          test_metrics_concurrent;
        Alcotest.test_case "disabled is a no-op" `Quick
          test_metrics_disabled_is_noop;
      ] );
  ]
