(* Tests for Dpm_sim.Fault (spec parsing, plan purity, degraded-mode
   replay semantics) and the Dpm_core.Run facade's error handling.

   The load-bearing properties: an all-zero spec replays byte-identically
   to no fault injection at all; a fixed non-zero spec + seed is
   deterministic at any domain count; and every fault class both shows up
   in the counters and costs energy/time through the power model. *)

module Fault = Dpm_sim.Fault
module Engine = Dpm_sim.Engine
module Policy = Dpm_sim.Policy
module Result = Dpm_sim.Result
module Striping = Dpm_layout.Striping
module Request = Dpm_trace.Request
module Trace = Dpm_trace.Trace
module Run = Dpm_core.Run
module Scheme = Dpm_core.Scheme
module Pool = Dpm_util.Pool

let kib = Dpm_util.Units.kib
let io = Gen.io
let busy_trace = Gen.busy_trace

(* --- spec: round-trip, validation, zero detection --- *)

let full_spec =
  Fault.make ~seed:42 ~read_error_rate:0.125 ~bad_unit_rate:0.03125
    ~bad_region_len:5 ~spin_up_failure_rate:0.75 ~max_retries:4 ~backoff:0.1
    ~remap_penalty:0.01
    ~disk_failures:[ (0, 30.0); (2, 45.5) ]
    ()

let test_spec_round_trip () =
  Alcotest.(check bool)
    "full spec round-trips" true
    (Fault.of_string (Fault.to_string full_spec) = Ok full_spec);
  Alcotest.(check bool)
    "none round-trips" true
    (Fault.of_string (Fault.to_string Fault.none) = Ok Fault.none);
  match Fault.of_string "seed=7,read=0.01,fail=0@30;2@45" with
  | Error m -> Alcotest.fail m
  | Ok s ->
      Alcotest.(check int) "seed parsed" 7 s.Fault.seed;
      Alcotest.(check (float 0.0)) "rate parsed" 0.01 s.Fault.read_error_rate;
      Alcotest.(check bool)
        "failures parsed" true
        (s.Fault.disk_failures = [ (0, 30.0); (2, 45.0) ])

let test_spec_validate () =
  let bad s = Alcotest.(check bool) "rejected" true (Stdlib.Result.is_error s) in
  bad (Fault.validate (Fault.make ~read_error_rate:1.5 ()));
  bad (Fault.validate (Fault.make ~spin_up_failure_rate:(-0.1) ()));
  bad (Fault.validate (Fault.make ~bad_region_len:0 ()));
  bad (Fault.validate (Fault.make ~backoff:(-1.0) ()));
  bad (Fault.validate (Fault.make ~disk_failures:[ (-1, 5.0) ] ()));
  bad (Fault.of_string "read=nope");
  bad (Fault.of_string "frobnicate=1");
  bad (Fault.of_string "fail=0");
  Alcotest.(check bool)
    "valid spec accepted" true
    (Fault.validate full_spec = Ok full_spec)

let test_is_zero () =
  Alcotest.(check bool) "none is zero" true (Fault.is_zero Fault.none);
  Alcotest.(check bool)
    "seed alone is still zero" true
    (Fault.is_zero (Fault.make ~seed:99 ()));
  Alcotest.(check bool)
    "read rate breaks zero" false
    (Fault.is_zero (Fault.make ~read_error_rate:0.1 ()));
  Alcotest.(check bool)
    "disk failure breaks zero" false
    (Fault.is_zero (Fault.make ~disk_failures:[ (0, 1.0) ] ()))

let test_backoff () =
  let s = Fault.make ~backoff:0.05 () in
  Alcotest.(check (float 1e-12))
    "attempt 0" 0.05
    (Fault.backoff_delay s ~attempt:0);
  Alcotest.(check (float 1e-12))
    "attempt 2 doubles twice" 0.2
    (Fault.backoff_delay s ~attempt:2)

(* qcheck: the printed form is a faithful canonical encoding for any
   in-range spec. *)
let qcheck_round_trip =
  QCheck2.Test.make ~count:200 ~name:"fault: to_string/of_string round-trip"
    QCheck2.Gen.(
      let rate = float_range 0.0 1.0 in
      let* seed = int_range 0 10_000 in
      let* read = rate in
      let* badr = float_range 0.0 0.5 in
      let* len = int_range 1 32 in
      let* spin = rate in
      let* retries = int_range 0 6 in
      let* backoff = float_range 0.0 1.0 in
      let* fails = list_size (int_range 0 3) (pair (int_range 0 7) rate) in
      return
        (Fault.make ~seed ~read_error_rate:read ~bad_unit_rate:badr
           ~bad_region_len:len ~spin_up_failure_rate:spin ~max_retries:retries
           ~backoff ~disk_failures:fails ()))
    (fun s -> Fault.of_string (Fault.to_string s) = Ok s)

(* --- plan: purity and geometry --- *)

let test_plan_purity () =
  let spec = Fault.make ~seed:9 ~bad_unit_rate:0.01 ~bad_region_len:4 () in
  let mk () = Fault.plan spec ~ndisks:8 ~nblocks:10_000 in
  let p1 = mk () and p2 = mk () in
  Alcotest.(check bool)
    "same regions" true
    (Fault.bad_regions p1 = Fault.bad_regions p2);
  Alcotest.(check bool)
    "same failure times" true
    (List.init 8 (fun d -> Fault.fail_time p1 ~disk:d)
    = List.init 8 (fun d -> Fault.fail_time p2 ~disk:d));
  Alcotest.(check bool)
    "coverage near target" true
    (Fault.bad_unit_count p1 > 0 && Fault.bad_unit_count p1 < 400);
  (* Membership agrees with the interval list. *)
  let regions = Fault.bad_regions p1 in
  List.iter
    (fun (lo, hi) ->
      Alcotest.(check bool) "lo in" true (Fault.bad_block p1 ~block:lo);
      Alcotest.(check bool) "hi in" true (Fault.bad_block p1 ~block:hi))
    regions;
  Alcotest.(check bool)
    "outside all regions" false
    (Fault.bad_block p1
       ~block:(1 + List.fold_left (fun m (_, hi) -> max m hi) 0 regions));
  (* Expansion is a pure function: identical whichever domain computes
     it. *)
  let spread_on domains =
    Pool.map ~domains
      (fun () -> Fault.bad_regions (mk ()))
      [ (); (); (); () ]
  in
  Alcotest.(check bool)
    "pure across domains" true
    (spread_on 1 = spread_on 4)

let test_bad_disk_spread () =
  let spec = Fault.make ~seed:9 ~bad_unit_rate:0.02 ~bad_region_len:6 () in
  let plan = Fault.plan spec ~ndisks:8 ~nblocks:5_000 in
  let spread = Fault.bad_disk_spread plan ~striping:Striping.default in
  Alcotest.(check int)
    "spread accounts for every bad unit"
    (Fault.bad_unit_count plan)
    (Array.fold_left ( + ) 0 spread)

(* --- engine: zero spec is byte-identical to no spec --- *)

let test_zero_spec_identical () =
  let trace = busy_trace ~n:200 ~ndisks:2 () in
  let plain = Engine.run Policy.base trace in
  let with_none = Engine.run ~faults:Fault.none Policy.base trace in
  let with_seeded_zero =
    Engine.run ~faults:(Fault.make ~seed:123 ()) Policy.base trace
  in
  Alcotest.(check bool) "none: identical result" true (plain = with_none);
  Alcotest.(check bool)
    "seeded zero: identical result" true
    (plain = with_seeded_zero);
  Alcotest.(check bool)
    "no fault events" true
    (Result.fault_events plain.Result.faults = 0)

(* --- engine: each fault class costs and counts --- *)

let test_read_retries () =
  let trace = busy_trace ~n:300 ~ndisks:2 () in
  let spec = Fault.make ~seed:3 ~read_error_rate:0.3 () in
  let clean = Engine.run Policy.base trace in
  let r = Engine.run ~faults:spec Policy.base trace in
  let f = r.Result.faults in
  Alcotest.(check bool) "retries happened" true (f.Result.read_retries > 0);
  Alcotest.(check bool) "retries delayed" true (f.Result.retry_delay > 0.0);
  Alcotest.(check bool)
    "retries cost energy" true
    (r.Result.energy > clean.Result.energy);
  Alcotest.(check bool)
    "no other fault class fired" true
    (f.Result.remaps = 0 && f.Result.redirects = 0
    && f.Result.failed_disks = 0);
  let r' = Engine.run ~faults:spec Policy.base trace in
  Alcotest.(check bool) "deterministic" true (r = r')

let test_bad_sector_remaps () =
  let trace = busy_trace ~n:300 ~ndisks:2 () in
  let spec = Fault.make ~seed:11 ~bad_unit_rate:0.2 ~bad_region_len:4 () in
  let clean = Engine.run Policy.base trace in
  let r = Engine.run ~faults:spec Policy.base trace in
  Alcotest.(check bool)
    "remaps happened" true
    (r.Result.faults.Result.remaps > 0);
  Alcotest.(check bool)
    "remaps cost energy" true
    (r.Result.energy > clean.Result.energy);
  Alcotest.(check bool)
    "remaps cost time" true
    (r.Result.exec_time >= clean.Result.exec_time)

let test_spin_up_recovery () =
  (* Spin disk 0 down, let the transition finish during a long think,
     then hit it: with a certain spin-up failure and 2 retries the disk
     recovers after exactly two aborted attempts. *)
  let events =
    [
      io ~think:0.0 ~disk:0 ();
      Request.Pm { think = 0.0; directive = Request.Spin_down 0 };
      io ~think:30.0 ~disk:0 ~block:1 ();
    ]
  in
  let trace = Trace.make ~program:"fault-t" ~ndisks:1 events in
  let spec =
    Fault.make ~seed:1 ~spin_up_failure_rate:1.0 ~max_retries:2 ()
  in
  let clean = Engine.run Policy.cm_tpm trace in
  let r = Engine.run ~faults:spec Policy.cm_tpm trace in
  Alcotest.(check int)
    "both bounded attempts aborted" 2
    r.Result.faults.Result.spin_up_recoveries;
  Alcotest.(check bool)
    "recovery costs time" true
    (r.Result.exec_time > clean.Result.exec_time);
  Alcotest.(check bool)
    "recovery costs energy" true
    (r.Result.energy > clean.Result.energy)

let test_disk_failure_redirect () =
  let trace = busy_trace ~think:0.5 ~n:100 ~ndisks:2 () in
  let spec = Fault.make ~disk_failures:[ (0, 10.0) ] () in
  let clean = Engine.run Policy.base trace in
  let r = Engine.run ~faults:spec Policy.base trace in
  let f = r.Result.faults in
  Alcotest.(check int) "one disk lost" 1 f.Result.failed_disks;
  Alcotest.(check bool) "load redirected" true (f.Result.redirects > 0);
  Alcotest.(check bool)
    "dead disk stops drawing power" true
    (r.Result.disks.(0).Result.energy < clean.Result.disks.(0).Result.energy);
  Alcotest.(check bool)
    "survivor picks up the load" true
    (r.Result.disks.(1).Result.requests
    > clean.Result.disks.(1).Result.requests);
  let r' = Engine.run ~faults:spec Policy.base trace in
  Alcotest.(check bool) "deterministic" true (r = r')

let test_run_many_degraded () =
  let t1 = busy_trace ~think:0.2 ~n:60 ~ndisks:2 () in
  let t2 = busy_trace ~think:0.3 ~n:40 ~ndisks:2 () in
  let spec =
    Fault.make ~seed:5 ~read_error_rate:0.05 ~disk_failures:[ (0, 3.0) ] ()
  in
  let r = Engine.run_many ~faults:spec Policy.base [ t1; t2 ] in
  Alcotest.(check bool)
    "shared degraded disk redirects" true
    (r.Result.faults.Result.redirects > 0);
  let r' = Engine.run_many ~faults:spec Policy.base [ t1; t2 ] in
  Alcotest.(check bool) "deterministic" true (r = r')

(* Fixed non-zero spec + seed: bit-identical whichever domain replays
   it (share-nothing state). *)
let test_domain_determinism () =
  let trace = busy_trace ~n:200 ~ndisks:4 () in
  let spec =
    Fault.make ~seed:7 ~read_error_rate:0.1 ~bad_unit_rate:0.05
      ~spin_up_failure_rate:0.5
      ~disk_failures:[ (2, 5.0) ]
      ()
  in
  let replay_on domains =
    Pool.map ~domains
      (fun () -> Engine.run ~faults:spec Policy.base trace)
      [ (); (); (); () ]
  in
  let one = replay_on 1 and four = replay_on 4 in
  Alcotest.(check bool) "1 vs 4 domains identical" true (one = four);
  match one with
  | r :: rest ->
      Alcotest.(check bool)
        "all replays identical" true
        (List.for_all (fun r' -> r' = r) rest);
      Alcotest.(check bool)
        "faults actually fired" true
        (Result.fault_events r.Result.faults > 0)
  | [] -> Alcotest.fail "Pool.map dropped results"

(* Degraded-mode replay stays deterministic — and its event log legal —
   whatever fleet, scheduling discipline and queue depth serve it. *)
let qcheck_degraded_any_config =
  QCheck2.Test.make ~count:15
    ~name:"fault: deterministic + legal log (fleets × disciplines × depths)"
    Gen.gen_config ~print:Gen.config_print
    (fun config ->
      let trace = busy_trace ~n:150 ~ndisks:4 () in
      let run () =
        let sink = Dpm_sim.Timeline.sink () in
        let r =
          Engine.run ~config ~faults:Gen.fault_spec ~timeline:sink Policy.base
            trace
        in
        (r, Dpm_sim.Timeline.contents sink)
      in
      let r1, tl = run () in
      let r2, _ = run () in
      if r1 <> r2 then QCheck2.Test.fail_report "replay not deterministic"
      else if Result.fault_events r1.Result.faults = 0 then
        QCheck2.Test.fail_report "faults never fired"
      else
        match Dpm_sim.Timeline.check tl with
        | Ok () -> true
        | Error msgs ->
            QCheck2.Test.fail_reportf "illegal log: %s"
              (String.concat "; " msgs))

(* --- timeline signatures: each fault class leaves its events --- *)

module Timeline = Dpm_sim.Timeline

let run_logged ?faults policy trace =
  let sink = Timeline.sink () in
  let r = Engine.run ?faults ~timeline:sink policy trace in
  (r, Timeline.contents sink)

let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs b)

(* A faulted log must still be a legal, energy-exact execution. *)
let assert_faulted_log_sound label (r : Result.t) tl =
  let e = Timeline.reintegrate tl in
  Alcotest.(check bool)
    (label ^ ": faulted log reintegrates")
    true
    (close e.Timeline.total r.Result.energy);
  match Timeline.check tl with
  | Ok () -> ()
  | Error es -> Alcotest.fail (label ^ ": " ^ String.concat "; " es)

let count_events tl pred =
  List.length (List.filter pred (Timeline.events tl))

let test_timeline_retry_signature () =
  let trace = busy_trace ~n:300 ~ndisks:2 () in
  let spec = Fault.make ~seed:3 ~read_error_rate:0.3 () in
  let r, tl = run_logged ~faults:spec Policy.base trace in
  assert_faulted_log_sound "retries" r tl;
  Alcotest.(check int) "one Retry mark per counted retry"
    r.Result.faults.Result.read_retries
    (count_events tl (function
      | Timeline.Mark { mark = Timeline.Retry _; _ } -> true
      | _ -> false));
  let sums = Timeline.disk_summaries tl in
  Alcotest.(check int) "summaries agree" r.Result.faults.Result.read_retries
    (Array.fold_left (fun acc s -> acc + s.Timeline.retries) 0 sums)

let test_timeline_remap_signature () =
  let trace = busy_trace ~n:300 ~ndisks:2 () in
  let spec = Fault.make ~seed:11 ~bad_unit_rate:0.2 ~bad_region_len:4 () in
  let r, tl = run_logged ~faults:spec Policy.base trace in
  assert_faulted_log_sound "remaps" r tl;
  let remaps = r.Result.faults.Result.remaps in
  Alcotest.(check bool) "remaps fired" true (remaps > 0);
  Alcotest.(check int) "one Remap mark per remap" remaps
    (count_events tl (function
      | Timeline.Mark { mark = Timeline.Remap _; _ } -> true
      | _ -> false));
  Alcotest.(check int) "one occupancy interval per remap" remaps
    (count_events tl (function Timeline.Occupy _ -> true | _ -> false))

let test_timeline_stuck_spin_up_signature () =
  (* The certain-failure recovery scenario from test_spin_up_recovery:
     exactly two aborted attempts before the bounded retry succeeds. *)
  let events =
    [
      io ~think:0.0 ~disk:0 ();
      Request.Pm { think = 0.0; directive = Request.Spin_down 0 };
      io ~think:30.0 ~disk:0 ~block:1 ();
    ]
  in
  let trace = Trace.make ~program:"fault-t" ~ndisks:1 events in
  let spec =
    Fault.make ~seed:1 ~spin_up_failure_rate:1.0 ~max_retries:2 ()
  in
  let r, tl = run_logged ~faults:spec Policy.cm_tpm trace in
  assert_faulted_log_sound "stuck spin-up" r tl;
  let aborts =
    List.filter_map
      (function
        | Timeline.Aborted { fraction; t0; t1; _ } -> Some (fraction, t1 -. t0)
        | _ -> None)
      (Timeline.events tl)
  in
  Alcotest.(check int) "one Aborted event per recovery"
    r.Result.faults.Result.spin_up_recoveries (List.length aborts);
  List.iter
    (fun (fraction, dt) ->
      Alcotest.(check bool) "fraction in (0, 1]" true
        (fraction > 0.0 && fraction <= 1.0);
      Alcotest.(check bool) "burns wall time" true (dt > 0.0))
    aborts;
  let sums = Timeline.disk_summaries tl in
  Alcotest.(check int) "summaries count the aborts" (List.length aborts)
    sums.(0).Timeline.aborted

let test_timeline_disk_failure_signature () =
  let trace = busy_trace ~think:0.5 ~n:100 ~ndisks:2 () in
  let spec = Fault.make ~disk_failures:[ (0, 10.0) ] () in
  let r, tl = run_logged ~faults:spec Policy.base trace in
  assert_faulted_log_sound "disk failure" r tl;
  let sums = Timeline.disk_summaries tl in
  (match sums.(0).Timeline.killed_at with
  | None -> Alcotest.fail "disk 0 has no Killed mark"
  | Some k ->
      Alcotest.(check bool) "killed at/after the scheduled time" true
        (k >= 10.0));
  Alcotest.(check bool) "survivor has no Killed mark" true
    (sums.(1).Timeline.killed_at = None);
  Alcotest.(check int) "one Redirect mark per redirect"
    r.Result.faults.Result.redirects
    (count_events tl (function
      | Timeline.Mark { mark = Timeline.Redirect _; _ } -> true
      | _ -> false));
  (* Redirect marks land on the surviving disk and name the dead one. *)
  List.iter
    (fun ev ->
      match ev with
      | Timeline.Mark { disk; mark = Timeline.Redirect orig; _ } ->
          Alcotest.(check int) "recorded on the survivor" 1 disk;
          Alcotest.(check int) "names the dead disk" 0 orig
      | _ -> ())
    (Timeline.events tl)

(* --- the Run facade --- *)

let test_run_errors () =
  let check_err label expected spec =
    match Run.exec_all spec with
    | Ok _ -> Alcotest.fail (label ^ ": expected an error")
    | Error e ->
        Alcotest.(check bool) label true (expected e);
        Alcotest.(check bool)
          (label ^ " has message") true
          (String.length (Run.error_message e) > 0)
  in
  check_err "unknown benchmark"
    (function Run.Unknown_benchmark "nosuch" -> true | _ -> false)
    (Run.spec (Run.Benchmark "nosuch"));
  check_err "unknown scheme"
    (function Run.Unknown_scheme "NOSUCH" -> true | _ -> false)
    (Run.spec ~scheme_names:[ "Base"; "NOSUCH" ] (Run.Benchmark "galgel"));
  check_err "invalid faults"
    (function Run.Invalid_faults _ -> true | _ -> false)
    (Run.spec
       ~faults:(Fault.make ~read_error_rate:2.0 ())
       (Run.Benchmark "galgel"))

let test_run_exec () =
  let exec faults =
    match
      Run.exec (Run.spec ~scheme_names:[ "base" ] ?faults (Run.Benchmark "galgel"))
    with
    | Ok r -> r
    | Error e -> Alcotest.fail (Run.error_message e)
  in
  let plain = exec None in
  Alcotest.(check bool) "ran Base" true (String.length plain.Result.scheme > 0);
  Alcotest.(check bool) "positive energy" true (plain.Result.energy > 0.0);
  (* An explicit all-zero fault spec changes nothing end-to-end. *)
  let zero = exec (Some (Fault.make ~seed:99 ())) in
  Alcotest.(check bool) "zero spec identical end-to-end" true (plain = zero)

let suite =
  [
    ( "fault",
      [
        Alcotest.test_case "spec round-trip" `Quick test_spec_round_trip;
        Alcotest.test_case "spec validation" `Quick test_spec_validate;
        Alcotest.test_case "is_zero" `Quick test_is_zero;
        Alcotest.test_case "backoff" `Quick test_backoff;
        QCheck_alcotest.to_alcotest qcheck_round_trip;
        Alcotest.test_case "plan purity" `Quick test_plan_purity;
        Alcotest.test_case "bad-disk spread" `Quick test_bad_disk_spread;
        Alcotest.test_case "zero spec identical" `Quick
          test_zero_spec_identical;
        Alcotest.test_case "read retries" `Quick test_read_retries;
        Alcotest.test_case "bad-sector remaps" `Quick test_bad_sector_remaps;
        Alcotest.test_case "spin-up recovery" `Quick test_spin_up_recovery;
        Alcotest.test_case "disk failure redirect" `Quick
          test_disk_failure_redirect;
        Alcotest.test_case "run_many degraded" `Quick test_run_many_degraded;
        Alcotest.test_case "domain determinism" `Quick test_domain_determinism;
        QCheck_alcotest.to_alcotest qcheck_degraded_any_config;
      ] );
    ( "fault.timeline",
      [
        Alcotest.test_case "retry signature" `Quick
          test_timeline_retry_signature;
        Alcotest.test_case "remap signature" `Quick
          test_timeline_remap_signature;
        Alcotest.test_case "stuck spin-up signature" `Quick
          test_timeline_stuck_spin_up_signature;
        Alcotest.test_case "disk failure signature" `Quick
          test_timeline_disk_failure_signature;
      ] );
    ( "run-facade",
      [
        Alcotest.test_case "typed errors" `Quick test_run_errors;
        Alcotest.test_case "exec + zero faults end-to-end" `Slow test_run_exec;
      ] );
  ]
