(* Tests for Dpm_layout: striping arithmetic, plans, region queries. *)

module Striping = Dpm_layout.Striping
module Plan = Dpm_layout.Plan
module Array_decl = Dpm_ir.Array_decl
module Parser = Dpm_ir.Parser

let kib = Dpm_util.Units.kib

(* --- Striping --- *)

let test_striping_defaults () =
  let s = Striping.default in
  Alcotest.(check int) "factor" 8 s.Striping.stripe_factor;
  Alcotest.(check int) "size" (kib 64) s.Striping.stripe_size;
  Alcotest.(check int) "start" 0 s.Striping.start_disk

let test_striping_round_robin () =
  let s = Striping.make ~start_disk:2 ~stripe_factor:3 ~stripe_size:(kib 64) in
  let disks = List.init 7 (fun u -> Striping.disk_of_unit s ~ndisks:8 u) in
  Alcotest.(check (list int)) "wraps over factor" [ 2; 3; 4; 2; 3; 4; 2 ] disks

let test_striping_wrap_modulo_ndisks () =
  let s = Striping.make ~start_disk:6 ~stripe_factor:4 ~stripe_size:(kib 64) in
  let disks = List.init 4 (fun u -> Striping.disk_of_unit s ~ndisks:8 u) in
  Alcotest.(check (list int)) "wraps modulo subsystem" [ 6; 7; 0; 1 ] disks

let test_striping_unit_of_offset () =
  let s = Striping.default in
  Alcotest.(check int) "first" 0 (Striping.unit_of_offset s 0);
  Alcotest.(check int) "boundary" 1 (Striping.unit_of_offset s (kib 64));
  Alcotest.(check int) "inside" 0 (Striping.unit_of_offset s (kib 64 - 1))

let test_striping_units_in_file () =
  let s = Striping.default in
  Alcotest.(check int) "exact" 2 (Striping.units_in_file s ~file_bytes:(kib 128));
  Alcotest.(check int) "tail rounds up" 3
    (Striping.units_in_file s ~file_bytes:(kib 128 + 1));
  Alcotest.(check int) "empty" 0 (Striping.units_in_file s ~file_bytes:0)

let test_striping_region_disk_spread () =
  let s = Striping.make ~start_disk:2 ~stripe_factor:3 ~stripe_size:(kib 64) in
  let ndisks = 8 in
  let check ~lo ~hi =
    let spread = Striping.region_disk_spread s ~ndisks ~lo ~hi in
    (* Matches a brute-force walk over the units. *)
    let counts = Array.make ndisks 0 in
    for u = lo to hi do
      let d = Striping.disk_of_unit s ~ndisks u in
      counts.(d) <- counts.(d) + 1
    done;
    let expected =
      List.filter
        (fun (_, n) -> n > 0)
        (List.init ndisks (fun d -> (d, counts.(d))))
    in
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "spread [%d,%d]" lo hi)
      expected spread;
    Alcotest.(check int)
      "accounts for every unit"
      (max 0 (hi - lo + 1))
      (List.fold_left (fun acc (_, n) -> acc + n) 0 spread)
  in
  check ~lo:0 ~hi:0;
  check ~lo:0 ~hi:2;
  check ~lo:1 ~hi:13;
  check ~lo:5 ~hi:100;
  Alcotest.(check (list (pair int int)))
    "empty region" []
    (Striping.region_disk_spread s ~ndisks ~lo:4 ~hi:3)

let test_striping_disks_used () =
  let s = Striping.make ~start_disk:0 ~stripe_factor:4 ~stripe_size:(kib 64) in
  Alcotest.(check (list int)) "small file" [ 0; 1 ]
    (Striping.disks_used s ~ndisks:8 ~file_bytes:(kib 128));
  Alcotest.(check (list int)) "big file saturates factor" [ 0; 1; 2; 3 ]
    (Striping.disks_used s ~ndisks:8 ~file_bytes:(kib 1024))

let test_striping_validation () =
  Alcotest.check_raises "factor too big"
    (Invalid_argument "Striping.disk_of_unit: stripe factor exceeds disk count")
    (fun () ->
      ignore
        (Striping.disk_of_unit
           (Striping.make ~start_disk:0 ~stripe_factor:9 ~stripe_size:1)
           ~ndisks:8 0))

(* --- Plan --- *)

let program_2d () =
  Parser.program ~name:"t"
    {|
array A[4][16] : 8192
array B[32] : 8192
for i = 0 to 3 { for j = 0 to 15 { A[i][j] = B[2*i] work 1 } }
|}

let test_plan_element_offset_orders () =
  let p = program_2d () in
  let plan = Plan.uniform ~ndisks:8 p in
  Alcotest.(check int) "row major" (((1 * 16) + 2) * 8192)
    (Plan.element_offset plan "A" [ 1; 2 ]);
  let plan' = Plan.set_order plan "A" Plan.Col_major in
  Alcotest.(check int) "col major" (((2 * 4) + 1) * 8192)
    (Plan.element_offset plan' "A" [ 1; 2 ])

let test_plan_unit_mapping () =
  let p = program_2d () in
  let plan = Plan.uniform ~ndisks:8 p in
  (* 8 KB elements, 64 KB units: 8 elements per unit. *)
  Alcotest.(check int) "unit of element 0" 0 (Plan.element_unit plan "A" [ 0; 0 ]);
  Alcotest.(check int) "unit of element 8" 1 (Plan.element_unit plan "A" [ 0; 8 ]);
  Alcotest.(check int) "unit count A" 8 (Plan.unit_count plan "A");
  Alcotest.(check int) "unit count B" 4 (Plan.unit_count plan "B")

let test_plan_global_blocks_disjoint () =
  let p = program_2d () in
  let plan = Plan.uniform ~ndisks:8 p in
  let a_blocks = List.init 8 (Plan.unit_global_block plan "A") in
  let b_blocks = List.init 4 (Plan.unit_global_block plan "B") in
  let all = a_blocks @ b_blocks in
  Alcotest.(check int) "disjoint global blocks" (List.length all)
    (List.length (List.sort_uniq compare all))

let test_plan_region_disks_whole_array () =
  let p = program_2d () in
  let plan = Plan.uniform ~ndisks:8 p in
  Alcotest.(check (list int)) "whole array hits all disks"
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (Plan.region_disks plan "A" [ (0, 3); (0, 15) ])

let test_plan_region_disks_single_unit () =
  let p = program_2d () in
  let plan = Plan.uniform ~ndisks:8 p in
  Alcotest.(check (list int)) "one unit one disk" [ 1 ]
    (Plan.region_disks plan "A" [ (0, 0); (8, 15) ])

let test_plan_region_units () =
  let p = program_2d () in
  let plan = Plan.uniform ~ndisks:8 p in
  Alcotest.(check (list (pair int int))) "row 1 units" [ (2, 3) ]
    (Plan.region_units plan "A" [ (1, 1); (0, 15) ]);
  Alcotest.(check (list (pair int int))) "whole array one run" [ (0, 7) ]
    (Plan.region_units plan "A" [ (0, 3); (0, 15) ])

let test_plan_region_clamps () =
  let p = program_2d () in
  let plan = Plan.uniform ~ndisks:8 p in
  Alcotest.(check (list (pair int int))) "clamped" [ (0, 7) ]
    (Plan.region_units plan "A" [ (-5, 99); (-1, 99) ]);
  Alcotest.(check (list (pair int int))) "empty region" []
    (Plan.region_units plan "A" [ (2, 1); (0, 15) ])

(* qcheck: region_units agrees with brute-force element enumeration *)

let qcheck_region_units_vs_bruteforce =
  QCheck2.Test.make ~count:300
    ~name:"plan: region_units = brute-force element units"
    QCheck2.Gen.(
      quad (int_range 0 3) (int_range 0 3) (int_range 0 15) (int_range 0 15))
    (fun (r0, dr, c0, dc) ->
      let p = program_2d () in
      let plan = Plan.uniform ~ndisks:8 p in
      let r1 = min 3 (r0 + dr) and c1 = min 15 (c0 + dc) in
      let expected = Hashtbl.create 16 in
      for i = r0 to r1 do
        for j = c0 to c1 do
          Hashtbl.replace expected (Plan.element_unit plan "A" [ i; j ]) ()
        done
      done;
      let got = Hashtbl.create 16 in
      List.iter
        (fun (u0, u1) ->
          for u = u0 to u1 do
            Hashtbl.replace got u ()
          done)
        (Plan.region_units plan "A" [ (r0, r1); (c0, c1) ]);
      (* region_units may overapproximate (whole stripe-unit granularity)
         but must cover every touched unit. *)
      Hashtbl.fold (fun u () acc -> acc && Hashtbl.mem got u) expected true)

let qcheck_unit_disk_consistent =
  QCheck2.Test.make ~count:300
    ~name:"plan: element unit/disk consistent with striping arithmetic"
    QCheck2.Gen.(pair (int_range 0 3) (int_range 0 15))
    (fun (i, j) ->
      let p = program_2d () in
      let plan = Plan.uniform ~ndisks:8 p in
      let u = Plan.element_unit plan "A" [ i; j ] in
      let entry = Plan.entry plan "A" in
      Plan.unit_disk plan "A" u
      = Striping.disk_of_unit entry.Plan.striping ~ndisks:8 u)

let qcheck_region_units_colmajor =
  QCheck2.Test.make ~count:300
    ~name:"plan: col-major region_units covers brute force"
    QCheck2.Gen.(
      quad (int_range 0 3) (int_range 0 3) (int_range 0 15) (int_range 0 15))
    (fun (r0, dr, c0, dc) ->
      let p = program_2d () in
      let plan = Plan.set_order (Plan.uniform ~ndisks:8 p) "A" Plan.Col_major in
      let r1 = min 3 (r0 + dr) and c1 = min 15 (c0 + dc) in
      let got = Hashtbl.create 16 in
      List.iter
        (fun (u0, u1) ->
          for u = u0 to u1 do
            Hashtbl.replace got u ()
          done)
        (Plan.region_units plan "A" [ (r0, r1); (c0, c1) ]);
      let ok = ref true in
      for i = r0 to r1 do
        for j = c0 to c1 do
          if not (Hashtbl.mem got (Plan.element_unit plan "A" [ i; j ])) then
            ok := false
        done
      done;
      !ok)

let test_plan_colmajor_unit_layout () =
  let p = program_2d () in
  let plan = Plan.set_order (Plan.uniform ~ndisks:8 p) "A" Plan.Col_major in
  (* Column-major: consecutive rows of one column are contiguous.  A is
     4x16 with 8KB elements: one column (4 elements, 32KB) is half a
     64KB unit, so columns 0 and 1 share unit 0. *)
  Alcotest.(check int) "col 0 top" 0 (Plan.element_unit plan "A" [ 0; 0 ]);
  Alcotest.(check int) "col 0 bottom" 0 (Plan.element_unit plan "A" [ 3; 0 ]);
  Alcotest.(check int) "col 1" 0 (Plan.element_unit plan "A" [ 0; 1 ]);
  Alcotest.(check int) "col 2" 1 (Plan.element_unit plan "A" [ 0; 2 ])

let test_plan_duplicate_rejected () =
  let decl = Array_decl.make ~name:"A" ~dims:[ 4 ] ~elem_size:8 in
  let entry =
    { Plan.decl; striping = Striping.default; order = Plan.Row_major }
  in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Plan.make: duplicate array A") (fun () ->
      ignore (Plan.make ~ndisks:8 [ entry; entry ]))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "layout.striping",
      [
        Alcotest.test_case "defaults" `Quick test_striping_defaults;
        Alcotest.test_case "round robin" `Quick test_striping_round_robin;
        Alcotest.test_case "wrap modulo" `Quick test_striping_wrap_modulo_ndisks;
        Alcotest.test_case "unit of offset" `Quick test_striping_unit_of_offset;
        Alcotest.test_case "units in file" `Quick test_striping_units_in_file;
        Alcotest.test_case "region disk spread" `Quick
          test_striping_region_disk_spread;
        Alcotest.test_case "disks used" `Quick test_striping_disks_used;
        Alcotest.test_case "validation" `Quick test_striping_validation;
      ] );
    ( "layout.plan",
      [
        Alcotest.test_case "element offsets" `Quick test_plan_element_offset_orders;
        Alcotest.test_case "unit mapping" `Quick test_plan_unit_mapping;
        Alcotest.test_case "global blocks disjoint" `Quick
          test_plan_global_blocks_disjoint;
        Alcotest.test_case "region all disks" `Quick
          test_plan_region_disks_whole_array;
        Alcotest.test_case "region one disk" `Quick
          test_plan_region_disks_single_unit;
        Alcotest.test_case "region units" `Quick test_plan_region_units;
        Alcotest.test_case "region clamps" `Quick test_plan_region_clamps;
        Alcotest.test_case "duplicate rejected" `Quick test_plan_duplicate_rejected;
        Alcotest.test_case "col-major units" `Quick
          test_plan_colmajor_unit_layout;
        q qcheck_region_units_vs_bruteforce;
        q qcheck_region_units_colmajor;
        q qcheck_unit_disk_consistent;
      ] );
  ]
