(* Tests for Dpm_ir: expressions, declarations, loops, parsing, printing,
   cost model, enumeration, dependences. *)

module Expr = Dpm_ir.Expr
module Array_decl = Dpm_ir.Array_decl
module Reference = Dpm_ir.Reference
module Stmt = Dpm_ir.Stmt
module Loop = Dpm_ir.Loop
module Program = Dpm_ir.Program
module Parser = Dpm_ir.Parser
module Printer = Dpm_ir.Printer
module Cost = Dpm_ir.Cost
module Enumerate = Dpm_ir.Enumerate
module Depend = Dpm_ir.Depend

let env_of l x = List.assoc x l

(* --- Expr --- *)

let test_expr_eval () =
  let e = Expr.(Add (Mul (3, Var "i"), Const 2)) in
  Alcotest.(check int) "3i+2 at i=4" 14 (Expr.eval (env_of [ ("i", 4) ]) e);
  let e2 = Expr.(Div (Var "i", 4)) in
  Alcotest.(check int) "floor div" 2 (Expr.eval (env_of [ ("i", 11) ]) e2);
  Alcotest.(check int) "floor div negative" (-3)
    (Expr.eval (env_of [ ("i", -11) ]) e2)

let test_expr_eval_unbound () =
  Alcotest.check_raises "unbound"
    (Invalid_argument "Expr.eval: unbound iterator j") (fun () ->
      ignore (Expr.eval (env_of []) (Expr.Var "j")))

let test_expr_minmax () =
  let e = Expr.(Min (Var "i", Const 5)) in
  Alcotest.(check int) "min" 3 (Expr.eval (env_of [ ("i", 3) ]) e);
  Alcotest.(check int) "min clamps" 5 (Expr.eval (env_of [ ("i", 9) ]) e);
  let e2 = Expr.(Max (Var "i", Const 0)) in
  Alcotest.(check int) "max" 0 (Expr.eval (env_of [ ("i", -2) ]) e2)

let test_expr_bounds_exact_affine () =
  let e = Expr.(Sub (Mul (2, Var "i"), Var "j")) in
  let range = function "i" -> (0, 10) | "j" -> (1, 3) | _ -> raise Not_found in
  Alcotest.(check (pair int int)) "bounds" (-3, 19) (Expr.bounds range e)

let test_expr_simplify () =
  let e = Expr.(Add (Const 0, Mul (1, Var "x"))) in
  Alcotest.(check bool) "neutral elems" true (Expr.simplify e = Expr.Var "x");
  let e2 = Expr.(Mul (0, Var "x")) in
  Alcotest.(check bool) "zero mul" true (Expr.simplify e2 = Expr.Const 0)

let test_expr_subst_shift () =
  let e = Expr.(Add (Var "i", Const 1)) in
  let shifted = Expr.shift "i" 3 e in
  Alcotest.(check int) "shift" 9 (Expr.eval (env_of [ ("i", 5) ]) shifted);
  let substd = Expr.subst "i" (Expr.Const 7) e in
  Alcotest.(check int) "subst" 8 (Expr.eval (env_of []) substd)

let test_expr_vars () =
  let e = Expr.(Add (Var "j", Mul (2, Var "i"))) in
  Alcotest.(check (list string)) "vars sorted" [ "i"; "j" ] (Expr.vars e)

(* qcheck: generator for random expressions over i, j *)

let expr_gen =
  let open QCheck2.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun c -> Expr.Const c) (int_range (-20) 20);
                oneofl [ Expr.Var "i"; Expr.Var "j" ];
              ]
          else
            oneof
              [
                map (fun c -> Expr.Const c) (int_range (-20) 20);
                oneofl [ Expr.Var "i"; Expr.Var "j" ];
                map2 (fun a b -> Expr.Add (a, b)) (self (n / 2)) (self (n / 2));
                map2 (fun a b -> Expr.Sub (a, b)) (self (n / 2)) (self (n / 2));
                map2
                  (fun k a -> Expr.Mul (k, a))
                  (int_range (-4) 4) (self (n - 1));
                map2 (fun a b -> Expr.Min (a, b)) (self (n / 2)) (self (n / 2));
                map2 (fun a b -> Expr.Max (a, b)) (self (n / 2)) (self (n / 2));
                map (fun a -> Expr.Div (a, 3)) (self (n - 1));
              ])
        (min n 6))

let qcheck_bounds_sound =
  QCheck2.Test.make ~count:500 ~name:"expr: interval bounds enclose eval"
    QCheck2.Gen.(triple expr_gen (int_range 0 9) (int_range 0 9))
    (fun (e, i, j) ->
      let range = function
        | "i" -> (0, 9)
        | "j" -> (0, 9)
        | _ -> raise Not_found
      in
      let lo, hi = Expr.bounds range e in
      let v = Expr.eval (env_of [ ("i", i); ("j", j) ]) e in
      lo <= v && v <= hi)

let qcheck_simplify_preserves_eval =
  QCheck2.Test.make ~count:500 ~name:"expr: simplify preserves evaluation"
    QCheck2.Gen.(triple expr_gen (int_range 0 9) (int_range 0 9))
    (fun (e, i, j) ->
      let env = env_of [ ("i", i); ("j", j) ] in
      Expr.eval env e = Expr.eval env (Expr.simplify e))

let qcheck_printer_parser_roundtrip_expr =
  QCheck2.Test.make ~count:500 ~name:"expr: print/parse round-trip"
    QCheck2.Gen.(triple expr_gen (int_range 0 9) (int_range 0 9))
    (fun (e, i, j) ->
      let env = env_of [ ("i", i); ("j", j) ] in
      let reparsed = Parser.expr (Printer.expr e) in
      Expr.eval env reparsed = Expr.eval env e)

(* --- Lexer --- *)

let test_lexer_comments_and_keywords () =
  let toks = Dpm_ir.Lexer.tokenize "# a comment\nfor i # tail\n= 0" in
  Alcotest.(check int) "comment stripped" 5 (List.length toks);
  (* set_RPM is accepted as an alias of set_rpm. *)
  match Dpm_ir.Lexer.tokenize "set_RPM" with
  | [ (Dpm_ir.Lexer.KW_SET_RPM, _); (Dpm_ir.Lexer.EOF, _) ] -> ()
  | _ -> Alcotest.fail "set_RPM alias"

let test_lexer_error_carries_line () =
  try
    ignore (Dpm_ir.Lexer.tokenize "for i\n= ?");
    Alcotest.fail "expected lexer error"
  with Dpm_ir.Lexer.Error { line; _ } -> Alcotest.(check int) "line" 2 line

let test_lexer_describe_total () =
  (* Every token constructor renders. *)
  List.iter
    (fun t ->
      Alcotest.(check bool) "non-empty" true
        (String.length (Dpm_ir.Lexer.describe t) > 0))
    Dpm_ir.Lexer.
      [
        IDENT "x"; INT 3; KW_ARRAY; KW_FOR; KW_TO; KW_STEP; KW_WORK; KW_USE;
        KW_SPIN_DOWN; KW_SPIN_UP; KW_SET_RPM; KW_MIN; KW_MAX; LBRACKET;
        RBRACKET; LBRACE; RBRACE; LPAREN; RPAREN; EQUALS; PLUS; MINUS; STAR;
        SLASH; COMMA; COLON; SEMI; EOF;
      ]

(* --- Printer corner cases --- *)

let test_printer_step_and_calls () =
  let p =
    Parser.program ~name:"t"
      {|
array A[64] : 8
for i = 0 to 63 step 4 { spin_down(2) use A[i] spin_up(2) }
|}
  in
  let printed = Printer.program p in
  let p2 = Parser.program ~name:"t" (printed) in
  Alcotest.(check string) "round trip with step and calls" printed
    (Printer.program p2);
  Alcotest.(check int) "16 iterations"
    (Enumerate.count_stmt_executions p)
    (Enumerate.count_stmt_executions p2)

let test_printer_negative_bounds () =
  let src = {|
array A[8] : 8
for i = 0 to 3 { use A[i + 2 - 1] }
|} in
  let p = Parser.program ~name:"t" src in
  let p2 = Parser.program ~name:"t" (Printer.program p) in
  Alcotest.(check int) "same executions"
    (Enumerate.count_stmt_executions p)
    (Enumerate.count_stmt_executions p2)

(* --- Array_decl --- *)

let test_decl_basics () =
  let a = Array_decl.make ~name:"A" ~dims:[ 4; 8 ] ~elem_size:8192 in
  Alcotest.(check int) "rank" 2 (Array_decl.rank a);
  Alcotest.(check int) "elements" 32 (Array_decl.elements a);
  Alcotest.(check int) "bytes" (32 * 8192) (Array_decl.size_bytes a)

let test_decl_linearize () =
  let a = Array_decl.make ~name:"A" ~dims:[ 4; 8 ] ~elem_size:1 in
  Alcotest.(check int) "row major" ((2 * 8) + 5) (Array_decl.linearize a [ 2; 5 ]);
  Alcotest.(check int) "col major" ((5 * 4) + 2)
    (Array_decl.linearize_colmajor a [ 2; 5 ])

let test_decl_validation () =
  Alcotest.check_raises "bad extent"
    (Invalid_argument "Array_decl.make: non-positive extent") (fun () ->
      ignore (Array_decl.make ~name:"A" ~dims:[ 0 ] ~elem_size:1));
  let a = Array_decl.make ~name:"A" ~dims:[ 4 ] ~elem_size:1 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Array_decl: index 4 out of range [0,4) for A")
    (fun () -> ignore (Array_decl.linearize a [ 4 ]))

let qcheck_linearize_row_major =
  QCheck2.Test.make ~count:300 ~name:"array: row-major linearize formula"
    QCheck2.Gen.(
      quad (int_range 1 6) (int_range 1 6) (int_range 0 5) (int_range 0 5))
    (fun (d0, d1, i0, i1) ->
      QCheck2.assume (i0 < d0 && i1 < d1);
      let a = Array_decl.make ~name:"A" ~dims:[ d0; d1 ] ~elem_size:1 in
      let l = Array_decl.linearize a [ i0; i1 ] in
      l = (i0 * d1) + i1 && l < Array_decl.elements a)

(* --- Loop / Program --- *)

let small_program () =
  Parser.program ~name:"t"
    {|
array A[4][8] : 64
array B[4][8] : 64
for i = 0 to 3 {
  for j = 0 to 7 { A[i][j] = B[i][j] work 5 }
}
for i = 0 to 3 { use A[i][0] work 2 }
|}

let test_loop_accessors () =
  let p = small_program () in
  match p.Program.body with
  | [ Loop.For l1; Loop.For l2 ] ->
      Alcotest.(check int) "depth" 2 (Loop.depth l1);
      Alcotest.(check int) "stmts" 1 (List.length (Loop.stmts l1));
      Alcotest.(check (list string)) "arrays" [ "A"; "B" ] (Loop.arrays l1);
      Alcotest.(check (list string)) "iterators" [ "i"; "j" ]
        (Loop.iterators l1);
      Alcotest.(check int) "trip" 4
        (Loop.trip_count (fun _ -> raise Not_found) l2)
  | _ -> Alcotest.fail "expected two nests"

let test_program_validation () =
  let bad () =
    ignore
      (Parser.program ~name:"t"
         {|
array A[4] : 8
for i = 0 to 3 { use B[i] }
|})
  in
  Alcotest.check_raises "undeclared array"
    (Invalid_argument "Program: undeclared array B") bad;
  let bad_rank () =
    ignore
      (Parser.program ~name:"t"
         {|
array A[4] : 8
for i = 0 to 3 { use A[i][i] }
|})
  in
  Alcotest.check_raises "rank" (Invalid_argument "Program: rank mismatch for A")
    bad_rank;
  let unbound () =
    ignore
      (Parser.program ~name:"t"
         {|
array A[9] : 8
for i = 0 to 3 { use A[k] }
|})
  in
  Alcotest.check_raises "unbound"
    (Invalid_argument "Program: unbound iterator k") unbound

let test_parser_errors () =
  (try
     ignore (Parser.program ~name:"t" "for = 0 to");
     Alcotest.fail "expected parse error"
   with Parser.Error _ -> ());
  try
    ignore
      (Parser.program ~name:"t"
         "array A[2] : 8\nfor i = 0 to 1 { use A[i*i] }");
    Alcotest.fail "expected non-affine error"
  with Parser.Error { message; _ } ->
    Alcotest.(check bool) "non-affine product" true (String.length message > 0)

let test_parser_pm_calls () =
  let p =
    Parser.program ~name:"t"
      {|
array A[4] : 8
spin_down(1)
for i = 0 to 3 { set_rpm(3, 0) use A[i] }
spin_up(1)
|}
  in
  Alcotest.(check int) "items" 3 (Program.item_count p);
  match p.Program.body with
  | [ Loop.Call (Loop.Spin_down 1); Loop.For l; Loop.Call (Loop.Spin_up 1) ] ->
      Alcotest.(check int) "inner calls" 1 (List.length (Loop.calls l))
  | _ -> Alcotest.fail "unexpected shape"

let test_printer_roundtrip_program () =
  let p = small_program () in
  let p2 = Parser.program ~name:"t" (Printer.program p) in
  Alcotest.(check int) "same dynamic statements"
    (Enumerate.count_stmt_executions p)
    (Enumerate.count_stmt_executions p2);
  Alcotest.(check string) "stable print" (Printer.program p) (Printer.program p2)

(* --- Cost --- *)

let test_cost_closed_form_matches_enumeration () =
  let p = small_program () in
  let model = Cost.default in
  let total = ref 0 in
  let cb =
    {
      Enumerate.nothing with
      Enumerate.on_stmt =
        (fun ~nest:_ s _ -> total := !total + Cost.stmt_cycles model s);
      on_enter =
        (fun ~nest:_ ~depth:_ ~var:_ ~value:_ ->
          total := !total + model.loop_overhead);
    }
  in
  Enumerate.run cb p;
  let closed =
    List.fold_left
      (fun acc node ->
        match node with
        | Loop.For l -> acc + Cost.nest_cycles model l
        | Loop.Stmt s -> acc + Cost.stmt_cycles model s
        | Loop.Call _ -> acc)
      0 p.Program.body
  in
  Alcotest.(check int) "closed form = enumeration" !total closed

let test_cost_triangular () =
  (* for i = 0..3 { for j = 0..i { s } }: 10 executions of s. *)
  let s =
    Stmt.make ~label:"s" ~work:10 [ Reference.make "A" [ Expr.Var "j" ] ]
  in
  let inner = Loop.for_ "j" (Expr.Const 0) (Expr.Var "i") [ Loop.Stmt s ] in
  let nest = Loop.for_ "i" (Expr.Const 0) (Expr.Const 3) [ Loop.For inner ] in
  let model = Cost.default in
  let expected =
    (10 * (10 + model.cycles_per_ref))
    + (10 * model.loop_overhead)
    + (4 * model.loop_overhead)
  in
  Alcotest.(check int) "triangular nest" expected (Cost.nest_cycles model nest)

let test_cost_seconds () =
  let model = Cost.default in
  Alcotest.(check (float 1e-9)) "cycles to seconds" 1.0
    (Cost.seconds model (Cost.cycles_of_seconds model 1.0))

(* --- Enumerate --- *)

let test_enumerate_order_and_count () =
  let p = small_program () in
  Alcotest.(check int) "dynamic stmts" 36 (Enumerate.count_stmt_executions p);
  let seen = ref [] in
  let cb =
    {
      Enumerate.nothing with
      Enumerate.on_stmt =
        (fun ~nest s env ->
          ignore s;
          if nest = 0 then seen := (env "i", env "j") :: !seen);
    }
  in
  Enumerate.run cb p;
  let expected =
    List.concat_map (fun i -> List.init 8 (fun j -> (i, j))) [ 0; 1; 2; 3 ]
  in
  Alcotest.(check int) "nest0 iterations" 32 (List.length !seen);
  Alcotest.(check bool) "lexicographic order" true (List.rev !seen = expected)

(* --- Depend --- *)

let test_depend_normal_form () =
  (match Depend.normal_form Expr.(Add (Mul (2, Var "i"), Const 3)) with
  | Some ([ ("i", 2) ], 3) -> ()
  | _ -> Alcotest.fail "normal form");
  Alcotest.(check bool) "div is not affine" true
    (Depend.normal_form Expr.(Div (Var "i", 2)) = None)

let test_depend_ref_distance () =
  let r1 = Reference.make "A" [ Expr.Var "i" ] in
  let r2 = Reference.make "A" [ Expr.(Add (Var "i", Const 2)) ] in
  (match Depend.ref_distance r1 r2 with
  | Some (Depend.Exact [ 2 ]) -> ()
  | _ -> Alcotest.fail "distance 2");
  let r3 = Reference.make "B" [ Expr.Var "i" ] in
  Alcotest.(check bool) "different arrays" true (Depend.ref_distance r1 r3 = None);
  let c1 = Reference.make "A" [ Expr.Const 0 ] in
  let c2 = Reference.make "A" [ Expr.Const 5 ] in
  Alcotest.(check bool) "distinct constants never alias" true
    (Depend.ref_distance c1 c2 = None)

let test_depend_identical_nonaffine () =
  let r = Reference.make "A" [ Expr.(Div (Var "i", 25)) ] in
  match Depend.ref_distance r r with
  | Some (Depend.Exact [ 0 ]) -> ()
  | _ -> Alcotest.fail "identical non-affine refs have distance 0"

let test_depend_tiling_legal () =
  let p =
    Parser.program ~name:"t"
      {|
array A[8][8] : 8
for i = 0 to 7 { for j = 0 to 7 { A[i][j] = A[i][j] work 1 } }
|}
  in
  (match p.Program.body with
  | [ Loop.For l ] ->
      Alcotest.(check bool) "self-update tileable" true (Depend.tiling_legal l)
  | _ -> Alcotest.fail "shape");
  let p2 =
    Parser.program ~name:"t"
      {|
array A[8][8] : 8
for i = 1 to 7 { for j = 0 to 7 { A[i][j] = A[i - 1][j] work 1 } }
|}
  in
  match p2.Program.body with
  | [ Loop.For l ] ->
      Alcotest.(check bool) "forward dep tileable" true (Depend.tiling_legal l)
  | _ -> Alcotest.fail "shape"

let test_depend_stmts_dependent () =
  let w =
    Stmt.make ~label:"w"
      ~write:(Reference.make "A" [ Expr.Var "i" ])
      [ Reference.make "B" [ Expr.Var "i" ] ]
  in
  let r = Stmt.make ~label:"r" [ Reference.make "A" [ Expr.Var "i" ] ] in
  let other = Stmt.make ~label:"o" [ Reference.make "C" [ Expr.Var "i" ] ] in
  Alcotest.(check bool) "write-read dependent" true (Depend.stmts_dependent w r);
  Alcotest.(check bool) "disjoint arrays independent" false
    (Depend.stmts_dependent w other)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "ir.expr",
      [
        Alcotest.test_case "eval" `Quick test_expr_eval;
        Alcotest.test_case "eval unbound" `Quick test_expr_eval_unbound;
        Alcotest.test_case "min/max" `Quick test_expr_minmax;
        Alcotest.test_case "bounds affine" `Quick test_expr_bounds_exact_affine;
        Alcotest.test_case "simplify" `Quick test_expr_simplify;
        Alcotest.test_case "subst/shift" `Quick test_expr_subst_shift;
        Alcotest.test_case "vars" `Quick test_expr_vars;
        q qcheck_bounds_sound;
        q qcheck_simplify_preserves_eval;
        q qcheck_printer_parser_roundtrip_expr;
      ] );
    ( "ir.array_decl",
      [
        Alcotest.test_case "basics" `Quick test_decl_basics;
        Alcotest.test_case "linearize" `Quick test_decl_linearize;
        Alcotest.test_case "validation" `Quick test_decl_validation;
        q qcheck_linearize_row_major;
      ] );
    ( "ir.lexer+printer",
      [
        Alcotest.test_case "comments/keywords" `Quick
          test_lexer_comments_and_keywords;
        Alcotest.test_case "error line" `Quick test_lexer_error_carries_line;
        Alcotest.test_case "describe total" `Quick test_lexer_describe_total;
        Alcotest.test_case "step/calls round-trip" `Quick
          test_printer_step_and_calls;
        Alcotest.test_case "negative bounds" `Quick test_printer_negative_bounds;
      ] );
    ( "ir.program",
      [
        Alcotest.test_case "loop accessors" `Quick test_loop_accessors;
        Alcotest.test_case "validation" `Quick test_program_validation;
        Alcotest.test_case "parser errors" `Quick test_parser_errors;
        Alcotest.test_case "pm calls" `Quick test_parser_pm_calls;
        Alcotest.test_case "print/parse round-trip" `Quick
          test_printer_roundtrip_program;
      ] );
    ( "ir.cost",
      [
        Alcotest.test_case "closed form" `Quick
          test_cost_closed_form_matches_enumeration;
        Alcotest.test_case "triangular" `Quick test_cost_triangular;
        Alcotest.test_case "seconds" `Quick test_cost_seconds;
      ] );
    ( "ir.enumerate",
      [
        Alcotest.test_case "order and count" `Quick
          test_enumerate_order_and_count;
      ] );
    ( "ir.depend",
      [
        Alcotest.test_case "normal form" `Quick test_depend_normal_form;
        Alcotest.test_case "ref distance" `Quick test_depend_ref_distance;
        Alcotest.test_case "identical non-affine" `Quick
          test_depend_identical_nonaffine;
        Alcotest.test_case "tiling legal" `Quick test_depend_tiling_legal;
        Alcotest.test_case "stmt dependence" `Quick test_depend_stmts_dependent;
      ] );
  ]
