(* Tests for Dpm_compiler: footprint analysis, DAP construction, timing
   estimates, power-call insertion, grouping, fission, disk allocation and
   tiling. *)

module Ir = Dpm_ir
module Access = Dpm_compiler.Access
module Dap = Dpm_compiler.Dap
module Estimate = Dpm_compiler.Estimate
module Insertion = Dpm_compiler.Insertion
module Grouping = Dpm_compiler.Grouping
module Fission = Dpm_compiler.Fission
module Disk_alloc = Dpm_compiler.Disk_alloc
module Tiling = Dpm_compiler.Tiling
module Pipeline = Dpm_compiler.Pipeline
module Plan = Dpm_layout.Plan

let specs = Dpm_disk.Specs.ultrastar_36z15
let top = Dpm_disk.Rpm.max_level specs
let parse = Ir.Parser.program ~name:"t"

(* A program with a clear per-disk phase structure: nest 0 touches only
   A (units on disks 0..3), nest 1 only B (disks 4..7). *)
let two_phase () =
  let p =
    parse
      {|
array A[32] : 8192
array B[32] : 8192
for i = 0 to 31 { use A[i] work 800000000 }
for i = 0 to 31 { use B[i] work 800000000 }
|}
  in
  let plan =
    Plan.make ~ndisks:8
      [
        {
          Plan.decl = Ir.Program.find_array p "A";
          striping =
            Dpm_layout.Striping.make ~start_disk:0 ~stripe_factor:4
              ~stripe_size:(Dpm_util.Units.kib 64);
          order = Plan.Row_major;
        };
        {
          Plan.decl = Ir.Program.find_array p "B";
          striping =
            Dpm_layout.Striping.make ~start_disk:4 ~stripe_factor:4
              ~stripe_size:(Dpm_util.Units.kib 64);
          order = Plan.Row_major;
        };
      ]
  in
  (p, plan)

(* --- Access --- *)

let test_access_footprint_marks_regions () =
  let p, plan = two_phase () in
  let acts = Access.of_program p plan in
  let a0 = List.nth acts 0 in
  (* Nest 0 never touches disks 4..7. *)
  for d = 4 to 7 do
    Alcotest.(check (list (pair int int))) "B disks idle in nest 0" []
      a0.Access.per_disk.(d)
  done;
  Alcotest.(check bool) "disk 0 active" true (a0.Access.per_disk.(0) <> [])

let test_access_cached_reflects_misses () =
  let p, plan = two_phase () in
  let acts = Access.of_program_cached ~cache_blocks:192 p plan in
  let a0 = List.nth acts 0 in
  (* 8 KB elements: disk 0 receives unit 0 (elements 0..7) and unit 4
     (elements 32..39 -> beyond A).  A has 4 units on disks 0..3: each
     disk sees exactly one miss, at the iteration touching its unit. *)
  let total =
    Array.fold_left
      (fun acc counts -> acc + Array.fold_left ( + ) 0 counts)
      0 a0.Access.miss_counts
  in
  Alcotest.(check int) "4 cold misses in nest 0" 4 total;
  Alcotest.(check int) "window_requests sums" 4
    (List.fold_left
       (fun acc d -> acc + Access.window_requests a0 ~disk:d ~lo:0 ~hi:31)
       0
       [ 0; 1; 2; 3 ])

let test_access_cached_sees_reuse () =
  (* Two sweeps over a cache-resident array: second sweep shows no
     activity at all. *)
  let p =
    parse
      {|
array A[16] : 8192
for i = 0 to 15 { use A[i] work 100 }
for i = 0 to 15 { use A[i] work 100 }
|}
  in
  let plan = Plan.uniform ~ndisks:8 p in
  let acts = Access.of_program_cached ~cache_blocks:64 p plan in
  let a1 = List.nth acts 1 in
  Array.iter
    (fun runs ->
      Alcotest.(check (list (pair int int))) "second sweep idle" [] runs)
    a1.Access.per_disk

(* --- Dap --- *)

let build_dap ?(cache_blocks = 192) p plan =
  let acts = Access.of_program_cached ~cache_blocks p plan in
  let est = Estimate.profile ~cache_blocks ~specs p plan in
  (Dap.build acts est, acts, est)

let test_dap_windows_alternate_and_partition () =
  let p, plan = two_phase () in
  let dap, _, est = build_dap p plan in
  for disk = 0 to 7 do
    let ws = dap.Dap.windows.(disk) in
    Alcotest.(check bool) "non-empty" true (ws <> []);
    (* Contiguous cover of [0, total]. *)
    let rec walk cursor = function
      | [] -> cursor
      | (w : Dap.window) :: rest ->
          Alcotest.(check (float 1e-9)) "contiguous" cursor w.Dap.t_start;
          walk w.Dap.t_end rest
    in
    let last = walk 0.0 ws in
    Alcotest.(check (float 1e-9)) "covers run" est.Estimate.total last
  done

let test_dap_disk_seven_idle_then_active () =
  let p, plan = two_phase () in
  let dap, _, _ = build_dap p plan in
  match dap.Dap.windows.(7) with
  | first :: _ ->
      Alcotest.(check bool) "starts idle" true (first.Dap.state = Dap.Idle);
      Alcotest.(check bool) "long leading gap" true
        (first.Dap.t_end -. first.Dap.t_start > 10.0)
  | [] -> Alcotest.fail "no windows"

let test_dap_entries_form () =
  let p, plan = two_phase () in
  let dap, _, _ = build_dap p plan in
  let entries = Dap.entries dap ~disk:0 in
  Alcotest.(check bool) "alternating states" true
    (let rec ok = function
       | (_, _, s1) :: ((_, _, s2) :: _ as rest) -> s1 <> s2 && ok rest
       | _ -> true
     in
     ok entries)

(* --- Estimate --- *)

let test_estimate_total_matches_trace () =
  let p, plan = two_phase () in
  let est = Estimate.profile ~cache_blocks:192 ~specs p plan in
  let trace =
    Dpm_trace.Generate.run
      ~config:{ Dpm_trace.Generate.default_config with cache_blocks = 192 }
      p plan
  in
  let service =
    Dpm_disk.Service.request_time specs ~level:top
      ~bytes:(Dpm_util.Units.kib 64)
  in
  let expected =
    Dpm_trace.Trace.total_think trace
    +. (float_of_int (Dpm_trace.Trace.io_count trace) *. service)
  in
  Alcotest.(check (float 1e-6)) "profile total = think + service" expected
    est.Estimate.total

let test_estimate_perturb_properties () =
  let p, plan = two_phase () in
  let est = Estimate.profile ~cache_blocks:192 ~specs p plan in
  let same = Estimate.perturb ~noise:0.0 ~seed:1 est in
  Alcotest.(check (float 1e-9)) "zero noise is identity" est.Estimate.total
    same.Estimate.total;
  let p1 = Estimate.perturb ~noise:0.2 ~seed:1 est in
  let p2 = Estimate.perturb ~noise:0.2 ~seed:1 est in
  Alcotest.(check (float 1e-9)) "deterministic" p1.Estimate.total
    p2.Estimate.total;
  let p3 = Estimate.perturb ~noise:0.2 ~seed:2 est in
  Alcotest.(check bool) "seed matters" true
    (Float.abs (p1.Estimate.total -. p3.Estimate.total) > 1e-9);
  (* Bounded: every duration within (1 +- noise)(1 +- noise/4). *)
  Array.iteri
    (fun i per_item ->
      Array.iteri
        (fun o d ->
          let orig = est.Estimate.durations.(i).(o) in
          Alcotest.(check bool) "bounded" true
            (d >= orig *. 0.75 && d <= orig *. 1.25))
        per_item)
    p1.Estimate.durations

let test_estimate_locate () =
  let p, plan = two_phase () in
  let est = Estimate.profile ~cache_blocks:192 ~specs p plan in
  let item, ord = Estimate.locate est (est.Estimate.total /. 2.0) in
  let start = Estimate.iteration_start est ~item ~ordinal:ord in
  let stop = Estimate.iteration_end est ~item ~ordinal:ord in
  Alcotest.(check bool) "span contains time" true
    (start <= est.Estimate.total /. 2.0 && est.Estimate.total /. 2.0 <= stop);
  Alcotest.(check (pair int int)) "clamps below" (0, 0)
    (Estimate.locate est (-5.0))

(* --- Insertion --- *)

let test_preactivation_distance_formula () =
  Alcotest.(check int) "paper Eq. 1" 11
    (Insertion.preactivation_distance ~t_su:10.9 ~s:1.0 ~t_m:0.01);
  Alcotest.check_raises "zero period"
    (Invalid_argument "preactivation_distance: zero period") (fun () ->
      ignore (Insertion.preactivation_distance ~t_su:1.0 ~s:0.0 ~t_m:0.0))

let test_insertion_tpm_on_two_phase () =
  let p, plan = two_phase () in
  let dap, _, est = build_dap p plan in
  let instrumented, decisions =
    Insertion.insert ~specs Insertion.Tpm p dap est
  in
  (* Each nest runs ~26s, far beyond the 15.2s break-even: the disks of
     the other phase get spin-downs. *)
  Alcotest.(check bool) "decisions exist" true (decisions <> []);
  let calls =
    List.concat_map
      (function
        | Ir.Loop.For l -> Ir.Loop.calls l
        | Ir.Loop.Call c -> [ c ]
        | Ir.Loop.Stmt _ -> [])
      instrumented.Ir.Program.body
  in
  let downs =
    List.length
      (List.filter (function Ir.Loop.Spin_down _ -> true | _ -> false) calls)
  in
  let ups =
    List.length
      (List.filter (function Ir.Loop.Spin_up _ -> true | _ -> false) calls)
  in
  Alcotest.(check bool) "spin downs inserted" true (downs > 0);
  Alcotest.(check bool) "pre-activations inserted" true (ups > 0);
  (* Iteration multiset preserved by strip-mining. *)
  Alcotest.(check int) "same dynamic statements"
    (Ir.Enumerate.count_stmt_executions p)
    (Ir.Enumerate.count_stmt_executions instrumented)

let test_insertion_nothing_below_break_even () =
  let p =
    parse
      {|
array A[32] : 8192
for i = 0 to 31 { use A[i] work 1000 }
|}
  in
  let plan = Plan.uniform ~ndisks:8 p in
  let dap, _, est = build_dap p plan in
  let _, decisions = Insertion.insert ~specs Insertion.Tpm p dap est in
  Alcotest.(check int) "no TPM decisions on short gaps" 0
    (List.length decisions)

let test_insertion_drpm_levels_valid () =
  let p, plan = two_phase () in
  let dap, _, est = build_dap p plan in
  let instrumented, decisions =
    Insertion.insert ~specs Insertion.Drpm p dap est
  in
  Alcotest.(check bool) "drpm decisions exist" true (decisions <> []);
  List.iter
    (fun (d : Insertion.decision) ->
      Alcotest.(check bool) "level in ladder" true
        (d.plan.Dpm_disk.Power.level >= 0 && d.plan.Dpm_disk.Power.level <= top);
      Alcotest.(check bool) "down before up" true
        (match d.up_at with
        | Some u -> compare u d.down_at > 0
        | None -> true))
    decisions;
  Alcotest.(check int) "same dynamic statements"
    (Ir.Enumerate.count_stmt_executions p)
    (Ir.Enumerate.count_stmt_executions instrumented)

(* --- Grouping (paper Figure 9/11) --- *)

let figure9 () =
  parse
    {|
array U1[8] : 8192
array U2[8] : 8192
array U3[8] : 8192
array U4[8] : 8192
array U5[8] : 8192
array U6[8] : 8192
array U7[8] : 8192
array U8[8] : 8192
array U9[8] : 8192
array U10[8] : 8192
for i = 0 to 7 {
  U1[i] = U2[i] work 1
  U3[i] = U4[i] work 1
  U6[i] = U7[i] work 1
}
for i = 0 to 7 {
  U5[i] = U1[i] work 1
  U8[i] = U4[i] work 1
}
for i = 0 to 7 {
  U9[i] = U10[i] work 1
}
|}

let test_grouping_figure9 () =
  let p = figure9 () in
  let g = Grouping.of_program p in
  Alcotest.(check int) "four groups" 4 (Grouping.group_count g);
  let groups = Grouping.groups g in
  let find name = List.find (List.mem name) groups in
  Alcotest.(check (list string)) "U1 group" [ "U1"; "U2"; "U5" ] (find "U1");
  Alcotest.(check (list string)) "U3 group" [ "U3"; "U4"; "U8" ] (find "U3");
  Alcotest.(check (list string)) "U6 group" [ "U6"; "U7" ] (find "U6");
  Alcotest.(check (list string)) "U9 group" [ "U10"; "U9" ] (find "U9")

let test_grouping_group_bytes () =
  let p = figure9 () in
  let g = Grouping.of_program p in
  let bytes = Grouping.group_bytes p g in
  Alcotest.(check int) "U1 group bytes" (3 * 8 * 8192)
    bytes.(Grouping.group_of g "U1")

(* --- Fission --- *)

(* The dynamic access sequence restricted to one group must be preserved
   verbatim by fission (distribution never reorders within a group). *)
let group_access_sequence p grouping g =
  let seq = ref [] in
  let cb =
    {
      Ir.Enumerate.nothing with
      Ir.Enumerate.on_stmt =
        (fun ~nest:_ s env ->
          if Grouping.stmt_group grouping s = g then
            List.iter
              (fun (r : Ir.Reference.t) ->
                seq := (r.Ir.Reference.array, Ir.Reference.eval env r) :: !seq)
              (Ir.Stmt.refs s));
    }
  in
  Ir.Enumerate.run cb p;
  List.rev !seq

let test_fission_preserves_group_sequences () =
  let p = figure9 () in
  let g = Grouping.of_program p in
  let p' = Fission.apply p g in
  Alcotest.(check bool) "more nests after fission" true
    (Ir.Program.item_count p' > Ir.Program.item_count p);
  for group = 0 to Grouping.group_count g - 1 do
    Alcotest.(check bool) "group access sequence preserved" true
      (group_access_sequence p g group = group_access_sequence p' g group)
  done

let test_fission_single_group_nest_unchanged () =
  let p =
    parse
      {|
array A[8] : 8192
array B[8] : 8192
for i = 0 to 7 { A[i] = B[i] work 1 }
|}
  in
  let g = Grouping.of_program p in
  Alcotest.(check int) "one group" 1 (Grouping.group_count g);
  (match p.Ir.Program.body with
  | [ Ir.Loop.For l ] ->
      Alcotest.(check bool) "not fissionable" false (Fission.fissionable g l)
  | _ -> Alcotest.fail "shape");
  let p' = Fission.apply p g in
  Alcotest.(check int) "unchanged" (Ir.Program.item_count p)
    (Ir.Program.item_count p')

(* --- Disk_alloc --- *)

let test_disk_alloc_partition () =
  let ranges = Disk_alloc.ranges ~ndisks:8 [| 100; 100; 50; 10 |] in
  let total = Array.fold_left (fun acc (_, n) -> acc + n) 0 ranges in
  Alcotest.(check int) "all disks allocated" 8 total;
  Array.iter
    (fun (_, n) -> Alcotest.(check bool) "at least one disk" true (n >= 1))
    ranges;
  (* Ranges are consecutive and disjoint. *)
  let cursor = ref 0 in
  Array.iter
    (fun (start, n) ->
      Alcotest.(check int) "consecutive" !cursor start;
      cursor := !cursor + n)
    ranges

let test_disk_alloc_proportional () =
  let ranges = Disk_alloc.ranges ~ndisks:8 [| 300; 100 |] in
  Alcotest.(check (pair int int)) "big group" (0, 6) ranges.(0);
  Alcotest.(check (pair int int)) "small group" (6, 2) ranges.(1)

let test_disk_alloc_too_many_groups () =
  Alcotest.check_raises "too many"
    (Invalid_argument "Disk_alloc.ranges: more array groups than disks")
    (fun () -> ignore (Disk_alloc.ranges ~ndisks:2 [| 1; 1; 1 |]))

let test_disk_alloc_plan_groups_disjoint () =
  let p = figure9 () in
  let g = Grouping.of_program p in
  let plan = Disk_alloc.plan ~ndisks:8 p g in
  (* Arrays in different groups share no disks. *)
  let disks name =
    let e = Plan.entry plan name in
    Dpm_layout.Striping.disks_used e.Plan.striping ~ndisks:8
      ~file_bytes:(Ir.Array_decl.size_bytes e.Plan.decl)
  in
  let inter a b = List.filter (fun d -> List.mem d (disks b)) (disks a) in
  Alcotest.(check (list int)) "U1 vs U3 disjoint" [] (inter "U1" "U3");
  Alcotest.(check (list int)) "U1 vs U9 disjoint" [] (inter "U1" "U9");
  Alcotest.(check bool) "same group shares" true (inter "U1" "U2" <> [])

(* --- Tiling --- *)

let tiling_program () =
  parse
    {|
array A[16][16] : 8192
array B[16][16] : 8192
for i = 0 to 15 { for j = 0 to 15 {
  A[i][j] = A[i][j] + B[j][i] work 1
} }
|}

let iteration_multiset p =
  let seq = ref [] in
  let cb =
    {
      Ir.Enumerate.nothing with
      Ir.Enumerate.on_stmt =
        (fun ~nest:_ _ env -> seq := (env "i", env "j") :: !seq);
    }
  in
  Ir.Enumerate.run cb p;
  List.sort compare !seq

let test_tiling_preserves_iterations () =
  let p = tiling_program () in
  let plan = Plan.uniform ~ndisks:8 p in
  let p', _ = Tiling.apply ~dl:false p plan in
  Alcotest.(check bool) "program changed" true
    (Ir.Printer.program p <> Ir.Printer.program p');
  Alcotest.(check bool) "same iteration multiset" true
    (iteration_multiset p = iteration_multiset p')

let test_tiling_conforming_order () =
  let p = tiling_program () in
  match p.Ir.Program.body with
  | [ Ir.Loop.For l ] ->
      (* A is accessed [i][j] with inner j in the last dim: row-major.
         B is accessed [j][i]: inner j in the first dim: column-major. *)
      Alcotest.(check bool) "A row-major" true
        (Tiling.conforming_order l "A" = Some Plan.Row_major);
      Alcotest.(check bool) "B col-major" true
        (Tiling.conforming_order l "B" = Some Plan.Col_major)
  | _ -> Alcotest.fail "shape"

let test_tiling_dl_updates_plan () =
  let p = tiling_program () in
  let plan = Plan.uniform ~ndisks:8 p in
  let _, plan' = Tiling.apply ~dl:true p plan in
  let b = Plan.entry plan' "B" in
  Alcotest.(check bool) "B transposed" true (b.Plan.order = Plan.Col_major);
  let a = Plan.entry plan' "A" in
  Alcotest.(check bool) "stripe set to tile size" true
    (a.Plan.striping.Dpm_layout.Striping.stripe_size >= 4096)

let test_tiling_no_candidate_is_identity () =
  (* A 1-deep nest cannot be tiled. *)
  let p = parse {|
array A[8] : 8192
for i = 0 to 7 { use A[i] work 1 }
|} in
  let plan = Plan.uniform ~ndisks:8 p in
  Alcotest.(check bool) "no candidate" true (Tiling.candidate p plan = None);
  let p', plan' = Tiling.apply ~dl:true p plan in
  Alcotest.(check bool) "identity" true
    (Ir.Printer.program p = Ir.Printer.program p' && plan == plan')

let test_tile_sizes_cover_stripe () =
  let p = tiling_program () in
  match p.Ir.Program.body with
  | [ Ir.Loop.For l ] ->
      let t1, t2 = Tiling.tile_sizes p ~stripe_size:(Dpm_util.Units.kib 64) l in
      Alcotest.(check int) "tile covers a stripe unit" 8 (t1 * t2)
  | _ -> Alcotest.fail "shape"

let test_tiling_apply_all () =
  let p =
    parse
      {|
array A[16][16] : 8192
array B[16][16] : 8192
array C[16][16] : 8192
for i = 0 to 15 { for j = 0 to 15 { A[i][j] = A[i][j] + B[j][i] work 1 } }
for i = 0 to 15 { for j = 0 to 15 { C[i][j] = C[i][j] + C[j][i] work 1 } }
|}
  in
  let plan = Plan.uniform ~ndisks:8 p in
  let p1, _ = Tiling.apply ~dl:true p plan in
  let pall, plan_all = Tiling.apply_all ~dl:true p plan in
  (* apply tiles one nest; apply_all both (the C nest has a symmetric
     dependence, distance (d,-d), so it is conservatively skipped --
     check at least that apply_all tiles no fewer nests than apply). *)
  let tiled_count prog =
    List.length
      (List.filter
         (fun node ->
           match node with
           | Ir.Loop.For l -> Ir.Loop.depth l = 4
           | Ir.Loop.Stmt _ | Ir.Loop.Call _ -> false)
         prog.Ir.Program.body)
  in
  Alcotest.(check bool) "apply_all >= apply" true
    (tiled_count pall >= tiled_count p1);
  Alcotest.(check bool) "iteration multiset preserved" true
    (Ir.Enumerate.count_stmt_executions p
    = Ir.Enumerate.count_stmt_executions pall);
  Alcotest.(check bool) "B flipped once" true
    ((Plan.entry plan_all "B").Plan.order = Plan.Col_major)

let test_pipeline_tl_all_version () =
  let p = tiling_program () in
  let plan = Plan.uniform ~ndisks:8 p in
  let p', _ = Pipeline.transform Pipeline.TL_ALL_DL p plan in
  Alcotest.(check bool) "changed" true
    (Ir.Printer.program p <> Ir.Printer.program p');
  Alcotest.(check string) "name" "TLall+DL"
    (Pipeline.version_name Pipeline.TL_ALL_DL)

(* --- Pipeline --- *)

let test_pipeline_versions () =
  let p = figure9 () in
  let plan = Plan.uniform ~ndisks:8 p in
  List.iter
    (fun v ->
      let p', plan' = Pipeline.transform v p plan in
      Alcotest.(check int) "same arrays"
        (List.length p.Ir.Program.arrays)
        (List.length p'.Ir.Program.arrays);
      Alcotest.(check int) "same disks" 8 (Plan.ndisks plan'))
    Pipeline.all_versions

let test_pipeline_compile_smoke () =
  let p, plan = two_phase () in
  let compiled = Pipeline.compile ~scheme:Insertion.Drpm ~specs p plan in
  Alcotest.(check bool) "decisions" true
    (compiled.Pipeline.decisions <> []);
  Alcotest.(check (float 1e-9)) "profile is exact when noise=0"
    compiled.Pipeline.estimate.Estimate.total
    compiled.Pipeline.profile.Estimate.total

let suite =
  [
    ( "compiler.access",
      [
        Alcotest.test_case "footprint regions" `Quick
          test_access_footprint_marks_regions;
        Alcotest.test_case "cached misses" `Quick test_access_cached_reflects_misses;
        Alcotest.test_case "cached reuse" `Quick test_access_cached_sees_reuse;
      ] );
    ( "compiler.dap",
      [
        Alcotest.test_case "windows partition" `Quick
          test_dap_windows_alternate_and_partition;
        Alcotest.test_case "idle phases" `Quick test_dap_disk_seven_idle_then_active;
        Alcotest.test_case "entries alternate" `Quick test_dap_entries_form;
      ] );
    ( "compiler.estimate",
      [
        Alcotest.test_case "total matches trace" `Quick
          test_estimate_total_matches_trace;
        Alcotest.test_case "perturb properties" `Quick test_estimate_perturb_properties;
        Alcotest.test_case "locate" `Quick test_estimate_locate;
      ] );
    ( "compiler.insertion",
      [
        Alcotest.test_case "Eq. 1" `Quick test_preactivation_distance_formula;
        Alcotest.test_case "tpm insertion" `Quick test_insertion_tpm_on_two_phase;
        Alcotest.test_case "below break-even" `Quick
          test_insertion_nothing_below_break_even;
        Alcotest.test_case "drpm levels" `Quick test_insertion_drpm_levels_valid;
      ] );
    ( "compiler.grouping",
      [
        Alcotest.test_case "figure 9 groups" `Quick test_grouping_figure9;
        Alcotest.test_case "group bytes" `Quick test_grouping_group_bytes;
      ] );
    ( "compiler.fission",
      [
        Alcotest.test_case "preserves group sequences" `Quick
          test_fission_preserves_group_sequences;
        Alcotest.test_case "single group unchanged" `Quick
          test_fission_single_group_nest_unchanged;
      ] );
    ( "compiler.disk_alloc",
      [
        Alcotest.test_case "partition" `Quick test_disk_alloc_partition;
        Alcotest.test_case "proportional" `Quick test_disk_alloc_proportional;
        Alcotest.test_case "too many groups" `Quick test_disk_alloc_too_many_groups;
        Alcotest.test_case "groups disjoint" `Quick
          test_disk_alloc_plan_groups_disjoint;
      ] );
    ( "compiler.tiling",
      [
        Alcotest.test_case "preserves iterations" `Quick
          test_tiling_preserves_iterations;
        Alcotest.test_case "conforming order" `Quick test_tiling_conforming_order;
        Alcotest.test_case "dl updates plan" `Quick test_tiling_dl_updates_plan;
        Alcotest.test_case "no candidate" `Quick test_tiling_no_candidate_is_identity;
        Alcotest.test_case "tile sizes" `Quick test_tile_sizes_cover_stripe;
        Alcotest.test_case "apply_all" `Quick test_tiling_apply_all;
        Alcotest.test_case "TL_ALL_DL version" `Quick test_pipeline_tl_all_version;
      ] );
    ( "compiler.pipeline",
      [
        Alcotest.test_case "versions" `Quick test_pipeline_versions;
        Alcotest.test_case "compile smoke" `Quick test_pipeline_compile_smoke;
      ] );
  ]
