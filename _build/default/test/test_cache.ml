(* Tests for Dpm_cache.Lru. *)

module Lru = Dpm_cache.Lru

let test_hit_miss_basic () =
  let c = Lru.create ~capacity:2 in
  (match Lru.access c "a" with `Miss None -> () | _ -> Alcotest.fail "cold a");
  (match Lru.access c "a" with `Hit -> () | _ -> Alcotest.fail "hit a");
  (match Lru.access c "b" with `Miss None -> () | _ -> Alcotest.fail "cold b");
  (* Cache full: c evicts the least recently used, which is a. *)
  (match Lru.access c "c" with
  | `Miss (Some "a") -> ()
  | _ -> Alcotest.fail "evict a");
  match Lru.access c "a" with
  | `Miss (Some "b") -> ()
  | _ -> Alcotest.fail "a was evicted, b is now LRU"

let test_promotion () =
  let c = Lru.create ~capacity:2 in
  ignore (Lru.access c 1);
  ignore (Lru.access c 2);
  ignore (Lru.access c 1);
  (* 1 was promoted, so inserting 3 evicts 2. *)
  match Lru.access c 3 with
  | `Miss (Some 2) -> ()
  | _ -> Alcotest.fail "promotion failed"

let test_zero_capacity () =
  let c = Lru.create ~capacity:0 in
  (match Lru.access c "x" with `Miss None -> () | _ -> Alcotest.fail "miss");
  (match Lru.access c "x" with
  | `Miss None -> ()
  | _ -> Alcotest.fail "still a miss");
  Alcotest.(check int) "length" 0 (Lru.length c)

let test_counters_and_clear () =
  let c = Lru.create ~capacity:4 in
  ignore (Lru.access c 1);
  ignore (Lru.access c 1);
  ignore (Lru.access c 2);
  Alcotest.(check int) "hits" 1 (Lru.hits c);
  Alcotest.(check int) "misses" 2 (Lru.misses c);
  Lru.clear c;
  Alcotest.(check int) "cleared length" 0 (Lru.length c);
  Alcotest.(check int) "cleared hits" 0 (Lru.hits c);
  match Lru.access c 1 with `Miss None -> () | _ -> Alcotest.fail "cold after clear"

let test_mem_does_not_promote () =
  let c = Lru.create ~capacity:2 in
  ignore (Lru.access c 1);
  ignore (Lru.access c 2);
  Alcotest.(check bool) "mem" true (Lru.mem c 1);
  (* mem must not promote 1; inserting 3 still evicts 1. *)
  match Lru.access c 3 with
  | `Miss (Some 1) -> ()
  | _ -> Alcotest.fail "mem promoted"

let test_negative_capacity () =
  Alcotest.check_raises "negative" (Invalid_argument "Lru.create: negative capacity")
    (fun () -> ignore (Lru.create ~capacity:(-1)))

(* Reference LRU on lists, for differential testing. *)
module Reference_lru = struct
  type t = { cap : int; mutable items : int list }

  let create cap = { cap; items = [] }

  let access t k =
    if List.mem k t.items then begin
      t.items <- k :: List.filter (fun x -> x <> k) t.items;
      `Hit
    end
    else begin
      t.items <- k :: t.items;
      if t.cap = 0 then begin
        t.items <- [];
        `Miss None
      end
      else if List.length t.items > t.cap then begin
        let rec split acc = function
          | [] -> (List.rev acc, None)
          | [ last ] -> (List.rev acc, Some last)
          | x :: rest -> split (x :: acc) rest
        in
        let kept, evicted = split [] t.items in
        t.items <- kept;
        `Miss evicted
      end
      else `Miss None
    end
end

let qcheck_lru_matches_reference =
  QCheck2.Test.make ~count:200 ~name:"lru: matches reference implementation"
    QCheck2.Gen.(
      pair (int_range 1 6) (list_size (int_bound 200) (int_bound 9)))
    (fun (cap, keys) ->
      let fast = Lru.create ~capacity:cap in
      let slow = Reference_lru.create cap in
      List.for_all
        (fun k ->
          match (Lru.access fast k, Reference_lru.access slow k) with
          | `Hit, `Hit -> true
          | `Miss a, `Miss b -> a = b
          | _ -> false)
        keys)

let qcheck_lru_capacity_invariant =
  QCheck2.Test.make ~count:200 ~name:"lru: never exceeds capacity"
    QCheck2.Gen.(
      pair (int_range 0 8) (list_size (int_bound 300) (int_bound 20)))
    (fun (cap, keys) ->
      let c = Lru.create ~capacity:cap in
      List.for_all
        (fun k ->
          ignore (Lru.access c k);
          Lru.length c <= cap)
        keys)

let qcheck_lru_hit_monotone_in_capacity =
  QCheck2.Test.make ~count:100
    ~name:"lru: more capacity never means fewer hits (sequential sweeps)"
    QCheck2.Gen.(pair (int_range 1 6) (int_range 1 20))
    (fun (cap, n) ->
      (* Cyclic sequential access of n distinct keys, three passes. *)
      let run cap =
        let c = Lru.create ~capacity:cap in
        for _ = 1 to 3 do
          for k = 0 to n - 1 do
            ignore (Lru.access c k)
          done
        done;
        Lru.hits c
      in
      run cap <= run (cap + 1) || run cap <= run (cap + 2))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "cache.lru",
      [
        Alcotest.test_case "hit/miss/evict" `Quick test_hit_miss_basic;
        Alcotest.test_case "promotion" `Quick test_promotion;
        Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
        Alcotest.test_case "counters/clear" `Quick test_counters_and_clear;
        Alcotest.test_case "mem does not promote" `Quick test_mem_does_not_promote;
        Alcotest.test_case "negative capacity" `Quick test_negative_capacity;
        q qcheck_lru_matches_reference;
        q qcheck_lru_capacity_invariant;
        q qcheck_lru_hit_monotone_in_capacity;
      ] );
  ]
