(* Tests for Dpm_sim: the per-disk power state machine, the replay
   engine's energy accounting, the reactive policies, and the oracle
   schemes. *)

module Config = Dpm_sim.Config
module Disk_state = Dpm_sim.Disk_state
module Engine = Dpm_sim.Engine
module Policy = Dpm_sim.Policy
module Result = Dpm_sim.Result
module Oracle = Dpm_sim.Oracle
module Specs = Dpm_disk.Specs
module Rpm = Dpm_disk.Rpm
module Power = Dpm_disk.Power
module Service = Dpm_disk.Service
module Request = Dpm_trace.Request
module Trace = Dpm_trace.Trace

let specs = Specs.ultrastar_36z15
let top = Rpm.max_level specs
let kib = Dpm_util.Units.kib
let check_float tol = Alcotest.(check (float tol))

(* --- Disk_state --- *)

let test_disk_idle_energy () =
  let st = Disk_state.create specs ~id:0 in
  Disk_state.finalize st ~at:10.0;
  check_float 1e-6 "idle at full speed" (10.0 *. specs.Specs.p_idle)
    (Disk_state.energy st)

let test_disk_serve_energy () =
  let st = Disk_state.create specs ~id:0 in
  let completion = Disk_state.serve st ~now:2.0 ~bytes:(kib 64) in
  let service = Service.request_time specs ~level:top ~bytes:(kib 64) in
  check_float 1e-9 "completion" (2.0 +. service) completion;
  Disk_state.finalize st ~at:10.0;
  let expected =
    ((10.0 -. service) *. specs.Specs.p_idle)
    +. (service *. specs.Specs.p_active)
  in
  check_float 1e-6 "idle+active split" expected (Disk_state.energy st);
  Alcotest.(check int) "served" 1 (Disk_state.requests_served st)

let test_disk_set_level_residency () =
  let st = Disk_state.create specs ~id:0 in
  Disk_state.set_level st ~now:1.0 0;
  Disk_state.finalize st ~at:11.0;
  let trans = Rpm.transition_time specs ~from_level:top ~to_level:0 in
  let residency = Disk_state.level_residency st in
  check_float 1e-6 "time at bottom" (10.0 -. trans) residency.(0);
  check_float 1e-6 "time at top" 1.0 residency.(top);
  let expected =
    (1.0 *. specs.Specs.p_idle)
    +. Rpm.transition_energy specs ~from_level:top ~to_level:0
    +. ((10.0 -. trans) *. Power.idle specs ~level:0)
  in
  check_float 1e-6 "energy" expected (Disk_state.energy st)

let test_disk_serve_waits_for_modulation () =
  let st = Disk_state.create specs ~id:0 in
  Disk_state.set_level st ~now:0.0 0;
  (* A request arriving mid-modulation waits for it, then serves at the
     reached level. *)
  let trans = Rpm.transition_time specs ~from_level:top ~to_level:0 in
  let completion = Disk_state.serve st ~now:(trans /. 2.0) ~bytes:(kib 64) in
  let service = Service.request_time specs ~level:0 ~bytes:(kib 64) in
  check_float 1e-9 "waits then serves slow" (trans +. service) completion

let test_disk_standby_auto_spin_up () =
  let st = Disk_state.create specs ~id:0 in
  Disk_state.spin_down st ~now:0.0;
  Disk_state.finalize st ~at:specs.Specs.t_spin_down;
  (match Disk_state.phase st with
  | Disk_state.Standby -> ()
  | _ -> Alcotest.fail "should be in standby");
  let completion = Disk_state.serve st ~now:20.0 ~bytes:(kib 64) in
  let service = Service.request_time specs ~level:top ~bytes:(kib 64) in
  check_float 1e-9 "pays the spin-up"
    (20.0 +. specs.Specs.t_spin_up +. service)
    completion;
  Alcotest.(check int) "one spin-down" 1 (Disk_state.spin_down_count st)

let test_disk_past_operations_clamp () =
  let st = Disk_state.create specs ~id:0 in
  let c1 = Disk_state.serve st ~now:5.0 ~bytes:(kib 64) in
  (* An operation stamped before the disk's own clock must not loop or
     rewind: it takes effect at the clock. *)
  Disk_state.set_level st ~now:1.0 0;
  Disk_state.set_level st ~now:1.0 top;
  let c2 = Disk_state.serve st ~now:1.0 ~bytes:(kib 64) in
  Alcotest.(check bool) "monotone" true (c2 > c1)

let test_disk_spin_chains () =
  let st = Disk_state.create specs ~id:0 in
  Disk_state.spin_down st ~now:0.0;
  (* Spin-up requested mid-spin-down chains after it. *)
  Disk_state.spin_up st ~now:0.1;
  Disk_state.finalize st ~at:30.0;
  match Disk_state.phase st with
  | Disk_state.Ready l -> Alcotest.(check int) "back at top" top l
  | _ -> Alcotest.fail "should have spun back up"

(* --- Engine --- *)

let io ?(think = 0.0) ?(disk = 0) ?(bytes = kib 64) () =
  Request.Io
    { think; disk; block = 0; bytes; kind = Request.Read; nest = 0; iter = 0 }

let test_engine_base_energy_formula () =
  (* n requests with fixed think: E = ndisks*P_idle*T + (P_active - P_idle)*busy. *)
  let events = List.init 10 (fun _ -> io ~think:0.01 ()) in
  let trace = Trace.make ~tail_think:0.5 ~program:"t" ~ndisks:4 events in
  let r = Engine.run Policy.base trace in
  let service = Service.request_time specs ~level:top ~bytes:(kib 64) in
  let t = (10.0 *. (0.01 +. service)) +. 0.5 in
  check_float 1e-6 "exec time" t r.Result.exec_time;
  let expected =
    (4.0 *. specs.Specs.p_idle *. t)
    +. ((specs.Specs.p_active -. specs.Specs.p_idle) *. 10.0 *. service)
  in
  check_float 1e-3 "energy formula" expected r.Result.energy

let test_engine_open_vs_closed () =
  (* A directive that spins a disk down right before its request: closed
     mode pays the full spin-up in execution time; open mode hides it
     behind the traced timeline until the queue bound binds. *)
  let events =
    [
      Request.Pm { think = 0.0; directive = Request.Spin_down 0 };
      io ~think:20.0 ();
      io ~think:1.0 ();
    ]
  in
  let trace = Trace.make ~program:"t" ~ndisks:2 events in
  let closed = Engine.run ~mode:`Closed Policy.cm_tpm trace in
  let open_ = Engine.run ~mode:`Open Policy.cm_tpm trace in
  Alcotest.(check bool) "closed pays spin-up" true
    (closed.Result.exec_time > open_.Result.exec_time);
  Alcotest.(check bool) "open still pays some lateness" true
    (open_.Result.exec_time > 21.0)

let test_engine_ignores_directives_without_policy () =
  let events =
    [ Request.Pm { think = 1.0; directive = Request.Spin_down 0 }; io () ]
  in
  let trace = Trace.make ~program:"t" ~ndisks:1 events in
  let r = Engine.run Policy.base trace in
  Alcotest.(check int) "no spin-down happened" 0 r.Result.disks.(0).Result.spin_downs;
  (* The directive's think time still elapses. *)
  Alcotest.(check bool) "think preserved" true (r.Result.exec_time >= 1.0)

let test_engine_gap_choices_recorded () =
  let events =
    [
      Request.Pm { think = 0.0; directive = Request.Set_rpm { level = 2; disk = 0 } };
      io ~think:5.0 ();
    ]
  in
  let trace = Trace.make ~program:"t" ~ndisks:1 events in
  let r = Engine.run Policy.cm_drpm trace in
  match r.Result.gap_choices with
  | [ (0, _, 2) ] -> ()
  | _ -> Alcotest.fail "down-choice should be recorded"

let test_engine_queue_bound () =
  (* 64 zero-think requests to one disk: the app stalls at the queue
     bound, so exec time is about n * service, not 0. *)
  let events = List.init 64 (fun _ -> io ()) in
  let trace = Trace.make ~program:"t" ~ndisks:1 events in
  let r = Engine.run ~mode:`Open Policy.base trace in
  let service = Service.request_time specs ~level:top ~bytes:(kib 64) in
  Alcotest.(check bool) "makespan at least the service demand" true
    (r.Result.exec_time >= 63.0 *. service)

let test_engine_pm_overhead_advances_clock () =
  let events =
    [
      Request.Pm { think = 0.0; directive = Request.Set_rpm { level = 10; disk = 0 } };
      io ();
    ]
  in
  let trace = Trace.make ~program:"t" ~ndisks:1 events in
  let with_cm = Engine.run Policy.cm_drpm trace in
  let without = Engine.run Policy.base trace in
  (* The accepted directive costs the Tm call overhead on the compute
     timeline; a top-level set to the current level is otherwise a
     no-op. *)
  Alcotest.(check bool) "overhead charged" true
    (with_cm.Result.exec_time
    >= without.Result.exec_time +. Config.default.Config.pm_call_overhead -. 1e-12)

let test_engine_top_level_set_rpm_not_a_choice () =
  let events =
    [
      Request.Pm { think = 0.0; directive = Request.Set_rpm { level = 10; disk = 0 } };
      io ~think:1.0 ();
    ]
  in
  let trace = Trace.make ~program:"t" ~ndisks:1 events in
  let r = Engine.run Policy.cm_drpm trace in
  Alcotest.(check int) "full-speed set not recorded as a down-choice" 0
    (List.length r.Result.gap_choices)

(* --- Result --- *)

let test_result_idle_gaps () =
  let events = [ io ~think:1.0 (); io ~think:2.0 () ] in
  let trace = Trace.make ~tail_think:1.0 ~program:"t" ~ndisks:1 events in
  let r = Engine.run Policy.base trace in
  let gaps = Result.idle_gaps r ~disk:0 in
  Alcotest.(check int) "three gaps" 3 (List.length gaps);
  let total = List.fold_left (fun a (lo, hi) -> a +. (hi -. lo)) 0.0 gaps in
  let service = Service.request_time specs ~level:top ~bytes:(kib 64) in
  check_float 1e-6 "gap total = exec - busy"
    (r.Result.exec_time -. (2.0 *. service))
    total

(* --- Multiprogrammed replay --- *)

let total_requests (r : Result.t) =
  Array.fold_left (fun n (d : Result.disk_stats) -> n + d.requests) 0 r.disks

let test_run_many_single_equals_run () =
  let events = List.init 8 (fun _ -> io ~think:0.5 ()) in
  let trace = Trace.make ~tail_think:0.2 ~program:"t" ~ndisks:2 events in
  let a = Engine.run Policy.base trace in
  let b = Engine.run_many Policy.base [ trace ] in
  check_float 1e-9 "same energy" a.Result.energy b.Result.energy;
  check_float 1e-9 "same time" a.Result.exec_time b.Result.exec_time

let test_run_many_rejects_mismatch () =
  let t1 = Trace.make ~program:"a" ~ndisks:2 [ io () ] in
  let t2 = Trace.make ~program:"b" ~ndisks:4 [ io () ] in
  Alcotest.check_raises "ndisks differ"
    (Invalid_argument "Engine.run_many: disk counts differ") (fun () ->
      ignore (Engine.run_many Policy.base [ t1; t2 ]))

let test_run_many_shares_subsystem () =
  (* Two identical apps on one disk: the subsystem serves both request
     streams, so it sees twice the requests of one app. *)
  let mk name = Trace.make ~program:name ~ndisks:1 (List.init 6 (fun _ -> io ~think:0.5 ())) in
  let r = Engine.run_many Policy.base [ mk "a"; mk "b" ] in
  Alcotest.(check int) "both streams served" 12 (total_requests r);
  Alcotest.(check string) "combined name" "a+b" r.Result.program;
  (* Runtime is bounded by one app's span (they interleave), not the sum. *)
  let single = Engine.run Policy.base (mk "a") in
  Alcotest.(check bool) "concurrent, not serial" true
    (r.Result.exec_time < 1.5 *. single.Result.exec_time)

(* --- Reactive policies --- *)

let test_tpm_spins_down_long_idle () =
  let threshold = Power.tpm_break_even specs in
  let events = [ io (); io ~think:(threshold +. 5.0) () ] in
  let trace = Trace.make ~program:"t" ~ndisks:1 events in
  let r = Engine.run (Policy.tpm Config.default) trace in
  Alcotest.(check int) "one spin-down" 1 r.Result.disks.(0).Result.spin_downs;
  (* The second request pays the on-demand spin-up in open-loop lateness. *)
  Alcotest.(check bool) "standby residency" true
    (r.Result.disks.(0).Result.standby_time > 0.0)

let test_tpm_ignores_short_idle () =
  let events = [ io (); io ~think:2.0 () ] in
  let trace = Trace.make ~program:"t" ~ndisks:1 events in
  let r = Engine.run (Policy.tpm Config.default) trace in
  Alcotest.(check int) "no spin-down" 0 r.Result.disks.(0).Result.spin_downs

let test_atpm_inert_at_break_even () =
  (* Gaps below the initial (break-even) threshold: the adaptive scheme
     is exactly as inert as fixed TPM. *)
  let events = List.init 6 (fun _ -> io ~think:5.0 ()) in
  let trace = Trace.make ~program:"t" ~ndisks:1 events in
  let r = Engine.run (Policy.tpm_adaptive Config.default ~ndisks:1) trace in
  Alcotest.(check int) "no spin-downs" 0 r.Result.disks.(0).Result.spin_downs

let test_atpm_threshold_adapts () =
  (* Repeated 17s gaps: each spin-down is judged good (the idle period
     exceeds break-even), so the threshold decays below break-even and
     the scheme eventually spins down on gaps fixed TPM would skip. *)
  let good = List.init 10 (fun _ -> io ~think:17.0 ()) in
  let probe = [ io ~think:14.5 (); io ~think:1.0 () ] in
  let trace = Trace.make ~program:"t" ~ndisks:1 (good @ probe) in
  let adaptive =
    Engine.run (Policy.tpm_adaptive Config.default ~ndisks:1) trace
  in
  let fixed = Engine.run (Policy.tpm Config.default) trace in
  Alcotest.(check bool) "adaptive spins on the 14.5s probe" true
    (adaptive.Result.disks.(0).Result.spin_downs
    > fixed.Result.disks.(0).Result.spin_downs)

let test_drpm_idle_steps () =
  (* One request, then a long gap: the idle controller steps down. *)
  let events = [ io (); io ~think:30.0 () ] in
  let trace = Trace.make ~program:"t" ~ndisks:1 events in
  let r = Engine.run (Policy.drpm Config.default ~ndisks:1) trace in
  Alcotest.(check bool) "transitions happened" true
    (r.Result.disks.(0).Result.transitions > 0);
  Alcotest.(check bool) "saves vs base" true
    (r.Result.energy < (Engine.run Policy.base trace).Result.energy)

(* --- Oracle --- *)

let base_result_with_gap gap =
  let events = [ io (); io ~think:gap () ] in
  let trace = Trace.make ~program:"t" ~ndisks:1 events in
  Engine.run Policy.base trace

let test_oracle_itpm_matches_plan () =
  let base = base_result_with_gap 40.0 in
  let itpm = Oracle.itpm base in
  Alcotest.(check bool) "saves on a 40s gap" true
    (itpm.Result.energy < base.Result.energy);
  Alcotest.(check (float 1e-9)) "no time penalty" base.Result.exec_time
    itpm.Result.exec_time;
  Alcotest.(check int) "one oracle spin-down" 1
    itpm.Result.disks.(0).Result.spin_downs

let test_oracle_itpm_short_gap_noop () =
  let base = base_result_with_gap 2.0 in
  let itpm = Oracle.itpm base in
  check_float 1e-6 "no saving below break-even" base.Result.energy
    itpm.Result.energy

let test_oracle_idrpm_beats_base () =
  let base = base_result_with_gap 10.0 in
  let idrpm = Oracle.idrpm base in
  Alcotest.(check bool) "saves" true (idrpm.Result.energy < base.Result.energy);
  Alcotest.(check (float 1e-9)) "no time penalty" base.Result.exec_time
    idrpm.Result.exec_time;
  Alcotest.(check bool) "records gap choices" true
    (List.length idrpm.Result.gap_choices > 0)

let test_oracle_phases_partition_time () =
  let base = base_result_with_gap 10.0 in
  let phases = Oracle.phases base ~disk:0 in
  let total =
    List.fold_left
      (fun acc ph ->
        match ph with
        | Oracle.Burst { span = lo, hi; _ } -> acc +. (hi -. lo)
        | Oracle.Gap { span = lo, hi; _ } -> acc +. (hi -. lo))
      0.0 phases
  in
  check_float 1e-6 "phases cover the run" base.Result.exec_time total

let test_oracle_serves_slow_in_sparse_burst () =
  (* Requests spaced 0.2s apart form one burst (below the 0.5s burst
     threshold) with lots of slack: the oracle serves below full speed. *)
  let events = List.init 20 (fun _ -> io ~think:0.2 ()) in
  let trace = Trace.make ~program:"t" ~ndisks:1 events in
  let base = Engine.run Policy.base trace in
  let phases = Oracle.phases base ~disk:0 in
  let burst_levels =
    List.filter_map
      (function Oracle.Burst { level; _ } -> Some level | Oracle.Gap _ -> None)
      phases
  in
  Alcotest.(check bool) "below top speed" true
    (List.exists (fun l -> l < top) burst_levels)

(* --- Property tests: energy bounds and oracle dominance --- *)

(* Random small traces: a few requests with random think times over a
   few disks. *)
let trace_gen =
  QCheck2.Gen.(
    map
      (fun events ->
        let events =
          List.map
            (fun (think, disk, big) ->
              io ~think ~disk ~bytes:(kib (if big then 64 else 16)) ())
            events
        in
        Trace.make ~tail_think:0.1 ~program:"q" ~ndisks:3 events)
      (list_size (int_range 1 25)
         (triple (float_bound_exclusive 3.0) (int_bound 2) bool)))

let qcheck_energy_bounds policy_name make_policy =
  QCheck2.Test.make ~count:100
    ~name:("engine: energy within physical bounds (" ^ policy_name ^ ")")
    trace_gen
    (fun trace ->
      let r = Engine.run (make_policy ()) trace in
      let t = r.Result.exec_time in
      (* finalize may settle transitions slightly past the end. *)
      let upper = 3.0 *. specs.Specs.p_active *. (t +. 16.0) in
      let lower = 3.0 *. specs.Specs.p_standby *. t *. 0.99 in
      r.Result.energy >= lower && r.Result.energy <= upper)

let qcheck_base_bounds = qcheck_energy_bounds "base" (fun () -> Policy.base)

let qcheck_tpm_bounds =
  qcheck_energy_bounds "tpm" (fun () -> Policy.tpm Config.default)

let qcheck_drpm_bounds =
  qcheck_energy_bounds "drpm" (fun () -> Policy.drpm Config.default ~ndisks:3)

let qcheck_oracles_never_lose =
  QCheck2.Test.make ~count:100
    ~name:"oracle: ITPM and IDRPM never exceed Base energy" trace_gen
    (fun trace ->
      let base = Engine.run Policy.base trace in
      (Oracle.itpm base).Result.energy <= base.Result.energy +. 1e-6
      && (Oracle.idrpm base).Result.energy <= base.Result.energy +. 1e-6)

let qcheck_closed_never_faster =
  QCheck2.Test.make ~count:100
    ~name:"engine: closed-loop replay is never faster than open" trace_gen
    (fun trace ->
      let o = Engine.run ~mode:`Open Policy.base trace in
      let c = Engine.run ~mode:`Closed Policy.base trace in
      c.Result.exec_time >= o.Result.exec_time -. 1e-9)

let qcheck_busy_intervals_sorted_disjoint =
  QCheck2.Test.make ~count:100
    ~name:"engine: per-disk busy intervals are sorted and disjoint" trace_gen
    (fun trace ->
      let r = Engine.run Policy.base trace in
      Array.for_all
        (fun (d : Result.disk_stats) ->
          let rec ok = function
            | (a1, b1) :: ((a2, _) :: _ as rest) ->
                a1 <= b1 && b1 <= a2 && ok rest
            | [ (a, b) ] -> a <= b
            | [] -> true
          in
          ok d.Result.busy)
        r.Result.disks)

let suite =
  [
    ( "sim.disk_state",
      [
        Alcotest.test_case "idle energy" `Quick test_disk_idle_energy;
        Alcotest.test_case "serve energy" `Quick test_disk_serve_energy;
        Alcotest.test_case "set_level residency" `Quick test_disk_set_level_residency;
        Alcotest.test_case "serve waits modulation" `Quick
          test_disk_serve_waits_for_modulation;
        Alcotest.test_case "standby auto spin-up" `Quick
          test_disk_standby_auto_spin_up;
        Alcotest.test_case "past ops clamp" `Quick test_disk_past_operations_clamp;
        Alcotest.test_case "spin chains" `Quick test_disk_spin_chains;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "base energy formula" `Quick
          test_engine_base_energy_formula;
        Alcotest.test_case "open vs closed" `Quick test_engine_open_vs_closed;
        Alcotest.test_case "directive gating" `Quick
          test_engine_ignores_directives_without_policy;
        Alcotest.test_case "gap choices" `Quick test_engine_gap_choices_recorded;
        Alcotest.test_case "queue bound" `Quick test_engine_queue_bound;
        Alcotest.test_case "pm overhead" `Quick
          test_engine_pm_overhead_advances_clock;
        Alcotest.test_case "top-level set_rpm" `Quick
          test_engine_top_level_set_rpm_not_a_choice;
        Alcotest.test_case "run_many single" `Quick test_run_many_single_equals_run;
        Alcotest.test_case "run_many mismatch" `Quick test_run_many_rejects_mismatch;
        Alcotest.test_case "run_many shared" `Quick test_run_many_shares_subsystem;
        Alcotest.test_case "idle gaps" `Quick test_result_idle_gaps;
      ] );
    ( "sim.policy",
      [
        Alcotest.test_case "tpm long idle" `Quick test_tpm_spins_down_long_idle;
        Alcotest.test_case "tpm short idle" `Quick test_tpm_ignores_short_idle;
        Alcotest.test_case "atpm inert" `Quick test_atpm_inert_at_break_even;
        Alcotest.test_case "atpm adapts" `Quick test_atpm_threshold_adapts;
        Alcotest.test_case "drpm idle stepping" `Quick test_drpm_idle_steps;
      ] );
    ( "sim.properties",
      List.map QCheck_alcotest.to_alcotest
        [
          qcheck_base_bounds;
          qcheck_tpm_bounds;
          qcheck_drpm_bounds;
          qcheck_oracles_never_lose;
          qcheck_closed_never_faster;
          qcheck_busy_intervals_sorted_disjoint;
        ] );
    ( "sim.oracle",
      [
        Alcotest.test_case "itpm saves" `Quick test_oracle_itpm_matches_plan;
        Alcotest.test_case "itpm short noop" `Quick test_oracle_itpm_short_gap_noop;
        Alcotest.test_case "idrpm saves" `Quick test_oracle_idrpm_beats_base;
        Alcotest.test_case "phases partition" `Quick
          test_oracle_phases_partition_time;
        Alcotest.test_case "serve-slow in slack" `Quick
          test_oracle_serves_slow_in_sparse_burst;
      ] );
  ]
