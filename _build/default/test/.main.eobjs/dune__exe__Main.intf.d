test/main.mli:
