test/test_workloads.ml: Alcotest Dpm_compiler Dpm_disk Dpm_ir Dpm_trace Dpm_util Dpm_workloads Float List Printf
