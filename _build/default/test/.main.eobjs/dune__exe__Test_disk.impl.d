test/test_disk.ml: Alcotest Dpm_disk Dpm_util Fun List QCheck2 QCheck_alcotest
