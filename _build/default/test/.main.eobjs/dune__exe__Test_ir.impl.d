test/test_ir.ml: Alcotest Dpm_ir List QCheck2 QCheck_alcotest String
