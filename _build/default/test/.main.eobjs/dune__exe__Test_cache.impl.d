test/test_cache.ml: Alcotest Dpm_cache List QCheck2 QCheck_alcotest
