test/test_core.ml: Alcotest Dpm_compiler Dpm_core Dpm_sim Dpm_workloads Float Lazy List String
