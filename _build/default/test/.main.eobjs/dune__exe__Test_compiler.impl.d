test/test_compiler.ml: Alcotest Array Dpm_compiler Dpm_disk Dpm_ir Dpm_layout Dpm_trace Dpm_util Float List
