test/main.ml: Alcotest Test_cache Test_compiler Test_core Test_disk Test_ir Test_layout Test_sim Test_trace Test_util Test_workloads
