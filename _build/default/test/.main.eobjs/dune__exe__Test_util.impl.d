test/test_util.ml: Alcotest Array Dpm_util Float Fun List QCheck2 QCheck_alcotest String
