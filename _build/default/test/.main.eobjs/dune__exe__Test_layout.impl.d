test/test_layout.ml: Alcotest Dpm_ir Dpm_layout Dpm_util Hashtbl List QCheck2 QCheck_alcotest
