test/test_sim.ml: Alcotest Array Dpm_disk Dpm_sim Dpm_trace Dpm_util List QCheck2 QCheck_alcotest
