test/test_trace.ml: Alcotest Array Dpm_ir Dpm_layout Dpm_trace Dpm_util Filename Float Fun List QCheck2 QCheck_alcotest Sys
