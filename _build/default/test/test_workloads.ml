(* Tests for Dpm_workloads: the suite's observable characteristics must
   match the paper's Table 2 (within tolerance), the structural claims
   each benchmark makes (fissionability, transform applicability) must
   hold, and calibration must be exact. *)

module Suite = Dpm_workloads.Suite
module Ir = Dpm_ir
module Grouping = Dpm_compiler.Grouping
module Fission = Dpm_compiler.Fission

let tol_pct value target pct =
  Float.abs (value -. target) /. target *. 100.0 <= pct

let with_spec name f () = f (Suite.find name)

let test_suite_complete () =
  Alcotest.(check (list string)) "six benchmarks in paper order"
    [ "wupwise"; "swim"; "mgrid"; "applu"; "mesa"; "galgel" ]
    (List.map (fun (s : Suite.spec) -> s.name) Suite.all)

let test_sources_parse (spec : Suite.spec) =
  let p = Suite.program spec in
  Alcotest.(check bool) "has nests" true (Ir.Program.nests p <> [])

let test_data_sizes (spec : Suite.spec) =
  let p = Suite.program spec in
  let mb = Dpm_util.Units.mb_of_bytes (Ir.Program.total_data_bytes p) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.2f MB within 0.5%% of %.1f" spec.name mb spec.data_mb)
    true
    (tol_pct mb spec.data_mb 0.5)

let test_request_counts (spec : Suite.spec) =
  let p = Suite.program spec in
  let plan = Suite.default_plan p in
  let trace =
    Dpm_trace.Generate.run
      ~config:
        {
          Dpm_trace.Generate.default_config with
          cache_blocks = Suite.cache_blocks;
        }
      p plan
  in
  let n = Dpm_trace.Trace.io_count trace in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %d requests within 2%% of %d" spec.name n spec.requests)
    true
    (tol_pct (float_of_int n) (float_of_int spec.requests) 2.0)

let test_calibration_exact (spec : Suite.spec) =
  let p = Suite.program spec in
  let plan = Suite.default_plan p in
  let p' = Suite.calibrate ~target_exec:spec.exec_time_s p plan in
  let est =
    Dpm_compiler.Estimate.profile ~cache_blocks:Suite.cache_blocks
      ~specs:Dpm_disk.Specs.ultrastar_36z15 p' plan
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.3fs within 0.5%% of %.3fs" spec.name
       est.Dpm_compiler.Estimate.total spec.exec_time_s)
    true
    (tol_pct est.Dpm_compiler.Estimate.total spec.exec_time_s 0.5)

let fissionable_nest_exists spec =
  let p = Suite.program spec in
  let g = Grouping.of_program p in
  List.exists
    (fun (_, l) -> Fission.fissionable g l)
    (Ir.Program.nests p)

let test_fissionability_matches_paper () =
  (* Paper: wupwise and galgel "do not contain any fissionable loop
     nests"; the other four do. *)
  List.iter
    (fun (name, expected) ->
      Alcotest.(check bool)
        (name ^ " fissionable = " ^ string_of_bool expected)
        expected
        (fissionable_nest_exists (Suite.find name)))
    [
      ("wupwise", false);
      ("swim", true);
      ("mgrid", true);
      ("applu", true);
      ("mesa", true);
      ("galgel", false);
    ]

let test_tiling_candidates_exist () =
  (* Every benchmark has some tileable nest (the paper tiles the most
     costly one per application). *)
  List.iter
    (fun (spec : Suite.spec) ->
      let p = Suite.program spec in
      let plan = Suite.default_plan p in
      Alcotest.(check bool)
        (spec.name ^ " has a tiling candidate")
        true
        (Dpm_compiler.Tiling.candidate p plan <> None))
    Suite.all

let test_noise_amplitudes_positive () =
  List.iter
    (fun (s : Suite.spec) ->
      Alcotest.(check bool) "noise in (0, 0.5)" true
        (s.noise > 0.0 && s.noise < 0.5))
    Suite.all

let per_bench name tests =
  List.map
    (fun (label, f) ->
      Alcotest.test_case (name ^ " " ^ label) `Quick (with_spec name f))
    tests

let suite =
  [
    ( "workloads.suite",
      [
        Alcotest.test_case "complete" `Quick test_suite_complete;
        Alcotest.test_case "fissionability" `Quick test_fissionability_matches_paper;
        Alcotest.test_case "tiling candidates" `Quick test_tiling_candidates_exist;
        Alcotest.test_case "noise amplitudes" `Quick test_noise_amplitudes_positive;
      ] );
    ( "workloads.table2",
      List.concat_map
        (fun name ->
          per_bench name
            [
              ("parses", test_sources_parse);
              ("data size", test_data_sizes);
              ("requests", test_request_counts);
              ("calibration", test_calibration_exact);
            ])
        [ "wupwise"; "swim"; "mgrid"; "applu"; "mesa"; "galgel" ] );
  ]
