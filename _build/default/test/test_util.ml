(* Tests for Dpm_util: Rng, Stats, Interval, Units, Table. *)

module Rng = Dpm_util.Rng
module Stats = Dpm_util.Stats
module Interval = Dpm_util.Interval
module Units = Dpm_util.Units
module Table = Dpm_util.Table

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.bits a) (Rng.bits b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let sa = List.init 16 (fun _ -> Rng.bits a) in
  let sb = List.init 16 (fun _ -> Rng.bits b) in
  Alcotest.(check bool) "different seeds differ" true (sa <> sb)

let test_rng_split_by_value () =
  let parent = Rng.create 11 in
  let c1 = Rng.split parent "child" in
  let x = Rng.bits c1 in
  (* Splitting again with the same tag gives the same stream: split does
     not advance the parent. *)
  let c2 = Rng.split parent "child" in
  Alcotest.(check int) "split is by value" x (Rng.bits c2);
  let c3 = Rng.split parent "other" in
  Alcotest.(check bool) "tags differ" true (Rng.bits c3 <> x)

let test_rng_int_bounds () =
  let t = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int t 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_zero () =
  let t = Rng.create 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int t 0))

let test_rng_symmetric_range () =
  let t = Rng.create 5 in
  for _ = 1 to 500 do
    let v = Rng.symmetric t 0.25 in
    Alcotest.(check bool) "in [-a,a)" true (v >= -0.25 && v < 0.25)
  done

let test_rng_shuffle_permutation () =
  let t = Rng.create 9 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* --- Stats --- *)

let test_stats_mean () =
  check_float "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "empty" 0.0 (Stats.mean [])

let test_stats_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ])

let test_stats_minmax () =
  check_float "min" (-3.0) (Stats.minimum [ 2.0; -3.0; 5.0 ]);
  check_float "max" 5.0 (Stats.maximum [ 2.0; -3.0; 5.0 ]);
  Alcotest.check_raises "empty min" (Invalid_argument "Stats.minimum: empty list")
    (fun () -> ignore (Stats.minimum []))

let test_stats_variance () =
  (* Population variance of {2, 4} is 1. *)
  check_float "variance" 1.0 (Stats.variance [ 2.0; 4.0 ]);
  check_float "stddev of constant" 0.0 (Stats.stddev [ 4.0; 4.0; 4.0 ])

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "p50" 3.0 (Stats.percentile 50.0 xs);
  check_float "p100" 5.0 (Stats.percentile 100.0 xs);
  check_float "p0" 1.0 (Stats.percentile 0.0 xs)

let test_stats_ratio () =
  check_float "ratio" 0.5 (Stats.ratio 1.0 2.0);
  check_float "div by zero" 0.0 (Stats.ratio 1.0 0.0)

let test_stats_accumulator () =
  let a = Stats.acc_create () in
  List.iter (Stats.acc_add a) [ 1.0; 2.0; 3.0 ];
  Alcotest.(check int) "count" 3 (Stats.acc_count a);
  check_float "sum" 6.0 (Stats.acc_sum a);
  check_float "mean" 2.0 (Stats.acc_mean a);
  check_float "min" 1.0 (Stats.acc_min a);
  check_float "max" 3.0 (Stats.acc_max a)

(* --- Interval --- *)

let test_interval_normalize () =
  let s = Interval.of_list [ (3.0, 4.0); (1.0, 2.0); (1.5, 3.5) ] in
  Alcotest.(check int) "merged" 1 (Interval.count s);
  check_float "measure" 3.0 (Interval.measure s)

let test_interval_empty_pairs_dropped () =
  let s = Interval.of_list [ (2.0, 2.0); (5.0, 1.0) ] in
  Alcotest.(check bool) "empty" true (Interval.is_empty s)

let test_interval_complement () =
  let s = Interval.of_list [ (1.0, 2.0); (3.0, 4.0) ] in
  let c = Interval.complement ~lo:0.0 ~hi:5.0 s in
  Alcotest.(check int) "three gaps" 3 (Interval.count c);
  check_float "gap measure" 3.0 (Interval.measure c)

let test_interval_mem () =
  let s = Interval.singleton 1.0 2.0 in
  Alcotest.(check bool) "inside" true (Interval.mem s 1.5);
  Alcotest.(check bool) "lo closed" true (Interval.mem s 1.0);
  Alcotest.(check bool) "hi open" false (Interval.mem s 2.0)

let test_interval_gaps_longer_than () =
  let s = Interval.of_list [ (0.0, 1.0); (2.0, 5.0) ] in
  Alcotest.(check int) "one long" 1 (List.length (Interval.gaps_longer_than 2.0 s))

(* qcheck: interval algebra laws *)

let pair_list_gen =
  QCheck2.Gen.(
    list_size (int_bound 10)
      (map2 (fun a b -> (a, a +. b)) (float_bound_exclusive 100.0)
         (float_bound_exclusive 10.0)))

let qcheck_interval_union_measure =
  QCheck2.Test.make ~count:200 ~name:"interval: measure(a U b) <= measure a + measure b"
    QCheck2.Gen.(pair pair_list_gen pair_list_gen)
    (fun (la, lb) ->
      let a = Interval.of_list la and b = Interval.of_list lb in
      Interval.measure (Interval.union a b)
      <= Interval.measure a +. Interval.measure b +. 1e-9)

let qcheck_interval_complement_involution =
  QCheck2.Test.make ~count:200
    ~name:"interval: complement of complement restores measure"
    pair_list_gen
    (fun l ->
      let s =
        Interval.inter
          (Interval.of_list l)
          (Interval.singleton 0.0 200.0)
      in
      let c = Interval.complement ~lo:0.0 ~hi:200.0 s in
      let cc = Interval.complement ~lo:0.0 ~hi:200.0 c in
      Float.abs (Interval.measure cc -. Interval.measure s) < 1e-6)

let qcheck_interval_partition =
  QCheck2.Test.make ~count:200
    ~name:"interval: s and complement partition the domain" pair_list_gen
    (fun l ->
      let s =
        Interval.inter (Interval.of_list l) (Interval.singleton 0.0 200.0)
      in
      let c = Interval.complement ~lo:0.0 ~hi:200.0 s in
      Interval.is_empty (Interval.inter s c)
      && Float.abs (Interval.measure s +. Interval.measure c -. 200.0) < 1e-6)

(* --- Units --- *)

let test_units () =
  Alcotest.(check int) "kib" 65536 (Units.kib 64);
  Alcotest.(check int) "mib" 1048576 (Units.mib 1);
  Alcotest.(check int) "bytes_of_mb" (Units.mib 96) (Units.bytes_of_mb 96.0);
  check_float "mb_of_bytes" 1.0 (Units.mb_of_bytes (Units.mib 1));
  check_float "ms" 0.005 (Units.ms 5.0)

(* --- Table --- *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let t =
    Table.create ~title:"T" ~columns:[ ("a", Table.Left); ("b", Table.Right) ]
  in
  Table.add_row t [ "x"; "1.00" ];
  Table.add_row t [ "long-label"; "2.50" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (contains s "== T ==");
  Alcotest.(check bool) "contains row" true (contains s "long-label");
  Alcotest.(check bool) "cells padded" true (contains s "2.50")

let test_table_wrong_arity () =
  let t = Table.create ~title:"T" ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "x"; "y" ])

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "split by value" `Quick test_rng_split_by_value;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "int rejects 0" `Quick test_rng_int_rejects_zero;
        Alcotest.test_case "symmetric range" `Quick test_rng_symmetric_range;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "geomean" `Quick test_stats_geomean;
        Alcotest.test_case "min/max" `Quick test_stats_minmax;
        Alcotest.test_case "variance" `Quick test_stats_variance;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "ratio" `Quick test_stats_ratio;
        Alcotest.test_case "accumulator" `Quick test_stats_accumulator;
      ] );
    ( "util.interval",
      [
        Alcotest.test_case "normalize" `Quick test_interval_normalize;
        Alcotest.test_case "drop empties" `Quick test_interval_empty_pairs_dropped;
        Alcotest.test_case "complement" `Quick test_interval_complement;
        Alcotest.test_case "mem" `Quick test_interval_mem;
        Alcotest.test_case "gaps filter" `Quick test_interval_gaps_longer_than;
        q qcheck_interval_union_measure;
        q qcheck_interval_complement_involution;
        q qcheck_interval_partition;
      ] );
    ( "util.units+table",
      [
        Alcotest.test_case "units" `Quick test_units;
        Alcotest.test_case "table render" `Quick test_table_render;
        Alcotest.test_case "table arity" `Quick test_table_wrong_arity;
      ] );
  ]
