(* swim under all seven disk power-management schemes — one row of the
   paper's Figures 3 and 4.

   The benchmark program is the suite's shallow-water re-creation,
   calibrated so its Base run reproduces the paper's Table 2 entry
   (3,159 requests, 32.09 s, 2,686.8 J on eight disks); every scheme is
   then replayed over the same trace.

   Run with: dune exec examples/swim_schemes.exe *)

let () =
  let spec = Dpm_workloads.Suite.find "swim" in
  let program, plan = Dpm_core.Experiment.workload spec in
  Printf.printf "%s\n\n" (Format.asprintf "%a" Dpm_ir.Program.pp program);
  let setup =
    { Dpm_core.Experiment.default_setup with noise = spec.noise }
  in
  let results = Dpm_core.Experiment.run_all ~setup program plan in
  let base = List.assoc Dpm_core.Scheme.Base results in
  Printf.printf "%-8s %12s %9s %8s %8s  %s\n" "scheme" "energy(J)" "time(s)"
    "E/base" "T/base" "standby/low-RPM residency";
  List.iter
    (fun (scheme, (r : Dpm_sim.Result.t)) ->
      let low_time =
        Array.fold_left
          (fun acc (d : Dpm_sim.Result.disk_stats) ->
            let nl = Array.length d.level_residency in
            let low = ref d.standby_time in
            Array.iteri
              (fun l t -> if l < nl - 1 then low := !low +. t)
              d.level_residency;
            acc +. !low)
          0.0 r.disks
      in
      Printf.printf "%-8s %12.2f %9.2f %8.3f %8.3f  %6.1f disk-seconds\n"
        (Dpm_core.Scheme.name scheme)
        r.energy r.exec_time
        (Dpm_sim.Result.normalized_energy r ~base)
        (Dpm_sim.Result.normalized_time r ~base)
        low_time)
    results;
  (* The headline comparison the paper draws. *)
  let e s = (List.assoc s results).Dpm_sim.Result.energy in
  Printf.printf
    "\nCMDRPM saves %.1f%% vs Base, %.1f points more than reactive DRPM, and \
     comes within %.1f points of the IDRPM oracle.\n"
    (100.0 *. (1.0 -. (e Dpm_core.Scheme.Cmdrpm /. e Dpm_core.Scheme.Base)))
    (100.0
    *. (e Dpm_core.Scheme.Drpm -. e Dpm_core.Scheme.Cmdrpm)
    /. e Dpm_core.Scheme.Base)
    (100.0
    *. (e Dpm_core.Scheme.Cmdrpm -. e Dpm_core.Scheme.Idrpm)
    /. e Dpm_core.Scheme.Base)
