(* Quickstart: the paper's Figure 2, end to end.

   Two loop nests over two disk-resident arrays on a 4-disk subsystem.
   U1 is striped over all four disks, U2 over the last two, so the two
   nests leave different disks idle at different times.  The example:

   1. writes the program in the loop-nest DSL and parses it;
   2. prints each disk's access pattern (DAP) in the paper's
      "< Nest n, iteration i, state >" form (Figure 2(c));
   3. runs the compiler-managed TPM pipeline, printing the transformed
      code with its inserted spin_down/spin_up calls (Figure 2(d));
   4. simulates Base vs CMTPM and reports the energy saving.

   Run with: dune exec examples/quickstart.exe *)

let stripe = Dpm_util.Units.kib 64

(* One logical "S" of the figure = one 64 KB stripe unit = 8 elements. *)
let source =
  {|
array U1[32] : 8192
array U2[16] : 8192

# Nest 0: touches the first half of U1 (disks 0-1) and all of U2
for i = 0 to 15 { U2[i] = U1[i] work 800000000 }

# Nest 1: sweeps all of U1 (all four disks); U2's disks fall idle
for i = 0 to 31 { use U1[i] work 800000000 }
|}

let () =
  let program = Dpm_ir.Parser.program ~name:"figure2" source in
  let plan =
    Dpm_layout.Plan.make ~ndisks:4
      [
        {
          Dpm_layout.Plan.decl = Dpm_ir.Program.find_array program "U1";
          striping =
            Dpm_layout.Striping.make ~start_disk:0 ~stripe_factor:4
              ~stripe_size:stripe;
          order = Dpm_layout.Plan.Row_major;
        };
        {
          Dpm_layout.Plan.decl = Dpm_ir.Program.find_array program "U2";
          striping =
            Dpm_layout.Striping.make ~start_disk:2 ~stripe_factor:2
              ~stripe_size:stripe;
          order = Dpm_layout.Plan.Row_major;
        };
      ]
  in
  print_endline "--- Source (Figure 2(a)) ---";
  print_string (Dpm_ir.Printer.program program);

  (* Disk access patterns (Figure 2(c)). *)
  let specs = Dpm_disk.Specs.ultrastar_36z15 in
  let activities = Dpm_compiler.Access.of_program_cached program plan in
  let estimate = Dpm_compiler.Estimate.profile ~specs program plan in
  let dap = Dpm_compiler.Dap.build activities estimate in
  print_endline "\n--- Disk access patterns (Figure 2(c)) ---";
  for disk = 0 to 3 do
    Printf.printf "disk%d:\n" disk;
    Format.printf "  @[<v>%a@]@." (Dpm_compiler.Dap.pp_disk activities)
      (dap, disk)
  done;

  (* The paper's Eq. 1 pre-activation distance for this code. *)
  let s =
    estimate.Dpm_compiler.Estimate.durations.(0).(0)
    (* one iteration of nest 0 *)
  in
  Printf.printf
    "Pre-activation distance (Eq. 1) for Tsu=%.1fs, s=%.2fs, Tm=2us: d = %d \
     iterations\n"
    specs.Dpm_disk.Specs.t_spin_up s
    (Dpm_compiler.Insertion.preactivation_distance
       ~t_su:specs.Dpm_disk.Specs.t_spin_up ~s ~t_m:2e-6);

  (* Compiler-managed TPM: insert spin_down/spin_up calls. *)
  let instrumented, decisions =
    Dpm_compiler.Insertion.insert ~specs Dpm_compiler.Insertion.Tpm program dap
      estimate
  in
  print_endline "\n--- Instrumented code (Figure 2(d)) ---";
  print_string (Dpm_ir.Printer.program instrumented);
  Printf.printf "(%d spin-down decisions)\n" (List.length decisions);

  (* Simulate Base vs CMTPM. *)
  let trace_plain = Dpm_trace.Generate.run program plan in
  let trace_cm = Dpm_trace.Generate.run instrumented plan in
  let base = Dpm_sim.Engine.run Dpm_sim.Policy.base trace_plain in
  let cmtpm = Dpm_sim.Engine.run Dpm_sim.Policy.cm_tpm trace_cm in
  Printf.printf "\n--- Simulation ---\n%s\n%s\n"
    (Dpm_sim.Result.summary base)
    (Dpm_sim.Result.summary cmtpm);
  Printf.printf "CMTPM saves %.1f%% disk energy with %+.2f%% execution time\n"
    (100.0 *. (1.0 -. Dpm_sim.Result.normalized_energy cmtpm ~base))
    (100.0 *. (Dpm_sim.Result.normalized_time cmtpm ~base -. 1.0))
