(* Layout-aware loop fission — the paper's Figure 9.

   Three loop nests access ten arrays (U1..U10).  Statements sharing an
   array are coupled; the grouping algorithm forms the paper's four array
   groups {U1,U2,U5}, {U3,U4,U8}, {U6,U7}, {U9,U10} (U2 and U5 belong
   together because both are coupled to U1).  Each nest is distributed by
   group, each group gets a disjoint disk range proportional to its data,
   and the disks of inactive groups can then be powered down for whole
   loops at a time.

   Run with: dune exec examples/fission_layout.exe *)

let source =
  {|
array U1[64] : 8192
array U2[64] : 8192
array U3[64] : 8192
array U4[64] : 8192
array U5[64] : 8192
array U6[64] : 8192
array U7[64] : 8192
array U8[64] : 8192
array U9[64] : 8192
array U10[64] : 8192

# Nest 0 couples U1-U2, U3-U4, U6-U7
for i = 0 to 63 {
    U1[i] = U2[i] work 300000000
    U3[i] = U4[i] work 300000000
    U6[i] = U7[i] work 300000000
}
# Nest 1 couples U5 to U1's group and U8 to U3's group
for i = 0 to 63 {
    U5[i] = U1[i] work 300000000
    U8[i] = U4[i] work 300000000
}
# Nest 2: U9-U10 form their own group
for i = 0 to 63 {
    U9[i] = U10[i] work 300000000
    U5[i] = U2[i] work 300000000
}
|}

let () =
  let program = Dpm_ir.Parser.program ~name:"figure9" source in
  let ndisks = 8 in
  let plan = Dpm_layout.Plan.uniform ~ndisks program in

  (* Array grouping (Figure 11, first phase). *)
  let grouping = Dpm_compiler.Grouping.of_program program in
  print_endline "--- Array groups ---";
  List.iteri
    (fun i g -> Printf.printf "  group %d: {%s}\n" i (String.concat ", " g))
    (Dpm_compiler.Grouping.groups grouping);

  (* Fission + proportional disk allocation (LF+DL). *)
  let fissioned = Dpm_compiler.Fission.apply program grouping in
  let plan' = Dpm_compiler.Disk_alloc.plan ~ndisks program grouping in
  print_endline "\n--- Fissioned code (Figure 9(b)) ---";
  print_string (Dpm_ir.Printer.program fissioned);
  print_endline "\n--- Disk allocation (Figure 9(c)) ---";
  Format.printf "%a@." Dpm_layout.Plan.pp plan';

  (* Energy: CMTPM on the original vs the transformed program. *)
  let specs = Dpm_disk.Specs.ultrastar_36z15 in
  let run label program plan =
    let compiled =
      Dpm_compiler.Pipeline.compile ~scheme:Dpm_compiler.Insertion.Tpm ~specs
        program plan
    in
    let base =
      Dpm_sim.Engine.run Dpm_sim.Policy.base (Dpm_trace.Generate.run program plan)
    in
    let cm =
      Dpm_sim.Engine.run Dpm_sim.Policy.cm_tpm
        (Dpm_trace.Generate.run compiled.Dpm_compiler.Pipeline.program plan)
    in
    Printf.printf "%-22s base %8.1f J   CMTPM %8.1f J  (%.1f%% saving, %d spin-downs)\n"
      label base.Dpm_sim.Result.energy cm.Dpm_sim.Result.energy
      (100.0 *. (1.0 -. (cm.Dpm_sim.Result.energy /. base.Dpm_sim.Result.energy)))
      (Array.fold_left
         (fun acc (d : Dpm_sim.Result.disk_stats) -> acc + d.spin_downs)
         0 cm.Dpm_sim.Result.disks)
  in
  print_endline "--- Energy under compiler-managed TPM ---";
  run "original layout" program plan;
  run "fissioned + LF+DL" fissioned plan'
