examples/quickstart.mli:
