examples/tiling_layout.ml: Dpm_compiler Dpm_ir Dpm_layout Dpm_sim Dpm_trace Format Printf
