examples/tiling_layout.mli:
