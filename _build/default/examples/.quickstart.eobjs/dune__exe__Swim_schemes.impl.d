examples/swim_schemes.ml: Array Dpm_core Dpm_ir Dpm_sim Dpm_workloads Format List Printf
