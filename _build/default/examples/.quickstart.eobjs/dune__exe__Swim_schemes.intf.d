examples/swim_schemes.mli:
