examples/fission_layout.mli:
