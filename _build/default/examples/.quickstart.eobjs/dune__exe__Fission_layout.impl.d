examples/fission_layout.ml: Array Dpm_compiler Dpm_disk Dpm_ir Dpm_layout Dpm_sim Dpm_trace Format List Printf String
