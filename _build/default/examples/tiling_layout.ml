(* Layout-aware loop tiling — the paper's Figure 10.

   A two-deep nest reads U1 along rows and U2 along columns.  U2's access
   pattern does not conform to its row-major layout, so every element
   access fetches a stripe unit it barely uses.  The layout-aware tiling
   pass (Figure 12) tiles the nest so one tile covers one stripe unit,
   transposes U2 to column-major so its access conforms, and sets each
   array's stripe size to its per-tile data size — after which the
   execution touches far fewer stripe units and the disks holding
   untouched tiles can rest.

   Run with: dune exec examples/tiling_layout.exe *)

let source =
  {|
array U1[96][96] : 8192
array U2[96][96] : 8192

for i = 0 to 95 { for j = 0 to 95 {
    U1[i][j] = U1[i][j] + U2[j][i] work 2000000
} }
|}

let () =
  let program = Dpm_ir.Parser.program ~name:"figure10" source in
  let ndisks = 8 in
  let plan = Dpm_layout.Plan.uniform ~ndisks program in
  print_endline "--- Original code (Figure 10(a)) ---";
  print_string (Dpm_ir.Printer.program program);

  (match Dpm_compiler.Tiling.candidate program plan with
  | Some item -> Printf.printf "\ntiling candidate: nest %d\n" item
  | None -> print_endline "\nno tileable nest!");

  let tiled, plan' = Dpm_compiler.Tiling.apply ~dl:true program plan in
  print_endline "\n--- Tiled code (Figure 10(b)) ---";
  print_string (Dpm_ir.Printer.program tiled);
  print_endline "\n--- Transformed layout (Figure 10(c)) ---";
  Format.printf "%a@." Dpm_layout.Plan.pp plan';

  (* Requests and energy before and after TL+DL, under a buffer cache too
     small to hide the non-conforming access (64 blocks = 4 MB). *)
  let config = { Dpm_trace.Generate.default_config with cache_blocks = 64 } in
  let measure label program plan =
    let trace = Dpm_trace.Generate.run ~config program plan in
    let base = Dpm_sim.Engine.run Dpm_sim.Policy.base trace in
    Printf.printf "%-12s %6d requests  %9.1f J  %7.2f s\n" label
      (Dpm_trace.Trace.io_count trace)
      base.Dpm_sim.Result.energy base.Dpm_sim.Result.exec_time;
    base.Dpm_sim.Result.energy
  in
  print_endline "--- Effect on the Base run ---";
  let before = measure "original" program plan in
  let after = measure "TL+DL" tiled plan' in
  Printf.printf "layout-aware tiling cuts base disk energy by %.1f%%\n"
    (100.0 *. (1.0 -. (after /. before)))
