(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (printed as text tables) and runs Bechamel
   micro-benchmarks of the pipeline stages.

   Usage:
     bench/main.exe                 -- everything
     bench/main.exe fig3 table2     -- selected figures only
     bench/main.exe micro           -- only the Bechamel micro-benchmarks *)

module Figures = Dpm_core.Figures

let available =
  [
    ("table1", Figures.table1);
    ("table2", Figures.table2);
    ("fig3", Figures.fig3);
    ("fig4", Figures.fig4);
    ("table3", Figures.table3);
    ("fig5", Figures.fig5);
    ("fig6", Figures.fig6);
    ("fig7", Figures.fig7);
    ("fig8", Figures.fig8);
    ("fig13", Figures.fig13);
    ("ext", Figures.extensions);
    ("ext-shared", Figures.shared_subsystem);
    ("ablation-knobs", Figures.knob_ablation);
    ("ablation-closed", Figures.closed_loop_ablation);
  ]

let print_figure (f : Figures.figure) =
  print_string f.Figures.rendered;
  print_newline ()

(* --- Bechamel micro-benchmarks: one per pipeline stage --- *)

let micro () =
  let open Bechamel in
  let spec = Dpm_workloads.Suite.find "galgel" in
  let program = Dpm_workloads.Suite.program spec in
  let plan = Dpm_workloads.Suite.default_plan program in
  let specs = Dpm_sim.Config.default.Dpm_sim.Config.specs in
  let trace = Dpm_trace.Generate.run program plan in
  let source = spec.Dpm_workloads.Suite.source () in
  let tests =
    [
      Test.make ~name:"parse-galgel"
        (Staged.stage (fun () ->
             ignore (Dpm_ir.Parser.program ~name:"galgel" source)));
      Test.make ~name:"access-analysis"
        (Staged.stage (fun () ->
             ignore (Dpm_compiler.Access.of_program_cached program plan)));
      Test.make ~name:"timing-profile"
        (Staged.stage (fun () ->
             ignore (Dpm_compiler.Estimate.profile ~specs program plan)));
      Test.make ~name:"trace-generation"
        (Staged.stage (fun () -> ignore (Dpm_trace.Generate.run program plan)));
      Test.make ~name:"replay-base"
        (Staged.stage (fun () ->
             ignore (Dpm_sim.Engine.run Dpm_sim.Policy.base trace)));
      Test.make ~name:"compile-cmdrpm"
        (Staged.stage (fun () ->
             ignore
               (Dpm_compiler.Pipeline.compile
                  ~scheme:Dpm_compiler.Insertion.Drpm ~specs program plan)));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  print_endline "== Micro-benchmarks (pipeline stages on galgel) ==";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name m ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock m
          in
          match Analyze.OLS.estimates stats with
          | Some [ t ] -> Printf.printf "  %-22s %12.1f ns/run\n%!" name t
          | Some _ | None -> Printf.printf "  %-22s (no estimate)\n%!" name)
        results)
    tests

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
      List.iter (fun (_, f) -> print_figure (f ())) available;
      micro ()
  | [ "micro" ] -> micro ()
  | names ->
      List.iter
        (fun name ->
          if String.equal name "micro" then micro ()
          else
            match List.assoc_opt name available with
            | Some f -> print_figure (f ())
            | None ->
                Printf.eprintf "unknown figure %S; available: %s micro\n" name
                  (String.concat " " (List.map fst available));
                exit 2)
        names
