bin/dpmsim.ml: Arg Array Cmd Cmdliner Dpm_compiler Dpm_core Dpm_ir Dpm_layout Dpm_sim Dpm_trace Dpm_workloads Format List Printf String Term
