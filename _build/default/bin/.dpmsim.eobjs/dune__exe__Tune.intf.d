bin/tune.mli:
