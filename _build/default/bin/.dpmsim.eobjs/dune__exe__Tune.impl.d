bin/tune.ml: Array Dpm_core Dpm_disk Dpm_ir Dpm_sim Dpm_util Dpm_workloads List Printf Unix
