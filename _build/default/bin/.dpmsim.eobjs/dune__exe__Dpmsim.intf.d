bin/dpmsim.mli:
