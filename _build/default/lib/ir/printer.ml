(* Precedence levels: 0 additive, 1 multiplicative, 2 atom. *)
let rec expr_prec level e =
  let atom s = s in
  let wrap needed s = if level > needed then "(" ^ s ^ ")" else s in
  match e with
  | Expr.Const n -> if n < 0 then wrap 1 (string_of_int n) else atom (string_of_int n)
  | Expr.Var x -> atom x
  | Expr.Add (a, b) ->
      wrap 0 (expr_prec 0 a ^ " + " ^ expr_prec 0 b)
  | Expr.Sub (a, b) ->
      (* Right operand needs multiplicative precedence to avoid a - (b - c)
         reassociating on re-parse. *)
      wrap 0 (expr_prec 0 a ^ " - " ^ expr_prec 1 b)
  | Expr.Mul (k, a) -> wrap 1 (string_of_int k ^ " * " ^ expr_prec 2 a)
  | Expr.Div (a, k) -> wrap 1 (expr_prec 2 a ^ " / " ^ string_of_int k)
  | Expr.Min (a, b) ->
      atom ("min(" ^ expr_prec 0 a ^ ", " ^ expr_prec 0 b ^ ")")
  | Expr.Max (a, b) ->
      atom ("max(" ^ expr_prec 0 a ^ ", " ^ expr_prec 0 b ^ ")")

let expr e = expr_prec 0 e

let reference (r : Reference.t) =
  r.array ^ String.concat "" (List.map (fun s -> "[" ^ expr s ^ "]") r.indices)

let stmt (s : Stmt.t) =
  let rhs = String.concat " + " (List.map reference s.reads) in
  let core =
    match s.write with
    | Some w -> reference w ^ " = " ^ rhs
    | None -> "use " ^ rhs
  in
  if s.work > 0 then core ^ " work " ^ string_of_int s.work else core

let call (c : Loop.pm_call) =
  match c with
  | Loop.Spin_down d -> Printf.sprintf "spin_down(%d)" d
  | Loop.Spin_up d -> Printf.sprintf "spin_up(%d)" d
  | Loop.Set_rpm { level; disk } -> Printf.sprintf "set_rpm(%d, %d)" level disk

let rec loop_lines indent (l : Loop.t) =
  let pad = String.make indent ' ' in
  let header =
    Printf.sprintf "%sfor %s = %s to %s%s {" pad l.var (expr l.lo) (expr l.hi)
      (if l.step = 1 then "" else " step " ^ string_of_int l.step)
  in
  let body =
    List.concat_map
      (fun node ->
        match node with
        | Loop.For inner -> loop_lines (indent + 2) inner
        | Loop.Stmt s -> [ String.make (indent + 2) ' ' ^ stmt s ]
        | Loop.Call c -> [ String.make (indent + 2) ' ' ^ call c ])
      l.body
  in
  (header :: body) @ [ pad ^ "}" ]

let loop ?(indent = 0) l = String.concat "\n" (loop_lines indent l)

let array_decl (a : Array_decl.t) =
  Printf.sprintf "array %s%s : %d" a.name
    (String.concat "" (List.map (Printf.sprintf "[%d]") a.dims))
    a.elem_size

let node = function
  | Loop.For l -> loop_lines 0 l |> String.concat "\n"
  | Loop.Stmt s -> stmt s
  | Loop.Call c -> call c

let program (p : Program.t) =
  let decls = List.map array_decl p.arrays in
  let items = List.map node p.body in
  String.concat "\n" (decls @ [ "" ] @ items) ^ "\n"

let pp_program ppf p = Format.pp_print_string ppf (program p)
