(** Whole programs: the unit the compiler analyzes and transforms.

    A program is a named sequence of top-level items over a set of
    declared disk-resident arrays — the shape of the paper's
    "time-consuming loop nests selected from each application".  Most
    items are loop nests; after power-call insertion the sequence also
    contains top-level power-management calls between loop segments
    (the result of strip-mining a nest around an insertion point). *)

type t = {
  name : string;
  arrays : Array_decl.t list;
  body : Loop.node list;
}

val make :
  name:string -> arrays:Array_decl.t list -> body:Loop.node list -> t
(** Validates: array names unique; every referenced array is declared;
    every subscript's rank matches the declaration; every iterator used in
    a subscript or bound is bound by an enclosing loop (top-level
    statements may therefore only use constant subscripts). *)

val of_nests :
  name:string -> arrays:Array_decl.t list -> Loop.t list -> t
(** Convenience wrapper when every item is a nest. *)

val find_array : t -> string -> Array_decl.t
(** Raises [Not_found] for undeclared names. *)

val total_data_bytes : t -> int
(** Sum of the sizes of all declared arrays (Table 2 "Data Size"). *)

val nests : t -> (int * Loop.t) list
(** Top-level loops with their item indices (the DAP's "nest" ids). *)

val item_count : t -> int

val arrays_of_item : t -> int -> string list
(** Arrays referenced by item [i] (0-based; empty for calls). *)

val with_body : t -> Loop.node list -> t
(** Replace the item list (used by the transformation passes); re-runs
    validation. *)

val stmts : t -> Stmt.t list
(** Every statement of the program, in textual order. *)

val pp : Format.formatter -> t -> unit
(** Summary line (name, arrays, items); full code printing lives in
    {!Printer}. *)
