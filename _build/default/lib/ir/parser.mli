(** Recursive-descent parser for the loop-nest DSL.

    Grammar (EBNF; [#] comments, newlines insignificant):
    {v
    program    ::= (array_decl | nest)*
    array_decl ::= "array" IDENT ("[" INT "]")+ ":" INT          (* bytes *)
    nest       ::= "for" IDENT "=" expr "to" expr ("step" INT)?
                   "{" item* "}"
    item       ::= nest | call | stmt
    call       ::= "spin_down" "(" INT ")" ";"?
                 | "spin_up" "(" INT ")" ";"?
                 | "set_rpm" "(" INT "," INT ")" ";"?
    stmt       ::= ref "=" rhs ("work" INT)? ";"?
                 | "use" rhs ("work" INT)? ";"?
    rhs        ::= ref ("+" ref)*
    ref        ::= IDENT ("[" expr "]")+
    expr       ::= term (("+" | "-") term)*
    term       ::= factor ("*" factor)* | factor "/" INT
    factor     ::= INT | IDENT | "(" expr ")" | "-" factor
                 | "min" "(" expr "," expr ")"
                 | "max" "(" expr "," expr ")"
    v}
    Multiplication requires at least one constant operand (the IR is
    affine); division requires a constant divisor. *)

exception Error of { line : int; message : string }

val program : name:string -> string -> Program.t
(** [program ~name src] parses and validates a whole program.
    Raises {!Error} on syntax errors and [Invalid_argument] on validation
    errors (cf. {!Program.make}). *)

val expr : string -> Expr.t
(** Parses a single expression (exposed for tests and the CLI). *)
