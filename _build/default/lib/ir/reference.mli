(** Array references: an array name plus one affine subscript per
    dimension. *)

type t = { array : string; indices : Expr.t list }

val make : string -> Expr.t list -> t

val eval : (string -> int) -> t -> int list
(** Concrete index vector under an iterator environment. *)

val region : (string -> int * int) -> t -> (int * int) list
(** Per-dimension inclusive index interval touched over the given iterator
    ranges (sound, and exact for single-occurrence affine subscripts) —
    the footprint primitive. *)

val vars : t -> string list
(** Iterators appearing in any subscript. *)

val subst : string -> Expr.t -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
