type t =
  | Const of int
  | Var of string
  | Add of t * t
  | Sub of t * t
  | Mul of int * t
  | Div of t * int
  | Min of t * t
  | Max of t * t

let const n = Const n
let var x = Var x
let scale k e = Mul (k, e)
let min_ a b = Min (a, b)
let max_ a b = Max (a, b)

let rec eval env e =
  match e with
  | Const n -> n
  | Var x -> (
      try env x
      with Not_found -> invalid_arg ("Expr.eval: unbound iterator " ^ x))
  | Add (a, b) -> eval env a + eval env b
  | Sub (a, b) -> eval env a - eval env b
  | Mul (k, a) -> k * eval env a
  | Div (a, k) ->
      if k <= 0 then invalid_arg "Expr.eval: division by non-positive constant";
      (* Floor division, also correct for negative numerators. *)
      let n = eval env a in
      if n >= 0 then n / k else -(((-n) + k - 1) / k)
  | Min (a, b) -> min (eval env a) (eval env b)
  | Max (a, b) -> max (eval env a) (eval env b)

let rec bounds range e =
  match e with
  | Const n -> (n, n)
  | Var x -> range x
  | Add (a, b) ->
      let la, ha = bounds range a and lb, hb = bounds range b in
      (la + lb, ha + hb)
  | Sub (a, b) ->
      let la, ha = bounds range a and lb, hb = bounds range b in
      (la - hb, ha - lb)
  | Mul (k, a) ->
      let la, ha = bounds range a in
      if k >= 0 then (k * la, k * ha) else (k * ha, k * la)
  | Div (a, k) ->
      if k <= 0 then invalid_arg "Expr.bounds: division by non-positive constant";
      let fdiv n = if n >= 0 then n / k else -(((-n) + k - 1) / k) in
      let la, ha = bounds range a in
      (fdiv la, fdiv ha)
  | Min (a, b) ->
      let la, ha = bounds range a and lb, hb = bounds range b in
      (min la lb, min ha hb)
  | Max (a, b) ->
      let la, ha = bounds range a and lb, hb = bounds range b in
      (max la lb, max ha hb)

let vars e =
  let rec go acc = function
    | Const _ -> acc
    | Var x -> x :: acc
    | Add (a, b) | Sub (a, b) | Min (a, b) | Max (a, b) -> go (go acc a) b
    | Mul (_, a) | Div (a, _) -> go acc a
  in
  List.sort_uniq compare (go [] e)

let rec subst x by e =
  match e with
  | Const _ -> e
  | Var y -> if String.equal x y then by else e
  | Add (a, b) -> Add (subst x by a, subst x by b)
  | Sub (a, b) -> Sub (subst x by a, subst x by b)
  | Mul (k, a) -> Mul (k, subst x by a)
  | Div (a, k) -> Div (subst x by a, k)
  | Min (a, b) -> Min (subst x by a, subst x by b)
  | Max (a, b) -> Max (subst x by a, subst x by b)

let shift x k e = subst x (Add (Var x, Const k)) e

let rec simplify e =
  match e with
  | Const _ | Var _ -> e
  | Add (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (x + y)
      | Const 0, b' -> b'
      | a', Const 0 -> a'
      | a', b' -> Add (a', b'))
  | Sub (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (x - y)
      | a', Const 0 -> a'
      | a', b' -> Sub (a', b'))
  | Mul (k, a) -> (
      match (k, simplify a) with
      | 0, _ -> Const 0
      | 1, a' -> a'
      | k, Const x -> Const (k * x)
      | k, a' -> Mul (k, a'))
  | Div (a, k) -> (
      match (simplify a, k) with
      | a', 1 -> a'
      | Const x, k when x >= 0 -> Const (x / k)
      | a', k -> Div (a', k))
  | Min (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (min x y)
      | a', b' -> if a' = b' then a' else Min (a', b'))
  | Max (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (max x y)
      | a', b' -> if a' = b' then a' else Max (a', b'))

let equal a b = simplify a = simplify b

let rec pp ppf e =
  match e with
  | Const n -> Format.fprintf ppf "%d" n
  | Var x -> Format.fprintf ppf "%s" x
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (k, a) -> Format.fprintf ppf "%d*%a" k pp a
  | Div (a, k) -> Format.fprintf ppf "(%a / %d)" pp a k
  | Min (a, b) -> Format.fprintf ppf "min(%a, %a)" pp a pp b
  | Max (a, b) -> Format.fprintf ppf "max(%a, %a)" pp a pp b

let to_string e = Format.asprintf "%a" pp e

(* Shadowing arithmetic: keep these definitions last so the implementations
   above use integer arithmetic. *)
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
