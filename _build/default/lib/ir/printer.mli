(** Code emission: pretty-prints programs back to DSL syntax.

    The output re-parses to an equivalent program (round-trip property,
    tested), and is how examples show compiler-transformed code with the
    inserted power-management calls — the analogue of the paper's
    Figure 2(d). *)

val expr : Expr.t -> string
(** Infix rendering with minimal parentheses (re-parseable). *)

val stmt : Stmt.t -> string
val loop : ?indent:int -> Loop.t -> string
val program : Program.t -> string
(** Full program: array declarations followed by nests. *)

val pp_program : Format.formatter -> Program.t -> unit
