(** Cycle cost model.

    The paper converts loop iterations to cycles by timing real executions
    with [gethrtime] on a 750 MHz UltraSPARC-III.  Our substitute is an
    explicit per-statement model: one statement execution costs its [work]
    annotation plus a fixed charge per array reference, and each loop
    iteration pays a bookkeeping overhead.  The simulator uses this model
    as ground truth; the compiler sees a perturbed copy
    ({!Dpm_compiler.Estimate}), reproducing the measurement error that
    drives the paper's Table 3 mispredictions. *)

type model = {
  clock_hz : float;  (** CPU clock; paper: 750 MHz. *)
  cycles_per_ref : int;  (** Cycles per array reference (cache-resident). *)
  loop_overhead : int;  (** Cycles per loop iteration (control flow). *)
}

val default : model
(** 750 MHz, 6 cycles/reference, 4 cycles/iteration. *)

val stmt_cycles : model -> Stmt.t -> int
(** Cycles for one execution of the statement (excluding I/O stalls). *)

val body_cycles : model -> (string -> int) -> Loop.node list -> int
(** Total compute cycles of a node list under an environment binding the
    outer iterators.  Uses closed forms when inner trip counts do not
    depend on the surrounding iterators and falls back to summation for
    triangular bounds. *)

val nest_cycles : model -> Loop.t -> int
(** Total compute cycles of a whole (closed) nest. *)

val iteration_cycles : model -> (string -> int) -> Loop.t -> int
(** Cycles of a single iteration of the given loop's body (the [s] of the
    paper's pre-activation formula, Eq. 1). *)

val seconds : model -> int -> float
(** Convert cycles to seconds. *)

val cycles_of_seconds : model -> float -> int
