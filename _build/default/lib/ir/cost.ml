type model = { clock_hz : float; cycles_per_ref : int; loop_overhead : int }

let default = { clock_hz = 750.0e6; cycles_per_ref = 6; loop_overhead = 4 }

let stmt_cycles model (s : Stmt.t) =
  s.work + (model.cycles_per_ref * List.length (Stmt.refs s))

(* Whether the cycle count of [node] can depend on iterator [var]: only
   loop bounds matter (subscripts do not change the cost). *)
let rec mentions_in_bounds var node =
  match node with
  | Loop.Stmt _ | Loop.Call _ -> false
  | Loop.For l ->
      List.mem var (Expr.vars l.lo)
      || List.mem var (Expr.vars l.hi)
      || List.exists (mentions_in_bounds var) l.body

let extend env var value x = if String.equal x var then value else env x

let rec body_cycles model env nodes =
  List.fold_left (fun acc node -> acc + node_cycles model env node) 0 nodes

and node_cycles model env = function
  | Loop.Stmt s -> stmt_cycles model s
  | Loop.Call _ -> 0
  | Loop.For l -> loop_cycles model env l

and loop_cycles model env (l : Loop.t) =
  let lo = Expr.eval env l.lo and hi = Expr.eval env l.hi in
  if hi < lo then 0
  else
    let trips = ((hi - lo) / l.step) + 1 in
    let invariant = not (List.exists (mentions_in_bounds l.var) l.body) in
    if invariant then
      let once = body_cycles model (extend env l.var lo) l.body in
      trips * (once + model.loop_overhead)
    else
      let total = ref 0 in
      let v = ref lo in
      while !v <= hi do
        total :=
          !total + body_cycles model (extend env l.var !v) l.body
          + model.loop_overhead;
        v := !v + l.step
      done;
      !total

let closed_env x = invalid_arg ("Cost: unbound iterator " ^ x)
let nest_cycles model l = loop_cycles model closed_env l
let iteration_cycles model env (l : Loop.t) =
  let lo = Expr.eval env l.lo in
  body_cycles model (extend env l.var lo) l.body + model.loop_overhead

let seconds model cycles = float_of_int cycles /. model.clock_hz
let cycles_of_seconds model t = int_of_float (Float.round (t *. model.clock_hz))
