(** Array declarations.

    Every dataset the paper's benchmarks manipulate is a disk-resident
    multi-dimensional array stored in one file.  A declaration fixes the
    logical shape; how the file is striped over disks is a separate
    concern ({!Dpm_layout.Plan}).

    The IR is deliberately coarse-grained: one "element" stands for a
    contiguous chunk of the real array (e.g. a row segment), so that
    iteration counts stay in the tens of thousands while byte-level sizes
    match the paper's Table 2.  [elem_size] carries the chunk size in
    bytes. *)

type t = {
  name : string;
  dims : int list;  (** Extent of each dimension, outermost first. *)
  elem_size : int;  (** Bytes per element (modeling granularity). *)
}

val make : name:string -> dims:int list -> elem_size:int -> t
(** Validates that all extents and the element size are positive. *)

val rank : t -> int
val elements : t -> int
(** Product of the extents. *)

val size_bytes : t -> int
(** [elements t * t.elem_size]. *)

val linearize : t -> int list -> int
(** [linearize t idx] is the row-major element offset of index vector
    [idx] (0-based, outermost first).  Raises [Invalid_argument] if the
    vector has the wrong rank or an index is out of range. *)

val linearize_colmajor : t -> int list -> int
(** Column-major linearization; used after a layout transformation. *)

val pp : Format.formatter -> t -> unit
