(** Iteration walker: executes a program's loop structure in program
    order, delivering one event per statement execution and per
    power-management call.

    This is the dynamic ground truth that both the trace generator and the
    DAP validity tests are built on.  The walker maintains a single
    mutable environment, so the [env] lookup passed to callbacks is only
    valid during the callback. *)

type callbacks = {
  on_enter : nest:int -> depth:int -> var:string -> value:int -> unit;
      (** Called at the start of every loop iteration; [depth] is 0 for a
          nest's outermost loop. *)
  on_stmt : nest:int -> Stmt.t -> (string -> int) -> unit;
      (** Called per statement execution with the current environment. *)
  on_call : nest:int -> Loop.pm_call -> (string -> int) -> unit;
      (** Called per executed power-management call. *)
}

val nothing : callbacks
(** Callbacks that ignore every event. *)

val run : callbacks -> Program.t -> unit
(** Walks all nests in order. *)

val run_nest : callbacks -> nest:int -> Loop.t -> unit
(** Walks a single nest, reporting it as index [nest]. *)

val count_stmt_executions : Program.t -> int
(** Total dynamic statement count (convenience over {!run}). *)
