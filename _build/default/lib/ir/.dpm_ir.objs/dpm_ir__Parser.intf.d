lib/ir/parser.mli: Expr Program
