lib/ir/printer.mli: Expr Format Loop Program Stmt
