lib/ir/stmt.ml: Format List Option Printf Reference
