lib/ir/expr.ml: Format List String
