lib/ir/reference.mli: Expr Format
