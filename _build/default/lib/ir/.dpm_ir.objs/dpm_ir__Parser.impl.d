lib/ir/parser.ml: Array_decl Expr Lexer List Loop Printf Program Reference Stmt
