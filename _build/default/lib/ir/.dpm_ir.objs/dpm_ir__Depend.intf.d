lib/ir/depend.mli: Expr Loop Reference Stmt
