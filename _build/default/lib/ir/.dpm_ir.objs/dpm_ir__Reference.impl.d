lib/ir/reference.ml: Expr Format List String
