lib/ir/depend.ml: Expr Hashtbl List Loop Option Reference Stmt String
