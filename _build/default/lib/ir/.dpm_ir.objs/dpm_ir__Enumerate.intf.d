lib/ir/enumerate.mli: Loop Program Stmt
