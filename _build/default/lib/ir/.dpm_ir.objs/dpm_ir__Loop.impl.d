lib/ir/loop.ml: Expr Format Hashtbl List Stmt String
