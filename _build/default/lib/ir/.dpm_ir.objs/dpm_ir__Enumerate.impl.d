lib/ir/enumerate.ml: Expr Hashtbl List Loop Program Stmt
