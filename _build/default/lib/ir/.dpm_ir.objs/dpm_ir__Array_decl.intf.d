lib/ir/array_decl.mli: Format
