lib/ir/lexer.ml: List Printf String
