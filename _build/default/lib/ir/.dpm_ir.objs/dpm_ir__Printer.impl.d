lib/ir/printer.ml: Array_decl Expr Format List Loop Printf Program Reference Stmt String
