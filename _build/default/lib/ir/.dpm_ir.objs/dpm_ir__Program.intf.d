lib/ir/program.mli: Array_decl Format Loop Stmt
