lib/ir/array_decl.ml: Format List Printf String
