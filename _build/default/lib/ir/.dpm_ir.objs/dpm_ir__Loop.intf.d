lib/ir/loop.mli: Expr Format Stmt
