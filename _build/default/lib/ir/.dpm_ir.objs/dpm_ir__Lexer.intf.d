lib/ir/lexer.mli:
