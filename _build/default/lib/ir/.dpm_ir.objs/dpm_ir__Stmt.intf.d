lib/ir/stmt.mli: Expr Format Reference
