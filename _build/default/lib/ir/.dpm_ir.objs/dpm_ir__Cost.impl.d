lib/ir/cost.ml: Expr Float List Loop Stmt String
