lib/ir/program.ml: Array_decl Dpm_util Expr Format Hashtbl List Loop Reference Stmt String
