lib/ir/cost.mli: Loop Stmt
