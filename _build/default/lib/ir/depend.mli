(** Lightweight data-dependence analysis.

    Supports the two legality questions the transformation passes ask:
    whether loop distribution may separate two statements, and whether a
    nest is safely tileable.  The test is the classic constant-distance
    test on affine subscripts: exact when both subscripts share their
    linear part and differ by constants, conservative otherwise. *)

type linear = (string * int) list * int
(** Affine normal form: coefficient per iterator (sorted by name,
    zero coefficients dropped) plus a constant. *)

val normal_form : Expr.t -> linear option
(** [None] when the expression contains [Min]/[Max]/[Div] (not affine). *)

type distance =
  | Exact of int list  (** Constant distance per subscript dimension. *)
  | Unknown  (** Conservative: a dependence must be assumed. *)

val ref_distance : Reference.t -> Reference.t -> distance option
(** Distance from the first to the second reference of the {e same} array:
    [None] when the references can never alias (provably different
    constant subscripts in some dimension); [Some Unknown] when the linear
    parts differ; [Some (Exact ds)] when subscripts differ by constants.
    Returns [None] for references to different arrays. *)

val stmts_dependent : Stmt.t -> Stmt.t -> bool
(** Whether the pair shares an array with at least one write and possible
    aliasing — the condition under which program order must be
    preserved. *)

val carried_distances : Loop.t -> int list list
(** All exact dependence distance vectors (aligned with the nest's
    iterator order) between dependent statement pairs of the nest;
    [Unknown] pairs contribute no vector but are reported by
    {!has_unknown_dependence}. *)

val has_unknown_dependence : Loop.t -> bool

val tiling_legal : Loop.t -> bool
(** Conservative: every dependence is exact and every distance component
    is non-negative (the nest is fully permutable), so rectangular tiling
    preserves semantics. *)
