type linear = (string * int) list * int

let rec normal_form e =
  match e with
  | Expr.Const n -> Some ([], n)
  | Expr.Var x -> Some ([ (x, 1) ], 0)
  | Expr.Add (a, b) -> combine ( + ) a b
  | Expr.Sub (a, b) -> combine ( - ) a b
  | Expr.Mul (k, a) -> (
      match normal_form a with
      | None -> None
      | Some (coeffs, c) ->
          Some (List.map (fun (x, v) -> (x, k * v)) coeffs, k * c))
  | Expr.Div _ | Expr.Min _ | Expr.Max _ -> None

and combine op a b =
  match (normal_form a, normal_form b) with
  | Some (ca, ka), Some (cb, kb) ->
      let merged =
        List.sort_uniq compare (List.map fst ca @ List.map fst cb)
      in
      let coeff l x = try List.assoc x l with Not_found -> 0 in
      let coeffs =
        List.filter_map
          (fun x ->
            let v = op (coeff ca x) (coeff cb x) in
            if v = 0 then None else Some ((x, v) : string * int))
          merged
      in
      Some (coeffs, op ka kb)
  | _ -> None

type distance = Exact of int list | Unknown

let ref_distance (a : Reference.t) (b : Reference.t) =
  if not (String.equal a.array b.array) then None
  else if List.length a.indices <> List.length b.indices then Some Unknown
  else if List.for_all2 Expr.equal a.indices b.indices then
    (* Syntactically identical subscripts always touch the same element
       in the same iteration: zero distance, even when the expressions
       are not affine (e.g. [i/25]). *)
    Some (Exact (List.map (fun _ -> 0) a.indices))
  else
    let dims =
      List.map2
        (fun ea eb ->
          match (normal_form ea, normal_form eb) with
          | Some (ca, ka), Some (cb, kb) when ca = cb -> `Const (kb - ka, ca = [])
          | _ -> `Unknown)
        a.indices b.indices
    in
    (* Two constant subscripts that differ mean the references can never
       touch the same element. *)
    let never_alias =
      List.exists
        (function `Const (d, true) when d <> 0 -> true | _ -> false)
        dims
    in
    if never_alias then None
    else if List.for_all (function `Const _ -> true | `Unknown -> false) dims
    then
      Some
        (Exact
           (List.map
              (function `Const (d, _) -> d | `Unknown -> assert false)
              dims))
    else Some Unknown

let stmts_dependent (s1 : Stmt.t) (s2 : Stmt.t) =
  let pairs_conflict r1 r2 =
    match ref_distance r1 r2 with None -> false | Some _ -> true
  in
  let writes s = match s.Stmt.write with None -> [] | Some w -> [ w ] in
  let any l1 l2 = List.exists (fun a -> List.exists (pairs_conflict a) l2) l1 in
  any (writes s1) (Stmt.refs s2) || any (Stmt.refs s1) (writes s2)

(* Map a subscript-space distance vector onto the nest's iterator order:
   the distance in iterator [v] induced by subscript distances.  We only
   track subscripts of the form v + c (unit coefficient on one iterator),
   which covers the stencil-style codes in the suite; anything else is
   treated as Unknown by [ref_distance] upstream. *)
let iter_distance iterators (r : Reference.t) dists =
  let per_iter = Hashtbl.create 8 in
  let ok = ref true in
  List.iter2
    (fun e d ->
      match normal_form e with
      | Some ([ (v, 1) ], _) ->
          let prev = Option.value ~default:d (Hashtbl.find_opt per_iter v) in
          if prev <> d then ok := false;
          Hashtbl.replace per_iter v d
      | Some ([], _) -> if d <> 0 then ok := false
      | _ -> if d <> 0 then ok := false)
    r.indices dists;
  if not !ok then None
  else
    Some
      (List.map
         (fun v -> Option.value ~default:0 (Hashtbl.find_opt per_iter v))
         iterators)

let dependence_pairs (l : Loop.t) =
  let stmts = Loop.stmts l in
  let pairs = ref [] in
  List.iteri
    (fun i s1 ->
      List.iteri
        (fun j s2 -> if j >= i then pairs := (s1, s2) :: !pairs)
        stmts)
    stmts;
  !pairs

let carried_info (l : Loop.t) =
  let iterators = Loop.iterators l in
  let exact = ref [] in
  let unknown = ref false in
  let writes (s : Stmt.t) = match s.write with None -> [] | Some w -> [ w ] in
  (* A constant-distance pair read in the opposite order yields the
     negated vector for the same dependence; normalize to the
     lexicographically non-negative representative (source before sink). *)
  let normalize vec =
    let rec sign = function
      | [] -> 0
      | 0 :: rest -> sign rest
      | d :: _ -> compare d 0
    in
    if sign vec < 0 then List.map (fun d -> -d) vec else vec
  in
  let consider r1 r2 =
    match ref_distance r1 r2 with
    | None -> ()
    | Some Unknown -> unknown := true
    | Some (Exact ds) -> (
        if List.exists (fun d -> d <> 0) ds then
          match iter_distance iterators r1 ds with
          | Some vec -> exact := normalize vec :: !exact
          | None -> unknown := true)
  in
  List.iter
    (fun (s1, s2) ->
      List.iter (fun w -> List.iter (consider w) (Stmt.refs s2)) (writes s1);
      List.iter (fun w -> List.iter (consider w) (writes s2)) (Stmt.refs s1))
    (dependence_pairs l);
  (List.rev !exact, !unknown)

let carried_distances l = fst (carried_info l)
let has_unknown_dependence l = snd (carried_info l)

let tiling_legal l =
  let exact, unknown = carried_info l in
  (not unknown)
  && List.for_all (fun vec -> List.for_all (fun d -> d >= 0) vec) exact
