type token =
  | IDENT of string
  | INT of int
  | KW_ARRAY
  | KW_FOR
  | KW_TO
  | KW_STEP
  | KW_WORK
  | KW_USE
  | KW_SPIN_DOWN
  | KW_SPIN_UP
  | KW_SET_RPM
  | KW_MIN
  | KW_MAX
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | EQUALS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | COMMA
  | COLON
  | SEMI
  | EOF

exception Error of { line : int; message : string }

let keyword_of_string = function
  | "array" -> Some KW_ARRAY
  | "for" -> Some KW_FOR
  | "to" -> Some KW_TO
  | "step" -> Some KW_STEP
  | "work" -> Some KW_WORK
  | "use" -> Some KW_USE
  | "spin_down" -> Some KW_SPIN_DOWN
  | "spin_up" -> Some KW_SPIN_UP
  | "set_rpm" | "set_RPM" -> Some KW_SET_RPM
  | "min" -> Some KW_MIN
  | "max" -> Some KW_MAX
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let tokens = ref [] in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (
      incr line;
      incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if is_digit c then (
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      emit (INT (int_of_string (String.sub src start (!i - start)))))
    else if is_ident_start c then (
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      match keyword_of_string word with
      | Some kw -> emit kw
      | None -> emit (IDENT word))
    else (
      (match c with
      | '[' -> emit LBRACKET
      | ']' -> emit RBRACKET
      | '{' -> emit LBRACE
      | '}' -> emit RBRACE
      | '(' -> emit LPAREN
      | ')' -> emit RPAREN
      | '=' -> emit EQUALS
      | '+' -> emit PLUS
      | '-' -> emit MINUS
      | '*' -> emit STAR
      | '/' -> emit SLASH
      | ',' -> emit COMMA
      | ':' -> emit COLON
      | ';' -> emit SEMI
      | _ ->
          raise
            (Error
               {
                 line = !line;
                 message = Printf.sprintf "unexpected character %C" c;
               }));
      incr i)
  done;
  emit EOF;
  List.rev !tokens

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | KW_ARRAY -> "'array'"
  | KW_FOR -> "'for'"
  | KW_TO -> "'to'"
  | KW_STEP -> "'step'"
  | KW_WORK -> "'work'"
  | KW_USE -> "'use'"
  | KW_SPIN_DOWN -> "'spin_down'"
  | KW_SPIN_UP -> "'spin_up'"
  | KW_SET_RPM -> "'set_rpm'"
  | KW_MIN -> "'min'"
  | KW_MAX -> "'max'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | EQUALS -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | COMMA -> "','"
  | COLON -> "':'"
  | SEMI -> "';'"
  | EOF -> "end of input"
