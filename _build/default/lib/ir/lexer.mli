(** Lexer for the loop-nest DSL (see {!Parser} for the grammar).

    Hand-written so the reproduction has no build-time dependencies beyond
    the stdlib.  [#] starts a comment running to end of line. *)

type token =
  | IDENT of string
  | INT of int
  | KW_ARRAY
  | KW_FOR
  | KW_TO
  | KW_STEP
  | KW_WORK
  | KW_USE
  | KW_SPIN_DOWN
  | KW_SPIN_UP
  | KW_SET_RPM
  | KW_MIN
  | KW_MAX
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | EQUALS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | COMMA
  | COLON
  | SEMI
  | EOF

exception Error of { line : int; message : string }
(** Raised on an unexpected character. *)

val tokenize : string -> (token * int) list
(** Token stream with 1-based line numbers, terminated by [EOF]. *)

val describe : token -> string
(** Human-readable token name for error messages. *)
