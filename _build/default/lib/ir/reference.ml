type t = { array : string; indices : Expr.t list }

let make array indices =
  if indices = [] then invalid_arg "Reference.make: no subscripts";
  { array; indices }

let eval env t = List.map (Expr.eval env) t.indices
let region range t = List.map (Expr.bounds range) t.indices

let vars t =
  List.sort_uniq compare (List.concat_map Expr.vars t.indices)

let subst x by t = { t with indices = List.map (Expr.subst x by) t.indices }

let equal a b =
  String.equal a.array b.array
  && List.length a.indices = List.length b.indices
  && List.for_all2 Expr.equal a.indices b.indices

let pp ppf t =
  Format.fprintf ppf "%s%s" t.array
    (String.concat ""
       (List.map (fun e -> "[" ^ Expr.to_string e ^ "]") t.indices))
