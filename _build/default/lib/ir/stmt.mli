(** Statements: one write reference, a list of read references, and a
    compute-work annotation.

    The work annotation is the number of CPU cycles one execution of the
    statement spends outside the modeled I/O (it stands for the inner
    arithmetic the coarse-grained IR does not represent, cf.
    {!Dpm_ir.Array_decl}).  It feeds the cost model that converts loop
    iterations into cycles — the role `gethrtime` calibration plays in the
    paper. *)

type t = {
  label : string;  (** Stable identifier, unique within a program. *)
  write : Reference.t option;  (** [None] for pure-read statements. *)
  reads : Reference.t list;
  work : int;  (** Compute cycles per execution. *)
}

val make :
  ?label:string -> ?write:Reference.t -> ?work:int -> Reference.t list -> t
(** [make ~label ~write ~work reads].  [work] defaults to 0; [label]
    defaults to a fresh ["s<n>"] name. *)

val refs : t -> Reference.t list
(** Write (if any) followed by reads. *)

val arrays : t -> string list
(** Names of all arrays referenced, sorted, without duplicates. *)

val subst : string -> Expr.t -> t -> t
(** Substitute an iterator in every subscript. *)

val pp : Format.formatter -> t -> unit
