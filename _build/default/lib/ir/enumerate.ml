type callbacks = {
  on_enter : nest:int -> depth:int -> var:string -> value:int -> unit;
  on_stmt : nest:int -> Stmt.t -> (string -> int) -> unit;
  on_call : nest:int -> Loop.pm_call -> (string -> int) -> unit;
}

let nothing =
  {
    on_enter = (fun ~nest:_ ~depth:_ ~var:_ ~value:_ -> ());
    on_stmt = (fun ~nest:_ _ _ -> ());
    on_call = (fun ~nest:_ _ _ -> ());
  }

let run_nest cb ~nest loop =
  let env_tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let env x =
    match Hashtbl.find_opt env_tbl x with
    | Some v -> v
    | None -> invalid_arg ("Enumerate: unbound iterator " ^ x)
  in
  let rec exec_loop depth (l : Loop.t) =
    let lo = Expr.eval env l.lo and hi = Expr.eval env l.hi in
    let v = ref lo in
    while !v <= hi do
      Hashtbl.replace env_tbl l.var !v;
      cb.on_enter ~nest ~depth ~var:l.var ~value:!v;
      List.iter (exec_node depth) l.body;
      v := !v + l.step
    done;
    Hashtbl.remove env_tbl l.var
  and exec_node depth = function
    | Loop.For l -> exec_loop (depth + 1) l
    | Loop.Stmt s -> cb.on_stmt ~nest s env
    | Loop.Call c -> cb.on_call ~nest c env
  in
  exec_loop 0 loop

let empty_env x = invalid_arg ("Enumerate: unbound iterator " ^ x)

let run cb (p : Program.t) =
  List.iteri
    (fun nest node ->
      match node with
      | Loop.For l -> run_nest cb ~nest l
      | Loop.Stmt s -> cb.on_stmt ~nest s empty_env
      | Loop.Call c -> cb.on_call ~nest c empty_env)
    p.body

let count_stmt_executions p =
  let n = ref 0 in
  run { nothing with on_stmt = (fun ~nest:_ _ _ -> incr n) } p;
  !n
