type t = { name : string; arrays : Array_decl.t list; body : Loop.node list }

let validate t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (a : Array_decl.t) ->
      if Hashtbl.mem tbl a.name then
        invalid_arg ("Program: duplicate array " ^ a.name);
      Hashtbl.add tbl a.name a)
    t.arrays;
  let check_ref bound (r : Reference.t) =
    match Hashtbl.find_opt tbl r.array with
    | None -> invalid_arg ("Program: undeclared array " ^ r.array)
    | Some decl ->
        if List.length r.indices <> Array_decl.rank decl then
          invalid_arg ("Program: rank mismatch for " ^ r.array);
        List.iter
          (fun e ->
            List.iter
              (fun v ->
                if not (List.mem v bound) then
                  invalid_arg ("Program: unbound iterator " ^ v))
              (Expr.vars e))
          r.indices
  in
  let check_expr bound e =
    List.iter
      (fun v ->
        if not (List.mem v bound) then
          invalid_arg ("Program: unbound iterator " ^ v ^ " in loop bound"))
      (Expr.vars e)
  in
  let rec check_node bound = function
    | Loop.For l ->
        check_expr bound l.lo;
        check_expr bound l.hi;
        List.iter (check_node (l.var :: bound)) l.body
    | Loop.Stmt s -> List.iter (check_ref bound) (Stmt.refs s)
    | Loop.Call _ -> ()
  in
  List.iter (check_node []) t.body;
  t

let make ~name ~arrays ~body = validate { name; arrays; body }

let of_nests ~name ~arrays nests =
  make ~name ~arrays ~body:(List.map (fun l -> Loop.For l) nests)

let find_array t name =
  List.find (fun (a : Array_decl.t) -> String.equal a.name name) t.arrays

let total_data_bytes t =
  List.fold_left (fun acc a -> acc + Array_decl.size_bytes a) 0 t.arrays

let nests t =
  List.filteri (fun _ _ -> true) t.body
  |> List.mapi (fun i node -> (i, node))
  |> List.filter_map (fun (i, node) ->
         match node with
         | Loop.For l -> Some (i, l)
         | Loop.Stmt _ | Loop.Call _ -> None)

let item_count t = List.length t.body

let arrays_of_item t i =
  match List.nth t.body i with
  | Loop.For l -> Loop.arrays l
  | Loop.Stmt s -> Stmt.arrays s
  | Loop.Call _ -> []

let with_body t body = validate { t with body }

let stmts t =
  List.concat_map
    (function
      | Loop.For l -> Loop.stmts l
      | Loop.Stmt s -> [ s ]
      | Loop.Call _ -> [])
    t.body

let pp ppf t =
  Format.fprintf ppf "program %s: %d arrays (%a), %d items" t.name
    (List.length t.arrays) Dpm_util.Units.pp_bytes (total_data_bytes t)
    (List.length t.body)
