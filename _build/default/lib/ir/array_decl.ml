type t = { name : string; dims : int list; elem_size : int }

let make ~name ~dims ~elem_size =
  if dims = [] then invalid_arg "Array_decl.make: zero-rank array";
  List.iter
    (fun d -> if d <= 0 then invalid_arg "Array_decl.make: non-positive extent")
    dims;
  if elem_size <= 0 then invalid_arg "Array_decl.make: non-positive element size";
  { name; dims; elem_size }

let rank t = List.length t.dims
let elements t = List.fold_left ( * ) 1 t.dims
let size_bytes t = elements t * t.elem_size

let check_index t idx =
  if List.length idx <> rank t then
    invalid_arg ("Array_decl: wrong index rank for " ^ t.name);
  List.iter2
    (fun i d ->
      if i < 0 || i >= d then
        invalid_arg
          (Printf.sprintf "Array_decl: index %d out of range [0,%d) for %s" i d
             t.name))
    idx t.dims

let linearize t idx =
  check_index t idx;
  List.fold_left2 (fun acc i d -> (acc * d) + i) 0 idx t.dims

let linearize_colmajor t idx =
  check_index t idx;
  (* Fold from the innermost (last) dimension outwards. *)
  List.fold_left2
    (fun acc i d -> (acc * d) + i)
    0 (List.rev idx) (List.rev t.dims)

let pp ppf t =
  Format.fprintf ppf "array %s%s : %dB" t.name
    (String.concat "" (List.map (Printf.sprintf "[%d]") t.dims))
    t.elem_size
