(** Loop nests and power-management calls.

    A nest is a tree of [for] loops over statements; the compiler's output
    additionally contains explicit disk power-management calls — the
    paper's [spin_down(disk)], [spin_up(disk)] and
    [set_RPM(level, disk)] — inserted between statements. *)

type pm_call =
  | Spin_down of int  (** TPM: send disk to standby. *)
  | Spin_up of int  (** TPM: pre-activate disk (paper Eq. 1 placement). *)
  | Set_rpm of { level : int; disk : int }
      (** DRPM: change disk speed to RPM level index [level]
          (0 = lowest supported, cf. {!Dpm_disk.Rpm}). *)

type node =
  | For of t
  | Stmt of Stmt.t
  | Call of pm_call

and t = {
  var : string;
  lo : Expr.t;  (** Inclusive lower bound. *)
  hi : Expr.t;  (** Inclusive upper bound. *)
  step : int;  (** Positive. *)
  body : node list;
}

val for_ : string -> ?step:int -> Expr.t -> Expr.t -> node list -> t
(** [for_ var lo hi body]; validates the step. *)

val trip_count : (string -> int) -> t -> int
(** Number of iterations under an environment binding the outer
    iterators; 0 when the range is empty. *)

val stmts : t -> Stmt.t list
(** All statements, in textual order. *)

val calls : t -> pm_call list
(** All power-management calls, in textual order. *)

val arrays : t -> string list
(** All arrays referenced anywhere in the nest. *)

val iterators : t -> string list
(** Iterator names from outermost in, in nesting order (pre-order;
    duplicates removed). *)

val depth : t -> int
(** Maximum loop nesting depth. *)

val map_stmts : (Stmt.t -> Stmt.t) -> t -> t
(** Rewrite every statement in place, preserving structure. *)

val substitute : string -> Expr.t -> t -> t
(** Substitute an iterator expression in all bounds and subscripts of the
    nest (does not rename the nest's own loops). *)

val pp_call : Format.formatter -> pm_call -> unit
