type pm_call =
  | Spin_down of int
  | Spin_up of int
  | Set_rpm of { level : int; disk : int }

type node = For of t | Stmt of Stmt.t | Call of pm_call

and t = {
  var : string;
  lo : Expr.t;
  hi : Expr.t;
  step : int;
  body : node list;
}

let for_ var ?(step = 1) lo hi body =
  if step <= 0 then invalid_arg "Loop.for_: step must be positive";
  { var; lo; hi; step; body }

let trip_count env t =
  let lo = Expr.eval env t.lo and hi = Expr.eval env t.hi in
  if hi < lo then 0 else ((hi - lo) / t.step) + 1

let rec fold_nodes f acc nodes =
  List.fold_left
    (fun acc node ->
      match node with
      | For l -> fold_nodes f acc l.body
      | Stmt _ | Call _ -> f acc node)
    acc nodes

let stmts t =
  List.rev
    (fold_nodes
       (fun acc n -> match n with Stmt s -> s :: acc | For _ | Call _ -> acc)
       [] [ For t ])

let calls t =
  List.rev
    (fold_nodes
       (fun acc n -> match n with Call c -> c :: acc | For _ | Stmt _ -> acc)
       [] [ For t ])

let arrays t =
  List.sort_uniq compare (List.concat_map Stmt.arrays (stmts t))

let iterators t =
  let rec go acc node =
    match node with
    | For l -> List.fold_left go (l.var :: acc) l.body
    | Stmt _ | Call _ -> acc
  in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v then false
      else (
        Hashtbl.add seen v ();
        true))
    (List.rev (go [] (For t)))

let rec depth t =
  let sub =
    List.fold_left
      (fun acc node ->
        match node with
        | For l -> max acc (depth l)
        | Stmt _ | Call _ -> acc)
      0 t.body
  in
  1 + sub

let rec map_stmts f t = { t with body = List.map (map_node f) t.body }

and map_node f = function
  | For l -> For (map_stmts f l)
  | Stmt s -> Stmt (f s)
  | Call c -> Call c

let rec substitute x by t =
  {
    t with
    lo = Expr.subst x by t.lo;
    hi = Expr.subst x by t.hi;
    body = List.map (substitute_node x by) t.body;
  }

and substitute_node x by = function
  | For l ->
      (* An inner loop redefining [x] shadows the substitution. *)
      if String.equal l.var x then
        For { l with lo = Expr.subst x by l.lo; hi = Expr.subst x by l.hi }
      else For (substitute x by l)
  | Stmt s -> Stmt (Stmt.subst x by s)
  | Call c -> Call c

let pp_call ppf = function
  | Spin_down d -> Format.fprintf ppf "spin_down(disk%d)" d
  | Spin_up d -> Format.fprintf ppf "spin_up(disk%d)" d
  | Set_rpm { level; disk } ->
      Format.fprintf ppf "set_RPM(level%d, disk%d)" level disk
