(** Affine integer expressions over loop iterators.

    Subscript expressions and loop bounds in the IR are affine in the
    enclosing loop iterators (plus [Min]/[Max], which show up in tiled
    bounds).  The compiler passes rely on two operations: exact evaluation
    under an environment (used by the iteration walker and the trace
    generator) and sound interval bounds (used by the footprint analysis
    to compute the array region a whole sub-nest touches). *)

type t =
  | Const of int
  | Var of string  (** A loop iterator. *)
  | Add of t * t
  | Sub of t * t
  | Mul of int * t  (** Scaling by a constant keeps the expression affine. *)
  | Div of t * int  (** Floor division by a positive constant (tiling). *)
  | Min of t * t
  | Max of t * t

val const : int -> t
val var : string -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val scale : int -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t

val eval : (string -> int) -> t -> int
(** [eval env e] evaluates exactly.  [env] raises [Not_found] for unbound
    iterators, which {!eval} converts into [Invalid_argument] carrying the
    iterator name. *)

val bounds : (string -> int * int) -> t -> int * int
(** [bounds range e] returns a sound enclosing interval of [e] given
    inclusive ranges for each iterator (interval arithmetic; exact for
    affine expressions when each variable occurs once). *)

val vars : t -> string list
(** Iterators occurring in the expression, sorted, without duplicates. *)

val subst : string -> t -> t -> t
(** [subst x by e] replaces iterator [x] with expression [by] in [e]. *)

val shift : string -> int -> t -> t
(** [shift x k e] substitutes [x + k] for [x]; used by strip-mining. *)

val simplify : t -> t
(** Constant folding and neutral-element elimination. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
