type 'k node = {
  key : 'k;
  mutable prev : 'k node option;
  mutable next : 'k node option;
}

type 'k t = {
  cap : int;
  table : ('k, 'k node) Hashtbl.t;
  mutable head : 'k node option; (* most recently used *)
  mutable tail : 'k node option; (* least recently used *)
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  {
    cap = capacity;
    table = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    hit_count = 0;
    miss_count = 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.table
let mem t k = Hashtbl.mem t.table k

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let access t k =
  match Hashtbl.find_opt t.table k with
  | Some node ->
      t.hit_count <- t.hit_count + 1;
      unlink t node;
      push_front t node;
      `Hit
  | None ->
      t.miss_count <- t.miss_count + 1;
      if t.cap = 0 then `Miss None
      else begin
        let evicted =
          if Hashtbl.length t.table >= t.cap then
            match t.tail with
            | Some lru ->
                unlink t lru;
                Hashtbl.remove t.table lru.key;
                Some lru.key
            | None -> None
          else None
        in
        let node = { key = k; prev = None; next = None } in
        Hashtbl.replace t.table k node;
        push_front t node;
        `Miss evicted
      end

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.hit_count <- 0;
  t.miss_count <- 0

let hits t = t.hit_count
let misses t = t.miss_count
