(** Block-granularity LRU buffer cache.

    The paper assumes "each array reference causes a disk access unless
    the data is captured in the buffer cache".  The trace generator
    filters reference events through this cache, so only misses become
    disk requests.  Keys identify a stripe unit of an array file
    ([(array, unit)] pairs encoded by the caller); a capacity of zero
    disables caching.

    Implementation: hash table plus intrusive doubly-linked recency list;
    all operations O(1). *)

type 'k t

val create : capacity:int -> 'k t
(** [capacity] is the number of blocks held; raises [Invalid_argument] if
    negative. *)

val capacity : 'k t -> int
val length : 'k t -> int

val access : 'k t -> 'k -> [ `Hit | `Miss of 'k option ]
(** [access t k] touches block [k]: [`Hit] if resident (promoted to most
    recently used); [`Miss evicted] otherwise, after inserting [k] and
    evicting the least recently used block if the cache was full. *)

val mem : 'k t -> 'k -> bool
(** Residency test without promoting. *)

val clear : 'k t -> unit

val hits : 'k t -> int
val misses : 'k t -> int
(** Cumulative counters since creation / {!clear}. *)
