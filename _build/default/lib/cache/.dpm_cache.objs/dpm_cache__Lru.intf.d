lib/cache/lru.mli:
