(** Simulation outcomes: everything the experiments report.

    Energy means disk-subsystem energy; execution time is the completion
    time of the whole application run (paper §4.1). *)

type disk_stats = {
  energy : float;
  busy : (float * float) list;  (** Service intervals, sorted. *)
  requests : int;
  transitions : int;  (** RPM modulations. *)
  spin_downs : int;
  level_residency : float array;
  standby_time : float;
}

type t = {
  scheme : string;
  program : string;
  exec_time : float;  (** Seconds. *)
  energy : float;  (** Joules, summed over disks. *)
  disks : disk_stats array;
  gap_choices : (int * float * int) list;
      (** (disk, time, target level) for every down-modulation decision
          taken; used for the Table 3 misprediction comparison. *)
}

val requests : t -> int

val idle_gaps : t -> disk:int -> (float * float) list
(** Complement of the disk's busy intervals over [\[0, exec_time)] —
    the idle periods an oracle can exploit. *)

val normalized_energy : t -> base:t -> float
val normalized_time : t -> base:t -> float

val summary : t -> string
(** One-line human-readable summary. *)
