lib/sim/oracle.mli: Config Dpm_disk Result
