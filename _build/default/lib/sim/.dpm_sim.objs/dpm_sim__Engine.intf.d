lib/sim/engine.mli: Config Dpm_trace Policy Result
