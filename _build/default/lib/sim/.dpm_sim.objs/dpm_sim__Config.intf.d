lib/sim/config.mli: Dpm_disk
