lib/sim/result.mli:
