lib/sim/policy.mli: Config Disk_state
