lib/sim/disk_state.mli: Dpm_disk
