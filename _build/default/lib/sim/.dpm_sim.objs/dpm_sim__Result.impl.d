lib/sim/result.ml: Array Dpm_util Printf
