lib/sim/disk_state.ml: Array Dpm_disk List
