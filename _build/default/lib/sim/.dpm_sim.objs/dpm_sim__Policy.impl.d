lib/sim/policy.ml: Array Config Disk_state Dpm_disk Float
