lib/sim/engine.ml: Array Config Disk_state Dpm_disk Dpm_trace Float List Policy Result String
