lib/sim/oracle.ml: Array Config Dpm_disk List Result
