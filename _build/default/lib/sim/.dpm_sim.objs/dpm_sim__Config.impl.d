lib/sim/config.ml: Dpm_disk
