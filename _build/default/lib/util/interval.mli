(** Half-open interval lists over floats.

    The simulator and the compiler both reason about disk timelines as
    unions of half-open intervals [\[lo, hi)]: busy periods, idle gaps,
    low-power residencies.  This module provides a normalized
    representation (sorted, disjoint, non-empty, non-adjacent) and the
    algebra needed to turn an access timeline into an idle-gap list. *)

type t
(** A normalized set of disjoint half-open intervals. *)

val empty : t
val is_empty : t -> bool

val of_list : (float * float) list -> t
(** Builds a normalized set from arbitrary (possibly overlapping, unsorted,
    or empty) pairs; pairs with [hi <= lo] are dropped. *)

val to_list : t -> (float * float) list
(** Sorted, disjoint, non-adjacent intervals with [lo < hi]. *)

val singleton : float -> float -> t
(** [singleton lo hi]; empty if [hi <= lo]. *)

val add : t -> float -> float -> t
(** Union with a single interval. *)

val union : t -> t -> t
val inter : t -> t -> t

val complement : lo:float -> hi:float -> t -> t
(** [complement ~lo ~hi s] is [\[lo, hi)] minus [s]: the gaps. *)

val measure : t -> float
(** Total length. *)

val count : t -> int
(** Number of maximal intervals. *)

val mem : t -> float -> bool
(** Point membership. *)

val gaps_longer_than : float -> t -> (float * float) list
(** Maximal intervals of length strictly greater than the threshold. *)

val pp : Format.formatter -> t -> unit
