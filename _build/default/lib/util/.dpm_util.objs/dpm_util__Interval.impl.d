lib/util/interval.ml: Format List
