lib/util/stats.mli:
