lib/util/table.mli:
