lib/util/rng.mli:
