lib/util/stats.ml: List
