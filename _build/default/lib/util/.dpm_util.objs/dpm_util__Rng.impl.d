lib/util/rng.ml: Array Char Int64 String
