(** Unit conventions and conversions.

    Internally the whole code base uses SI base units: seconds for time,
    bytes for sizes, joules for energy, watts for power.  The paper mixes
    milliseconds, kilobytes and megabytes; these helpers keep conversions
    in one place and the call sites readable. *)

val kib : int -> int
(** [kib n] is [n] kibibytes in bytes. *)

val mib : int -> int
(** [mib n] is [n] mebibytes in bytes. *)

val bytes_of_mb : float -> int
(** Fractional mebibytes to bytes (rounded); Table 2 sizes are given in
    fractional MB. *)

val mb_of_bytes : int -> float
val ms : float -> float
(** Milliseconds to seconds. *)

val s_to_ms : float -> float
val us : float -> float
(** Microseconds to seconds. *)

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable size, e.g. ["176.7 MB"]. *)

val pp_seconds : Format.formatter -> float -> unit
(** Human-readable duration, e.g. ["248.79 s"] or ["3.40 ms"]. *)

val pp_joules : Format.formatter -> float -> unit
