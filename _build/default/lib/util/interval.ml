type t = (float * float) list
(* Invariant: sorted by [lo]; for consecutive (l1,h1) (l2,h2): h1 < l2;
   every pair satisfies lo < hi. *)

let empty = []
let is_empty s = s = []
let to_list s = s

let normalize pairs =
  let pairs = List.filter (fun (lo, hi) -> hi > lo) pairs in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) pairs in
  (* Merge overlapping or touching intervals. *)
  let rec merge = function
    | [] -> []
    | [ x ] -> [ x ]
    | (l1, h1) :: (l2, h2) :: rest ->
        if l2 <= h1 then merge ((l1, max h1 h2) :: rest)
        else (l1, h1) :: merge ((l2, h2) :: rest)
  in
  merge sorted

let of_list pairs = normalize pairs
let singleton lo hi = if hi <= lo then [] else [ (lo, hi) ]
let add s lo hi = normalize ((lo, hi) :: s)
let union a b = normalize (a @ b)

let inter a b =
  let rec go a b acc =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | (l1, h1) :: ra, (l2, h2) :: rb ->
        let lo = max l1 l2 and hi = min h1 h2 in
        let acc = if hi > lo then (lo, hi) :: acc else acc in
        if h1 < h2 then go ra b acc else go a rb acc
  in
  go a b []

let complement ~lo ~hi s =
  let rec go cursor = function
    | [] -> singleton cursor hi
    | (l, h) :: rest ->
        let before = singleton cursor (min l hi) in
        before @ go (max cursor h) rest
  in
  normalize (go lo s)

let measure s = List.fold_left (fun a (lo, hi) -> a +. (hi -. lo)) 0.0 s
let count = List.length
let mem s x = List.exists (fun (lo, hi) -> x >= lo && x < hi) s

let gaps_longer_than threshold s =
  List.filter (fun (lo, hi) -> hi -. lo > threshold) s

let pp ppf s =
  Format.fprintf ppf "{";
  List.iteri
    (fun i (lo, hi) ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "[%g,%g)" lo hi)
    s;
  Format.fprintf ppf "}"
