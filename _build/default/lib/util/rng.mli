(** Deterministic pseudo-random number generation.

    All stochastic elements of the reproduction (compiler estimation error,
    seek-distance jitter) draw from this splittable linear-congruential
    generator so that every experiment is bit-reproducible across runs and
    machines.  The stdlib [Random] module is deliberately not used: its
    algorithm changed between OCaml releases, which would silently change
    the reproduced numbers. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Two generators created with the
    same seed produce identical streams. *)

val split : t -> string -> t
(** [split t tag] derives an independent generator from [t]'s seed and
    [tag].  Splitting is by value: it does not advance [t], and the derived
    stream depends only on the original seed and the tag, so adding a new
    consumer never perturbs existing streams. *)

val bits : t -> int
(** [bits t] returns 30 uniformly distributed bits and advances [t]. *)

val int : t -> int -> int
(** [int t n] is uniform on [\[0, n)].  [n] must be positive. *)

val float : t -> float -> float
(** [float t x] is uniform on [\[0, x)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform on [\[lo, hi)]. *)

val symmetric : t -> float -> float
(** [symmetric t a] is uniform on [\[-a, a)]; used for relative-error
    perturbations. *)

val shuffle : t -> 'a array -> unit
(** Fisher-Yates in-place shuffle. *)
