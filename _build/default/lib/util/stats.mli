(** Small descriptive-statistics helpers used by the simulator results and
    the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 on the empty list. *)

val total : float list -> float
(** Sum. *)

val minimum : float list -> float
(** Smallest element; raises [Invalid_argument] on the empty list. *)

val maximum : float list -> float
(** Largest element; raises [Invalid_argument] on the empty list. *)

val variance : float list -> float
(** Population variance; 0 for fewer than two samples. *)

val stddev : float list -> float
(** Square root of {!variance}. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0, 100\]], nearest-rank on the sorted
    sample.  Raises [Invalid_argument] on the empty list. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], or 0 when [b = 0]; used for normalizations. *)

type accumulator
(** Streaming accumulator: count, sum, min, max, sum of squares. *)

val acc_create : unit -> accumulator
val acc_add : accumulator -> float -> unit
val acc_count : accumulator -> int
val acc_mean : accumulator -> float
val acc_sum : accumulator -> float
val acc_min : accumulator -> float
val acc_max : accumulator -> float
val acc_stddev : accumulator -> float
