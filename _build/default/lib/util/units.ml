let kib n = n * 1024
let mib n = n * 1024 * 1024
let bytes_of_mb x = int_of_float (Float.round (x *. 1024.0 *. 1024.0))
let mb_of_bytes b = float_of_int b /. (1024.0 *. 1024.0)
let ms x = x /. 1000.0
let s_to_ms x = x *. 1000.0
let us x = x /. 1_000_000.0

let pp_bytes ppf b =
  let fb = float_of_int b in
  if b >= mib 1 then Format.fprintf ppf "%.1f MB" (fb /. 1048576.0)
  else if b >= kib 1 then Format.fprintf ppf "%.1f KB" (fb /. 1024.0)
  else Format.fprintf ppf "%d B" b

let pp_seconds ppf t =
  if Float.abs t >= 1.0 then Format.fprintf ppf "%.2f s" t
  else if Float.abs t >= 0.001 then Format.fprintf ppf "%.2f ms" (t *. 1000.0)
  else Format.fprintf ppf "%.1f us" (t *. 1_000_000.0)

let pp_joules ppf e =
  if Float.abs e >= 1000.0 then Format.fprintf ppf "%.2f kJ" (e /. 1000.0)
  else Format.fprintf ppf "%.2f J" e
