type t = { mutable state : int64 }

(* Constants from Knuth's MMIX LCG; we keep the top 30 bits of the 64-bit
   state, which pass the (weak) statistical needs of this code base. *)
let multiplier = 6364136223846793005L
let increment = 1442695040888963407L

let create seed = { state = Int64.of_int (seed land max_int) }

let step t =
  t.state <- Int64.add (Int64.mul t.state multiplier) increment;
  t.state

let bits t = Int64.to_int (Int64.shift_right_logical (step t) 34)

(* FNV-1a over the tag, folded into the parent's seed.  Uses the current
   state value but does not advance it, keeping [split] by-value. *)
let split t tag =
  let h = ref (Int64.to_int (Int64.shift_right_logical t.state 1)) in
  String.iter
    (fun c ->
      h := (!h lxor Char.code c) * 0x100000001b3 land max_int)
    tag;
  create !h

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits t in
    let v = r mod n in
    if r - v > 0x3FFFFFFF - n + 1 then draw () else v
  in
  draw ()

let float t x = float_of_int (bits t) /. 1073741824.0 *. x
let uniform t lo hi = lo +. float t (hi -. lo)
let symmetric t a = uniform t (-.a) a

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
