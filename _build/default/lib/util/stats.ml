let total = List.fold_left ( +. ) 0.0

let mean = function
  | [] -> 0.0
  | xs -> total xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
      let logsum = List.fold_left (fun a x -> a +. log x) 0.0 xs in
      exp (logsum /. float_of_int (List.length xs))

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: xs -> List.fold_left max x xs

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      List.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs /. n

let stddev xs = sqrt (variance xs)

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  let rank =
    int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1
  in
  let rank = max 0 (min (n - 1) rank) in
  List.nth sorted rank

let ratio a b = if b = 0.0 then 0.0 else a /. b

type accumulator = {
  mutable count : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable mn : float;
  mutable mx : float;
}

let acc_create () =
  { count = 0; sum = 0.0; sumsq = 0.0; mn = infinity; mx = neg_infinity }

let acc_add a x =
  a.count <- a.count + 1;
  a.sum <- a.sum +. x;
  a.sumsq <- a.sumsq +. (x *. x);
  if x < a.mn then a.mn <- x;
  if x > a.mx then a.mx <- x

let acc_count a = a.count
let acc_sum a = a.sum
let acc_mean a = if a.count = 0 then 0.0 else a.sum /. float_of_int a.count
let acc_min a = a.mn
let acc_max a = a.mx

let acc_stddev a =
  if a.count < 2 then 0.0
  else
    let m = acc_mean a in
    sqrt (max 0.0 ((a.sumsq /. float_of_int a.count) -. (m *. m)))
