(** The DRPM level ladder.

    Levels index the supported rotational speeds from slowest to fastest:
    level 0 = [rpm_min], the top level = [rpm_max], spaced by
    [rpm_step] (Table 1: 3,000 → 15,000 in 1,200-RPM steps, 11 levels). *)

val num_levels : Specs.t -> int
val max_level : Specs.t -> int
(** [num_levels - 1]. *)

val rpm_of_level : Specs.t -> int -> int
(** Raises [Invalid_argument] for out-of-range levels. *)

val level_of_rpm : Specs.t -> int -> int
(** Nearest level at or above the given RPM, clamped to the ladder. *)

val transition_time : Specs.t -> from_level:int -> to_level:int -> float
(** Seconds to modulate between two levels; 0 for equal levels;
    proportional to the RPM difference. *)

val transition_energy : Specs.t -> from_level:int -> to_level:int -> float
(** The paper's conservative assumption: the transition draws the idle
    power of the {e faster} level involved for the whole transition. *)
