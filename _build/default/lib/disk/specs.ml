type t = {
  model_name : string;
  capacity_bytes : int;
  rpm_max : int;
  avg_seek : float;
  avg_rotation : float;
  transfer_rate : float;
  p_active : float;
  p_idle : float;
  p_standby : float;
  e_spin_down : float;
  t_spin_down : float;
  e_spin_up : float;
  t_spin_up : float;
  rpm_min : int;
  rpm_step : int;
  rpm_transition_per_rpm : float;
  spindle_exponent : float;
  drpm_window : int;
}

let ultrastar_36z15 =
  {
    model_name = "IBM Ultrastar 36Z15";
    capacity_bytes = 18 * 1024 * 1024 * 1024;
    rpm_max = 15_000;
    avg_seek = 3.4e-3;
    avg_rotation = 2.0e-3;
    transfer_rate = 55.0 *. 1024.0 *. 1024.0;
    p_active = 13.5;
    p_idle = 10.2;
    p_standby = 2.5;
    e_spin_down = 13.0;
    t_spin_down = 1.5;
    e_spin_up = 135.0;
    t_spin_up = 10.9;
    rpm_min = 3_000;
    rpm_step = 1_200;
    rpm_transition_per_rpm = 0.10e-3;
    spindle_exponent = 2.8;
    drpm_window = 30;
  }

let pp ppf t =
  let line fmt = Format.fprintf ppf fmt in
  line "Disk Model              %s@," t.model_name;
  line "Storage Capacity        %d GB@," (t.capacity_bytes / (1024 * 1024 * 1024));
  line "RPM                     %d@," t.rpm_max;
  line "Average seek time       %.1f msec@," (t.avg_seek *. 1e3);
  line "Average rotation time   %.1f msec@," (t.avg_rotation *. 1e3);
  line "Internal transfer rate  %.0f MB/sec@," (t.transfer_rate /. (1024. *. 1024.));
  line "Power (active)          %.1f W@," t.p_active;
  line "Power (idle)            %.1f W@," t.p_idle;
  line "Power (standby)         %.1f W@," t.p_standby;
  line "Energy (spin down)      %.0f J@," t.e_spin_down;
  line "Time (spin down)        %.1f sec@," t.t_spin_down;
  line "Energy (spin up)        %.0f J@," t.e_spin_up;
  line "Time (spin up)          %.1f sec@," t.t_spin_up;
  line "Maximum RPM level       %d RPM@," t.rpm_max;
  line "Minimum RPM level       %d RPM@," t.rpm_min;
  line "RPM Step-Size           %d RPM@," t.rpm_step;
  line "Window size             %d" t.drpm_window
