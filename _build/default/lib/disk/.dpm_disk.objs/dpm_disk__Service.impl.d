lib/disk/service.ml: Rpm Specs
