lib/disk/rpm.ml: Printf Specs
