lib/disk/specs.mli: Format
