lib/disk/rpm.mli: Specs
