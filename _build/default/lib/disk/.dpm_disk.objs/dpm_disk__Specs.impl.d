lib/disk/specs.ml: Format
