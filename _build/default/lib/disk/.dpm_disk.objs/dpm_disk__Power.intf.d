lib/disk/power.mli: Specs
