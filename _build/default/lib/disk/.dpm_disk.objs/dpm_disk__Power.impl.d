lib/disk/power.ml: Rpm Service Specs
