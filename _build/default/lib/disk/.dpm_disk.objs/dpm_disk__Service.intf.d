lib/disk/service.mli: Specs
