let num_levels (s : Specs.t) = ((s.rpm_max - s.rpm_min) / s.rpm_step) + 1
let max_level s = num_levels s - 1

let rpm_of_level (s : Specs.t) l =
  if l < 0 || l > max_level s then
    invalid_arg (Printf.sprintf "Rpm.rpm_of_level: level %d out of range" l);
  s.rpm_min + (l * s.rpm_step)

let level_of_rpm (s : Specs.t) rpm =
  if rpm <= s.rpm_min then 0
  else if rpm >= s.rpm_max then max_level s
  else ((rpm - s.rpm_min + s.rpm_step - 1) / s.rpm_step)

let transition_time (s : Specs.t) ~from_level ~to_level =
  let r1 = rpm_of_level s from_level and r2 = rpm_of_level s to_level in
  float_of_int (abs (r1 - r2)) *. s.rpm_transition_per_rpm

let transition_energy (s : Specs.t) ~from_level ~to_level =
  let faster = max from_level to_level in
  (* Forward reference into Power would be circular; replicate the idle
     formula here (tested for agreement with Power.idle). *)
  let rpm = float_of_int (rpm_of_level s faster) in
  let frac = rpm /. float_of_int s.rpm_max in
  let p_idle_faster =
    s.p_standby +. ((s.p_idle -. s.p_standby) *. (frac ** s.spindle_exponent))
  in
  p_idle_faster *. transition_time s ~from_level ~to_level
