lib/core/experiment.ml: Array Dpm_compiler Dpm_disk Dpm_ir Dpm_layout Dpm_sim Dpm_trace Dpm_workloads Hashtbl Lazy List Scheme
