lib/core/scheme.mli:
