lib/core/figures.ml: Dpm_compiler Dpm_disk Dpm_ir Dpm_layout Dpm_sim Dpm_trace Dpm_util Dpm_workloads Experiment Format List Printf Scheme
