lib/core/figures.mli:
