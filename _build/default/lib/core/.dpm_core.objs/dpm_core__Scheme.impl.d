lib/core/scheme.ml: List String
