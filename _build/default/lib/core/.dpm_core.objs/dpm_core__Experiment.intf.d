lib/core/experiment.mli: Dpm_compiler Dpm_ir Dpm_layout Dpm_sim Dpm_workloads Scheme
