(** The seven disk power-management schemes of the paper's §4.2. *)

type t =
  | Base  (** No power management. *)
  | Tpm  (** Reactive threshold spin-down. *)
  | Itpm  (** Oracle TPM (not implementable; upper bound). *)
  | Drpm  (** Reactive dynamic RPM (Gurumurthi et al.). *)
  | Idrpm  (** Oracle DRPM. *)
  | Cmtpm  (** Compiler-managed TPM — this paper. *)
  | Cmdrpm  (** Compiler-managed DRPM — this paper. *)

val all : t list
(** In the paper's presentation order. *)

val name : t -> string
val of_name : string -> t
(** Case-insensitive; raises [Not_found]. *)

val is_compiler_managed : t -> bool
val is_ideal : t -> bool
