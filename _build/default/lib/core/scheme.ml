type t = Base | Tpm | Itpm | Drpm | Idrpm | Cmtpm | Cmdrpm

let all = [ Base; Tpm; Itpm; Drpm; Idrpm; Cmtpm; Cmdrpm ]

let name = function
  | Base -> "Base"
  | Tpm -> "TPM"
  | Itpm -> "ITPM"
  | Drpm -> "DRPM"
  | Idrpm -> "IDRPM"
  | Cmtpm -> "CMTPM"
  | Cmdrpm -> "CMDRPM"

let of_name s =
  let s = String.lowercase_ascii s in
  List.find (fun t -> String.equal (String.lowercase_ascii (name t)) s) all

let is_compiler_managed = function
  | Cmtpm | Cmdrpm -> true
  | Base | Tpm | Itpm | Drpm | Idrpm -> false

let is_ideal = function
  | Itpm | Idrpm -> true
  | Base | Tpm | Drpm | Cmtpm | Cmdrpm -> false
