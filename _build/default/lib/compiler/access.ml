module Ir = Dpm_ir
module Layout = Dpm_layout

type t = {
  item : int;
  var : string;
  lo : int;
  step : int;
  iterations : int;
  per_disk : (int * int) list array;
  miss_counts : int array array;
}

let runs_of_bools flags =
  let runs = ref [] in
  let start = ref (-1) in
  Array.iteri
    (fun i b ->
      if b && !start < 0 then start := i
      else if (not b) && !start >= 0 then begin
        runs := (!start, i - 1) :: !runs;
        start := -1
      end)
    flags;
  if !start >= 0 then runs := (!start, Array.length flags - 1) :: !runs;
  List.rev !runs

(* Disks an item body may touch with the given iterator ranges in scope.
   Inner loop ranges are derived by interval analysis of their bounds. *)
let body_disks plan ranges nodes mark =
  let range x =
    match Hashtbl.find_opt ranges x with
    | Some r -> r
    | None -> invalid_arg ("Access: unbound iterator " ^ x)
  in
  let rec walk = function
    | Ir.Loop.Call _ -> ()
    | Ir.Loop.Stmt s ->
        List.iter
          (fun (r : Ir.Reference.t) ->
            let region = Ir.Reference.region range r in
            List.iter mark (Layout.Plan.region_disks plan r.array region))
          (Ir.Stmt.refs s)
    | Ir.Loop.For l ->
        let llo = Ir.Expr.bounds range l.lo in
        let lhi = Ir.Expr.bounds range l.hi in
        let lo = fst llo and hi = snd lhi in
        if hi >= lo then begin
          Hashtbl.add ranges l.var (lo, hi);
          List.iter walk l.body;
          Hashtbl.remove ranges l.var
        end
  in
  List.iter walk nodes

let of_loop plan ~item (l : Ir.Loop.t) =
  let closed x = invalid_arg ("Access: unbound iterator " ^ x) in
  let lo = Ir.Expr.eval closed l.lo and hi = Ir.Expr.eval closed l.hi in
  let iterations = if hi < lo then 0 else ((hi - lo) / l.step) + 1 in
  let ndisks = Layout.Plan.ndisks plan in
  let flags = Array.init ndisks (fun _ -> Array.make iterations false) in
  let ranges = Hashtbl.create 8 in
  for ord = 0 to iterations - 1 do
    let v = lo + (ord * l.step) in
    Hashtbl.replace ranges l.var (v, v);
    body_disks plan ranges l.body (fun d -> flags.(d).(ord) <- true)
  done;
  {
    item;
    var = l.var;
    lo;
    step = l.step;
    iterations;
    per_disk = Array.map runs_of_bools flags;
    miss_counts =
      Array.map (fun fl -> Array.map (fun b -> if b then 1 else 0) fl) flags;
  }

let of_stmt plan ~item (s : Ir.Stmt.t) =
  let ndisks = Layout.Plan.ndisks plan in
  let flags = Array.init ndisks (fun _ -> Array.make 1 false) in
  let ranges = Hashtbl.create 1 in
  body_disks plan ranges [ Ir.Loop.Stmt s ] (fun d -> flags.(d).(0) <- true);
  {
    item;
    var = Printf.sprintf "<item%d>" item;
    lo = 0;
    step = 1;
    iterations = 1;
    per_disk = Array.map runs_of_bools flags;
    miss_counts =
      Array.map (fun fl -> Array.map (fun b -> if b then 1 else 0) fl) flags;
  }

let of_call plan ~item =
  {
    item;
    var = Printf.sprintf "<item%d>" item;
    lo = 0;
    step = 1;
    iterations = 1;
    per_disk = Array.make (Layout.Plan.ndisks plan) [];
    miss_counts = Array.make_matrix (Layout.Plan.ndisks plan) 1 0;
  }

let of_item (p : Ir.Program.t) plan ~item =
  match List.nth p.body item with
  | Ir.Loop.For l -> of_loop plan ~item l
  | Ir.Loop.Stmt s -> of_stmt plan ~item s
  | Ir.Loop.Call _ -> of_call plan ~item

let of_program (p : Ir.Program.t) plan =
  List.mapi (fun item _ -> of_item p plan ~item) p.body

let of_program_cached ?(cache_blocks = 192) (p : Ir.Program.t) plan =
  let ndisks = Layout.Plan.ndisks plan in
  let closed x = invalid_arg ("Access: unbound iterator " ^ x) in
  (* Shape of each item: (lo, step, iterations). *)
  let shapes =
    Array.of_list
      (List.map
         (fun node ->
           match node with
           | Ir.Loop.For l ->
               let lo = Ir.Expr.eval closed l.lo
               and hi = Ir.Expr.eval closed l.hi in
               let trips = if hi < lo then 0 else ((hi - lo) / l.step) + 1 in
               (l.var, lo, l.step, max trips 1)
           | Ir.Loop.Stmt _ | Ir.Loop.Call _ ->
               (Printf.sprintf "<item>", 0, 1, 1))
         p.body)
  in
  let counts =
    Array.map
      (fun (_, _, _, n) -> Array.init ndisks (fun _ -> Array.make n 0))
      shapes
  in
  let cache = Dpm_cache.Lru.create ~capacity:cache_blocks in
  let cur_ord = ref 0 in
  let touch ~nest (r : Ir.Reference.t) env =
    let idx = Ir.Reference.eval env r in
    let u = Layout.Plan.element_unit plan r.array idx in
    match Dpm_cache.Lru.access cache (r.array, u) with
    | `Hit -> ()
    | `Miss _ ->
        let disk = Layout.Plan.unit_disk plan r.array u in
        counts.(nest).(disk).(!cur_ord) <- counts.(nest).(disk).(!cur_ord) + 1
  in
  let callbacks =
    {
      Ir.Enumerate.on_enter =
        (fun ~nest ~depth ~var:_ ~value ->
          if depth = 0 then begin
            let _, lo, step, _ = shapes.(nest) in
            cur_ord := (value - lo) / step
          end);
      on_stmt =
        (fun ~nest s env ->
          if
            (match List.nth p.body nest with
            | Ir.Loop.Stmt _ -> true
            | Ir.Loop.For _ | Ir.Loop.Call _ -> false)
          then cur_ord := 0;
          List.iter (fun r -> touch ~nest r env) s.Ir.Stmt.reads;
          Option.iter (fun w -> touch ~nest w env) s.Ir.Stmt.write);
      on_call = (fun ~nest:_ _ _ -> ());
    }
  in
  Ir.Enumerate.run callbacks p;
  List.mapi
    (fun item _ ->
      let var, lo, step, iterations = shapes.(item) in
      {
        item;
        var;
        lo;
        step;
        iterations;
        per_disk =
          Array.map
            (fun cs -> runs_of_bools (Array.map (fun c -> c > 0) cs))
            counts.(item);
        miss_counts = counts.(item);
      })
    p.body

let window_requests t ~disk ~lo ~hi =
  let cs = t.miss_counts.(disk) in
  let n = Array.length cs in
  let total = ref 0 in
  for o = max 0 lo to min (n - 1) hi do
    total := !total + cs.(o)
  done;
  !total

let disks_active t ~ordinal =
  let active = ref [] in
  Array.iteri
    (fun d runs ->
      if List.exists (fun (a, b) -> ordinal >= a && ordinal <= b) runs then
        active := d :: !active)
    t.per_disk;
  List.rev !active

let value_of_ordinal t ord = t.lo + (ord * t.step)
