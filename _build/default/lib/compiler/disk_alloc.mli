(** Proportional disk allocation (paper Figure 11, last phase).

    "We distribute the available disks across the array groups based on
    the total amount of data in each group; i.e., more data an array
    group has, more disks it is assigned in a proportional manner."
    Groups receive disjoint, consecutive disk ranges (largest-remainder
    apportionment, at least one disk per group when there are enough
    disks); every array of a group is then striped over exactly its
    group's disks. *)

val ranges : ndisks:int -> int array -> (int * int) array
(** [ranges ~ndisks bytes] apportions [ndisks] disks to groups with the
    given data sizes; returns per-group [(start_disk, count)].  Raises
    [Invalid_argument] when there are more groups than disks. *)

val plan :
  ?stripe_size:int ->
  ndisks:int ->
  Dpm_ir.Program.t ->
  Grouping.t ->
  Dpm_layout.Plan.t
(** Build the transformed layout: each array striped over its group's
    disk range with the given stripe size (default: the paper's 64 KB).
    Storage order is row-major for every array. *)
