(** Compiler timing estimates.

    The paper obtains cycle counts per loop iteration "from the actual
    measurement of the program execution by using a high-quality timer
    called gethrtime" — i.e. a profiling run — and uses them to interpret
    DAP iterations as wall-clock time.  This module reproduces that:
    {!profile} performs an exact instrumented walk (cost model for compute,
    full-speed service time for every buffer-cache miss) giving the
    per-outer-iteration durations of every top-level item, and {!perturb}
    injects the bounded, deterministic estimation error that separates a
    calibration run from the production run (per-item bias plus
    per-iteration jitter).  The perturbed estimate is what the insertion
    pass plans with; Table 3's mispredicted speeds are the consequence. *)

type t = {
  durations : float array array;
      (** [durations.(item).(ordinal)]: estimated seconds spent in that
          outer iteration (single slot for non-loop items). *)
  starts : float array array;
      (** Prefix sums: estimated start time of each outer iteration. *)
  total : float;  (** Estimated whole-run time. *)
}

val profile :
  ?cost:Dpm_ir.Cost.model ->
  ?cache_blocks:int ->
  specs:Dpm_disk.Specs.t ->
  Dpm_ir.Program.t ->
  Dpm_layout.Plan.t ->
  t
(** Exact instrumented walk (the calibration run).  [cache_blocks]
    defaults to the trace generator's default. *)

val perturb : noise:float -> seed:int -> t -> t
(** Multiplies every item's durations by a deterministic factor in
    [1 ± noise] (systematic per-item bias) and every iteration by a factor
    in [1 ± noise/4] (jitter), then rebuilds the prefix sums.
    [noise = 0.] returns an identical estimate. *)

val iteration_start : t -> item:int -> ordinal:int -> float
val iteration_end : t -> item:int -> ordinal:int -> float

val locate : t -> float -> int * int
(** [(item, ordinal)] whose span contains the given time, clamped to the
    first/last iteration for out-of-range times. *)
