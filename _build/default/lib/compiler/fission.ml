module Ir = Dpm_ir

let stmt_groups grouping l =
  List.sort_uniq compare
    (List.map (Grouping.stmt_group grouping) (Ir.Loop.stmts l))

let fissionable grouping l = List.length (stmt_groups grouping l) > 1

(* Copy of the nest keeping only statements of group [g]; inner loops that
   end up empty disappear.  Power-management calls are preserved in every
   slice containing statements (there are none before insertion, which is
   when fission runs). *)
let rec filter_loop grouping g (l : Ir.Loop.t) : Ir.Loop.t option =
  let body =
    List.filter_map
      (fun node ->
        match node with
        | Ir.Loop.Stmt s ->
            if Grouping.stmt_group grouping s = g then Some node else None
        | Ir.Loop.Call _ -> Some node
        | Ir.Loop.For inner ->
            Option.map (fun x -> Ir.Loop.For x) (filter_loop grouping g inner))
      l.body
  in
  let has_stmt =
    List.exists
      (fun n ->
        match n with
        | Ir.Loop.Stmt _ -> true
        | Ir.Loop.For inner -> Ir.Loop.stmts inner <> []
        | Ir.Loop.Call _ -> false)
      body
  in
  if has_stmt then Some { l with body } else None

let fission_nest grouping l =
  let groups_present =
    (* In order of first statement occurrence. *)
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun s ->
        let g = Grouping.stmt_group grouping s in
        if Hashtbl.mem seen g then None
        else begin
          Hashtbl.add seen g ();
          Some g
        end)
      (Ir.Loop.stmts l)
  in
  match groups_present with
  | [] | [ _ ] -> [ l ]
  | gs -> List.filter_map (fun g -> filter_loop grouping g l) gs

let apply (p : Ir.Program.t) grouping =
  let body =
    List.concat_map
      (fun node ->
        match node with
        | Ir.Loop.For l ->
            List.map (fun l' -> Ir.Loop.For l') (fission_nest grouping l)
        | Ir.Loop.Stmt _ | Ir.Loop.Call _ -> [ node ])
      p.Ir.Program.body
  in
  Ir.Program.with_body p body
