(** Layout-aware loop distribution (paper Figure 11).

    Each fissionable nest is distributed into one loop per array group, so
    that during the execution of one resulting loop only the disks holding
    that group's arrays are touched.  Legality is structural: statements
    sharing (directly or transitively) any array are in the same group and
    therefore stay in the same loop, so no dependence ever crosses the
    distribution.

    A nest is {e fissionable} when its statements span more than one
    group — the paper notes wupwise and galgel "do not contain any
    fissionable loop nests". *)

val fissionable : Grouping.t -> Dpm_ir.Loop.t -> bool

val fission_nest : Grouping.t -> Dpm_ir.Loop.t -> Dpm_ir.Loop.t list
(** Distribute one nest by group, in order of each group's first
    statement; empty loops are dropped.  Returns the singleton list when
    the nest is not fissionable. *)

val apply : Dpm_ir.Program.t -> Grouping.t -> Dpm_ir.Program.t
(** Distribute every fissionable top-level nest. *)
