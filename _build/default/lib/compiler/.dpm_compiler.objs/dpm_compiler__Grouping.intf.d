lib/compiler/grouping.mli: Dpm_ir
