lib/compiler/insertion.ml: Array Dap Dpm_disk Dpm_ir Dpm_util Estimate Hashtbl List Option
