lib/compiler/estimate.mli: Dpm_disk Dpm_ir Dpm_layout
