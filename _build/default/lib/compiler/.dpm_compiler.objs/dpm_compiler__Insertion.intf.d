lib/compiler/insertion.mli: Dap Dpm_disk Dpm_ir Estimate
