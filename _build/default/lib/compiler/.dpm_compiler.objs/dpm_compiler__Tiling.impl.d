lib/compiler/tiling.ml: Dpm_ir Dpm_layout Hashtbl List Option String
