lib/compiler/estimate.ml: Array Dpm_cache Dpm_disk Dpm_ir Dpm_layout Dpm_util List Option
