lib/compiler/dap.ml: Access Array Estimate Format List
