lib/compiler/tiling.mli: Dpm_ir Dpm_layout
