lib/compiler/fission.ml: Dpm_ir Grouping Hashtbl List Option
