lib/compiler/disk_alloc.ml: Array Dpm_ir Dpm_layout Dpm_util Grouping List
