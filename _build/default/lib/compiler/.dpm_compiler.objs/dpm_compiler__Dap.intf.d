lib/compiler/dap.mli: Access Estimate Format
