lib/compiler/access.ml: Array Dpm_cache Dpm_ir Dpm_layout Hashtbl List Option Printf
