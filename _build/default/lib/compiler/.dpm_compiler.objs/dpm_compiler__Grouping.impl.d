lib/compiler/grouping.ml: Array Dpm_ir Hashtbl List String
