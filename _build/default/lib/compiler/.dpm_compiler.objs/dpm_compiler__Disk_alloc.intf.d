lib/compiler/disk_alloc.mli: Dpm_ir Dpm_layout Grouping
