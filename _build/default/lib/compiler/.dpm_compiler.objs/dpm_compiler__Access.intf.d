lib/compiler/access.mli: Dpm_ir Dpm_layout
