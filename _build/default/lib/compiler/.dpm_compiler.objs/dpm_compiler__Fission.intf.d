lib/compiler/fission.mli: Dpm_ir Grouping
