lib/compiler/pipeline.mli: Dap Dpm_disk Dpm_ir Dpm_layout Estimate Insertion
