lib/compiler/pipeline.ml: Access Dap Disk_alloc Dpm_ir Dpm_layout Estimate Fission Grouping Insertion Tiling
