(** Layout-aware loop tiling (paper Figure 12).

    The most disk-costly perfect two-deep nest is tiled: tile iterators
    walk iteration tiles sized so that one tile's data per array matches
    one stripe unit, element iterators walk within the tile.  The
    layout-aware variant additionally (a) transposes the storage order of
    arrays whose access pattern does not conform to their data layout
    ("array U2 needs to be layout-transformed from row-major to
    column-major") and (b) sets each array's stripe size to its per-tile
    data size, so that a tile is a stripe unit and the tile-to-disk
    mapping is the striping's round-robin.

    Following the paper, only a single nest per application is tiled
    ("we applied it only to the most costly nest"). *)

val candidate : Dpm_ir.Program.t -> Dpm_layout.Plan.t -> int option
(** Item index of the most costly tileable nest: perfect 2-deep with
    constant bounds, safely tileable per {!Dpm_ir.Depend.tiling_legal},
    ranked by bytes of array data its references span. *)

val tile_sizes :
  Dpm_ir.Program.t -> stripe_size:int -> Dpm_ir.Loop.t -> int * int
(** Square-ish tile extents so a tile of the nest's largest-element array
    covers about one stripe unit. *)

val tile_nest : t1:int -> t2:int -> Dpm_ir.Loop.t -> Dpm_ir.Loop.t
(** The rectangular tiling transform: ["ii"]/["jj"] tile iterators
    stepping by the tile extents, element iterators clamped with [min]
    (paper Figure 10(b)).  Raises [Invalid_argument] if the nest is not
    perfect 2-deep with constant bounds. *)

val conforming_order :
  Dpm_ir.Loop.t -> string -> Dpm_layout.Plan.order option
(** Storage order making the array's fastest-varying subscript match its
    innermost-iterated dimension, or [None] when the nest's references to
    it are mixed or not 2-D. *)

val apply :
  dl:bool ->
  Dpm_ir.Program.t ->
  Dpm_layout.Plan.t ->
  Dpm_ir.Program.t * Dpm_layout.Plan.t
(** Tile the candidate nest (identity when none exists).  With [~dl:true]
    also applies the layout transformation and per-array stripe-size
    assignment. *)

val apply_all :
  dl:bool ->
  Dpm_ir.Program.t ->
  Dpm_layout.Plan.t ->
  Dpm_ir.Program.t * Dpm_layout.Plan.t
(** The paper's stated future work: tile {e every} legal perfect nest,
    not just the most costly one.  Layout transformations are applied
    per array at most once, in decreasing order of nest cost, so the
    layout chosen for the most costly nest wins conflicts (the paper
    notes "the layout determined based on this most costly nest may not
    be preferable for the remaining nests" — apply_all resolves exactly
    that tension). *)
