type state = Idle | Active

type window = {
  state : state;
  start_item : int;
  start_ord : int;
  end_item : int;
  end_ord : int;
  t_start : float;
  t_end : float;
  requests : int;
  min_spacing : float;
}

type t = { ndisks : int; windows : window list array }

let build (activities : Access.t list) (est : Estimate.t) =
  let ndisks =
    match activities with
    | [] -> invalid_arg "Dap.build: empty program"
    | a :: _ -> Array.length a.Access.per_disk
  in
  let windows = Array.make ndisks [] in
  for disk = 0 to ndisks - 1 do
    (* Emit per-iteration states in global order, merging runs. *)
    let acc = ref [] in
    let flush (state, si, so, ei, eo, requests, spacing) =
      let t_start = Estimate.iteration_start est ~item:si ~ordinal:so in
      let t_end =
        (* End = start of iteration (ei, eo), or total time at the end. *)
        if
          ei >= Array.length est.Estimate.starts
          || eo >= Array.length est.Estimate.starts.(ei)
        then est.Estimate.total
        else Estimate.iteration_start est ~item:ei ~ordinal:eo
      in
      acc :=
        {
          state;
          start_item = si;
          start_ord = so;
          end_item = ei;
          end_ord = eo;
          t_start;
          t_end;
          requests;
          min_spacing = spacing;
        }
        :: !acc
    in
    let current = ref None in
    let note item ord state count =
      let spacing =
        if count <= 0 then infinity
        else est.Estimate.durations.(item).(ord) /. float_of_int count
      in
      match !current with
      | None -> current := Some (state, item, ord, item, ord, count, spacing)
      (* Active windows do not merge across top-level items: distinct
         nests are distinct phases with their own request densities, and
         the serving-speed selection must not average them.  Idle windows
         do merge — a disk idle across several nests is one long gap. *)
      | Some (s, si, so, _, _, n, sp)
        when s = state && (s = Idle || si = item) ->
          current := Some (s, si, so, item, ord, n + count, min sp spacing)
      | Some (s, si, so, ei, eo, n, sp) ->
          (* Close the previous window at the start of this iteration. *)
          ignore (ei, eo);
          flush (s, si, so, item, ord, n, sp);
          current := Some (state, item, ord, item, ord, count, spacing)
    in
    List.iter
      (fun (a : Access.t) ->
        let active_flags = Array.make a.Access.iterations false in
        List.iter
          (fun (lo, hi) ->
            for o = lo to hi do
              active_flags.(o) <- true
            done)
          a.Access.per_disk.(disk);
        Array.iteri
          (fun ord active ->
            note a.Access.item ord
              (if active then Active else Idle)
              a.Access.miss_counts.(disk).(ord))
          active_flags)
      activities;
    (match !current with
    | None -> ()
    | Some (s, si, so, _, _, n, sp) ->
        let nitems = Array.length est.Estimate.starts in
        flush (s, si, so, nitems, 0, n, sp));
    windows.(disk) <- List.rev !acc
  done;
  { ndisks; windows }

let idle_windows t ~disk =
  List.filter (fun w -> w.state = Idle) t.windows.(disk)

let entries t ~disk =
  List.map (fun w -> (w.start_item, w.start_ord, w.state)) t.windows.(disk)

let pp_disk activities ppf (t, disk) =
  let value item ord =
    match List.nth_opt activities item with
    | Some a -> Access.value_of_ordinal a ord
    | None -> ord
  in
  List.iter
    (fun (item, ord, state) ->
      Format.fprintf ppf "< Nest %d, iteration %d, %s >@," item
        (value item ord)
        (match state with Idle -> "idle" | Active -> "active"))
    (entries t ~disk)
