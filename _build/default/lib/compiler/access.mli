(** Static disk-footprint analysis.

    For each top-level nest and each iteration of its outermost loop, the
    compiler computes which disks the iteration may touch: subscript
    regions over the inner iterators (interval analysis,
    {!Dpm_ir.Reference.region}) are mapped through the layout plan to disk
    sets ({!Dpm_layout.Plan.region_disks}).  The analysis is deliberately
    cache-unaware — it describes where the data {e lives}, which is what
    the paper's compiler can know statically; the buffer cache only makes
    the actual traffic a subset of it. *)

type t = {
  item : int;  (** Top-level item index. *)
  var : string;  (** Outermost iterator (["<item>"] for non-loops). *)
  lo : int;
  step : int;
  iterations : int;  (** Trip count of the outermost loop (1 for non-loops). *)
  per_disk : (int * int) list array;
      (** For each disk, the inclusive runs of outer-iteration ordinals
          (0-based) during which the disk may be accessed; sorted and
          disjoint. *)
  miss_counts : int array array;
      (** [miss_counts.(disk).(ordinal)]: disk requests the iteration
          issues.  Exact for the reuse-aware analysis; the static
          footprint analysis marks one request per active iteration. *)
}

val of_item : Dpm_ir.Program.t -> Dpm_layout.Plan.t -> item:int -> t
(** Analyze one top-level item.  Calls yield an all-idle activity of one
    "iteration". *)

val of_program : Dpm_ir.Program.t -> Dpm_layout.Plan.t -> t list
(** One activity record per top-level item, in order. *)

val of_program_cached :
  ?cache_blocks:int -> Dpm_ir.Program.t -> Dpm_layout.Plan.t -> t list
(** Reuse-aware variant: a disk counts as active in an outer iteration
    only if the iteration incurs a buffer-cache {e miss} on it.  This is
    the activity the running program actually presents to the disks; the
    compiler can compute it because it knows the exact access sequence
    and the cache policy (the paper's compiler likewise folds locality
    analysis and profiled execution into its DAP).  The purely static
    footprint of {!of_program} stays available for comparison and for
    programs whose access sequence is not statically enumerable. *)

val window_requests : t -> disk:int -> lo:int -> hi:int -> int
(** Total requests a disk receives over an inclusive ordinal range. *)

val disks_active : t -> ordinal:int -> int list
(** Disks possibly touched at one outer iteration. *)

val value_of_ordinal : t -> int -> int
(** Outer iterator value at an ordinal. *)
