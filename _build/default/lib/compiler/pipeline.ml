type version = Orig | LF | TL | LF_DL | TL_DL | TL_ALL_DL

let all_versions = [ Orig; LF; TL; LF_DL; TL_DL ]

let version_name = function
  | Orig -> "Orig"
  | LF -> "LF"
  | TL -> "TL"
  | LF_DL -> "LF+DL"
  | TL_DL -> "TL+DL"
  | TL_ALL_DL -> "TLall+DL"

let transform version (p : Dpm_ir.Program.t) plan =
  match version with
  | Orig -> (p, plan)
  | LF ->
      let grouping = Grouping.of_program p in
      (Fission.apply p grouping, plan)
  | LF_DL ->
      let grouping = Grouping.of_program p in
      let p' = Fission.apply p grouping in
      let plan' =
        Disk_alloc.plan ~ndisks:(Dpm_layout.Plan.ndisks plan) p grouping
      in
      (p', plan')
  | TL -> Tiling.apply ~dl:false p plan
  | TL_DL -> Tiling.apply ~dl:true p plan
  | TL_ALL_DL -> Tiling.apply_all ~dl:true p plan

type compiled = {
  program : Dpm_ir.Program.t;
  decisions : Insertion.decision list;
  dap : Dap.t;
  estimate : Estimate.t;
  profile : Estimate.t;
}

let compile ~scheme ?(noise = 0.0) ?(seed = 42) ?cost ?cache_blocks
    ?pm_overhead ?serve_slow ~specs (p : Dpm_ir.Program.t) plan =
  let activities = Access.of_program_cached ?cache_blocks p plan in
  let exact = Estimate.profile ?cost ?cache_blocks ~specs p plan in
  let estimate =
    if noise = 0.0 then exact else Estimate.perturb ~noise ~seed exact
  in
  let dap = Dap.build activities estimate in
  let program, decisions =
    Insertion.insert ~specs ?pm_overhead ?serve_slow scheme p dap estimate
  in
  { program; decisions; dap; estimate; profile = exact }
