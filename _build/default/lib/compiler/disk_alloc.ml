module Layout = Dpm_layout

let ranges ~ndisks bytes =
  let n = Array.length bytes in
  if n = 0 then [||]
  else if n > ndisks then
    invalid_arg "Disk_alloc.ranges: more array groups than disks"
  else begin
    let total = Array.fold_left ( + ) 0 bytes in
    let total = if total = 0 then n else total in
    (* Ideal shares, floored, with one disk guaranteed per group. *)
    let shares =
      Array.map
        (fun b ->
          let exact =
            float_of_int b /. float_of_int total *. float_of_int ndisks
          in
          max 1 (int_of_float exact))
        bytes
    in
    (* Largest-remainder correction to make the counts sum to ndisks. *)
    let rec fix () =
      let sum = Array.fold_left ( + ) 0 shares in
      if sum < ndisks then begin
        (* Give a disk to the group with the largest deficit. *)
        let deficit i =
          (float_of_int bytes.(i) /. float_of_int total *. float_of_int ndisks)
          -. float_of_int shares.(i)
        in
        let best = ref 0 in
        for i = 1 to n - 1 do
          if deficit i > deficit !best then best := i
        done;
        shares.(!best) <- shares.(!best) + 1;
        fix ()
      end
      else if sum > ndisks then begin
        (* Take a disk from the group with the largest surplus, never
           dropping below one. *)
        let surplus i =
          if shares.(i) <= 1 then neg_infinity
          else
            float_of_int shares.(i)
            -. (float_of_int bytes.(i) /. float_of_int total
               *. float_of_int ndisks)
        in
        let best = ref 0 in
        for i = 1 to n - 1 do
          if surplus i > surplus !best then best := i
        done;
        shares.(!best) <- shares.(!best) - 1;
        fix ()
      end
    in
    fix ();
    let result = Array.make n (0, 0) in
    let cursor = ref 0 in
    Array.iteri
      (fun i c ->
        result.(i) <- (!cursor, c);
        cursor := !cursor + c)
      shares;
    result
  end

let plan ?(stripe_size = Dpm_util.Units.kib 64) ~ndisks (p : Dpm_ir.Program.t)
    grouping =
  let bytes = Grouping.group_bytes p grouping in
  let group_ranges = ranges ~ndisks bytes in
  let entries =
    List.map
      (fun (decl : Dpm_ir.Array_decl.t) ->
        let g = Grouping.group_of grouping decl.name in
        let start_disk, count = group_ranges.(g) in
        {
          Layout.Plan.decl;
          striping =
            Layout.Striping.make ~start_disk ~stripe_factor:count ~stripe_size;
          order = Layout.Plan.Row_major;
        })
      p.arrays
  in
  Layout.Plan.make ~ndisks entries
