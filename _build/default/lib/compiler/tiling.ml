module Ir = Dpm_ir
module Layout = Dpm_layout

(* The innermost perfect 2-deep pair of a singleton loop chain: descends
   through outer loops whose body is exactly one loop (e.g. a time loop
   around the computational pair) and returns the two innermost levels
   when the inner body is statements only and bounds are constant in the
   enclosing iterators. *)
let rec perfect_2deep (l : Ir.Loop.t) =
  let stmts_only body =
    List.for_all
      (function
        | Ir.Loop.Stmt _ -> true
        | Ir.Loop.For _ | Ir.Loop.Call _ -> false)
      body
  in
  let const e =
    match Ir.Expr.simplify e with Ir.Expr.Const _ -> true | _ -> false
  in
  match l.body with
  | [ Ir.Loop.For inner ] when stmts_only inner.body ->
      if const l.lo && const l.hi && const inner.lo && const inner.hi
         && l.step = 1 && inner.step = 1
      then Some inner
      else None
  | [ Ir.Loop.For inner ] -> perfect_2deep inner
  | _ -> None

let nest_bytes (p : Ir.Program.t) (l : Ir.Loop.t) =
  (* Bytes of data the nest's references span: per referenced array, the
     whole array counts once (the nests in the suite sweep their arrays);
     weighted by the number of references to it, approximating traffic. *)
  let stmts = Ir.Loop.stmts l in
  List.fold_left
    (fun acc s ->
      List.fold_left
        (fun acc (r : Ir.Reference.t) ->
          acc + Ir.Array_decl.size_bytes (Ir.Program.find_array p r.array))
        acc (Ir.Stmt.refs s))
    0 stmts

let candidate (p : Ir.Program.t) _plan =
  let best = ref None in
  List.iteri
    (fun item node ->
      match node with
      | Ir.Loop.For l when perfect_2deep l <> None && Ir.Depend.tiling_legal l
        ->
          let cost = nest_bytes p l in
          let better =
            match !best with None -> true | Some (_, c) -> cost > c
          in
          if better then best := Some (item, cost)
      | Ir.Loop.For _ | Ir.Loop.Stmt _ | Ir.Loop.Call _ -> ())
    p.body;
  Option.map fst !best

let tile_sizes (p : Ir.Program.t) ~stripe_size (l : Ir.Loop.t) =
  let max_elem =
    List.fold_left
      (fun acc name ->
        max acc (Ir.Program.find_array p name).Ir.Array_decl.elem_size)
      1 (Ir.Loop.arrays l)
  in
  let elems = max 1 (stripe_size / max_elem) in
  let t1 = max 1 (int_of_float (sqrt (float_of_int elems))) in
  let t2 = max 1 (elems / t1) in
  (t1, t2)

let rec tile_nest ~t1 ~t2 (l : Ir.Loop.t) =
  (* Descend to the tile site through singleton outer loops. *)
  match l.body with
  | [ Ir.Loop.For inner ] when
      (match inner.body with [ Ir.Loop.For _ ] -> true | _ -> false) ->
      { l with body = [ Ir.Loop.For (tile_nest ~t1 ~t2 inner) ] }
  | _ ->
  match perfect_2deep l with
  | None ->
      invalid_arg "Tiling.tile_nest: not a perfect 2-deep constant nest"
  | Some inner ->
      if t1 <= 0 || t2 <= 0 then invalid_arg "Tiling.tile_nest: bad tile size";
      let iv = l.var and jv = inner.var in
      let ii = iv ^ iv (* "ii" for "i" *) and jj = jv ^ jv in
      let elem_i =
        {
          Ir.Loop.var = iv;
          lo = Ir.Expr.Var ii;
          hi =
            Ir.Expr.Min
              (Ir.Expr.Add (Ir.Expr.Var ii, Ir.Expr.Const (t1 - 1)), l.hi);
          step = 1;
          body =
            [
              Ir.Loop.For
                {
                  Ir.Loop.var = jv;
                  lo = Ir.Expr.Var jj;
                  hi =
                    Ir.Expr.Min
                      ( Ir.Expr.Add (Ir.Expr.Var jj, Ir.Expr.Const (t2 - 1)),
                        inner.hi );
                  step = 1;
                  body = inner.body;
                };
            ];
        }
      in
      {
        Ir.Loop.var = ii;
        lo = l.lo;
        hi = l.hi;
        step = t1;
        body =
          [
            Ir.Loop.For
              {
                Ir.Loop.var = jj;
                lo = inner.lo;
                hi = inner.hi;
                step = t2;
                body = [ Ir.Loop.For elem_i ];
              };
          ];
      }

let conforming_order (l : Ir.Loop.t) name =
  match perfect_2deep l with
  | None -> None
  | Some inner ->
      let jv = inner.var in
      let refs =
        List.concat_map Ir.Stmt.refs (Ir.Loop.stmts l)
        |> List.filter (fun (r : Ir.Reference.t) -> String.equal r.array name)
      in
      let dim_of_j (r : Ir.Reference.t) =
        match r.indices with
        | [ d0; d1 ] ->
            let in0 = List.mem jv (Ir.Expr.vars d0) in
            let in1 = List.mem jv (Ir.Expr.vars d1) in
            if in1 && not in0 then Some `Last
            else if in0 && not in1 then Some `First
            else None
        | _ -> None
      in
      let dims = List.map dim_of_j refs in
      if dims = [] then None
      else if List.for_all (fun d -> d = Some `Last) dims then
        Some Layout.Plan.Row_major
      else if List.for_all (fun d -> d = Some `First) dims then
        Some Layout.Plan.Col_major
      else None

(* Candidates in decreasing cost order. *)
let candidates (p : Ir.Program.t) =
  let all = ref [] in
  List.iteri
    (fun item node ->
      match node with
      | Ir.Loop.For l when perfect_2deep l <> None && Ir.Depend.tiling_legal l
        ->
          all := (item, nest_bytes p l) :: !all
      | Ir.Loop.For _ | Ir.Loop.Stmt _ | Ir.Loop.Call _ -> ())
    p.body;
  List.map fst (List.sort (fun (_, a) (_, b) -> compare b a) !all)

let tile_item ~dl (p : Ir.Program.t) plan ~item ~touched =
  match List.nth p.Ir.Program.body item with
  | Ir.Loop.Stmt _ | Ir.Loop.Call _ -> (p, plan)
  | Ir.Loop.For l ->
      let default_ss = Layout.Striping.default.Layout.Striping.stripe_size in
      let t1, t2 = tile_sizes p ~stripe_size:default_ss l in
      let tiled = tile_nest ~t1 ~t2 l in
      let body =
        List.mapi
          (fun i node -> if i = item then Ir.Loop.For tiled else node)
          p.Ir.Program.body
      in
      let p' = Ir.Program.with_body p body in
      if not dl then (p', plan)
      else
        let plan' =
          List.fold_left
            (fun plan name ->
              if Hashtbl.mem touched name then plan
              else begin
                Hashtbl.add touched name ();
                let decl = Ir.Program.find_array p name in
                let entry = Layout.Plan.entry plan name in
                let ds = t1 * t2 * decl.Ir.Array_decl.elem_size in
                let striping =
                  Layout.Striping.make
                    ~start_disk:
                      entry.Layout.Plan.striping.Layout.Striping.start_disk
                    ~stripe_factor:
                      entry.Layout.Plan.striping.Layout.Striping.stripe_factor
                    ~stripe_size:(max 4096 ds)
                in
                let plan = Layout.Plan.set_striping plan name striping in
                match conforming_order l name with
                | Some order -> Layout.Plan.set_order plan name order
                | None -> plan
              end)
            plan (Ir.Loop.arrays l)
        in
        (p', plan')

let apply_all ~dl (p : Ir.Program.t) plan =
  let touched = Hashtbl.create 16 in
  List.fold_left
    (fun (p, plan) item -> tile_item ~dl p plan ~item ~touched)
    (p, plan) (candidates p)

let apply ~dl (p : Ir.Program.t) plan =
  match candidate p plan with
  | None -> (p, plan)
  | Some item -> tile_item ~dl p plan ~item ~touched:(Hashtbl.create 16)
