(** Array grouping (paper Figure 11, first phase).

    Arrays accessed by a common statement are coupled; the transitive
    closure of coupling partitions the program's arrays into groups.
    Statements then fall entirely inside one group, so distributing a loop
    by groups can never separate dependent statements — which is what
    makes the fission pass's legality argument structural. *)

type t
(** A partition of array names. *)

val of_program : Dpm_ir.Program.t -> t
(** Union over every statement of the whole program (the paper's loop
    "for each loop nest / for each statement"). *)

val of_loop : Dpm_ir.Program.t -> Dpm_ir.Loop.t -> t
(** Grouping restricted to one nest's statements. *)

val groups : t -> string list list
(** The groups, each sorted, ordered by first appearance. *)

val group_of : t -> string -> int
(** Index (into {!groups}) of the group containing an array.  Raises
    [Not_found] for unknown arrays. *)

val group_count : t -> int

val group_bytes : Dpm_ir.Program.t -> t -> int array
(** Total declared data per group — the quantity the proportional disk
    allocation divides by. *)

val stmt_group : t -> Dpm_ir.Stmt.t -> int
(** Group of a statement (all its arrays are in one group by
    construction). *)
