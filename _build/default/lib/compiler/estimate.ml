module Ir = Dpm_ir
module Layout = Dpm_layout

type t = {
  durations : float array array;
  starts : float array array;
  total : float;
}

let rebuild_starts durations =
  let clock = ref 0.0 in
  let starts =
    Array.map
      (fun per_item ->
        Array.map
          (fun d ->
            let s = !clock in
            clock := !clock +. d;
            s)
          per_item)
      durations
  in
  (starts, !clock)

let item_slots (p : Ir.Program.t) =
  let closed x = invalid_arg ("Estimate: unbound iterator " ^ x) in
  List.map
    (fun node ->
      match node with
      | Ir.Loop.For l ->
          let lo = Ir.Expr.eval closed l.lo and hi = Ir.Expr.eval closed l.hi in
          let trips = if hi < lo then 0 else ((hi - lo) / l.step) + 1 in
          (max trips 1, lo, l.step)
      | Ir.Loop.Stmt _ | Ir.Loop.Call _ -> (1, 0, 1))
    p.body

let profile ?(cost = Ir.Cost.default) ?(cache_blocks = 1024) ~specs
    (p : Ir.Program.t) plan =
  let slots = Array.of_list (item_slots p) in
  let durations =
    Array.map (fun (n, _, _) -> Array.make n 0.0) slots
  in
  let cache = Dpm_cache.Lru.create ~capacity:cache_blocks in
  let top = Dpm_disk.Rpm.max_level specs in
  let clock = ref 0.0 in
  let pending_cycles = ref 0 in
  (* Slot currently accumulating time. *)
  let cur_item = ref 0 and cur_ord = ref 0 and slot_start = ref 0.0 in
  let flush_cycles () =
    clock := !clock +. Ir.Cost.seconds cost !pending_cycles;
    pending_cycles := 0
  in
  let close_slot () =
    flush_cycles ();
    durations.(!cur_item).(!cur_ord) <-
      durations.(!cur_item).(!cur_ord) +. (!clock -. !slot_start);
    slot_start := !clock
  in
  let unit_bytes name u =
    let entry = Layout.Plan.entry plan name in
    let ss = entry.Layout.Plan.striping.Layout.Striping.stripe_size in
    let file = Ir.Array_decl.size_bytes entry.Layout.Plan.decl in
    min ss (file - (u * ss))
  in
  let touch (r : Ir.Reference.t) env =
    let idx = Ir.Reference.eval env r in
    let u = Layout.Plan.element_unit plan r.array idx in
    match Dpm_cache.Lru.access cache (r.array, u) with
    | `Hit -> ()
    | `Miss _ ->
        flush_cycles ();
        clock :=
          !clock
          +. Dpm_disk.Service.request_time specs ~level:top
               ~bytes:(unit_bytes r.array u)
  in
  let callbacks =
    {
      Ir.Enumerate.on_enter =
        (fun ~nest ~depth ~var:_ ~value ->
          if depth = 0 then begin
            close_slot ();
            let _, lo, step = slots.(nest) in
            cur_item := nest;
            cur_ord := (value - lo) / step
          end;
          pending_cycles := !pending_cycles + cost.loop_overhead);
      on_stmt =
        (fun ~nest s env ->
          if nest <> !cur_item then begin
            (* Top-level statement item. *)
            close_slot ();
            cur_item := nest;
            cur_ord := 0
          end;
          pending_cycles := !pending_cycles + Ir.Cost.stmt_cycles cost s;
          List.iter (fun r -> touch r env) s.Ir.Stmt.reads;
          Option.iter (fun w -> touch w env) s.Ir.Stmt.write);
      on_call = (fun ~nest:_ _ _ -> ());
    }
  in
  Ir.Enumerate.run callbacks p;
  close_slot ();
  let starts, total = rebuild_starts durations in
  { durations; starts; total }

let perturb ~noise ~seed t =
  if noise < 0.0 then invalid_arg "Estimate.perturb: negative noise";
  let rng = Dpm_util.Rng.create seed in
  let durations =
    Array.map
      (fun per_item ->
        let bias = 1.0 +. Dpm_util.Rng.symmetric rng noise in
        Array.map
          (fun d ->
            let jitter = 1.0 +. Dpm_util.Rng.symmetric rng (noise /. 4.0) in
            d *. bias *. jitter)
          per_item)
      t.durations
  in
  let starts, total = rebuild_starts durations in
  { durations; starts; total }

let iteration_start t ~item ~ordinal = t.starts.(item).(ordinal)

let iteration_end t ~item ~ordinal =
  t.starts.(item).(ordinal) +. t.durations.(item).(ordinal)

let locate t time =
  let nitems = Array.length t.starts in
  (* Find the last (item, ordinal) whose start <= time. *)
  let result = ref (0, 0) in
  (try
     for i = 0 to nitems - 1 do
       let per_item = t.starts.(i) in
       for o = 0 to Array.length per_item - 1 do
         if per_item.(o) <= time then result := (i, o) else raise Exit
       done
     done
   with Exit -> ());
  !result
