(** Disk access patterns (paper §3).

    The DAP "lists, for each disk, the idle and active times in a compact
    form": an alternating sequence of windows, each anchored at a
    (nest, iteration) boundary and interpreted in time through the
    compiler's estimate.  This is the structure the insertion pass plans
    over, and the artifact the paper's Figure 2(c) depicts. *)

type state = Idle | Active

type window = {
  state : state;
  start_item : int;  (** Top-level item where the window opens. *)
  start_ord : int;  (** Outer-iteration ordinal where it opens. *)
  end_item : int;  (** Item where it closes... *)
  end_ord : int;  (** ...at the iteration ordinal {e after} its last one. *)
  t_start : float;  (** Estimated wall-clock open, seconds. *)
  t_end : float;  (** Estimated wall-clock close, seconds. *)
  requests : int;
      (** Disk requests the window is predicted to carry (0 for idle
          windows; the count the serving-speed selection divides by for
          active windows). *)
  min_spacing : float;
      (** Tightest estimated per-request spacing among the window's
          request-carrying iterations (duration / count); [infinity] for
          idle windows.  The serving-speed selection must respect this,
          not the window mean: windows can merge dense and sparse
          sub-phases. *)
}

type t = {
  ndisks : int;
  windows : window list array;  (** Per disk, in time order, alternating. *)
}

val build : Access.t list -> Estimate.t -> t
(** Combine the footprint analysis with the timing estimate.  Adjacent
    same-state windows are merged across item boundaries. *)

val idle_windows : t -> disk:int -> window list

val entries : t -> disk:int -> (int * int * state) list
(** The paper's compact transition form: [(nest, iteration, state)]
    triples marking where the disk's state changes (iteration is the
    outer ordinal at which the new state begins). *)

val pp_disk : Access.t list -> Format.formatter -> t * int -> unit
(** Renders one disk's DAP like the paper's example, e.g.
    ["< Nest 1, iteration 1, idle >"]. *)
