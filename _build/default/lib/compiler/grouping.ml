module Ir = Dpm_ir

type t = { order : string list; group_ids : (string, int) Hashtbl.t }

(* Plain union-find over array names. *)
module Uf = struct
  type t = (string, string) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let rec find uf x =
    match Hashtbl.find_opt uf x with
    | None ->
        Hashtbl.replace uf x x;
        x
    | Some p when String.equal p x -> x
    | Some p ->
        let root = find uf p in
        Hashtbl.replace uf x root;
        root

  let union uf a b =
    let ra = find uf a and rb = find uf b in
    if not (String.equal ra rb) then Hashtbl.replace uf ra rb
end

let build stmts arrays_in_order =
  let uf = Uf.create () in
  List.iter
    (fun s ->
      match Ir.Stmt.arrays s with
      | [] -> ()
      | first :: rest -> List.iter (fun a -> Uf.union uf first a) rest)
    stmts;
  (* Assign group ids in order of first appearance of each root. *)
  let group_ids = Hashtbl.create 16 in
  let root_ids = Hashtbl.create 16 in
  let next = ref 0 in
  let order = ref [] in
  List.iter
    (fun a ->
      let root = Uf.find uf a in
      let gid =
        match Hashtbl.find_opt root_ids root with
        | Some g -> g
        | None ->
            let g = !next in
            incr next;
            Hashtbl.replace root_ids root g;
            g
      in
      Hashtbl.replace group_ids a gid;
      order := a :: !order)
    arrays_in_order;
  { order = List.rev !order; group_ids }

let of_program (p : Ir.Program.t) =
  build (Ir.Program.stmts p)
    (List.map (fun (a : Ir.Array_decl.t) -> a.name) p.arrays)

let of_loop (p : Ir.Program.t) l =
  let arrays = Ir.Loop.arrays l in
  (* Keep declaration order for stability. *)
  let in_order =
    List.filter
      (fun (a : Ir.Array_decl.t) -> List.mem a.name arrays)
      p.arrays
    |> List.map (fun (a : Ir.Array_decl.t) -> a.name)
  in
  build (Ir.Loop.stmts l) in_order

let group_of t name =
  match Hashtbl.find_opt t.group_ids name with
  | Some g -> g
  | None -> raise Not_found

let group_count t =
  1 + Hashtbl.fold (fun _ g acc -> max g acc) t.group_ids (-1)

let groups t =
  let n = group_count t in
  let buckets = Array.make n [] in
  List.iter
    (fun a -> buckets.(group_of t a) <- a :: buckets.(group_of t a))
    (List.rev t.order);
  Array.to_list (Array.map (List.sort_uniq compare) buckets)

let group_bytes (p : Ir.Program.t) t =
  let bytes = Array.make (group_count t) 0 in
  List.iter
    (fun (a : Ir.Array_decl.t) ->
      match Hashtbl.find_opt t.group_ids a.name with
      | Some g -> bytes.(g) <- bytes.(g) + Ir.Array_decl.size_bytes a
      | None -> ())
    p.arrays;
  bytes

let stmt_group t s =
  match Ir.Stmt.arrays s with
  | [] -> invalid_arg "Grouping.stmt_group: statement references no arrays"
  | a :: _ -> group_of t a
