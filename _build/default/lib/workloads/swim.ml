(* Grids are 32 x 64 elements of 8 KB (16 MB each, 256 stripe units; rows
   of 8 units span all disks, columns pin one).  Total 96 MB.  The CALC
   kernels form one long column-order nest so each disk's busy phase is
   contiguous and the other seven disks see second-scale idle windows. *)

let source () =
  {|# 171.swim -- shallow-water kernel re-creation
array u[32][64] : 8192
array v[32][64] : 8192
array p[32][64] : 8192
array cu[32][64] : 8192
array cv[32][64] : 8192
array z[32][64] : 8192

# init: row-order sweep
for i = 0 to 31 { for j = 0 to 63 { z[i][j] = p[i][j] work 60 } }

# calc1+calc2: column-order fluxes and height update; the statement
# pairs couple disjoint arrays, so swim is fissionable (three groups)
for j = 0 to 63 { for i = 0 to 31 {
    cu[i][j] = u[i][j] work 1000
    cv[i][j] = v[i][j] work 1000
    z[i][j] = z[i][j] + p[i][j] work 1000
} }

# calc3: row-order velocity update
for i = 0 to 31 { for j = 0 to 63 { u[i][j] = u[i][j] + cu[i][j] work 120 } }

# time-smoothing: column-order
for j = 0 to 63 { for i = 0 to 31 { v[i][j] = v[i][j] + cv[i][j] work 500 } }

# diagnostics: repeated sweep of a small resident region (pure compute)
for s = 1 to 24 { for i = 0 to 10 { for j = 0 to 63 { use p[i][j] work 350 } } }
|}
