(* Grids: u0 24x64 (12 MB), r0 17x64 (8.5 MB, 12 rows hot), u1 6x64
   (3 MB), u2 2x64 (1 MB), r1 2x16 (0.25 MB).  Total 24.75 MB vs. the
   paper's 24.7.  Each V-cycle does six column-order line-relaxation
   sweeps over the fine level (u0 + r0 exceed the cache, so every unit
   misses; 512 KB rows pin one disk per column group) followed by a long
   coarse-grid correction on resident grids — the all-disk compute
   windows that shape mgrid's idle structure. *)

let fine =
  {|
for j = 0 to 63 { for i = 0 to 23 { u0[i][j] = u0[i][j] + r0[i/2][j] work 60 } }
|}

let cycle =
  "\n# fine line relaxation (six directional sweeps): every unit misses\n"
  ^ fine ^ fine ^ fine ^ fine ^ fine ^ fine
  ^ {|
# coarse correction: resident grids, compute-dominated; fissionable pairs
for s = 1 to 60 { for i = 0 to 5 { for j = 0 to 63 {
    u1[i][j] = u1[i][j] + r1[i/3][j/4] work 700
    u2[i/3][j] = u2[i/3][j] work 250
} } }
|}

let source () =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    {|# 172.mgrid -- multigrid V-cycle re-creation
array u0[24][64] : 8192
array r0[17][64] : 8192
array u1[6][64] : 8192
array u2[2][64] : 8192
array r1[2][16] : 8192

# init sweep of the fine level
for i = 0 to 23 { for j = 0 to 63 { use u0[i][j] work 60 } }
for i = 0 to 16 { for j = 0 to 63 { use r0[i][j] work 60 } }
|};
  for _c = 1 to 6 do
    Buffer.add_string buf cycle
  done;
  Buffer.add_string buf
    ("\n# closing smoothing passes\n" ^ fine ^ fine ^ fine ^ fine
   ^ {|
for i = 0 to 3 { for j = 0 to 63 { use u0[i][j] work 60 } }
|});
  Buffer.contents buf
