(** 173.applu re-creation (SSOR solver).

    Alternating lower/upper sweeps: the jacld/blts phase reads two 12 MB
    coefficient arrays row-wise with independent statements (fissionable
    into {a} and {b}); the jacu/buts phase updates two tall-thin arrays
    column-wise, refetching stripe units because the interleaved working
    set exceeds the cache — the non-conforming pattern that makes applu
    profit from both LF+DL and TL+DL in the paper. *)

val source : unit -> string
