(* Dimensions: m1..m4 are 459 x 12 elements of 8 KB (43.0 MB each); a row
   is 1.5 stripe units, so column-order sweeps walk all eight disks, and
   459 rows against the 192-unit cache means every access refetches its
   unit — the non-conforming pattern TL+DL repairs.  v1/v2 are 19 x 16
   (2.375 MB each, resident between phases).  Total 176.85 MB vs. the
   paper's 176.7. *)

let zaxpy k half =
  Printf.sprintf
    {|
# zcopy %d%s: reload the vectors evicted by the zgemm stream
for i = 0 to 18 { for j = 0 to 15 { v1[i][j] = v2[i][j] work 200 } }
# zaxpy phase %d%s: pure compute on the resident vectors
for r = 1 to 12 { for i = 0 to 18 { for j = 0 to 15 {
    v1[i][j] = v1[i][j] + v2[i][j] work 1500
} } }
# small I/O touch keeps per-disk idleness below the TPM range
for i = 0 to 5 { for j = 0 to 11 { use m%d[i][j] work 60 } }
|}
    k half k half k

let matrix_nest k =
  Printf.sprintf
    {|
# zgemm phase %d: column-order sweep of m%d (non-conforming access)
for j = 0 to 11 { for i = 0 to 458 {
    v2[i/25][j] = m%d[i][j] + v1[i/25][j] work 60
} }
|}
    k k k
  ^ zaxpy k "a"
  ^ zaxpy k "b"

let source () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    {|# 168.wupwise -- lattice QCD kernel re-creation
array m1[459][12] : 8192
array m2[459][12] : 8192
array m3[459][12] : 8192
array m4[459][12] : 8192
array v1[19][16] : 8192
array v2[19][16] : 8192

# initialization: load the vectors and the head of m1 (conforming order)
for i = 0 to 18 { for j = 0 to 15 { v1[i][j] = v2[i][j] work 200 } }
for i = 0 to 299 { for j = 0 to 11 { use m1[i][j] work 40 } }
|};
  for k = 1 to 4 do
    Buffer.add_string buf (matrix_nest k)
  done;
  Buffer.contents buf
