(** 172.mgrid re-creation (multigrid V-cycles).

    One fine grid plus residual (together larger than the buffer cache,
    so each V-cycle's fine smoothing misses throughout) and a hierarchy of
    coarse grids that fit in cache, whose repeated smoothing forms the
    long all-disk compute phases characteristic of mgrid's 31 effective
    sweeps over only 24.7 MB.  Fine and coarse smoothing statements touch
    disjoint array couples, so the correction nest is fissionable —
    mgrid profits from LF+DL in the paper. *)

val source : unit -> string
