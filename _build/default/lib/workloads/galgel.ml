(* Arrays: k 24x64 (12 MB), x and b 4x64 (2 MB each).  Total 16 MB.
   The working set per assembly sweep (k + x + b = 256 units) exceeds the
   192-unit cache, so the sweeps miss throughout: four time steps of two
   sweeps each, plus the initial vector load, give 2,040 requests vs. the
   paper's 2,048.  The column-blocked visit order clusters requests per
   disk; the eigenproblem phases between sweeps are compute-dominated. *)

let step =
  {|
# assembly: one coupled group; column-blocked visit clusters per disk
for j = 0 to 63 { for i = 0 to 23 {
    b[i/6][j] = k[i][j] + x[i/6][j] work 180
} }
# eigenproblem iteration: compute-dominated revisit of the vectors
for s = 1 to 36 { for j = 0 to 55 {
    b[0][j] = b[0][j] + x[0][j] work 1400
} }
# back-substitution sweep
for j = 0 to 63 { for i = 0 to 23 {
    b[i/6][j] = k[i][j] + x[i/6][j] work 180
} }
# second eigenproblem phase
for s = 1 to 36 { for j = 0 to 63 {
    b[0][j] = b[0][j] + x[0][j] work 1400
} }
|}

let source () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    {|# 178.galgel -- Galerkin FEM re-creation
array k[24][64] : 8192
array x[4][64] : 8192
array b[4][64] : 8192

# init: load the vectors and the matrix head
for i = 0 to 3 { for j = 0 to 63 { use x[i][j] + b[i][j] work 100 } }
for i = 0 to 1 { for j = 0 to 63 { use k[i][j] work 100 } }
|};
  for _t = 1 to 4 do
    Buffer.add_string buf step
  done;
  Buffer.contents buf
