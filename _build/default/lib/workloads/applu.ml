(* Arrays: a, b 24x64 (12 MB each, row-swept); c, d 384x4 tall-thin
   (12 MB each, column-swept, thrashing as a pair); rsd 13x64 (6.5 MB);
   tmat 1x32 (0.25 MB).  Total 54.75 MB vs. paper 54.7.

   The SSOR structure is phase-contiguous: one long jacld/blts block
   (three row-order sweeps of a and b as independent statements), one
   long jacu/buts block (three column-order passes over the tall
   arrays), and a compute-dominated RHS phase.  After layout-aware
   fission each array group owns its disks for a whole multi-sweep phase,
   so the other groups' disks see idle runs beyond the TPM break-even —
   the effect behind the paper's "code transformations make TPM a viable
   option". *)

let source () =
  {|# 173.applu -- SSOR kernel re-creation
array a[24][64] : 8192
array b[24][64] : 8192
array c[384][4] : 8192
array d[384][4] : 8192
array rsd[13][64] : 8192
array tmat[1][32] : 8192

# init: load the residual and workspace
for i = 0 to 12 { for j = 0 to 63 { use rsd[i][j] work 80 } }
for j = 0 to 31 { use tmat[0][j] work 80 }

# jacld/blts block: three lower sweeps, independent statements
for r = 1 to 3 { for i = 0 to 23 { for j = 0 to 63 {
    use a[i][j] work 40
    use b[i][j] work 40
} } }

# jacu/buts block: three upper passes over the tall coefficient arrays
for r = 1 to 3 { for j = 0 to 3 { for i = 0 to 383 {
    c[i][j] = c[i][j] + d[i][j] + rsd[i/32][16*j] work 120
} } }

# rhs: compute-dominated phases on the resident workspace, punctuated by
# small row touches that keep per-disk idleness below the TPM range
for s = 1 to 16 { for j = 0 to 31 { use tmat[0][j] work 2600 } }
for j = 0 to 63 { use a[0][j] work 40 }
for s = 1 to 16 { for j = 0 to 31 { use tmat[0][j] work 2600 } }
for j = 0 to 63 { use a[1][j] work 40 }
for s = 1 to 16 { for j = 0 to 31 { use tmat[0][j] work 2600 } }

# final lower sweep
for i = 0 to 23 { for j = 0 to 63 {
    use a[i][j] work 40
    use b[i][j] work 40
} }

# pintgr post-processing: full passes over the coefficient arrays
for i = 0 to 383 { for j = 0 to 3 { use c[i][j] work 60 } }
for i = 0 to 383 { for j = 0 to 3 { use d[i][j] work 60 } }
for i = 0 to 12 { for j = 0 to 63 { use rsd[i][j] work 60 } }
for i = 0 to 12 { for j = 0 to 63 { use a[i][j] + tmat[0][2*j/4] work 60 } }
|}
