(** 168.wupwise re-creation (lattice QCD, BLAS-heavy).

    Structure: four large matrices are swept column-wise against two small
    resident vectors (zgemm-like), interleaved with long zaxpy compute
    phases on the cached vectors.  The matrices are stored row-major but
    accessed column-wise with more rows than the buffer cache holds, so
    every element access refetches its stripe unit — the non-conforming
    access pattern the paper says makes wupwise profit from layout-aware
    tiling (TL+DL) while containing no fissionable nest (every statement
    is coupled through the vector chain). *)

val source : unit -> string
