(** 171.swim re-creation (shallow-water stencils).

    Six 16 MB grids.  The CALC kernels are modeled as column-order sweeps
    whose 512 KB rows pin one disk per column group — the phase structure
    that gives each disk second-scale idle windows — plus row-order update
    sweeps and a short cached smoothing phase.  The main kernel contains
    independent statement pairs over disjoint array couples, so swim is
    fissionable into three array groups ({u,cu}, {v,cv}, {p,z}),
    matching the paper's finding that swim profits from LF+DL. *)

val source : unit -> string
