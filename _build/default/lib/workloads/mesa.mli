(** 177.mesa re-creation (software rasterization).

    A frame buffer swept row-wise per frame and two tall-thin texture
    arrays sampled column-wise (the pair exceeds the cache, so texture
    passes refetch — the non-conforming pattern behind mesa's TL+DL
    benefit).  The per-frame composite nest mixes a frame-buffer statement
    with a texture prefetch statement from a different array group, making
    mesa fissionable (LF+DL benefit); an inner unit loop keeps that nest
    out of the tiling candidate set, as the rasterizer's real inner loops
    would. *)

val source : unit -> string
