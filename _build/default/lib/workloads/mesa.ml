(* Arrays: fb 16x64 (8 MB), tex1/tex2 512x2 tall-thin (8 MB each).
   Total 24 MB, matching the paper.  Each frame: rasterization sweep of
   the frame buffer, a geometry phase computing on the resident last row,
   and a column-order texture pass that thrashes (the pair exceeds the
   cache) — the non-conforming pattern behind mesa's TL+DL benefit. *)

let frame =
  {|
# composite: frame-buffer write plus texture prefetch (two array groups)
for i = 0 to 15 { for j = 0 to 63 {
    fb[i][j] = fb[i][j] work 250
    for k = 0 to 0 { use tex1[0][j/32] work 100 }
} }
# geometry: compute-dominated phase on the resident row
for s = 1 to 30 { for j = 0 to 63 { use fb[15][j] work 900 } }
# texture sampling: column-order, the pair thrashes the cache
for j = 0 to 1 { for i = 0 to 511 {
    use tex1[i][j] + tex2[i][j] work 110
} }
|}

let source () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    {|# 177.mesa -- rasterization re-creation
array fb[16][64] : 8192
array tex1[512][2] : 8192
array tex2[512][2] : 8192
|};
  for _f = 1 to 4 do
    Buffer.add_string buf frame
  done;
  Buffer.add_string buf
    {|
# final texture pass
for j = 0 to 1 { for i = 0 to 511 {
    use tex1[i][j] + tex2[i][j] work 110
} }
|};
  Buffer.contents buf
