lib/workloads/mesa.ml: Buffer
