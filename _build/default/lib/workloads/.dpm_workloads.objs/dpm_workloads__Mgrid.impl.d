lib/workloads/mgrid.ml: Buffer
