lib/workloads/suite.ml: Applu Dpm_compiler Dpm_disk Dpm_ir Dpm_layout Float Galgel List Mesa Mgrid Printf String Swim Wupwise
