lib/workloads/mgrid.mli:
