lib/workloads/suite.mli: Dpm_disk Dpm_ir Dpm_layout
