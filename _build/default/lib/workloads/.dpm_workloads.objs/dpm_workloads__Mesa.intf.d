lib/workloads/mesa.mli:
