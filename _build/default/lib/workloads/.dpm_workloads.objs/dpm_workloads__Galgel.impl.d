lib/workloads/galgel.ml: Buffer
