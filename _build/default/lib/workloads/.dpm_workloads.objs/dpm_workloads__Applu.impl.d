lib/workloads/applu.ml:
