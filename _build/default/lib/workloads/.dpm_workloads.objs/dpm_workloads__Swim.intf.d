lib/workloads/swim.mli:
