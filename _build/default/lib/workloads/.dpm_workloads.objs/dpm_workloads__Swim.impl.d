lib/workloads/swim.ml:
