lib/workloads/wupwise.ml: Buffer Printf
