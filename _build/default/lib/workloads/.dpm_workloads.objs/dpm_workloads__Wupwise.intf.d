lib/workloads/wupwise.mli:
