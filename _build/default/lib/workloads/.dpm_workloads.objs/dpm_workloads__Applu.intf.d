lib/workloads/applu.mli:
