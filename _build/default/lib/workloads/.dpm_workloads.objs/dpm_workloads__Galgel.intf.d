lib/workloads/galgel.mli:
