(** The benchmark suite (paper Table 2).

    The paper selects the I/O-dominant loop nests of six Specfp2000 codes,
    makes their data disk-resident, and reports per-benchmark dataset
    size, request count, base energy and execution time.  SPEC sources
    are proprietary, so each benchmark is re-created in the loop-nest DSL
    with the structure the original is known for (see each module) and
    with observables matching Table 2:

    - dataset sizes match by declaration;
    - request counts match structurally (same stripe-unit miss counts
      under the default 12 MB buffer cache);
    - execution times match through {!calibrate}, which scales the
      statements' [work] annotations so the closed-loop run hits the
      paper's reported time — after which base energy matches too, since
      the paper's Table 2 energies follow from its disk datasheet.

    Modeling granularity: one IR element is an 8 KB chunk (8 per 64 KB
    stripe unit); arrays use 512 KB rows (8 stripe units) so that
    row-order sweeps rotate across all 8 disks while column-order sweeps
    pin one disk per column group — the two access regimes whose mix
    determines each benchmark's idle-period structure. *)

type spec = {
  name : string;
  source : unit -> string;  (** DSL text of the re-created benchmark. *)
  noise : float;
      (** Compiler timing-estimation error amplitude (drives Table 3). *)
  data_mb : float;  (** Paper: dataset size, MB. *)
  requests : int;  (** Paper: number of disk requests. *)
  base_energy_j : float;  (** Paper: base disk energy, J. *)
  exec_time_s : float;  (** Paper: base execution time, seconds. *)
}

val all : spec list
(** wupwise, swim, mgrid, applu, mesa, galgel — in the paper's order. *)

val find : string -> spec
(** Lookup by name; raises [Not_found]. *)

val cache_blocks : int
(** Default buffer-cache capacity in stripe units (192 = 12 MB). *)

val program : spec -> Dpm_ir.Program.t
(** Parse the benchmark's DSL source (uncalibrated). *)

val calibrate :
  ?specs:Dpm_disk.Specs.t ->
  target_exec:float ->
  Dpm_ir.Program.t ->
  Dpm_layout.Plan.t ->
  Dpm_ir.Program.t
(** Uniformly scale every statement's [work] so the profiled run time
    equals the target (the service and bookkeeping components are fixed
    by structure; only compute scales). *)

val calibrated_program :
  ?specs:Dpm_disk.Specs.t -> spec -> Dpm_layout.Plan.t -> Dpm_ir.Program.t
(** {!program} followed by {!calibrate} to the spec's Table 2 time. *)

val default_plan : ?ndisks:int -> Dpm_ir.Program.t -> Dpm_layout.Plan.t
(** The paper's default layout: every array striped as (0, 8, 64 KB). *)
