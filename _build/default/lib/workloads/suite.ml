module Ir = Dpm_ir
module Layout = Dpm_layout

type spec = {
  name : string;
  source : unit -> string;
  noise : float;
  data_mb : float;
  requests : int;
  base_energy_j : float;
  exec_time_s : float;
}

let cache_blocks = 192

let all =
  [
    {
      name = "wupwise";
      source = Wupwise.source;
      noise = 0.08;
      data_mb = 176.7;
      requests = 24_718;
      base_energy_j = 20835.96;
      exec_time_s = 248.790;
    };
    {
      name = "swim";
      source = Swim.source;
      noise = 0.05;
      data_mb = 96.0;
      requests = 3_159;
      base_energy_j = 2686.79;
      exec_time_s = 32.08898;
    };
    {
      name = "mgrid";
      source = Mgrid.source;
      noise = 0.19;
      data_mb = 24.7;
      requests = 12_288;
      base_energy_j = 10600.54;
      exec_time_s = 126.65112;
    };
    {
      name = "applu";
      source = Applu.source;
      noise = 0.07;
      data_mb = 54.7;
      requests = 7_004;
      base_energy_j = 5875.11;
      exec_time_s = 70.14224;
    };
    {
      name = "mesa";
      source = Mesa.source;
      noise = 0.20;
      data_mb = 24.0;
      requests = 3_072;
      base_energy_j = 2667.00;
      exec_time_s = 31.86954;
    };
    {
      name = "galgel";
      source = Galgel.source;
      noise = 0.17;
      data_mb = 16.0;
      requests = 2_048;
      base_energy_j = 1715.37;
      exec_time_s = 20.4788;
    };
  ]

let find name = List.find (fun s -> String.equal s.name name) all

let program spec = Ir.Parser.program ~name:spec.name (spec.source ())

let default_plan ?(ndisks = 8) p = Layout.Plan.uniform ~ndisks p

let total_work_seconds ?(cost = Ir.Cost.default) p =
  let total = ref 0 in
  let cb =
    {
      Ir.Enumerate.nothing with
      Ir.Enumerate.on_stmt =
        (fun ~nest:_ s _ -> total := !total + s.Ir.Stmt.work);
    }
  in
  Ir.Enumerate.run cb p;
  Ir.Cost.seconds cost !total

let calibrate ?(specs = Dpm_disk.Specs.ultrastar_36z15) ~target_exec p plan =
  let exact =
    Dpm_compiler.Estimate.profile ~cache_blocks ~specs p plan
  in
  let work_seconds = total_work_seconds p in
  if work_seconds <= 0.0 then
    invalid_arg "Suite.calibrate: program has no work annotations";
  let fixed = exact.Dpm_compiler.Estimate.total -. work_seconds in
  let scale = (target_exec -. fixed) /. work_seconds in
  if scale <= 0.0 then
    invalid_arg
      (Printf.sprintf
         "Suite.calibrate: structural time %.2fs already exceeds target %.2fs"
         fixed target_exec);
  let rescale (s : Ir.Stmt.t) =
    { s with work = int_of_float (Float.round (float_of_int s.work *. scale)) }
  in
  let body =
    List.map
      (fun node ->
        match node with
        | Ir.Loop.For l -> Ir.Loop.For (Ir.Loop.map_stmts rescale l)
        | Ir.Loop.Stmt s -> Ir.Loop.Stmt (rescale s)
        | Ir.Loop.Call c -> Ir.Loop.Call c)
      p.Ir.Program.body
  in
  Ir.Program.with_body p body

let calibrated_program ?specs spec plan =
  calibrate ?specs ~target_exec:spec.exec_time_s (program spec) plan
