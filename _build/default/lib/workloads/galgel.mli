(** 178.galgel re-creation (Galerkin FEM).

    A single stiffness matrix swept row-wise against two small coupled
    vectors — one array group, so galgel contains no fissionable nest,
    and the access pattern already conforms to the row-major layout, so
    layout-aware tiling finds nothing either: the paper reports galgel
    gains from neither LF+DL nor TL+DL. *)

val source : unit -> string
