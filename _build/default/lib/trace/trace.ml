type t = {
  program : string;
  ndisks : int;
  events : Request.event array;
  tail_think : float;
}

let make ?(tail_think = 0.0) ~program ~ndisks events =
  if ndisks <= 0 then invalid_arg "Trace.make: non-positive disk count";
  Array.iter
    (function
      | Request.Io io ->
          if io.disk < 0 || io.disk >= ndisks then
            invalid_arg "Trace.make: request disk out of range"
      | Request.Pm _ -> ())
    (Array.of_list events);
  { program; ndisks; events = Array.of_list events; tail_think }

let io_count t =
  Array.fold_left
    (fun n -> function Request.Io _ -> n + 1 | Request.Pm _ -> n)
    0 t.events

let pm_count t = Array.length t.events - io_count t

let total_bytes t =
  Array.fold_left
    (fun n -> function Request.Io io -> n + io.bytes | Request.Pm _ -> n)
    0 t.events

let total_think t =
  Array.fold_left (fun acc e -> acc +. Request.think e) t.tail_think t.events

let io_events t =
  List.filter_map
    (function Request.Io io -> Some io | Request.Pm _ -> None)
    (Array.to_list t.events)

let disks_used t =
  List.sort_uniq compare (List.map (fun (io : Request.io) -> io.disk) (io_events t))

let map_events f t =
  {
    t with
    events = Array.of_list (List.filter_map f (Array.to_list t.events));
  }

let without_pm t =
  let pending = ref 0.0 in
  let events =
    List.filter_map
      (function
        | Request.Pm { think; _ } ->
            pending := !pending +. think;
            None
        | Request.Io io ->
            let think = io.think +. !pending in
            pending := 0.0;
            Some (Request.Io { io with think }))
      (Array.to_list t.events)
  in
  {
    t with
    events = Array.of_list events;
    tail_think = t.tail_think +. !pending;
  }

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# program=%s ndisks=%d tail=%.9f\n" t.program t.ndisks
        t.tail_think;
      Array.iter (fun e -> output_string oc (Request.to_line e ^ "\n")) t.events)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = input_line ic in
      let program, ndisks, tail_think =
        try
          Scanf.sscanf header "# program=%s@ ndisks=%d tail=%f" (fun p n t ->
              (p, n, t))
        with Scanf.Scan_failure _ | End_of_file ->
          failwith "Trace.load: malformed header"
      in
      let events = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             events := Request.of_line line :: !events
         done
       with End_of_file -> ());
      make ~tail_think ~program ~ndisks (List.rev !events))
