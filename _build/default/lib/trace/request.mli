(** Trace events.

    The paper's simulator input is a sequence of I/O requests, each
    "composed of the four parameters: request arrival time, start block
    number, request size, and request type (read or write)".  Two
    adaptations:

    - we store {e think time} (compute seconds since the previous event
      completed) instead of an absolute arrival time, because the replay
      is closed-loop: a delayed request delays everything after it, which
      is how power management shows up as an execution-time penalty;
    - compiler-managed schemes additionally carry explicit
      power-management directives in the stream, at the positions where
      the inserted [spin_down]/[spin_up]/[set_RPM] calls execute.

    Each I/O also records which disk it targets (resolved from the layout
    plan, as the paper's simulator does with its striping parameters) and
    its provenance (nest index and outermost-loop iteration) for the DAP
    cross-checks. *)

type kind = Read | Write

type io = {
  think : float;  (** Compute time before issue, seconds. *)
  disk : int;
  block : int;  (** Global start block number. *)
  bytes : int;
  kind : kind;
  nest : int;  (** Source loop nest (0-based). *)
  iter : int;  (** Outermost-loop iteration of that nest. *)
}

type directive =
  | Spin_down of int
  | Spin_up of int
  | Set_rpm of { level : int; disk : int }

type event =
  | Io of io
  | Pm of { think : float; directive : directive }

val think : event -> float
val pp : Format.formatter -> event -> unit

val to_line : event -> string
(** One-line text form (see {!Trace.save}). *)

val of_line : string -> event
(** Inverse of {!to_line}; raises [Failure] on malformed input. *)
