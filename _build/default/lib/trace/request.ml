type kind = Read | Write

type io = {
  think : float;
  disk : int;
  block : int;
  bytes : int;
  kind : kind;
  nest : int;
  iter : int;
}

type directive =
  | Spin_down of int
  | Spin_up of int
  | Set_rpm of { level : int; disk : int }

type event = Io of io | Pm of { think : float; directive : directive }

let think = function Io io -> io.think | Pm p -> p.think

let pp ppf = function
  | Io io ->
      Format.fprintf ppf "io think=%a disk=%d block=%d bytes=%d %s (nest %d, iter %d)"
        Dpm_util.Units.pp_seconds io.think io.disk io.block io.bytes
        (match io.kind with Read -> "read" | Write -> "write")
        io.nest io.iter
  | Pm { think; directive } -> (
      match directive with
      | Spin_down d ->
          Format.fprintf ppf "pm think=%a spin_down(disk%d)"
            Dpm_util.Units.pp_seconds think d
      | Spin_up d ->
          Format.fprintf ppf "pm think=%a spin_up(disk%d)"
            Dpm_util.Units.pp_seconds think d
      | Set_rpm { level; disk } ->
          Format.fprintf ppf "pm think=%a set_RPM(level%d, disk%d)"
            Dpm_util.Units.pp_seconds think level disk)

let to_line = function
  | Io io ->
      Printf.sprintf "io %.9f %d %d %d %c %d %d" io.think io.disk io.block
        io.bytes
        (match io.kind with Read -> 'r' | Write -> 'w')
        io.nest io.iter
  | Pm { think; directive } -> (
      match directive with
      | Spin_down d -> Printf.sprintf "pm %.9f down %d" think d
      | Spin_up d -> Printf.sprintf "pm %.9f up %d" think d
      | Set_rpm { level; disk } ->
          Printf.sprintf "pm %.9f rpm %d %d" think level disk)

let of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "io"; think; disk; block; bytes; kind; nest; iter ] ->
      let kind =
        match kind with
        | "r" -> Read
        | "w" -> Write
        | k -> failwith ("Request.of_line: bad kind " ^ k)
      in
      Io
        {
          think = float_of_string think;
          disk = int_of_string disk;
          block = int_of_string block;
          bytes = int_of_string bytes;
          kind;
          nest = int_of_string nest;
          iter = int_of_string iter;
        }
  | [ "pm"; think; "down"; d ] ->
      Pm { think = float_of_string think; directive = Spin_down (int_of_string d) }
  | [ "pm"; think; "up"; d ] ->
      Pm { think = float_of_string think; directive = Spin_up (int_of_string d) }
  | [ "pm"; think; "rpm"; level; disk ] ->
      Pm
        {
          think = float_of_string think;
          directive =
            Set_rpm { level = int_of_string level; disk = int_of_string disk };
        }
  | _ -> failwith ("Request.of_line: malformed line: " ^ line)
