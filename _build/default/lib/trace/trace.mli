(** Trace containers.

    A trace is the ordered event stream of one application run together
    with the subsystem metadata the simulator needs (program name, disk
    count).  Traces can be saved to and reloaded from a line-oriented text
    format, mirroring the externally-provided trace files of the paper's
    setup. *)

type t = {
  program : string;
  ndisks : int;
  events : Request.event array;
  tail_think : float;
      (** Compute time after the last event completes, seconds. *)
}

val make :
  ?tail_think:float -> program:string -> ndisks:int -> Request.event list -> t

val io_count : t -> int
(** Number of I/O requests (Table 2 "Num of Disk Reqs"). *)

val pm_count : t -> int
val total_bytes : t -> int
val total_think : t -> float
(** Sum of think times including the tail: the pure-compute part of the
    run. *)

val io_events : t -> Request.io list
(** In order, directives skipped. *)

val disks_used : t -> int list
(** Sorted list of disks receiving at least one request. *)

val map_events :
  (Request.event -> Request.event option) -> t -> t
(** Filter-map over the stream (used to strip or rewrite directives). *)

val without_pm : t -> t
(** Drops directives, folding their think time into the next event so the
    compute timeline is preserved. *)

val save : t -> string -> unit
(** Writes header lines ([# program=... ndisks=...]) then one event per
    line. *)

val load : string -> t
(** Inverse of {!save}; raises [Failure] on malformed files. *)
