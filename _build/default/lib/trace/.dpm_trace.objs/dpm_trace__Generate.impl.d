lib/trace/generate.ml: Dpm_cache Dpm_ir Dpm_layout List Option Request Trace
