lib/trace/generate.mli: Dpm_ir Dpm_layout Trace
