lib/trace/trace.ml: Array Fun List Printf Request Scanf String
