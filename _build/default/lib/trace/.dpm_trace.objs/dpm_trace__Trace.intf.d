lib/trace/trace.mli: Request
