lib/trace/request.ml: Dpm_util Format Printf String
