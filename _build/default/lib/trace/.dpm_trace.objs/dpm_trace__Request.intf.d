lib/trace/request.mli: Format
