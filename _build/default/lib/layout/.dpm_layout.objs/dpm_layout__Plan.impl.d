lib/layout/plan.ml: Array Dpm_ir Format Hashtbl List Printf String Striping
