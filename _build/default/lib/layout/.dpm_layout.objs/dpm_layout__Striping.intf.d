lib/layout/striping.mli: Format
