lib/layout/striping.ml: Dpm_util Format List
