lib/layout/plan.mli: Dpm_ir Format Striping
