(** Disk layout plans: where every array of a program lives.

    A plan fixes, for each array, its file's striping 3-tuple and its
    storage order (row- or column-major — the layout transformation of the
    paper's tiling pass flips this), plus the size of the disk subsystem.
    Each array is stored in its own file; files are given disjoint global
    block ranges so that trace records carry unambiguous "start block
    numbers". *)

type order = Row_major | Col_major

type entry = {
  decl : Dpm_ir.Array_decl.t;
  striping : Striping.t;
  order : order;
}

type t

val make : ndisks:int -> entry list -> t
(** Validates every entry against the disk count. *)

val uniform :
  ?order:order -> ?striping:Striping.t -> ndisks:int -> Dpm_ir.Program.t -> t
(** One entry per declared array, all with the same striping (default:
    {!Striping.default}) and order (default row-major) — the paper's
    default configuration. *)

val ndisks : t -> int
val entry : t -> string -> entry
(** Raises [Not_found] for arrays absent from the plan. *)

val entries : t -> entry list
val set_striping : t -> string -> Striping.t -> t
val set_order : t -> string -> order -> t

val element_offset : t -> string -> int list -> int
(** Byte offset of an element within its array's file, honouring the
    entry's storage order. *)

val element_unit : t -> string -> int list -> int
(** Stripe unit (= cache block) the element falls in. *)

val unit_disk : t -> string -> int -> int
(** Disk holding a stripe unit of the given array. *)

val unit_count : t -> string -> int
(** Stripe units in the array's file. *)

val unit_global_block : t -> string -> int -> int
(** Globally unique block number for a stripe unit (file base + unit);
    this is the trace's "start block number" space. *)

val region_disks : t -> string -> (int * int) list -> int list
(** Disks touched by a rectangular element region (inclusive per-dimension
    intervals, clamped to the array bounds).  Sorted, without
    duplicates.  Early-exits once every disk of the stripe is seen. *)

val region_units : t -> string -> (int * int) list -> (int * int) list
(** [(lo, hi)] inclusive runs of stripe units touched by the region,
    normalized (sorted, disjoint). *)

val pp : Format.formatter -> t -> unit
