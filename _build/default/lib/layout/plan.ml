type order = Row_major | Col_major

type entry = {
  decl : Dpm_ir.Array_decl.t;
  striping : Striping.t;
  order : order;
}

type placed = { entry : entry; base_block : int }
type t = { ndisks : int; table : (string * placed) list }

let validate_entry ~ndisks (e : entry) =
  if e.striping.Striping.stripe_factor > ndisks then
    invalid_arg
      (Printf.sprintf "Plan: stripe factor of %s exceeds %d disks"
         e.decl.Dpm_ir.Array_decl.name ndisks);
  if e.striping.Striping.start_disk >= ndisks then
    invalid_arg
      (Printf.sprintf "Plan: start disk of %s out of range"
         e.decl.Dpm_ir.Array_decl.name)

let unit_count_of_entry (e : entry) =
  Striping.units_in_file e.striping
    ~file_bytes:(Dpm_ir.Array_decl.size_bytes e.decl)

let make ~ndisks entries =
  if ndisks <= 0 then invalid_arg "Plan.make: non-positive disk count";
  List.iter (validate_entry ~ndisks) entries;
  let _, table =
    List.fold_left
      (fun (base, acc) (e : entry) ->
        let name = e.decl.Dpm_ir.Array_decl.name in
        if List.mem_assoc name acc then
          invalid_arg ("Plan.make: duplicate array " ^ name);
        (base + unit_count_of_entry e, (name, { entry = e; base_block = base }) :: acc))
      (0, []) entries
  in
  { ndisks; table = List.rev table }

let uniform ?(order = Row_major) ?(striping = Striping.default) ~ndisks
    (p : Dpm_ir.Program.t) =
  make ~ndisks
    (List.map (fun decl -> { decl; striping; order }) p.Dpm_ir.Program.arrays)

let ndisks t = t.ndisks

let placed t name =
  match List.assoc_opt name t.table with
  | Some p -> p
  | None -> raise Not_found

let entry t name = (placed t name).entry
let entries t = List.map (fun (_, p) -> p.entry) t.table

let update t name f =
  if not (List.mem_assoc name t.table) then raise Not_found;
  let entries =
    List.map
      (fun (n, p) -> if String.equal n name then f p.entry else p.entry)
      t.table
  in
  make ~ndisks:t.ndisks entries

let set_striping t name striping =
  update t name (fun e -> { e with striping })

let set_order t name order = update t name (fun e -> { e with order })

(* Index vector and extents in storage order (outermost-varying first). *)
let storage_view (e : entry) idx =
  let dims = e.decl.Dpm_ir.Array_decl.dims in
  match e.order with
  | Row_major -> (dims, idx)
  | Col_major -> (List.rev dims, List.rev idx)

let element_offset t name idx =
  let e = entry t name in
  let dims, idx = storage_view e idx in
  if List.length idx <> List.length dims then
    invalid_arg ("Plan.element_offset: wrong rank for " ^ name);
  List.iter2
    (fun i d ->
      if i < 0 || i >= d then
        invalid_arg ("Plan.element_offset: index out of range for " ^ name))
    idx dims;
  let linear = List.fold_left2 (fun acc i d -> (acc * d) + i) 0 idx dims in
  linear * e.decl.Dpm_ir.Array_decl.elem_size

let element_unit t name idx =
  let e = entry t name in
  Striping.unit_of_offset e.striping (element_offset t name idx)

let unit_disk t name u =
  let e = entry t name in
  Striping.disk_of_unit e.striping ~ndisks:t.ndisks u

let unit_count t name = unit_count_of_entry (entry t name)
let unit_global_block t name u = (placed t name).base_block + u

(* --- Region queries --- *)

let clamp_region dims region =
  List.map2
    (fun d (lo, hi) -> (max 0 lo, min (d - 1) hi))
    dims region

(* Byte runs of a rectangular region, in storage order.  A maximal suffix
   of fully-covered dimensions is folded into the innermost run so that
   whole-array regions cost one run, not one per row. *)
let region_byte_runs (e : entry) region =
  let dims, region = storage_view e region in
  let region = clamp_region dims region in
  if List.exists (fun (lo, hi) -> hi < lo) region then []
  else
    let dims_a = Array.of_list dims in
    let reg_a = Array.of_list region in
    let r = Array.length dims_a in
    (* Find the smallest k such that dims k..r-1 are fully covered. *)
    let full = ref r in
    (try
       for k = r - 1 downto 0 do
         let lo, hi = reg_a.(k) in
         if lo = 0 && hi = dims_a.(k) - 1 then full := k else raise Exit
       done
     with Exit -> ());
    let split = max 1 !full in
    (* A run spans dims split-1 .. r-1: contiguous from the low corner of
       dim split-1 to its high corner, with all inner dims full...  Only
       when dims split..r-1 are fully covered, which holds when
       split >= !full; when split-1 = r-1 the run is just the innermost
       interval. *)
    let inner_extent =
      let x = ref 1 in
      for k = split to r - 1 do
        x := !x * dims_a.(k)
      done;
      !x
    in
    let es = e.decl.Dpm_ir.Array_decl.elem_size in
    let runs = ref [] in
    (* Iterate the outer dims 0 .. split-2; dim split-1 forms the run. *)
    let rec go k prefix =
      if k = split - 1 then begin
        let lo, hi = reg_a.(k) in
        let base = (prefix * dims_a.(k)) + lo in
        let first_elem = base * inner_extent in
        let count = (hi - lo + 1) * inner_extent in
        runs := (first_elem * es, ((first_elem + count) * es) - 1) :: !runs
      end
      else
        let lo, hi = reg_a.(k) in
        for i = lo to hi do
          go (k + 1) ((prefix * dims_a.(k)) + i)
        done
    in
    if r = 0 then []
    else begin
      go 0 0;
      List.rev !runs
    end

let normalize_int_runs runs =
  let sorted = List.sort compare runs in
  let rec merge = function
    | [] -> []
    | [ x ] -> [ x ]
    | (l1, h1) :: (l2, h2) :: rest ->
        if l2 <= h1 + 1 then merge ((l1, max h1 h2) :: rest)
        else (l1, h1) :: merge ((l2, h2) :: rest)
  in
  merge sorted

let region_units t name region =
  let e = entry t name in
  let byte_runs = region_byte_runs e region in
  let ss = e.striping.Striping.stripe_size in
  normalize_int_runs (List.map (fun (b0, b1) -> (b0 / ss, b1 / ss)) byte_runs)

let region_disks t name region =
  let e = entry t name in
  let factor = e.striping.Striping.stripe_factor in
  let runs = region_units t name region in
  let seen = Hashtbl.create 8 in
  (try
     List.iter
       (fun (u0, u1) ->
         (* A run of >= factor units covers the whole stripe. *)
         let u1 = if u1 - u0 + 1 >= factor then u0 + factor - 1 else u1 in
         for u = u0 to u1 do
           Hashtbl.replace seen
             (Striping.disk_of_unit e.striping ~ndisks:t.ndisks u)
             ();
           if Hashtbl.length seen >= min factor t.ndisks then raise Exit
         done)
       runs
   with Exit -> ());
  List.sort compare (Hashtbl.fold (fun d () acc -> d :: acc) seen [])

let pp ppf t =
  Format.fprintf ppf "@[<v>layout over %d disks:@," t.ndisks;
  List.iter
    (fun (name, p) ->
      Format.fprintf ppf "  %s -> %a %s@," name Striping.pp p.entry.striping
        (match p.entry.order with
        | Row_major -> "row-major"
        | Col_major -> "col-major"))
    t.table;
  Format.fprintf ppf "@]"
