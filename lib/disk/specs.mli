(** Disk datasheet parameters (paper Table 1).

    All experiments model the IBM Ultrastar 36Z15, a 15,000-RPM SCSI
    server disk.  The DRPM-specific fields follow Gurumurthi et al.
    (ISCA'03): a ladder of RPM levels, per-level spindle power scaling as
    a power of the rotational speed, and level-transition times far below
    TPM spin-up times. *)

type t = {
  model_name : string;
  capacity_bytes : int;
  rpm_max : int;  (** 15,000 RPM. *)
  avg_seek : float;  (** Average seek time, seconds (3.4 ms). *)
  avg_rotation : float;
      (** Average rotational latency at [rpm_max], seconds (2.0 ms). *)
  transfer_rate : float;  (** Internal rate at [rpm_max], bytes/s (55 MB/s). *)
  p_active : float;  (** Power while servicing at [rpm_max], W (13.5). *)
  p_idle : float;  (** Power while idle at [rpm_max], W (10.2). *)
  p_standby : float;  (** Power spun down, W (2.5). *)
  e_spin_down : float;  (** Energy idle→standby, J (13). *)
  t_spin_down : float;  (** Time idle→standby, s (1.5). *)
  e_spin_up : float;  (** Energy standby→active, J (135). *)
  t_spin_up : float;  (** Time standby→active, s (10.9). *)
  rpm_min : int;  (** Lowest DRPM level, 3,000 RPM. *)
  rpm_step : int;  (** Ladder step, 1,200 RPM. *)
  rpm_transition_per_rpm : float;
      (** Seconds per RPM of speed change (0.10 ms/RPM: one 1,200-RPM step
          takes 120 ms and the full 3,000→15,000 swing ≈ 1.2 s, "much
          smaller" than the 10.9 s spin-up, as the paper requires). *)
  spindle_exponent : float;
      (** Spindle power ∝ (RPM)^e above the standby floor; e = 2.8
          following the DRPM air-drag model. *)
  drpm_window : int;  (** Requests per DRPM observation window (30). *)
}

val ultrastar_36z15 : t
(** The paper's default disk. *)

val ultrastar_36lzx : t
(** Previous-generation 10,000-RPM disk: slower seek/rotation/transfer,
    longer spin-up, six-level DRPM ladder. *)

val flash : t
(** SSD-like tier: flat service time (no rotational latency), a single
    RPM level, and zero-cost instantaneous spin transitions. *)

val all : (string * t) list
(** Model registry in a stable order: short slug -> specs. *)

val of_name_opt : string -> t option
(** Look a model up by registry slug or datasheet [model_name],
    case-insensitively. *)

val name_of : t -> string
(** Registry slug of a known model ([of_name_opt (name_of t) = Some t]);
    falls back to [t.model_name] for ad-hoc records. *)

val pp : Format.formatter -> t -> unit
(** Renders the full Table 1 parameter block (every field). *)
