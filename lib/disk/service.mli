(** Request service-time model.

    A request costs an average seek (speed-independent head movement), a
    rotational latency that scales inversely with the current RPM, and a
    media transfer whose rate scales linearly with RPM — the standard
    DRPM service model.  At full speed and 64 KB this reproduces the
    6.59 ms/request implied by the paper's Table 2 base numbers
    (3.4 + 2.0 + 64 KB / 55 MB/s). *)

val seek_time : Specs.t -> float
(** Average seek; the model charges it on every request (the paper's
    workloads interleave arrays on shared disks, defeating sequential
    head locality). *)

val rotation_time : Specs.t -> level:int -> float
(** Average rotational latency at an RPM level (half a revolution scaled
    from the datasheet's full-speed figure). *)

val transfer_denom : Specs.t -> level:int -> float
(** Effective transfer rate at a level, bytes/s:
    [transfer_time = bytes /. transfer_denom].  Exposed so replay loops
    can hoist the per-level constant out of the per-request body without
    changing a single float operation. *)

val transfer_time : Specs.t -> level:int -> bytes:int -> float

val request_time : Specs.t -> level:int -> bytes:int -> float
(** Seek + rotation + transfer. *)
