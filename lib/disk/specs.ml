type t = {
  model_name : string;
  capacity_bytes : int;
  rpm_max : int;
  avg_seek : float;
  avg_rotation : float;
  transfer_rate : float;
  p_active : float;
  p_idle : float;
  p_standby : float;
  e_spin_down : float;
  t_spin_down : float;
  e_spin_up : float;
  t_spin_up : float;
  rpm_min : int;
  rpm_step : int;
  rpm_transition_per_rpm : float;
  spindle_exponent : float;
  drpm_window : int;
}

let ultrastar_36z15 =
  {
    model_name = "IBM Ultrastar 36Z15";
    capacity_bytes = 18 * 1024 * 1024 * 1024;
    rpm_max = 15_000;
    avg_seek = 3.4e-3;
    avg_rotation = 2.0e-3;
    transfer_rate = 55.0 *. 1024.0 *. 1024.0;
    p_active = 13.5;
    p_idle = 10.2;
    p_standby = 2.5;
    e_spin_down = 13.0;
    t_spin_down = 1.5;
    e_spin_up = 135.0;
    t_spin_up = 10.9;
    rpm_min = 3_000;
    rpm_step = 1_200;
    rpm_transition_per_rpm = 0.10e-3;
    spindle_exponent = 2.8;
    drpm_window = 30;
  }

(* Previous-generation 10,000-RPM server disk (IBM Ultrastar 36LZX
   class): slower seek/rotation/transfer, longer spin-up, and a coarser
   DRPM ladder (3,000..10,000 in 1,400-RPM steps — six levels). *)
let ultrastar_36lzx =
  {
    model_name = "IBM Ultrastar 36LZX";
    capacity_bytes = 36 * 1024 * 1024 * 1024;
    rpm_max = 10_000;
    avg_seek = 4.9e-3;
    avg_rotation = 3.0e-3;
    transfer_rate = 29.0 *. 1024.0 *. 1024.0;
    p_active = 12.6;
    p_idle = 9.5;
    p_standby = 2.3;
    e_spin_down = 11.0;
    t_spin_down = 1.9;
    e_spin_up = 142.0;
    t_spin_up = 13.0;
    rpm_min = 3_000;
    rpm_step = 1_400;
    rpm_transition_per_rpm = 0.14e-3;
    spindle_exponent = 2.8;
    drpm_window = 30;
  }

(* SSD-like tier: no rotating spindle, so a single "RPM" level, flat
   service time (no rotational latency, near-zero positioning cost) and
   zero-cost, zero-time spin transitions.  Spin times of exactly 0 are
   safe: every energy integration guards dt > 0, and the RPM ladder
   degenerates to one level (rpm_min = rpm_max, any positive step). *)
let flash =
  {
    model_name = "Flash SSD";
    capacity_bytes = 32 * 1024 * 1024 * 1024;
    rpm_max = 15_000;
    avg_seek = 0.1e-3;
    avg_rotation = 0.0;
    transfer_rate = 200.0 *. 1024.0 *. 1024.0;
    p_active = 4.5;
    p_idle = 1.2;
    p_standby = 0.3;
    e_spin_down = 0.0;
    t_spin_down = 0.0;
    e_spin_up = 0.0;
    t_spin_up = 0.0;
    rpm_min = 15_000;
    rpm_step = 1_200;
    rpm_transition_per_rpm = 0.0;
    spindle_exponent = 1.0;
    drpm_window = 30;
  }

(* Value-level model registry: short slug -> specs, in a stable order.
   [of_name_opt] also accepts the datasheet [model_name], both
   case-insensitively; [name_of] is the inverse used when persisting a
   fleet (unknown ad-hoc records fall back to their model_name). *)
let all =
  [
    ("ultrastar_36z15", ultrastar_36z15);
    ("ultrastar_36lzx", ultrastar_36lzx);
    ("flash", flash);
  ]

let of_name_opt name =
  let k = String.lowercase_ascii (String.trim name) in
  List.find_map
    (fun (slug, t) ->
      if
        String.equal k slug
        || String.equal k (String.lowercase_ascii t.model_name)
      then Some t
      else None)
    all

let name_of t =
  match List.find_opt (fun (_, t') -> t' = t) all with
  | Some (slug, _) -> slug
  | None -> t.model_name

let pp ppf t =
  let line fmt = Format.fprintf ppf fmt in
  line "Disk Model              %s@," t.model_name;
  line "Storage Capacity        %d GB@," (t.capacity_bytes / (1024 * 1024 * 1024));
  line "Average seek time       %.1f msec@," (t.avg_seek *. 1e3);
  line "Average rotation time   %.1f msec@," (t.avg_rotation *. 1e3);
  line "Internal transfer rate  %.0f MB/sec@," (t.transfer_rate /. (1024. *. 1024.));
  line "Power (active)          %.1f W@," t.p_active;
  line "Power (idle)            %.1f W@," t.p_idle;
  line "Power (standby)         %.1f W@," t.p_standby;
  line "Energy (spin down)      %.0f J@," t.e_spin_down;
  line "Time (spin down)        %.1f sec@," t.t_spin_down;
  line "Energy (spin up)        %.0f J@," t.e_spin_up;
  line "Time (spin up)          %.1f sec@," t.t_spin_up;
  line "Maximum RPM level       %d RPM@," t.rpm_max;
  line "Minimum RPM level       %d RPM@," t.rpm_min;
  line "RPM Step-Size           %d RPM@," t.rpm_step;
  line "RPM transition time     %.2f msec/RPM@," (t.rpm_transition_per_rpm *. 1e3);
  line "Spindle power exponent  %.1f@," t.spindle_exponent;
  line "Window size             %d" t.drpm_window
