let seek_time (s : Specs.t) = s.avg_seek

let rotation_time (s : Specs.t) ~level =
  let rpm = float_of_int (Rpm.rpm_of_level s level) in
  s.avg_rotation *. (float_of_int s.rpm_max /. rpm)

let transfer_denom (s : Specs.t) ~level =
  let frac = float_of_int (Rpm.rpm_of_level s level) /. float_of_int s.rpm_max in
  s.transfer_rate *. frac

let transfer_time (s : Specs.t) ~level ~bytes =
  float_of_int bytes /. transfer_denom s ~level

let request_time s ~level ~bytes =
  seek_time s +. rotation_time s ~level +. transfer_time s ~level ~bytes
