(** Power and energy model, including the per-gap optimization that the
    ideal and compiler-managed schemes share.

    Per-level power follows the DRPM spindle model: the power above the
    standby floor scales as [(rpm / rpm_max) ^ spindle_exponent]; the
    active increment (arm and channel electronics) scales linearly with
    speed. *)

val standby : Specs.t -> float

val idle : Specs.t -> level:int -> float
(** Idle power at an RPM level; equals [p_idle] at the top level. *)

val active : Specs.t -> level:int -> float
(** Power while servicing at an RPM level; equals [p_active] at the top
    level. *)

val spin_up_power : Specs.t -> float
(** Mean power drawn while the spindle accelerates:
    [e_spin_up / t_spin_up]. *)

val spin_down_power : Specs.t -> float
(** Mean power drawn while the spindle brakes:
    [e_spin_down / t_spin_down]. *)

val aborted_spin_up_energy : Specs.t -> fraction:float -> float
(** Energy burned by a spin-up attempt that aborts after [fraction] of
    the full spin-up time (clamped to [\[0, 1\]]): the motor current was
    spent but the disk falls back to standby — the cost a failed,
    retried spin-up pays under fault injection. *)

val tpm_break_even : Specs.t -> float
(** Minimum idle-period length (seconds) for which spinning down saves
    energy, counting transition energies and times:
    the [T] solving [E_down + E_up + P_standby (T - t_down - t_up)
    = P_idle T].  ≈ 15.2 s + transition round trip for the Ultrastar. *)

(** Outcome of optimizing one idle gap. *)
type gap_plan = {
  level : int;  (** Level to drop to (DRPM) — [max_level] means stay. *)
  spin_down : bool;  (** TPM alternative: go to standby. *)
  energy : float;  (** Energy spent over the gap under the plan, J. *)
  down_time : float;  (** Transition time at the start of the gap, s. *)
  up_time : float;  (** Pre-activation lead time before the gap ends, s. *)
}

val baseline_gap_energy : Specs.t -> float -> float
(** Energy of sitting idle at full speed for the gap. *)

val best_gap_plan :
  Specs.t -> from_level:int -> to_level:int -> float -> gap_plan
(** [best_gap_plan specs ~from_level ~to_level gap] chooses the level to
    hold during an idle gap that starts with the disk at [from_level] and
    must end with it at [to_level] (the speed the next phase is served
    at): minimizes transition plus residency energy subject to both
    modulations fitting inside the gap.  When no intermediate level fits,
    the plan holds the higher of the two endpoint levels and charges the
    direct transition. *)

val best_drpm_plan : Specs.t -> float -> gap_plan
(** [best_drpm_plan specs gap] is {!best_gap_plan} anchored at full speed
    on both ends — the classic spin-down-shaped decision. *)

val best_service_level :
  Specs.t -> budget:float -> bytes:int -> int
(** Lowest RPM level whose request service time stays within the given
    per-request time budget (full speed when none does): how both the
    oracle and the compiler pick the speed an {e active} phase is served
    at without delaying the application. *)

val best_tpm_plan : Specs.t -> float -> gap_plan
(** Same decision for a TPM disk: spin down iff the gap exceeds the
    break-even threshold (with the spin-up completing inside the gap). *)
