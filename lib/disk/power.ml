let standby (s : Specs.t) = s.p_standby

let speed_fraction (s : Specs.t) ~level =
  float_of_int (Rpm.rpm_of_level s level) /. float_of_int s.rpm_max

let idle (s : Specs.t) ~level =
  let frac = speed_fraction s ~level in
  s.p_standby +. ((s.p_idle -. s.p_standby) *. (frac ** s.spindle_exponent))

let active (s : Specs.t) ~level =
  idle s ~level +. ((s.p_active -. s.p_idle) *. speed_fraction s ~level)

let spin_up_power (s : Specs.t) = s.e_spin_up /. s.t_spin_up
let spin_down_power (s : Specs.t) = s.e_spin_down /. s.t_spin_down

let aborted_spin_up_energy (s : Specs.t) ~fraction =
  let fraction = Float.max 0.0 (Float.min 1.0 fraction) in
  fraction *. s.e_spin_up

let tpm_break_even (s : Specs.t) =
  (* Solve E_down + E_up + P_standby (T - t_rt) = P_idle T for T, where
     t_rt is the down+up round trip. *)
  let t_rt = s.t_spin_down +. s.t_spin_up in
  let e_transitions = s.e_spin_down +. s.e_spin_up in
  let t = (e_transitions -. (s.p_standby *. t_rt)) /. (s.p_idle -. s.p_standby) in
  max t t_rt

type gap_plan = {
  level : int;
  spin_down : bool;
  energy : float;
  down_time : float;
  up_time : float;
}

let baseline_gap_energy (s : Specs.t) gap =
  s.p_idle *. max 0.0 gap

let stay_plan (s : Specs.t) gap =
  {
    level = Rpm.max_level s;
    spin_down = false;
    energy = baseline_gap_energy s gap;
    down_time = 0.0;
    up_time = 0.0;
  }

let best_gap_plan (s : Specs.t) ~from_level ~to_level gap =
  let gap = max 0.0 gap in
  let hold_fallback = max from_level to_level in
  let plan_for level =
    let down_time =
      Rpm.transition_time s ~from_level ~to_level:level
    in
    let up_time = Rpm.transition_time s ~from_level:level ~to_level in
    if down_time +. up_time > gap then None
    else
      Some
        {
          level;
          spin_down = false;
          energy =
            Rpm.transition_energy s ~from_level ~to_level:level
            +. Rpm.transition_energy s ~from_level:level ~to_level
            +. (idle s ~level *. (gap -. down_time -. up_time));
          down_time;
          up_time;
        }
  in
  let fallback =
    (* Not even holding an endpoint level fits: hold the higher endpoint
       and charge the direct modulation on top. *)
    {
      level = hold_fallback;
      spin_down = false;
      energy =
        (idle s ~level:hold_fallback *. gap)
        +. Rpm.transition_energy s ~from_level ~to_level;
      down_time = 0.0;
      up_time = Rpm.transition_time s ~from_level ~to_level;
    }
  in
  let best = ref fallback in
  let have_feasible = ref false in
  for level = 0 to Rpm.max_level s do
    match plan_for level with
    | None -> ()
    | Some plan ->
        if (not !have_feasible) || plan.energy < !best.energy then begin
          best := plan;
          have_feasible := true
        end
  done;
  !best

let best_drpm_plan (s : Specs.t) gap =
  let top = Rpm.max_level s in
  let plan = best_gap_plan s ~from_level:top ~to_level:top gap in
  (* Preserve the historical tie-break: stay at full speed unless the
     plan strictly saves. *)
  if plan.energy < baseline_gap_energy s gap then plan else stay_plan s gap

let best_service_level (s : Specs.t) ~budget ~bytes =
  let top = Rpm.max_level s in
  let rec scan level =
    if level > top then top
    else if Service.request_time s ~level ~bytes <= budget then level
    else scan (level + 1)
  in
  scan 0

let best_tpm_plan (s : Specs.t) gap =
  let stay = stay_plan s gap in
  if gap < tpm_break_even s then stay
  else
    let energy =
      s.e_spin_down +. s.e_spin_up
      +. (s.p_standby *. (gap -. s.t_spin_down -. s.t_spin_up))
    in
    if energy >= stay.energy then stay
    else
      {
        level = Rpm.max_level s;
        spin_down = true;
        energy;
        down_time = s.t_spin_down;
        up_time = s.t_spin_up;
      }
