(** The fleet simulation service: a job daemon over the domain pool.

    A {!t} accepts {!Run.spec} jobs, schedules them across the OCaml 5
    domain {!Dpm_util.Pool} behind a bounded admission queue, and
    produces one [dpm-report/1] document per job
    ({!Report.document}-built, so the shape matches every other report
    in the system).  Admission is explicitly backpressured: when the
    queue is at capacity, {!submit} returns
    [Error (Queue_full {retry_after})] — the 429 of this protocol —
    and after {!shutdown} begins, [Error Shutting_down].  Metered jobs
    additionally stream live [dpm-meter/1] power samples per scheme as
    their replay closes each meter window, so a shared fleet's live
    power is one subscription rather than a post-hoc file merge.

    Determinism: a job is executed by [Run.exec_all] of its spec with
    observational timeline sinks attached, so every daemon run is
    bit-identical to a direct [Run.exec_all] of the same spec, whatever
    the queue pressure or worker interleaving (pinned by
    [test/test_serve.ml]: N parallel submits over a depth-limited queue
    produce byte-identical reports to serial execution).  Job ids are
    assigned in admission order.

    {!Net} wraps the same service in a line-framed JSON protocol over a
    Unix or TCP socket — the [dpmsim serve] daemon and the
    [dpmsim submit] client (DESIGN.md §16 documents the framing). *)

type t

type outcome = {
  job : int;
  label : string;  (** The spec's workload label ({!Run.workload_label}). *)
  results : (Scheme.t * Dpm_sim.Result.t) list;
  report : Dpm_util.Json.t;  (** The [dpm-report/1] document. *)
  meters : (string * Dpm_sim.Meter.section) list;
      (** Per-scheme [dpm-meter/1] sections, in scheme order; empty for
          unmetered jobs. *)
}

type stats = {
  queued : int;  (** Jobs admitted but not yet picked up by a worker. *)
  running : int;
  completed : int;  (** Jobs finished since {!create} (either outcome). *)
  rejected : int;  (** Submissions bounced with [Queue_full]. *)
}

val create :
  ?domains:int ->
  ?queue:int ->
  ?retry_after:float ->
  ?runner:
    (Run.spec -> ((Scheme.t * Dpm_sim.Result.t) list, Run.error) result) ->
  unit ->
  t
(** Start a service.  [domains] sizes the worker pool
    (default {!Dpm_util.Pool.default_domains}; [1] executes jobs
    serially).  [queue] bounds the number of {e waiting} jobs (default
    64; running jobs do not count) — depth 0 admits a job only when a
    worker picks it up before the next submission.  [retry_after]
    (default 1 s) is the hint carried by [Queue_full] rejections.
    [runner] replaces the job executor (default [Run.exec_all]) — a test
    seam for deterministic backpressure scenarios; the service still
    attaches its sinks and meters to the spec it passes the runner.
    Raises [Invalid_argument] on a negative queue depth or non-positive
    [domains]/[retry_after]. *)

val capacity : t -> int
(** The admission-queue bound. *)

val submit :
  ?meter:float ->
  ?on_sample:(scheme:string -> Dpm_sim.Meter.sample -> unit) ->
  t ->
  Run.spec ->
  (int, Run.error) result
(** Enqueue a job; returns its id immediately (never blocks on
    execution).  Errors: [Queue_full {retry_after}] at capacity,
    [Shutting_down] once {!shutdown} has begun.  [meter] switches on
    power metering at that resolution (seconds per window); [on_sample]
    then fires live from the worker thread as each window closes — it
    must be thread-safe and must not block for long (it runs inside the
    job's replay). *)

val await : t -> int -> (outcome, Run.error) result
(** Block until the job finishes and consume its outcome (a second
    [await] of the same id is [Protocol_error]).  Job-execution failures
    come back as the job's own typed error. *)

val stats : t -> stats

val shutdown : t -> unit
(** Stop admissions, wait until every admitted job has finished (the
    drain guarantee: nothing accepted is ever dropped), and stop the
    worker pool.  Idempotent; pending {!await}s complete.  Concurrent
    {!submit}s observe [Shutting_down]. *)

(** Line-framed JSON over a Unix or TCP socket.

    Every frame is one JSON object on one line ([\n]-terminated).
    Client ops: [{"op":"submit","spec":<dpm-spec/1>,"meter":<s>?}],
    [{"op":"ping"}], [{"op":"shutdown"}].  Server frames for a submit:
    [{"ok":"accepted","job":N}], then for metered jobs sample frames
    [{"job":N,"scheme":S,"sample":{disk,index,t0,t1,watts}}] as they
    close, then the terminal [{"job":N,"report":<dpm-report/1>}] — or a
    typed error object ({!Run.error_to_json}).  Floats print with
    [%.17g], so a streamed sample set integrates to the job's energy
    exactly as the in-process sections do.  Ops on one connection are
    handled strictly in order; concurrent load uses parallel
    connections (one handler thread per connection). *)
module Net : sig
  type address = Unix_path of string | Tcp of { host : string; port : int }

  val address_of_string : string -> address
  (** ["host:port"] (port numeric) is TCP; anything else is a Unix
      socket path. *)

  val address_to_string : address -> string

  val serve : ?backlog:int -> t -> address -> unit
  (** Bind, listen and serve until a client sends the [shutdown] op;
      drains the service ({!shutdown}) before returning.  A stale Unix
      socket path is replaced.  Raises [Unix.Unix_error] on bind
      failures. *)

  type client

  val connect : ?retries:int -> address -> (client, Run.error) result
  (** Dial the daemon.  [retries] (default 50) spaced 0.1 s apart absorb
      daemon start-up; failure is [Protocol_error]. *)

  val close : client -> unit

  val ping : client -> (unit, Run.error) result

  val submit :
    ?meter:float ->
    ?on_sample:(scheme:string -> Dpm_sim.Meter.sample -> unit) ->
    client ->
    Run.spec ->
    (int * Dpm_util.Json.t, Run.error) result
  (** Submit one job and block until its terminal frame: the job id and
      its [dpm-report/1] document.  [on_sample] sees each streamed
      sample frame.  A [Queue_full] rejection surfaces as that typed
      error — the caller owns the retry loop. *)

  val shutdown : client -> (int, Run.error) result
  (** Ask the daemon to drain and exit; returns its completed-job
      count. *)
end
