(** Auto-tuning parameter-space sweeps (ROADMAP item 3).

    A sweep is a declarative list of {!axis} grids over the simulator
    configuration knobs.  {!expand} takes their cartesian product (in
    axis order, values in the given order — fully deterministic);
    {!run} executes every (workload x point) cell through
    {!Run.exec_all} fanned out over [Dpm_util.Pool], so each cell is a
    complete scheme comparison normalized against its own [Base]
    replay, bit-identical at any domain count.

    The analysis layers on top are pure functions of the {!outcome}:
    {!best} (lowest-energy point per workload x scheme), {!winners}
    (lowest-energy {e implementable} scheme per workload — ideal/oracle
    schemes are reported but never win), {!sensitivity} (per-axis-value
    marginal means), and the [dpm-sweep/1] JSON / markdown / text
    renderings.  {!best_spec} reifies a winner back into a replayable
    {!Run.spec} — persisting it with {!Run.to_file} and re-running it
    must reproduce the winning row bit-for-bit. *)

type axis =
  | Tpm_threshold of float list  (** Fixed TPM threshold, seconds. *)
  | Drpm_lower of float list  (** DRPM lower degradation tolerance. *)
  | Drpm_upper of float list  (** DRPM upper degradation tolerance. *)
  | Drpm_window of int list  (** DRPM averaging window, requests. *)
  | Drpm_idle_interval of float list
      (** DRPM idle-controller base interval, seconds. *)
  | Drpm_floor_depth of int list
      (** RPM-drift floor depth (DRPM idle control and the Adaptive
          policy's parking level). *)
  | Queue_depth of int list  (** Per-disk queue depth. *)
  | Pm_call_overhead of float list
      (** Per-directive overhead, seconds (compiler-managed schemes). *)
  | Pre_activation_lead of float list
      (** Extra pre-activation guard band, seconds. *)
  | Sched of Dpm_sim.Config.sched list
      (** Per-disk request-scheduling discipline. *)

val axis_name : axis -> string
(** Canonical kebab-case name (the CLI/JSON vocabulary):
    ["tpm-threshold"], ["drpm-lower"], ["drpm-upper"], ["drpm-window"],
    ["drpm-idle-interval"], ["drpm-floor-depth"], ["queue-depth"],
    ["pm-call-overhead"], ["pre-activation-lead"], ["sched"]. *)

val axis_values : axis -> float list
(** The grid values, integer axes widened to floats.  The categorical
    [Sched] axis is encoded as the float index of each discipline in
    [Dpm_sim.Config.sched_names]; reports render it back by name. *)

type point = (string * float) list
(** One grid coordinate: [(axis_name, value)] pairs in axis order. *)

val apply : Dpm_sim.Config.t -> point -> Dpm_sim.Config.t
(** Fold the point's settings over a configuration with the
    [Config.with_*] updaters.  Raises [Invalid_argument] on an unknown
    axis name (points built by {!expand} are always valid). *)

val expand : axis list -> point list
(** Cartesian product; [expand [] = [[]]] (one empty point). *)

val axes_of_string : string -> (axis list, string) result
(** Parse the CLI grammar: [";"]-separated ["axis=v1,v2,..."] clauses,
    e.g. ["tpm-threshold=4,15.2;drpm-lower=0.02,0.08"].  Integer axes
    round their values; the [sched] axis takes scheduler names
    (["sched=fcfs,sstf,scan"]).  Unknown axes, empty value lists and malformed
    numbers produce a readable error. *)

val point_to_string : point -> string
(** ["tpm-threshold=4, drpm-lower=0.02"] — for tables and logs. *)

(** {1 Running the grid} *)

type cell = {
  workload : string;
  point : point;
  results : (Scheme.t * Dpm_sim.Result.t) list;
}

type outcome = {
  axes : axis list;
  workloads : string list;
  schemes : Scheme.t list;  (** Always includes [Base]. *)
  cells : cell list;  (** Workload-major, then expansion order. *)
}

val default_schemes : Scheme.t list
(** [Base; TPM; DRPM; Adaptive; IDRPM] — the fixed baselines, the
    auto-tuner, and the oracle bound (IDRPM, since the auto-tuner is a
    modulating scheme). *)

val spec_of :
  schemes:Scheme.t list -> workload:string -> point -> Run.spec
(** The exact spec a cell runs: benchmark workload with the point's
    configuration injected via [Run.spec ~sim]. *)

val run :
  ?schemes:Scheme.t list ->
  ?domains:int ->
  axes:axis list ->
  workloads:string list ->
  unit ->
  (outcome, Run.error) result
(** Execute the full grid.  [Base] is added to [schemes] if absent
    (every normalization needs its anchor).  [domains] is passed to
    [Dpm_util.Pool.map]; cells share nothing, so results are identical
    at any domain count.  The first failing cell aborts the sweep. *)

(** {1 Analysis} *)

val best :
  outcome -> (string * Scheme.t * cell * Dpm_sim.Result.t) list
(** Per (workload, non-Base scheme): the cell with the lowest absolute
    energy for that scheme, ties broken toward the earliest grid point.
    Ordered workload-major, then scheme order. *)

val winners : outcome -> (Scheme.t * cell * Dpm_sim.Result.t) list
(** Per workload: the lowest-energy entry of {!best} over the
    {e implementable} schemes (excluding [Base] and
    [Scheme.is_ideal]). *)

val best_spec : outcome -> workload:string -> Run.spec option
(** The winner's cell as a replayable spec (same schemes as the sweep,
    so re-running reproduces the whole row). *)

val sensitivity :
  outcome -> (string * float * (Scheme.t * float) list) list
(** For each (axis, value): the mean normalized energy of every
    non-Base scheme across all cells holding that value, marginalizing
    over workloads and the other axes.  [nan] if the axis value matches
    no cell. *)

(** {1 Reports} *)

val schema_version : string
(** ["dpm-sweep/1"]. *)

val to_json : outcome -> Dpm_util.Json.t
(** The [dpm-sweep/1] document: axes, grid cells (absolute and
    normalized energy/time per scheme), best table, winners,
    sensitivities. *)

val validate : Dpm_util.Json.t -> (unit, string list) result
(** Structural check of a [dpm-sweep/1] document (schema tag, non-empty
    grid, required numeric fields) — the CI artifact gate. *)

val render : outcome -> string
(** Plain-text report: axes, best-configuration table, winners,
    per-axis sensitivity matrix. *)

val markdown : outcome -> string
(** The same report as GitHub-flavored markdown tables. *)

val normalized_table :
  metric:[ `Energy | `Time ] ->
  schemes:Scheme.t list ->
  ?extra:string * (string -> float option) ->
  (string * (Scheme.t * Dpm_sim.Result.t) list) list ->
  string
(** The Fig 3/4 matrix shape shared with [bin/tune]: one row per
    workload (which must include a [Base] result to normalize against),
    one ["%8.3f"] column per scheme, and an AVG row.  [extra] appends
    one more column computed per workload name (["-"] when [None]). *)
