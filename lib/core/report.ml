module Json = Dpm_util.Json
module Metrics = Dpm_util.Metrics
module Telemetry = Dpm_util.Telemetry
module Sim = Dpm_sim

let schema_version = "dpm-report/1"
let bench_schema_version = "dpm-bench/1"

(* Every field below is emitted unconditionally (zero-valued when the
   run had nothing to report), so the document's schema outline is a
   constant of the code, not of the workload — the golden check in
   [make report-check] depends on this. *)

let fault_json (f : Sim.Result.fault_stats) =
  Json.Obj
    [
      ("read_retries", Json.Int f.Sim.Result.read_retries);
      ("retry_delay_s", Json.Float f.Sim.Result.retry_delay);
      ("remaps", Json.Int f.Sim.Result.remaps);
      ("spin_up_recoveries", Json.Int f.Sim.Result.spin_up_recoveries);
      ("redirects", Json.Int f.Sim.Result.redirects);
      ("failed_disks", Json.Int f.Sim.Result.failed_disks);
    ]

let disk_json (d : Sim.Timeline.disk_summary) =
  Json.Obj
    [
      ("disk", Json.Int d.Sim.Timeline.disk);
      ("busy_s", Json.Float d.Sim.Timeline.busy);
      ("ready_s", Json.Float d.Sim.Timeline.ready);
      ("ready_low_s", Json.Float d.Sim.Timeline.ready_low);
      ("changing_s", Json.Float d.Sim.Timeline.changing);
      ("standby_s", Json.Float d.Sim.Timeline.standby);
      ("services", Json.Int d.Sim.Timeline.services);
      ("modulations", Json.Int d.Sim.Timeline.modulations);
      ("spin_downs", Json.Int d.Sim.Timeline.spin_downs);
    ]

let timeline_json (tl : Sim.Timeline.t) (r : Sim.Result.t) =
  let energy = Sim.Timeline.reintegrate tl in
  let rel =
    if r.Sim.Result.energy = 0.0 then abs_float energy.Sim.Timeline.total
    else
      abs_float (energy.Sim.Timeline.total -. r.Sim.Result.energy)
      /. abs_float r.Sim.Result.energy
  in
  let invariants =
    match Sim.Timeline.check tl with
    | Ok () -> []
    | Error msgs -> msgs
  in
  Json.Obj
    [
      ("sim_end_s", Json.Float (Sim.Timeline.sim_end tl));
      ("reintegrated_energy_j", Json.Float energy.Sim.Timeline.total);
      ("energy_match", Json.Bool (rel <= 1e-6));
      ("invariants_ok", Json.Bool (invariants = []));
      ("invariant_errors", Json.Arr (List.map (fun m -> Json.Str m) invariants));
      ( "disks",
        Json.Arr
          (Array.to_list (Array.map disk_json (Sim.Timeline.disk_summaries tl)))
      );
    ]

let scheme_json ~base (scheme, (r : Sim.Result.t)) tl =
  Json.Obj
    [
      ("scheme", Json.Str (Scheme.name scheme));
      ("energy_j", Json.Float r.Sim.Result.energy);
      ("exec_time_s", Json.Float r.Sim.Result.exec_time);
      ("energy_norm", Json.Float (Sim.Result.normalized_energy r ~base));
      ("time_norm", Json.Float (Sim.Result.normalized_time r ~base));
      ("requests", Json.Int (Sim.Result.requests r));
      ("faults", fault_json r.Sim.Result.faults);
      ("timeline", timeline_json tl r);
    ]

let stages_json metrics =
  Json.Arr
    (List.map
       (fun (name, total, calls) ->
         Json.Obj
           [
             ("stage", Json.Str name);
             ("calls", Json.Int calls);
             ("total_s", Json.Float total);
           ])
       (Metrics.spans metrics))

let counters_json metrics =
  Json.Arr
    (List.map
       (fun (name, v) ->
         Json.Obj [ ("counter", Json.Str name); ("value", Json.Int v) ])
       (Metrics.counters metrics))

let mode_name = function `Open -> "open" | `Closed -> "closed"

(* Assemble a dpm-report/1 document from already-executed results.  The
   shape is identical however the run happened — CLI report command,
   sweep cell, or service job — only the collector inputs differ: the
   CLI passes the process-wide histogram/metrics collectors, the service
   passes none (concurrent jobs share those collectors, and service
   responses must be a deterministic function of the job alone). *)
let document ~label ~mode ~version ~faults ~(sim : Sim.Config.t)
    ?(histograms = []) ?metrics ~timeline_of results =
  (* Base anchors the normalized columns when present; otherwise the
     first result does (a service job need not include Base). *)
  let base =
    match List.assoc_opt Scheme.Base results with
    | Some b -> Some b
    | None -> ( match results with (_, r) :: _ -> Some r | [] -> None)
  in
  let histo_rows =
    List.map
      (fun (name, h) ->
        Json.Obj
          [
            ("name", Json.Str name);
            ("count", Json.Int (Dpm_util.Histo.count h));
            ("mean", Json.Float (Dpm_util.Histo.mean h));
            ("min", Json.Float (Dpm_util.Histo.min_value h));
            ("p50", Json.Float (Dpm_util.Histo.quantile h 50.0));
            ("p90", Json.Float (Dpm_util.Histo.quantile h 90.0));
            ("p99", Json.Float (Dpm_util.Histo.quantile h 99.0));
            ("max", Json.Float (Dpm_util.Histo.max_value h));
            (* The mergeable wire form: `dpmsim aggregate` combines a
               sweep's per-run histograms from these. *)
            ("buckets", Dpm_util.Histo.to_json h);
          ])
      histograms
  in
  let scheme_rows =
    match base with
    | None -> []
    | Some base ->
        List.map
          (fun ((s, _) as pair) -> scheme_json ~base pair (timeline_of s))
          results
  in
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("benchmark", Json.Str label);
      ("mode", Json.Str (mode_name mode));
      ("transform", Json.Str (Dpm_compiler.Pipeline.version_name version));
      ("faults", Json.Str (Sim.Fault.to_string faults));
      ("sched", Json.Str (Sim.Config.sched_name sim.Sim.Config.sched));
      (* Semicolon-joined model slugs (a Str, not an Arr: an
         empty fleet must keep the same schema outline). *)
      ( "fleet",
        Json.Str
          (String.concat ";"
             (Array.to_list
                (Array.map Dpm_disk.Specs.name_of sim.Sim.Config.fleet))) );
      ("domains", Json.Int (Dpm_util.Pool.default_domains ()));
      ("schemes", Json.Arr scheme_rows);
      ("histograms", Json.Arr histo_rows);
      ( "stages",
        match metrics with None -> Json.Arr [] | Some m -> stages_json m );
      ( "counters",
        match metrics with None -> Json.Arr [] | Some m -> counters_json m );
    ]

let of_spec ?(force_base = false) spec =
  let ( let* ) = Result.bind in
  let* schemes = Run.schemes_of spec in
  let schemes =
    if force_base && not (List.mem Scheme.Base schemes) then
      Scheme.Base :: schemes
    else schemes
  in
  let spec = Run.with_schemes schemes spec in
  let sinks = List.map (fun s -> (s, Sim.Timeline.sink ())) schemes in
  let spec = Run.with_timeline (fun s -> List.assoc_opt s sinks) spec in
  (* The stage table and the histograms both live on the process-wide
     collectors; switch them on for the duration and restore the flags
     afterwards (recording is observational, so leaving earlier contents
     in place only adds rows — the report of a fresh CLI process is
     exactly this run's). *)
  let tele = Telemetry.global in
  let had_histos = Telemetry.histograms_enabled tele in
  let had_metrics = Metrics.enabled Metrics.global in
  Telemetry.set_histograms tele true;
  Metrics.set_enabled Metrics.global true;
  let restore () =
    Telemetry.set_histograms tele had_histos;
    Metrics.set_enabled Metrics.global had_metrics
  in
  let result = Fun.protect ~finally:restore (fun () -> Run.exec_all spec) in
  match result with
  | Error e -> Error e
  | Ok results ->
      let* label, setup = Run.describe spec in
      Ok
        (document ~label ~mode:setup.Experiment.mode
           ~version:setup.Experiment.version ~faults:setup.Experiment.faults
           ~sim:setup.Experiment.sim
           ~histograms:(Telemetry.histograms tele)
           ~metrics:Metrics.global
           ~timeline_of:(fun s ->
             Sim.Timeline.contents (List.assoc s sinks))
           results)

let run ?(schemes = Scheme.all) ?(mode = `Open)
    ?(version = Dpm_compiler.Pipeline.Orig) ?(faults = Sim.Fault.none)
    ?(sim = Sim.Config.default) benchmark =
  of_spec ~force_base:true
    (Run.spec ~schemes ~sim ~mode ~version ~faults (Run.Benchmark benchmark))

(* --- markdown digest --- *)

let get_str k j = Option.value ~default:"-" (Option.bind (Json.member k j) Json.to_str)

let get_num k j =
  match Option.bind (Json.member k j) Json.to_float with
  | Some f -> Printf.sprintf "%.6g" f
  | None -> "-"

let get_int k j =
  match Option.bind (Json.member k j) Json.to_int with
  | Some i -> string_of_int i
  | None -> "-"

let rows k j = Option.value ~default:[] (Option.bind (Json.member k j) Json.to_list)

let md_table buf header row_of items =
  Buffer.add_string buf ("| " ^ String.concat " | " header ^ " |\n");
  Buffer.add_string buf
    ("|" ^ String.concat "|" (List.map (fun _ -> "---") header) ^ "|\n");
  List.iter
    (fun item ->
      Buffer.add_string buf ("| " ^ String.concat " | " (row_of item) ^ " |\n"))
    items

let markdown doc =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "# dpm run report: %s\n\n" (get_str "benchmark" doc));
  Buffer.add_string buf
    (Printf.sprintf
       "- schema: %s\n- mode: %s\n- transform: %s\n- faults: `%s`\n- sched: \
        %s\n- fleet: %s\n- domains: %s\n\n"
       (get_str "schema" doc) (get_str "mode" doc) (get_str "transform" doc)
       (get_str "faults" doc) (get_str "sched" doc)
       (match get_str "fleet" doc with "" -> "(homogeneous)" | f -> f)
       (get_int "domains" doc));
  Buffer.add_string buf "## Schemes\n\n";
  md_table buf
    [ "scheme"; "energy (J)"; "time (s)"; "E/base"; "T/base"; "requests" ]
    (fun s ->
      [
        get_str "scheme" s;
        get_num "energy_j" s;
        get_num "exec_time_s" s;
        get_num "energy_norm" s;
        get_num "time_norm" s;
        get_int "requests" s;
      ])
    (rows "schemes" doc);
  Buffer.add_string buf "\n## Timeline checks\n\n";
  md_table buf
    [ "scheme"; "sim end (s)"; "reintegrated (J)"; "energy match"; "invariants" ]
    (fun s ->
      let tl = Option.value ~default:Json.Null (Json.member "timeline" s) in
      let b k =
        match Option.bind (Json.member k tl) Json.to_bool with
        | Some true -> "ok"
        | Some false -> "FAIL"
        | None -> "-"
      in
      [
        get_str "scheme" s;
        get_num "sim_end_s" tl;
        get_num "reintegrated_energy_j" tl;
        b "energy_match";
        b "invariants_ok";
      ])
    (rows "schemes" doc);
  (let faulty =
     List.filter
       (fun s ->
         match
           Option.bind
             (Option.bind (Json.member "faults" s) (Json.member "read_retries"))
             Json.to_int
         with
         | Some _ -> true
         | None -> false)
       (rows "schemes" doc)
   in
   Buffer.add_string buf "\n## Fault counters\n\n";
   md_table buf
     [ "scheme"; "retries"; "delay (s)"; "remaps"; "spinup-rec"; "redirects"; "failed" ]
     (fun s ->
       let f = Option.value ~default:Json.Null (Json.member "faults" s) in
       [
         get_str "scheme" s;
         get_int "read_retries" f;
         get_num "retry_delay_s" f;
         get_int "remaps" f;
         get_int "spin_up_recoveries" f;
         get_int "redirects" f;
         get_int "failed_disks" f;
       ])
     faulty);
  Buffer.add_string buf "\n## Histograms\n\n";
  md_table buf
    [ "histogram"; "count"; "mean"; "p50"; "p90"; "p99"; "max" ]
    (fun h ->
      [
        get_str "name" h;
        get_int "count" h;
        get_num "mean" h;
        get_num "p50" h;
        get_num "p90" h;
        get_num "p99" h;
        get_num "max" h;
      ])
    (rows "histograms" doc);
  Buffer.add_string buf "\n## Stage timings\n\n";
  md_table buf
    [ "stage"; "calls"; "total (s)" ]
    (fun s -> [ get_str "stage" s; get_int "calls" s; get_num "total_s" s ])
    (rows "stages" doc);
  Buffer.contents buf

(* --- validation --- *)

let validate doc =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  (match Option.bind (Json.member "schema" doc) Json.to_str with
  | Some s when s = schema_version -> ()
  | Some s -> err "schema is %S, expected %S" s schema_version
  | None -> err "missing schema tag");
  (match Option.bind (Json.member "benchmark" doc) Json.to_str with
  | Some _ -> ()
  | None -> err "missing benchmark");
  (match Option.bind (Json.member "schemes" doc) Json.to_list with
  | None -> err "missing schemes array"
  | Some [] -> err "schemes array is empty"
  | Some schemes ->
      List.iteri
        (fun i s ->
          let num k =
            match Option.bind (Json.member k s) Json.to_float with
            | Some _ -> ()
            | None -> err "scheme %d: missing numeric %s" i k
          in
          num "energy_j";
          num "exec_time_s";
          num "energy_norm";
          num "time_norm";
          (match Option.bind (Json.member "faults" s) (Json.member "read_retries") with
          | Some _ -> ()
          | None -> err "scheme %d: missing fault counters" i);
          match
            Option.bind
              (Option.bind (Json.member "timeline" s)
                 (Json.member "invariants_ok"))
              Json.to_bool
          with
          | Some true -> ()
          | Some false -> err "scheme %d: timeline invariants failed" i
          | None -> err "scheme %d: missing timeline verdict" i)
        schemes);
  (* Histograms and stages may be empty — service-built documents carry
     none (the process-wide collectors are shared across concurrent
     jobs) — but the arrays must be present. *)
  (match Option.bind (Json.member "histograms" doc) Json.to_list with
  | Some _ -> ()
  | None -> err "missing histograms array");
  (match Option.bind (Json.member "stages" doc) Json.to_list with
  | Some _ -> ()
  | None -> err "missing stages array");
  match !errors with [] -> Ok () | es -> Error (List.rev es)

(* --- benchmark snapshots --- *)

let bench_snapshot ?(histograms = false) ?(extra = []) ~figures () =
  let fields =
    [
      ("schema", Json.Str bench_schema_version);
      ("domains", Json.Int (Dpm_util.Pool.default_domains ()));
      ( "figures",
        Json.Arr
          (List.map
             (fun (id, seconds) ->
               Json.Obj
                 [ ("id", Json.Str id); ("seconds", Json.Float seconds) ])
             figures) );
      ("stages", stages_json Metrics.global);
      ("counters", counters_json Metrics.global);
    ]
  in
  let fields =
    if histograms then
      fields @ [ ("histograms", Telemetry.histograms_json Telemetry.global) ]
    else fields
  in
  Json.Obj (fields @ extra)

let validate_bench doc =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  (match Option.bind (Json.member "schema" doc) Json.to_str with
  | Some s when s = bench_schema_version -> ()
  | Some s -> err "schema is %S, expected %S" s bench_schema_version
  | None -> err "missing schema tag");
  (match Option.bind (Json.member "figures" doc) Json.to_list with
  | None -> err "missing figures array"
  | Some [] -> err "figures array is empty"
  | Some figs ->
      List.iteri
        (fun i f ->
          (match Option.bind (Json.member "id" f) Json.to_str with
          | Some _ -> ()
          | None -> err "figure %d: missing id" i);
          match Option.bind (Json.member "seconds" f) Json.to_float with
          | Some s when s >= 0.0 -> ()
          | Some _ -> err "figure %d: negative seconds" i
          | None -> err "figure %d: missing seconds" i)
        figs);
  match !errors with [] -> Ok () | es -> Error (List.rev es)
