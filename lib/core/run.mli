(** The single non-raising entry point for running experiments.

    The layers underneath grew organically and raise on misuse
    ([Scheme.of_name], [Workloads.Suite.find], [Fault.plan], the replay
    engine itself): fine for library code holding values it constructed,
    wrong for drivers handling user input.  [Run] closes the gap: build a
    {!spec} from labelled optional arguments, {!exec} it, and get either
    results or a typed {!error} with a printable message — no exception
    escapes.  [bin/dpmsim] and [bin/tune] go through this module.

    {[
      match Run.exec_all (Run.spec ~scheme_names:[ "Base"; "CMDRPM" ]
                            ?faults (Run.Benchmark "swim")) with
      | Ok results -> ...
      | Error e -> prerr_endline (Run.error_message e)
    ]} *)

type workload =
  | Benchmark of string  (** A suite benchmark by name (resolved here). *)
  | Program of Dpm_ir.Program.t * Dpm_layout.Plan.t
      (** An already-built program and layout plan. *)
  | Trace_file of string
      (** A saved trace file ({!Dpm_trace.Trace.save} format), replayed
          under each scheme via [Experiment.replay_all] — no compilation
          or generation.  Parse failures come back as
          {!Malformed_trace}, never as an exception. *)
  | Open_loop of { load : Dpm_trace.Openloop.t; sources : string list }
      (** An open-loop multi-tenant workload: the load descriptor's
          arrival plan launches independent tenants, each a copy of one
          [sources] entry (a suite benchmark name, or a trace-file path
          when no benchmark matches), merged onto one shared stream
          ({!Dpm_trace.Openloop.merge}) and replayed under each scheme
          via [Experiment.replay_all].  A name that is neither a
          benchmark nor an existing file is {!Unknown_benchmark}. *)

type error =
  | Unknown_benchmark of string
  | Unknown_scheme of string
  | Invalid_faults of string
  | Malformed_trace of string
      (** A [Trace_file] that failed to parse; the message carries
          [path:line:] context. *)
  | Malformed_spec of string
      (** A [dpm-spec/1] document that failed to parse or validate
          ({!of_json}/{!of_file}), or a spec that cannot be serialized
          ({!to_json} on a [Program] workload). *)
  | Run_failure of string
      (** An exception trapped while compiling/replaying (its printed
          form). *)
  | Queue_full of { retry_after : float }
      (** Service admission rejected: the bounded queue is at capacity.
          The 429-style backpressure signal — clients should wait
          [retry_after] seconds before resubmitting. *)
  | Shutting_down
      (** Service admission rejected: the daemon is draining and accepts
          no new jobs. *)
  | Protocol_error of string
      (** A malformed or unexpected frame on the service wire (unknown
          op, invalid JSON, unknown job id). *)

val error_message : error -> string
(** Human-readable message, listing the valid names where relevant. *)

val pp_error : Format.formatter -> error -> unit
(** Prints {!error_message}. *)

val error_to_json : error -> Dpm_util.Json.t
(** Machine-readable form: [{"error": <kind>, ...fields,
    "message": <error_message>}].  Used verbatim as the service's error
    frames. *)

val error_of_json : Dpm_util.Json.t -> (error, string) result
(** Inverse of {!error_to_json} (exact round-trip). *)

type spec
(** A fully described run: schemes × workload × setup. *)

val spec :
  ?schemes:Scheme.t list ->
  ?scheme_names:string list ->
  ?setup:Experiment.setup ->
  ?sim:Dpm_sim.Config.t ->
  ?mode:Dpm_sim.Engine.mode ->
  ?version:Dpm_compiler.Pipeline.version ->
  ?faults:Dpm_sim.Fault.spec ->
  ?timeline:(Scheme.t -> Dpm_sim.Timeline.sink option) ->
  ?stream:bool ->
  ?batch:int ->
  ?core:Dpm_sim.Engine.core ->
  workload ->
  spec
(** [spec workload] runs all seven schemes under a default setup.
    [scheme_names] (checked at {!exec} time) takes precedence over
    [schemes]; [setup] replaces the default setup — for a [Benchmark]
    workload the default inherits the benchmark's calibrated compiler
    noise — and [sim]/[mode]/[version]/[faults]/[stream]/[batch]/[core]
    override the corresponding setup fields either way ([sim] replaces
    the whole simulator configuration: the sweep harness injects its
    per-point configs here without disturbing the calibrated noise).  [stream] selects the fused
    O(batch)-memory pipeline (per-scheme regeneration or incremental
    file parse instead of one shared materialized trace; results are
    byte-identical).  [timeline] supplies a per-scheme
    {!Dpm_sim.Timeline.sink} (as in [Experiment.run_all]); the caller
    keeps the sinks and reads the logs back after {!exec_all}. *)

val of_experiment :
  ?schemes:Scheme.t list -> setup:Experiment.setup -> workload -> spec
(** The [Experiment]→[spec] bridge: package a fully-resolved
    {!Experiment.setup} and a workload as one job value, carrying the
    setup verbatim (no overrides).  This is the canonical direction of
    [Experiment.to_spec] — it lives here because [Run] sits above
    [Experiment] in the library — and makes a CLI invocation, a sweep
    cell and a daemon job the same value on the wire. *)

val workload_label : workload -> string
(** Stable display name: the benchmark or program name, the trace-file
    path, or ["open-loop(src+...)"] — what reports use as their
    [benchmark] field. *)

val describe : spec -> (string * Experiment.setup, error) result
(** The workload label and the fully-resolved setup this spec will run
    under (defaults filled, overrides folded in, fault spec validated) —
    what a report header or a service log needs without executing
    anything. *)

val with_timeline :
  (Scheme.t -> Dpm_sim.Timeline.sink option) -> spec -> spec
(** Attach per-scheme sinks to an already-built spec — how the CLI wires
    power meters onto a [dpm-spec/1] file it parsed ({!of_file} cannot
    carry sinks: they are live mutable state, not data). *)

val schemes_of : spec -> (Scheme.t list, error) result
(** The schemes this spec will run, in order ([scheme_names] resolved —
    the one place {!Unknown_scheme} can surface without executing). *)

val with_schemes : Scheme.t list -> spec -> spec
(** Replace the scheme list (clearing any pending [scheme_names]) — how
    the report path forces [Base] into the set to anchor normalized
    columns. *)

val sim_config : spec -> Dpm_sim.Config.t
(** The simulator configuration this spec will run under ([sim]
    override, else the [setup]'s config, else the default) — what a
    meter needs to resolve per-disk power models before the run. *)

val exec_all : spec -> ((Scheme.t * Dpm_sim.Result.t) list, error) result
(** Resolve names, validate the fault spec, build the workload and run
    every requested scheme (sharing trace generation and the Base replay
    like [Experiment.run_all]).  Never raises: failures inside the
    pipeline come back as [Error (Run_failure _)]. *)

val exec : spec -> (Dpm_sim.Result.t, error) result
(** [exec s] is {!exec_all} reduced to the first requested scheme's
    result — the common single-scheme call. *)

(** {1 Serializable specs — schema [dpm-spec/1]}

    Everything but the observational [timeline] sinks round-trips
    through {!Dpm_util.Json}: workload (benchmark name or trace-file
    path — in-memory [Program]s are rejected), scheme names, the full
    setup, simulator-config overrides, faults (the {!Dpm_sim.Fault}
    CLI syntax), mode/version/stream/batch/core.  Floats print with
    [%.17g], so [of_json] of a written document reproduces the run
    bit-for-bit; optional fields missing from the document fall back to
    their defaults. *)

val spec_schema_version : string
(** ["dpm-spec/1"]. *)

val to_json : spec -> (Dpm_util.Json.t, error) result
(** Fails with {!Malformed_spec} on a [Program] workload (in-memory IR
    has no wire form).  [timeline] is observational and never
    serialized. *)

val of_json : Dpm_util.Json.t -> (spec, error) result

val to_file : spec -> string -> (unit, error) result
(** {!to_json} pretty-printed to a file (the sweep harness's replayable
    winning-point artifact). *)

val of_file : string -> (spec, error) result
(** Parse a [dpm-spec/1] file ([dpmsim simulate --spec]). *)
