(** Regeneration of every table and figure in the paper's evaluation.

    Each function runs the relevant experiments and returns the data in
    row form plus a rendered text table; the benchmark harness prints
    them.  Energy and time are normalized the way the paper normalizes
    (against the Base scheme of the same configuration; Table 2 reports
    the absolute Base numbers). *)

type row = { label : string; cells : (string * float) list }

type figure = {
  id : string;  (** e.g. ["fig3"]. *)
  title : string;
  rows : row list;
  rendered : string;  (** Ready-to-print text table. *)
}

val table1 : unit -> figure
(** Simulation parameters (constants from {!Dpm_disk.Specs}). *)

val table2 : unit -> figure
(** Benchmark characteristics: measured data size, request count, base
    energy, execution time — next to the paper's targets. *)

val fig3 : unit -> figure
(** Normalized energy, 7 schemes × 6 benchmarks. *)

val fig4 : unit -> figure
(** Normalized execution time, same grid. *)

val table3 : unit -> figure
(** Percentage of mispredicted disk speeds, CMDRPM vs IDRPM. *)

val fig5 : unit -> figure
(** swim: normalized energy vs stripe size (16..256 KB). *)

val fig6 : unit -> figure
(** swim: normalized execution time vs stripe size. *)

val fig7 : unit -> figure
(** swim: normalized energy vs stripe factor (2..16 disks). *)

val fig8 : unit -> figure
(** swim: normalized execution time vs stripe factor. *)

val fig13 : unit -> figure
(** Normalized energy of the code-transformation versions (LF, TL,
    LF+DL, TL+DL) under CMTPM and CMDRPM, relative to the untransformed
    Base. *)

val extensions : unit -> figure
(** Extensions beyond the paper: adaptive-threshold TPM (ATPM) and
    multi-nest layout-aware tiling (TLall+DL, the paper's stated future
    work), energy normalized against the untransformed Base. *)

val shared_subsystem : unit -> figure
(** Extension: swim and galgel co-scheduled on one 8-disk subsystem
    (the paper evaluates "one benchmark program at a time").  Each CM
    application is compiled in isolation, so their directives can fight
    over shared disks. *)

val knob_ablation : unit -> figure
(** Sensitivity of the headline result to the modeling knobs DESIGN.md
    introduces (on swim): per-disk queue bound, RPM modulation speed and
    buffer-cache capacity. *)

val closed_loop_ablation : unit -> figure
(** Extension (not in the paper): the same Figure 3/4 grid under the
    stricter closed-loop replay model, where every service delay
    propagates into execution time. *)

val fault_sweep : unit -> figure
(** Extension (not in the paper): swim under increasing fault-injection
    intensity (transient read errors, bad-sector regions, sticking
    spin-ups, a mid-run disk failure and all four at once), energy and
    time normalized to each row's equally-faulted Base, plus the Base
    replay's injected-event count.  How do the schemes compare when
    spin-ups occasionally fail?  Deterministic: fixed seed per row. *)

val degraded_grid : ?faults:Dpm_sim.Fault.spec -> unit -> figure
(** Extension: the full Figure 3 benchmark × scheme energy grid replayed
    under a fault spec (default: a moderate storm — 1% read errors, 0.5%
    bad units, 20% sticking spin-ups, disk 0 dead at 30 s). *)

val traced : string -> (unit -> figure) -> figure
(** [traced id f] builds [f ()] under a [figure.build] telemetry span
    annotated with [id] — one parent per figure in a [--trace] export,
    with the grid's pool tasks underneath.  {!all} and the drivers
    ([dpmsim figure], the benchmark harness) route through it. *)

val all : unit -> figure list
(** Everything above, in paper order (the ablations and fault sweep
    last). *)
