(* Parameter-space sweep harness (ROADMAP item 3).

   A declarative list of axes — grids over the simulator-configuration
   knobs — expands into the cartesian product of points; every
   (workload x point) cell runs through [Run.exec_all] (so each cell is
   a complete scheme comparison with its own Base anchor) fanned out
   over [Dpm_util.Pool].  Cells share nothing, so the grid is
   deterministic at any domain count, and the report sections follow
   the GEOPM power-sweep shape: a per-workload best-configuration
   table, the overall winners (persisted as replayable dpm-spec/1
   files), and per-axis marginal sensitivities. *)

module Sim = Dpm_sim
module Json = Dpm_util.Json
module Pool = Dpm_util.Pool

let schema_version = "dpm-sweep/1"

type axis =
  | Tpm_threshold of float list
  | Drpm_lower of float list
  | Drpm_upper of float list
  | Drpm_window of int list
  | Drpm_idle_interval of float list
  | Drpm_floor_depth of int list
  | Queue_depth of int list
  | Pm_call_overhead of float list
  | Pre_activation_lead of float list
  | Sched of Sim.Config.sched list

let axis_name = function
  | Tpm_threshold _ -> "tpm-threshold"
  | Drpm_lower _ -> "drpm-lower"
  | Drpm_upper _ -> "drpm-upper"
  | Drpm_window _ -> "drpm-window"
  | Drpm_idle_interval _ -> "drpm-idle-interval"
  | Drpm_floor_depth _ -> "drpm-floor-depth"
  | Queue_depth _ -> "queue-depth"
  | Pm_call_overhead _ -> "pm-call-overhead"
  | Pre_activation_lead _ -> "pre-activation-lead"
  | Sched _ -> "sched"

(* The scheduler axis rides the float-valued grid as an index into
   [Config.sched_names] (stable order); rendering turns it back into
   the canonical name. *)
let sched_index s =
  let rec go i = function
    | [] -> invalid_arg "Sweep: unregistered scheduler"
    | (_, v) :: tl -> if v = s then i else go (i + 1) tl
  in
  go 0 Sim.Config.sched_names

let sched_of_index i =
  match List.nth_opt Sim.Config.sched_names i with
  | Some (_, s) -> s
  | None -> invalid_arg "Sweep: scheduler index out of range"

let axis_values = function
  | Tpm_threshold vs
  | Drpm_lower vs
  | Drpm_upper vs
  | Drpm_idle_interval vs
  | Pm_call_overhead vs
  | Pre_activation_lead vs ->
      vs
  | Drpm_window vs | Drpm_floor_depth vs | Queue_depth vs ->
      List.map float_of_int vs
  | Sched vs -> List.map (fun s -> float_of_int (sched_index s)) vs

(* One grid coordinate: (canonical axis name, value) in axis order.
   Integer-valued axes carry their value as a float for uniformity; the
   appliers truncate back. *)
type point = (string * float) list

let apply_setting config (name, v) =
  match name with
  | "tpm-threshold" -> Sim.Config.with_tpm_threshold (Some v) config
  | "drpm-lower" -> Sim.Config.with_drpm_lower v config
  | "drpm-upper" -> Sim.Config.with_drpm_upper v config
  | "drpm-window" -> Sim.Config.with_drpm_window (int_of_float v) config
  | "drpm-idle-interval" -> Sim.Config.with_drpm_idle_interval v config
  | "drpm-floor-depth" ->
      Sim.Config.with_drpm_floor_depth (int_of_float v) config
  | "queue-depth" -> Sim.Config.with_queue_depth (int_of_float v) config
  | "pm-call-overhead" -> Sim.Config.with_pm_call_overhead v config
  | "pre-activation-lead" -> Sim.Config.with_pre_activation_lead v config
  | "sched" -> Sim.Config.with_sched (sched_of_index (int_of_float v)) config
  | _ -> invalid_arg ("Sweep.apply: unknown axis " ^ name)

let apply config (p : point) = List.fold_left apply_setting config p

let expand axes =
  List.fold_right
    (fun axis tails ->
      let name = axis_name axis in
      List.concat_map
        (fun v -> List.map (fun tail -> (name, v) :: tail) tails)
        (axis_values axis))
    axes [ [] ]

(* CLI format: ";"-separated "axis=v1,v2,..." clauses, e.g.
   "tpm-threshold=4,15.2;drpm-lower=0.02,0.08". *)
let axes_of_string s =
  let ( let* ) = Result.bind in
  let axis_of_clause clause =
    match String.index_opt clause '=' with
    | None -> Error (Printf.sprintf "%S: expected axis=v1,v2,..." clause)
    | Some i -> (
        let name = String.trim (String.sub clause 0 i) in
        let rest =
          String.sub clause (i + 1) (String.length clause - i - 1)
        in
        if String.equal name "sched" then
          let* scheds =
            List.fold_left
              (fun acc tok ->
                let* acc = acc in
                let tok = String.trim tok in
                match Sim.Config.sched_of_name_opt tok with
                | Some s -> Ok (s :: acc)
                | None ->
                    Error (Printf.sprintf "sched: unknown scheduler %S" tok))
              (Ok [])
              (String.split_on_char ',' rest)
            |> Result.map List.rev
          in
          let* () =
            if scheds = [] then Error "sched: empty value list" else Ok ()
          in
          Ok (Sched scheds)
        else
        let* values =
          List.fold_left
            (fun acc tok ->
              let* acc = acc in
              let tok = String.trim tok in
              match float_of_string_opt tok with
              | Some v -> Ok (v :: acc)
              | None -> Error (Printf.sprintf "%s: bad value %S" name tok))
            (Ok [])
            (String.split_on_char ',' rest)
          |> Result.map List.rev
        in
        let* () =
          if values = [] then Error (name ^ ": empty value list") else Ok ()
        in
        let ints () =
          List.map (fun v -> int_of_float (Float.round v)) values
        in
        match name with
        | "tpm-threshold" -> Ok (Tpm_threshold values)
        | "drpm-lower" -> Ok (Drpm_lower values)
        | "drpm-upper" -> Ok (Drpm_upper values)
        | "drpm-window" -> Ok (Drpm_window (ints ()))
        | "drpm-idle-interval" -> Ok (Drpm_idle_interval values)
        | "drpm-floor-depth" -> Ok (Drpm_floor_depth (ints ()))
        | "queue-depth" -> Ok (Queue_depth (ints ()))
        | "pm-call-overhead" -> Ok (Pm_call_overhead values)
        | "pre-activation-lead" -> Ok (Pre_activation_lead values)
        | _ ->
            Error
              (Printf.sprintf
                 "unknown axis %S (expected one of: tpm-threshold, \
                  drpm-lower, drpm-upper, drpm-window, drpm-idle-interval, \
                  drpm-floor-depth, queue-depth, pm-call-overhead, \
                  pre-activation-lead, sched)"
                 name))
  in
  List.fold_left
    (fun acc clause ->
      let* acc = acc in
      let clause = String.trim clause in
      if clause = "" then Ok acc
      else
        let* axis = axis_of_clause clause in
        Ok (axis :: acc))
    (Ok [])
    (String.split_on_char ';' s)
  |> Result.map List.rev

let value_to_string n v =
  if String.equal n "sched" then
    Sim.Config.sched_name (sched_of_index (int_of_float v))
  else Printf.sprintf "%g" v

let setting_to_string (n, v) =
  Printf.sprintf "%s=%s" n (value_to_string n v)

let point_to_string (p : point) =
  String.concat ", " (List.map setting_to_string p)

(* --- Running the grid --- *)

type cell = {
  workload : string;
  point : point;
  results : (Scheme.t * Sim.Result.t) list;
}

type outcome = {
  axes : axis list;
  workloads : string list;
  schemes : Scheme.t list;
  cells : cell list;
}

let default_schemes =
  [ Scheme.Base; Scheme.Tpm; Scheme.Drpm; Scheme.Adaptive; Scheme.Idrpm ]

let spec_of ~schemes ~workload point =
  Run.spec ~schemes
    ~sim:(apply Sim.Config.default point)
    (Run.Benchmark workload)

let run ?(schemes = default_schemes) ?domains ~axes ~workloads () =
  let schemes =
    (* Base anchors every cell's normalized columns. *)
    if List.mem Scheme.Base schemes then schemes
    else Scheme.Base :: schemes
  in
  let points = expand axes in
  let tasks =
    List.concat_map
      (fun workload -> List.map (fun p -> (workload, p)) points)
      workloads
  in
  let ran =
    Pool.map ?domains
      (fun (workload, point) ->
        ( (workload, point),
          Run.exec_all (spec_of ~schemes ~workload point) ))
      tasks
  in
  List.fold_left
    (fun acc ((workload, point), r) ->
      let ( let* ) = Result.bind in
      let* acc = acc in
      let* results = r in
      Ok ({ workload; point; results } :: acc))
    (Ok []) ran
  |> Result.map (fun cells -> { axes; workloads; schemes; cells = List.rev cells })

let base_of cell = List.assoc Scheme.Base cell.results

(* Best cell per (workload, scheme): lowest absolute energy, ties to
   the earliest grid point (expansion order is deterministic). *)
let best outcome =
  List.concat_map
    (fun workload ->
      let cells =
        List.filter (fun c -> String.equal c.workload workload) outcome.cells
      in
      List.filter_map
        (fun scheme ->
          if scheme = Scheme.Base then None
          else
            List.fold_left
              (fun best cell ->
                let r = List.assoc scheme cell.results in
                match best with
                | Some (_, (b : Sim.Result.t)) when b.Sim.Result.energy <= r.Sim.Result.energy ->
                    best
                | _ -> Some (cell, r))
              None cells
            |> Option.map (fun (cell, r) -> (workload, scheme, cell, r)))
        outcome.schemes)
    outcome.workloads

(* Overall winner per workload: the implementable (non-ideal, non-Base)
   scheme x point with the lowest energy. *)
let winners outcome =
  List.filter_map
    (fun workload ->
      List.fold_left
        (fun acc (w, scheme, cell, (r : Sim.Result.t)) ->
          if
            (not (String.equal w workload))
            || Scheme.is_ideal scheme
            || scheme = Scheme.Base
          then acc
          else
            match acc with
            | Some (_, _, (b : Sim.Result.t)) when b.Sim.Result.energy <= r.Sim.Result.energy ->
                acc
            | _ -> Some (scheme, cell, r))
        None (best outcome))
    outcome.workloads

let best_spec outcome ~workload =
  List.find_map
    (fun (_scheme, cell, _) ->
      if String.equal cell.workload workload then
        Some (spec_of ~schemes:outcome.schemes ~workload cell.point)
      else None)
    (winners outcome)

(* Marginal sensitivity: for each axis value, the mean normalized
   energy of every non-Base scheme across all cells holding that value
   (marginalizing over workloads and the other axes). *)
let sensitivity outcome =
  let report_schemes =
    List.filter (fun s -> s <> Scheme.Base) outcome.schemes
  in
  List.concat_map
    (fun axis ->
      let name = axis_name axis in
      List.map
        (fun v ->
          let cells =
            List.filter
              (fun c ->
                match List.assoc_opt name c.point with
                | Some v' -> v' = v
                | None -> false)
              outcome.cells
          in
          let n = float_of_int (List.length cells) in
          let means =
            List.map
              (fun scheme ->
                let sum =
                  List.fold_left
                    (fun acc cell ->
                      let r = List.assoc scheme cell.results in
                      acc
                      +. Sim.Result.normalized_energy r ~base:(base_of cell))
                    0.0 cells
                in
                (scheme, if n > 0.0 then sum /. n else Float.nan))
              report_schemes
          in
          (name, v, means))
        (axis_values axis))
    outcome.axes

(* --- Reports --- *)

let point_json (p : point) =
  Json.Obj
    (List.map
       (fun (n, v) ->
         if String.equal n "sched" then
           ( n,
             Json.Str
               (Sim.Config.sched_name (sched_of_index (int_of_float v))) )
         else (n, Json.Float v))
       p)

let to_json outcome =
  let scheme_row cell (scheme, (r : Sim.Result.t)) =
    Json.Obj
      [
        ("scheme", Json.Str (Scheme.name scheme));
        ("energy_j", Json.Float r.Sim.Result.energy);
        ("exec_time_s", Json.Float r.Sim.Result.exec_time);
        ( "energy_norm",
          Json.Float (Sim.Result.normalized_energy r ~base:(base_of cell)) );
        ( "time_norm",
          Json.Float (Sim.Result.normalized_time r ~base:(base_of cell)) );
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ( "workloads",
        Json.Arr (List.map (fun w -> Json.Str w) outcome.workloads) );
      ( "axes",
        Json.Arr
          (List.map
             (fun axis ->
               Json.Obj
                 [
                   ("axis", Json.Str (axis_name axis));
                   ( "values",
                     match axis with
                     | Sched vs ->
                         Json.Arr
                           (List.map
                              (fun s -> Json.Str (Sim.Config.sched_name s))
                              vs)
                     | _ ->
                         Json.Arr
                           (List.map
                              (fun v -> Json.Float v)
                              (axis_values axis)) );
                 ])
             outcome.axes) );
      ( "schemes",
        Json.Arr
          (List.map (fun s -> Json.Str (Scheme.name s)) outcome.schemes) );
      ( "grid",
        Json.Arr
          (List.map
             (fun cell ->
               Json.Obj
                 [
                   ("workload", Json.Str cell.workload);
                   ("point", point_json cell.point);
                   ( "schemes",
                     Json.Arr (List.map (scheme_row cell) cell.results) );
                 ])
             outcome.cells) );
      ( "best",
        Json.Arr
          (List.map
             (fun (workload, scheme, cell, (r : Sim.Result.t)) ->
               Json.Obj
                 [
                   ("workload", Json.Str workload);
                   ("scheme", Json.Str (Scheme.name scheme));
                   ("point", point_json cell.point);
                   ("energy_j", Json.Float r.Sim.Result.energy);
                   ( "energy_norm",
                     Json.Float
                       (Sim.Result.normalized_energy r ~base:(base_of cell))
                   );
                   ( "time_norm",
                     Json.Float
                       (Sim.Result.normalized_time r ~base:(base_of cell)) );
                 ])
             (best outcome)) );
      ( "winners",
        Json.Arr
          (List.map
             (fun (scheme, cell, (r : Sim.Result.t)) ->
               Json.Obj
                 [
                   ("workload", Json.Str cell.workload);
                   ("scheme", Json.Str (Scheme.name scheme));
                   ("point", point_json cell.point);
                   ("energy_j", Json.Float r.Sim.Result.energy);
                 ])
             (winners outcome)) );
      ( "sensitivity",
        Json.Arr
          (List.map
             (fun (axis, v, means) ->
               Json.Obj
                 [
                   ("axis", Json.Str axis);
                   ("value", Json.Float v);
                   ( "mean_energy_norm",
                     Json.Obj
                       (List.map
                          (fun (s, m) -> (Scheme.name s, Json.Float m))
                          means) );
                 ])
             (sensitivity outcome)) );
    ]

let validate j =
  let errs = ref [] in
  let err m = errs := m :: !errs in
  (match Option.bind (Json.member "schema" j) Json.to_str with
  | Some v when String.equal v schema_version -> ()
  | Some v -> err (Printf.sprintf "schema: %S (expected %S)" v schema_version)
  | None -> err "schema: missing");
  (match Option.bind (Json.member "grid" j) Json.to_list with
  | None -> err "grid: missing"
  | Some [] -> err "grid: empty"
  | Some cells ->
      List.iteri
        (fun i cell ->
          let ctx = Printf.sprintf "grid[%d]" i in
          (match Option.bind (Json.member "workload" cell) Json.to_str with
          | Some _ -> ()
          | None -> err (ctx ^ ".workload: missing"));
          match Option.bind (Json.member "schemes" cell) Json.to_list with
          | None | Some [] -> err (ctx ^ ".schemes: missing or empty")
          | Some rows ->
              List.iteri
                (fun k row ->
                  List.iter
                    (fun field ->
                      match
                        Option.bind (Json.member field row) Json.to_float
                      with
                      | Some _ -> ()
                      | None ->
                          err
                            (Printf.sprintf "%s.schemes[%d].%s: missing" ctx
                               k field))
                    [ "energy_j"; "exec_time_s"; "energy_norm"; "time_norm" ])
                rows)
        cells);
  List.iter
    (fun section ->
      match Option.bind (Json.member section j) Json.to_list with
      | None -> err (section ^ ": missing")
      | Some _ -> ())
    [ "best"; "winners"; "sensitivity" ];
  match !errs with [] -> Ok () | errs -> Error (List.rev errs)

(* --- Text / markdown rendering --- *)

let render outcome =
  let b = Buffer.create 4096 in
  let npoints = List.length (expand outcome.axes) in
  Buffer.add_string b
    (Printf.sprintf "== Sweep: %d points x %d workloads, schemes: %s ==\n"
       npoints
       (List.length outcome.workloads)
       (String.concat ","
          (List.map Scheme.name outcome.schemes)));
  List.iter
    (fun axis ->
      Buffer.add_string b
        (Printf.sprintf "  axis %-19s %s\n" (axis_name axis)
           (String.concat ", "
              (List.map
                 (value_to_string (axis_name axis))
                 (axis_values axis)))))
    outcome.axes;
  Buffer.add_string b "\nBest configuration per workload x scheme:\n";
  Buffer.add_string b
    (Printf.sprintf "%-9s %-9s %12s %8s %8s  %s\n" "bench" "scheme"
       "energy(J)" "E/base" "T/base" "point");
  List.iter
    (fun (workload, scheme, cell, (r : Sim.Result.t)) ->
      Buffer.add_string b
        (Printf.sprintf "%-9s %-9s %12.2f %8.3f %8.3f  %s\n" workload
           (Scheme.name scheme) r.Sim.Result.energy
           (Sim.Result.normalized_energy r ~base:(base_of cell))
           (Sim.Result.normalized_time r ~base:(base_of cell))
           (point_to_string cell.point)))
    (best outcome);
  Buffer.add_string b "\nWinners (lowest-energy implementable scheme):\n";
  List.iter
    (fun (scheme, cell, (r : Sim.Result.t)) ->
      Buffer.add_string b
        (Printf.sprintf "%-9s %-9s %12.2f J  at %s\n" cell.workload
           (Scheme.name scheme) r.Sim.Result.energy
           (point_to_string cell.point)))
    (winners outcome);
  Buffer.add_string b "\nPer-axis sensitivity (mean E/base over the grid):\n";
  let report_schemes =
    List.filter (fun s -> s <> Scheme.Base) outcome.schemes
  in
  Buffer.add_string b (Printf.sprintf "%-19s %9s" "axis" "value");
  List.iter
    (fun s -> Buffer.add_string b (Printf.sprintf " %9s" (Scheme.name s)))
    report_schemes;
  Buffer.add_char b '\n';
  List.iter
    (fun (axis, v, means) ->
      Buffer.add_string b
        (Printf.sprintf "%-19s %9s" axis (value_to_string axis v));
      List.iter
        (fun (_, m) -> Buffer.add_string b (Printf.sprintf " %9.3f" m))
        means;
      Buffer.add_char b '\n')
    (sensitivity outcome);
  Buffer.contents b

let markdown outcome =
  let b = Buffer.create 4096 in
  Buffer.add_string b "# Parameter sweep\n\n";
  Buffer.add_string b
    (Printf.sprintf "- workloads: %s\n- schemes: %s\n"
       (String.concat ", " outcome.workloads)
       (String.concat ", " (List.map Scheme.name outcome.schemes)));
  List.iter
    (fun axis ->
      Buffer.add_string b
        (Printf.sprintf "- axis `%s`: %s\n" (axis_name axis)
           (String.concat ", "
              (List.map
                 (value_to_string (axis_name axis))
                 (axis_values axis)))))
    outcome.axes;
  Buffer.add_string b "\n## Best configuration\n\n";
  Buffer.add_string b
    "| bench | scheme | energy (J) | E/base | T/base | point |\n\
     |---|---|---|---|---|---|\n";
  List.iter
    (fun (workload, scheme, cell, (r : Sim.Result.t)) ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %s | %.2f | %.3f | %.3f | %s |\n" workload
           (Scheme.name scheme) r.Sim.Result.energy
           (Sim.Result.normalized_energy r ~base:(base_of cell))
           (Sim.Result.normalized_time r ~base:(base_of cell))
           (point_to_string cell.point)))
    (best outcome);
  Buffer.add_string b "\n## Winners\n\n";
  Buffer.add_string b "| bench | scheme | energy (J) | point |\n|---|---|---|---|\n";
  List.iter
    (fun (scheme, cell, (r : Sim.Result.t)) ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %s | %.2f | %s |\n" cell.workload
           (Scheme.name scheme) r.Sim.Result.energy
           (point_to_string cell.point)))
    (winners outcome);
  Buffer.add_string b "\n## Sensitivity (mean E/base)\n\n";
  let report_schemes =
    List.filter (fun s -> s <> Scheme.Base) outcome.schemes
  in
  Buffer.add_string b
    (Printf.sprintf "| axis | value | %s |\n|---|---|%s\n"
       (String.concat " | " (List.map Scheme.name report_schemes))
       (String.concat "" (List.map (fun _ -> "---|") report_schemes)));
  List.iter
    (fun (axis, v, means) ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %s | %s |\n" axis (value_to_string axis v)
           (String.concat " | "
              (List.map (fun (_, m) -> Printf.sprintf "%.3f" m) means))))
    (sensitivity outcome);
  Buffer.contents b

(* --- Shared normalized-matrix printer (Fig 3/4 shape) ---

   One row per workload, one column per scheme, values normalized to
   each row's Base, plus an AVG row — the format bin/tune.ml prints and
   the figure tables follow.  [extra] appends one more column computed
   per row (tune's misprediction%). *)
let normalized_table ~metric ~schemes ?extra rows =
  let b = Buffer.create 1024 in
  let value r ~base =
    match metric with
    | `Energy -> Sim.Result.normalized_energy r ~base
    | `Time -> Sim.Result.normalized_time r ~base
  in
  Buffer.add_string b (Printf.sprintf "%-9s" "bench");
  List.iter
    (fun s -> Buffer.add_string b (Printf.sprintf " %8s" (Scheme.name s)))
    schemes;
  (match extra with
  | Some (name, _) -> Buffer.add_string b (Printf.sprintf " %8s" name)
  | None -> ());
  Buffer.add_char b '\n';
  let sums = Array.make (List.length schemes) 0.0 in
  List.iter
    (fun (name, results) ->
      Buffer.add_string b (Printf.sprintf "%-9s" name);
      let base = List.assoc Scheme.Base results in
      List.iteri
        (fun i s ->
          let v = value (List.assoc s results) ~base in
          sums.(i) <- sums.(i) +. v;
          Buffer.add_string b (Printf.sprintf " %8.3f" v))
        schemes;
      (match extra with
      | Some (_, f) -> (
          match f name with
          | Some v -> Buffer.add_string b (Printf.sprintf " %8.2f" v)
          | None -> Buffer.add_string b (Printf.sprintf " %8s" "-"))
      | None -> ());
      Buffer.add_char b '\n')
    rows;
  let n = float_of_int (List.length rows) in
  if n > 0.0 then begin
    Buffer.add_string b (Printf.sprintf "%-9s" "AVG");
    Array.iter
      (fun s -> Buffer.add_string b (Printf.sprintf " %8.3f" (s /. n)))
      sums;
    Buffer.add_char b '\n'
  end;
  Buffer.contents b
