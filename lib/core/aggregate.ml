module Json = Dpm_util.Json
module Histo = Dpm_util.Histo
module Table = Dpm_util.Table
module Meter = Dpm_sim.Meter

let schema_version = "dpm-agg/1"

(* --- accumulators --- *)

type fault_acc = {
  mutable read_retries : int;
  mutable retry_delay : float;
  mutable remaps : int;
  mutable spin_up_recoveries : int;
  mutable redirects : int;
  mutable failed_disks : int;
}

type scheme_acc = {
  mutable runs : int;
  mutable energy : float;
  mutable norm_sum : float;
  mutable norm_min : float;
  mutable norm_max : float;
  mutable requests : int;
  mutable invariants_ok : bool;
  fa : fault_acc;
}

type meter_scheme_acc = {
  mutable m_sections : int;
  mutable m_energy : float;
  mutable m_horizon : float;
  mutable m_peak : float;
}

type model_acc = {
  mutable mo_energy : float;
  mutable mo_disks : (string * int, unit) Hashtbl.t;
      (** (section id, disk) pairs — distinct lanes attributed here. *)
}

type t = {
  mutable srcs : (string * string) list;  (* reversed *)
  mutable report_files : int;
  mutable meter_files : int;
  mutable benchmarks : string list;  (* reversed, de-duplicated *)
  mutable schemes : (string * scheme_acc) list;  (* reversed insertion *)
  mutable histos : (string * Histo.t) list;  (* reversed insertion *)
  mutable sections : int;
  mutable dropped : int;
  mutable fleet_energy : float;
  mutable fleet_horizon : float;
  mutable fleet_peak : float;
  mutable meter_schemes : (string * meter_scheme_acc) list;
  mutable models : (string * model_acc) list;
}

let empty () =
  {
    srcs = [];
    report_files = 0;
    meter_files = 0;
    benchmarks = [];
    schemes = [];
    histos = [];
    sections = 0;
    dropped = 0;
    fleet_energy = 0.0;
    fleet_horizon = 0.0;
    fleet_peak = 0.0;
    meter_schemes = [];
    models = [];
  }

let assoc_or key fresh slot =
  match List.assoc_opt key !slot with
  | Some v -> v
  | None ->
      let v = fresh () in
      slot := (key, v) :: !slot;
      v

(* --- report ingest --- *)

let jint k j = Option.value ~default:0 (Option.bind (Json.member k j) Json.to_int)
let jnum k j = Option.value ~default:0.0 (Option.bind (Json.member k j) Json.to_float)
let jstr k j = Option.value ~default:"" (Option.bind (Json.member k j) Json.to_str)
let jrows k j = Option.value ~default:[] (Option.bind (Json.member k j) Json.to_list)

let ingest_report t doc =
  t.report_files <- t.report_files + 1;
  (match jstr "benchmark" doc with
  | "" -> ()
  | b -> if not (List.mem b t.benchmarks) then t.benchmarks <- b :: t.benchmarks);
  List.iter
    (fun s ->
      let name = jstr "scheme" s in
      let slot = ref t.schemes in
      let acc =
        assoc_or name
          (fun () ->
            {
              runs = 0;
              energy = 0.0;
              norm_sum = 0.0;
              norm_min = infinity;
              norm_max = neg_infinity;
              requests = 0;
              invariants_ok = true;
              fa =
                {
                  read_retries = 0;
                  retry_delay = 0.0;
                  remaps = 0;
                  spin_up_recoveries = 0;
                  redirects = 0;
                  failed_disks = 0;
                };
            })
          slot
      in
      t.schemes <- !slot;
      acc.runs <- acc.runs + 1;
      acc.energy <- acc.energy +. jnum "energy_j" s;
      let norm = jnum "energy_norm" s in
      acc.norm_sum <- acc.norm_sum +. norm;
      if norm < acc.norm_min then acc.norm_min <- norm;
      if norm > acc.norm_max then acc.norm_max <- norm;
      acc.requests <- acc.requests + jint "requests" s;
      (match
         Option.bind
           (Option.bind (Json.member "timeline" s)
              (Json.member "invariants_ok"))
           Json.to_bool
       with
      | Some false -> acc.invariants_ok <- false
      | Some true | None -> ());
      match Json.member "faults" s with
      | None -> ()
      | Some f ->
          acc.fa.read_retries <- acc.fa.read_retries + jint "read_retries" f;
          acc.fa.retry_delay <- acc.fa.retry_delay +. jnum "retry_delay_s" f;
          acc.fa.remaps <- acc.fa.remaps + jint "remaps" f;
          acc.fa.spin_up_recoveries <-
            acc.fa.spin_up_recoveries + jint "spin_up_recoveries" f;
          acc.fa.redirects <- acc.fa.redirects + jint "redirects" f;
          acc.fa.failed_disks <- acc.fa.failed_disks + jint "failed_disks" f)
    (jrows "schemes" doc);
  List.iter
    (fun h ->
      match Json.member "buckets" h with
      | None -> ()
      | Some b -> (
          match Histo.of_json b with
          | Error _ -> ()
          | Ok histo ->
              let name = jstr "name" h in
              let slot = ref t.histos in
              let into = assoc_or name Histo.create slot in
              t.histos <- !slot;
              Histo.merge_into ~into histo))
    (jrows "histograms" doc)

(* --- meter ingest --- *)

let ingest_meter_section t ~section_id (sec : Meter.section) =
  t.sections <- t.sections + 1;
  t.dropped <- t.dropped + sec.Meter.m_dropped;
  let slot = ref t.meter_schemes in
  let acc =
    assoc_or sec.Meter.m_scheme
      (fun () ->
        { m_sections = 0; m_energy = 0.0; m_horizon = 0.0; m_peak = 0.0 })
      slot
  in
  t.meter_schemes <- !slot;
  acc.m_sections <- acc.m_sections + 1;
  acc.m_horizon <- acc.m_horizon +. sec.Meter.m_horizon;
  t.fleet_horizon <- t.fleet_horizon +. sec.Meter.m_horizon;
  let nslugs = List.length sec.Meter.m_fleet in
  let slug_of disk =
    if nslugs = 0 then "unknown" else List.nth sec.Meter.m_fleet (disk mod nslugs)
  in
  (* Per-window fleet sums for the peak; lanes are rectangular, so
     summing watts across disks at one window index is summing
     simultaneous power. *)
  let windows = Hashtbl.create 64 in
  List.iter
    (fun (s : Meter.sample) ->
      let e = s.Meter.watts *. (s.Meter.t1 -. s.Meter.t0) in
      acc.m_energy <- acc.m_energy +. e;
      t.fleet_energy <- t.fleet_energy +. e;
      let mslot = ref t.models in
      let macc =
        assoc_or (slug_of s.Meter.disk)
          (fun () -> { mo_energy = 0.0; mo_disks = Hashtbl.create 8 })
          mslot
      in
      t.models <- !mslot;
      macc.mo_energy <- macc.mo_energy +. e;
      Hashtbl.replace macc.mo_disks (section_id, s.Meter.disk) ();
      let prev =
        Option.value ~default:0.0 (Hashtbl.find_opt windows s.Meter.index)
      in
      Hashtbl.replace windows s.Meter.index (prev +. s.Meter.watts))
    sec.Meter.m_samples;
  Hashtbl.iter
    (fun _ w ->
      if w > acc.m_peak then acc.m_peak <- w;
      if w > t.fleet_peak then t.fleet_peak <- w)
    windows

(* --- classification --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let classify_json t path =
  match Json.parse_string (read_file path) with
  | Error e -> Printf.sprintf "skipped: unparseable json (%s)" e
  | Ok doc -> (
      match Option.bind (Json.member "schema" doc) Json.to_str with
      | Some s when s = Report.schema_version ->
          ingest_report t doc;
          "report"
      | Some s -> Printf.sprintf "skipped: schema %s" s
      | None -> "skipped: no schema tag")

let classify_jsonl t path =
  let ic = open_in path in
  match
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Meter.read_jsonl ic)
  with
  | [] -> "skipped: empty meter file"
  | sections ->
      List.iteri
        (fun i sec ->
          ingest_meter_section t
            ~section_id:(Printf.sprintf "%s#%d" path i)
            sec)
        sections;
      "meter"
  | exception Failure m -> Printf.sprintf "skipped: %s" m

let classify t path =
  let kind =
    if not (Sys.file_exists path) then "skipped: no such file"
    else if Sys.is_directory path then "skipped: directory"
    else if Filename.check_suffix path ".json" then classify_json t path
    else if Filename.check_suffix path ".jsonl" then (
      match classify_jsonl t path with
      | "meter" ->
          t.meter_files <- t.meter_files + 1;
          "meter"
      | k -> k)
    else "skipped: unrecognized extension"
  in
  t.srcs <- (path, kind) :: t.srcs

let of_files paths =
  let t = empty () in
  List.iter (classify t) paths;
  t

let of_dir dir =
  match Sys.readdir dir with
  | entries ->
      Array.sort compare entries;
      Ok
        (of_files
           (List.map (Filename.concat dir) (Array.to_list entries)))
  | exception Sys_error m -> Error m

let sources t = List.rev t.srcs

(* --- the document --- *)

let norm_mean a = if a.runs = 0 then 0.0 else a.norm_sum /. float_of_int a.runs
let zero_if_inf v = if Float.is_finite v then v else 0.0

let scheme_row (name, a) =
  Json.Obj
    [
      ("scheme", Json.Str name);
      ("runs", Json.Int a.runs);
      ("energy_j", Json.Float a.energy);
      ("energy_norm_mean", Json.Float (norm_mean a));
      ("energy_norm_min", Json.Float (zero_if_inf a.norm_min));
      ("energy_norm_max", Json.Float (zero_if_inf a.norm_max));
      ("requests", Json.Int a.requests);
      ("invariants_ok", Json.Bool a.invariants_ok);
      ( "faults",
        Json.Obj
          [
            ("read_retries", Json.Int a.fa.read_retries);
            ("retry_delay_s", Json.Float a.fa.retry_delay);
            ("remaps", Json.Int a.fa.remaps);
            ("spin_up_recoveries", Json.Int a.fa.spin_up_recoveries);
            ("redirects", Json.Int a.fa.redirects);
            ("failed_disks", Json.Int a.fa.failed_disks);
          ] );
    ]

let histo_row (name, h) =
  Json.Obj
    [
      ("name", Json.Str name);
      ("count", Json.Int (Histo.count h));
      ("mean", Json.Float (Histo.mean h));
      ("p50", Json.Float (Histo.quantile h 50.0));
      ("p90", Json.Float (Histo.quantile h 90.0));
      ("p99", Json.Float (Histo.quantile h 99.0));
      ("max", Json.Float (Histo.max_value h));
      ("buckets", Histo.to_json h);
    ]

let meter_scheme_row (name, a) =
  Json.Obj
    [
      ("scheme", Json.Str name);
      ("sections", Json.Int a.m_sections);
      ("energy_j", Json.Float a.m_energy);
      ("peak_w", Json.Float a.m_peak);
      ( "mean_w",
        Json.Float (if a.m_horizon > 0.0 then a.m_energy /. a.m_horizon else 0.0)
      );
    ]

let model_row (name, a) =
  Json.Obj
    [
      ("model", Json.Str name);
      ("disks", Json.Int (Hashtbl.length a.mo_disks));
      ("energy_j", Json.Float a.mo_energy);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ( "sources",
        Json.Arr
          (List.map
             (fun (path, kind) ->
               Json.Obj [ ("path", Json.Str path); ("kind", Json.Str kind) ])
             (sources t)) );
      ( "reports",
        Json.Obj
          [
            ("files", Json.Int t.report_files);
            ("benchmarks", Json.Str (String.concat ";" (List.rev t.benchmarks)));
            ("schemes", Json.Arr (List.map scheme_row (List.rev t.schemes)));
            ("histograms", Json.Arr (List.map histo_row (List.rev t.histos)));
          ] );
      ( "meters",
        Json.Obj
          [
            ("files", Json.Int t.meter_files);
            ("sections", Json.Int t.sections);
            ("energy_j", Json.Float t.fleet_energy);
            ("peak_fleet_w", Json.Float t.fleet_peak);
            ( "mean_fleet_w",
              Json.Float
                (if t.fleet_horizon > 0.0 then
                   t.fleet_energy /. t.fleet_horizon
                 else 0.0) );
            ("dropped", Json.Int t.dropped);
            ( "schemes",
              Json.Arr (List.map meter_scheme_row (List.rev t.meter_schemes)) );
            ("models", Json.Arr (List.map model_row (List.rev t.models)));
          ] );
    ]

(* --- rendering --- *)

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "aggregate over %d source file(s): %d report(s), %d meter file(s), %d \
        skipped\n"
       (List.length t.srcs) t.report_files t.meter_files
       (List.length t.srcs - t.report_files - t.meter_files));
  List.iter
    (fun (path, kind) ->
      if
        String.length kind >= 7
        && String.sub kind 0 7 = "skipped"
      then Buffer.add_string buf (Printf.sprintf "  %s: %s\n" path kind))
    (sources t);
  if t.schemes <> [] then begin
    let table =
      Table.create ~title:"reports: per-scheme totals"
        ~columns:
          [
            ("scheme", Table.Left);
            ("runs", Table.Right);
            ("energy-j", Table.Right);
            ("norm-mean", Table.Right);
            ("norm-min", Table.Right);
            ("norm-max", Table.Right);
            ("requests", Table.Right);
            ("invariants", Table.Left);
          ]
    in
    List.iter
      (fun (name, a) ->
        Table.add_row table
          [
            name;
            Table.cell_int a.runs;
            Table.cell_f a.energy;
            Table.cell_f3 (norm_mean a);
            Table.cell_f3 (zero_if_inf a.norm_min);
            Table.cell_f3 (zero_if_inf a.norm_max);
            Table.cell_int a.requests;
            (if a.invariants_ok then "ok" else "FAIL");
          ])
      (List.rev t.schemes);
    Buffer.add_string buf (Table.render table)
  end;
  if t.histos <> [] then begin
    let table =
      Table.create ~title:"reports: merged histograms"
        ~columns:
          [
            ("histogram", Table.Left);
            ("count", Table.Right);
            ("mean", Table.Right);
            ("p50", Table.Right);
            ("p99", Table.Right);
            ("max", Table.Right);
          ]
    in
    List.iter
      (fun (name, h) ->
        Table.add_row table
          [
            name;
            Table.cell_int (Histo.count h);
            Printf.sprintf "%.6g" (Histo.mean h);
            Printf.sprintf "%.6g" (Histo.quantile h 50.0);
            Printf.sprintf "%.6g" (Histo.quantile h 99.0);
            Printf.sprintf "%.6g" (Histo.max_value h);
          ])
      (List.rev t.histos);
    Buffer.add_string buf (Table.render table)
  end;
  if t.meter_schemes <> [] then begin
    let table =
      Table.create ~title:"meters: per-scheme power"
        ~columns:
          [
            ("scheme", Table.Left);
            ("sections", Table.Right);
            ("energy-j", Table.Right);
            ("peak-w", Table.Right);
            ("mean-w", Table.Right);
          ]
    in
    List.iter
      (fun (name, a) ->
        Table.add_row table
          [
            (if name = "" then "(unlabeled)" else name);
            Table.cell_int a.m_sections;
            Table.cell_f a.m_energy;
            Table.cell_f a.m_peak;
            Table.cell_f
              (if a.m_horizon > 0.0 then a.m_energy /. a.m_horizon else 0.0);
          ])
      (List.rev t.meter_schemes);
    Buffer.add_string buf (Table.render table)
  end;
  if t.models <> [] then begin
    let table =
      Table.create ~title:"meters: per-model energy"
        ~columns:
          [
            ("model", Table.Left);
            ("disk-lanes", Table.Right);
            ("energy-j", Table.Right);
          ]
    in
    List.iter
      (fun (name, a) ->
        Table.add_row table
          [ name; Table.cell_int (Hashtbl.length a.mo_disks);
            Table.cell_f a.mo_energy ])
      (List.rev t.models);
    Buffer.add_string buf (Table.render table)
  end;
  if t.sections > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "fleet: %d meter section(s), energy %.2f J, peak %.2f W, mean %.2f \
          W, %d sample(s) dropped\n"
         t.sections t.fleet_energy t.fleet_peak
         (if t.fleet_horizon > 0.0 then t.fleet_energy /. t.fleet_horizon
          else 0.0)
         t.dropped);
  Buffer.contents buf

let markdown t =
  let buf = Buffer.create 1024 in
  let md_table header rows =
    Buffer.add_string buf ("| " ^ String.concat " | " header ^ " |\n");
    Buffer.add_string buf
      ("|" ^ String.concat "|" (List.map (fun _ -> "---") header) ^ "|\n");
    List.iter
      (fun cells ->
        Buffer.add_string buf ("| " ^ String.concat " | " cells ^ " |\n"))
      rows
  in
  Buffer.add_string buf "# dpm sweep aggregate\n\n";
  Buffer.add_string buf
    (Printf.sprintf
       "- schema: %s\n- reports: %d\n- meter files: %d (%d sections)\n- \
        benchmarks: %s\n\n"
       schema_version t.report_files t.meter_files t.sections
       (match List.rev t.benchmarks with
       | [] -> "-"
       | b -> String.concat ";" b));
  Buffer.add_string buf "## Per-scheme report totals\n\n";
  md_table
    [ "scheme"; "runs"; "energy (J)"; "norm mean"; "norm min"; "norm max"; "invariants" ]
    (List.map
       (fun (name, a) ->
         [
           name;
           string_of_int a.runs;
           Printf.sprintf "%.6g" a.energy;
           Printf.sprintf "%.4g" (norm_mean a);
           Printf.sprintf "%.4g" (zero_if_inf a.norm_min);
           Printf.sprintf "%.4g" (zero_if_inf a.norm_max);
           (if a.invariants_ok then "ok" else "FAIL");
         ])
       (List.rev t.schemes));
  Buffer.add_string buf "\n## Merged histograms\n\n";
  md_table
    [ "histogram"; "count"; "mean"; "p50"; "p90"; "p99"; "max" ]
    (List.map
       (fun (name, h) ->
         [
           name;
           string_of_int (Histo.count h);
           Printf.sprintf "%.6g" (Histo.mean h);
           Printf.sprintf "%.6g" (Histo.quantile h 50.0);
           Printf.sprintf "%.6g" (Histo.quantile h 90.0);
           Printf.sprintf "%.6g" (Histo.quantile h 99.0);
           Printf.sprintf "%.6g" (Histo.max_value h);
         ])
       (List.rev t.histos));
  Buffer.add_string buf "\n## Fleet power (meters)\n\n";
  md_table
    [ "scheme"; "sections"; "energy (J)"; "peak (W)"; "mean (W)" ]
    (List.map
       (fun (name, a) ->
         [
           (if name = "" then "(unlabeled)" else name);
           string_of_int a.m_sections;
           Printf.sprintf "%.6g" a.m_energy;
           Printf.sprintf "%.4g" a.m_peak;
           Printf.sprintf "%.4g"
             (if a.m_horizon > 0.0 then a.m_energy /. a.m_horizon else 0.0);
         ])
       (List.rev t.meter_schemes));
  Buffer.add_string buf "\n## Per-model energy\n\n";
  md_table
    [ "model"; "disk lanes"; "energy (J)" ]
    (List.map
       (fun (name, a) ->
         [
           name;
           string_of_int (Hashtbl.length a.mo_disks);
           Printf.sprintf "%.6g" a.mo_energy;
         ])
       (List.rev t.models));
  Buffer.contents buf

(* --- validation --- *)

let validate doc =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  (match Option.bind (Json.member "schema" doc) Json.to_str with
  | Some s when s = schema_version -> ()
  | Some s -> err "schema is %S, expected %S" s schema_version
  | None -> err "missing schema tag");
  (match Option.bind (Json.member "sources" doc) Json.to_list with
  | Some (_ :: _) -> ()
  | Some [] -> err "sources array is empty"
  | None -> err "missing sources array");
  let section name =
    match Json.member name doc with
    | Some (Json.Obj _ as s) -> (
        match Option.bind (Json.member "files" s) Json.to_int with
        | Some n when n >= 0 -> Some s
        | Some _ -> err "%s: negative file count" name; None
        | None -> err "%s: missing files count" name; None)
    | Some _ -> err "%s is not an object" name; None
    | None -> err "missing %s section" name; None
  in
  let reports = section "reports" in
  let meters = section "meters" in
  (match (reports, meters) with
  | Some r, Some m ->
      let files s = Option.value ~default:0 (Option.bind (Json.member "files" s) Json.to_int) in
      if files r = 0 && files m = 0 then
        err "no dpm-report/1 or dpm-meter/1 inputs were aggregated"
  | _ -> ());
  (match reports with
  | Some r ->
      List.iteri
        (fun i s ->
          match Option.bind (Json.member "energy_j" s) Json.to_float with
          | Some _ -> ()
          | None -> err "reports scheme %d: missing energy_j" i)
        (jrows "schemes" r)
  | None -> ());
  (match meters with
  | Some m -> (
      match Option.bind (Json.member "peak_fleet_w" m) Json.to_float with
      | Some _ -> ()
      | None -> err "meters: missing peak_fleet_w")
  | None -> ());
  match !errors with [] -> Ok () | es -> Error (List.rev es)
