(** Machine-readable run reports and benchmark snapshots.

    One {!run} executes a benchmark under a set of schemes with timeline
    recording and telemetry histograms switched on, and condenses
    everything the pipeline knows about the run into a single JSON
    document (schema {!schema_version}): per-scheme energies and
    normalized ratios, fault counters, per-disk timeline summaries with
    the independently re-integrated energy and the invariant-check
    verdict, the registered latency/queue/gap histograms, and the flat
    stage timings.  The same document renders as a markdown digest
    ({!markdown}) and validates structurally ({!validate}) — the golden
    check in [make report-check] compares its
    {!Dpm_util.Json.schema_outline}, so values may change freely while
    the shape is pinned.

    {!bench_snapshot} is the benchmark harness's analogue (schema
    {!bench_schema_version}): per-figure wall times plus the same stage
    and counter tables, the repo's first perf-trajectory artifact. *)

val schema_version : string
(** ["dpm-report/1"]. *)

val bench_schema_version : string
(** ["dpm-bench/1"]. *)

val document :
  label:string ->
  mode:Dpm_sim.Engine.mode ->
  version:Dpm_compiler.Pipeline.version ->
  faults:Dpm_sim.Fault.spec ->
  sim:Dpm_sim.Config.t ->
  ?histograms:(string * Dpm_util.Histo.t) list ->
  ?metrics:Dpm_util.Metrics.t ->
  timeline_of:(Scheme.t -> Dpm_sim.Timeline.t) ->
  (Scheme.t * Dpm_sim.Result.t) list ->
  Dpm_util.Json.t
(** Assemble a {!schema_version} document from already-executed results
    plus their per-scheme timelines.  [Base] anchors the normalized
    columns when present, otherwise the first result does.  [histograms]
    (default none) and [metrics] (default none → empty [stages] /
    [counters] arrays) supply the collector-backed sections — the
    service omits them because the process-wide collectors are shared
    across concurrent jobs, and a job's response must be a function of
    the job alone.  The document shape is identical either way. *)

val of_spec :
  ?force_base:bool -> Run.spec -> (Dpm_util.Json.t, Run.error) result
(** Execute an arbitrary {!Run.spec} with per-scheme timeline sinks and
    the process-wide histogram/metrics collectors enabled (flags
    restored afterwards), and build its report document.  [force_base]
    (default false) adds [Base] to the scheme set first.  This is the
    single report path: {!run} is [of_spec ~force_base:true] of a
    benchmark spec, and a daemon job is the same value reported without
    the shared collectors (see {!document}). *)

val run :
  ?schemes:Scheme.t list ->
  ?mode:Dpm_sim.Engine.mode ->
  ?version:Dpm_compiler.Pipeline.version ->
  ?faults:Dpm_sim.Fault.spec ->
  ?sim:Dpm_sim.Config.t ->
  string ->
  (Dpm_util.Json.t, Run.error) result
(** [run benchmark] simulates the benchmark under [schemes] (default:
    all seven; Base joins the set either way, it anchors the normalized
    columns) and builds the report document.  Metrics and telemetry
    histograms are enabled for the duration and restored afterwards;
    recording is observational, so the simulated numbers are the ones
    every other entry point produces.  [sim] replaces the simulator
    configuration (default {!Dpm_sim.Config.default}): a non-FCFS
    scheduler populates the [sim.sched.wait_s]/[sim.sched.seek_blocks]
    histogram rows, a heterogeneous fleet shows up in the [fleet]
    field.  Every histogram row carries its mergeable
    {!Dpm_util.Histo.to_json} buckets for [dpmsim aggregate]. *)

val markdown : Dpm_util.Json.t -> string
(** Renders a report document as a human-readable markdown digest
    (scheme table, fault counters, histogram quantiles, stage timings).
    Total: unknown fields are skipped, missing ones render as [-]. *)

val validate : Dpm_util.Json.t -> (unit, string list) result
(** Structural check: schema tag, non-empty scheme array, required
    numeric fields per scheme, timeline invariant verdicts present,
    histogram/stage arrays present (possibly empty — service documents
    carry no collector sections).  Used by [dpmsim report-check]. *)

val bench_snapshot :
  ?histograms:bool ->
  ?extra:(string * Dpm_util.Json.t) list ->
  figures:(string * float) list ->
  unit ->
  Dpm_util.Json.t
(** [bench_snapshot ~figures ()] packages per-figure wall-clock seconds
    with the global stage/counter tables (and, when [histograms], the
    registered histogram quantiles) as a {!bench_schema_version}
    document.  [extra] fields are appended verbatim (the harness's
    streaming-vs-materialized memory comparison rides along there). *)

val validate_bench : Dpm_util.Json.t -> (unit, string list) result
