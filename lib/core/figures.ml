module Sim = Dpm_sim
module Layout = Dpm_layout
module Workloads = Dpm_workloads
module Table = Dpm_util.Table

(* Every benchmark×scheme / config×scheme grid below fans out through
   [Pool.map]: each task builds its program, plan, trace and simulator
   state from scratch (share-nothing; see the audit note in DESIGN.md
   §2), so results are bit-identical whatever the domain count. *)
module Pool = Dpm_util.Pool

type row = { label : string; cells : (string * float) list }

type figure = {
  id : string;
  title : string;
  rows : row list;
  rendered : string;
}

let render ~id ~title ~columns rows =
  let t =
    Table.create ~title
      ~columns:
        (("bench", Table.Left)
        :: List.map (fun c -> (c, Table.Right)) columns)
  in
  List.iter
    (fun r ->
      Table.add_row t
        (r.label :: List.map (fun (_, v) -> Table.cell_f3 v) r.cells))
    rows;
  { id; title; rows; rendered = Table.render t }

let scheme_columns = List.map Scheme.name Scheme.all

(* Shared per-benchmark runs under a setup derived per spec. *)
let suite_results ?(mode = `Open) ?(version = Dpm_compiler.Pipeline.Orig)
    ?(faults = Sim.Fault.none) () =
  Pool.map
    (fun (spec : Workloads.Suite.spec) ->
      Dpm_util.Telemetry.span
        ~args:(fun () -> [ ("bench", spec.Workloads.Suite.name) ])
        Dpm_util.Telemetry.global "figure.bench"
      @@ fun () ->
      let p, plan = Experiment.workload spec in
      let setup =
        Experiment.make_setup ~noise:spec.noise ~mode ~version ~faults ()
      in
      (spec, Experiment.run_all ~setup p plan))
    Workloads.Suite.all

let table1 () =
  let specs = Sim.Config.default.Sim.Config.specs in
  let rendered =
    Format.asprintf "== Table 1: Default simulation parameters ==@.@[<v>%a@]@."
      Dpm_disk.Specs.pp specs
    ^ Format.asprintf
        "Striping: stripe unit %a, stripe factor %d, starting disk %d@."
        Dpm_util.Units.pp_bytes
        Layout.Striping.default.Layout.Striping.stripe_size
        Layout.Striping.default.Layout.Striping.stripe_factor
        Layout.Striping.default.Layout.Striping.start_disk
  in
  { id = "table1"; title = "Table 1"; rows = []; rendered }

let table2 () =
  let rows =
    Pool.map
      (fun (spec : Workloads.Suite.spec) ->
        let p, plan = Experiment.workload spec in
        let base = Experiment.run Scheme.Base p plan in
        {
          label = spec.name;
          cells =
            [
              ( "MB",
                Dpm_util.Units.mb_of_bytes (Dpm_ir.Program.total_data_bytes p)
              );
              ("MB(paper)", spec.data_mb);
              ("reqs", float_of_int (Sim.Result.requests base));
              ("reqs(paper)", float_of_int spec.requests);
              ("energy(J)", base.Sim.Result.energy);
              ("energy(paper)", spec.base_energy_j);
              ("time(s)", base.Sim.Result.exec_time);
              ("time(paper)", spec.exec_time_s);
            ];
        })
      Workloads.Suite.all
  in
  render ~id:"table2" ~title:"Table 2: Benchmarks and their characteristics"
    ~columns:
      [
        "MB"; "MB(paper)"; "reqs"; "reqs(paper)"; "energy(J)"; "energy(paper)";
        "time(s)"; "time(paper)";
      ]
    rows

let grid ~id ~title ~metric ?mode ?faults () =
  let rows =
    List.map
      (fun ((spec : Workloads.Suite.spec), results) ->
        let base = List.assoc Scheme.Base results in
        {
          label = spec.name;
          cells =
            List.map
              (fun s ->
                let r = List.assoc s results in
                (Scheme.name s, metric r base))
              Scheme.all;
        })
      (suite_results ?mode ?faults ())
  in
  render ~id ~title ~columns:scheme_columns rows

let fig3 () =
  grid ~id:"fig3" ~title:"Figure 3: Normalized energy consumption"
    ~metric:(fun r base -> Sim.Result.normalized_energy r ~base)
    ()

let fig4 () =
  grid ~id:"fig4" ~title:"Figure 4: Normalized execution time"
    ~metric:(fun r base -> Sim.Result.normalized_time r ~base)
    ()

(* --- fault injection (beyond the paper) --- *)

let degraded_storm =
  Sim.Fault.make ~seed:1905 ~read_error_rate:0.01 ~bad_unit_rate:0.005
    ~spin_up_failure_rate:0.2
    ~disk_failures:[ (0, 30.0) ]
    ()

let degraded_grid ?(faults = degraded_storm) () =
  grid ~id:"fig3-degraded"
    ~title:
      "Figure 3 under fault injection (normalized to each row's faulted Base)"
    ~metric:(fun r base -> Sim.Result.normalized_energy r ~base)
    ~faults ()

let fault_sweep () =
  let spec = Workloads.Suite.find "swim" in
  let schemes = [ Scheme.Base; Scheme.Tpm; Scheme.Drpm; Scheme.Cmdrpm ] in
  let half_life = spec.Workloads.Suite.exec_time_s /. 2.0 in
  let configs =
    [
      ("none", Sim.Fault.none);
      ("read-1%", Sim.Fault.make ~seed:7 ~read_error_rate:0.01 ());
      ("bad-0.5%", Sim.Fault.make ~seed:7 ~bad_unit_rate:0.005 ());
      ("spinfail-25%", Sim.Fault.make ~seed:7 ~spin_up_failure_rate:0.25 ());
      ("disk0-dies", Sim.Fault.make ~seed:7 ~disk_failures:[ (0, half_life) ] ());
      ( "storm",
        Sim.Fault.make ~seed:7 ~read_error_rate:0.01 ~bad_unit_rate:0.005
          ~spin_up_failure_rate:0.25
          ~disk_failures:[ (0, half_life) ]
          () );
    ]
  in
  let rows =
    Pool.map
      (fun (label, faults) ->
        let p, plan = Experiment.workload spec in
        let setup = Experiment.make_setup ~noise:spec.noise ~faults () in
        let results = Experiment.run_all ~setup ~schemes p plan in
        let base = List.assoc Scheme.Base results in
        {
          label;
          cells =
            List.map
              (fun s ->
                ( Scheme.name s ^ "-E",
                  Sim.Result.normalized_energy (List.assoc s results) ~base ))
              schemes
            @ List.map
                (fun s ->
                  ( Scheme.name s ^ "-T",
                    Sim.Result.normalized_time (List.assoc s results) ~base ))
                schemes
            @ [
                ( "events(Base)",
                  float_of_int
                    (Sim.Result.fault_events base.Sim.Result.faults) );
              ];
        })
      configs
  in
  let columns = match rows with [] -> [] | r :: _ -> List.map fst r.cells in
  render ~id:"fault-sweep"
    ~title:
      "Fault sweep: swim under fault injection (normalized to each row's \
       faulted Base)"
    ~columns rows

let table3 () =
  let rows =
    Pool.map
      (fun (spec : Workloads.Suite.spec) ->
        let p, plan = Experiment.workload spec in
        let setup = { Experiment.default_setup with noise = spec.noise } in
        {
          label = spec.name;
          cells =
            [ ("mispredicted(%)", Experiment.misprediction_pct ~setup p plan) ];
        })
      Workloads.Suite.all
  in
  render ~id:"table3" ~title:"Table 3: Percentage of mispredicted disk speeds"
    ~columns:[ "mispredicted(%)" ] rows

(* --- swim sensitivity (Figures 5-8) --- *)

let swim_sensitivity ~configs ~label_of ~metric ~id ~title =
  let spec = Workloads.Suite.find "swim" in
  let schemes = [ Scheme.Tpm; Scheme.Drpm; Scheme.Idrpm; Scheme.Cmdrpm ] in
  let rows =
    Pool.map
      (fun config ->
        let striping, ndisks = config in
        let p = Workloads.Suite.program spec in
        let plan = Layout.Plan.uniform ~striping ~ndisks p in
        let p =
          Workloads.Suite.calibrate ~target_exec:spec.exec_time_s p
            (Workloads.Suite.default_plan ~ndisks:8 p)
        in
        let setup = { Experiment.default_setup with noise = spec.noise } in
        let results = Experiment.run_all ~setup ~schemes:(Scheme.Base :: schemes) p plan in
        let base = List.assoc Scheme.Base results in
        {
          label = label_of config;
          cells =
            List.map
              (fun s -> (Scheme.name s, metric (List.assoc s results) base))
              schemes;
        })
      configs
  in
  render ~id ~title ~columns:(List.map Scheme.name schemes) rows

let stripe_size_configs =
  List.map
    (fun kb ->
      ( Layout.Striping.make ~start_disk:0 ~stripe_factor:8
          ~stripe_size:(Dpm_util.Units.kib kb),
        8 ))
    [ 16; 32; 64; 128; 256 ]

let stripe_size_label (s, _) =
  Printf.sprintf "%dKB" (s.Layout.Striping.stripe_size / 1024)

let stripe_factor_configs =
  List.map
    (fun n ->
      ( Layout.Striping.make ~start_disk:0 ~stripe_factor:n
          ~stripe_size:(Dpm_util.Units.kib 64),
        n ))
    [ 2; 4; 8; 16 ]

let stripe_factor_label (s, _) =
  Printf.sprintf "%d disks" s.Layout.Striping.stripe_factor

let fig5 () =
  swim_sensitivity ~configs:stripe_size_configs ~label_of:stripe_size_label
    ~metric:(fun r base -> Sim.Result.normalized_energy r ~base)
    ~id:"fig5" ~title:"Figure 5: swim energy vs stripe size"

let fig6 () =
  swim_sensitivity ~configs:stripe_size_configs ~label_of:stripe_size_label
    ~metric:(fun r base -> Sim.Result.normalized_time r ~base)
    ~id:"fig6" ~title:"Figure 6: swim execution time vs stripe size"

let fig7 () =
  swim_sensitivity ~configs:stripe_factor_configs ~label_of:stripe_factor_label
    ~metric:(fun r base -> Sim.Result.normalized_energy r ~base)
    ~id:"fig7" ~title:"Figure 7: swim energy vs stripe factor"

let fig8 () =
  swim_sensitivity ~configs:stripe_factor_configs ~label_of:stripe_factor_label
    ~metric:(fun r base -> Sim.Result.normalized_time r ~base)
    ~id:"fig8" ~title:"Figure 8: swim execution time vs stripe factor"

(* --- Figure 13: code transformations --- *)

let fig13 () =
  let versions =
    Dpm_compiler.Pipeline.[ LF; TL; LF_DL; TL_DL ]
  in
  let rows =
    Pool.map
      (fun (spec : Workloads.Suite.spec) ->
        let p, plan = Experiment.workload spec in
        let orig_base = Experiment.run Scheme.Base p plan in
        let cells =
          List.concat_map
            (fun version ->
              let setup =
                {
                  Experiment.default_setup with
                  noise = spec.noise;
                  version;
                }
              in
              let vname = Dpm_compiler.Pipeline.version_name version in
              List.map
                (fun scheme ->
                  let r = Experiment.run ~setup scheme p plan in
                  ( Printf.sprintf "%s/%s" vname (Scheme.name scheme),
                    r.Sim.Result.energy /. orig_base.Sim.Result.energy ))
                [ Scheme.Cmtpm; Scheme.Cmdrpm ])
            versions
        in
        { label = spec.name; cells })
      Workloads.Suite.all
  in
  let columns = match rows with [] -> [] | r :: _ -> List.map fst r.cells in
  render ~id:"fig13"
    ~title:
      "Figure 13: Normalized energy with code transformations (vs untransformed Base)"
    ~columns rows

let extensions () =
  let rows =
    Pool.map
      (fun (spec : Workloads.Suite.spec) ->
        let p, plan = Experiment.workload spec in
        let setup =
          { Experiment.default_setup with noise = spec.noise }
        in
        let base = Experiment.run ~setup Scheme.Base p plan in
        let trace =
          Dpm_trace.Generate.run
            ~config:
              {
                Dpm_trace.Generate.cost = Dpm_ir.Cost.default;
                cache_blocks = setup.Experiment.cache_blocks;
              }
            p plan
        in
        let atpm =
          Sim.Engine.run ~config:setup.Experiment.sim
            (Sim.Policy.tpm_adaptive setup.Experiment.sim
               ~ndisks:(Dpm_trace.Trace.ndisks trace))
            trace
        in
        let tl_all =
          Experiment.run
            ~setup:{ setup with version = Dpm_compiler.Pipeline.TL_ALL_DL }
            Scheme.Cmdrpm p plan
        in
        {
          label = spec.name;
          cells =
            [
              ("ATPM-E", Sim.Result.normalized_energy atpm ~base);
              ("ATPM-T", Sim.Result.normalized_time atpm ~base);
              ( "TLall+DL/CMDRPM-E",
                tl_all.Sim.Result.energy /. base.Sim.Result.energy );
              ( "TLall+DL/CMDRPM-T",
                tl_all.Sim.Result.exec_time /. base.Sim.Result.exec_time );
            ];
        })
      Workloads.Suite.all
  in
  render ~id:"ext"
    ~title:
      "Extensions: adaptive-threshold TPM and multi-nest tiling (vs untransformed Base)"
    ~columns:[ "ATPM-E"; "ATPM-T"; "TLall+DL/CMDRPM-E"; "TLall+DL/CMDRPM-T" ]
    rows

let shared_subsystem () =
  let specs = Sim.Config.default.Sim.Config.specs in
  let load name =
    let spec = Workloads.Suite.find name in
    let p, plan = Experiment.workload spec in
    (spec, p, plan)
  in
  let sw_spec, sw_p, sw_plan = load "swim" in
  let gg_spec, gg_p, gg_plan = load "galgel" in
  let gen p plan =
    Dpm_trace.Generate.run
      ~config:
        {
          Dpm_trace.Generate.cost = Dpm_ir.Cost.default;
          cache_blocks = Workloads.Suite.cache_blocks;
        }
      p plan
  in
  let plain = [ gen sw_p sw_plan; gen gg_p gg_plan ] in
  let cm_trace (spec : Workloads.Suite.spec) p plan =
    let compiled =
      Dpm_compiler.Pipeline.compile ~scheme:Dpm_compiler.Insertion.Drpm
        ~noise:spec.noise ~cache_blocks:Workloads.Suite.cache_blocks ~specs p
        plan
    in
    gen compiled.Dpm_compiler.Pipeline.program plan
  in
  let base = Sim.Engine.run_many Sim.Policy.base plain in
  let drpm =
    Sim.Engine.run_many (Sim.Policy.drpm Sim.Config.default ~ndisks:8) plain
  in
  let idrpm = Sim.Oracle.idrpm base in
  let cmdrpm =
    Sim.Engine.run_many Sim.Policy.cm_drpm
      [ cm_trace sw_spec sw_p sw_plan; cm_trace gg_spec gg_p gg_plan ]
  in
  let row label (r : Sim.Result.t) =
    {
      label;
      cells =
        [
          ("energy(J)", r.Sim.Result.energy);
          ("E/base", Sim.Result.normalized_energy r ~base);
          ("T/base", Sim.Result.normalized_time r ~base);
        ];
    }
  in
  render ~id:"ext-shared"
    ~title:"Extension: swim + galgel co-scheduled on one subsystem"
    ~columns:[ "energy(J)"; "E/base"; "T/base" ]
    [
      row "Base" base; row "DRPM" drpm; row "IDRPM" idrpm; row "CMDRPM" cmdrpm;
    ]

let knob_ablation () =
  let spec = Workloads.Suite.find "swim" in
  let p, plan = Experiment.workload spec in
  let run_with sim =
    let setup = { Experiment.default_setup with noise = spec.noise; sim } in
    let results =
      Experiment.run_all ~setup
        ~schemes:[ Scheme.Base; Scheme.Drpm; Scheme.Cmdrpm ]
        p plan
    in
    let base = List.assoc Scheme.Base results in
    let v s metric = metric (List.assoc s results) base in
    [
      ("DRPM-E", v Scheme.Drpm (fun r b -> Sim.Result.normalized_energy r ~base:b));
      ("CMDRPM-E", v Scheme.Cmdrpm (fun r b -> Sim.Result.normalized_energy r ~base:b));
      ("CMDRPM-T", v Scheme.Cmdrpm (fun r b -> Sim.Result.normalized_time r ~base:b));
    ]
  in
  let default = Sim.Config.default in
  let rows =
    Pool.map
      (fun (label, sim) -> { label; cells = run_with sim })
      [
        ("default", default);
        ("queue=4", Sim.Config.with_queue_depth 4 default);
        ("queue=128", Sim.Config.with_queue_depth 128 default);
        ( "rpm 0.05ms",
          Sim.Config.with_specs
            {
              default.Sim.Config.specs with
              Dpm_disk.Specs.rpm_transition_per_rpm = 0.05e-3;
            }
            default );
        ( "rpm 0.20ms",
          Sim.Config.with_specs
            {
              default.Sim.Config.specs with
              Dpm_disk.Specs.rpm_transition_per_rpm = 0.20e-3;
            }
            default );
        ( "idle-step 0.5s", Sim.Config.with_drpm_idle_interval 0.5 default );
      ]
  in
  render ~id:"ablation-knobs"
    ~title:"Ablation: modeling knobs on swim (normalized to each row's Base)"
    ~columns:[ "DRPM-E"; "CMDRPM-E"; "CMDRPM-T" ]
    rows

let closed_loop_ablation () =
  let rows =
    List.concat_map
      (fun ((spec : Workloads.Suite.spec), results) ->
        let base = List.assoc Scheme.Base results in
        [
          {
            label = spec.name ^ "/E";
            cells =
              List.map
                (fun s ->
                  ( Scheme.name s,
                    Sim.Result.normalized_energy (List.assoc s results) ~base
                  ))
                Scheme.all;
          };
          {
            label = spec.name ^ "/T";
            cells =
              List.map
                (fun s ->
                  ( Scheme.name s,
                    Sim.Result.normalized_time (List.assoc s results) ~base ))
                Scheme.all;
          };
        ])
      (suite_results ~mode:`Closed ())
  in
  render ~id:"ablation-closed"
    ~title:
      "Ablation: closed-loop replay (every delay propagates; /E energy, /T time)"
    ~columns:scheme_columns rows

(* One top-level span per figure: the trace shows each figure as a
   parent with its grid's [pool.task] jobs fanned out underneath. *)
let traced id f =
  Dpm_util.Telemetry.span
    ~args:(fun () -> [ ("figure", id) ])
    Dpm_util.Telemetry.global "figure.build" f

let all () =
  List.map
    (fun (id, f) -> traced id f)
    [
      ("table1", table1);
      ("table2", table2);
      ("fig3", fig3);
      ("fig4", fig4);
      ("table3", table3);
      ("fig5", fig5);
      ("fig6", fig6);
      ("fig7", fig7);
      ("fig8", fig8);
      ("fig13", fig13);
      ("extensions", extensions);
      ("shared", shared_subsystem);
      ("knobs", knob_ablation);
      ("closed-loop", closed_loop_ablation);
      ("faults", fault_sweep);
    ]
