(** The seven disk power-management schemes of the paper's §4.2, plus
    the repo's online auto-tuning extension. *)

type t =
  | Base  (** No power management. *)
  | Tpm  (** Reactive threshold spin-down. *)
  | Itpm  (** Oracle TPM (not implementable; upper bound). *)
  | Drpm  (** Reactive dynamic RPM (Gurumurthi et al.). *)
  | Idrpm  (** Oracle DRPM. *)
  | Cmtpm  (** Compiler-managed TPM — this paper. *)
  | Cmdrpm  (** Compiler-managed DRPM — this paper. *)
  | Adaptive
      (** Online auto-tuning controller ({!Dpm_sim.Policy.adaptive}):
          EWMA gap prediction with hill-climbed per-disk thresholds.
          An extension — not part of the paper's seven, so excluded
          from {!all} (and every figure/golden built on it); request it
          by name or via {!extended}. *)

val all : t list
(** The paper's seven schemes, in presentation order. *)

val extended : t list
(** {!all} plus the extensions ([Adaptive]). *)

val name : t -> string

val names : string list
(** Canonical names of {!all}, in presentation order. *)

val extended_names : string list
(** Canonical names of {!extended}. *)

val of_name_opt : string -> t option
(** Case-insensitive lookup over {!extended}. *)

val of_name : string -> t
  [@@ocaml.deprecated "Use of_name_opt (or Scheme.conv on the CLI)."]
(** Case-insensitive; raises [Not_found].  Deprecated: user-facing
    lookups should go through {!of_name_opt} or {!conv} so unknown names
    produce a readable error. *)

val conv : t Cmdliner.Arg.conv
(** Cmdliner converter; an unknown name errors with the valid list. *)

val is_compiler_managed : t -> bool
val is_ideal : t -> bool
