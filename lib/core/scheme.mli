(** The seven disk power-management schemes of the paper's §4.2. *)

type t =
  | Base  (** No power management. *)
  | Tpm  (** Reactive threshold spin-down. *)
  | Itpm  (** Oracle TPM (not implementable; upper bound). *)
  | Drpm  (** Reactive dynamic RPM (Gurumurthi et al.). *)
  | Idrpm  (** Oracle DRPM. *)
  | Cmtpm  (** Compiler-managed TPM — this paper. *)
  | Cmdrpm  (** Compiler-managed DRPM — this paper. *)

val all : t list
(** In the paper's presentation order. *)

val name : t -> string

val names : string list
(** Canonical scheme names, in presentation order. *)

val of_name_opt : string -> t option
(** Case-insensitive lookup. *)

val of_name : string -> t
  [@@ocaml.deprecated "Use of_name_opt (or Scheme.conv on the CLI)."]
(** Case-insensitive; raises [Not_found].  Deprecated: user-facing
    lookups should go through {!of_name_opt} or {!conv} so unknown names
    produce a readable error. *)

val conv : t Cmdliner.Arg.conv
(** Cmdliner converter; an unknown name errors with the valid list. *)

val is_compiler_managed : t -> bool
val is_ideal : t -> bool
