module Sim = Dpm_sim
module Compiler = Dpm_compiler
module Trace = Dpm_trace
module Workloads = Dpm_workloads
module Metrics = Dpm_util.Metrics
module Telemetry = Dpm_util.Telemetry

type setup = {
  sim : Sim.Config.t;
  mode : Sim.Engine.mode;
  cache_blocks : int;
  noise : float;
  seed : int;
  version : Compiler.Pipeline.version;
  faults : Sim.Fault.spec;
  stream : bool;
  batch : int;
  core : Sim.Engine.core;
}

let make_setup ?(sim = Sim.Config.default) ?(mode = `Open)
    ?(cache_blocks = Workloads.Suite.cache_blocks) ?(noise = 0.0) ?(seed = 42)
    ?(version = Compiler.Pipeline.Orig) ?(faults = Sim.Fault.none)
    ?(stream = false) ?(batch = Trace.Trace.Stream.default_batch)
    ?(core = `Fast) () =
  { sim; mode; cache_blocks; noise; seed; version; faults; stream; batch; core }

let default_setup = make_setup ()

let gen_config (setup : setup) =
  {
    Trace.Generate.cost = Dpm_ir.Cost.default;
    cache_blocks = setup.cache_blocks;
  }

let transformed setup p plan =
  Telemetry.span
    ~args:(fun () ->
      [
        ("program", p.Dpm_ir.Program.name);
        ("version", Compiler.Pipeline.version_name setup.version);
      ])
    Telemetry.global "compile.transform"
    (fun () -> Compiler.Pipeline.transform setup.version p plan)

let compile_cm setup scheme p plan =
  let ischeme =
    match scheme with
    | Scheme.Cmtpm -> Compiler.Insertion.Tpm
    | Scheme.Cmdrpm -> Compiler.Insertion.Drpm
    | Scheme.Base | Scheme.Tpm | Scheme.Itpm | Scheme.Drpm | Scheme.Idrpm
    | Scheme.Adaptive ->
        invalid_arg "Experiment.compile_cm: not a compiler-managed scheme"
  in
  Telemetry.span
    ~args:(fun () ->
      [ ("program", p.Dpm_ir.Program.name); ("scheme", Scheme.name scheme) ])
    Telemetry.global "compile.cm"
    (fun () ->
      Compiler.Pipeline.compile ~scheme:ischeme ~noise:setup.noise
        ~seed:setup.seed ~cache_blocks:setup.cache_blocks
        ~pm_overhead:setup.sim.Sim.Config.pm_call_overhead
        ~pre_lead:setup.sim.Sim.Config.pre_activation_lead
        ~serve_slow:(match setup.mode with `Open -> true | `Closed -> false)
        ~specs:setup.sim.Sim.Config.specs p plan)

let run_cm ?timeline setup scheme p plan =
  let compiled = compile_cm setup scheme p plan in
  let policy =
    match scheme with
    | Scheme.Cmtpm -> Sim.Policy.cm_tpm
    | Scheme.Cmdrpm | Scheme.Base | Scheme.Tpm | Scheme.Itpm | Scheme.Drpm
    | Scheme.Idrpm | Scheme.Adaptive ->
        Sim.Policy.cm_drpm
  in
  let stream =
    if setup.stream then
      Trace.Generate.stream ~config:(gen_config setup) ~batch:setup.batch
        compiled.Compiler.Pipeline.program plan
    else
      Trace.Trace.Stream.of_trace ~batch:setup.batch
        (Trace.Generate.run ~config:(gen_config setup)
           compiled.Compiler.Pipeline.program plan)
  in
  Sim.Engine.run_stream ~config:setup.sim ~mode:setup.mode
    ~faults:setup.faults ?timeline ~core:setup.core policy stream

let run_all ?(setup = default_setup) ?timeline ?(schemes = Scheme.all) p plan =
  let sink_for scheme =
    match timeline with None -> None | Some f -> f scheme
  in
  let p, plan = transformed setup p plan in
  (* Non-streaming setups generate the trace once and share slices of it
     across schemes; [setup.stream] trades that sharing for a fused
     generate→replay per scheme in O(batch) peak memory. *)
  let trace = lazy (Trace.Generate.run ~config:(gen_config setup) p plan) in
  let stream_of () =
    if setup.stream then
      Trace.Generate.stream ~config:(gen_config setup) ~batch:setup.batch p
        plan
    else Trace.Trace.Stream.of_trace ~batch:setup.batch (Lazy.force trace)
  in
  let base =
    lazy
      (Sim.Engine.run_stream ~config:setup.sim ~mode:setup.mode
         ~faults:setup.faults ?timeline:(sink_for Scheme.Base)
         ~core:setup.core Sim.Policy.base (stream_of ()))
  in
  List.map
    (fun scheme ->
      let result =
        Telemetry.span
          ~args:(fun () ->
            [
              ("scheme", Scheme.name scheme);
              ("program", p.Dpm_ir.Program.name);
            ])
          Telemetry.global "experiment.scheme"
        @@ fun () ->
        match scheme with
        | Scheme.Base -> Lazy.force base
        | Scheme.Tpm ->
            Sim.Engine.run_stream ~config:setup.sim ~mode:setup.mode
              ~faults:setup.faults ?timeline:(sink_for scheme)
              ~core:setup.core
              (Sim.Policy.tpm setup.sim)
              (stream_of ())
        | Scheme.Drpm ->
            Sim.Engine.run_stream ~config:setup.sim ~mode:setup.mode
              ~faults:setup.faults ?timeline:(sink_for scheme)
              ~core:setup.core
              (Sim.Policy.drpm setup.sim
                 ~ndisks:(Dpm_layout.Plan.ndisks plan))
              (stream_of ())
        | Scheme.Adaptive ->
            (* A fresh policy per replay: the controller's learned state
               must not leak across runs (share-nothing determinism). *)
            Sim.Engine.run_stream ~config:setup.sim ~mode:setup.mode
              ~faults:setup.faults ?timeline:(sink_for scheme)
              ~core:setup.core
              (Sim.Policy.adaptive setup.sim
                 ~ndisks:(Dpm_layout.Plan.ndisks plan))
              (stream_of ())
        | Scheme.Itpm ->
            Sim.Oracle.itpm ~config:setup.sim ?timeline:(sink_for scheme)
              (Lazy.force base)
        | Scheme.Idrpm ->
            Sim.Oracle.idrpm ~config:setup.sim ?timeline:(sink_for scheme)
              (Lazy.force base)
        | Scheme.Cmtpm | Scheme.Cmdrpm ->
            run_cm ?timeline:(sink_for scheme) setup scheme p plan
      in
      (scheme, result))
    schemes

(* Replay externally-produced streams (trace files, pre-generated
   traces) under each scheme.  [source] must yield a fresh stream per
   call — each replay consumes one.  CM schemes replay whatever
   directives the trace embeds; oracle schemes derive from the shared
   Base replay as usual. *)
let replay_all ?(setup = default_setup) ?timeline ?(schemes = Scheme.all)
    source =
  let sink_for scheme =
    match timeline with None -> None | Some f -> f scheme
  in
  let replay ?timeline policy =
    Sim.Engine.run_stream ~config:setup.sim ~mode:setup.mode
      ~faults:setup.faults ?timeline ~core:setup.core policy (source ())
  in
  let base =
    lazy (replay ?timeline:(sink_for Scheme.Base) Sim.Policy.base)
  in
  List.map
    (fun scheme ->
      let result =
        Telemetry.span
          ~args:(fun () -> [ ("scheme", Scheme.name scheme) ])
          Telemetry.global "experiment.scheme"
        @@ fun () ->
        match scheme with
        | Scheme.Base -> Lazy.force base
        | Scheme.Tpm ->
            replay ?timeline:(sink_for scheme) (Sim.Policy.tpm setup.sim)
        | Scheme.Drpm ->
            let s = source () in
            Sim.Engine.run_stream ~config:setup.sim ~mode:setup.mode
              ~faults:setup.faults ?timeline:(sink_for scheme)
              ~core:setup.core
              (Sim.Policy.drpm setup.sim
                 ~ndisks:(Trace.Trace.Stream.ndisks s))
              s
        | Scheme.Adaptive ->
            let s = source () in
            Sim.Engine.run_stream ~config:setup.sim ~mode:setup.mode
              ~faults:setup.faults ?timeline:(sink_for scheme)
              ~core:setup.core
              (Sim.Policy.adaptive setup.sim
                 ~ndisks:(Trace.Trace.Stream.ndisks s))
              s
        | Scheme.Itpm ->
            Sim.Oracle.itpm ~config:setup.sim ?timeline:(sink_for scheme)
              (Lazy.force base)
        | Scheme.Idrpm ->
            Sim.Oracle.idrpm ~config:setup.sim ?timeline:(sink_for scheme)
              (Lazy.force base)
        | Scheme.Cmtpm ->
            replay ?timeline:(sink_for scheme) Sim.Policy.cm_tpm
        | Scheme.Cmdrpm ->
            replay ?timeline:(sink_for scheme) Sim.Policy.cm_drpm
      in
      (scheme, result))
    schemes

let run ?setup ?timeline scheme p plan =
  let timeline = Option.map (fun sink _scheme -> Some sink) timeline in
  match run_all ?setup ?timeline ~schemes:[ scheme ] p plan with
  | [ (_, r) ] -> r
  | _ -> assert false

let overlap (a0, a1) (b0, b1) = min a1 b1 -. max a0 b0

let misprediction_pct ?(setup = default_setup) p plan =
  let p, plan = transformed setup p plan in
  let trace = Trace.Generate.run ~config:(gen_config setup) p plan in
  let base =
    Sim.Engine.run ~config:setup.sim ~mode:setup.mode ~faults:setup.faults
      ~core:setup.core Sim.Policy.base trace
  in
  let compiled = compile_cm setup Scheme.Cmdrpm p plan in
  let top = Dpm_disk.Rpm.max_level setup.sim.Sim.Config.specs in
  (* Decisions are anchored at code positions; place them on the actual
     timeline through the exact profile so that only the *speed* choice
     (made from the noisy estimate) is judged, as in the paper. *)
  let exact = compiled.Compiler.Pipeline.profile in
  let actual_window (w : Compiler.Dap.window) =
    let t0 =
      Compiler.Estimate.iteration_start exact ~item:w.Compiler.Dap.start_item
        ~ordinal:w.Compiler.Dap.start_ord
    in
    let nitems = Array.length exact.Compiler.Estimate.starts in
    let t1 =
      if
        w.Compiler.Dap.end_item >= nitems
        || w.Compiler.Dap.end_ord
           >= Array.length exact.Compiler.Estimate.starts.(w.Compiler.Dap.end_item)
      then exact.Compiler.Estimate.total
      else
        Compiler.Estimate.iteration_start exact ~item:w.Compiler.Dap.end_item
          ~ordinal:w.Compiler.Dap.end_ord
    in
    (t0, t1)
  in
  (* Only DAP-scale idle periods are judged: the oracle also exploits
     sub-iteration fragments no compiler placement can express, and
     counting those would measure granularity, not prediction quality.
     For every decision the compiler took, its speed is compared with the
     speed an oracle knowing the *actual* gap length (from the Base
     replay) would pick for the same context; idle periods the oracle
     would exploit but the compiler did not act on count as mispredicted
     as well. *)
  let min_gap = 1.0 in
  let specs = setup.sim.Sim.Config.specs in
  let total = ref 0 and wrong = ref 0 in
  for disk = 0 to Trace.Trace.ndisks trace - 1 do
    let oracle_gaps = Sim.Oracle.gap_plans ~config:setup.sim base ~disk in
    let cm =
      List.filter
        (fun (d : Compiler.Insertion.decision) ->
          d.disk = disk
          &&
          let t0, t1 = actual_window d.window in
          t1 -. t0 >= min_gap)
        compiled.Compiler.Pipeline.decisions
    in
    let matched = Hashtbl.create 8 in
    List.iter
      (fun (d : Compiler.Insertion.decision) ->
        incr total;
        let win = actual_window d.window in
        (* The actual idle period this decision lands in. *)
        let best = ref None in
        List.iteri
          (fun i ((lo, hi), _) ->
            let ov = overlap win (lo, hi) in
            if ov > 0.0 then
              match !best with
              | Some (_, bov) when bov >= ov -> ()
              | _ -> best := Some (i, ov))
          oracle_gaps;
        match !best with
        | None -> incr wrong (* acted on idleness that never materialized *)
        | Some (i, _) ->
            Hashtbl.replace matched i ();
            let (lo, hi), _ = List.nth oracle_gaps i in
            let reference =
              Dpm_disk.Power.best_gap_plan specs ~from_level:d.from_level
                ~to_level:d.to_level (hi -. lo)
            in
            if
              d.plan.Dpm_disk.Power.level
              <> reference.Dpm_disk.Power.level
            then incr wrong)
      cm;
    (* Exploitable idle periods the compiler missed entirely. *)
    List.iteri
      (fun i ((lo, hi), (oplan : Dpm_disk.Power.gap_plan)) ->
        if
          (not (Hashtbl.mem matched i))
          && hi -. lo >= min_gap
          && oplan.Dpm_disk.Power.level < top
        then begin
          incr total;
          incr wrong
        end)
      oracle_gaps
  done;
  if !total = 0 then 0.0
  else 100.0 *. float_of_int !wrong /. float_of_int !total

let workload ?(setup = default_setup) spec =
  Telemetry.span
    ~args:(fun () -> [ ("workload", spec.Workloads.Suite.name) ])
    Telemetry.global "workload.build" (fun () ->
      let p = Workloads.Suite.program spec in
      let ndisks =
        (* The subsystem is as large as the default stripe factor. *)
        Dpm_layout.Striping.default.Dpm_layout.Striping.stripe_factor
      in
      ignore setup;
      let plan = Workloads.Suite.default_plan ~ndisks p in
      let calibrated =
        Workloads.Suite.calibrate ~specs:Sim.Config.default.Sim.Config.specs
          ~target_exec:spec.Workloads.Suite.exec_time_s p plan
      in
      (calibrated, plan))
