(* The fleet simulation service: a bounded-admission job queue executed
   by worker loops scheduled over the OCaml 5 domain pool, plus a
   line-framed JSON socket protocol (Net).  See service.mli for the
   contract and DESIGN.md §16 for the architecture. *)

module Sim = Dpm_sim
module Pool = Dpm_util.Pool
module Json = Dpm_util.Json

type outcome = {
  job : int;
  label : string;
  results : (Scheme.t * Sim.Result.t) list;
  report : Json.t;
  meters : (string * Sim.Meter.section) list;
}

type stats = { queued : int; running : int; completed : int; rejected : int }
type state = Queued | Running | Done of (outcome, Run.error) result

type job = {
  id : int;
  spec : Run.spec;
  meter : float option;
  on_sample : (scheme:string -> Sim.Meter.sample -> unit) option;
  mutable state : state;
}

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
      (* One condvar for every state change: job available, job done,
         admission closed.  Waiters re-check their own predicate. *)
  pending : job Queue.t;
  jobs : (int, job) Hashtbl.t;
  queue : int;
  retry_after : float;
  runner : Run.spec -> ((Scheme.t * Sim.Result.t) list, Run.error) result;
  mutable next_id : int;
  mutable accepting : bool;
  mutable running : int;
  mutable completed : int;
  mutable rejected : int;
  pool : Pool.t;
  mutable dispatcher : Thread.t option;
}

let capacity t = t.queue

(* Execute one job: attach observational timeline sinks (and meters, for
   metered jobs) to the spec, run it through the service's runner
   (default [Run.exec_all] — which is what makes daemon runs
   bit-identical to direct execution), and assemble the dpm-report/1
   document.  No shared collectors: the report must be a function of the
   job alone, concurrent neighbours notwithstanding. *)
let execute t job =
  let ( let* ) = Result.bind in
  let* schemes = Run.schemes_of job.spec in
  let sinks = List.map (fun s -> (s, Sim.Timeline.sink ())) schemes in
  let spec = Run.with_timeline (fun s -> List.assoc_opt s sinks) job.spec in
  let cfg = Run.sim_config spec in
  let meters =
    match job.meter with
    | None -> []
    | Some resolution ->
        List.map
          (fun (s, sink) ->
            let scheme = Scheme.name s in
            let on_sample =
              Option.map (fun f sample -> f ~scheme sample) job.on_sample
            in
            let m =
              Sim.Meter.create ~resolution ~specs:cfg.Sim.Config.specs
                ~fleet:cfg.Sim.Config.fleet ?on_sample ()
            in
            Sim.Meter.attach m sink;
            (s, m))
          sinks
  in
  let* results = t.runner spec in
  List.iter (fun (_, m) -> Sim.Meter.finish m) meters;
  let* label, setup = Run.describe spec in
  let report =
    Report.document ~label ~mode:setup.Experiment.mode
      ~version:setup.Experiment.version ~faults:setup.Experiment.faults
      ~sim:setup.Experiment.sim
      ~timeline_of:(fun s -> Sim.Timeline.contents (List.assoc s sinks))
      results
  in
  let meters =
    List.map
      (fun (s, m) ->
        let scheme = Scheme.name s in
        (scheme, Sim.Meter.to_section ~scheme ~program:label m))
      meters
  in
  Ok { job = job.id; label; results; report; meters }

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if not (Queue.is_empty t.pending) then Some (Queue.pop t.pending)
    else if not t.accepting then None
    else begin
      Condition.wait t.cond t.mutex;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock t.mutex
  | Some job ->
      job.state <- Running;
      t.running <- t.running + 1;
      Mutex.unlock t.mutex;
      let result =
        try execute t job
        with exn -> Error (Run.Run_failure (Printexc.to_string exn))
      in
      Mutex.lock t.mutex;
      job.state <- Done result;
      t.running <- t.running - 1;
      t.completed <- t.completed + 1;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      worker_loop t

let create ?domains ?(queue = 64) ?(retry_after = 1.0)
    ?(runner = Run.exec_all) () =
  let domains =
    match domains with Some d -> d | None -> Pool.default_domains ()
  in
  if domains < 1 then
    invalid_arg "Service.create: domains must be >= 1";
  if queue < 0 then invalid_arg "Service.create: queue must be >= 0";
  if retry_after <= 0.0 then
    invalid_arg "Service.create: retry_after must be > 0";
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      pending = Queue.create ();
      jobs = Hashtbl.create 16;
      queue;
      retry_after;
      runner;
      next_id = 1;
      accepting = true;
      running = 0;
      completed = 0;
      rejected = 0;
      pool = Pool.create ~domains ();
      dispatcher = None;
    }
  in
  (* The dispatcher thread feeds [domains] worker loops into the pool;
     each loop occupies one pool worker until shutdown (with one domain
     the pool is degenerate and the single loop runs on the dispatcher
     thread itself). *)
  let d =
    Thread.create
      (fun () ->
        ignore
          (Pool.run t.pool
             (fun () -> worker_loop t)
             (List.init domains (fun _ -> ()))))
      ()
  in
  t.dispatcher <- Some d;
  t

let submit ?meter ?on_sample t spec =
  Mutex.lock t.mutex;
  let result =
    if not t.accepting then Error Run.Shutting_down
    else if Queue.length t.pending >= t.queue then begin
      t.rejected <- t.rejected + 1;
      Error (Run.Queue_full { retry_after = t.retry_after })
    end
    else begin
      let id = t.next_id in
      t.next_id <- id + 1;
      let job = { id; spec; meter; on_sample; state = Queued } in
      Hashtbl.replace t.jobs id job;
      Queue.push job t.pending;
      Condition.broadcast t.cond;
      Ok id
    end
  in
  Mutex.unlock t.mutex;
  result

let await t id =
  Mutex.lock t.mutex;
  let result =
    match Hashtbl.find_opt t.jobs id with
    | None ->
        Error
          (Run.Protocol_error (Printf.sprintf "unknown job id %d" id))
    | Some job ->
        let rec wait () =
          match job.state with
          | Done r -> r
          | Queued | Running ->
              Condition.wait t.cond t.mutex;
              wait ()
        in
        let r = wait () in
        Hashtbl.remove t.jobs id;
        r
  in
  Mutex.unlock t.mutex;
  result

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      queued = Queue.length t.pending;
      running = t.running;
      completed = t.completed;
      rejected = t.rejected;
    }
  in
  Mutex.unlock t.mutex;
  s

let shutdown t =
  Mutex.lock t.mutex;
  if t.accepting then begin
    t.accepting <- false;
    Condition.broadcast t.cond
  end;
  (* Drain guarantee: every admitted job finishes before the workers are
     allowed to exit and the pool is torn down. *)
  while not (Queue.is_empty t.pending && t.running = 0) do
    Condition.wait t.cond t.mutex
  done;
  Mutex.unlock t.mutex;
  (match t.dispatcher with
  | Some d ->
      t.dispatcher <- None;
      Thread.join d
  | None -> ());
  Pool.shutdown t.pool

(* --- wire protocol ---------------------------------------------------- *)

module Net = struct
  (* Aliases: the client half below reuses the op names. *)
  let svc_submit = submit
  let svc_await = await
  let svc_stats = stats
  let svc_shutdown = shutdown

  type address = Unix_path of string | Tcp of { host : string; port : int }

  let address_of_string s =
    match String.rindex_opt s ':' with
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some port when host <> "" && port > 0 -> Tcp { host; port }
        | _ -> Unix_path s)
    | None -> Unix_path s

  let address_to_string = function
    | Unix_path p -> p
    | Tcp { host; port } -> Printf.sprintf "%s:%d" host port

  let socket_domain = function
    | Unix_path _ -> Unix.PF_UNIX
    | Tcp _ -> Unix.PF_INET

  let sockaddr = function
    | Unix_path p -> Unix.ADDR_UNIX p
    | Tcp { host; port } ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found ->
              failwith (Printf.sprintf "unknown host %S" host))
        in
        Unix.ADDR_INET (ip, port)

  (* One frame = one JSON object on one line.  The per-connection mutex
     serializes handler-thread frames against worker-thread sample
     frames (their writes are also ordered by the job's lifecycle, but
     the lock keeps the invariant local and obvious). *)
  let write_frame mu oc j =
    Mutex.lock mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mu)
      (fun () ->
        output_string oc (Json.to_string j);
        output_char oc '\n';
        flush oc)

  let sample_frame ~job ~scheme (s : Sim.Meter.sample) =
    Json.Obj
      [
        ("job", Json.Int job);
        ("scheme", Json.Str scheme);
        ( "sample",
          Json.Obj
            [
              ("disk", Json.Int s.Sim.Meter.disk);
              ("index", Json.Int s.Sim.Meter.index);
              ("t0", Json.Float s.Sim.Meter.t0);
              ("t1", Json.Float s.Sim.Meter.t1);
              ("watts", Json.Float s.Sim.Meter.watts);
            ] );
      ]

  let obj_fields = function Json.Obj l -> l | j -> [ ("value", j) ]

  let handle_submit service write j =
    match Json.member "spec" j with
    | None -> write (Run.error_to_json (Run.Protocol_error "submit: missing spec"))
    | Some sj -> (
        match Run.of_json sj with
        | Error e -> write (Run.error_to_json e)
        | Ok spec -> (
            let meter = Option.bind (Json.member "meter" j) Json.to_float in
            (* Samples may start streaming before [submit] returns the
               job id; gate them so the "accepted" frame (which names
               the id) always goes out first. *)
            let gate = Mutex.create () in
            let gcond = Condition.create () in
            let announced = ref None in
            let on_sample ~scheme sample =
              Mutex.lock gate;
              while !announced = None do
                Condition.wait gcond gate
              done;
              let id = Option.get !announced in
              Mutex.unlock gate;
              write (sample_frame ~job:id ~scheme sample)
            in
            let on_sample =
              match meter with Some _ -> Some on_sample | None -> None
            in
            match svc_submit ?meter ?on_sample service spec with
            | Error e -> write (Run.error_to_json e)
            | Ok id -> (
                write
                  (Json.Obj
                     [ ("ok", Json.Str "accepted"); ("job", Json.Int id) ]);
                Mutex.lock gate;
                announced := Some id;
                Condition.broadcast gcond;
                Mutex.unlock gate;
                match svc_await service id with
                | Ok outcome ->
                    write
                      (Json.Obj
                         [
                           ("job", Json.Int id); ("report", outcome.report);
                         ])
                | Error e ->
                    write
                      (Json.Obj
                         (("job", Json.Int id)
                         :: obj_fields (Run.error_to_json e))))))

  let handle_conn service stop fd =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr (Unix.dup fd) in
    let mu = Mutex.create () in
    let write = write_frame mu oc in
    let rec loop () =
      match input_line ic with
      | exception (End_of_file | Sys_error _) -> ()
      | line ->
          (match Json.parse_string line with
          | Error m ->
              write
                (Run.error_to_json
                   (Run.Protocol_error ("invalid frame: " ^ m)))
          | Ok j -> (
              match Option.bind (Json.member "op" j) Json.to_str with
              | Some "ping" -> write (Json.Obj [ ("ok", Json.Str "pong") ])
              | Some "submit" -> handle_submit service write j
              | Some "shutdown" ->
                  (* Drain first, then acknowledge: once the client sees
                     the reply, every admitted job has completed. *)
                  svc_shutdown service;
                  stop := true;
                  let st = svc_stats service in
                  write
                    (Json.Obj
                       [
                         ("ok", Json.Str "shutdown");
                         ("completed", Json.Int st.completed);
                       ])
              | Some op ->
                  write
                    (Run.error_to_json
                       (Run.Protocol_error
                          (Printf.sprintf "unknown op %S" op)))
              | None ->
                  write
                    (Run.error_to_json (Run.Protocol_error "missing op"))));
          loop ()
    in
    Fun.protect
      ~finally:(fun () ->
        close_out_noerr oc;
        close_in_noerr ic)
      loop

  let serve ?(backlog = 16) service address =
    (match address with
    | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    let lfd = Unix.socket (socket_domain address) Unix.SOCK_STREAM 0 in
    (match address with
    | Tcp _ -> Unix.setsockopt lfd Unix.SO_REUSEADDR true
    | Unix_path _ -> ());
    Unix.bind lfd (sockaddr address);
    Unix.listen lfd backlog;
    let stop = ref false in
    let handlers = ref [] in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close lfd with Unix.Unix_error _ -> ());
        (match address with
        | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
        | Tcp _ -> ());
        List.iter Thread.join !handlers)
      (fun () ->
        while not !stop do
          (* Bounded select so the stop flag set by a shutdown handler
             is observed without another connection arriving. *)
          match Unix.select [ lfd ] [] [] 0.2 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | [], _, _ -> ()
          | _ ->
              if not !stop then begin
                let fd, _ = Unix.accept lfd in
                handlers :=
                  Thread.create (handle_conn service stop) fd :: !handlers
              end
        done)

  (* --- client ----------------------------------------------------- *)

  type client = { ic : in_channel; oc : out_channel }

  let connect ?(retries = 50) address =
    let rec go n =
      let fd = Unix.socket (socket_domain address) Unix.SOCK_STREAM 0 in
      match Unix.connect fd (sockaddr address) with
      | () -> Ok fd
      | exception
          Unix.Unix_error
            ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
        when n > 0 ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Thread.delay 0.1;
          go (n - 1)
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Run.Protocol_error
               (Printf.sprintf "connect %s: %s"
                  (address_to_string address)
                  (Unix.error_message e)))
      | exception Failure m ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Run.Protocol_error m)
    in
    match go retries with
    | Error _ as e -> e
    | Ok fd ->
        Ok
          {
            ic = Unix.in_channel_of_descr fd;
            oc = Unix.out_channel_of_descr (Unix.dup fd);
          }

  let close c =
    close_out_noerr c.oc;
    close_in_noerr c.ic

  let send c j =
    output_string c.oc (Json.to_string j);
    output_char c.oc '\n';
    flush c.oc

  let read_frame c =
    match input_line c.ic with
    | exception (End_of_file | Sys_error _) ->
        Error (Run.Protocol_error "connection closed")
    | line -> (
        match Json.parse_string line with
        | Ok j -> Ok j
        | Error m -> Error (Run.Protocol_error ("invalid frame: " ^ m)))

  let error_of_frame j =
    match Run.error_of_json j with
    | Ok e -> e
    | Error m -> Run.Protocol_error ("unrecognized frame: " ^ m)

  let ( let* ) = Result.bind

  let ping c =
    send c (Json.Obj [ ("op", Json.Str "ping") ]);
    let* j = read_frame c in
    match Option.bind (Json.member "ok" j) Json.to_str with
    | Some "pong" -> Ok ()
    | _ -> Error (error_of_frame j)

  let sample_of_json j =
    let num k = Option.bind (Json.member k j) Json.to_float in
    let int k = Option.bind (Json.member k j) Json.to_int in
    match (int "disk", int "index", num "t0", num "t1", num "watts") with
    | Some disk, Some index, Some t0, Some t1, Some watts ->
        Some { Sim.Meter.disk; index; t0; t1; watts }
    | _ -> None

  let submit ?meter ?on_sample c spec =
    let* sj = Run.to_json spec in
    send c
      (Json.Obj
         ([ ("op", Json.Str "submit"); ("spec", sj) ]
         @
         match meter with
         | None -> []
         | Some r -> [ ("meter", Json.Float r) ]));
    let rec loop id =
      let* j = read_frame c in
      if Option.is_some (Json.member "error" j) then Error (error_of_frame j)
      else if Option.is_some (Json.member "report" j) then
        let id =
          match Option.bind (Json.member "job" j) Json.to_int with
          | Some i -> i
          | None -> id
        in
        Ok (id, Option.get (Json.member "report" j))
      else if Option.is_some (Json.member "sample" j) then begin
        (match on_sample with
        | None -> ()
        | Some f -> (
            match
              ( Option.bind (Json.member "scheme" j) Json.to_str,
                Option.bind (Json.member "sample" j) sample_of_json )
            with
            | Some scheme, Some sample -> f ~scheme sample
            | _ -> ()));
        loop id
      end
      else
        match Option.bind (Json.member "ok" j) Json.to_str with
        | Some "accepted" ->
            loop
              (match Option.bind (Json.member "job" j) Json.to_int with
              | Some i -> i
              | None -> id)
        | _ -> Error (Run.Protocol_error "unexpected frame")
    in
    loop (-1)

  let shutdown c =
    send c (Json.Obj [ ("op", Json.Str "shutdown") ]);
    let* j = read_frame c in
    match Option.bind (Json.member "ok" j) Json.to_str with
    | Some "shutdown" ->
        Ok
          (Option.value ~default:0
             (Option.bind (Json.member "completed" j) Json.to_int))
    | _ -> Error (error_of_frame j)
end
