type t = Base | Tpm | Itpm | Drpm | Idrpm | Cmtpm | Cmdrpm | Adaptive

let all = [ Base; Tpm; Itpm; Drpm; Idrpm; Cmtpm; Cmdrpm ]
let extended = all @ [ Adaptive ]

let name = function
  | Base -> "Base"
  | Tpm -> "TPM"
  | Itpm -> "ITPM"
  | Drpm -> "DRPM"
  | Idrpm -> "IDRPM"
  | Cmtpm -> "CMTPM"
  | Cmdrpm -> "CMDRPM"
  | Adaptive -> "Adaptive"

let names = List.map name all
let extended_names = List.map name extended

let of_name_opt s =
  let s = String.lowercase_ascii s in
  List.find_opt
    (fun t -> String.equal (String.lowercase_ascii (name t)) s)
    extended

let of_name s =
  match of_name_opt s with Some t -> t | None -> raise Not_found

let conv =
  let parse s =
    match of_name_opt s with
    | Some t -> Ok t
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown scheme %S (expected one of: %s)" s
               (String.concat ", " extended_names)))
  in
  Cmdliner.Arg.conv (parse, fun ppf t -> Format.pp_print_string ppf (name t))

let is_compiler_managed = function
  | Cmtpm | Cmdrpm -> true
  | Base | Tpm | Itpm | Drpm | Idrpm | Adaptive -> false

let is_ideal = function
  | Itpm | Idrpm -> true
  | Base | Tpm | Drpm | Cmtpm | Cmdrpm | Adaptive -> false
