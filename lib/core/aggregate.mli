(** Fleet-level sweep aggregation — schema [dpm-agg/1].

    A tuning sweep (or any batch of runs) leaves a directory of
    [dpm-report/1] documents and [dpm-meter/1] sample files behind; this
    module folds them into one fleet dashboard: per-scheme run counts,
    total energy and normalized-energy spread across the report files,
    exactly-merged telemetry histograms ({!Dpm_util.Histo.of_json} +
    [merge] — bucket counts add pointwise, so the combined quantiles are
    what one big run would have reported), and, from the meter files,
    fleet-wide peak/mean power plus a per-model energy attribution
    (meter sections carry their fleet slugs, assigned round-robin by
    disk id).

    Reports and meters stay separate sections of the document — a run
    that produced both a report and a meter file is {e not} counted
    twice anywhere.  Files that parse as neither schema are skipped and
    listed with a reason, never fatal; only an unreadable directory is
    an error. *)

type t
(** An aggregate over a set of source files. *)

val schema_version : string
(** ["dpm-agg/1"]. *)

val of_files : string list -> t
(** Classify and fold the given files: a [.json] file whose [schema] is
    [dpm-report/1] joins the reports section, a [.jsonl] file whose
    first line is a [dpm-meter/1] header joins the meters section,
    anything else (spec files, aggregate outputs, malformed documents)
    is recorded as skipped with a reason. *)

val of_dir : string -> (t, string) result
(** {!of_files} over the directory's regular files, sorted by name.
    [Error] only when the directory itself cannot be read. *)

val sources : t -> (string * string) list
(** [(path, classification)] per input file, in processing order —
    ["report"], ["meter"], or ["skipped: <reason>"]. *)

val to_json : t -> Dpm_util.Json.t
(** The [dpm-agg/1] document: a [sources] manifest, a [reports] section
    (per-scheme totals, summed fault counters, merged histograms) and a
    [meters] section (fleet peak/mean power, per-scheme and per-model
    energy).  Every field is emitted unconditionally, zero-valued when
    no input of that kind was seen. *)

val render : t -> string
(** Plain-text dashboard ({!Dpm_util.Table}). *)

val markdown : t -> string
(** Markdown digest of the same tables. *)

val validate : Dpm_util.Json.t -> (unit, string list) result
(** Structural check of a [dpm-agg/1] document: schema tag, the
    [reports]/[meters] sections present, at least one source counted.
    [dpmsim aggregate] validates its own output before writing it. *)
