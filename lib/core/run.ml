module Sim = Dpm_sim
module Workloads = Dpm_workloads
module Trace = Dpm_trace.Trace

type workload =
  | Benchmark of string
  | Program of Dpm_ir.Program.t * Dpm_layout.Plan.t
  | Trace_file of string

type error =
  | Unknown_benchmark of string
  | Unknown_scheme of string
  | Invalid_faults of string
  | Malformed_trace of string
  | Run_failure of string

let suite_names =
  lazy (List.map (fun (s : Workloads.Suite.spec) -> s.name) Workloads.Suite.all)

let error_message = function
  | Unknown_benchmark b ->
      Printf.sprintf "unknown benchmark %S (expected one of: %s)" b
        (String.concat ", " (Lazy.force suite_names))
  | Unknown_scheme s ->
      Printf.sprintf "unknown scheme %S (expected one of: %s)" s
        (String.concat ", " Scheme.names)
  | Invalid_faults m -> "invalid fault spec: " ^ m
  | Malformed_trace m -> "malformed trace file: " ^ m
  | Run_failure m -> m

type spec = {
  schemes : Scheme.t list;
  scheme_names : string list;
  workload : workload;
  setup : Experiment.setup option;
  mode : Sim.Engine.mode option;
  version : Dpm_compiler.Pipeline.version option;
  faults : Sim.Fault.spec option;
  timeline : (Scheme.t -> Sim.Timeline.sink option) option;
  stream : bool option;
  batch : int option;
  core : Sim.Engine.core option;
}

let spec ?(schemes = Scheme.all) ?(scheme_names = []) ?setup ?mode ?version
    ?faults ?timeline ?stream ?batch ?core workload =
  {
    schemes;
    scheme_names;
    workload;
    setup;
    mode;
    version;
    faults;
    timeline;
    stream;
    batch;
    core;
  }

let ( let* ) = Result.bind

let resolve_schemes s =
  match s.scheme_names with
  | [] -> Ok s.schemes
  | names ->
      List.fold_left
        (fun acc name ->
          let* acc = acc in
          match Scheme.of_name_opt name with
          | Some scheme -> Ok (scheme :: acc)
          | None -> Error (Unknown_scheme name))
        (Ok []) names
      |> Result.map List.rev

let resolve_faults s =
  match s.faults with
  | None -> Ok None
  | Some f -> (
      match Sim.Fault.validate f with
      | Ok f -> Ok (Some f)
      | Error m -> Error (Invalid_faults m))

(* The benchmark spec (for its calibrated noise) when the workload names
   one; the program is built later, inside the trapped section, because
   calibration replays the workload. *)
let resolve_bench s =
  match s.workload with
  | Program _ | Trace_file _ -> Ok None
  | Benchmark name -> (
      match
        List.find_opt
          (fun (b : Workloads.Suite.spec) -> String.equal b.name name)
          Workloads.Suite.all
      with
      | Some bench -> Ok (Some bench)
      | None -> Error (Unknown_benchmark name))

let resolve_setup s bench faults =
  let base =
    match s.setup with
    | Some setup -> setup
    | None ->
        Experiment.make_setup
          ?noise:(Option.map (fun (b : Workloads.Suite.spec) -> b.noise) bench)
          ()
  in
  let base = match s.mode with None -> base | Some mode -> { base with mode } in
  let base =
    match s.version with None -> base | Some version -> { base with version }
  in
  let base =
    match faults with None -> base | Some faults -> { base with faults }
  in
  let base =
    match s.stream with None -> base | Some stream -> { base with stream }
  in
  let base =
    match s.batch with None -> base | Some batch -> { base with batch }
  in
  match s.core with None -> base | Some core -> { base with core }

(* Replaying a saved trace: the streaming setup re-parses the file per
   scheme in O(batch) memory; otherwise it is loaded once and sliced.
   [Trace.Parse_error] is the expected user-input failure here, so it
   gets its own typed error rather than the generic trap. *)
let exec_trace_file s (setup : Experiment.setup) schemes path =
  match
    let source =
      if setup.Experiment.stream then fun () ->
        Trace.Stream.of_file ~batch:setup.Experiment.batch path
      else begin
        let trace = Trace.load path in
        fun () -> Trace.Stream.of_trace ~batch:setup.Experiment.batch trace
      end
    in
    Experiment.replay_all ~setup ?timeline:s.timeline ~schemes source
  with
  | results -> Ok results
  | exception Trace.Parse_error m -> Error (Malformed_trace m)
  | exception Sys_error m -> Error (Run_failure m)
  | exception exn -> Error (Run_failure (Printexc.to_string exn))

let exec_all s =
  let* schemes = resolve_schemes s in
  let* faults = resolve_faults s in
  let* bench = resolve_bench s in
  let setup = resolve_setup s bench faults in
  match s.workload with
  | Trace_file path -> exec_trace_file s setup schemes path
  | Program _ | Benchmark _ -> (
      match
        let p, plan =
          match (s.workload, bench) with
          | Program (p, plan), _ -> (p, plan)
          | Benchmark _, Some bench -> Experiment.workload bench
          | (Benchmark _ | Trace_file _), _ -> assert false
        in
        Experiment.run_all ~setup ?timeline:s.timeline ~schemes p plan
      with
      | results -> Ok results
      | exception exn -> Error (Run_failure (Printexc.to_string exn)))

let exec s =
  let* results = exec_all s in
  match results with
  | (_, r) :: _ -> Ok r
  | [] -> Error (Run_failure "no schemes requested")
