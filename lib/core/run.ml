module Sim = Dpm_sim
module Workloads = Dpm_workloads
module Trace = Dpm_trace.Trace

type workload =
  | Benchmark of string
  | Program of Dpm_ir.Program.t * Dpm_layout.Plan.t
  | Trace_file of string
  | Open_loop of { load : Dpm_trace.Openloop.t; sources : string list }

type error =
  | Unknown_benchmark of string
  | Unknown_scheme of string
  | Invalid_faults of string
  | Malformed_trace of string
  | Malformed_spec of string
  | Run_failure of string
  | Queue_full of { retry_after : float }
  | Shutting_down
  | Protocol_error of string

let suite_names =
  lazy (List.map (fun (s : Workloads.Suite.spec) -> s.name) Workloads.Suite.all)

let error_message = function
  | Unknown_benchmark b ->
      Printf.sprintf "unknown benchmark %S (expected one of: %s)" b
        (String.concat ", " (Lazy.force suite_names))
  | Unknown_scheme s ->
      Printf.sprintf "unknown scheme %S (expected one of: %s)" s
        (String.concat ", " Scheme.names)
  | Invalid_faults m -> "invalid fault spec: " ^ m
  | Malformed_trace m -> "malformed trace file: " ^ m
  | Malformed_spec m -> "malformed run spec: " ^ m
  | Run_failure m -> m
  | Queue_full { retry_after } ->
      Printf.sprintf "service queue full; retry after %gs" retry_after
  | Shutting_down -> "service is shutting down"
  | Protocol_error m -> "protocol error: " ^ m

let pp_error fmt e = Format.pp_print_string fmt (error_message e)

type spec = {
  schemes : Scheme.t list;
  scheme_names : string list;
  workload : workload;
  setup : Experiment.setup option;
  sim : Sim.Config.t option;
  mode : Sim.Engine.mode option;
  version : Dpm_compiler.Pipeline.version option;
  faults : Sim.Fault.spec option;
  timeline : (Scheme.t -> Sim.Timeline.sink option) option;
  stream : bool option;
  batch : int option;
  core : Sim.Engine.core option;
}

let spec ?(schemes = Scheme.all) ?(scheme_names = []) ?setup ?sim ?mode
    ?version ?faults ?timeline ?stream ?batch ?core workload =
  {
    schemes;
    scheme_names;
    workload;
    setup;
    sim;
    mode;
    version;
    faults;
    timeline;
    stream;
    batch;
    core;
  }

let with_timeline timeline s = { s with timeline = Some timeline }

let with_schemes schemes s = { s with schemes; scheme_names = [] }

let sim_config s =
  match s.sim with
  | Some c -> c
  | None -> (
      match s.setup with
      | Some st -> st.Experiment.sim
      | None -> Sim.Config.default)

let ( let* ) = Result.bind

let resolve_schemes s =
  match s.scheme_names with
  | [] -> Ok s.schemes
  | names ->
      List.fold_left
        (fun acc name ->
          let* acc = acc in
          match Scheme.of_name_opt name with
          | Some scheme -> Ok (scheme :: acc)
          | None -> Error (Unknown_scheme name))
        (Ok []) names
      |> Result.map List.rev

let schemes_of s = resolve_schemes s

let resolve_faults s =
  match s.faults with
  | None -> Ok None
  | Some f -> (
      match Sim.Fault.validate f with
      | Ok f -> Ok (Some f)
      | Error m -> Error (Invalid_faults m))

(* The benchmark spec (for its calibrated noise) when the workload names
   one; the program is built later, inside the trapped section, because
   calibration replays the workload. *)
let resolve_bench s =
  match s.workload with
  | Program _ | Trace_file _ | Open_loop _ -> Ok None
  | Benchmark name -> (
      match
        List.find_opt
          (fun (b : Workloads.Suite.spec) -> String.equal b.name name)
          Workloads.Suite.all
      with
      | Some bench -> Ok (Some bench)
      | None -> Error (Unknown_benchmark name))

let resolve_setup s bench faults =
  let base =
    match s.setup with
    | Some setup -> setup
    | None ->
        Experiment.make_setup
          ?noise:(Option.map (fun (b : Workloads.Suite.spec) -> b.noise) bench)
          ()
  in
  let base =
    match s.sim with
    | None -> base
    | Some sim -> { base with Experiment.sim }
  in
  let base = match s.mode with None -> base | Some mode -> { base with mode } in
  let base =
    match s.version with None -> base | Some version -> { base with version }
  in
  let base =
    match faults with None -> base | Some faults -> { base with faults }
  in
  let base =
    match s.stream with None -> base | Some stream -> { base with stream }
  in
  let base =
    match s.batch with None -> base | Some batch -> { base with batch }
  in
  match s.core with None -> base | Some core -> { base with core }

(* Replaying a saved trace: the streaming setup re-parses the file per
   scheme in O(batch) memory; otherwise it is loaded once and sliced.
   [Trace.Parse_error] is the expected user-input failure here, so it
   gets its own typed error rather than the generic trap. *)
let exec_trace_file s (setup : Experiment.setup) schemes path =
  match
    let source =
      if setup.Experiment.stream then fun () ->
        Trace.Stream.of_file ~batch:setup.Experiment.batch path
      else begin
        let trace = Trace.load path in
        fun () -> Trace.Stream.of_trace ~batch:setup.Experiment.batch trace
      end
    in
    Experiment.replay_all ~setup ?timeline:s.timeline ~schemes source
  with
  | results -> Ok results
  | exception Trace.Parse_error m -> Error (Malformed_trace m)
  | exception Sys_error m -> Error (Run_failure m)
  | exception exn -> Error (Run_failure (Printexc.to_string exn))

(* Open-loop sources resolve by name: a suite benchmark if the name
   matches one, otherwise an existing trace file.  Resolution happens
   before the trapped replay so a typo comes back as a typed error, not
   a generic failure. *)
let resolve_sources sources =
  if sources = [] then
    Error (Malformed_spec "open-loop workload: empty sources list")
  else
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        match
          List.find_opt
            (fun (b : Workloads.Suite.spec) -> String.equal b.name name)
            Workloads.Suite.all
        with
        | Some bench -> Ok (`Bench bench :: acc)
        | None ->
            if Sys.file_exists name then Ok (`File name :: acc)
            else Error (Unknown_benchmark name))
      (Ok []) sources
    |> Result.map (fun l -> Array.of_list (List.rev l))

(* Replay an open-loop multi-tenant workload: expand the load descriptor
   into a (start, source) plan, build one fresh stream per tenant, and
   merge them onto the shared clock ({!Dpm_trace.Openloop}).  Each
   distinct source is built (and, in non-streaming setups, generated or
   loaded) at most once per replay; tenants then cursor independently
   over the shared trace.  Streaming setups instead regenerate/re-parse
   per tenant in O(batch × tenants) peak memory. *)
let exec_open_loop s (setup : Experiment.setup) schemes load sources =
  let* resolved = resolve_sources sources in
  match
    let gen =
      {
        Dpm_trace.Generate.cost = Dpm_ir.Cost.default;
        cache_blocks = setup.Experiment.cache_blocks;
      }
    in
    let thunk_of = function
      | `Bench bench ->
          let built =
            lazy
              (let p, plan = Experiment.workload bench in
               Dpm_compiler.Pipeline.transform setup.Experiment.version p plan)
          in
          if setup.Experiment.stream then fun () ->
            let p, plan = Lazy.force built in
            Dpm_trace.Generate.stream ~config:gen ~batch:setup.Experiment.batch
              p plan
          else
            let trace =
              lazy
                (let p, plan = Lazy.force built in
                 Dpm_trace.Generate.run ~config:gen p plan)
            in
            fun () ->
              Trace.Stream.of_trace ~batch:setup.Experiment.batch
                (Lazy.force trace)
      | `File path ->
          if setup.Experiment.stream then fun () ->
            Trace.Stream.of_file ~batch:setup.Experiment.batch path
          else
            let trace = lazy (Trace.load path) in
            fun () ->
              Trace.Stream.of_trace ~batch:setup.Experiment.batch
                (Lazy.force trace)
    in
    let thunks = Array.map thunk_of resolved in
    let plan = Dpm_trace.Openloop.plan load ~nsources:(Array.length thunks) in
    let source () =
      Dpm_trace.Openloop.merge ~batch:setup.Experiment.batch
        (Array.to_list plan
        |> List.map (fun (start, k) -> (start, thunks.(k) ())))
    in
    Experiment.replay_all ~setup ?timeline:s.timeline ~schemes source
  with
  | results -> Ok results
  | exception Trace.Parse_error m -> Error (Malformed_trace m)
  | exception Sys_error m -> Error (Run_failure m)
  | exception exn -> Error (Run_failure (Printexc.to_string exn))

let exec_all s =
  let* schemes = resolve_schemes s in
  let* faults = resolve_faults s in
  let* bench = resolve_bench s in
  let setup = resolve_setup s bench faults in
  match s.workload with
  | Trace_file path -> exec_trace_file s setup schemes path
  | Open_loop { load; sources } -> exec_open_loop s setup schemes load sources
  | Program _ | Benchmark _ -> (
      match
        let p, plan =
          match (s.workload, bench) with
          | Program (p, plan), _ -> (p, plan)
          | Benchmark _, Some bench -> Experiment.workload bench
          | (Benchmark _ | Trace_file _ | Open_loop _), _ -> assert false
        in
        Experiment.run_all ~setup ?timeline:s.timeline ~schemes p plan
      with
      | results -> Ok results
      | exception exn -> Error (Run_failure (Printexc.to_string exn)))

let exec s =
  let* results = exec_all s in
  match results with
  | (_, r) :: _ -> Ok r
  | [] -> Error (Run_failure "no schemes requested")

(* The Experiment→spec bridge: an [Experiment.setup] plus a workload is
   a complete job description, so the sweep harness, the CLI and the
   service all speak the same value.  The setup is carried verbatim (no
   overrides), which is what makes the mapping faithful. *)
let of_experiment ?schemes ~setup workload = spec ?schemes ~setup workload

let workload_label = function
  | Benchmark name -> name
  | Program (p, _) -> p.Dpm_ir.Program.name
  | Trace_file path -> path
  | Open_loop { sources; _ } ->
      Printf.sprintf "open-loop(%s)" (String.concat "+" sources)

let describe s =
  let* faults = resolve_faults s in
  let* bench = resolve_bench s in
  Ok (workload_label s.workload, resolve_setup s bench faults)

(* --- dpm-spec/1: serializable run specs ---

   A spec (minus its observational timeline sinks and minus [Program]
   workloads, which hold in-memory IR) round-trips through
   [Dpm_util.Json].  The wire format is the prerequisite for the sweep
   harness's replayable winning-point files and for the future `dpmsim
   serve` protocol (ROADMAP item 2): everything is by value, floats
   print with %.17g (bit-exact), and unknown optional fields default
   rather than fail so older readers survive newer writers. *)

module Json = Dpm_util.Json

let spec_schema_version = "dpm-spec/1"

let config_to_json (c : Sim.Config.t) =
  Json.Obj
    ([ ("specs", Json.Str c.Sim.Config.specs.Dpm_disk.Specs.model_name) ]
    (* Fleet and scheduler are emitted only away from their defaults, so
       pre-fleet specs serialize byte-identically. *)
    @ (match Array.to_list c.Sim.Config.fleet with
      | [] -> []
      | fleet ->
          [
            ( "fleet",
              Json.Arr
                (List.map
                   (fun m -> Json.Str (Dpm_disk.Specs.name_of m))
                   fleet) );
          ])
    @ (match c.Sim.Config.sched with
      | Sim.Config.Fcfs -> []
      | s -> [ ("sched", Json.Str (Sim.Config.sched_name s)) ])
    @ [
      ( "tpm_threshold",
        match c.Sim.Config.tpm_threshold with
        | None -> Json.Null
        | Some t -> Json.Float t );
      ("drpm_lower", Json.Float c.Sim.Config.drpm_lower);
      ("drpm_upper", Json.Float c.Sim.Config.drpm_upper);
      ("drpm_window", Json.Int c.Sim.Config.drpm_window);
      ("drpm_idle_interval", Json.Float c.Sim.Config.drpm_idle_interval);
      ("drpm_floor_depth", Json.Int c.Sim.Config.drpm_floor_depth);
      ("queue_depth", Json.Int c.Sim.Config.queue_depth);
      ("pm_call_overhead", Json.Float c.Sim.Config.pm_call_overhead);
      ("pre_activation_lead", Json.Float c.Sim.Config.pre_activation_lead);
      ("retain_busy", Json.Bool c.Sim.Config.retain_busy);
    ])

let config_of_json j =
  let ( let* ) = Result.bind in
  let field name conv = Option.bind (Json.member name j) conv in
  let resolve name =
    (* Registry lookup by slug or model name ({!Dpm_disk.Specs.of_name_opt}). *)
    match Dpm_disk.Specs.of_name_opt name with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "unknown disk model %S" name)
  in
  let* specs =
    match Option.bind (Json.member "specs" j) Json.to_str with
    | None -> Ok Sim.Config.default.Sim.Config.specs
    | Some name -> resolve name
  in
  let* fleet =
    match Option.bind (Json.member "fleet" j) Json.to_list with
    | None -> Ok [||]
    | Some l ->
        let* models =
          List.fold_left
            (fun acc v ->
              let* acc = acc in
              match Json.to_str v with
              | None -> Error "fleet: expected model-name strings"
              | Some name ->
                  let* m = resolve name in
                  Ok (m :: acc))
            (Ok []) l
        in
        Ok (Array.of_list (List.rev models))
  in
  let* sched =
    match Option.bind (Json.member "sched" j) Json.to_str with
    | None -> Ok Sim.Config.Fcfs
    | Some s -> (
        match Sim.Config.sched_of_name_opt s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "unknown scheduler %S" s))
  in
  let tpm_threshold =
    match Json.member "tpm_threshold" j with
    | None | Some Json.Null -> None
    | Some v -> Json.to_float v
  in
  Ok
    (Sim.Config.make ~specs ~fleet ~sched ?tpm_threshold
       ?drpm_lower:(field "drpm_lower" Json.to_float)
       ?drpm_upper:(field "drpm_upper" Json.to_float)
       ?drpm_window:(field "drpm_window" Json.to_int)
       ?drpm_idle_interval:(field "drpm_idle_interval" Json.to_float)
       ?drpm_floor_depth:(field "drpm_floor_depth" Json.to_int)
       ?queue_depth:(field "queue_depth" Json.to_int)
       ?pm_call_overhead:(field "pm_call_overhead" Json.to_float)
       ?pre_activation_lead:(field "pre_activation_lead" Json.to_float)
       ?retain_busy:(field "retain_busy" Json.to_bool)
       ())

let mode_name = function `Open -> "open" | `Closed -> "closed"

let mode_of_name = function
  | "open" -> Some `Open
  | "closed" -> Some `Closed
  | _ -> None

let core_name = function `Fast -> "fast" | `Reference -> "reference"

let core_of_name = function
  | "fast" -> Some `Fast
  | "reference" -> Some `Reference
  | _ -> None

let all_versions =
  Dpm_compiler.Pipeline.all_versions @ [ Dpm_compiler.Pipeline.TL_ALL_DL ]

let version_of_name name =
  List.find_opt
    (fun v -> String.equal (Dpm_compiler.Pipeline.version_name v) name)
    all_versions

let setup_to_json (setup : Experiment.setup) =
  Json.Obj
    [
      ("sim", config_to_json setup.Experiment.sim);
      ("mode", Json.Str (mode_name setup.Experiment.mode));
      ("cache_blocks", Json.Int setup.Experiment.cache_blocks);
      ("noise", Json.Float setup.Experiment.noise);
      ("seed", Json.Int setup.Experiment.seed);
      ( "version",
        Json.Str (Dpm_compiler.Pipeline.version_name setup.Experiment.version)
      );
      ("faults", Json.Str (Sim.Fault.to_string setup.Experiment.faults));
      ("stream", Json.Bool setup.Experiment.stream);
      ("batch", Json.Int setup.Experiment.batch);
      ("core", Json.Str (core_name setup.Experiment.core));
    ]

let setup_of_json j =
  let ( let* ) = Result.bind in
  let enum name of_name what =
    match Option.bind (Json.member name j) Json.to_str with
    | None -> Ok None
    | Some s -> (
        match of_name s with
        | Some v -> Ok (Some v)
        | None -> Error (Printf.sprintf "unknown %s %S" what s))
  in
  let* sim =
    match Json.member "sim" j with
    | None -> Ok None
    | Some c -> Result.map Option.some (config_of_json c)
  in
  let* mode = enum "mode" mode_of_name "mode" in
  let* version = enum "version" version_of_name "version" in
  let* core = enum "core" core_of_name "core" in
  let* faults =
    match Option.bind (Json.member "faults" j) Json.to_str with
    | None -> Ok None
    | Some s -> (
        match Sim.Fault.of_string s with
        | Ok f -> Ok (Some f)
        | Error m -> Error ("faults: " ^ m))
  in
  Ok
    (Experiment.make_setup ?sim ?mode
       ?cache_blocks:(Option.bind (Json.member "cache_blocks" j) Json.to_int)
       ?noise:(Option.bind (Json.member "noise" j) Json.to_float)
       ?seed:(Option.bind (Json.member "seed" j) Json.to_int)
       ?version ?faults
       ?stream:(Option.bind (Json.member "stream" j) Json.to_bool)
       ?batch:(Option.bind (Json.member "batch" j) Json.to_int)
       ?core ())

let to_json s =
  let* workload =
    match s.workload with
    | Benchmark name ->
        Ok
          (Json.Obj
             [ ("kind", Json.Str "benchmark"); ("name", Json.Str name) ])
    | Trace_file path ->
        Ok
          (Json.Obj
             [ ("kind", Json.Str "trace-file"); ("path", Json.Str path) ])
    | Open_loop { load; sources } ->
        Ok
          (Json.Obj
             [
               ("kind", Json.Str "open-loop");
               ("load", Json.Str (Dpm_trace.Openloop.to_string load));
               ( "sources",
                 Json.Arr (List.map (fun n -> Json.Str n) sources) );
             ])
    | Program (p, _) ->
        Error
          (Malformed_spec
             (Printf.sprintf
                "in-memory Program workload %S is not serializable"
                p.Dpm_ir.Program.name))
  in
  let scheme_names =
    match s.scheme_names with
    | [] -> List.map Scheme.name s.schemes
    | names -> names
  in
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  Ok
    (Json.Obj
       ([
          ("schema", Json.Str spec_schema_version);
          ("workload", workload);
          ( "schemes",
            Json.Arr (List.map (fun n -> Json.Str n) scheme_names) );
        ]
       @ opt "setup" setup_to_json s.setup
       @ opt "sim" config_to_json s.sim
       @ opt "mode" (fun m -> Json.Str (mode_name m)) s.mode
       @ opt "version"
           (fun v -> Json.Str (Dpm_compiler.Pipeline.version_name v))
           s.version
       @ opt "faults" (fun f -> Json.Str (Sim.Fault.to_string f)) s.faults
       @ opt "stream" (fun b -> Json.Bool b) s.stream
       @ opt "batch" (fun b -> Json.Int b) s.batch
       @ opt "core" (fun c -> Json.Str (core_name c)) s.core))

let of_json j =
  let malformed m = Error (Malformed_spec m) in
  let lift = function Ok v -> Ok v | Error m -> malformed m in
  let* () =
    match Option.bind (Json.member "schema" j) Json.to_str with
    | Some v when String.equal v spec_schema_version -> Ok ()
    | Some v ->
        malformed
          (Printf.sprintf "schema %S (expected %S)" v spec_schema_version)
    | None -> malformed "missing schema field"
  in
  let* workload =
    match Json.member "workload" j with
    | None -> malformed "missing workload"
    | Some w -> (
        let str name = Option.bind (Json.member name w) Json.to_str in
        match Option.bind (Json.member "kind" w) Json.to_str with
        | Some "benchmark" -> (
            match str "name" with
            | Some n -> Ok (Benchmark n)
            | None -> malformed "workload: missing benchmark name")
        | Some "trace-file" -> (
            match str "path" with
            | Some p -> Ok (Trace_file p)
            | None -> malformed "workload: missing trace-file path")
        | Some "open-loop" -> (
            match str "load" with
            | None -> malformed "workload: missing open-loop load"
            | Some l -> (
                match Dpm_trace.Openloop.of_string l with
                | Error m -> malformed m
                | Ok (load, inline_sources) ->
                    (* An explicit sources array wins over sources
                       embedded in the load string. *)
                    let* sources =
                      match
                        Option.bind (Json.member "sources" w) Json.to_list
                      with
                      | None -> Ok inline_sources
                      | Some l ->
                          List.fold_left
                            (fun acc v ->
                              let* acc = acc in
                              match Json.to_str v with
                              | Some n -> Ok (n :: acc)
                              | None ->
                                  malformed
                                    "workload: sources: expected strings")
                            (Ok []) l
                          |> Result.map List.rev
                    in
                    Ok (Open_loop { load; sources })))
        | Some k -> malformed (Printf.sprintf "workload: unknown kind %S" k)
        | None -> malformed "workload: missing kind")
  in
  let* scheme_names =
    match Option.bind (Json.member "schemes" j) Json.to_list with
    | None -> malformed "missing schemes array"
    | Some l ->
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match Json.to_str v with
            | Some n -> Ok (n :: acc)
            | None -> malformed "schemes: expected strings")
          (Ok []) l
        |> Result.map List.rev
  in
  let* setup =
    match Json.member "setup" j with
    | None -> Ok None
    | Some sj -> lift (Result.map Option.some (setup_of_json sj))
  in
  let* sim =
    match Json.member "sim" j with
    | None -> Ok None
    | Some cj -> lift (Result.map Option.some (config_of_json cj))
  in
  let enum name of_name =
    match Option.bind (Json.member name j) Json.to_str with
    | None -> Ok None
    | Some s -> (
        match of_name s with
        | Some v -> Ok (Some v)
        | None -> malformed (Printf.sprintf "unknown %s %S" name s))
  in
  let* mode = enum "mode" mode_of_name in
  let* version = enum "version" version_of_name in
  let* core = enum "core" core_of_name in
  let* faults =
    match Option.bind (Json.member "faults" j) Json.to_str with
    | None -> Ok None
    | Some s -> (
        match Sim.Fault.of_string s with
        | Ok f -> Ok (Some f)
        | Error m -> Error (Invalid_faults m))
  in
  Ok
    {
      schemes = Scheme.all;
      scheme_names;
      workload;
      setup;
      sim;
      mode;
      version;
      faults;
      timeline = None;
      stream = Option.bind (Json.member "stream" j) Json.to_bool;
      batch = Option.bind (Json.member "batch" j) Json.to_int;
      core;
    }

let of_file path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic n)
  with
  | exception Sys_error m -> Error (Malformed_spec m)
  | contents -> (
      match Json.parse_string contents with
      | Error m -> Error (Malformed_spec (path ^ ": " ^ m))
      | Ok j -> of_json j)

(* Typed errors on the wire: a stable machine-readable kind plus the
   fields needed to reconstruct the constructor, and the human message
   for clients that just print.  Round-trip is exact. *)
let error_to_json e =
  let obj kind rest =
    Json.Obj
      ((("error", Json.Str kind) :: rest)
      @ [ ("message", Json.Str (error_message e)) ])
  in
  match e with
  | Unknown_benchmark b -> obj "unknown-benchmark" [ ("name", Json.Str b) ]
  | Unknown_scheme s -> obj "unknown-scheme" [ ("name", Json.Str s) ]
  | Invalid_faults m -> obj "invalid-faults" [ ("detail", Json.Str m) ]
  | Malformed_trace m -> obj "malformed-trace" [ ("detail", Json.Str m) ]
  | Malformed_spec m -> obj "malformed-spec" [ ("detail", Json.Str m) ]
  | Run_failure m -> obj "run-failure" [ ("detail", Json.Str m) ]
  | Queue_full { retry_after } ->
      obj "queue-full" [ ("retry_after", Json.Float retry_after) ]
  | Shutting_down -> obj "shutting-down" []
  | Protocol_error m -> obj "protocol" [ ("detail", Json.Str m) ]

let error_of_json j =
  let str name = Option.bind (Json.member name j) Json.to_str in
  let detail of_detail =
    match str "detail" with
    | Some d -> Ok (of_detail d)
    | None -> Error "error object: missing detail"
  in
  match str "error" with
  | None -> Error "not an error object (missing \"error\" field)"
  | Some kind -> (
      match kind with
      | "unknown-benchmark" -> (
          match str "name" with
          | Some n -> Ok (Unknown_benchmark n)
          | None -> Error "unknown-benchmark: missing name")
      | "unknown-scheme" -> (
          match str "name" with
          | Some n -> Ok (Unknown_scheme n)
          | None -> Error "unknown-scheme: missing name")
      | "invalid-faults" -> detail (fun m -> Invalid_faults m)
      | "malformed-trace" -> detail (fun m -> Malformed_trace m)
      | "malformed-spec" -> detail (fun m -> Malformed_spec m)
      | "run-failure" -> detail (fun m -> Run_failure m)
      | "queue-full" -> (
          match Option.bind (Json.member "retry_after" j) Json.to_float with
          | Some retry_after -> Ok (Queue_full { retry_after })
          | None -> Error "queue-full: missing retry_after")
      | "shutting-down" -> Ok Shutting_down
      | "protocol" -> detail (fun m -> Protocol_error m)
      | k -> Error (Printf.sprintf "unknown error kind %S" k))

let to_file s path =
  let* j = to_json s in
  match open_out path with
  | exception Sys_error m -> Error (Malformed_spec m)
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          Json.to_channel ~indent:1 oc j;
          output_char oc '\n');
      Ok ()
