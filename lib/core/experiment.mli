(** One benchmark × scheme × configuration run — the public entry point
    that ties the whole pipeline together (paper Figure 1): compile (for
    CM schemes), generate the trace, replay it under the scheme's policy,
    and report energy and execution time. *)

type setup = {
  sim : Dpm_sim.Config.t;
  mode : Dpm_sim.Engine.mode;  (** Replay model; [`Open] is the paper's. *)
  cache_blocks : int;  (** Buffer-cache capacity in stripe units. *)
  noise : float;  (** Compiler estimation error (CM schemes). *)
  seed : int;  (** Determinism seed for the estimation error. *)
  version : Dpm_compiler.Pipeline.version;  (** Code transformation. *)
  faults : Dpm_sim.Fault.spec;
      (** Fault injection for every replay of the experiment
          ({!Dpm_sim.Fault.none} disables it; oracle schemes inherit the
          faulted Base replay's counters). *)
  stream : bool;
      (** Fused generate→replay: each scheme's replay pulls chunks
          straight out of the loop-nest walk (O(batch) peak memory on
          the trace side) instead of slicing a shared materialized
          trace.  Results are byte-identical either way; streaming
          trades the one-shared-generation saving for bounded memory. *)
  batch : int;  (** Stream chunk size in events. *)
  core : Dpm_sim.Engine.core;
      (** Replay core for every replayed scheme ([`Fast] by default;
          see {!Dpm_sim.Engine.core}).  Results are byte-identical
          either way — [`Reference] is the differential oracle and
          escape hatch. *)
}

val make_setup :
  ?sim:Dpm_sim.Config.t ->
  ?mode:Dpm_sim.Engine.mode ->
  ?cache_blocks:int ->
  ?noise:float ->
  ?seed:int ->
  ?version:Dpm_compiler.Pipeline.version ->
  ?faults:Dpm_sim.Fault.spec ->
  ?stream:bool ->
  ?batch:int ->
  ?core:Dpm_sim.Engine.core ->
  unit ->
  setup
(** Smart constructor: {!default_setup} with fields overridden.  Prefer
    it over record literals so future fields (like [faults] was) don't
    break downstream construction sites. *)

val default_setup : setup
(** Default simulator config, open-loop replay, the suite's 192-unit
    cache, no estimation error, untransformed code, no faults
    ([make_setup ()]). *)

val run :
  ?setup:setup ->
  ?timeline:Dpm_sim.Timeline.sink ->
  Scheme.t ->
  Dpm_ir.Program.t ->
  Dpm_layout.Plan.t ->
  Dpm_sim.Result.t
(** Run one scheme.  Ideal schemes are derived from an internal Base
    replay; compiler-managed schemes run the full compilation first.
    [timeline] records the scheme's event log (engine events for replayed
    schemes, an analytic reconstruction for the ideal ones). *)

val run_all :
  ?setup:setup ->
  ?timeline:(Scheme.t -> Dpm_sim.Timeline.sink option) ->
  ?schemes:Scheme.t list ->
  Dpm_ir.Program.t ->
  Dpm_layout.Plan.t ->
  (Scheme.t * Dpm_sim.Result.t) list
(** Run several schemes, sharing the trace generation and Base replay.
    [timeline] supplies one sink per scheme (or [None] to skip one); the
    caller owns the sinks, so results and logs are read back
    independently.  Note the shared Base replay runs at most once: its
    sink fills on first force even when Base itself is not in
    [schemes]. *)

val replay_all :
  ?setup:setup ->
  ?timeline:(Scheme.t -> Dpm_sim.Timeline.sink option) ->
  ?schemes:Scheme.t list ->
  (unit -> Dpm_trace.Trace.Stream.t) ->
  (Scheme.t * Dpm_sim.Result.t) list
(** Replay externally-produced trace streams (a saved trace file, a
    pre-generated trace) under each scheme — no compilation or
    generation of its own.  [source] must yield a fresh stream per call;
    every replay consumes one, and Base runs at most once (shared by the
    oracle schemes) even when not in [schemes].  CM schemes replay the
    directives already embedded in the trace, so on a directive-free
    trace they degrade to reactive behavior. *)

val misprediction_pct :
  ?setup:setup -> Dpm_ir.Program.t -> Dpm_layout.Plan.t -> float
(** Table 3 metric: percentage of exploitable idle periods for which
    CMDRPM's chosen RPM level differs from IDRPM's oracle choice (gaps the
    oracle exploits but the compiler misses, and compiler actions on gaps
    the oracle would leave alone, both count as mispredictions). *)

val workload :
  ?setup:setup -> Dpm_workloads.Suite.spec -> Dpm_ir.Program.t * Dpm_layout.Plan.t
(** Calibrated program and default plan for a suite benchmark. *)
