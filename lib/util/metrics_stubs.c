#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

/* Monotonic seconds for span timing.  Preference order:
     1. CLOCK_MONOTONIC_RAW — immune to both wall-clock steps and NTP
        rate trimming (Linux-only);
     2. CLOCK_MONOTONIC     — immune to wall-clock steps (POSIX);
     3. gettimeofday        — last resort on platforms (or seccomp/CI
        sandboxes) where the preferred clocks are compiled in but fail
        at runtime; good enough for coarse per-stage spans.
   Each step falls through on runtime failure, not just missing
   compile-time support, so one binary works across kernels. */
CAMLprim value dpm_metrics_monotonic_s(value unit)
{
  struct timespec ts;
  struct timeval tv;
  (void) unit;
#ifdef CLOCK_MONOTONIC_RAW
  if (clock_gettime(CLOCK_MONOTONIC_RAW, &ts) == 0)
    return caml_copy_double((double) ts.tv_sec + (double) ts.tv_nsec * 1e-9);
#endif
#ifdef CLOCK_MONOTONIC
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double) ts.tv_sec + (double) ts.tv_nsec * 1e-9);
#endif
  gettimeofday(&tv, NULL);
  return caml_copy_double((double) tv.tv_sec + (double) tv.tv_usec * 1e-6);
}
