#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

/* CLOCK_MONOTONIC as a double of seconds: immune to wall-clock steps,
   precise enough (ns resolution) for per-stage spans. */
CAMLprim value dpm_metrics_monotonic_s(value unit)
{
  struct timespec ts;
  (void) unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double) ts.tv_sec + (double) ts.tv_nsec * 1e-9);
}
