(** Domain-safe structured leveled logging.

    One process-wide logger: four levels, a scope string per call site
    and optional [key=value] pairs, rendered as a single line

    {v [dpm][warn] engine: slow replay scheme=DRPM elapsed=12.3 v}

    and written atomically (one mutex-guarded writer call per record, so
    lines from concurrent {!Pool} workers never interleave).  The CLI
    [--log-level] flag feeds {!set_level}; the default [Info] keeps
    existing stderr diagnostics visible while hiding [Debug].

    Below-threshold calls cost one int comparison before any formatting;
    guard construction of expensive [kv] lists with {!would_log} in hot
    paths. *)

type level = Error | Warn | Info | Debug

val level_name : level -> string
val level_of_string : string -> (level, string) result
val all_levels : level list

val set_level : level -> unit
val level : unit -> level

val would_log : level -> bool
(** True when a record at this level would be emitted. *)

val log : level -> scope:string -> ?kv:(string * string) list -> string -> unit

val error : scope:string -> ?kv:(string * string) list -> string -> unit
val warn : scope:string -> ?kv:(string * string) list -> string -> unit
val info : scope:string -> ?kv:(string * string) list -> string -> unit
val debug : scope:string -> ?kv:(string * string) list -> string -> unit

val set_writer : (string -> unit) option -> unit
(** Redirect whole formatted lines (tests capture them this way);
    [None] restores the default stderr writer. *)
