type span = {
  id : int;
  parent : int;
  track : int;
  name : string;
  t0 : float;
  t1 : float;
  args : (string * string) list;
}

type t = {
  mutex : Mutex.t;
  mutable completed : span list; (* reverse completion order *)
  histos : (string, Histo.t) Hashtbl.t;
  next_id : int Atomic.t;
  mutable on_tracing : bool;
  mutable on_histograms : bool;
}

(* The innermost open span id on the current domain: hierarchical
   parents never cross domains, so domain-local state is exactly the
   right scope (a Pool worker's jobs are roots on its own track). *)
let current_parent : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

let create () =
  {
    mutex = Mutex.create ();
    completed = [];
    histos = Hashtbl.create 16;
    next_id = Atomic.make 0;
    on_tracing = false;
    on_histograms = false;
  }

let global = create ()
let set_tracing t b = t.on_tracing <- b
let tracing t = t.on_tracing
let set_histograms t b = t.on_histograms <- b
let histograms_enabled t = t.on_histograms

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let span ?(metrics = Metrics.global) ?args t name f =
  if not t.on_tracing then Metrics.span metrics name f
  else begin
    let id = Atomic.fetch_and_add t.next_id 1 in
    let parent = Domain.DLS.get current_parent in
    Domain.DLS.set current_parent id;
    let track = (Domain.self () :> int) in
    let t0 = Metrics.now () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Metrics.now () in
        Domain.DLS.set current_parent parent;
        if Metrics.enabled metrics then Metrics.record_span metrics name (t1 -. t0);
        let args = match args with None -> [] | Some f -> f () in
        let record = { id; parent; track; name; t0; t1; args } in
        locked t (fun () -> t.completed <- record :: t.completed))
      f
  end

let observe t name x =
  if t.on_histograms then
    locked t (fun () ->
        match Hashtbl.find_opt t.histos name with
        | Some h -> Histo.add h x
        | None ->
            let h = Histo.create () in
            Histo.add h x;
            Hashtbl.add t.histos name h)

let merge_histogram t name src =
  if t.on_histograms then
    locked t (fun () ->
        match Hashtbl.find_opt t.histos name with
        | Some h -> Histo.merge_into ~into:h src
        | None -> Hashtbl.add t.histos name (Histo.copy src))

let spans t =
  locked t (fun () -> t.completed)
  |> List.sort (fun a b -> compare a.id b.id)

let histograms t =
  locked t (fun () ->
      Hashtbl.fold (fun k h acc -> (k, Histo.copy h) :: acc) t.histos [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  locked t (fun () ->
      t.completed <- [];
      Hashtbl.reset t.histos)

(* --- rendering --- *)

let qty = Printf.sprintf "%.6g"

let histogram_report ?(title = "Histograms") t =
  match histograms t with
  | [] -> ""
  | hs ->
      let tbl =
        Table.create ~title
          ~columns:
            [
              ("histogram", Table.Left);
              ("count", Table.Right);
              ("mean", Table.Right);
              ("p50", Table.Right);
              ("p90", Table.Right);
              ("p99", Table.Right);
              ("max", Table.Right);
            ]
      in
      List.iter
        (fun (name, h) ->
          Table.add_row tbl
            [
              name;
              string_of_int (Histo.count h);
              qty (Histo.mean h);
              qty (Histo.quantile h 50.0);
              qty (Histo.quantile h 90.0);
              qty (Histo.quantile h 99.0);
              qty (Histo.max_value h);
            ])
        hs;
      Table.render tbl

let histograms_json t =
  Json.Arr
    (List.map
       (fun (name, h) ->
         Json.Obj
           [
             ("name", Json.Str name);
             ("count", Json.Int (Histo.count h));
             ("mean", Json.Float (Histo.mean h));
             ("min", Json.Float (Histo.min_value h));
             ("p50", Json.Float (Histo.quantile h 50.0));
             ("p90", Json.Float (Histo.quantile h 90.0));
             ("p99", Json.Float (Histo.quantile h 99.0));
             ("max", Json.Float (Histo.max_value h));
           ])
       (histograms t))

(* --- Chrome trace export ---

   Events are emitted by a tree walk per track (children under their
   recorded parent, siblings in start order), so B/E pairs nest
   correctly by construction even when float timestamps tie. *)

let chrome_json ?(process_name = "dpm") t =
  let all = spans t in
  let t_min =
    List.fold_left (fun acc s -> Float.min acc s.t0) infinity all
  in
  let us x = (x -. t_min) *. 1e6 in
  let args_json args =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args)
  in
  let children = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let key = s.parent in
      Hashtbl.replace children key
        (s :: (Option.value ~default:[] (Hashtbl.find_opt children key))))
    (List.rev all);
  (* reversed iteration + cons keeps child lists in start (id) order *)
  let events = ref [] in
  let emit ev = events := ev :: !events in
  let rec walk (s : span) =
    emit
      (Json.Obj
         [
           ("name", Json.Str s.name);
           ("cat", Json.Str "dpm");
           ("ph", Json.Str "B");
           ("ts", Json.Float (us s.t0));
           ("pid", Json.Int 1);
           ("tid", Json.Int s.track);
           ("args", args_json s.args);
         ]);
    List.iter walk (Option.value ~default:[] (Hashtbl.find_opt children s.id));
    emit
      (Json.Obj
         [
           ("ph", Json.Str "E");
           ("name", Json.Str s.name);
           ("ts", Json.Float (us s.t1));
           ("pid", Json.Int 1);
           ("tid", Json.Int s.track);
         ])
  in
  let tracks =
    List.sort_uniq compare (List.map (fun s -> s.track) all)
  in
  emit
    (Json.Obj
       [
         ("ph", Json.Str "M");
         ("name", Json.Str "process_name");
         ("pid", Json.Int 1);
         ("tid", Json.Int 0);
         ("args", Json.Obj [ ("name", Json.Str process_name) ]);
       ]);
  List.iter
    (fun track ->
      emit
        (Json.Obj
           [
             ("ph", Json.Str "M");
             ("name", Json.Str "thread_name");
             ("pid", Json.Int 1);
             ("tid", Json.Int track);
             ("args",
              Json.Obj [ ("name", Json.Str (Printf.sprintf "domain-%d" track)) ]);
           ]))
    tracks;
  (* Roots: parent span never recorded on this collector (crossed a
     Pool boundary or genuinely top-level). *)
  let known = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace known s.id ()) all;
  List.iter
    (fun s -> if s.parent < 0 || not (Hashtbl.mem known s.parent) then walk s)
    all;
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.rev !events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_chrome_trace ?process_name t oc =
  Json.to_channel ~indent:1 oc (chrome_json ?process_name t);
  output_char oc '\n'

let validate_chrome doc =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  (match Option.bind (Json.member "traceEvents" doc) Json.to_list with
  | None -> err "no traceEvents array"
  | Some [] -> err "traceEvents is empty"
  | Some events ->
      let stacks : (int * int, (string * Json.t) list ref) Hashtbl.t =
        Hashtbl.create 8
      in
      let durations = ref 0 in
      List.iteri
        (fun i ev ->
          let str k = Option.bind (Json.member k ev) Json.to_str in
          let int k = Option.bind (Json.member k ev) Json.to_int in
          let num k = Option.bind (Json.member k ev) Json.to_float in
          match (str "ph", int "pid", int "tid") with
          | None, _, _ -> err "event %d: missing ph" i
          | _, None, _ | _, _, None -> err "event %d: missing pid/tid" i
          | Some ph, Some pid, Some tid -> (
              let key = (pid, tid) in
              let stack =
                match Hashtbl.find_opt stacks key with
                | Some s -> s
                | None ->
                    let s = ref [] in
                    Hashtbl.add stacks key s;
                    s
              in
              match ph with
              | "B" -> (
                  incr durations;
                  match (str "name", num "ts") with
                  | Some name, Some _ -> stack := (name, ev) :: !stack
                  | _ -> err "event %d: B without name/ts" i)
              | "E" -> (
                  incr durations;
                  match !stack with
                  | [] -> err "event %d: E with empty stack on tid %d" i tid
                  | (open_name, _) :: rest ->
                      (match str "name" with
                      | Some name when name <> open_name ->
                          err "event %d: E %S closes B %S" i name open_name
                      | _ -> ());
                      stack := rest)
              | "M" -> ()
              | ph -> err "event %d: unsupported phase %S" i ph))
        events;
      if !durations = 0 then err "no B/E duration events";
      Hashtbl.iter
        (fun (_, tid) stack ->
          match !stack with
          | [] -> ()
          | open_spans ->
              err "tid %d: %d unclosed B event(s) (%s)" tid
                (List.length open_spans)
                (String.concat ", " (List.map fst open_spans)))
        stacks);
  match !errors with [] -> Ok () | es -> Error (List.rev es)
