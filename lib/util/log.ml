type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3
let level_name = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let all_levels = [ Error; Warn; Info; Debug ]

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "error" -> Ok Error
  | "warn" | "warning" -> Ok Warn
  | "info" -> Ok Info
  | "debug" -> Ok Debug
  | _ -> Error (Printf.sprintf "unknown log level %S (expected error, warn, info or debug)" s)

(* Plain refs: set once at CLI startup, read racily afterwards — benign
   under the OCaml memory model (no tearing on immediate values). *)
let current = ref (severity Info)
let set_level l = current := severity l

let level () =
  match !current with 0 -> Error | 1 -> Warn | 2 -> Info | _ -> Debug

let would_log l = severity l <= !current

let default_writer line =
  output_string stderr line;
  flush stderr

let writer = ref default_writer
let set_writer = function
  | Some w -> writer := w
  | None -> writer := default_writer

let mutex = Mutex.create ()

(* key=value with the value quoted only when it would break the
   one-token-per-pair shape. *)
let render_value v =
  if
    v <> ""
    && String.for_all
         (fun c -> c <> ' ' && c <> '\t' && c <> '\n' && c <> '"' && c <> '=')
         v
  then v
  else Printf.sprintf "%S" v

let log l ~scope ?(kv = []) msg =
  if would_log l then begin
    let buf = Buffer.create 80 in
    Buffer.add_string buf "[dpm][";
    Buffer.add_string buf (level_name l);
    Buffer.add_string buf "] ";
    Buffer.add_string buf scope;
    Buffer.add_string buf ": ";
    Buffer.add_string buf msg;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        Buffer.add_string buf (render_value v))
      kv;
    Buffer.add_char buf '\n';
    let line = Buffer.contents buf in
    Mutex.lock mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mutex)
      (fun () -> !writer line)
  end

let error ~scope ?kv msg = log Error ~scope ?kv msg
let warn ~scope ?kv msg = log Warn ~scope ?kv msg
let info ~scope ?kv msg = log Info ~scope ?kv msg
let debug ~scope ?kv msg = log Debug ~scope ?kv msg
