type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_str x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x (* keep a ".0" so the type survives reparsing *)
  else if Float.is_nan x then "null" (* NaN has no JSON spelling *)
  else if x = Float.infinity then "1e999"
  else if x = Float.neg_infinity then "-1e999"
  else Printf.sprintf "%.17g" x

let to_buffer ?indent buf v =
  let nl depth =
    match indent with
    | None -> ()
    | Some step ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (depth * step) ' ')
  in
  let sep () = match indent with None -> () | Some _ -> Buffer.add_char buf ' ' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float x -> Buffer.add_string buf (float_str x)
    | Str s -> escape buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            nl (depth + 1);
            go (depth + 1) x)
          xs;
        nl depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            nl (depth + 1);
            escape buf k;
            Buffer.add_char buf ':';
            sep ();
            go (depth + 1) x)
          fields;
        nl depth;
        Buffer.add_char buf '}'
  in
  go 0 v

let to_string ?indent v =
  let buf = Buffer.create 256 in
  to_buffer ?indent buf v;
  Buffer.contents buf

let to_channel ?indent oc v = output_string oc (to_string ?indent v)

(* --- parsing --- *)

exception Parse_error of string

let parse_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_str () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   if !pos + 4 >= n then fail "bad \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   (* UTF-8 encode the BMP code point (no surrogate pairing
                      — the writer only emits \u for control chars). *)
                   (if code < 0x80 then Buffer.add_char buf (Char.chr code)
                    else if code < 0x800 then begin
                      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                    end
                    else begin
                      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                      Buffer.add_char buf
                        (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                    end);
                   pos := !pos + 5
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    let is_integral =
      not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit)
    in
    if is_integral then
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail "bad number")
    else
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_str () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); go ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec go () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); go ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_str ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None

let to_float = function
  | Float x -> Some x
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

(* --- schema outline --- *)

let schema_outline v =
  let tag = function
    | Null -> "null"
    | Bool _ -> "b"
    | Int _ | Float _ -> "n"
    | Str _ -> "s"
    | Arr _ -> "a"
    | Obj _ -> "o"
  in
  let lines = Hashtbl.create 64 in
  let rec go path v =
    match v with
    | Obj fields ->
        Hashtbl.replace lines (path ^ ":o") ();
        List.iter (fun (k, x) -> go (path ^ "." ^ k) x) fields
    | Arr xs ->
        Hashtbl.replace lines (path ^ ":a") ();
        List.iter (fun x -> go (path ^ "[]") x) xs
    | v -> Hashtbl.replace lines (path ^ ":" ^ tag v) ()
  in
  go "" v;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) lines [])
