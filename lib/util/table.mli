(** Aligned plain-text tables for the experiment reports.

    The benchmark harness prints the same rows/series the paper reports;
    this module renders them as monospace tables with a title, a header
    row and right-aligned numeric columns. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t
(** [create ~title ~columns] starts an empty table. *)

val add_row : t -> string list -> unit
(** Appends a row; the row must have exactly as many cells as there are
    columns (raises [Invalid_argument] otherwise). *)

val add_rule : t -> unit
(** Appends a horizontal rule. *)

val render : t -> string
(** Renders with a box of [-] rules and [|]-free spacing, e.g.:
{v
== Title ==
col-a   col-b
-----   -----
x       1.00
v} *)

val print : t -> unit
(** [render] followed by [print_string] and a newline flush. *)

val cell_int : int -> string
(** Integer cell. *)

val cell_f : float -> string
(** Numeric cell with two decimals. *)

val cell_f3 : float -> string
(** Numeric cell with three decimals. *)

val cell_pct : float -> string
(** Percentage cell with one decimal, e.g. ["46.0%"]. *)
