(** Lightweight instrumentation: monotonic timers, counters and
    per-stage spans.

    A collector accumulates named spans (total wall time + call count)
    and named counters, and renders them through {!Table} in the same
    monospace style as the experiment reports.  All operations are
    domain-safe — the pipeline stages record into one collector from
    every {!Pool} worker — and cost one mutex acquisition per {e run},
    not per event, so instrumentation never shows up in the numbers it
    measures.

    The {!global} collector is disabled by default, making every
    recording call a cheap no-op; the CLI [--metrics] flag enables it
    and prints {!report} at exit.  Stages that want explicit plumbing
    instead take a [?metrics] argument defaulting to {!global}. *)

type t
(** A collector of spans and counters. *)

val create : ?enabled:bool -> unit -> t
(** Fresh collector; [enabled] defaults to [true]. *)

val global : t
(** Process-wide collector used when [?metrics] is omitted.  Starts
    {e disabled}. *)

val set_enabled : t -> bool -> unit
(** Turns recording on or off.  While disabled, {!span} still runs its
    thunk (without timing) and {!add}/{!count} do nothing. *)

val enabled : t -> bool

val now : unit -> float
(** Monotonic time in seconds from an arbitrary origin, suitable only
    for differences. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t stage f] runs [f ()], accumulating its wall time and one
    call under [stage].  Exceptions propagate; the span is still
    recorded.  Nested and concurrent spans under the same name simply
    accumulate. *)

val record_span : t -> string -> float -> unit
(** [record_span t stage dt] accumulates [dt] seconds and one call under
    [stage] without running anything — {!Telemetry.span} times once and
    feeds both its hierarchical record and this flat view.  Unlike
    {!span}, this is unconditional: callers check {!enabled}. *)

val add : t -> string -> int -> unit
(** [add t counter n] bumps [counter] by [n]. *)

val count : t -> string -> unit
(** [count t counter] is [add t counter 1]. *)

val span_total : t -> string -> float
(** Accumulated seconds under a stage (0 if never recorded). *)

val span_calls : t -> string -> int

val counter : t -> string -> int
(** Accumulated counter value (0 if never recorded). *)

val spans : t -> (string * float * int) list
(** Every recorded stage as [(name, total seconds, calls)], sorted by
    name — deterministic whatever order domains recorded in. *)

val counters : t -> (string * int) list
(** Every counter as [(name, value)], sorted by name. *)

val rate : t -> counter:string -> span:string -> float option
(** [rate t ~counter ~span] is counter / span-seconds, or [None] when
    either is missing or the span is zero.  E.g. requests simulated per
    second of replay. *)

val reset : t -> unit
(** Drops all recorded spans and counters (the enabled flag is kept). *)

val report : ?title:string -> t -> string
(** Renders the spans (stage, calls, total s, mean ms) and counters as
    text tables, with derived throughput lines for the conventional
    pairs ([sim.requests]/[sim.replay], [trace.events]/[trace.gen]).
    Rows are sorted by name, so two runs of the same workload differ
    only in the timing columns whatever [--domains] was.  Returns [""]
    when nothing was recorded. *)
