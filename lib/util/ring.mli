(** Growable circular sample buffer with an optional retention bound.

    The power meter ({!Dpm_sim.Meter}) streams one sample per disk per
    resolution window; a long simulation at a fine resolution produces
    far more samples than anyone wants to keep.  A [Ring] appends in
    amortized O(1) either unbounded (capacity doubles like a vector) or
    bounded to the newest [capacity] elements, silently overwriting the
    oldest and counting what it dropped — the meter's integral is kept
    in separate accumulators precisely so eviction never loses energy.

    Not thread-safe; one ring per recorder, like {!Histo}. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Empty ring.  With [capacity] (≥ 1) only the newest [capacity]
    elements are retained; without it the ring grows without bound.
    Raises [Invalid_argument] on [capacity < 1]. *)

val push : 'a t -> 'a -> unit
(** Append one element, evicting the oldest when at capacity. *)

val length : 'a t -> int
(** Elements currently retained. *)

val pushed : 'a t -> int
(** Elements ever pushed. *)

val dropped : 'a t -> int
(** [pushed - length]: elements evicted by the capacity bound. *)

val capacity : 'a t -> int option
(** The retention bound ([None] = unbounded). *)

val get : 'a t -> int -> 'a
(** [get r i] is the [i]-th retained element, oldest first.  Raises
    [Invalid_argument] when [i] is outside [0, length - 1]. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest retained first. *)

val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

val to_list : 'a t -> 'a list
(** Oldest retained first. *)

val clear : 'a t -> unit
(** Drop every element (the [pushed]/[dropped] counters reset too). *)
