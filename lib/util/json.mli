(** Minimal JSON values: enough to build the telemetry exports (Chrome
    trace, run reports, BENCH snapshots) and to parse them back for
    validation — no external dependency.

    Printing is deterministic: object fields keep their construction
    order, floats render with ["%.17g"] (round-trip exact), and there is
    no whitespace beyond what {!to_string} is asked for.  The parser
    accepts any RFC 8259 document (nesting, escapes, exponents); numbers
    that are integral and fit in an OCaml [int] parse as {!Int}, the
    rest as {!Float}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Compact by default; [~indent:2] pretty-prints with that step. *)

val to_channel : ?indent:int -> out_channel -> t -> unit

val parse_string : string -> (t, string) result
(** Whole-document parse (trailing garbage is an error). *)

(** {1 Accessors} — total lookups for validators and renderers. *)

val member : string -> t -> t option
(** Field of an {!Obj} ([None] on anything else or a missing key). *)

val to_list : t -> t list option
val to_float : t -> float option
(** Accepts {!Int} too (the parser may have narrowed a whole float). *)

val to_int : t -> int option
val to_str : t -> string option
val to_bool : t -> bool option

val schema_outline : t -> string list
(** Sorted, de-duplicated key paths with a one-letter type tag, e.g.
    [".schemes[].energy_j:n"] — array elements are merged under the same
    ["[]"] path.  The golden schema check compares these lines, so a
    report can change every value (timings!) without touching the
    outline, while adding/removing/re-typing a field fails the check. *)
