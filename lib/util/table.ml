type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows : row list; (* reverse order *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let headers = List.map fst t.columns in
  let all_cell_rows =
    headers
    :: List.filter_map
         (function Cells c -> Some c | Rule -> None)
         (List.rev t.rows)
  in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let note_widths cells =
    List.iteri
      (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
      cells
  in
  List.iter note_widths all_cell_rows;
  let pad i s =
    let w = widths.(i) in
    let n = w - String.length s in
    let align = snd (List.nth t.columns i) in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let buf = Buffer.create 256 in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i c))
      cells;
    Buffer.add_char buf '\n'
  in
  let rule () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  emit_cells headers;
  rule ();
  List.iter
    (function Cells c -> emit_cells c | Rule -> rule ())
    (List.rev t.rows);
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_int n = string_of_int n
let cell_f x = Printf.sprintf "%.2f" x
let cell_f3 x = Printf.sprintf "%.3f" x
let cell_pct x = Printf.sprintf "%.1f%%" x
