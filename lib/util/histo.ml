(* Geometric buckets over (lo, lo·γⁿ]; bucket 0 is (0, lo] and a
   dedicated counter holds exact zeros / non-positives.  lo = 1 ns and
   n = 640 cover every quantity we histogram (seconds, queue depths,
   retry counts) up to ~2.3e12 with γ ≈ 8% relative error. *)

let gamma = 1.08
let lo = 1e-9
let nbuckets = 640
let log_gamma = log gamma

type t = {
  counts : int array;
  mutable zeros : int;
  mutable count : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

let create () =
  {
    counts = Array.make nbuckets 0;
    zeros = 0;
    count = 0;
    sum = 0.0;
    mn = infinity;
    mx = neg_infinity;
  }

let copy t =
  {
    counts = Array.copy t.counts;
    zeros = t.zeros;
    count = t.count;
    sum = t.sum;
    mn = t.mn;
    mx = t.mx;
  }

let index v =
  if v <= lo then 0
  else
    let i = int_of_float (Float.ceil (log (v /. lo) /. log_gamma)) in
    if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

let add t v =
  if Float.is_nan v then ()
  else begin
    if v <= 0.0 then t.zeros <- t.zeros + 1
    else t.counts.(index v) <- t.counts.(index v) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.mn then t.mn <- v;
    if v > t.mx then t.mx <- v
  end

let count t = t.count
let is_empty t = t.count = 0
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0.0 else t.mn
let max_value t = if t.count = 0 then 0.0 else t.mx

let upper i = lo *. (gamma ** float_of_int i)

let quantile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histo.quantile: p out of [0, 100]";
  if t.count = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.count))) in
    if rank <= t.zeros then Float.max 0.0 (min_value t)
    else begin
      let rec walk i seen =
        if i >= nbuckets then max_value t
        else
          let seen = seen + t.counts.(i) in
          if seen >= rank then
            (* Clamping to the exact extrema only tightens the bound. *)
            Float.min (max_value t) (Float.max (min_value t) (upper i))
          else walk (i + 1) seen
      in
      walk 0 t.zeros
    end
  end

let merge_into ~into t =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
  into.zeros <- into.zeros + t.zeros;
  into.count <- into.count + t.count;
  into.sum <- into.sum +. t.sum;
  if t.mn < into.mn then into.mn <- t.mn;
  if t.mx > into.mx then into.mx <- t.mx

let merge a b =
  let t = copy a in
  merge_into ~into:t b;
  t

let buckets t =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.counts.(i) > 0 then
      acc := ((if i = 0 then 0.0 else upper (i - 1)), upper i, t.counts.(i)) :: !acc
  done;
  if t.zeros > 0 then (0.0, 0.0, t.zeros) :: !acc else !acc

(* --- mergeable wire form ---

   Sparse [index, count] pairs plus the scalar moments.  The bucket
   geometry (gamma, lo, nbuckets) is a property of the code, so a
   document merges exactly with a live histogram as long as both sides
   run the same build; [of_json] rejects out-of-range indices, which is
   what an incompatible geometry would produce. *)

let to_json t =
  let pairs = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.counts.(i) > 0 then
      pairs := Json.Arr [ Json.Int i; Json.Int t.counts.(i) ] :: !pairs
  done;
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("zeros", Json.Int t.zeros);
      ("sum", Json.Float t.sum);
      ("min", Json.Float (min_value t));
      ("max", Json.Float (max_value t));
      ("buckets", Json.Arr !pairs);
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let int k =
    match Option.bind (Json.member k j) Json.to_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "Histo.of_json: missing int %s" k)
  in
  let num k =
    match Option.bind (Json.member k j) Json.to_float with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "Histo.of_json: missing number %s" k)
  in
  let* count = int "count" in
  let* zeros = int "zeros" in
  let* sum = num "sum" in
  let* mn = num "min" in
  let* mx = num "max" in
  let* pairs =
    match Option.bind (Json.member "buckets" j) Json.to_list with
    | Some l -> Ok l
    | None -> Error "Histo.of_json: missing buckets array"
  in
  let t = create () in
  t.count <- count;
  t.zeros <- zeros;
  t.sum <- sum;
  if count > 0 then begin
    t.mn <- mn;
    t.mx <- mx
  end;
  List.fold_left
    (fun acc pair ->
      let* () = acc in
      match Option.map (List.filter_map Json.to_int) (Json.to_list pair) with
      | Some [ i; c ] when i >= 0 && i < nbuckets && c >= 0 ->
          t.counts.(i) <- t.counts.(i) + c;
          Ok ()
      | _ -> Error "Histo.of_json: malformed bucket pair")
    (Ok ()) pairs
  |> Result.map (fun () -> t)
