(** Fixed-size worker pool over OCaml 5 domains.

    The experiment grids (benchmark × scheme × configuration) are
    embarrassingly parallel and share nothing: every run parses, compiles
    and simulates against its own freshly built state.  This module fans
    such grids out over a fixed set of domains while keeping the results
    {e deterministic}: [map f xs] always returns results in input order,
    and the values are independent of the domain count because each task
    owns all of its mutable state (see the audit note in DESIGN.md §2).

    Built only on stdlib [Domain], [Mutex] and [Condition] — no
    dependencies beyond the compiler. *)

type t
(** A pool of worker domains consuming jobs from a shared queue. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains] worker domains (default
    {!default_domains}).  [domains <= 1] creates a degenerate pool that
    runs everything on the calling domain. *)

val size : t -> int
(** Number of worker domains (0 for a degenerate pool). *)

val run : t -> ('a -> 'b) -> 'a list -> 'b list
(** [run pool f xs] applies [f] to every element of [xs] on the pool's
    workers and returns the results in input order.  If one or more
    applications raise, the remaining queued tasks are cancelled, every
    in-flight task is drained, and the exception of the {e
    lowest-indexed} failing element is re-raised on the calling domain
    (with its backtrace) — so the surfaced error is deterministic too.
    The pool stays usable after a failed batch. *)

val shutdown : t -> unit
(** Signals the workers to exit and joins them.  Idempotent.  Calling
    {!run} on a shut-down pool raises [Invalid_argument]. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [create], [run], [shutdown].  With
    [~domains:1] (or a single-element list) this is exactly [List.map f
    xs] on the calling domain. *)

val default_domains : unit -> int
(** The domain count used when [?domains] is omitted.  Initially
    [Domain.recommended_domain_count ()], clamped to [[1, 8]]; the
    [DPM_DOMAINS] environment variable overrides the initial value, and
    {!set_default_domains} overrides both (the CLI [--domains] flag ends
    up here). *)

val set_default_domains : int -> unit
(** Sets {!default_domains} for the rest of the process (clamped to at
    least 1). *)
