(** Pipeline-wide telemetry: hierarchical trace spans, named histograms
    and a Chrome [trace_event] exporter, layered over the flat
    {!Metrics} collector.

    Every stage of the pipeline (compiler passes, trace generation,
    replay, figure tasks, pool jobs) runs under {!span}, which

    - accumulates the flat (stage, total, calls) view in a {!Metrics}
      collector exactly as before, and
    - when {e tracing} is on, records a hierarchical span: a unique id,
      the parent span running on the same domain (tracked through
      domain-local state, so concurrent {!Pool} workers each grow their
      own subtree), the domain's track id, wall-clock bounds and lazy
      [key=value] annotations.

    The recorded forest exports as Chrome [trace_event] JSON ([B]/[E]
    duration events, one [tid] per domain) loadable in Perfetto or
    [chrome://tracing] — the [--trace FILE] flag on [dpmsim] and the
    benchmark harness ends up here.

    Histograms ({!Histo}) register by name.  Hot loops record into a
    local histogram and {!merge_histogram} once per replay (one lock
    acquisition); low-rate call sites use {!observe} directly.  Bucket
    counts merge additively, so the registered quantiles are {e
    identical} whatever the domain count.

    Everything is off by default and zero-cost when off: {!span} costs
    one boolean test on top of {!Metrics.span} (itself a no-op unless
    enabled), {!observe}/{!merge_histogram} cost one boolean test, and
    simulation {!Result}s are byte-identical with telemetry on or off —
    recording is strictly observational, like the [?timeline] sink. *)

type span = {
  id : int;
  parent : int;  (** id of the enclosing span on this track, or -1. *)
  track : int;  (** Domain id the span ran on. *)
  name : string;
  t0 : float;  (** {!Metrics.now} seconds. *)
  t1 : float;
  args : (string * string) list;
}

type t

val create : unit -> t
(** Fresh collector with tracing and histograms both off. *)

val global : t
(** Process-wide collector the pipeline records into by default. *)

val set_tracing : t -> bool -> unit
val tracing : t -> bool
val set_histograms : t -> bool -> unit
val histograms_enabled : t -> bool

val span :
  ?metrics:Metrics.t ->
  ?args:(unit -> (string * string) list) ->
  t ->
  string ->
  (unit -> 'a) ->
  'a
(** [span t name f] runs [f ()] under a named span.  The flat view
    always lands in [metrics] (default {!Metrics.global}); the
    hierarchical record only when {!tracing} is on, in which case [args]
    (evaluated lazily, only then) annotate the Chrome event.  Exceptions
    propagate; the span closes either way. *)

val observe : t -> string -> float -> unit
(** Add one observation to the named histogram (no-op unless
    {!histograms_enabled}; takes the collector lock — fine at per-gap or
    per-decision rate, wrong inside the replay's per-request loop). *)

val merge_histogram : t -> string -> Histo.t -> unit
(** Merge a locally accumulated histogram into the named one (no-op
    unless {!histograms_enabled}).  One lock acquisition per call. *)

val spans : t -> span list
(** Completed spans, ordered by id (= start order). *)

val histograms : t -> (string * Histo.t) list
(** Name-sorted copies of the registered histograms. *)

val reset : t -> unit
(** Drops spans and histograms; keeps the enabled flags. *)

(** {1 Rendering} *)

val histogram_report : ?title:string -> t -> string
(** Count / mean / p50 / p90 / p99 / max per histogram, as a {!Table};
    [""] when nothing was observed. *)

val histograms_json : t -> Json.t
(** The same quantiles as a JSON array (run reports, BENCH snapshots). *)

val chrome_json : ?process_name:string -> t -> Json.t
(** The span forest as a Chrome [trace_event] document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}] with balanced
    [B]/[E] pairs per track (emitted by tree walk, so nesting is correct
    even for zero-width spans), thread-name metadata per track, and
    timestamps in microseconds relative to the earliest span. *)

val write_chrome_trace : ?process_name:string -> t -> out_channel -> unit

val validate_chrome : Json.t -> (unit, string list) result
(** Structural check used by [dpmsim report-check] and the tests: a
    [traceEvents] array exists and is non-empty, every event carries
    [ph]/[pid]/[tid] (and [name]/[ts] for [B]/[E]), and per [(pid, tid)]
    the [B]/[E] events balance like parentheses with matching names. *)
