type t = {
  mutex : Mutex.t;
  wake : Condition.t;  (* signalled when a job is queued or on shutdown *)
  jobs : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
}

let clamp lo hi v = max lo (min hi v)

let initial_domains () =
  match Sys.getenv_opt "DPM_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> clamp 1 64 n
      | None -> 1)
  | None -> clamp 1 8 (Domain.recommended_domain_count ())

(* Process-wide default, set once at startup (CLI --domains); reads after
   that are racy-but-benign, so a plain ref suffices under the OCaml
   memory model (no tearing on immediate ints). *)
let default = ref (-1)

let default_domains () =
  if !default < 0 then default := initial_domains ();
  !default

let set_default_domains n = default := max 1 n

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.jobs && not pool.closed do
    Condition.wait pool.wake pool.mutex
  done;
  if Queue.is_empty pool.jobs then Mutex.unlock pool.mutex (* closed *)
  else begin
    let job = Queue.pop pool.jobs in
    Mutex.unlock pool.mutex;
    job ();
    worker_loop pool
  end

let create ?(domains = default_domains ()) () =
  let pool =
    {
      mutex = Mutex.create ();
      wake = Condition.create ();
      jobs = Queue.create ();
      closed = false;
      workers = [||];
    }
  in
  if domains > 1 then
    pool.workers <-
      Array.init domains (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = Array.length pool.workers

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closed <- true;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]

(* One batch: n tasks, a slot per task, a countdown signalled back to the
   submitter.  Each slot is written by exactly one worker and read only
   after the countdown reaches zero (the batch mutex provides the
   happens-before edge), so slot access needs no further synchronisation. *)
type 'b outcome =
  | Pending
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

let run pool f xs =
  let check_open () =
    Mutex.lock pool.mutex;
    let closed = pool.closed in
    Mutex.unlock pool.mutex;
    if closed then invalid_arg "Pool.run: pool is shut down"
  in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when size pool = 0 ->
      check_open ();
      List.map f xs
  | _ ->
      check_open ();
      let items = Array.of_list xs in
      let n = Array.length items in
      let slots = Array.make n Pending in
      let batch_mutex = Mutex.create () in
      let batch_done = Condition.create () in
      let remaining = ref n in
      let cancelled = ref false in
      let task i () =
        let cancel =
          Mutex.lock batch_mutex;
          let c = !cancelled in
          Mutex.unlock batch_mutex;
          c
        in
        let outcome =
          if cancel then Pending
          else
            (* Each job is a telemetry span on its worker's track: with
               --trace, every domain shows its queue of grid tasks. *)
            match Telemetry.span Telemetry.global "pool.task" (fun () -> f items.(i)) with
            | v -> Done v
            | exception e -> Failed (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock batch_mutex;
        slots.(i) <- outcome;
        (match outcome with Failed _ -> cancelled := true | _ -> ());
        decr remaining;
        if !remaining = 0 then Condition.signal batch_done;
        Mutex.unlock batch_mutex
      in
      Mutex.lock pool.mutex;
      for i = 0 to n - 1 do
        Queue.add (task i) pool.jobs
      done;
      Condition.broadcast pool.wake;
      Mutex.unlock pool.mutex;
      Mutex.lock batch_mutex;
      while !remaining > 0 do
        Condition.wait batch_done batch_mutex
      done;
      Mutex.unlock batch_mutex;
      (* Deterministic error choice: the lowest-indexed failure wins,
         whatever order the workers actually hit them in. *)
      Array.iter
        (function
          | Failed (e, bt) -> Printexc.raise_with_backtrace e bt | _ -> ())
        slots;
      Array.to_list
        (Array.map
           (function
             | Done v -> v
             | Pending | Failed _ -> assert false (* no failure, no cancel *))
           slots)

let map ?(domains = default_domains ()) f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when domains <= 1 -> List.map f xs
  | _ ->
      let pool = create ~domains:(min domains (List.length xs)) () in
      Fun.protect
        ~finally:(fun () -> shutdown pool)
        (fun () -> run pool f xs)
