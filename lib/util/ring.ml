type 'a t = {
  mutable buf : 'a option array;
  mutable head : int; (* index of the oldest retained element *)
  mutable len : int;
  mutable pushed : int;
  bound : int option;
}

let create ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Ring.create: capacity < 1"
  | _ -> ());
  let initial =
    match capacity with Some c -> min c 16 | None -> 16
  in
  { buf = Array.make initial None; head = 0; len = 0; pushed = 0; bound = capacity }

let length t = t.len
let pushed t = t.pushed
let dropped t = t.pushed - t.len
let capacity t = t.bound

(* Double the backing store, unrolling the wrap so the ring restarts at
   index 0.  Only reached below the retention bound. *)
let grow t =
  let n = Array.length t.buf in
  let size =
    match t.bound with Some c -> min c (n * 2) | None -> n * 2
  in
  let buf = Array.make size None in
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.((t.head + i) mod n)
  done;
  t.buf <- buf;
  t.head <- 0

let push t v =
  let n = Array.length t.buf in
  if t.len = n then begin
    match t.bound with
    | Some c when n = c ->
        (* Full at the bound: overwrite the oldest. *)
        t.buf.(t.head) <- Some v;
        t.head <- (t.head + 1) mod n;
        t.pushed <- t.pushed + 1
    | _ ->
        grow t;
        let n = Array.length t.buf in
        t.buf.((t.head + t.len) mod n) <- Some v;
        t.len <- t.len + 1;
        t.pushed <- t.pushed + 1
  end
  else begin
    t.buf.((t.head + t.len) mod n) <- Some v;
    t.len <- t.len + 1;
    t.pushed <- t.pushed + 1
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ring.get: index out of range";
  match t.buf.((t.head + i) mod Array.length t.buf) with
  | Some v -> v
  | None -> assert false

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun v -> acc := f !acc v) t;
  !acc

let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0;
  t.pushed <- 0
