external now : unit -> float = "dpm_metrics_monotonic_s"

type span_stats = { mutable total : float; mutable calls : int }

type t = {
  mutex : Mutex.t;
  spans : (string, span_stats) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
  mutable on : bool;
}

let create ?(enabled = true) () =
  {
    mutex = Mutex.create ();
    spans = Hashtbl.create 16;
    counters = Hashtbl.create 16;
    on = enabled;
  }

let global = create ~enabled:false ()
let set_enabled t b = t.on <- b
let enabled t = t.on

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record_span t name dt =
  locked t (fun () ->
      match Hashtbl.find_opt t.spans name with
      | Some s ->
          s.total <- s.total +. dt;
          s.calls <- s.calls + 1
      | None -> Hashtbl.add t.spans name { total = dt; calls = 1 })

let span t name f =
  if not t.on then f ()
  else begin
    let t0 = now () in
    Fun.protect ~finally:(fun () -> record_span t name (now () -. t0)) f
  end

let add t name n =
  if t.on then
    locked t (fun () ->
        match Hashtbl.find_opt t.counters name with
        | Some r -> r := !r + n
        | None -> Hashtbl.add t.counters name (ref n))

let count t name = add t name 1

let span_total t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.spans name with Some s -> s.total | None -> 0.0)

let span_calls t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.spans name with Some s -> s.calls | None -> 0)

let counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

let spans t =
  locked t (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v.total, v.calls) :: acc) t.spans [])
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let counters t =
  locked t (fun () -> Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.counters [])
  |> List.sort compare

let rate t ~counter:c ~span:s =
  let n = counter t c and dt = span_total t s in
  if n = 0 || dt <= 0.0 then None else Some (float_of_int n /. dt)

let reset t =
  locked t (fun () ->
      Hashtbl.reset t.spans;
      Hashtbl.reset t.counters)

(* Conventional counter/span pairs reported as throughputs. *)
let throughputs =
  [
    ("requests simulated/s", "sim.requests", "sim.replay");
    ("trace events generated/s", "trace.events", "trace.gen");
  ]

let report ?(title = "Metrics") t =
  let spans = spans t and counters = counters t in
  if spans = [] && counters = [] then ""
  else begin
    let buf = Buffer.create 256 in
    (if spans <> [] then begin
       let tbl =
         Table.create
           ~title:(title ^ ": per-stage wall time")
           ~columns:
             [
               ("stage", Table.Left);
               ("calls", Table.Right);
               ("total(s)", Table.Right);
               ("mean(ms)", Table.Right);
             ]
       in
       (* Already name-sorted: rows must not depend on merge order or
          relative timings, so --metrics output is stable across
          --domains values. *)
       List.iter
         (fun (name, total, calls) ->
           Table.add_row tbl
             [
               name;
               string_of_int calls;
               Table.cell_f3 total;
               Table.cell_f3 (1000.0 *. total /. float_of_int calls);
             ])
         spans;
       Buffer.add_string buf (Table.render tbl)
     end);
    (if counters <> [] then begin
       let tbl =
         Table.create
           ~title:(title ^ ": counters")
           ~columns:[ ("counter", Table.Left); ("value", Table.Right) ]
       in
       List.iter
         (fun (name, v) -> Table.add_row tbl [ name; string_of_int v ])
         counters;
       Buffer.add_char buf '\n';
       Buffer.add_string buf (Table.render tbl)
     end);
    List.iter
      (fun (label, c, s) ->
        match rate t ~counter:c ~span:s with
        | Some r -> Buffer.add_string buf (Printf.sprintf "%s: %.0f\n" label r)
        | None -> ())
      throughputs;
    Buffer.contents buf
  end
