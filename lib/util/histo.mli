(** Log-bucketed histograms: fixed-size, mergeable, with bounded-error
    quantiles.

    Values land in geometrically growing buckets (ratio {!gamma}), so a
    quantile read back from the histogram over-estimates the true order
    statistic by at most a factor of {!gamma} — good enough to tell a
    50 ms p99 from a 5 ms one, at a flat cost of one [int array] per
    histogram and O(1) per observation.

    Merging adds bucket counts pointwise, so it is exactly commutative
    and associative on counts/min/max — the property the parallel
    experiment grids rely on: per-replay histograms merged into the
    global collector give {e identical} quantiles whatever the domain
    count or merge order.  (The running [sum] is a float and therefore
    only approximately associative; it feeds the reported mean, nothing
    else.)

    Not thread-safe on its own: record into a local histogram per
    replay, then {!merge_into} a shared one under the collector's lock
    (see {!Telemetry}). *)

type t

val gamma : float
(** Bucket growth ratio (the worst-case relative quantile error). *)

val create : unit -> t
val copy : t -> t

val add : t -> float -> unit
(** Record one observation.  Non-positive values count in a dedicated
    zero bucket (queue depths of 0 are real data); values beyond the
    covered range clamp into the first/last bucket. *)

val count : t -> int
val is_empty : t -> bool
val sum : t -> float
val mean : t -> float
val min_value : t -> float
(** Exact smallest observation (0.0 when empty). *)

val max_value : t -> float
(** Exact largest observation (0.0 when empty). *)

val quantile : t -> float -> float
(** [quantile t p] for [p] in [0, 100]: an upper bound on the rank
    [ceil (p/100 · count)] order statistic, within a factor of {!gamma}
    (and clamped to the exact observed min/max).  [quantile t 100] is
    exactly {!max_value}.  0.0 when empty.  Raises [Invalid_argument]
    on [p] outside [0, 100]. *)

val merge : t -> t -> t
(** Fresh histogram holding both inputs' observations. *)

val merge_into : into:t -> t -> unit

val buckets : t -> (float * float * int) list
(** Non-empty buckets as [(lower, upper, count)], ascending; the zero
    bucket reports as [(0., 0., n)].  Exposed for property tests and
    renderers. *)

val to_json : t -> Json.t
(** Mergeable wire form: sparse [[index, count]] pairs plus the scalar
    moments (count/zeros/sum/min/max).  Two serialized histograms merge
    exactly — {!of_json} then {!merge} reproduces the pointwise bucket
    sums — which is what lets [dpmsim aggregate] combine the per-run
    [dpm-report/1] histograms of a whole sweep directory. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}.  Counts/quantiles/min/max round-trip exactly;
    [sum] (and so [mean]) is a float and round-trips via ["%.17g"]. *)
