exception Error of { line : int; message : string }

type state = {
  mutable toks : (Lexer.token * int) list;
  mutable stmt_counter : int;
      (* Fresh-label source for unlabeled statements.  Per-parse state on
         purpose: a process-global counter would make labels depend on
         how many programs other pool workers have parsed concurrently,
         and every parse of the same source must yield the same labels
         ("s1", "s2", ... in source order). *)
}

let peek st =
  match st.toks with
  | (tok, _) :: _ -> tok
  | [] -> Lexer.EOF

let line st = match st.toks with (_, l) :: _ -> l | [] -> 0

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let fail st message = raise (Error { line = line st; message })

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s, found %s" (Lexer.describe tok)
         (Lexer.describe (peek st)))

let expect_int st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      n
  | t -> fail st (Printf.sprintf "expected integer, found %s" (Lexer.describe t))

let expect_ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | t ->
      fail st (Printf.sprintf "expected identifier, found %s" (Lexer.describe t))

(* --- Expressions --- *)

let rec parse_expr st =
  let lhs = parse_term st in
  parse_expr_rest st lhs

and parse_expr_rest st lhs =
  match peek st with
  | Lexer.PLUS ->
      advance st;
      let rhs = parse_term st in
      parse_expr_rest st (Expr.Add (lhs, rhs))
  | Lexer.MINUS ->
      advance st;
      let rhs = parse_term st in
      parse_expr_rest st (Expr.Sub (lhs, rhs))
  | _ -> lhs

and parse_term st =
  let lhs = parse_factor st in
  parse_term_rest st lhs

and parse_term_rest st lhs =
  match peek st with
  | Lexer.STAR ->
      advance st;
      let rhs = parse_factor st in
      let product =
        match (Expr.simplify lhs, Expr.simplify rhs) with
        | Expr.Const k, e | e, Expr.Const k -> Expr.Mul (k, e)
        | _ -> fail st "non-affine product: one operand must be constant"
      in
      parse_term_rest st product
  | Lexer.SLASH ->
      advance st;
      let k = expect_int st in
      if k <= 0 then fail st "division by non-positive constant";
      parse_term_rest st (Expr.Div (lhs, k))
  | _ -> lhs

and parse_factor st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      Expr.Const n
  | Lexer.IDENT x ->
      advance st;
      Expr.Var x
  | Lexer.MINUS ->
      advance st;
      let e = parse_factor st in
      Expr.Mul (-1, e)
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | Lexer.KW_MIN ->
      advance st;
      expect st Lexer.LPAREN;
      let a = parse_expr st in
      expect st Lexer.COMMA;
      let b = parse_expr st in
      expect st Lexer.RPAREN;
      Expr.Min (a, b)
  | Lexer.KW_MAX ->
      advance st;
      expect st Lexer.LPAREN;
      let a = parse_expr st in
      expect st Lexer.COMMA;
      let b = parse_expr st in
      expect st Lexer.RPAREN;
      Expr.Max (a, b)
  | t -> fail st (Printf.sprintf "expected expression, found %s" (Lexer.describe t))

(* --- References and statements --- *)

let parse_subscripts st =
  let rec go acc =
    match peek st with
    | Lexer.LBRACKET ->
        advance st;
        let e = parse_expr st in
        expect st Lexer.RBRACKET;
        go (e :: acc)
    | _ -> List.rev acc
  in
  go []

let parse_ref st =
  let name = expect_ident st in
  let subs = parse_subscripts st in
  if subs = [] then fail st ("array reference " ^ name ^ " has no subscripts");
  Reference.make name subs

let parse_rhs st =
  let rec go acc =
    match peek st with
    | Lexer.PLUS ->
        advance st;
        go (parse_ref st :: acc)
    | _ -> List.rev acc
  in
  let first = parse_ref st in
  go [ first ]

let parse_work st =
  match peek st with
  | Lexer.KW_WORK ->
      advance st;
      expect_int st
  | _ -> 0

let skip_semi st = if peek st = Lexer.SEMI then advance st

(* --- Items --- *)

let fresh_label st =
  st.stmt_counter <- st.stmt_counter + 1;
  Printf.sprintf "s%d" st.stmt_counter

let rec parse_items st =
  match peek st with
  | Lexer.RBRACE -> []
  | _ ->
      let item = parse_item st in
      item :: parse_items st

and parse_item st =
  match peek st with
  | Lexer.KW_FOR -> Loop.For (parse_loop st)
  | Lexer.KW_SPIN_DOWN ->
      advance st;
      expect st Lexer.LPAREN;
      let d = expect_int st in
      expect st Lexer.RPAREN;
      skip_semi st;
      Loop.Call (Loop.Spin_down d)
  | Lexer.KW_SPIN_UP ->
      advance st;
      expect st Lexer.LPAREN;
      let d = expect_int st in
      expect st Lexer.RPAREN;
      skip_semi st;
      Loop.Call (Loop.Spin_up d)
  | Lexer.KW_SET_RPM ->
      advance st;
      expect st Lexer.LPAREN;
      let level = expect_int st in
      expect st Lexer.COMMA;
      let disk = expect_int st in
      expect st Lexer.RPAREN;
      skip_semi st;
      Loop.Call (Loop.Set_rpm { level; disk })
  | Lexer.KW_USE ->
      advance st;
      let reads = parse_rhs st in
      let work = parse_work st in
      skip_semi st;
      Loop.Stmt (Stmt.make ~label:(fresh_label st) ~work reads)
  | Lexer.IDENT _ ->
      let write = parse_ref st in
      expect st Lexer.EQUALS;
      let reads = parse_rhs st in
      let work = parse_work st in
      skip_semi st;
      Loop.Stmt (Stmt.make ~label:(fresh_label st) ~write ~work reads)
  | t -> fail st (Printf.sprintf "expected loop or statement, found %s" (Lexer.describe t))

and parse_loop st =
  expect st Lexer.KW_FOR;
  let var = expect_ident st in
  expect st Lexer.EQUALS;
  let lo = parse_expr st in
  expect st Lexer.KW_TO;
  let hi = parse_expr st in
  let step =
    match peek st with
    | Lexer.KW_STEP ->
        advance st;
        expect_int st
    | _ -> 1
  in
  expect st Lexer.LBRACE;
  let body = parse_items st in
  expect st Lexer.RBRACE;
  Loop.for_ var ~step lo hi body

let parse_array_decl st =
  expect st Lexer.KW_ARRAY;
  let name = expect_ident st in
  let rec dims acc =
    match peek st with
    | Lexer.LBRACKET ->
        advance st;
        let d = expect_int st in
        expect st Lexer.RBRACKET;
        dims (d :: acc)
    | _ -> List.rev acc
  in
  let dims = dims [] in
  if dims = [] then fail st ("array " ^ name ^ " has no dimensions");
  expect st Lexer.COLON;
  let elem_size = expect_int st in
  Array_decl.make ~name ~dims ~elem_size

let program ~name src =
  let st =
    {
      toks =
        (try Lexer.tokenize src
         with Lexer.Error { line; message } -> raise (Error { line; message }));
      stmt_counter = 0;
    }
  in
  let arrays = ref [] in
  let body = ref [] in
  let rec go () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.KW_ARRAY ->
        arrays := parse_array_decl st :: !arrays;
        go ()
    | Lexer.KW_FOR | Lexer.KW_SPIN_DOWN | Lexer.KW_SPIN_UP | Lexer.KW_SET_RPM
    | Lexer.KW_USE | Lexer.IDENT _ ->
        body := parse_item st :: !body;
        go ()
    | t ->
        fail st
          (Printf.sprintf
             "expected 'array', a loop, a call or a statement at top level, \
              found %s"
             (Lexer.describe t))
  in
  go ();
  Program.make ~name ~arrays:(List.rev !arrays) ~body:(List.rev !body)

let expr src =
  let st = { toks = Lexer.tokenize src; stmt_counter = 0 } in
  let e = parse_expr st in
  expect st Lexer.EOF;
  e
