type t = {
  label : string;
  write : Reference.t option;
  reads : Reference.t list;
  work : int;
}

(* Atomic: programs are parsed/built concurrently from pool workers, and
   a plain ref could hand two statements the same fresh label.  Labels
   are only identifiers, so inter-run ordering does not matter — only
   uniqueness does. *)
let counter = Atomic.make 0

let make ?label ?write ?(work = 0) reads =
  let label =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "s%d" (Atomic.fetch_and_add counter 1 + 1)
  in
  if work < 0 then invalid_arg "Stmt.make: negative work";
  if write = None && reads = [] then
    invalid_arg "Stmt.make: statement references no arrays";
  { label; write; reads; work }

let refs t = match t.write with None -> t.reads | Some w -> w :: t.reads

let arrays t =
  List.sort_uniq compare (List.map (fun (r : Reference.t) -> r.array) (refs t))

let subst x by t =
  {
    t with
    write = Option.map (Reference.subst x by) t.write;
    reads = List.map (Reference.subst x by) t.reads;
  }

let pp ppf t =
  (match t.write with
  | Some w -> Format.fprintf ppf "%a = " Reference.pp w
  | None -> Format.fprintf ppf "use ");
  (match t.reads with
  | [] -> Format.fprintf ppf "0"
  | r :: rest ->
      Reference.pp ppf r;
      List.iter (fun r -> Format.fprintf ppf " + %a" Reference.pp r) rest);
  if t.work > 0 then Format.fprintf ppf " work %d" t.work
