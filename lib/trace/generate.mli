(** Trace generator: executes a program's loop structure against a layout
    plan and a buffer cache, producing the I/O event stream the simulator
    replays (paper §4.1, "we implemented a trace generator").

    Statements execute in program order; every array reference touches its
    stripe unit in the LRU buffer cache, and only misses become disk
    requests.  Compute cycles accumulate between misses according to the
    cost model and are emitted as the next event's think time — this is
    the role the paper's measured `gethrtime` cycle estimates play.
    Power-management calls present in the (compiler-transformed) code are
    passed through as directives at their execution points. *)

type config = {
  cost : Dpm_ir.Cost.model;
  cache_blocks : int;
      (** LRU capacity in stripe units; 0 disables caching. *)
}

val default_config : config
(** Default cost model and a 1,024-block (64 MB at default striping)
    cache. *)

val run :
  ?config:config ->
  ?metrics:Dpm_util.Metrics.t ->
  Dpm_ir.Program.t ->
  Dpm_layout.Plan.t ->
  Trace.t
(** Generates the trace for one run.  Raises [Invalid_argument] if the
    program references arrays missing from the plan.  Wall time is
    recorded under the [trace.gen] span and the event count under the
    [trace.events] counter of [metrics] (default
    {!Dpm_util.Metrics.global}, a no-op unless enabled). *)

val stream :
  ?config:config ->
  ?metrics:Dpm_util.Metrics.t ->
  ?batch:int ->
  Dpm_ir.Program.t ->
  Dpm_layout.Plan.t ->
  Trace.Stream.t
(** Fused producer: the same loop-nest walk as {!run} (identical LRU
    cache state, cost model and emission order) suspended every [batch]
    events and resumed by the consumer's pull — generation and replay
    interleave in O(batch) peak memory.  The stream's [tail_think]
    becomes available at exhaustion; its [nblocks] re-runs the walk
    with a max-tracking sink when forced (fault-injected replays only).
    The [trace.events] counter is bumped once, when the producer
    finishes. *)

val max_block :
  ?config:config -> Dpm_ir.Program.t -> Dpm_layout.Plan.t -> int
(** Highest IO block number + 1 the run touches, computed without
    retaining events (the fault layer's address space). *)

val request_count :
  ?config:config -> Dpm_ir.Program.t -> Dpm_layout.Plan.t -> int
(** Convenience: number of I/O requests the run produces. *)
