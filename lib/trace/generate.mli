(** Trace generator: executes a program's loop structure against a layout
    plan and a buffer cache, producing the I/O event stream the simulator
    replays (paper §4.1, "we implemented a trace generator").

    Statements execute in program order; every array reference touches its
    stripe unit in the LRU buffer cache, and only misses become disk
    requests.  Compute cycles accumulate between misses according to the
    cost model and are emitted as the next event's think time — this is
    the role the paper's measured `gethrtime` cycle estimates play.
    Power-management calls present in the (compiler-transformed) code are
    passed through as directives at their execution points. *)

type config = {
  cost : Dpm_ir.Cost.model;
  cache_blocks : int;
      (** LRU capacity in stripe units; 0 disables caching. *)
}

val default_config : config
(** Default cost model and a 1,024-block (64 MB at default striping)
    cache. *)

val run :
  ?config:config ->
  ?metrics:Dpm_util.Metrics.t ->
  Dpm_ir.Program.t ->
  Dpm_layout.Plan.t ->
  Trace.t
(** Generates the trace for one run.  Raises [Invalid_argument] if the
    program references arrays missing from the plan.  Wall time is
    recorded under the [trace.gen] span and the event count under the
    [trace.events] counter of [metrics] (default
    {!Dpm_util.Metrics.global}, a no-op unless enabled). *)

val request_count :
  ?config:config -> Dpm_ir.Program.t -> Dpm_layout.Plan.t -> int
(** Convenience: number of I/O requests the run produces. *)
