(* Open-loop multi-tenant workloads: a seeded arrival plan over source
   workloads, and a k-way merge of per-tenant streams onto one shared
   think-time clock.  See openloop.mli for the model. *)

module Rng = Dpm_util.Rng

type arrival = Poisson of float | Bursty of { rate : float; burst : int }
type t = { arrival : arrival; jobs : int; zipf : float; seed : int }

let fail fmt = Format.kasprintf invalid_arg ("Openloop: " ^^ fmt)

let make ?(arrival = Poisson 1.0) ?(jobs = 4) ?(zipf = 1.0) ?(seed = 0) () =
  (match arrival with
  | Poisson rate when rate <= 0.0 -> fail "arrival rate must be > 0 (got %g)" rate
  | Bursty { rate; _ } when rate <= 0.0 ->
      fail "arrival rate must be > 0 (got %g)" rate
  | Bursty { burst; _ } when burst < 1 ->
      fail "burst must be >= 1 (got %d)" burst
  | _ -> ());
  if jobs < 1 then fail "jobs must be >= 1 (got %d)" jobs;
  if zipf < 0.0 then fail "zipf exponent must be >= 0 (got %g)" zipf;
  { arrival; jobs; zipf; seed }

(* Key=value syntax, mirroring Fault.of_string: stable canonical order,
   floats printed with round-trip precision so a descriptor survives the
   spec JSON bit-exactly. *)

let float_str x =
  let s = Printf.sprintf "%.17g" x in
  (* Prefer the shortest representation that still round-trips. *)
  let short = Printf.sprintf "%g" x in
  if float_of_string short = x then short else s

let to_string ?(sources = []) t =
  List.iter
    (fun s ->
      if s = "" || String.contains s ',' || String.contains s ':' then
        fail "invalid source name %S" s)
    sources;
  let rate, burst =
    match t.arrival with
    | Poisson r -> (r, None)
    | Bursty { rate; burst } -> (rate, Some burst)
  in
  String.concat ","
    (List.concat
       [
         [ Printf.sprintf "rate=%s" (float_str rate) ];
         (match burst with
         | None -> []
         | Some b -> [ Printf.sprintf "burst=%d" b ]);
         [
           Printf.sprintf "jobs=%d" t.jobs;
           Printf.sprintf "zipf=%s" (float_str t.zipf);
           Printf.sprintf "seed=%d" t.seed;
         ];
         (match sources with
         | [] -> []
         | _ -> [ "sources=" ^ String.concat ":" sources ]);
       ])

let of_string s =
  let ( let* ) = Result.bind in
  let parse_float k v =
    match float_of_string_opt (String.trim v) with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "open-loop: %s: not a number: %S" k v)
  in
  let parse_int k v =
    match int_of_string_opt (String.trim v) with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "open-loop: %s: not an integer: %S" k v)
  in
  let fields =
    String.split_on_char ',' s
    |> List.filter (fun f -> String.trim f <> "")
  in
  let step acc field =
    let* rate, burst, jobs, zipf, seed, sources = acc in
    match String.index_opt field '=' with
    | None -> Error (Printf.sprintf "open-loop: expected key=value, got %S" field)
    | Some i -> (
        let k = String.trim (String.sub field 0 i) in
        let v = String.sub field (i + 1) (String.length field - i - 1) in
        match String.lowercase_ascii k with
        | "rate" ->
            let* f = parse_float k v in
            Ok (Some f, burst, jobs, zipf, seed, sources)
        | "burst" ->
            let* b = parse_int k v in
            Ok (rate, Some b, jobs, zipf, seed, sources)
        | "jobs" ->
            let* j = parse_int k v in
            Ok (rate, burst, Some j, zipf, seed, sources)
        | "zipf" ->
            let* z = parse_float k v in
            Ok (rate, burst, jobs, Some z, seed, sources)
        | "seed" ->
            let* sd = parse_int k v in
            Ok (rate, burst, jobs, zipf, Some sd, sources)
        | "sources" ->
            let names =
              String.split_on_char ':' v
              |> List.map String.trim
              |> List.filter (fun n -> n <> "")
            in
            Ok (rate, burst, jobs, zipf, seed, names)
        | _ -> Error (Printf.sprintf "open-loop: unknown key %S" k))
  in
  let* rate, burst, jobs, zipf, seed, sources =
    List.fold_left step (Ok (None, None, None, None, None, [])) fields
  in
  match rate with
  | None -> Error "open-loop: missing required key \"rate\""
  | Some rate -> (
      let arrival =
        match burst with
        | None -> Poisson rate
        | Some burst -> Bursty { rate; burst }
      in
      match make ~arrival ?jobs ?zipf ?seed () with
      | t -> Ok (t, sources)
      | exception Invalid_argument msg -> Error msg)

(* Deterministic expansion of the descriptor: arrival times and source
   picks draw from independent splits of the seed, so changing the job
   count never perturbs which sources early jobs picked. *)
let plan t ~nsources =
  if nsources <= 0 then fail "plan: nsources must be > 0 (got %d)" nsources;
  let root = Rng.create t.seed in
  let arr_rng = Rng.split root "arrivals" in
  let pick_rng = Rng.split root "sources" in
  (* Zipf weights over the source list; zipf = 0 degenerates to uniform. *)
  let weights =
    Array.init nsources (fun k -> float_of_int (k + 1) ** -.t.zipf)
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let pick () =
    let u = Rng.float pick_rng total in
    let k = ref 0 and acc = ref 0.0 in
    while
      !k < nsources - 1
      &&
      (acc := !acc +. weights.(!k);
       u >= !acc)
    do
      incr k
    done;
    !k
  in
  (* Exponential inter-arrival draw; Rng.float is on [0, 1) so the log
     argument stays in (0, 1]. *)
  let exp_draw rate = -.log (1.0 -. Rng.float arr_rng 1.0) /. rate in
  let starts = Array.make t.jobs 0.0 in
  (match t.arrival with
  | Poisson rate ->
      let clock = ref 0.0 in
      for j = 0 to t.jobs - 1 do
        clock := !clock +. exp_draw rate;
        starts.(j) <- !clock
      done
  | Bursty { rate; burst } ->
      (* Cluster starts at rate/burst keep the long-run job rate at
         [rate]; each cluster launches up to [burst] tenants at once. *)
      let cluster_rate = rate /. float_of_int burst in
      let clock = ref 0.0 in
      let j = ref 0 in
      while !j < t.jobs do
        clock := !clock +. exp_draw cluster_rate;
        let n = min burst (t.jobs - !j) in
        for _ = 1 to n do
          starts.(!j) <- !clock;
          incr j
        done
      done);
  let out = Array.make t.jobs (0.0, 0) in
  for j = 0 to t.jobs - 1 do
    out.(j) <- (starts.(j), pick ())
  done;
  out

(* --- k-way merge ------------------------------------------------------ *)

type cursor = {
  start : float;
  stream : Trace.Stream.t;
  mutable chunk : Request.event array;
  mutable idx : int;
  mutable clock : float;  (* virtual time of the last emitted arrival *)
  mutable arrival : float;  (* virtual arrival of the current head event *)
  mutable alive : bool;
}

(* Position [c.arrival] on the cursor's next event, pulling chunks as
   needed; marks the cursor dead at stream exhaustion. *)
let rec advance c =
  if c.idx < Array.length c.chunk then
    c.arrival <- c.clock +. Request.think c.chunk.(c.idx)
  else
    match Trace.Stream.next c.stream with
    | Some chunk ->
        c.chunk <- chunk;
        c.idx <- 0;
        advance c
    | None -> c.alive <- false

let merge ?batch ?program tenants =
  if tenants = [] then fail "merge: empty tenant list";
  List.iter
    (fun (start, _) ->
      if start < 0.0 then fail "merge: negative start time %g" start)
    tenants;
  let ndisks =
    List.fold_left
      (fun acc (_, s) -> max acc (Trace.Stream.ndisks s))
      1 tenants
  in
  let nblocks =
    lazy
      (List.fold_left
         (fun acc (_, s) -> max acc (Trace.Stream.nblocks s))
         0 tenants)
  in
  let program =
    match program with
    | Some p -> p
    | None ->
        let names =
          List.map (fun (_, s) -> Trace.Stream.program s) tenants
          |> List.sort_uniq compare
        in
        Printf.sprintf "open-loop(%s)" (String.concat "+" names)
  in
  let cursors =
    List.map
      (fun (start, stream) ->
        let c =
          {
            start;
            stream;
            chunk = [||];
            idx = 0;
            clock = start;
            arrival = start;
            alive = true;
          }
        in
        advance c;
        c)
      tenants
    |> Array.of_list
  in
  Trace.Stream.of_push ?batch ~nblocks ~program ~ndisks (fun ~emit ->
      (* Earliest head event wins; ties resolve to the lowest tenant
         index, so the interleaving is a deterministic function of the
         tenant list alone. *)
      let best () =
        let b = ref None in
        Array.iter
          (fun c ->
            if c.alive then
              match !b with
              | Some best when best.arrival <= c.arrival -> ()
              | _ -> b := Some c)
          cursors;
        !b
      in
      let last = ref 0.0 in
      let rec loop () =
        match best () with
        | None -> ()
        | Some c ->
            (* The global minimum arrival is nondecreasing (each pop
               replaces a head with a later one), so the delta is >= 0
               up to the defensive clamp. *)
            let d = c.arrival -. !last in
            let d = if d > 0.0 then d else 0.0 in
            (emit
               (match c.chunk.(c.idx) with
               | Request.Io io -> Request.Io { io with Request.think = d }
               | Request.Pm { directive; _ } ->
                   Request.Pm { think = d; directive }));
            last := c.arrival;
            c.clock <- c.arrival;
            c.idx <- c.idx + 1;
            advance c;
            loop ()
      in
      loop ();
      (* Merged tail: the last tenant to finish defines end-of-run on
         the shared clock.  Every component is exhausted here, so each
         stream's own tail think is known. *)
      let tail =
        Array.fold_left
          (fun acc c ->
            max acc (c.clock +. Trace.Stream.tail_think c.stream -. !last))
          0.0 cursors
      in
      tail)
