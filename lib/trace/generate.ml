type config = { cost : Dpm_ir.Cost.model; cache_blocks : int }

let default_config = { cost = Dpm_ir.Cost.default; cache_blocks = 1024 }

(* Core loop-nest walk, parameterized over the event sink so the same
   code (same LRU cache, same cost model, same emission order) backs
   both the materializing [generate] and the chunked [stream].  Returns
   the tail think time left pending after the last event. *)
let walk ~config (p : Dpm_ir.Program.t) plan ~emit =
  let cache = Dpm_cache.Lru.create ~capacity:config.cache_blocks in
  let pending_cycles = ref 0 in
  let current_iter = ref 0 in
  let flush_think () =
    let t = Dpm_ir.Cost.seconds config.cost !pending_cycles in
    pending_cycles := 0;
    t
  in
  let unit_bytes name u =
    let entry = Dpm_layout.Plan.entry plan name in
    let ss = entry.Dpm_layout.Plan.striping.Dpm_layout.Striping.stripe_size in
    let file = Dpm_ir.Array_decl.size_bytes entry.Dpm_layout.Plan.decl in
    min ss (file - (u * ss))
  in
  let touch ~nest ~kind (r : Dpm_ir.Reference.t) env =
    let idx = Dpm_ir.Reference.eval env r in
    let u = Dpm_layout.Plan.element_unit plan r.array idx in
    match Dpm_cache.Lru.access cache (r.array, u) with
    | `Hit -> ()
    | `Miss _ ->
        emit
          (Request.Io
             {
               think = flush_think ();
               disk = Dpm_layout.Plan.unit_disk plan r.array u;
               block = Dpm_layout.Plan.unit_global_block plan r.array u;
               bytes = unit_bytes r.array u;
               kind;
               nest;
               iter = !current_iter;
             })
  in
  let callbacks =
    {
      Dpm_ir.Enumerate.on_enter =
        (fun ~nest:_ ~depth ~var:_ ~value ->
          if depth = 0 then current_iter := value;
          pending_cycles := !pending_cycles + config.cost.loop_overhead);
      on_stmt =
        (fun ~nest s env ->
          pending_cycles :=
            !pending_cycles + Dpm_ir.Cost.stmt_cycles config.cost s;
          List.iter (fun r -> touch ~nest ~kind:Request.Read r env) s.reads;
          Option.iter
            (fun w -> touch ~nest ~kind:Request.Write w env)
            s.write);
      on_call =
        (fun ~nest:_ call _env ->
          let directive =
            match call with
            | Dpm_ir.Loop.Spin_down d -> Request.Spin_down d
            | Dpm_ir.Loop.Spin_up d -> Request.Spin_up d
            | Dpm_ir.Loop.Set_rpm { level; disk } ->
                Request.Set_rpm { level; disk }
          in
          emit (Request.Pm { think = flush_think (); directive }));
    }
  in
  Dpm_ir.Enumerate.run callbacks p;
  flush_think ()

let generate ~config (p : Dpm_ir.Program.t) plan =
  let events = ref [] in
  let tail_think = walk ~config p plan ~emit:(fun e -> events := e :: !events) in
  Trace.make ~tail_think ~program:p.Dpm_ir.Program.name
    ~ndisks:(Dpm_layout.Plan.ndisks plan)
    (List.rev !events)

let run ?(config = default_config) ?(metrics = Dpm_util.Metrics.global) p plan
    =
  let trace =
    Dpm_util.Telemetry.span ~metrics
      ~args:(fun () -> [ ("program", p.Dpm_ir.Program.name) ])
      Dpm_util.Telemetry.global "trace.gen"
      (fun () -> generate ~config p plan)
  in
  Dpm_util.Metrics.add metrics "trace.events" (Trace.event_count trace);
  trace

(* Re-runs the walk with a max-tracking sink: the exact block-address
   space ([max block + 1]) a materialized run of the same program would
   have, without retaining any events.  Forced only by fault-injected
   streaming replays. *)
let max_block ?(config = default_config) p plan =
  let acc = ref 0 in
  let (_ : float) =
    walk ~config p plan ~emit:(function
      | Request.Io io -> acc := max !acc (io.Request.block + 1)
      | Request.Pm _ -> ())
  in
  !acc

let stream ?(config = default_config) ?(metrics = Dpm_util.Metrics.global)
    ?batch p plan =
  (* No span here: the walk runs interleaved with the consumer's replay,
     so its wall time is not a meaningful stage on its own.  The event
     count is still recorded, once, when the producer finishes. *)
  let count = ref 0 in
  Trace.Stream.of_push ?batch
    ~nblocks:(lazy (max_block ~config p plan))
    ~program:p.Dpm_ir.Program.name
    ~ndisks:(Dpm_layout.Plan.ndisks plan)
    (fun ~emit ->
      let tail =
        walk ~config p plan ~emit:(fun e ->
            incr count;
            emit e)
      in
      Dpm_util.Metrics.add metrics "trace.events" !count;
      tail)

let request_count ?config p plan = Trace.io_count (run ?config p plan)
