type config = { cost : Dpm_ir.Cost.model; cache_blocks : int }

let default_config = { cost = Dpm_ir.Cost.default; cache_blocks = 1024 }

let generate ~config (p : Dpm_ir.Program.t) plan =
  let cache = Dpm_cache.Lru.create ~capacity:config.cache_blocks in
  let events = ref [] in
  let pending_cycles = ref 0 in
  let current_iter = ref 0 in
  let flush_think () =
    let t = Dpm_ir.Cost.seconds config.cost !pending_cycles in
    pending_cycles := 0;
    t
  in
  let unit_bytes name u =
    let entry = Dpm_layout.Plan.entry plan name in
    let ss = entry.Dpm_layout.Plan.striping.Dpm_layout.Striping.stripe_size in
    let file = Dpm_ir.Array_decl.size_bytes entry.Dpm_layout.Plan.decl in
    min ss (file - (u * ss))
  in
  let touch ~nest ~kind (r : Dpm_ir.Reference.t) env =
    let idx = Dpm_ir.Reference.eval env r in
    let u = Dpm_layout.Plan.element_unit plan r.array idx in
    match Dpm_cache.Lru.access cache (r.array, u) with
    | `Hit -> ()
    | `Miss _ ->
        let io =
          Request.Io
            {
              think = flush_think ();
              disk = Dpm_layout.Plan.unit_disk plan r.array u;
              block = Dpm_layout.Plan.unit_global_block plan r.array u;
              bytes = unit_bytes r.array u;
              kind;
              nest;
              iter = !current_iter;
            }
        in
        events := io :: !events
  in
  let callbacks =
    {
      Dpm_ir.Enumerate.on_enter =
        (fun ~nest:_ ~depth ~var:_ ~value ->
          if depth = 0 then current_iter := value;
          pending_cycles := !pending_cycles + config.cost.loop_overhead);
      on_stmt =
        (fun ~nest s env ->
          pending_cycles :=
            !pending_cycles + Dpm_ir.Cost.stmt_cycles config.cost s;
          List.iter (fun r -> touch ~nest ~kind:Request.Read r env) s.reads;
          Option.iter
            (fun w -> touch ~nest ~kind:Request.Write w env)
            s.write);
      on_call =
        (fun ~nest:_ call _env ->
          let directive =
            match call with
            | Dpm_ir.Loop.Spin_down d -> Request.Spin_down d
            | Dpm_ir.Loop.Spin_up d -> Request.Spin_up d
            | Dpm_ir.Loop.Set_rpm { level; disk } ->
                Request.Set_rpm { level; disk }
          in
          events := Request.Pm { think = flush_think (); directive } :: !events);
    }
  in
  Dpm_ir.Enumerate.run callbacks p;
  let tail_think = flush_think () in
  Trace.make ~tail_think ~program:p.Dpm_ir.Program.name
    ~ndisks:(Dpm_layout.Plan.ndisks plan)
    (List.rev !events)

let run ?(config = default_config) ?(metrics = Dpm_util.Metrics.global) p plan
    =
  let trace =
    Dpm_util.Telemetry.span ~metrics
      ~args:(fun () -> [ ("program", p.Dpm_ir.Program.name) ])
      Dpm_util.Telemetry.global "trace.gen"
      (fun () -> generate ~config p plan)
  in
  Dpm_util.Metrics.add metrics "trace.events" (Array.length trace.Trace.events);
  trace

let request_count ?config p plan = Trace.io_count (run ?config p plan)
