(** Trace containers and bounded-memory trace streams.

    A trace is the ordered event stream of one application run together
    with the subsystem metadata the simulator needs (program name, disk
    count).  Traces can be saved to and reloaded from a line-oriented text
    format, mirroring the externally-provided trace files of the paper's
    setup.

    [t] is the fully materialized form — the whole run in one array —
    which whole-trace tools (Table 2 counts, {!without_pm}, {!save})
    need.  The replay engine itself consumes {!Stream.t}, a pull-based
    chunked view, so fused generate→replay pipelines run in O(batch)
    peak memory; {!Stream.of_trace} bridges the two. *)

exception Parse_error of string
(** Malformed trace file; the message carries [path:line:] context. *)

type t
(** Abstract: construct with {!make} (or {!load}), inspect through the
    accessors below. *)

type trace = t
(** Alias for referring to the materialized type where [t] is shadowed
    (notably inside {!Stream}). *)

val make :
  ?tail_think:float -> program:string -> ndisks:int -> Request.event list -> t
(** Validates every IO's disk index against [ndisks]; raises
    [Invalid_argument] on a violation or a non-positive disk count. *)

val program : t -> string
val ndisks : t -> int

val tail_think : t -> float
(** Compute time after the last event completes, seconds. *)

val events : t -> Request.event array
(** Fresh copy of the event array (callers cannot mutate the trace). *)

val event_count : t -> int

val io_count : t -> int
(** Number of I/O requests (Table 2 "Num of Disk Reqs"). *)

val pm_count : t -> int
val total_bytes : t -> int
val total_think : t -> float
(** Sum of think times including the tail: the pure-compute part of the
    run. *)

val io_events : t -> Request.io list
(** In order, directives skipped. *)

val disks_used : t -> int list
(** Sorted list of disks receiving at least one request. *)

val map_events :
  (Request.event -> Request.event option) -> t -> t
(** Filter-map over the stream (used to strip or rewrite directives). *)

val without_pm : t -> t
(** Drops directives, folding their think time into the next event so the
    compute timeline is preserved. *)

val save : t -> string -> unit
(** Writes header lines ([# program=... ndisks=...]) then one event per
    line. *)

val load : string -> t
(** Inverse of {!save}: materializes {!Stream.of_file}.  Raises
    {!Parse_error} (with file/line context) on malformed files. *)

val max_nblocks_chunk : int -> Request.event array -> int
(** [max_nblocks_chunk acc chunk] folds the highest IO block number + 1
    over [chunk], starting from [acc] — the stripe-unit address space
    fault plans are drawn over. *)

(** Pull-based, batched request streams.

    A stream yields the run as successive non-empty
    [Request.event array] chunks (bounded by {!batch}) with the
    stream-level metadata — {!program}, {!ndisks}, and (once known)
    {!tail_think} — available alongside.  Chunk boundaries are an
    implementation detail: consumers that fold each chunk element-wise
    in order compute exactly what they would over the whole array, so
    replays are byte-identical at any batch size. *)
module Stream : sig
  (** Structure-of-arrays event chunks — the replay engine's hot-path
      representation.

      A chunk stores up to [capacity] events as parallel Bigarray
      columns: [think] is a [float64] column (reads are unboxed in the
      consumer's arithmetic) and the rest are native-[int] columns.  The
      per-event [tag] encodes the [Request.event] constructor; [disk]
      doubles as a directive's disk, and [block] as the [Set_rpm] level.
      The record is exposed so the specialized replay loop can index the
      columns directly ([Bigarray.Array1.unsafe_get] compiles to a plain
      load when the element kind is statically known); treat the fields
      as read-only outside this library and mutate through
      {!Chunk.push}/{!Chunk.set}/{!Chunk.clear}. *)
  module Chunk : sig
    type floats =
      (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

    type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

    type t = {
      mutable len : int;  (** Events currently stored; indices [0..len-1]. *)
      think : floats;
      tag : ints;  (** One of the [tag_*] values below. *)
      disk : ints;  (** IO disk, or the directive's disk. *)
      block : ints;  (** IO block, or the [Set_rpm] level. *)
      bytes : ints;
      nest : ints;
      iter : ints;
    }

    val tag_read : int
    val tag_write : int
    val tag_spin_down : int
    val tag_spin_up : int
    val tag_set_rpm : int

    val is_io_tag : int -> bool
    (** True for {!tag_read}/{!tag_write}. *)

    val create : int -> t
    (** Empty chunk with the given capacity (raises [Invalid_argument]
        if non-positive). *)

    val capacity : t -> int
    val length : t -> int

    val clear : t -> unit
    (** Reset to empty; the columns are reused in place. *)

    val set : t -> int -> Request.event -> unit
    (** Encode one event at an index (unchecked; use {!push} to
        append). *)

    val push : t -> Request.event -> unit
    (** Append one event; raises [Invalid_argument] when full. *)

    val get : t -> int -> Request.event
    (** Decode the event at an index (allocates the record); raises
        [Invalid_argument] out of bounds.  [get (push c e) = e] for
        every event — the encoding is lossless. *)

    val think : t -> int -> float
    val tag : t -> int -> int
    val disk : t -> int -> int
    val block : t -> int -> int
    val bytes : t -> int -> int
    val nest : t -> int -> int
    val iter : t -> int -> int

    val of_events : Request.event array -> t
    val to_events : t -> Request.event array
  end

  type nonrec t

  val default_batch : int
  (** 4096 events per chunk. *)

  val make :
    ?batch:int ->
    ?tail:float ->
    nblocks:int Lazy.t ->
    program:string ->
    ndisks:int ->
    (unit -> Request.event array option) ->
    t
  (** Wrap a raw pull function.  [tail] may be omitted when the
      producer only learns it at exhaustion (see {!of_push}).
      [nblocks] is forced only by consumers that need the block-address
      space up front (the fault planner). *)

  val of_trace : ?batch:int -> trace -> t
  (** Compat producer: slices of a materialized trace.  [tail_think]
      and [nblocks] come for free. *)

  val of_push :
    ?batch:int ->
    ?tail:float ->
    nblocks:int Lazy.t ->
    program:string ->
    ndisks:int ->
    (emit:(Request.event -> unit) -> float) ->
    t
  (** Invert a push-style producer: [produce ~emit] is run as a
      coroutine (OCaml effects) that is suspended every [batch] emitted
      events and resumed on demand.  Its return value becomes the
      stream's [tail_think], available once the stream is exhausted. *)

  val of_file : ?batch:int -> string -> t
  (** Incremental parse of the {!save} line format.  The header is read
      eagerly (so metadata is available immediately); events are parsed
      chunk by chunk on demand.  Raises {!Parse_error} with
      [path:line:] context on malformed headers, malformed event lines,
      and out-of-range disk indices.  [nblocks] re-scans the file on a
      second channel when forced. *)

  val to_trace : t -> trace
  (** Drain the stream into a materialized trace (validating disk
      ranges like {!make}). *)

  val next : t -> Request.event array option
  (** Next non-empty chunk, or [None] once exhausted (and forever
      after — the exhaustion latch makes repeated calls safe). *)

  val next_soa : t -> Chunk.t option
  (** Next non-empty chunk in structure-of-arrays form, or [None] once
      exhausted (same latch as {!next}; mixing the two lanes on one
      stream is allowed — they share the underlying cursor, so every
      event is delivered exactly once).  {!of_trace} and {!of_file}
      streams fill the chunk natively (no intermediate
      [Request.event] records for {!of_trace}); other producers
      transcribe {!next}'s record chunks.  The returned chunk is a
      scratch buffer owned by the stream and overwritten by the
      following [next_soa] call — consume it before pulling again. *)

  val iter : (Request.event -> unit) -> t -> unit
  (** Drain the stream, applying [f] to every event in order. *)

  val program : t -> string
  val ndisks : t -> int
  val batch : t -> int

  val nblocks : t -> int
  (** Highest IO block number + 1 (forces the lazy scan). *)

  val tail_think : t -> float
  (** Raises [Invalid_argument] if the stream's tail is not yet known —
      for {!of_push} streams that is before exhaustion. *)
end
