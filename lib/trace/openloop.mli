(** Open-loop multi-tenant workload model.

    The paper (and every run so far) replays one application's
    closed-loop trace: the next request is issued only after the
    previous one completes.  A fleet-scale service sees the opposite
    regime — independent jobs {e arrive} on their own schedule and
    multiplex onto a shared disk fleet regardless of how fast earlier
    jobs are being served.  This module provides that regime as pure
    trace algebra, upstream of the replay engine:

    - a serializable {e load descriptor} ({!t}): a seeded arrival
      process (Poisson or bursty) that launches [jobs] tenants, each an
      independent copy of one of a list of source workloads picked by
      Zipf popularity;
    - {!plan}: the deterministic expansion of a descriptor into
      [(start_time, source_index)] pairs via the splittable {!Dpm_util.Rng}
      (same seed → same plan on every machine);
    - {!merge}: a k-way merge of per-tenant streams into one
      {!Trace.Stream.t} on the shared think-time clock, so the merged
      stream replays through the unmodified engine (any scheme, any
      fleet, any batch size) and every downstream tool — timeline,
      meter, faults, report — just works.

    The merge is defined on the {e application clock}: tenant [j]'s
    event [i] occurs at virtual time [start_j + Σ think_{0..i}], events
    are interleaved in nondecreasing virtual time (ties broken by
    tenant order), and think times are re-encoded as deltas on the
    merged clock.  Service time does not shift arrivals — that is what
    makes the workload open-loop: a slow disk makes requests pile up
    instead of politely spacing out.  Per-tenant event order and count
    are preserved exactly ({!merge} is a fair interleaving, pinned by a
    qcheck property at batch sizes 1/7/4096). *)

type arrival =
  | Poisson of float
      (** Independent arrivals at [rate] jobs/second (exponential
          inter-arrival times). *)
  | Bursty of { rate : float; burst : int }
      (** Cluster arrivals: cluster starts are Poisson at [rate /.
          burst] so the long-run job rate is still [rate], and each
          cluster launches up to [burst] tenants simultaneously — the
          bursty regime of the energy-aware DBMS evaluation. *)

type t = private {
  arrival : arrival;
  jobs : int;  (** Total tenants to launch (>= 1). *)
  zipf : float;
      (** Zipf popularity exponent over the source list: source [k]
          (0-based) has weight [(k+1) ** -zipf].  [0.] is uniform. *)
  seed : int;  (** Root of the splittable RNG; fixes plan and picks. *)
}
(** A load descriptor.  Private: build with {!make} or {!of_string} so
    validation lives in one place. *)

val make : ?arrival:arrival -> ?jobs:int -> ?zipf:float -> ?seed:int -> unit -> t
(** Defaults: [Poisson 1.0], [jobs = 4], [zipf = 1.0], [seed = 0].
    Raises [Invalid_argument] on a non-positive rate, burst or job
    count, or a negative Zipf exponent. *)

val to_string : ?sources:string list -> t -> string
(** Canonical key=value form, e.g.
    ["rate=2,jobs=8,zipf=1,seed=7,sources=galgel:swim"] (plus
    [burst=...] for {!Bursty}).  Floats print with enough digits to
    round-trip bit-exactly through {!of_string}; [sources] entries may
    not contain [','] or [':']. *)

val of_string : string -> (t * string list, string) result
(** Parse the {!to_string} form (also the CLI [--open-loop] syntax).
    Keys: [rate] (float, required), [burst] (int, optional — presence
    selects {!Bursty}), [jobs], [zipf], [seed], and
    [sources=name:name:...] (benchmark names and/or trace-file paths,
    returned verbatim).  Unknown keys and invalid values are errors. *)

val plan : t -> nsources:int -> (float * int) array
(** Expand the descriptor into [jobs] tenants as [(start_time,
    source_index)] pairs, sorted by start time, each index in
    [0..nsources-1].  Deterministic in [(t, nsources)].  Raises
    [Invalid_argument] when [nsources <= 0]. *)

val merge :
  ?batch:int ->
  ?program:string ->
  (float * Trace.Stream.t) list ->
  Trace.Stream.t
(** [merge tenants] interleaves [(start_time, stream)] tenants into one
    stream (see the module preamble for the clock semantics).  The
    merged stream's [ndisks] is the maximum over tenants, [nblocks] the
    (lazily forced) maximum, and its tail think extends to the last
    tenant's end of run.  Consumes the component streams.  O(batch ×
    tenants) peak memory.  Raises [Invalid_argument] on an empty tenant
    list or a negative start time. *)
