exception Parse_error of string

module Soa = struct
  type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
  type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t = {
    mutable len : int;
    think : floats;
    tag : ints;
    disk : ints;
    block : ints;
    bytes : ints;
    nest : ints;
    iter : ints;
  }

  let tag_read = 0
  let tag_write = 1
  let tag_spin_down = 2
  let tag_spin_up = 3
  let tag_set_rpm = 4
  let is_io_tag tag = tag <= tag_write

  let create capacity =
    if capacity <= 0 then
      invalid_arg "Trace.Stream.Chunk.create: non-positive capacity";
    let ints n = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
    {
      len = 0;
      think = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout capacity;
      tag = ints capacity;
      disk = ints capacity;
      block = ints capacity;
      bytes = ints capacity;
      nest = ints capacity;
      iter = ints capacity;
    }

  let capacity c = Bigarray.Array1.dim c.tag
  let length c = c.len
  let clear c = c.len <- 0
  let think c i : float = Bigarray.Array1.get c.think i
  let tag c i = Bigarray.Array1.get c.tag i
  let disk c i = Bigarray.Array1.get c.disk i
  let block c i = Bigarray.Array1.get c.block i
  let bytes c i = Bigarray.Array1.get c.bytes i
  let nest c i = Bigarray.Array1.get c.nest i
  let iter c i = Bigarray.Array1.get c.iter i

  let set c i (e : Request.event) =
    let open Bigarray.Array1 in
    match e with
    | Request.Io io ->
        unsafe_set c.think i io.Request.think;
        unsafe_set c.tag i
          (match io.Request.kind with
          | Request.Read -> tag_read
          | Request.Write -> tag_write);
        unsafe_set c.disk i io.Request.disk;
        unsafe_set c.block i io.Request.block;
        unsafe_set c.bytes i io.Request.bytes;
        unsafe_set c.nest i io.Request.nest;
        unsafe_set c.iter i io.Request.iter
    | Request.Pm { think; directive } ->
        unsafe_set c.think i think;
        (match directive with
        | Request.Spin_down d ->
            unsafe_set c.tag i tag_spin_down;
            unsafe_set c.disk i d;
            unsafe_set c.block i 0
        | Request.Spin_up d ->
            unsafe_set c.tag i tag_spin_up;
            unsafe_set c.disk i d;
            unsafe_set c.block i 0
        | Request.Set_rpm { level; disk } ->
            unsafe_set c.tag i tag_set_rpm;
            unsafe_set c.disk i disk;
            unsafe_set c.block i level);
        unsafe_set c.bytes i 0;
        unsafe_set c.nest i 0;
        unsafe_set c.iter i 0

  let push c e =
    if c.len >= capacity c then
      invalid_arg "Trace.Stream.Chunk.push: chunk full";
    set c c.len e;
    c.len <- c.len + 1

  let get c i : Request.event =
    if i < 0 || i >= c.len then
      invalid_arg "Trace.Stream.Chunk.get: index out of bounds";
    let think = think c i in
    let tag = tag c i in
    if is_io_tag tag then
      Request.Io
        {
          Request.think;
          disk = disk c i;
          block = block c i;
          bytes = bytes c i;
          kind = (if tag = tag_read then Request.Read else Request.Write);
          nest = nest c i;
          iter = iter c i;
        }
    else if tag = tag_spin_down then
      Request.Pm { think; directive = Request.Spin_down (disk c i) }
    else if tag = tag_spin_up then
      Request.Pm { think; directive = Request.Spin_up (disk c i) }
    else
      Request.Pm
        { think; directive = Request.Set_rpm { level = block c i; disk = disk c i } }

  let of_events events =
    let c = create (max 1 (Array.length events)) in
    Array.iter (push c) events;
    c

  (* Zero-copy view of [len] rows starting at [pos]: the columns are
     [Bigarray.Array1.sub] windows sharing the parent's storage, so a
     chunked consumer of a memoized whole-trace column store pays no
     per-event transcription.  Mutating a view mutates the parent. *)
  let sub c pos len =
    let open Bigarray.Array1 in
    {
      len;
      think = sub c.think pos len;
      tag = sub c.tag pos len;
      disk = sub c.disk pos len;
      block = sub c.block pos len;
      bytes = sub c.bytes pos len;
      nest = sub c.nest pos len;
      iter = sub c.iter pos len;
    }

  let to_events c = Array.init c.len (get c)
end


type t = {
  program : string;
  ndisks : int;
  events : Request.event array;
  tail_think : float;
  soa_cache : Soa.t option Atomic.t;
      (* Whole-trace column store, built on first [Stream.of_trace]
         replay and shared by every later stream over this trace (chunks
         are zero-copy views).  Atomic so concurrent domains replaying
         the same trace publish a fully-built store or none. *)
}

(* Alias so [Stream]'s own [t] can still name the materialized type. *)
type trace = t

let soa_of_trace t =
  match Atomic.get t.soa_cache with
  | Some c -> c
  | None ->
      let c = Soa.of_events t.events in
      Atomic.set t.soa_cache (Some c);
      c

let check_event ~ndisks = function
  | Request.Io io ->
      if io.disk < 0 || io.disk >= ndisks then
        invalid_arg "Trace.make: request disk out of range"
  | Request.Pm _ -> ()

let make ?(tail_think = 0.0) ~program ~ndisks events =
  if ndisks <= 0 then invalid_arg "Trace.make: non-positive disk count";
  let events = Array.of_list events in
  Array.iter (check_event ~ndisks) events;
  { program; ndisks; events; tail_think; soa_cache = Atomic.make None }

let program t = t.program
let ndisks t = t.ndisks
let tail_think t = t.tail_think
let events t = Array.copy t.events
let event_count t = Array.length t.events

let io_count t =
  Array.fold_left
    (fun n -> function Request.Io _ -> n + 1 | Request.Pm _ -> n)
    0 t.events

let pm_count t = Array.length t.events - io_count t

let total_bytes t =
  Array.fold_left
    (fun n -> function Request.Io io -> n + io.bytes | Request.Pm _ -> n)
    0 t.events

let total_think t =
  Array.fold_left (fun acc e -> acc +. Request.think e) t.tail_think t.events

let io_events t =
  List.filter_map
    (function Request.Io io -> Some io | Request.Pm _ -> None)
    (Array.to_list t.events)

let disks_used t =
  List.sort_uniq compare (List.map (fun (io : Request.io) -> io.disk) (io_events t))

let map_events f t =
  {
    t with
    events = Array.of_list (List.filter_map f (Array.to_list t.events));
    soa_cache = Atomic.make None;
  }

let without_pm t =
  let pending = ref 0.0 in
  let events =
    List.filter_map
      (function
        | Request.Pm { think; _ } ->
            pending := !pending +. think;
            None
        | Request.Io io ->
            let think = io.think +. !pending in
            pending := 0.0;
            Some (Request.Io { io with think }))
      (Array.to_list t.events)
  in
  {
    t with
    events = Array.of_list events;
    tail_think = t.tail_think +. !pending;
    soa_cache = Atomic.make None;
  }

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# program=%s ndisks=%d tail=%.9f\n" t.program t.ndisks
        t.tail_think;
      Array.iter (fun e -> output_string oc (Request.to_line e ^ "\n")) t.events)

(* Highest IO block number + 1 over a chunk, folded from [acc] — the
   stripe-unit address space fault plans are drawn over.  Must match
   what a whole-array scan of the same events yields so fault-injected
   streaming replays stay byte-identical to materialized ones. *)
let max_nblocks_chunk acc chunk =
  Array.fold_left
    (fun acc -> function
      | Request.Io io -> max acc (io.Request.block + 1)
      | Request.Pm _ -> acc)
    acc chunk

module Stream = struct
  (* --- Structure-of-arrays chunks ---

     The replay hot loop reads events by index out of parallel Bigarray
     columns: a [float64] column for think times (unboxed on read) and
     native-[int] columns for everything else.  One tag per event encodes
     the constructor, so the loop never touches a [Request.event] block.
     [disk] doubles as the directive's disk and [block] as the
     [Set_rpm] level — directives use none of the IO-only columns. *)
  module Chunk = Soa

  type nonrec t = {
    program : string;
    ndisks : int;
    batch : int;
    nblocks : int Lazy.t;
    mutable tail : float option;
    mutable pull : unit -> Request.event array option;
    mutable exhausted : bool;
    (* SoA fast lane: producers that can produce column chunks natively
       (a view of a memoized store, or a parse loop filling the reused
       [scratch]) install [produce_soa]; others fall back to
       transcribing [next]'s record chunks into [scratch]. *)
    mutable produce_soa : (unit -> Chunk.t option) option;
    mutable scratch : Chunk.t option;
  }

  let default_batch = 4096
  let program s = s.program
  let ndisks s = s.ndisks
  let batch s = s.batch
  let nblocks s = Lazy.force s.nblocks

  let tail_think s =
    match s.tail with
    | Some v -> v
    | None ->
        invalid_arg
          "Trace.Stream.tail_think: unknown until the stream is exhausted"

  let make ?(batch = default_batch) ?tail ~nblocks ~program ~ndisks pull =
    if batch <= 0 then invalid_arg "Trace.Stream.make: non-positive batch";
    if ndisks <= 0 then
      invalid_arg "Trace.Stream.make: non-positive disk count";
    {
      program;
      ndisks;
      batch;
      nblocks;
      tail;
      pull;
      exhausted = false;
      produce_soa = None;
      scratch = None;
    }

  let rec next s =
    if s.exhausted then None
    else
      match s.pull () with
      | None ->
          s.exhausted <- true;
          None
      | Some chunk when Array.length chunk = 0 -> next s
      | some -> some

  let iter f s =
    let rec loop () =
      match next s with
      | Some chunk ->
          Array.iter f chunk;
          loop ()
      | None -> ()
    in
    loop ()

  (* Reused SoA buffer: one chunk live per stream, grown only if a raw
     pull hands back a chunk larger than [batch]. *)
  let soa_scratch s ~capacity =
    match s.scratch with
    | Some c when Chunk.capacity c >= capacity ->
        Chunk.clear c;
        c
    | _ ->
        let c = Chunk.create capacity in
        s.scratch <- Some c;
        c

  let next_soa s =
    if s.exhausted then None
    else
      match s.produce_soa with
      | Some produce -> (
          match produce () with
          | Some c when Chunk.length c > 0 -> Some c
          | Some _ | None ->
              s.exhausted <- true;
              None)
      | None -> (
          (* Transcription fallback (coroutine producers, raw [make]
             pulls): one column-store copy per chunk, amortized over
             [batch] events. *)
          match next s with
          | None -> None
          | Some arr ->
              let c =
                soa_scratch s ~capacity:(max s.batch (Array.length arr))
              in
              Array.iter (Chunk.push c) arr;
              Some c)

  let of_trace ?(batch = default_batch) (tr : trace) =
    let n = Array.length tr.events in
    let pos = ref 0 in
    let s =
      make ~batch ~tail:tr.tail_think
        ~nblocks:(lazy (max_nblocks_chunk 0 tr.events))
        ~program:tr.program ~ndisks:tr.ndisks
        (fun () ->
          if !pos >= n then None
          else begin
            let len = min batch (n - !pos) in
            let chunk = Array.sub tr.events !pos len in
            pos := !pos + len;
            Some chunk
          end)
    in
    (* Native SoA producer sharing the cursor with the record pull, so
       mixed [next]/[next_soa] consumers see each event exactly once.
       Chunks are zero-copy views of the trace's memoized column store:
       the AoS-to-SoA transcription runs once per trace, not once per
       replay. *)
    s.produce_soa <-
      Some
        (fun () ->
          if !pos >= n then None
          else begin
            let full = soa_of_trace tr in
            let len = min batch (n - !pos) in
            let p = !pos in
            pos := p + len;
            Some (Chunk.sub full p len)
          end);
    s

  (* --- Push-to-pull inversion via effects ---

     A producer written as a plain [emit]-calling loop (the trace
     generator's loop-nest walk) is suspended each time a full chunk is
     ready and resumed by the consumer's next [pull] — so generation and
     replay interleave with only one chunk live at a time. *)

  type _ Effect.t += Yield : Request.event array -> unit Effect.t

  let of_push ?(batch = default_batch) ?tail ~nblocks ~program ~ndisks produce
      =
    if batch <= 0 then invalid_arg "Trace.Stream.of_push: non-positive batch";
    let stream =
      make ~batch ?tail ~nblocks ~program ~ndisks (fun () -> None)
    in
    (* Chunk buffer shared between suspensions of the producer. *)
    let dummy = Request.Pm { think = 0.0; directive = Request.Spin_up 0 } in
    let buf = Array.make batch dummy in
    let fill = ref 0 in
    let emit e =
      buf.(!fill) <- e;
      incr fill;
      if !fill = batch then begin
        fill := 0;
        Effect.perform (Yield (Array.copy buf))
      end
    in
    let resume = ref (fun () -> None) in
    let open Effect.Deep in
    let start () =
      match_with
        (fun () ->
          let tail = produce ~emit in
          if !fill > 0 then begin
            let chunk = Array.sub buf 0 !fill in
            fill := 0;
            Effect.perform (Yield chunk)
          end;
          stream.tail <- Some tail;
          None)
        ()
        {
          retc = Fun.id;
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Yield chunk ->
                  Some
                    (fun (k : (a, Request.event array option) continuation) ->
                      let k : (unit, Request.event array option) continuation
                          =
                        k
                      in
                      resume := (fun () -> continue k ());
                      Some chunk)
              | _ -> None);
        }
    in
    resume := start;
    stream.pull <- (fun () -> !resume ());
    stream

  (* --- Incremental parse of the line-oriented trace format --- *)

  let parse_error path lineno msg =
    raise (Parse_error (Printf.sprintf "%s:%d: %s" path lineno msg))

  let read_header path ic =
    let header =
      try input_line ic with End_of_file -> parse_error path 1 "empty file"
    in
    try
      Scanf.sscanf header "# program=%s@ ndisks=%d tail=%f" (fun p n t ->
          (p, n, t))
    with Scanf.Scan_failure _ | End_of_file | Failure _ ->
      parse_error path 1
        "malformed header (expected '# program=NAME ndisks=N tail=SECONDS')"

  let parse_line path ~ndisks ~lineno line =
    let event =
      try Request.of_line line with Failure msg -> parse_error path lineno msg
    in
    (match event with
    | Request.Io io when io.disk < 0 || io.disk >= ndisks ->
        parse_error path lineno
          (Printf.sprintf "request disk %d out of range (ndisks=%d)" io.disk
             ndisks)
    | _ -> ());
    event

  (* Second pass over the file for the fault layer's block-address
     space; forced only when a fault spec is active. *)
  let scan_nblocks path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let ndisks =
          let _, ndisks, _ = read_header path ic in
          ndisks
        in
        let acc = ref 0 in
        let lineno = ref 1 in
        (try
           while true do
             let line = input_line ic in
             incr lineno;
             if String.trim line <> "" then
               match parse_line path ~ndisks ~lineno:!lineno line with
               | Request.Io io -> acc := max !acc (io.Request.block + 1)
               | Request.Pm _ -> ()
           done
         with End_of_file -> ());
        !acc)

  let of_file ?(batch = default_batch) path =
    let ic = open_in path in
    let program, ndisks, tail =
      try read_header path ic
      with e ->
        close_in_noerr ic;
        raise e
    in
    if ndisks <= 0 then begin
      close_in_noerr ic;
      parse_error path 1 "non-positive disk count"
    end;
    let lineno = ref 1 in
    let closed = ref false in
    let finish () =
      if not !closed then begin
        closed := true;
        close_in ic
      end
    in
    (* One parse loop shared by both lanes: [emit] receives up to [batch]
       events, so the record pull and the SoA fill see the exact same
       event sequence (and the same [Parse_error]s, file positions,
       channel close discipline). *)
    let read_batch emit =
      let count = ref 0 in
      (try
         while !count < batch do
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then begin
             let event =
               try parse_line path ~ndisks ~lineno:!lineno line
               with e ->
                 finish ();
                 raise e
             in
             emit event;
             incr count
           end
         done
       with End_of_file -> finish ());
      !count
    in
    let s =
      make ~batch ~tail
        ~nblocks:(lazy (scan_nblocks path))
        ~program ~ndisks
        (fun () ->
          if !closed then None
          else begin
            let rev = ref [] in
            let count = read_batch (fun e -> rev := e :: !rev) in
            if count = 0 then begin
              finish ();
              None
            end
            else Some (Array.of_list (List.rev !rev))
          end)
    in
    s.produce_soa <-
      Some
        (fun () ->
          if !closed then None
          else begin
            let c = soa_scratch s ~capacity:s.batch in
            let count = read_batch (Chunk.push c) in
            if count = 0 then begin
              finish ();
              None
            end
            else Some c
          end);
    s

  let to_trace s =
    let chunks = ref [] in
    let rec loop () =
      match next s with
      | Some chunk ->
          chunks := chunk :: !chunks;
          loop ()
      | None -> ()
    in
    loop ();
    let events = Array.concat (List.rev !chunks) in
    Array.iter (check_event ~ndisks:s.ndisks) events;
    {
      program = s.program;
      ndisks = s.ndisks;
      events;
      tail_think = tail_think s;
      soa_cache = Atomic.make None;
    }
end

let load path = Stream.to_trace (Stream.of_file path)
