exception Parse_error of string

type t = {
  program : string;
  ndisks : int;
  events : Request.event array;
  tail_think : float;
}

(* Alias so [Stream]'s own [t] can still name the materialized type. *)
type trace = t

let check_event ~ndisks = function
  | Request.Io io ->
      if io.disk < 0 || io.disk >= ndisks then
        invalid_arg "Trace.make: request disk out of range"
  | Request.Pm _ -> ()

let make ?(tail_think = 0.0) ~program ~ndisks events =
  if ndisks <= 0 then invalid_arg "Trace.make: non-positive disk count";
  let events = Array.of_list events in
  Array.iter (check_event ~ndisks) events;
  { program; ndisks; events; tail_think }

let program t = t.program
let ndisks t = t.ndisks
let tail_think t = t.tail_think
let events t = Array.copy t.events
let event_count t = Array.length t.events

let io_count t =
  Array.fold_left
    (fun n -> function Request.Io _ -> n + 1 | Request.Pm _ -> n)
    0 t.events

let pm_count t = Array.length t.events - io_count t

let total_bytes t =
  Array.fold_left
    (fun n -> function Request.Io io -> n + io.bytes | Request.Pm _ -> n)
    0 t.events

let total_think t =
  Array.fold_left (fun acc e -> acc +. Request.think e) t.tail_think t.events

let io_events t =
  List.filter_map
    (function Request.Io io -> Some io | Request.Pm _ -> None)
    (Array.to_list t.events)

let disks_used t =
  List.sort_uniq compare (List.map (fun (io : Request.io) -> io.disk) (io_events t))

let map_events f t =
  {
    t with
    events = Array.of_list (List.filter_map f (Array.to_list t.events));
  }

let without_pm t =
  let pending = ref 0.0 in
  let events =
    List.filter_map
      (function
        | Request.Pm { think; _ } ->
            pending := !pending +. think;
            None
        | Request.Io io ->
            let think = io.think +. !pending in
            pending := 0.0;
            Some (Request.Io { io with think }))
      (Array.to_list t.events)
  in
  {
    t with
    events = Array.of_list events;
    tail_think = t.tail_think +. !pending;
  }

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# program=%s ndisks=%d tail=%.9f\n" t.program t.ndisks
        t.tail_think;
      Array.iter (fun e -> output_string oc (Request.to_line e ^ "\n")) t.events)

(* Highest IO block number + 1 over a chunk, folded from [acc] — the
   stripe-unit address space fault plans are drawn over.  Must match
   what a whole-array scan of the same events yields so fault-injected
   streaming replays stay byte-identical to materialized ones. *)
let max_nblocks_chunk acc chunk =
  Array.fold_left
    (fun acc -> function
      | Request.Io io -> max acc (io.Request.block + 1)
      | Request.Pm _ -> acc)
    acc chunk

module Stream = struct
  type nonrec t = {
    program : string;
    ndisks : int;
    batch : int;
    nblocks : int Lazy.t;
    mutable tail : float option;
    mutable pull : unit -> Request.event array option;
    mutable exhausted : bool;
  }

  let default_batch = 4096
  let program s = s.program
  let ndisks s = s.ndisks
  let batch s = s.batch
  let nblocks s = Lazy.force s.nblocks

  let tail_think s =
    match s.tail with
    | Some v -> v
    | None ->
        invalid_arg
          "Trace.Stream.tail_think: unknown until the stream is exhausted"

  let make ?(batch = default_batch) ?tail ~nblocks ~program ~ndisks pull =
    if batch <= 0 then invalid_arg "Trace.Stream.make: non-positive batch";
    if ndisks <= 0 then
      invalid_arg "Trace.Stream.make: non-positive disk count";
    { program; ndisks; batch; nblocks; tail; pull; exhausted = false }

  let rec next s =
    if s.exhausted then None
    else
      match s.pull () with
      | None ->
          s.exhausted <- true;
          None
      | Some chunk when Array.length chunk = 0 -> next s
      | some -> some

  let iter f s =
    let rec loop () =
      match next s with
      | Some chunk ->
          Array.iter f chunk;
          loop ()
      | None -> ()
    in
    loop ()

  let of_trace ?(batch = default_batch) (tr : trace) =
    let n = Array.length tr.events in
    let pos = ref 0 in
    make ~batch ~tail:tr.tail_think
      ~nblocks:(lazy (max_nblocks_chunk 0 tr.events))
      ~program:tr.program ~ndisks:tr.ndisks
      (fun () ->
        if !pos >= n then None
        else begin
          let len = min batch (n - !pos) in
          let chunk = Array.sub tr.events !pos len in
          pos := !pos + len;
          Some chunk
        end)

  (* --- Push-to-pull inversion via effects ---

     A producer written as a plain [emit]-calling loop (the trace
     generator's loop-nest walk) is suspended each time a full chunk is
     ready and resumed by the consumer's next [pull] — so generation and
     replay interleave with only one chunk live at a time. *)

  type _ Effect.t += Yield : Request.event array -> unit Effect.t

  let of_push ?(batch = default_batch) ?tail ~nblocks ~program ~ndisks produce
      =
    if batch <= 0 then invalid_arg "Trace.Stream.of_push: non-positive batch";
    let stream =
      make ~batch ?tail ~nblocks ~program ~ndisks (fun () -> None)
    in
    (* Chunk buffer shared between suspensions of the producer. *)
    let dummy = Request.Pm { think = 0.0; directive = Request.Spin_up 0 } in
    let buf = Array.make batch dummy in
    let fill = ref 0 in
    let emit e =
      buf.(!fill) <- e;
      incr fill;
      if !fill = batch then begin
        fill := 0;
        Effect.perform (Yield (Array.copy buf))
      end
    in
    let resume = ref (fun () -> None) in
    let open Effect.Deep in
    let start () =
      match_with
        (fun () ->
          let tail = produce ~emit in
          if !fill > 0 then begin
            let chunk = Array.sub buf 0 !fill in
            fill := 0;
            Effect.perform (Yield chunk)
          end;
          stream.tail <- Some tail;
          None)
        ()
        {
          retc = Fun.id;
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Yield chunk ->
                  Some
                    (fun (k : (a, Request.event array option) continuation) ->
                      let k : (unit, Request.event array option) continuation
                          =
                        k
                      in
                      resume := (fun () -> continue k ());
                      Some chunk)
              | _ -> None);
        }
    in
    resume := start;
    stream.pull <- (fun () -> !resume ());
    stream

  (* --- Incremental parse of the line-oriented trace format --- *)

  let parse_error path lineno msg =
    raise (Parse_error (Printf.sprintf "%s:%d: %s" path lineno msg))

  let read_header path ic =
    let header =
      try input_line ic with End_of_file -> parse_error path 1 "empty file"
    in
    try
      Scanf.sscanf header "# program=%s@ ndisks=%d tail=%f" (fun p n t ->
          (p, n, t))
    with Scanf.Scan_failure _ | End_of_file | Failure _ ->
      parse_error path 1
        "malformed header (expected '# program=NAME ndisks=N tail=SECONDS')"

  let parse_line path ~ndisks ~lineno line =
    let event =
      try Request.of_line line with Failure msg -> parse_error path lineno msg
    in
    (match event with
    | Request.Io io when io.disk < 0 || io.disk >= ndisks ->
        parse_error path lineno
          (Printf.sprintf "request disk %d out of range (ndisks=%d)" io.disk
             ndisks)
    | _ -> ());
    event

  (* Second pass over the file for the fault layer's block-address
     space; forced only when a fault spec is active. *)
  let scan_nblocks path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let ndisks =
          let _, ndisks, _ = read_header path ic in
          ndisks
        in
        let acc = ref 0 in
        let lineno = ref 1 in
        (try
           while true do
             let line = input_line ic in
             incr lineno;
             if String.trim line <> "" then
               match parse_line path ~ndisks ~lineno:!lineno line with
               | Request.Io io -> acc := max !acc (io.Request.block + 1)
               | Request.Pm _ -> ()
           done
         with End_of_file -> ());
        !acc)

  let of_file ?(batch = default_batch) path =
    let ic = open_in path in
    let program, ndisks, tail =
      try read_header path ic
      with e ->
        close_in_noerr ic;
        raise e
    in
    if ndisks <= 0 then begin
      close_in_noerr ic;
      parse_error path 1 "non-positive disk count"
    end;
    let lineno = ref 1 in
    let closed = ref false in
    let finish () =
      if not !closed then begin
        closed := true;
        close_in ic
      end
    in
    make ~batch ~tail
      ~nblocks:(lazy (scan_nblocks path))
      ~program ~ndisks
      (fun () ->
        if !closed then None
        else begin
          let rev = ref [] in
          let count = ref 0 in
          (try
             while !count < batch do
               let line = input_line ic in
               incr lineno;
               if String.trim line <> "" then begin
                 let event =
                   try parse_line path ~ndisks ~lineno:!lineno line
                   with e ->
                     finish ();
                     raise e
                 in
                 rev := event :: !rev;
                 incr count
               end
             done
           with End_of_file -> finish ());
          if !count = 0 then begin
            finish ();
            None
          end
          else Some (Array.of_list (List.rev !rev))
        end)

  let to_trace s =
    let chunks = ref [] in
    let rec loop () =
      match next s with
      | Some chunk ->
          chunks := chunk :: !chunks;
          loop ()
      | None -> ()
    in
    loop ();
    let events = Array.concat (List.rev !chunks) in
    Array.iter (check_event ~ndisks:s.ndisks) events;
    {
      program = s.program;
      ndisks = s.ndisks;
      events;
      tail_think = tail_think s;
    }
end

let load path = Stream.to_trace (Stream.of_file path)
