(** Striping descriptors.

    The paper specifies the disk layout of an array (stored in one file)
    as the 3-tuple [(starting disk, stripe factor, stripe size)] — the
    same semantics as PVFS's [base]/[pcount]/[ssize].  Stripe units are
    dealt round-robin over [stripe_factor] consecutive disks starting at
    [start_disk], wrapping modulo the total number of disks in the
    subsystem. *)

type t = {
  start_disk : int;  (** First I/O node used by this file. *)
  stripe_factor : int;  (** Number of disks the file is striped over. *)
  stripe_size : int;  (** Stripe unit in bytes; paper default 64 KB. *)
}

val make : start_disk:int -> stripe_factor:int -> stripe_size:int -> t
(** Validates positivity of the factor and size and a non-negative start
    disk. *)

val default : t
(** Table 1 defaults: [(0, 8, 64 KB)]. *)

val unit_of_offset : t -> int -> int
(** Stripe-unit index of a byte offset within the file. *)

val disk_of_unit : t -> ndisks:int -> int -> int
(** Disk holding a given stripe unit.  Requires
    [stripe_factor <= ndisks] and [start_disk < ndisks]. *)

val disk_of_offset : t -> ndisks:int -> int -> int

val disks_used : t -> ndisks:int -> file_bytes:int -> int list
(** Sorted list of disks that hold at least one unit of a file of the
    given size. *)

val units_in_file : t -> file_bytes:int -> int
(** Number of stripe units, rounding the tail up. *)

val region_disk_spread : t -> ndisks:int -> lo:int -> hi:int -> (int * int) list
(** [region_disk_spread t ~ndisks ~lo ~hi] is how a contiguous run of
    stripe units [lo..hi] (inclusive) spreads over the array: a sorted
    [(disk, unit count)] list covering exactly [hi - lo + 1] units.
    Because units are dealt round-robin, a contiguous bad region of a
    striped file damages up to [stripe_factor] disks at once — this is
    the geometry the fault-injection layer reports.  Empty when
    [hi < lo]; requires [stripe_factor <= ndisks] and
    [start_disk < ndisks] like {!disk_of_unit}. *)

val pp : Format.formatter -> t -> unit
(** Prints the paper's 3-tuple form, e.g. ["(0, 8, 64KB)"]. *)
