type t = { start_disk : int; stripe_factor : int; stripe_size : int }

let make ~start_disk ~stripe_factor ~stripe_size =
  if start_disk < 0 then invalid_arg "Striping.make: negative start disk";
  if stripe_factor <= 0 then
    invalid_arg "Striping.make: non-positive stripe factor";
  if stripe_size <= 0 then invalid_arg "Striping.make: non-positive stripe size";
  { start_disk; stripe_factor; stripe_size }

let default =
  make ~start_disk:0 ~stripe_factor:8 ~stripe_size:(Dpm_util.Units.kib 64)

let unit_of_offset t off =
  if off < 0 then invalid_arg "Striping.unit_of_offset: negative offset";
  off / t.stripe_size

let disk_of_unit t ~ndisks u =
  if t.stripe_factor > ndisks then
    invalid_arg "Striping.disk_of_unit: stripe factor exceeds disk count";
  if t.start_disk >= ndisks then
    invalid_arg "Striping.disk_of_unit: start disk out of range";
  (t.start_disk + (u mod t.stripe_factor)) mod ndisks

let disk_of_offset t ~ndisks off = disk_of_unit t ~ndisks (unit_of_offset t off)

let units_in_file t ~file_bytes =
  if file_bytes <= 0 then 0
  else ((file_bytes - 1) / t.stripe_size) + 1

let disks_used t ~ndisks ~file_bytes =
  let units = units_in_file t ~file_bytes in
  let n = min units t.stripe_factor in
  List.sort_uniq compare
    (List.init n (fun u -> disk_of_unit t ~ndisks u))

let region_disk_spread t ~ndisks ~lo ~hi =
  if hi < lo then []
  else begin
    (* [disk_of_unit] depends only on [u mod stripe_factor], so count the
       units of each residue class inside [lo, hi] and fold the classes
       onto their disks. *)
    let counts = Array.make ndisks 0 in
    let last = min hi (lo + t.stripe_factor - 1) in
    for u = lo to last do
      let d = disk_of_unit t ~ndisks u in
      counts.(d) <- counts.(d) + 1 + ((hi - u) / t.stripe_factor)
    done;
    let spread = ref [] in
    for d = ndisks - 1 downto 0 do
      if counts.(d) > 0 then spread := (d, counts.(d)) :: !spread
    done;
    !spread
  end

let pp ppf t =
  Format.fprintf ppf "(%d, %d, %a)" t.start_disk t.stripe_factor
    Dpm_util.Units.pp_bytes t.stripe_size
