(** Per-disk power state machine with lazy energy integration.

    A disk is in one of five phases: spinning and ready at some RPM level,
    modulating between two levels, spinning down, in standby, or spinning
    back up.  Every operation first integrates the energy drawn since the
    previous operation (at the phase's power), then applies the state
    change, so total energy is exact regardless of event spacing.

    Operations requested while a transition is in flight chain after it —
    e.g. a [set_level] issued mid-modulation takes effect when the current
    modulation finishes, and a request arriving in standby triggers the
    automatic spin-up the paper describes ("the disk is automatically spun
    up when an access comes"). *)

type phase =
  | Ready of int  (** Spinning at an RPM level, able to serve. *)
  | Changing of { from_level : int; to_level : int; finish : float }
  | Spinning_down of { finish : float }
  | Standby
  | Spinning_up of { finish : float }

type t = {
  specs : Dpm_disk.Specs.t;
  disk_id : int;
  recorder : Timeline.sink option;
  retain_busy : bool;
  mutable phase : phase;
  hot : float array;
      (** The three per-request mutable floats, indexed by
          {!ix_last_update} (energy integrated up to here),
          {!ix_total_energy} and {!ix_idle_start}.  They live in a flat
          float array rather than as record fields because a float
          field of a mixed record boxes on every write, and these are
          written per served request on the replay fast path. *)
  mutable busy_rev : (float * float) list;
  mutable served : int;
  mutable transitions : int;
  mutable spin_downs : int;
  residency : float array;
  mutable standby_time : float;
  mutable trans_time : float;
  mutable failed : bool;
  idle_power : float array;
      (** Per-level {!Dpm_disk.Power.idle}, precomputed at {!create}
          through the very same calls the general path makes per
          request — table lookups are bit-identical to recomputing. *)
  active_power : float array;  (** Per-level {!Dpm_disk.Power.active}. *)
  svc_base : float array;
      (** Per-level [seek_time +. rotation_time] — the byte-independent
          part of {!Dpm_disk.Service.request_time}. *)
  svc_denom : float array;
      (** Per-level {!Dpm_disk.Service.transfer_denom}. *)
}
(** Exposed concretely so the specialized replay core ({!Fastpath}) can
    inline the [Ready]-phase service arithmetic with no per-event
    boxing.  Outside this library, treat every field as private: read
    through the accessors below and mutate only through the operations
    — direct writes bypass the lazy energy integration and corrupt the
    accounting. *)

val ix_last_update : int
val ix_total_energy : int
val ix_idle_start : int

val ix_svc_bytes : int
(** With {!ix_svc_level} and {!ix_svc_quot}: a one-entry cache of the
    last transfer-time quotient [bytes /. svc_denom.(level)], keyed by
    its operands.  A hit reproduces the division's bits exactly, so
    users of the cache stay byte-identical to recomputing; maintained
    by the fast replay core ({!Fastpath}), ignored elsewhere. *)

val ix_svc_level : int
val ix_svc_quot : int

val create :
  ?recorder:Timeline.sink ->
  ?retain_busy:bool ->
  Dpm_disk.Specs.t ->
  id:int ->
  t
(** A disk starts ready at full speed at time 0.  With a [recorder],
    every charged residency span, service interval and aborted spin-up
    is also emitted as a {!Timeline} event; recording is strictly
    observational and never alters the accounting.  [retain_busy]
    (default true) keeps the per-request busy-interval list behind
    {!busy_intervals}; turning it off bounds a replay's memory (see
    {!Dpm_sim.Config}) at the cost of {!busy_intervals}/{!busy_time}
    returning empty. *)

val id : t -> int
val phase : t -> phase

val level : t -> int
(** Current level when [Ready]; the target level when [Changing]; 0 when
    in or entering standby; top level when spinning up. *)

val idle_since : t -> float
(** Start of the current idle period (last request completion, or 0). *)

val advance : t -> float -> unit
(** Integrate energy up to the given time, resolving any transitions that
    complete before it.  Monotone: earlier times are no-ops. *)

val set_level : t -> now:float -> int -> unit
(** Begin modulating toward a level (DRPM).  No-op if already there;
    chains after an in-flight transition; ignored in standby (a standby
    disk has no spindle to modulate). *)

val spin_down : t -> now:float -> unit
(** Begin spinning down to standby (TPM).  No-op if already in or heading
    to standby; chains after an in-flight spin-up or modulation. *)

val spin_up : t -> now:float -> unit
(** Begin spinning up from standby.  No-op if ready or already rising;
    chains after an in-flight spin-down. *)

val serve : t -> now:float -> bytes:int -> float
(** Serve one request arriving at [now]: waits out any transition (a
    standby disk pays the full spin-up), serves at the then-current level,
    charges active energy, records the busy interval, and returns the
    completion time. *)

val occupy : t -> now:float -> seconds:float -> float
(** Hold the disk busy for a fixed duration at active power (resolving
    any transition first, like {!serve}) without counting a served
    request — the cost of a bad-sector remap under fault injection.
    Returns the time the disk frees up; a non-positive duration is a
    no-op. *)

val abort_spin_up : t -> now:float -> fraction:float -> float
(** A spin-up attempt that sticks: from [Standby], charges
    [fraction × e_spin_up] ({!Dpm_disk.Power.aborted_spin_up_energy}) over
    [fraction × t_spin_up] seconds, leaves the disk in [Standby], and
    returns when the failed attempt settles.  In any other phase it is a
    no-op returning [now]. *)

(** {2 Hard failure} *)

val fail : t -> at:float -> unit
(** Take the disk offline: integrates energy up to [at], then freezes the
    state machine — every later operation ({!advance}, {!serve},
    {!set_level}, {!spin_down}, {!spin_up}, {!occupy}) becomes a no-op,
    so a dead disk stops drawing power and serving requests.  The replay
    engine redirects its load to the surviving disks. *)

val is_failed : t -> bool

val record : t -> at:float -> Timeline.mark -> unit
(** Append a point event (fault signature, applied directive) to this
    disk's timeline, if any.  No-op without a recorder. *)

val finalize : t -> at:float -> unit
(** Integrate up to the end of the run. *)

(** {2 Statistics} *)

val energy : t -> float
val busy_intervals : t -> (float * float) list
(** Sorted service intervals. *)

val busy_time : t -> float
val requests_served : t -> int
val transition_count : t -> int
(** RPM modulations begun. *)

val spin_down_count : t -> int
val level_residency : t -> float array
(** Seconds spent ready at each level (index = level). *)

val standby_residency : t -> float

val transition_residency : t -> float
(** Seconds spent modulating, spinning down or spinning up. *)
