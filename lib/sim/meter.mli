(** Software-defined power meter: streaming per-disk power samples at a
    fixed resolution, derived online from the {!Timeline} event sink.

    The simulator's native unit of power accounting is the {e event} — a
    residency span, a service interval, an aborted spin-up — each worth
    a lump of energy under the {!Dpm_disk.Power} tables.  A [Meter]
    re-expresses that event stream as what a physical power meter would
    show: one sample per disk per resolution window, where a sample's
    [watts] is the {e mean} power over its window (window energy divided
    by window width).  Mean-power sampling makes the meter's rectangular
    (= trapezoidal, the power is piecewise constant) integral telescope
    back to the exact per-event energy sum, so

    {[ integral meter  =  Timeline.reintegrate log  =  Result.energy ]}

    to floating-point noise — the invariant [test/test_meter.ml] pins at
    ≤ 1e-6 relative across schemes, heterogeneous fleets and faults.

    Sampling semantics at state boundaries: an event spanning
    [[t0, t1)] deposits energy into every window it overlaps, pro-rated
    by overlap (constant power within the event).  Zero-width spans
    carry no energy and are skipped (the flash tier's instant
    transitions would otherwise multiply an infinite power by zero
    width); a zero-width event that {e does} carry energy (an aborted
    spin-up on an instant-transition model) deposits its whole energy
    into the window containing [t0].  Analytic (oracle) logs under
    fault injection may back-extend a burst before time 0; the pre-zero
    share of such an event lumps into window 0, conserving energy.
    Windows are [[kΔ, (k+1)Δ)] with
    the last one truncated at the {!horizon} — the latest event end
    seen, which may exceed [sim_end] when a transition is still in
    flight at application completion (the engine charges it whole).

    Metering is strictly observational: it consumes the sink's
    {!Timeline.on_emit} tap and never touches the engine, so results are
    byte-identical with the meter on or off and the fast replay core
    stays engaged. *)

type sample = {
  disk : int;
  index : int;  (** Window number: the window covers [[iΔ, (i+1)Δ)]. *)
  t0 : float;
  t1 : float;  (** Window end (truncated to {!horizon} for the last). *)
  watts : float;  (** Mean power over [[t0, t1)]. *)
}

type t

val default_resolution : float
(** 0.1 s. *)

val create :
  ?resolution:float ->
  ?specs:Dpm_disk.Specs.t ->
  ?fleet:Dpm_disk.Specs.t array ->
  ?capacity:int ->
  ?on_sample:(sample -> unit) ->
  unit ->
  t
(** A fresh meter.  [resolution] is the window width Δ in seconds
    (default {!default_resolution}; raises [Invalid_argument] unless
    positive and finite).  [specs]/[fleet] resolve each disk's power
    tables exactly like {!Timeline.reintegrate} (explicit fleet
    round-robin by disk id, else homogeneous [specs], default
    {!Config.default} — pass the run's own config values; sinks are
    labelled only at end of run, too late for online sampling).
    [capacity] bounds the retained samples per meter ({!Dpm_util.Ring}
    semantics: newest kept, {!dropped} counts evictions; the integral
    and peak/mean statistics are exact regardless).  [on_sample] is
    called live as each window closes — per disk in window order,
    interleaved across disks. *)

val attach : t -> Timeline.sink -> unit
(** Subscribe to a sink: every event the replay emits is {!feed} into
    the meter, online.  One meter per sink per replay, like the sink
    itself. *)

val feed : t -> Timeline.event -> unit
(** Consume one event.  Per-disk event streams must be chronological in
    [t0] (what engine and oracle logs guarantee); windows close — and
    [on_sample] fires — as soon as no later event can overlap them.
    Raises [Invalid_argument] after {!finish}. *)

val finish : t -> unit
(** Close all remaining windows (every lane is padded with zero-power
    samples out to the common {!horizon}, so lanes stay rectangular).
    Idempotent; reading functions below may be called before [finish],
    but only cover the windows closed so far. *)

val of_timeline :
  ?resolution:float ->
  ?specs:Dpm_disk.Specs.t ->
  ?fleet:Dpm_disk.Specs.t array ->
  ?capacity:int ->
  Timeline.t ->
  t
(** Offline metering of a frozen log: feed every event, then
    {!finish}.  Unlike {!create}, the default model resolution uses the
    log's own fleet label ({!Timeline.resolve_models}). *)

(** {1 Reading the meter} *)

val resolution : t -> float
val ndisks : t -> int

val sim_end : t -> float
(** From the fed [Sim_end] event (0 before one arrives). *)

val horizon : t -> float
(** Latest event end fed so far ([max sim_end] once finished). *)

val nwindows : t -> int
(** Windows per lane once finished: [ceil (horizon / resolution)]. *)

val samples : t -> sample list
(** Retained samples, disk-major then window order ([dropped] oldest
    evicted first under a [capacity] bound). *)

val lane : t -> int -> sample list
(** One disk's retained samples, window order. *)

val dropped : t -> int
(** Samples evicted by the [capacity] bound (0 when unbounded). *)

val integral : t -> Timeline.energy
(** Per-disk and total [Σ watts × width] over every {e emitted} sample
    (dropped ones included — the sum is accumulated as windows close).
    After {!finish} this matches [Timeline.reintegrate] on the same
    events, hence [Result.energy], to ≤ 1e-6 relative. *)

val peak_power : t -> float
(** Max over closed windows of the fleet-wide power sum (W). *)

val mean_power : t -> float
(** Total energy over the horizon so far (W); 0 on an empty meter. *)

val strip : ?width:int -> t -> string
(** Per-disk power strip: one fixed-width lane per disk over
    [[0, horizon]], each column shaded ([ .:-=+*#%@]) by that bucket's
    mean power relative to the fleet's peak per-disk sample. *)

val summary : t -> string
(** Human-readable section: resolution/windows header, the power strip,
    a per-disk peak/mean/energy table and the fleet peak/mean. *)

(** {1 Export — schema [dpm-meter/1]} *)

val schema_version : string
(** ["dpm-meter/1"]. *)

(** One meter's wire form: a meta header plus its retained samples. *)
type section = {
  m_scheme : string;
  m_program : string;
  m_resolution : float;
  m_ndisks : int;
  m_windows : int;
  m_sim_end : float;
  m_horizon : float;
  m_fleet : string list;
      (** Model registry slugs, round-robin by disk id; a single slug
          means a homogeneous fleet. *)
  m_dropped : int;
  m_samples : sample list;
}

val to_section : ?scheme:string -> ?program:string -> t -> section
(** Snapshot for export; [scheme]/[program] label the section (the
    meter itself does not know them — it only sees events). *)

val write_jsonl : section -> out_channel -> unit
(** One JSON object per line: a [{"schema":"dpm-meter/1", ...}] meta
    line, then one line per sample.  Floats print ["%.17g"], so
    {!read_jsonl} round-trips bit-exactly.  Several sections may share
    one file (one per scheme). *)

val write_csv : section -> out_channel -> unit
(** Header row + one row per sample
    ([scheme,program,disk,index,t0,t1,watts]). *)

val read_jsonl : in_channel -> section list
(** Parses what {!write_jsonl} wrote (any number of concatenated
    sections).  Raises [Failure] on a malformed line. *)
