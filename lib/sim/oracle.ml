module Power = Dpm_disk.Power
module Rpm = Dpm_disk.Rpm
module Specs = Dpm_disk.Specs

let burst_threshold = 0.5

type phase =
  | Burst of { span : float * float; level : int; service : float }
  | Gap of {
      span : float * float;
      from_level : int;
      to_level : int;
      plan : Power.gap_plan;
    }

(* Group a disk's (start, completion) service intervals into bursts
   separated by at least [burst_threshold] of idleness. *)
let bursts_of_busy busy =
  let rec go current acc = function
    | [] -> List.rev (List.rev current :: acc)
    | (a, b) :: rest -> (
        match current with
        | [] -> go [ (a, b) ] acc rest
        | (_, prev_b) :: _ ->
            if a -. prev_b >= burst_threshold then
              go [ (a, b) ] (List.rev current :: acc) rest
            else go ((a, b) :: current) acc rest)
  in
  match busy with [] -> [] | _ -> go [] [] busy

(* Service time of a request at [level], given its full-speed time: seek
   is speed-independent, rotation and transfer scale with 1/RPM. *)
let service_at (specs : Specs.t) ~level s_top =
  let scale =
    float_of_int specs.Specs.rpm_max
    /. float_of_int (Rpm.rpm_of_level specs level)
  in
  specs.Specs.avg_seek +. ((s_top -. specs.Specs.avg_seek) *. scale)

(* Total service time of a burst at a level, and whether the level keeps
   the burst work-conserving on average: the total demand must fit the
   burst's span (plus a little of the following gap for the tail) —
   intra-burst jitter is absorbed by the disk queue, so the constraint is
   on throughput, not on each request's own slack. *)
let burst_demand (specs : Specs.t) requests ~level =
  List.fold_left
    (fun acc (a, b) -> acc +. service_at specs ~level (b -. a))
    0.0 requests

let burst_energy (specs : Specs.t) requests ~level ~span =
  let service = burst_demand specs requests ~level in
  (Power.active specs ~level *. service)
  +. (Power.idle specs ~level *. max 0.0 (span -. service))

(* The oracle's schedule is the exact optimum of a dynamic program over
   (phase, level): bursts hold one level for their whole extent (a disk
   cannot modulate mid-stream), gaps may dip to any intermediate level
   whose modulations fit.  The all-top path is always feasible, so the
   oracle never loses to Base. *)
let phases ?(config = Config.default) (base : Result.t) ~disk =
  let specs = Config.model config ~disk in
  let top = Rpm.max_level specs in
  let nlevels = Rpm.num_levels specs in
  let busy = base.Result.disks.(disk).Result.busy in
  let exec = base.Result.exec_time in
  let bursts = bursts_of_busy busy in
  (* Phase skeletons covering [0, exec]. *)
  let skeleton = ref [] in
  let cursor = ref 0.0 in
  List.iteri
    (fun i requests ->
      let first = fst (List.hd requests) in
      let last = snd (List.nth requests (List.length requests - 1)) in
      let next_start =
        match List.nth_opt bursts (i + 1) with
        | Some next -> fst (List.hd next)
        | None -> exec
      in
      if first > !cursor then skeleton := `Gap (!cursor, first) :: !skeleton;
      skeleton := `Burst (requests, first, last, 0.25 *. (next_start -. last)) :: !skeleton;
      cursor := last)
    bursts;
  if exec > !cursor then skeleton := `Gap (!cursor, exec) :: !skeleton;
  let skeleton = List.rev !skeleton in
  (* DP forward pass.  dp.(l) = (cost, backpointer list of choices). *)
  let inf = infinity in
  let dp = Array.make nlevels inf in
  dp.(top) <- 0.0;
  (* Per phase, remember for each exit level the (entry level, choice). *)
  let trace_back = ref [] in
  List.iter
    (fun phase ->
      match phase with
      | `Burst (requests, first, last, tail_slack) ->
          let span = last -. first in
          let choices = Array.make nlevels (-1) in
          let dp' = Array.make nlevels inf in
          for l = 0 to nlevels - 1 do
            if dp.(l) < inf then begin
              let feasible =
                l = top
                || burst_demand specs requests ~level:l <= span +. tail_slack
              in
              if feasible then begin
                let e = dp.(l) +. burst_energy specs requests ~level:l ~span in
                if e < dp'.(l) then begin
                  dp'.(l) <- e;
                  choices.(l) <- l
                end
              end
            end
          done;
          Array.blit dp' 0 dp 0 nlevels;
          trace_back := `Burst_choice choices :: !trace_back
      | `Gap (lo, hi) ->
          let gap = hi -. lo in
          let dp' = Array.make nlevels inf in
          let from_of = Array.make nlevels (-1) in
          for from_level = 0 to nlevels - 1 do
            if dp.(from_level) < inf then
              for to_level = 0 to nlevels - 1 do
                let plan =
                  Power.best_gap_plan specs ~from_level ~to_level gap
                in
                let e = dp.(from_level) +. plan.Power.energy in
                if e < dp'.(to_level) then begin
                  dp'.(to_level) <- e;
                  from_of.(to_level) <- from_level
                end
              done
          done;
          Array.blit dp' 0 dp 0 nlevels;
          trace_back := `Gap_choice (lo, hi, from_of) :: !trace_back)
    skeleton;
  (* Reconstruct: end at the cheapest exit level. *)
  let final = ref top in
  Array.iteri (fun l c -> if c < dp.(!final) then final := l) dp;
  let result = ref [] in
  let level = ref !final in
  List.iter
    (fun step ->
      match step with
      | `Burst_choice choices ->
          ignore choices;
          result := `Burst_at !level :: !result
      | `Gap_choice (lo, hi, from_of) ->
          let from_level = if from_of.(!level) < 0 then top else from_of.(!level) in
          result := `Gap_at (lo, hi, from_level, !level) :: !result;
          level := from_level)
    !trace_back;
  (* !result is already in forward phase order: the backward walk over
     the reversed trace prepends each phase's choice. *)
  let recon = !result in
  let rec emit skel recon =
    match (skel, recon) with
    | [], [] -> []
    | `Burst (requests, first, last, _) :: skel', `Burst_at l :: recon' ->
        Burst
          {
            span = (first, last);
            level = l;
            service = burst_demand specs requests ~level:l;
          }
        :: emit skel' recon'
    | `Gap (lo, hi) :: skel', `Gap_at (_, _, from_level, to_level) :: recon' ->
        Gap
          {
            span = (lo, hi);
            from_level;
            to_level;
            plan =
              Power.best_gap_plan specs ~from_level ~to_level (hi -. lo);
          }
        :: emit skel' recon'
    | _ -> invalid_arg "Oracle.phases: reconstruction mismatch"
  in
  emit skeleton recon

let gap_plans ?config base ~disk =
  List.filter_map
    (function
      | Gap { span; plan; _ } -> Some (span, plan)
      | Burst _ -> None)
    (phases ?config base ~disk)

let emit_opt timeline ev =
  match timeline with Some sink -> Timeline.emit sink ev | None -> ()

let emit_span timeline ~disk state t0 t1 =
  if t1 > t0 then emit_opt timeline (Timeline.Span { disk; state; t0; t1 })

let idrpm ?(config = Config.default) ?timeline (base : Result.t) =
  let gap_choices = ref [] in
  let disks =
    Array.mapi
      (fun disk_id (d : Result.disk_stats) ->
        let specs = Config.model config ~disk:disk_id in
        let top = Rpm.max_level specs in
        let nlevels = Rpm.num_levels specs in
        let residency = Array.make nlevels 0.0 in
        let energy = ref 0.0 in
        let transitions = ref 0 in
        let trans_time = ref 0.0 in
        List.iter
          (fun phase ->
            match phase with
            | Burst { span = lo, hi; level; service } ->
                energy :=
                  !energy
                  +. (Power.active specs ~level *. service)
                  +. (Power.idle specs ~level
                     *. max 0.0 (hi -. lo -. service));
                residency.(level) <- residency.(level) +. (hi -. lo);
                emit_opt timeline
                  (Timeline.Service
                     {
                       disk = disk_id;
                       level;
                       arrival = lo;
                       t0 = lo;
                       t1 = lo +. service;
                       bytes = 0;
                     });
                emit_span timeline ~disk:disk_id (Timeline.Ready level)
                  (lo +. service) hi
            | Gap { span = lo, hi; from_level; to_level; plan } ->
                let gap = hi -. lo in
                Dpm_util.Telemetry.observe Dpm_util.Telemetry.global
                  "oracle.idle_gap.predicted_s" gap;
                energy := !energy +. plan.Power.energy;
                let inner =
                  hi -. lo -. plan.Power.down_time -. plan.Power.up_time
                in
                residency.(plan.Power.level) <-
                  residency.(plan.Power.level) +. max 0.0 inner;
                if plan.Power.down_time > 0.0 then transitions := !transitions + 1;
                if plan.Power.up_time > 0.0 then transitions := !transitions + 1;
                trans_time :=
                  !trans_time +. plan.Power.down_time +. plan.Power.up_time;
                if plan.Power.level < top then
                  gap_choices := (disk_id, lo, plan.Power.level) :: !gap_choices;
                emit_opt timeline
                  (Timeline.Mark
                     {
                       disk = disk_id;
                       t = lo;
                       mark =
                         Timeline.Gap_decision
                           {
                             predicted = gap;
                             level = plan.Power.level;
                             spin_down = plan.Power.spin_down;
                           };
                     });
                if plan.Power.down_time +. plan.Power.up_time > gap then begin
                  (* Non-physical fallback: hold the higher endpoint for
                     the whole gap, with the direct modulation charged on
                     top (it overlaps the tail — analytic logs only). *)
                  emit_span timeline ~disk:disk_id
                    (Timeline.Ready plan.Power.level) lo hi;
                  emit_span timeline ~disk:disk_id
                    (Timeline.Changing { from_level; to_level })
                    (hi -. plan.Power.up_time) hi
                end
                else begin
                  emit_span timeline ~disk:disk_id
                    (Timeline.Changing
                       { from_level; to_level = plan.Power.level })
                    lo
                    (lo +. plan.Power.down_time);
                  emit_span timeline ~disk:disk_id
                    (Timeline.Ready plan.Power.level)
                    (lo +. plan.Power.down_time)
                    (hi -. plan.Power.up_time);
                  emit_span timeline ~disk:disk_id
                    (Timeline.Changing
                       { from_level = plan.Power.level; to_level })
                    (hi -. plan.Power.up_time)
                    hi
                end)
          (phases ~config base ~disk:disk_id);
        {
          Result.energy = !energy;
          busy = d.Result.busy;
          requests = d.Result.requests;
          transitions = !transitions;
          spin_downs = 0;
          level_residency = residency;
          standby_time = 0.0;
          transition_time = !trans_time;
        })
      base.Result.disks
  in
  (match timeline with
  | None -> ()
  | Some sink ->
      Timeline.set_analytic sink;
      Timeline.set_label sink ~scheme:"IDRPM" ~program:base.Result.program;
      if Array.length config.Config.fleet > 0 then
        Timeline.set_fleet sink
          (List.map Specs.name_of (Array.to_list config.Config.fleet));
      Timeline.emit sink (Timeline.Sim_end base.Result.exec_time));
  {
    Result.scheme = "IDRPM";
    program = base.Result.program;
    exec_time = base.Result.exec_time;
    energy =
      Array.fold_left
        (fun acc (d : Result.disk_stats) -> acc +. d.Result.energy)
        0.0 disks;
    disks;
    gap_choices =
      List.sort
        (fun (d1, t1, _) (d2, t2, _) -> compare (d1, t1) (d2, t2))
        !gap_choices;
    faults = base.Result.faults;
  }

(* ITPM: full-speed service, oracle spin-down decisions per gap. *)
let itpm ?(config = Config.default) ?timeline (base : Result.t) =
  let disks =
    Array.mapi
      (fun disk_id (d : Result.disk_stats) ->
        let specs = Config.model config ~disk:disk_id in
        let top = Rpm.max_level specs in
        let busy_time =
          List.fold_left (fun acc (a, b) -> acc +. (b -. a)) 0.0 d.Result.busy
        in
        let active_energy = Power.active specs ~level:top *. busy_time in
        let residency = Array.make (Rpm.num_levels specs) 0.0 in
        residency.(top) <- busy_time;
        let gap_energy = ref 0.0 in
        let spin_downs = ref 0 in
        let standby_time = ref 0.0 in
        let trans_time = ref 0.0 in
        (* Collect the disk's events, then emit them chronologically:
           the pre-activation scan over the log is order-sensitive (a
           spin-up must precede the service that claims its wake-up). *)
        let pending = ref [] in
        let record ev = pending := ev :: !pending in
        let record_span state t0 t1 =
          if t1 > t0 then record (Timeline.Span { disk = disk_id; state; t0; t1 })
        in
        List.iter
          (fun (a, b) ->
            record
              (Timeline.Service
                 {
                   disk = disk_id;
                   level = top;
                   arrival = a;
                   t0 = a;
                   t1 = b;
                   bytes = 0;
                 }))
          d.Result.busy;
        List.iter
          (fun (lo, hi) ->
            let plan = Power.best_tpm_plan specs (hi -. lo) in
            Dpm_util.Telemetry.observe Dpm_util.Telemetry.global
              "oracle.idle_gap.predicted_s" (hi -. lo);
            gap_energy := !gap_energy +. plan.Power.energy;
            let inner = hi -. lo -. plan.Power.down_time -. plan.Power.up_time in
            record
              (Timeline.Mark
                 {
                   disk = disk_id;
                   t = lo;
                   mark =
                     Timeline.Gap_decision
                       {
                         predicted = hi -. lo;
                         level = top;
                         spin_down = plan.Power.spin_down;
                       };
                 });
            if plan.Power.spin_down then begin
              incr spin_downs;
              standby_time := !standby_time +. inner;
              trans_time :=
                !trans_time +. plan.Power.down_time +. plan.Power.up_time;
              record_span Timeline.Spinning_down lo (lo +. plan.Power.down_time);
              record_span Timeline.Standby
                (lo +. plan.Power.down_time)
                (hi -. plan.Power.up_time);
              record_span Timeline.Spinning_up (hi -. plan.Power.up_time) hi
            end
            else begin
              residency.(top) <- residency.(top) +. (hi -. lo);
              record_span (Timeline.Ready top) lo hi
            end)
          (Result.idle_gaps base ~disk:disk_id);
        (match timeline with
        | None -> ()
        | Some sink ->
            let start = function
              | Timeline.Span { t0; _ }
              | Timeline.Service { t0; _ }
              | Timeline.Occupy { t0; _ }
              | Timeline.Aborted { t0; _ } ->
                  t0
              | Timeline.Mark { t; _ } -> t
              | Timeline.Sim_end t -> t
            in
            List.iter (Timeline.emit sink)
              (List.stable_sort
                 (fun a b -> compare (start a) (start b))
                 (List.rev !pending)));
        {
          Result.energy = active_energy +. !gap_energy;
          busy = d.Result.busy;
          requests = d.Result.requests;
          transitions = 0;
          spin_downs = !spin_downs;
          level_residency = residency;
          standby_time = !standby_time;
          transition_time = !trans_time;
        })
      base.Result.disks
  in
  (match timeline with
  | None -> ()
  | Some sink ->
      Timeline.set_analytic sink;
      Timeline.set_label sink ~scheme:"ITPM" ~program:base.Result.program;
      if Array.length config.Config.fleet > 0 then
        Timeline.set_fleet sink
          (List.map Specs.name_of (Array.to_list config.Config.fleet));
      Timeline.emit sink (Timeline.Sim_end base.Result.exec_time));
  {
    Result.scheme = "ITPM";
    program = base.Result.program;
    exec_time = base.Result.exec_time;
    energy =
      Array.fold_left
        (fun acc (d : Result.disk_stats) -> acc +. d.Result.energy)
        0.0 disks;
    disks;
    gap_choices = [];
    faults = base.Result.faults;
  }
