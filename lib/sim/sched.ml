(* Per-disk bounded request queues with pluggable service order.

   This module owns the reference replay body.  Under FCFS (the
   default) requests are served eagerly in trace order — the exact
   pre-fleet engine loop, kept byte-identical for homogeneous
   configurations — while the other disciplines defer each request into
   its disk's bounded queue and dispatch by policy: SSTF (shortest seek
   first), SCAN (elevator), C-LOOK (circular), and a bad-sector-aware
   SSTF that prices remapped blocks at their post-remap position in the
   spare pool past the data blocks.

   The deferred machinery is exact, not approximate: a dispatch fires
   at max(disk free, earliest queued arrival), requests that have not
   arrived by then are not candidates, and a full queue stalls the
   traced application until the next dispatch frees a slot (the same
   bounded-queue role the FCFS completion ring plays).  Every dispatch
   decision is recorded as a {!Timeline.Dispatch} mark so the timeline
   checker can replay the discipline's pick independently. *)

module Request = Dpm_trace.Request
module Stream = Dpm_trace.Trace.Stream
module Rpm = Dpm_disk.Rpm
module Service = Dpm_disk.Service
module Specs = Dpm_disk.Specs

type t = Config.sched = Fcfs | Sstf | Scan | Clook | Sstf_remap

let all = List.map snd Config.sched_names
let name = Config.sched_name
let of_name_opt = Config.sched_of_name_opt

(* One queued request.  [pos] is the scheduling position: the block
   itself, except under [Sstf_remap] where a bad block is priced at its
   post-remap position.  [seq] breaks every tie deterministically (and
   is the FCFS order). *)
type req = { arrival : float; pos : int; block : int; bytes : int; seq : int }

let no_req = { arrival = 0.0; pos = 0; block = 0; bytes = 0; seq = -1 }

let replay ~config ~mode ~fault ~timeline ~obs (policy : Policy.t)
    (stream : Stream.t) =
  let sched = config.Config.sched in
  let ndisks = Stream.ndisks stream in
  (* Per-disk models: the round-robin fleet, or the homogeneous specs.
     Every per-request float below comes from the serving disk's own
     model, so an all-[specs] fleet computes the identical bits the
     homogeneous engine always has. *)
  let models = Array.init ndisks (fun d -> Config.model config ~disk:d) in
  let tops = Array.map Rpm.max_level models in
  let disks =
    Array.init ndisks (fun id ->
        Disk_state.create ?recorder:timeline
          ~retain_busy:config.Config.retain_busy models.(id) ~id)
  in
  let gap_choices = ref [] in
  (* Application clock: in open mode it advances along the traced (base)
     timeline; in closed mode it advances to each actual completion. *)
  let clock = ref 0.0 in
  (* Completion time of the last request issued to each disk. *)
  let backlog = Array.make ndisks 0.0 in
  (* Ring of the last [queue_depth] completions per disk: the traced
     application stalls rather than queue more than that. *)
  let depth = max 1 config.Config.queue_depth in
  let recent = Array.init ndisks (fun _ -> Array.make depth 0.0) in
  let recent_pos = Array.make ndisks 0 in
  let makespan = ref 0.0 in
  let sweep_failures now =
    match fault with
    | None -> ()
    | Some fs ->
        Fault.sweep fs ~now ~kill:(fun d at -> Disk_state.fail disks.(d) ~at)
  in
  let apply_directive directive =
    clock := !clock +. config.Config.pm_call_overhead;
    match directive with
    | Request.Spin_down d ->
        Disk_state.record disks.(d) ~at:!clock Timeline.Directive_spin_down;
        Disk_state.spin_down disks.(d) ~now:!clock
    | Request.Spin_up d -> (
        Disk_state.record disks.(d) ~at:!clock Timeline.Directive_spin_up;
        match fault with
        | None -> Disk_state.spin_up disks.(d) ~now:!clock
        | Some fs -> Fault.spin_up fs disks.(d) ~now:!clock)
    | Request.Set_rpm { level; disk } ->
        (* A directive planned against a taller ladder (the compiler
           plans with the primary specs) clamps to this disk's top. *)
        let level = if level > tops.(disk) then tops.(disk) else level in
        if level < tops.(disk) then
          gap_choices := (disk, !clock, level) :: !gap_choices;
        Disk_state.record disks.(disk) ~at:!clock
          (Timeline.Directive_set_rpm level);
        Disk_state.set_level disks.(disk) ~now:!clock level
  in
  let finish exec_time =
    sweep_failures exec_time;
    Array.iter
      (fun st ->
        policy.Policy.catch_up st ~now:exec_time;
        Disk_state.finalize st ~at:exec_time)
      disks;
    (match timeline with
    | None -> ()
    | Some sink ->
        Timeline.set_label sink ~scheme:policy.Policy.name
          ~program:(Stream.program stream);
        if Array.length config.Config.fleet > 0 then
          Timeline.set_fleet sink
            (List.map Specs.name_of (Array.to_list config.Config.fleet));
        Timeline.emit sink (Timeline.Sim_end exec_time));
    let disk_stats =
      Array.map
        (fun st ->
          {
            Result.energy = Disk_state.energy st;
            busy = Disk_state.busy_intervals st;
            requests = Disk_state.requests_served st;
            transitions = Disk_state.transition_count st;
            spin_downs = Disk_state.spin_down_count st;
            level_residency = Disk_state.level_residency st;
            standby_time = Disk_state.standby_residency st;
            transition_time = Disk_state.transition_residency st;
          })
        disks
    in
    {
      Result.scheme = policy.Policy.name;
      program = Stream.program stream;
      exec_time;
      energy =
        Array.fold_left
          (fun acc (d : Result.disk_stats) -> acc +. d.Result.energy)
          0.0 disk_stats;
      disks = disk_stats;
      gap_choices = List.rev !gap_choices;
      faults =
        (match fault with
        | None -> Result.no_faults
        | Some fs -> Fault.stats fs ~exec_time);
    }
  in
  match sched with
  | Fcfs ->
      (* The eager reference body: requests issue in trace order the
         moment they arrive.  Identical whatever chunking the stream
         delivers, so replays are byte-identical to the materialized
         path at any batch size. *)
      Stream.iter
        (fun event ->
          clock := !clock +. Request.think event;
          sweep_failures !clock;
          match event with
          | Request.Pm { directive; _ } ->
              if policy.Policy.accepts_directives then apply_directive directive
          | Request.Io io ->
              (* A failed disk sheds its load onto the next survivor. *)
              let d =
                match fault with
                | None -> io.disk
                | Some fs -> Fault.serving_disk fs ~disk:io.disk ~now:!clock
              in
              if d <> io.disk then
                Disk_state.record disks.(d) ~at:!clock
                  (Timeline.Redirect io.disk);
              let st = disks.(d) in
              (* Bounded queue: wait until the oldest of the last [depth]
                 requests on this disk has completed. *)
              let oldest = recent.(d).(recent_pos.(d)) in
              if oldest > !clock then clock := oldest;
              let arrival = !clock in
              Observe.observe_arrival obs ~ring:recent.(d) ~arrival;
              let issue = max arrival backlog.(d) in
              policy.Policy.catch_up st ~now:issue;
              let before = Observe.retries_before obs fault in
              let completion =
                match fault with
                | None -> Disk_state.serve st ~now:issue ~bytes:io.bytes
                | Some fs ->
                    Fault.serve fs st ~now:issue ~bytes:io.bytes
                      ~block:io.block
              in
              backlog.(d) <- completion;
              recent.(d).(recent_pos.(d)) <- completion;
              recent_pos.(d) <- (recent_pos.(d) + 1) mod depth;
              if completion > !makespan then makespan := completion;
              let response = completion -. arrival in
              Observe.observe_service obs ~fault ~retries_before:before
                ~response;
              let nominal =
                Service.request_time models.(d) ~level:tops.(d) ~bytes:io.bytes
              in
              policy.Policy.on_complete st ~now:completion ~response ~nominal;
              (match mode with
              | `Open ->
                  (* The traced application proceeds on its own clock:
                     the base-run service time elapses before the next
                     think. *)
                  clock := arrival +. nominal
              | `Closed -> clock := completion))
        stream;
      clock := !clock +. Stream.tail_think stream;
      finish (max !clock !makespan)
  | Sstf | Scan | Clook | Sstf_remap ->
      (* Deferred dispatch: requests park in their disk's bounded queue
         and issue by discipline at max(disk free, earliest arrival). *)
      let pend = Array.init ndisks (fun _ -> Array.make depth no_req) in
      let pend_n = Array.make ndisks 0 in
      let head = Array.make ndisks 0 in
      let dirup = Array.make ndisks true in
      (* Dispatches issued per disk — the completion-ring cursor. *)
      let issued = Array.make ndisks 0 in
      let seq = ref 0 in
      let price =
        match (sched, fault) with
        | Sstf_remap, Some fs
          when Fault.bad_regions (Fault.plan_of fs) <> [] ->
            (* Remapped sectors live in the spare pool past the data
               blocks, so a seek-aware scheduler prices them at the far
               end of the address space.  [nblocks] was already forced
               when the bad regions were drawn. *)
            let plan = Fault.plan_of fs in
            let spare = Stream.nblocks stream in
            fun block -> if Fault.bad_block plan ~block then spare else block
        | _ -> fun block -> block
      in
      (* Earliest instant disk [d] can issue its next request. *)
      let next_t d =
        let n = pend_n.(d) in
        if n = 0 then infinity
        else begin
          let q = pend.(d) in
          let m = ref q.(0).arrival in
          for i = 1 to n - 1 do
            if q.(i).arrival < !m then m := q.(i).arrival
          done;
          Float.max backlog.(d) !m
        end
      in
      (* Pick the queue index to serve at time [at] (at least one queued
         request has arrived by construction of [next_t]).  Ties on
         position break by sequence number, deterministically. *)
      let pick d ~at =
        let q = pend.(d) and n = pend_n.(d) in
        let h = head.(d) in
        let choose keep better =
          let best = ref (-1) in
          for i = 0 to n - 1 do
            if q.(i).arrival <= at && keep q.(i).pos then
              match !best with
              | -1 -> best := i
              | b -> if better q.(i) q.(b) then best := i
          done;
          !best
        in
        let by_seq a b = a.seq < b.seq in
        let nearer a b =
          let da = abs (a.pos - h) and db = abs (b.pos - h) in
          da < db || (da = db && a.seq < b.seq)
        in
        let lowest a b = a.pos < b.pos || (a.pos = b.pos && a.seq < b.seq) in
        let highest a b = a.pos > b.pos || (a.pos = b.pos && a.seq < b.seq) in
        match sched with
        | Fcfs -> choose (fun _ -> true) by_seq
        | Sstf | Sstf_remap -> choose (fun _ -> true) nearer
        | Scan ->
            if dirup.(d) then begin
              let i = choose (fun p -> p >= h) lowest in
              if i >= 0 then i
              else begin
                dirup.(d) <- false;
                choose (fun p -> p <= h) highest
              end
            end
            else begin
              let i = choose (fun p -> p <= h) highest in
              if i >= 0 then i
              else begin
                dirup.(d) <- true;
                choose (fun p -> p >= h) lowest
              end
            end
        | Clook ->
            let i = choose (fun p -> p >= h) lowest in
            if i >= 0 then i else choose (fun _ -> true) lowest
      in
      let dispatch d =
        let t_disp = next_t d in
        sweep_failures t_disp;
        let i = pick d ~at:t_disp in
        let q = pend.(d) in
        let r = q.(i) in
        pend_n.(d) <- pend_n.(d) - 1;
        q.(i) <- q.(pend_n.(d));
        q.(pend_n.(d)) <- no_req;
        let st = disks.(d) in
        let seek = r.pos - head.(d) in
        head.(d) <- r.pos;
        Disk_state.record st ~at:t_disp
          (Timeline.Dispatch { disc = sched; pos = r.pos; arrival = r.arrival });
        policy.Policy.catch_up st ~now:t_disp;
        let before = Observe.retries_before obs fault in
        let completion =
          match fault with
          | None -> Disk_state.serve st ~now:t_disp ~bytes:r.bytes
          | Some fs ->
              Fault.serve fs st ~now:t_disp ~bytes:r.bytes ~block:r.block
        in
        backlog.(d) <- completion;
        recent.(d).(issued.(d) mod depth) <- completion;
        issued.(d) <- issued.(d) + 1;
        if completion > !makespan then makespan := completion;
        let response = completion -. r.arrival in
        Observe.observe_service obs ~fault ~retries_before:before ~response;
        Observe.observe_dispatch obs ~wait:(t_disp -. r.arrival)
          ~seek_blocks:seek;
        let nominal =
          Service.request_time models.(d) ~level:tops.(d) ~bytes:r.bytes
        in
        policy.Policy.on_complete st ~now:completion ~response ~nominal
      in
      (* Issue, in global time order, every dispatch scheduled strictly
         before [limit] — keeps each disk's operations time-monotone
         against directives applied at the application clock. *)
      let rec drain_until limit =
        let bd = ref (-1) and bt = ref infinity in
        for d = 0 to ndisks - 1 do
          let t = next_t d in
          if t < !bt then begin
            bd := d;
            bt := t
          end
        done;
        if !bd >= 0 && !bt < limit then begin
          dispatch !bd;
          drain_until limit
        end
      in
      let enqueue d ~arrival ~block ~bytes =
        pend.(d).(pend_n.(d)) <-
          { arrival; pos = price block; block; bytes; seq = !seq };
        incr seq;
        pend_n.(d) <- pend_n.(d) + 1
      in
      Stream.iter
        (fun event ->
          clock := !clock +. Request.think event;
          drain_until !clock;
          sweep_failures !clock;
          match event with
          | Request.Pm { directive; _ } ->
              if policy.Policy.accepts_directives then apply_directive directive
          | Request.Io io ->
              let d =
                match fault with
                | None -> io.disk
                | Some fs -> Fault.serving_disk fs ~disk:io.disk ~now:!clock
              in
              if d <> io.disk then
                Disk_state.record disks.(d) ~at:!clock
                  (Timeline.Redirect io.disk);
              (* Bounded queue: a full queue stalls the application
                 until the next dispatch frees a slot. *)
              while pend_n.(d) >= depth do
                let t = next_t d in
                dispatch d;
                if t > !clock then clock := t
              done;
              let arrival = !clock in
              Observe.observe_arrival obs ~ring:recent.(d) ~arrival;
              enqueue d ~arrival ~block:io.block ~bytes:io.bytes;
              let nominal =
                Service.request_time models.(d) ~level:tops.(d) ~bytes:io.bytes
              in
              (match mode with
              | `Open -> clock := arrival +. nominal
              | `Closed ->
                  (* One request in flight at a time: serve it now and
                     block on its completion. *)
                  while pend_n.(d) > 0 do
                    dispatch d
                  done;
                  clock := backlog.(d)))
        stream;
      (* End of trace: the queues flush — every request completes, so
         the disciplines cannot starve anything. *)
      drain_until infinity;
      clock := !clock +. Stream.tail_think stream;
      finish (max !clock !makespan)
