(** Trace replay engine.

    Two replay modes:

    - [`Open] (default; the paper's model): request arrival times are
      fixed by the traced execution — each event's think time and its
      full-speed service time advance the application clock regardless of
      how power management delays actual service.  Delayed requests queue
      FIFO at their disk; the run's execution time is the completion of
      the last piece of work, so sustained slow service shows up as an
      execution-time penalty only to the extent the backlog survives to
      the end of a burst.  This matches a trace-driven simulator fed with
      recorded arrival times (DiskSim-style, paper §4.1).

    - [`Closed]: the application issues one request at a time: each
      event's think time elapses after the previous event {e completes},
      so every service delay propagates fully into execution time.  This
      stricter model is kept as an ablation (see the benchmark harness)
      — under it, reactive speed control is far less attractive because
      one second of slowdown buys eight disk-seconds of idle energy.

    Directives in the trace are applied on the application clock when the
    policy accepts them (a modulation or spin-down proceeds while the
    application computes), and are skipped otherwise; their think time
    always elapses, so the compute timeline is scheme-independent. *)

type mode = [ `Open | `Closed ]

type core = [ `Fast | `Reference ]
(** Replay core selection.  [`Fast] (the default) runs the specialized
    structure-of-arrays loop ({!Fastpath}) whenever the policy's shape
    supports it, falling back to the reference body otherwise;
    [`Reference] forces the record-at-a-time reference body.  The two
    produce byte-identical results — energies, execution times, fault
    counters, gap choices, timelines, telemetry histograms — which the
    differential suite pins; [`Reference] exists as the oracle for
    those tests and as an escape hatch. *)

val run_stream :
  ?config:Config.t ->
  ?mode:mode ->
  ?metrics:Dpm_util.Metrics.t ->
  ?faults:Fault.spec ->
  ?timeline:Timeline.sink ->
  ?core:core ->
  Policy.t ->
  Dpm_trace.Trace.Stream.t ->
  Result.t
(** Replays a pull-based trace stream chunk by chunk — the engine's
    core entry point; {!run} is the materialized wrapper over it.  The
    per-event body is independent of chunking, so the result is
    byte-identical to replaying the materialized trace whatever the
    stream's batch size.  Peak memory is O(batch) on the trace side;
    with a fused producer ({!Dpm_trace.Generate.stream}) generation and
    replay interleave so the whole pipeline is bounded.  The stream's
    [nblocks] is forced only when [faults] is a non-zero spec (the bad
    regions are drawn over that address space), and its [tail_think]
    only after exhaustion.  The stream is consumed: a second replay
    needs a fresh stream. *)

val run_many_stream :
  ?config:Config.t ->
  ?mode:mode ->
  ?metrics:Dpm_util.Metrics.t ->
  ?faults:Fault.spec ->
  ?timeline:Timeline.sink ->
  Policy.t ->
  Dpm_trace.Trace.Stream.t list ->
  Result.t
(** Multiprogrammed {!run_stream}: each application pulls chunks from
    its own stream on demand (see {!run_many} for the scheduling
    model).  All streams must agree on the disk count. *)

val run :
  ?config:Config.t ->
  ?mode:mode ->
  ?metrics:Dpm_util.Metrics.t ->
  ?faults:Fault.spec ->
  ?timeline:Timeline.sink ->
  ?core:core ->
  Policy.t ->
  Dpm_trace.Trace.t ->
  Result.t
(** Replays the whole trace and returns the outcome.  Wall time is
    recorded under the [sim.replay] span and the served request count
    under the [sim.requests] counter of [metrics] (default
    {!Dpm_util.Metrics.global}, a no-op unless enabled) — together they
    give the requests-simulated/sec throughput the harness reports.

    [faults] (default {!Fault.none}) injects deterministic faults at
    service time: transient read errors retry with exponential backoff,
    bad-sector hits pay a remap penalty, spin-ups from standby can stick
    and re-attempt (burning aborted spin-up energy), and whole-disk
    failures redirect load to the surviving disks.  The counters land in
    [Result.faults] and under the [sim.fault.*] metrics counters; a spec
    for which {!Fault.is_zero} holds takes the exact fault-free code
    path, so results are byte-identical to omitting it.  Raises
    [Invalid_argument] on a spec {!Fault.validate} rejects.

    [timeline] installs a {!Timeline.sink}: every power-state residency,
    service interval, aborted spin-up, applied directive and fault
    signature is recorded as a typed event (plus a final
    [Timeline.Sim_end]), and the sink is labelled with the scheme and
    program.  Recording is strictly observational — with no sink the
    replay takes the exact same code path and produces byte-identical
    results. *)

val run_many :
  ?config:Config.t ->
  ?mode:mode ->
  ?metrics:Dpm_util.Metrics.t ->
  ?faults:Fault.spec ->
  ?timeline:Timeline.sink ->
  Policy.t ->
  Dpm_trace.Trace.t list ->
  Result.t
(** Extension beyond the paper (which "considers one benchmark program at
    a time"): replay several applications concurrently over one shared
    disk subsystem.  Each application advances on its own clock; at every
    step the one with the earliest next event proceeds.  All traces must
    agree on the disk count.  Compiler-managed traces keep their own
    directives — two co-scheduled CM applications can fight over a disk's
    speed, which is precisely the open problem the paper's
    one-at-a-time evaluation sidesteps. *)
