type t = {
  specs : Dpm_disk.Specs.t;
  tpm_threshold : float option;
  drpm_lower : float;
  drpm_upper : float;
  drpm_window : int;
  drpm_idle_interval : float;
  drpm_floor_depth : int;
  queue_depth : int;
  pm_call_overhead : float;
  pre_activation_lead : float;
  retain_busy : bool;
}

let default =
  {
    specs = Dpm_disk.Specs.ultrastar_36z15;
    tpm_threshold = None;
    drpm_lower = 0.05;
    drpm_upper = 0.15;
    drpm_window = Dpm_disk.Specs.ultrastar_36z15.drpm_window;
    drpm_idle_interval = 1.0;
    drpm_floor_depth = 4;
    queue_depth = 32;
    pm_call_overhead = 2.0e-6;
    pre_activation_lead = 0.0;
    retain_busy = true;
  }

let make ?(specs = default.specs) ?tpm_threshold
    ?(drpm_lower = default.drpm_lower) ?(drpm_upper = default.drpm_upper)
    ?(drpm_window = default.drpm_window)
    ?(drpm_idle_interval = default.drpm_idle_interval)
    ?(drpm_floor_depth = default.drpm_floor_depth)
    ?(queue_depth = default.queue_depth)
    ?(pm_call_overhead = default.pm_call_overhead)
    ?(pre_activation_lead = default.pre_activation_lead)
    ?(retain_busy = default.retain_busy) () =
  {
    specs;
    tpm_threshold;
    drpm_lower;
    drpm_upper;
    drpm_window;
    drpm_idle_interval;
    drpm_floor_depth;
    queue_depth;
    pm_call_overhead;
    pre_activation_lead;
    retain_busy;
  }

let with_specs specs t = { t with specs }
let with_tpm_threshold tpm_threshold t = { t with tpm_threshold }
let with_drpm_lower drpm_lower t = { t with drpm_lower }
let with_drpm_upper drpm_upper t = { t with drpm_upper }
let with_drpm_window drpm_window t = { t with drpm_window }

let with_drpm_idle_interval drpm_idle_interval t =
  { t with drpm_idle_interval }

let with_drpm_floor_depth drpm_floor_depth t = { t with drpm_floor_depth }
let with_queue_depth queue_depth t = { t with queue_depth }
let with_pm_call_overhead pm_call_overhead t = { t with pm_call_overhead }

let with_pre_activation_lead pre_activation_lead t =
  { t with pre_activation_lead }

let with_retain_busy retain_busy t = { t with retain_busy }
