type t = {
  specs : Dpm_disk.Specs.t;
  tpm_threshold : float option;
  drpm_lower : float;
  drpm_upper : float;
  drpm_window : int;
  drpm_idle_interval : float;
  queue_depth : int;
  pm_call_overhead : float;
  retain_busy : bool;
}

let default =
  {
    specs = Dpm_disk.Specs.ultrastar_36z15;
    tpm_threshold = None;
    drpm_lower = 0.05;
    drpm_upper = 0.15;
    drpm_window = Dpm_disk.Specs.ultrastar_36z15.drpm_window;
    drpm_idle_interval = 1.0;
    queue_depth = 32;
    pm_call_overhead = 2.0e-6;
    retain_busy = true;
  }
