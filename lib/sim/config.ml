(* Per-disk request-queue service order.  Defined here (not in Sched)
   so Config stays dependency-free; Sched owns the names and the
   dispatch machinery. *)
type sched = Fcfs | Sstf | Scan | Clook | Sstf_remap

(* Canonical scheduler names, shared by the CLI, the run-spec JSON and
   the timeline export. *)
let sched_names =
  [
    ("fcfs", Fcfs);
    ("sstf", Sstf);
    ("scan", Scan);
    ("c-look", Clook);
    ("sstf-remap", Sstf_remap);
  ]

let sched_name s = fst (List.find (fun (_, v) -> v = s) sched_names)

let sched_of_name_opt name =
  match String.lowercase_ascii (String.trim name) with
  | "clook" -> Some Clook (* spelling alias; canonical name is "c-look" *)
  | n -> List.assoc_opt n sched_names

type t = {
  specs : Dpm_disk.Specs.t;
  fleet : Dpm_disk.Specs.t array;
  sched : sched;
  tpm_threshold : float option;
  drpm_lower : float;
  drpm_upper : float;
  drpm_window : int;
  drpm_idle_interval : float;
  drpm_floor_depth : int;
  queue_depth : int;
  pm_call_overhead : float;
  pre_activation_lead : float;
  retain_busy : bool;
}

let default =
  {
    specs = Dpm_disk.Specs.ultrastar_36z15;
    fleet = [||];
    sched = Fcfs;
    tpm_threshold = None;
    drpm_lower = 0.05;
    drpm_upper = 0.15;
    drpm_window = Dpm_disk.Specs.ultrastar_36z15.drpm_window;
    drpm_idle_interval = 1.0;
    drpm_floor_depth = 4;
    queue_depth = 32;
    pm_call_overhead = 2.0e-6;
    pre_activation_lead = 0.0;
    retain_busy = true;
  }

let make ?(specs = default.specs) ?(fleet = default.fleet)
    ?(sched = default.sched) ?tpm_threshold
    ?(drpm_lower = default.drpm_lower) ?(drpm_upper = default.drpm_upper)
    ?(drpm_window = default.drpm_window)
    ?(drpm_idle_interval = default.drpm_idle_interval)
    ?(drpm_floor_depth = default.drpm_floor_depth)
    ?(queue_depth = default.queue_depth)
    ?(pm_call_overhead = default.pm_call_overhead)
    ?(pre_activation_lead = default.pre_activation_lead)
    ?(retain_busy = default.retain_busy) () =
  {
    specs;
    fleet;
    sched;
    tpm_threshold;
    drpm_lower;
    drpm_upper;
    drpm_window;
    drpm_idle_interval;
    drpm_floor_depth;
    queue_depth;
    pm_call_overhead;
    pre_activation_lead;
    retain_busy;
  }

let with_specs specs t = { t with specs }
let with_fleet fleet t = { t with fleet }
let with_sched sched t = { t with sched }

(* The model serving disk [disk]: fleet entries round-robin over the
   disk ids; an empty fleet means every disk is [t.specs] (the legacy
   homogeneous configuration). *)
let model t ~disk =
  let n = Array.length t.fleet in
  if n = 0 then t.specs else t.fleet.(disk mod n)

let homogeneous t =
  Array.for_all (fun m -> m = t.specs) t.fleet
let with_tpm_threshold tpm_threshold t = { t with tpm_threshold }
let with_drpm_lower drpm_lower t = { t with drpm_lower }
let with_drpm_upper drpm_upper t = { t with drpm_upper }
let with_drpm_window drpm_window t = { t with drpm_window }

let with_drpm_idle_interval drpm_idle_interval t =
  { t with drpm_idle_interval }

let with_drpm_floor_depth drpm_floor_depth t = { t with drpm_floor_depth }
let with_queue_depth queue_depth t = { t with queue_depth }
let with_pm_call_overhead pm_call_overhead t = { t with pm_call_overhead }

let with_pre_activation_lead pre_activation_lead t =
  { t with pre_activation_lead }

let with_retain_busy retain_busy t = { t with retain_busy }
