(* Per-disk request-queue service order.  Defined here (not in Sched)
   so Config stays dependency-free; Sched owns the names and the
   dispatch machinery. *)
type sched = Fcfs | Sstf | Scan | Clook | Sstf_remap

(* Canonical scheduler names, shared by the CLI, the run-spec JSON and
   the timeline export. *)
let sched_names =
  [
    ("fcfs", Fcfs);
    ("sstf", Sstf);
    ("scan", Scan);
    ("c-look", Clook);
    ("sstf-remap", Sstf_remap);
  ]

let sched_name s = fst (List.find (fun (_, v) -> v = s) sched_names)

let sched_of_name_opt name =
  match String.lowercase_ascii (String.trim name) with
  | "clook" -> Some Clook (* spelling alias; canonical name is "c-look" *)
  | n -> List.assoc_opt n sched_names

type t = {
  specs : Dpm_disk.Specs.t;
  fleet : Dpm_disk.Specs.t array;
  sched : sched;
  tpm_threshold : float option;
  drpm_lower : float;
  drpm_upper : float;
  drpm_window : int;
  drpm_idle_interval : float;
  drpm_floor_depth : int;
  queue_depth : int;
  pm_call_overhead : float;
  pre_activation_lead : float;
  retain_busy : bool;
}

(* Single choke point for configuration invariants: every constructor
   ([make] and each [with_*]) funnels through [check], so an invalid
   knob combination is rejected at construction time no matter which
   path built it (CLI, sweep axis, wire spec, literal in a test). *)
let check t =
  let fail fmt = Format.kasprintf invalid_arg ("Config: " ^^ fmt) in
  if t.queue_depth < 1 then
    fail "queue_depth must be >= 1 (got %d)" t.queue_depth;
  if t.drpm_window < 1 then
    fail "drpm_window must be >= 1 (got %d)" t.drpm_window;
  if t.drpm_lower < 0.0 then
    fail "drpm_lower must be >= 0 (got %g)" t.drpm_lower;
  if t.drpm_upper <= t.drpm_lower then
    fail "drpm_upper (%g) must exceed drpm_lower (%g)" t.drpm_upper
      t.drpm_lower;
  if t.drpm_idle_interval <= 0.0 then
    fail "drpm_idle_interval must be > 0 (got %g)" t.drpm_idle_interval;
  if t.drpm_floor_depth < 0 then
    fail "drpm_floor_depth must be >= 0 (got %d)" t.drpm_floor_depth;
  if t.pm_call_overhead < 0.0 then
    fail "pm_call_overhead must be >= 0 (got %g)" t.pm_call_overhead;
  if t.pre_activation_lead < 0.0 then
    fail "pre_activation_lead must be >= 0 (got %g)" t.pre_activation_lead;
  (match t.tpm_threshold with
  | Some th when th <= 0.0 -> fail "tpm_threshold must be > 0 (got %g)" th
  | _ -> ());
  t

let default =
  {
    specs = Dpm_disk.Specs.ultrastar_36z15;
    fleet = [||];
    sched = Fcfs;
    tpm_threshold = None;
    drpm_lower = 0.05;
    drpm_upper = 0.15;
    drpm_window = Dpm_disk.Specs.ultrastar_36z15.drpm_window;
    drpm_idle_interval = 1.0;
    drpm_floor_depth = 4;
    queue_depth = 32;
    pm_call_overhead = 2.0e-6;
    pre_activation_lead = 0.0;
    retain_busy = true;
  }

let make ?(specs = default.specs) ?(fleet = default.fleet)
    ?(sched = default.sched) ?tpm_threshold
    ?(drpm_lower = default.drpm_lower) ?(drpm_upper = default.drpm_upper)
    ?(drpm_window = default.drpm_window)
    ?(drpm_idle_interval = default.drpm_idle_interval)
    ?(drpm_floor_depth = default.drpm_floor_depth)
    ?(queue_depth = default.queue_depth)
    ?(pm_call_overhead = default.pm_call_overhead)
    ?(pre_activation_lead = default.pre_activation_lead)
    ?(retain_busy = default.retain_busy) () =
  check
    {
      specs;
      fleet;
      sched;
      tpm_threshold;
      drpm_lower;
      drpm_upper;
      drpm_window;
      drpm_idle_interval;
      drpm_floor_depth;
      queue_depth;
      pm_call_overhead;
      pre_activation_lead;
      retain_busy;
    }

let with_specs specs t = check { t with specs }
let with_fleet fleet t = check { t with fleet }
let with_sched sched t = check { t with sched }

(* The model serving disk [disk]: fleet entries round-robin over the
   disk ids; an empty fleet means every disk is [t.specs] (the legacy
   homogeneous configuration). *)
let model t ~disk =
  let n = Array.length t.fleet in
  if n = 0 then t.specs else t.fleet.(disk mod n)

let homogeneous t =
  Array.for_all (fun m -> m = t.specs) t.fleet
let with_tpm_threshold tpm_threshold t = check { t with tpm_threshold }
let with_drpm_lower drpm_lower t = check { t with drpm_lower }
let with_drpm_upper drpm_upper t = check { t with drpm_upper }
let with_drpm_window drpm_window t = check { t with drpm_window }

let with_drpm_idle_interval drpm_idle_interval t =
  check { t with drpm_idle_interval }

let with_drpm_floor_depth drpm_floor_depth t =
  check { t with drpm_floor_depth }

let with_queue_depth queue_depth t = check { t with queue_depth }

let with_pm_call_overhead pm_call_overhead t =
  check { t with pm_call_overhead }

let with_pre_activation_lead pre_activation_lead t =
  check { t with pre_activation_lead }

let with_retain_busy retain_busy t = check { t with retain_busy }
