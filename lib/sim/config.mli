(** Simulator configuration. *)

type t = {
  specs : Dpm_disk.Specs.t;
  tpm_threshold : float option;
      (** Reactive TPM idleness threshold in seconds; [None] uses the
          break-even time computed from the specs (the standard
          "competitive" setting). *)
  drpm_lower : float;
      (** DRPM lower tolerance: relative response-time degradation below
          which the controller steps the RPM one level down. *)
  drpm_upper : float;
      (** DRPM upper tolerance: degradation above which the controller
          restores full speed. *)
  drpm_window : int;  (** Requests per observation window (Table 1: 30). *)
  drpm_idle_interval : float;
      (** Reactive DRPM idle control: a disk that has seen no request for
          this long steps one RPM level down, and one more per further
          interval — the reactive controller's only way to exploit
          idleness (it pays for it by serving the next burst at the level
          it drifted to). *)
  queue_depth : int;
      (** Open-loop replay: maximum requests outstanding per disk before
          the traced application stalls (bounded I/O queue, default 32).
          Transient service hiccups are absorbed; sustained slow service
          becomes an execution-time penalty. *)
  pm_call_overhead : float;
      (** Cost of executing one inserted power-management call, seconds
          (the paper's [Tm]); charged to compute time in CM schemes. *)
  retain_busy : bool;
      (** Record per-request busy intervals in [Result.t] (default).
          They are O(requests) — the one per-request allocation a replay
          keeps — so bounded-memory streaming runs (the bench's memory
          mode) turn this off; oracles and idle-gap analyses need it
          on. *)
}

val default : t
(** Ultrastar 36Z15 specs, break-even TPM threshold, 5%/15% DRPM
    tolerances, 30-request windows, 0.5 s idle interval, 2 µs call
    overhead. *)
