(** Simulator configuration.

    The record is {e private}: every field is meaningful to read (and
    pattern-match), but construction must go through {!make} or the
    [with_*] updaters over {!default}.  Bare record literals and
    [{ c with ... }] functional update are deprecated and no longer
    type-check outside this module — the builders are the single place
    where configuration invariants (queue depth and window >= 1, DRPM
    tolerances ordered, non-negative overheads) are enforced, so a
    CLI flag, a sweep axis value, a wire [dpm-spec/1] job and a test
    literal all pass the same checks.  Builders raise [Invalid_argument]
    on violation. *)

(** Per-disk request-queue service order (see {!Dpm_sim.Sched}): FCFS is
    the legacy implicit-FIFO order; SSTF/SCAN/C-LOOK reorder by block
    position; [Sstf_remap] is SSTF pricing remapped bad sectors at their
    post-remap position (spare region beyond the data blocks). *)
type sched = Fcfs | Sstf | Scan | Clook | Sstf_remap

val sched_names : (string * sched) list
(** Canonical names in a stable order: ["fcfs"], ["sstf"], ["scan"],
    ["c-look"], ["sstf-remap"] — shared by the CLI, the run-spec JSON
    and the timeline export. *)

val sched_name : sched -> string
val sched_of_name_opt : string -> sched option
(** Case-insensitive, whitespace-trimmed lookup. *)

type t = private {
  specs : Dpm_disk.Specs.t;
  fleet : Dpm_disk.Specs.t array;
      (** Heterogeneous disk models, assigned round-robin by disk id
          (disk [d] is [fleet.(d mod length)]).  [[||]] (default) means
          every disk is [specs] — the legacy homogeneous fleet. *)
  sched : sched;
      (** Per-disk queue service order (default [Fcfs], the legacy
          order; anything else routes the replay through
          {!Dpm_sim.Sched}). *)
  tpm_threshold : float option;
      (** Reactive TPM idleness threshold in seconds; [None] uses the
          break-even time computed from the specs (the standard
          "competitive" setting). *)
  drpm_lower : float;
      (** DRPM lower tolerance: relative response-time degradation below
          which the controller steps the RPM one level down. *)
  drpm_upper : float;
      (** DRPM upper tolerance: degradation above which the controller
          restores full speed. *)
  drpm_window : int;  (** Requests per observation window (Table 1: 30). *)
  drpm_idle_interval : float;
      (** Reactive DRPM idle control: a disk that has seen no request for
          this long steps one RPM level down, and one more per further
          interval — the reactive controller's only way to exploit
          idleness (it pays for it by serving the next burst at the level
          it drifted to). *)
  drpm_floor_depth : int;
      (** How many RPM levels below full speed idle control (reactive
          DRPM and the online {!Dpm_sim.Policy.adaptive} controller) may
          drift on idleness alone — deeper levels cost too much to
          reverse when the workload returns (default 4). *)
  queue_depth : int;
      (** Open-loop replay: maximum requests outstanding per disk before
          the traced application stalls (bounded I/O queue, default 32).
          Transient service hiccups are absorbed; sustained slow service
          becomes an execution-time penalty. *)
  pm_call_overhead : float;
      (** Cost of executing one inserted power-management call, seconds
          (the paper's [Tm]); charged to compute time in CM schemes. *)
  pre_activation_lead : float;
      (** Extra seconds of guard band added ahead of every
          compiler-inserted pre-activation (paper Eq. 1 fires
          [guard = max pm_call_overhead (gap / 4) + lead] before the
          estimated window end).  0 reproduces the paper's placement;
          the sweep harness uses this axis to trade spin-up misses
          against shortened low-power residency. *)
  retain_busy : bool;
      (** Record per-request busy intervals in [Result.t] (default).
          They are O(requests) — the one per-request allocation a replay
          keeps — so bounded-memory streaming runs (the bench's memory
          mode) turn this off; oracles and idle-gap analyses need it
          on. *)
}

val default : t
(** Ultrastar 36Z15 specs, break-even TPM threshold, 5%/15% DRPM
    tolerances, 30-request windows, 1 s idle interval with a 4-level
    floor, 2 µs call overhead, no extra pre-activation lead. *)

val make :
  ?specs:Dpm_disk.Specs.t ->
  ?fleet:Dpm_disk.Specs.t array ->
  ?sched:sched ->
  ?tpm_threshold:float ->
  ?drpm_lower:float ->
  ?drpm_upper:float ->
  ?drpm_window:int ->
  ?drpm_idle_interval:float ->
  ?drpm_floor_depth:int ->
  ?queue_depth:int ->
  ?pm_call_overhead:float ->
  ?pre_activation_lead:float ->
  ?retain_busy:bool ->
  unit ->
  t
(** {!default} with fields overridden ([tpm_threshold] stays [None] —
    break-even — unless given).  Raises [Invalid_argument] when the
    resulting configuration violates an invariant. *)

(** Functional updaters, value first so they compose with [|>]:
    [Config.default |> Config.with_queue_depth 4]. *)

val with_specs : Dpm_disk.Specs.t -> t -> t
val with_fleet : Dpm_disk.Specs.t array -> t -> t
val with_sched : sched -> t -> t
val with_tpm_threshold : float option -> t -> t

val model : t -> disk:int -> Dpm_disk.Specs.t
(** The model serving [disk]: [fleet.(disk mod length)], or [specs] when
    the fleet is empty. *)

val homogeneous : t -> bool
(** [true] iff every disk is served by [specs] (empty fleet, or every
    fleet entry structurally equal to it) — the configurations whose
    replays must stay byte-identical with the pre-fleet engine. *)

val with_drpm_lower : float -> t -> t
val with_drpm_upper : float -> t -> t
val with_drpm_window : int -> t -> t
val with_drpm_idle_interval : float -> t -> t
val with_drpm_floor_depth : int -> t -> t
val with_queue_depth : int -> t -> t
val with_pm_call_overhead : float -> t -> t
val with_pre_activation_lead : float -> t -> t
val with_retain_busy : bool -> t -> t
