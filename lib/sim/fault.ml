module Rng = Dpm_util.Rng
module Striping = Dpm_layout.Striping

type spec = {
  seed : int;
  read_error_rate : float;
  bad_unit_rate : float;
  bad_region_len : int;
  spin_up_failure_rate : float;
  max_retries : int;
  backoff : float;
  remap_penalty : float;
  disk_failures : (int * float) list;
}

let none =
  {
    seed = 0;
    read_error_rate = 0.0;
    bad_unit_rate = 0.0;
    bad_region_len = 8;
    spin_up_failure_rate = 0.0;
    max_retries = 3;
    backoff = 0.05;
    remap_penalty = 0.005;
    disk_failures = [];
  }

let make ?(seed = none.seed) ?(read_error_rate = none.read_error_rate)
    ?(bad_unit_rate = none.bad_unit_rate)
    ?(bad_region_len = none.bad_region_len)
    ?(spin_up_failure_rate = none.spin_up_failure_rate)
    ?(max_retries = none.max_retries) ?(backoff = none.backoff)
    ?(remap_penalty = none.remap_penalty) ?(disk_failures = none.disk_failures)
    () =
  {
    seed;
    read_error_rate;
    bad_unit_rate;
    bad_region_len;
    spin_up_failure_rate;
    max_retries;
    backoff;
    remap_penalty;
    disk_failures;
  }

let is_zero s =
  s.read_error_rate <= 0.0
  && s.bad_unit_rate <= 0.0
  && s.spin_up_failure_rate <= 0.0
  && s.disk_failures = []

let validate s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let bad_rate v = Float.is_nan v || v < 0.0 || v > 1.0 in
  if bad_rate s.read_error_rate then
    err "read error rate must be in [0, 1] (got %g)" s.read_error_rate
  else if bad_rate s.bad_unit_rate then
    err "bad-unit rate must be in [0, 1] (got %g)" s.bad_unit_rate
  else if bad_rate s.spin_up_failure_rate then
    err "spin-up failure rate must be in [0, 1] (got %g)" s.spin_up_failure_rate
  else if s.bad_region_len < 1 then
    err "bad-region length must be at least 1 (got %d)" s.bad_region_len
  else if s.max_retries < 0 then
    err "retry bound must be non-negative (got %d)" s.max_retries
  else if Float.is_nan s.backoff || s.backoff < 0.0 then
    err "backoff must be non-negative (got %g)" s.backoff
  else if Float.is_nan s.remap_penalty || s.remap_penalty < 0.0 then
    err "remap penalty must be non-negative (got %g)" s.remap_penalty
  else
    match
      List.find_opt
        (fun (d, t) -> d < 0 || Float.is_nan t || t < 0.0)
        s.disk_failures
    with
    | Some (d, t) -> err "invalid disk failure %d@%g" d t
    | None -> Ok s

(* --- string form --- *)

let to_string s =
  let b = Buffer.create 96 in
  Printf.bprintf b "seed=%d,read=%.17g,bad=%.17g,badlen=%d" s.seed
    s.read_error_rate s.bad_unit_rate s.bad_region_len;
  Printf.bprintf b ",spinfail=%.17g,retries=%d,backoff=%.17g,remap=%.17g"
    s.spin_up_failure_rate s.max_retries s.backoff s.remap_penalty;
  if s.disk_failures <> [] then
    Printf.bprintf b ",fail=%s"
      (String.concat ";"
         (List.map
            (fun (d, t) -> Printf.sprintf "%d@%.17g" d t)
            s.disk_failures));
  Buffer.contents b

let of_string str =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_int key v k =
    match int_of_string_opt (String.trim v) with
    | Some n -> k n
    | None -> err "%s: expected an integer, got %S" key v
  in
  let parse_float key v k =
    match float_of_string_opt (String.trim v) with
    | Some x -> k x
    | None -> err "%s: expected a number, got %S" key v
  in
  let parse_failures v k =
    let rec go acc = function
      | [] -> k (List.rev acc)
      | entry :: rest -> (
          match String.index_opt entry '@' with
          | None -> err "fail: expected DISK@TIME, got %S" entry
          | Some i ->
              let d = String.sub entry 0 i in
              let t = String.sub entry (i + 1) (String.length entry - i - 1) in
              parse_int "fail" d (fun d ->
                  parse_float "fail" t (fun t -> go ((d, t) :: acc) rest)))
    in
    go []
      (List.filter
         (fun e -> e <> "")
         (List.map String.trim (String.split_on_char ';' v)))
  in
  let rec fold spec = function
    | [] -> validate spec
    | part :: rest -> (
        match String.index_opt part '=' with
        | None -> err "expected key=value, got %S" part
        | Some i -> (
            let key = String.trim (String.sub part 0 i) in
            let v = String.sub part (i + 1) (String.length part - i - 1) in
            match String.lowercase_ascii key with
            | "seed" -> parse_int key v (fun n -> fold { spec with seed = n } rest)
            | "read" ->
                parse_float key v (fun x ->
                    fold { spec with read_error_rate = x } rest)
            | "bad" ->
                parse_float key v (fun x ->
                    fold { spec with bad_unit_rate = x } rest)
            | "badlen" ->
                parse_int key v (fun n ->
                    fold { spec with bad_region_len = n } rest)
            | "spinfail" ->
                parse_float key v (fun x ->
                    fold { spec with spin_up_failure_rate = x } rest)
            | "retries" ->
                parse_int key v (fun n -> fold { spec with max_retries = n } rest)
            | "backoff" ->
                parse_float key v (fun x -> fold { spec with backoff = x } rest)
            | "remap" ->
                parse_float key v (fun x ->
                    fold { spec with remap_penalty = x } rest)
            | "fail" ->
                parse_failures v (fun fs ->
                    fold { spec with disk_failures = spec.disk_failures @ fs } rest)
            | _ ->
                err
                  "unknown key %S (expected seed, read, bad, badlen, spinfail, \
                   retries, backoff, remap or fail)"
                  key))
  in
  fold none
    (List.filter
       (fun p -> p <> "")
       (List.map String.trim (String.split_on_char ',' str)))

let backoff_delay spec ~attempt = Float.ldexp spec.backoff attempt

(* --- plan --- *)

type plan = {
  pspec : spec;
  ndisks : int;
  bad : (int * int) array;
  fail_at : float array;
}

(* Sort and coalesce overlapping/adjacent inclusive intervals. *)
let merge_runs runs =
  match List.sort compare runs with
  | [] -> [||]
  | first :: rest ->
      let merged, last =
        List.fold_left
          (fun (acc, (lo, hi)) (lo', hi') ->
            if lo' <= hi + 1 then (acc, (lo, max hi hi'))
            else ((lo, hi) :: acc, (lo', hi')))
          ([], first) rest
      in
      Array.of_list (List.rev (last :: merged))

let plan spec ~ndisks ~nblocks =
  if ndisks <= 0 then invalid_arg "Fault.plan: non-positive disk count";
  (match validate spec with
  | Ok _ -> ()
  | Error m -> invalid_arg ("Fault.plan: " ^ m));
  let fail_at = Array.make ndisks infinity in
  List.iter
    (fun (d, t) -> if d < ndisks then fail_at.(d) <- Float.min fail_at.(d) t)
    spec.disk_failures;
  let bad =
    if spec.bad_unit_rate <= 0.0 || nblocks <= 0 then [||]
    else begin
      let rng = Rng.split (Rng.create spec.seed) "fault.bad-regions" in
      let target =
        max 1
          (int_of_float
             (Float.round (spec.bad_unit_rate *. float_of_int nblocks)))
      in
      let len = min spec.bad_region_len nblocks in
      let nregions = max 1 ((target + len - 1) / len) in
      let runs = ref [] in
      for _ = 1 to nregions do
        let start = Rng.int rng nblocks in
        let l = 1 + Rng.int rng (max 1 len) in
        runs := (start, min (nblocks - 1) (start + l - 1)) :: !runs
      done;
      merge_runs !runs
    end
  in
  { pspec = spec; ndisks; bad; fail_at }

let spec_of plan = plan.pspec

let bad_block plan ~block =
  let n = Array.length plan.bad in
  if n = 0 then false
  else begin
    let lo = ref 0 and hi = ref (n - 1) and found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let a, b = plan.bad.(mid) in
      if block < a then hi := mid - 1
      else if block > b then lo := mid + 1
      else found := true
    done;
    !found
  end

let bad_unit_count plan =
  Array.fold_left (fun acc (a, b) -> acc + b - a + 1) 0 plan.bad

let bad_regions plan = Array.to_list plan.bad

let bad_disk_spread plan ~striping =
  let striping =
    (* The plan may cover fewer disks than the striping assumes. *)
    if
      striping.Striping.stripe_factor > plan.ndisks
      || striping.Striping.start_disk >= plan.ndisks
    then
      Striping.make ~start_disk:0 ~stripe_factor:plan.ndisks
        ~stripe_size:striping.Striping.stripe_size
    else striping
  in
  let counts = Array.make plan.ndisks 0 in
  Array.iter
    (fun (lo, hi) ->
      List.iter
        (fun (d, n) -> counts.(d) <- counts.(d) + n)
        (Striping.region_disk_spread striping ~ndisks:plan.ndisks ~lo ~hi))
    plan.bad;
  counts

let fail_time plan ~disk = plan.fail_at.(disk)

(* --- per-replay state --- *)

type state = {
  plan : plan;
  read_rng : Rng.t array;
  spin_rng : Rng.t array;
  mutable pending_failures : (float * int) list;  (* sorted by time *)
  mutable read_retries : int;
  mutable retry_delay : float;
  mutable remaps : int;
  mutable spin_up_recoveries : int;
  mutable redirects : int;
}

let start plan =
  (* [Rng.split] is by value: the per-disk streams depend only on
     (seed, tag), so the draw order across disks cannot perturb them. *)
  let root = Rng.create plan.pspec.seed in
  let pending = ref [] in
  Array.iteri
    (fun d t -> if t < infinity then pending := (t, d) :: !pending)
    plan.fail_at;
  {
    plan;
    read_rng =
      Array.init plan.ndisks (fun d ->
          Rng.split root (Printf.sprintf "fault.read.%d" d));
    spin_rng =
      Array.init plan.ndisks (fun d ->
          Rng.split root (Printf.sprintf "fault.spinup.%d" d));
    pending_failures = List.sort compare !pending;
    read_retries = 0;
    retry_delay = 0.0;
    remaps = 0;
    spin_up_recoveries = 0;
    redirects = 0;
  }

let plan_of state = state.plan

(* Validate-and-expand in one step: the glue every replay entry point
   needs before touching the trace.  [None] takes the exact fault-free
   code path (no extra draws, no float perturbation); [nblocks] is lazy
   so streaming replays never pay the whole-trace scan unless a fault
   spec is actually active. *)
let init spec ~ndisks ~nblocks =
  if is_zero spec then None
  else begin
    (match validate spec with
    | Ok _ -> ()
    | Error m -> invalid_arg ("invalid fault spec: " ^ m));
    Some (start (plan spec ~ndisks ~nblocks:(Lazy.force nblocks)))
  end

let sweep state ~now ~kill =
  match state.pending_failures with
  | (t, _) :: _ when t <= now ->
      let rec go = function
        | (t, d) :: rest when t <= now ->
            kill d t;
            go rest
        | rest -> state.pending_failures <- rest
      in
      go state.pending_failures
  | _ -> ()

let is_failed state ~disk ~now = state.plan.fail_at.(disk) <= now

let serving_disk state ~disk ~now =
  if state.plan.fail_at.(disk) > now then disk
  else begin
    let n = state.plan.ndisks in
    let rec find k =
      if k >= n then disk
      else
        let d = (disk + k) mod n in
        if state.plan.fail_at.(d) > now then d else find (k + 1)
    in
    let d = find 1 in
    if d <> disk then state.redirects <- state.redirects + 1;
    d
  end

(* Bounded failed spin-up attempts while the disk sits in standby; each
   aborted attempt burns part of the spin-up energy, then backs off.
   Returns the time at which a (finally successful) spin-up may start. *)
let spin_up_attempts state st ~now =
  let spec = state.plan.pspec in
  if spec.spin_up_failure_rate <= 0.0 then now
  else begin
    Disk_state.advance st now;
    match Disk_state.phase st with
    | Disk_state.Standby ->
        let disk = Disk_state.id st in
        let rec attempt k now =
          if k >= spec.max_retries then now
          else if Rng.float state.spin_rng.(disk) 1.0 < spec.spin_up_failure_rate
          then begin
            let fraction = Rng.uniform state.spin_rng.(disk) 0.2 0.8 in
            state.spin_up_recoveries <- state.spin_up_recoveries + 1;
            let settled = Disk_state.abort_spin_up st ~now ~fraction in
            attempt (k + 1) (settled +. backoff_delay spec ~attempt:k)
          end
          else now
        in
        attempt 0 now
    | Disk_state.Ready _ | Disk_state.Changing _ | Disk_state.Spinning_down _
    | Disk_state.Spinning_up _ ->
        now
  end

let serve state st ~now ~bytes ~block =
  let spec = state.plan.pspec in
  let now = spin_up_attempts state st ~now in
  let now =
    if Array.length state.plan.bad > 0 && bad_block state.plan ~block then begin
      state.remaps <- state.remaps + 1;
      Disk_state.record st ~at:now (Timeline.Remap block);
      Disk_state.occupy st ~now ~seconds:spec.remap_penalty
    end
    else now
  in
  let completion = Disk_state.serve st ~now ~bytes in
  if spec.read_error_rate <= 0.0 then completion
  else begin
    let disk = Disk_state.id st in
    let rec retry k completion =
      if k >= spec.max_retries then completion
      else if Rng.float state.read_rng.(disk) 1.0 < spec.read_error_rate then begin
        state.read_retries <- state.read_retries + 1;
        let resume = completion +. backoff_delay spec ~attempt:k in
        Disk_state.record st ~at:resume (Timeline.Retry (k + 1));
        let completion' = Disk_state.serve st ~now:resume ~bytes in
        state.retry_delay <- state.retry_delay +. (completion' -. completion);
        retry (k + 1) completion'
      end
      else completion
    in
    retry 0 completion
  end

let spin_up state st ~now =
  let now = spin_up_attempts state st ~now in
  Disk_state.spin_up st ~now

let retries_so_far state = state.read_retries

let stats state ~exec_time =
  {
    Result.read_retries = state.read_retries;
    retry_delay = state.retry_delay;
    remaps = state.remaps;
    spin_up_recoveries = state.spin_up_recoveries;
    redirects = state.redirects;
    failed_disks =
      Array.fold_left
        (fun n t -> if t <= exec_time then n + 1 else n)
        0 state.plan.fail_at;
  }
